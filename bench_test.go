// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 2.4 and Section 3), plus micro-benchmarks of the
// engine's building blocks and ablations of its design choices. The
// figure benchmarks run a complete experiment per iteration and report
// the headline quantities via b.ReportMetric; cmd/ibench prints the full
// paper-style tables.
package ioverlay_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	ioverlay "repro"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/gf256"
	"repro/internal/message"
	"repro/internal/queue"
	"repro/internal/tree"
)

// ----- §2.4, Fig. 5: raw engine performance -----

func BenchmarkFig5RawEngine(b *testing.B) {
	// The sub-benchmarks give the before/after curve of data-path batching:
	// "batched" is the default engine, "nobatch" forces BatchSize 1
	// (one lock acquisition and one wakeup per message — the pre-batching
	// engine).
	for _, variant := range []struct {
		name  string
		batch int
	}{{"batched", 0}, {"nobatch", 1}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig5(experiments.Fig5Config{
					Sizes:     []int{2, 3, 4, 8, 16, 32},
					Warmup:    200 * time.Millisecond,
					Window:    500 * time.Millisecond,
					BatchSize: variant.batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					b.ReportMetric(r.EndToEnd/(1024*1024), fmt.Sprintf("e2e-MBps/n=%d", r.Nodes))
				}
				if i == 0 {
					b.Log("\n" + experiments.RenderFig5(rows))
				}
			}
		})
	}
}

// BenchmarkFig5Shards measures the sharded switch against core count:
// run with -cpu 1,2,4,8 so each variant sets GOMAXPROCS, and the engine
// opens that many switch lanes (Shards defaults to GOMAXPROCS). The
// 16-node chain is the paper's headline configuration; the 32-node run
// doubles the switching work per core. With IOVERLAY_BENCH_JSON set to a
// path, every variant folds its result into that JSON file so the perf
// trajectory is machine-readable across runs (see `make bench-shards`).
//
// Run with an explicit iteration count (-benchtime=2x): the harness's
// initial calibration call executes before the -cpu list is applied, so
// with the default time-based budget a benchmark whose single iteration
// exceeds it would report that mis-provisioned probe as the first
// variant's result. Records are keyed by the GOMAXPROCS the iteration
// actually ran under, so a stale probe entry is replaced as soon as the
// properly provisioned variant runs.
func BenchmarkFig5Shards(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(experiments.Fig5Config{
			Sizes:  []int{16, 32},
			Warmup: 200 * time.Millisecond,
			Window: 500 * time.Millisecond,
			Shards: procs,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.EndToEnd/(1024*1024), fmt.Sprintf("e2e-MBps/n=%d", r.Nodes))
			if i == b.N-1 {
				recordShardBench(b, procs, r)
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig5(rows))
		}
	}
}

// shardBenchRecord is one (gomaxprocs, chain-length) point of the shard
// scaling sweep as written to BENCH_shards.json.
type shardBenchRecord struct {
	Bench      string  `json:"bench"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Nodes      int     `json:"nodes"`
	E2EMBps    float64 `json:"e2e_mbps"`
	TotalMBps  float64 `json:"total_mbps"`
	UnixNanos  int64   `json:"unix_nanos"`
}

// recordShardBench merges one measurement into the JSON file named by
// IOVERLAY_BENCH_JSON (no-op when unset, so plain `go test -bench` stays
// side-effect free). The file holds one record per (gomaxprocs, nodes)
// key; a -cpu sweep therefore builds the whole scaling table in place.
func recordShardBench(b *testing.B, procs int, r experiments.Fig5Row) {
	path := os.Getenv("IOVERLAY_BENCH_JSON")
	if path == "" {
		return
	}
	var records []shardBenchRecord
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &records); err != nil {
			b.Logf("discarding unparseable %s: %v", path, err)
			records = nil
		}
	}
	rec := shardBenchRecord{
		Bench:      "Fig5Shards",
		GoMaxProcs: procs,
		Shards:     procs,
		Nodes:      r.Nodes,
		E2EMBps:    r.EndToEnd / (1024 * 1024),
		TotalMBps:  r.Total / (1024 * 1024),
		UnixNanos:  time.Now().UnixNano(),
	}
	replaced := false
	for i := range records {
		if records[i].GoMaxProcs == rec.GoMaxProcs && records[i].Nodes == rec.Nodes {
			records[i] = rec
			replaced = true
		}
	}
	if !replaced {
		records = append(records, rec)
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		b.Fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkSwitchOverhead isolates the cost of one user-level message
// switch: the paper compares two-node and three-node chains (3.3%
// overhead per switch).
func BenchmarkSwitchOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(experiments.Fig5Config{
			Sizes:  []int{2, 3},
			Warmup: 200 * time.Millisecond,
			Window: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		// The paper compares TOTAL bandwidth of the 2- and 3-node chains
		// (48.4 vs 46.8 MBps → 3.3% per user-level switch).
		overhead := 100 * (1 - rows[1].Total/rows[0].Total)
		b.ReportMetric(overhead, "switch-overhead-%")
	}
}

// ----- Fig. 6 / Fig. 7: correctness and buffer regimes -----

func BenchmarkFig6Correctness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		phases, err := experiments.Fig6(experiments.Fig6Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(phases[1].Measured["DE"]/experiments.KB, "b-DE-KBps")
		b.ReportMetric(phases[1].Measured["AB"]/experiments.KB, "b-AB-KBps")
		if i == 0 {
			b.Log("\n" + experiments.RenderFig6("Fig 6 (small buffers)", phases))
		}
	}
}

func BenchmarkFig7LargeBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		phases, err := experiments.Fig7(experiments.Fig6Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(phases[0].Measured["AB"]/experiments.KB, "a-AB-KBps")
		b.ReportMetric(phases[1].Measured["EF"]/experiments.KB, "b-EF-KBps")
		if i == 0 {
			b.Log("\n" + experiments.RenderFig6("Fig 7 (large buffers)", phases))
		}
	}
}

// ----- Fig. 8: network coding -----

func BenchmarkFig8NetworkCoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.WithCoding {
			if r.Node == "F" {
				b.ReportMetric(r.Effective/experiments.KB, "coded-F-KBps")
			}
		}
		for _, r := range res.WithoutCoding {
			if r.Node == "F" {
				b.ReportMetric(r.Effective/experiments.KB, "plain-F-KBps")
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig8(res))
		}
	}
}

// ----- Table 3 / Fig. 9: tree construction on the 5-node session -----

func BenchmarkTable3TreeStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, figs, err := experiments.TreeSmall(experiments.TreeSmallConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Node == "S" {
				b.ReportMetric(r.Stress[tree.Unicast], "S-stress-unicast")
				b.ReportMetric(r.Stress[tree.StressAware], "S-stress-nsaware")
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable3(rows))
			b.Log("\n" + experiments.RenderFig9(figs))
		}
	}
}

// ----- Fig. 11 / 12 / 13: wide-area trees -----

func BenchmarkFig11PlanetLabTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig11(experiments.Fig11Config{
			N:      20, // scaled from the paper's 81; cmd/ibench -full runs 81
			Seed:   7,
			Window: 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Mean/experiments.KB, fmt.Sprintf("mean-KBps/%s", r.Variant))
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig11(results))
		}
	}
}

// ----- Fig. 14 / 15: service federation on 16 nodes -----

func BenchmarkFig15FederationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fed16(experiments.Fed16Config{})
		if err != nil {
			b.Fatal(err)
		}
		var aware, fed int64
		for _, r := range res.Rows {
			aware += r.AwareBytes
			fed += r.FederateBytes
		}
		b.ReportMetric(float64(aware), "sAware-bytes")
		b.ReportMetric(float64(fed), "sFederate-bytes")
		b.ReportMetric(res.LastHop, "last-hop-Bps")
		if i == 0 {
			b.Log("\n" + experiments.RenderFed16(res))
		}
	}
}

// ----- Fig. 16: sAware overhead over time -----

func BenchmarkFig16AwareOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig16(experiments.Fig16Config{
			N: 15, Minutes: 10, MinuteDur: 150 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		var peak int64
		for _, p := range points {
			if p.Bytes > peak {
				peak = p.Bytes
			}
		}
		b.ReportMetric(float64(peak), "peak-bytes-per-min")
		if i == 0 {
			b.Log("\n" + experiments.RenderFig16(points))
		}
	}
}

// ----- Fig. 17 / 18: control overhead vs size -----

func BenchmarkFig17OverheadVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FedSweep(experiments.FedSweepConfig{
			Sizes:        []int{5, 10, 15, 20},
			Requirements: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.AwareBytes), "sAware-bytes-at-20")
		b.ReportMetric(float64(last.FederateBytes), "sFederate-bytes-at-20")
		if i == 0 {
			b.Log("\n" + experiments.RenderFig17(rows))
		}
	}
}

func BenchmarkFig18PerNodeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FedSweep(experiments.FedSweepConfig{
			Sizes:        []int{15},
			Requirements: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
		if n := rows[0].PerNode; len(n) > 0 {
			b.ReportMetric(float64(n[0].FederateBytes), "max-node-sFederate-bytes")
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig18(rows[0]))
		}
	}
}

// ----- Fig. 19: end-to-end bandwidth across policies -----

func BenchmarkFig19FederatedBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byPolicy := make(map[federation.Selection][]experiments.Fig17Row)
		for _, p := range []federation.Selection{federation.SFlow, federation.Fixed, federation.RandomSel} {
			rows, err := experiments.FedSweep(experiments.FedSweepConfig{
				Sizes:        []int{5, 10, 15},
				Requirements: 15,
				Policy:       p,
			})
			if err != nil {
				b.Fatal(err)
			}
			byPolicy[p] = rows
			b.ReportMetric(rows[len(rows)-1].MeanBandwidth, fmt.Sprintf("e2e-Bps/%s", p))
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig19(byPolicy))
		}
	}
}

// ----- §2.4 footprint: per-connection memory -----

func BenchmarkEngineFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := ioverlay.NewVirtualNetwork()
		sink := &counter{}
		e1, err := ioverlay.NewEngine(ioverlay.Config{
			ID: ioverlay.MustParseID("10.9.0.1:7000"), Transport: ioverlay.VirtualTransport(net),
			Algorithm: sink, RecvBuf: 10, SendBuf: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := e1.Start(); err != nil {
			b.Fatal(err)
		}
		src := &counter{next: ioverlay.MustParseID("10.9.0.1:7000")}
		e2, err := ioverlay.NewEngine(ioverlay.Config{
			ID: ioverlay.MustParseID("10.9.0.2:7000"), Transport: ioverlay.VirtualTransport(net),
			Algorithm: src, RecvBuf: 10, SendBuf: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := e2.Start(); err != nil {
			b.Fatal(err)
		}
		e2.StartSource(1, 100<<10, 5<<10)
		time.Sleep(100 * time.Millisecond)
		e2.Stop()
		e1.Stop()
		net.Close()
	}
	// -benchmem reports the allocation footprint per engine pair.
}

// ----- micro-benchmarks of the substrates -----

func BenchmarkMessageEncodeDecode(b *testing.B) {
	m := message.New(message.FirstDataType, message.MakeID("10.0.0.1", 1), 1, 2,
		make([]byte, 5<<10))
	buf := make([]byte, 0, m.WireLen())
	buf = m.AppendHeader(buf)
	buf = append(buf, m.Payload()...)
	b.ResetTimer()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		got, _, err := message.Decode(buf)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != 5<<10 {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	r := queue.New(1024)
	m := message.New(message.FirstDataType, message.ZeroID, 0, 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.TryPush(m) {
			b.Fatal("push failed")
		}
		if _, ok := r.TryPop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkRingBatchVsSingle measures what the whole data path is built
// on: moving message references through a Ring one at a time versus in
// batches of 32 under a single lock acquisition. "handoff" variants add a
// second goroutine so the condvar wakeup cost (the dominant term on the
// real data path) is included.
func BenchmarkRingBatchVsSingle(b *testing.B) {
	m := message.New(message.FirstDataType, message.ZeroID, 0, 0, nil)
	const batchN = 32

	b.Run("single", func(b *testing.B) {
		r := queue.New(1024)
		for i := 0; i < b.N; i++ {
			if !r.TryPush(m) {
				b.Fatal("push failed")
			}
			if _, ok := r.TryPop(); !ok {
				b.Fatal("pop failed")
			}
		}
	})
	b.Run("batch32", func(b *testing.B) {
		r := queue.New(1024)
		ms := make([]*message.Msg, batchN)
		for i := range ms {
			ms[i] = m
		}
		dst := make([]*message.Msg, batchN)
		b.ResetTimer()
		for i := 0; i < b.N; i += batchN {
			if n := r.TryPushBatch(ms); n != batchN {
				b.Fatal("push failed")
			}
			if n := r.TryPopBatch(dst); n != batchN {
				b.Fatal("pop failed")
			}
		}
	})
	b.Run("handoff-single", func(b *testing.B) {
		r := queue.New(64)
		go func() {
			for {
				if _, err := r.Pop(); err != nil {
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.Push(m); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		r.Close()
	})
	b.Run("handoff-batch32", func(b *testing.B) {
		r := queue.New(64)
		go func() {
			dst := make([]*message.Msg, batchN)
			for {
				if _, err := r.PopBatch(dst); err != nil {
					return
				}
			}
		}()
		ms := make([]*message.Msg, batchN)
		for i := range ms {
			ms[i] = m
		}
		b.ResetTimer()
		for i := 0; i < b.N; i += batchN {
			if _, err := r.PushBatch(ms); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		r.Close()
	})
}

func BenchmarkGF256Axpy(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf256.Axpy(dst, 7, src)
	}
}

func BenchmarkGF256Solve(b *testing.B) {
	const k = 4
	src := make([][]byte, k)
	coeffs := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, 1024)
		coeffs[i] = make([]byte, k)
		for j := range coeffs[i] {
			coeffs[i][j] = gf256.Exp(i*7 + j*3)
		}
		coeffs[i][i] = 1
	}
	coded := make([][]byte, k)
	for i := range coded {
		coded[i] = gf256.Combine(coeffs[i], src)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := gf256.Solve(coeffs, coded); !ok {
			b.Fatal("singular")
		}
	}
}

// ----- ablations of the design choices DESIGN.md calls out -----

// cloningForwarder deep-copies every message before forwarding — the
// design iOverlay explicitly avoids with zero-copy reference passing.
type cloningForwarder struct {
	ioverlay.Base
	next     ioverlay.NodeID
	received atomic.Int64
}

func (c *cloningForwarder) Process(m *ioverlay.Msg) ioverlay.Verdict {
	if !m.IsData() {
		return c.Base.Process(m)
	}
	c.received.Add(int64(m.Len()))
	if !c.next.IsZero() {
		cl := m.Clone()
		c.API.SendNew(cl, c.next)
	}
	return ioverlay.Done
}

// BenchmarkAblationZeroCopy compares chain throughput with reference
// forwarding (the paper's design) against deep-copy-per-hop forwarding.
func BenchmarkAblationZeroCopy(b *testing.B) {
	run := func(clone bool) float64 {
		net := ioverlay.NewVirtualNetwork()
		defer net.Close()
		const hops = 4
		var engines []*ioverlay.Engine
		var tail interface{ bytes() int64 }
		for i := hops - 1; i >= 0; i-- {
			id := ioverlay.MustParseID(fmt.Sprintf("10.8.0.%d:7000", i+1))
			var next ioverlay.NodeID
			if i < hops-1 {
				next = ioverlay.MustParseID(fmt.Sprintf("10.8.0.%d:7000", i+2))
			}
			var alg ioverlay.Algorithm
			if clone {
				a := &cloningForwarder{next: next}
				alg = a
				if i == hops-1 {
					tail = fnBytes(func() int64 { return a.received.Load() })
				}
			} else {
				a := &counter{next: next}
				alg = a
				if i == hops-1 {
					tail = fnBytes(func() int64 { return a.received.Load() })
				}
			}
			e, err := ioverlay.NewEngine(ioverlay.Config{
				ID: id, Transport: ioverlay.VirtualTransport(net), Algorithm: alg,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Start(); err != nil {
				b.Fatal(err)
			}
			engines = append(engines, e)
		}
		defer func() {
			for _, e := range engines {
				e.Stop()
			}
		}()
		engines[len(engines)-1].StartSource(1, 0, 5<<10)
		time.Sleep(200 * time.Millisecond)
		before := tail.bytes()
		time.Sleep(500 * time.Millisecond)
		return float64(tail.bytes()-before) / 0.5
	}
	for i := 0; i < b.N; i++ {
		zero := run(false)
		deep := run(true)
		b.ReportMetric(zero/(1024*1024), "zerocopy-MBps")
		b.ReportMetric(deep/(1024*1024), "deepcopy-MBps")
	}
}

type fnBytes func() int64

func (f fnBytes) bytes() int64 { return f() }

// BenchmarkAblationWRRWeights shows the dynamically tunable switch
// weights: two competing upstreams into one bottleneck forwarder, fair
// (1:1) vs weighted (4:1) service.
func BenchmarkAblationWRRWeights(b *testing.B) {
	run := func(weightA int) (shareA float64) {
		net := ioverlay.NewVirtualNetwork()
		defer net.Close()
		sinkID := ioverlay.MustParseID("10.7.0.9:7000")
		midID := ioverlay.MustParseID("10.7.0.3:7000")
		aID := ioverlay.MustParseID("10.7.0.1:7000")
		bID := ioverlay.MustParseID("10.7.0.2:7000")

		sink := &counter{}
		mid := &counter{next: sinkID}
		boot := func(id ioverlay.NodeID, alg ioverlay.Algorithm, mut func(*ioverlay.Config)) *ioverlay.Engine {
			cfg := ioverlay.Config{ID: id, Transport: ioverlay.VirtualTransport(net), Algorithm: alg}
			if mut != nil {
				mut(&cfg)
			}
			e, err := ioverlay.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Start(); err != nil {
				b.Fatal(err)
			}
			return e
		}
		sinkEng := boot(sinkID, sink, nil)
		defer sinkEng.Stop()
		midEng := boot(midID, mid, func(c *ioverlay.Config) {
			c.UpBW = 200 << 10 // the bottleneck the upstreams compete for
			c.RecvBuf, c.SendBuf = 5, 5
			c.MaxParked = 4
		})
		defer midEng.Stop()
		srcA := &counter{next: midID}
		srcB := &counter{next: midID}
		aEng := boot(aID, srcA, nil)
		defer aEng.Stop()
		bEng := boot(bID, srcB, nil)
		defer bEng.Stop()
		aEng.StartSource(1, 0, 1<<10)
		bEng.StartSource(2, 0, 1<<10)

		time.Sleep(300 * time.Millisecond)
		midEng.Do(func(api ioverlay.API) { api.SetReceiverWeight(aID, weightA) })
		time.Sleep(300 * time.Millisecond)
		beforeA := sink.received.Load()
		// Isolate app 1's share via the mid node's per-link meters.
		a0 := midEng.LinkRate(aID, false)
		time.Sleep(700 * time.Millisecond)
		a1 := midEng.LinkRate(aID, false)
		bRate := midEng.LinkRate(bID, false)
		_ = beforeA
		aRate := (a0 + a1) / 2
		if aRate+bRate == 0 {
			return 0
		}
		return aRate / (aRate + bRate)
	}
	for i := 0; i < b.N; i++ {
		fair := run(1)
		weighted := run(4)
		b.ReportMetric(fair, "shareA-weight1")
		b.ReportMetric(weighted, "shareA-weight4")
		if weighted <= fair {
			b.Logf("warning: weighted share %.2f not above fair %.2f", weighted, fair)
		}
	}
}
