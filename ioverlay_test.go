package ioverlay_test

import (
	"sync/atomic"
	"testing"
	"time"

	ioverlay "repro"
)

// counter is a minimal public-API algorithm: counts data bytes, forwards
// to an optional next hop.
type counter struct {
	ioverlay.Base
	next     ioverlay.NodeID
	received atomic.Int64
}

func (c *counter) Process(m *ioverlay.Msg) ioverlay.Verdict {
	if !m.IsData() {
		return c.Base.Process(m)
	}
	c.received.Add(int64(m.Len()))
	if !c.next.IsZero() {
		c.API.Send(m, c.next)
	}
	return ioverlay.Done
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()

	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:        ioverlay.MustParseID("10.255.0.1:9000"),
		Transport: ioverlay.VirtualTransport(net),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Start(); err != nil {
		t.Fatal(err)
	}
	defer obs.Stop()

	sinkID := ioverlay.MustParseID("10.0.0.2:7000")
	srcID := ioverlay.MustParseID("10.0.0.1:7000")

	sink := &counter{}
	sinkEng, err := ioverlay.NewEngine(ioverlay.Config{
		ID:        sinkID,
		Transport: ioverlay.VirtualTransport(net),
		Algorithm: sink,
		Observer:  obs.ID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sinkEng.Start(); err != nil {
		t.Fatal(err)
	}
	defer sinkEng.Stop()

	src := &counter{next: sinkID}
	srcEng, err := ioverlay.NewEngine(ioverlay.Config{
		ID:        srcID,
		Transport: ioverlay.VirtualTransport(net),
		Algorithm: src,
		Observer:  obs.ID(),
		UpBW:      200 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srcEng.Start(); err != nil {
		t.Fatal(err)
	}
	defer srcEng.Stop()

	if !obs.WaitForNodes(2, 5*time.Second) {
		t.Fatalf("observer sees %d nodes", len(obs.Alive()))
	}
	if !obs.Deploy(srcID, 1, 0, 2048) {
		t.Fatal("Deploy found no route")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && sink.received.Load() < 64<<10 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := sink.received.Load(); got < 64<<10 {
		t.Fatalf("sink received %d bytes", got)
	}
	// Runtime bandwidth control through the public API.
	if !obs.SetBandwidth(srcID, ioverlay.SetBandwidth{
		Class: ioverlay.BandwidthUp, Rate: 50 << 10,
	}) {
		t.Fatal("SetBandwidth found no route")
	}
	// Status reports flow.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rp, ok := obs.Status(srcID); ok && len(rp.Downstream) > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no status report with downstream links")
}

func TestParseIDHelpers(t *testing.T) {
	id, err := ioverlay.ParseID("1.2.3.4:56")
	if err != nil || id.Addr() != "1.2.3.4:56" {
		t.Errorf("ParseID = %v, %v", id, err)
	}
	if _, err := ioverlay.ParseID("bogus"); err == nil {
		t.Error("ParseID accepted garbage")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseID did not panic on garbage")
		}
	}()
	ioverlay.MustParseID("bogus")
}

func TestNewMsgPublic(t *testing.T) {
	m := ioverlay.NewMsg(ioverlay.FirstDataType, ioverlay.MustParseID("1.1.1.1:1"), 2, 3, []byte("hi"))
	if !m.IsData() || m.App() != 2 || m.Seq() != 3 || string(m.Payload()) != "hi" {
		t.Errorf("NewMsg fields wrong: %v", m)
	}
}
