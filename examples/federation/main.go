// Federation: provision a complex service across a 12-node service
// overlay network (the paper's Section 3.4). Nodes host primitive
// services; a DAG requirement is federated with the sFlow algorithm,
// which probes candidate instances for residual bandwidth and picks the
// most bandwidth-efficient one; live data then flows through the
// federated topology.
package main

import (
	"fmt"
	"os"
	"time"

	ioverlay "repro"
	"repro/internal/federation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

func run() error {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:        ioverlay.MustParseID("10.255.0.1:9000"),
		Transport: ioverlay.VirtualTransport(net),
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()

	// Twelve nodes; service types 1..4, three instances each, with
	// different nominal capacities.
	const n = 12
	ids := make([]ioverlay.NodeID, n)
	algs := make([]*federation.Node, n)
	for i := 0; i < n; i++ {
		ids[i] = ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
	}
	for i := n - 1; i >= 0; i-- {
		algs[i] = &federation.Node{Policy: federation.SFlow}
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        ids[i],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: algs[i],
			Observer:  obs.ID(),
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		defer eng.Stop()
	}
	if !obs.WaitForNodes(n, 5*time.Second) {
		return fmt.Errorf("bootstrap incomplete")
	}
	for _, id := range ids {
		obs.PushMembership(id)
	}
	time.Sleep(100 * time.Millisecond)

	// sAssign: node i hosts service type i%4+1 with capacity 50..160 KBps.
	fmt.Println("assigning services:")
	for i, id := range ids {
		typ := uint32(i%4 + 1)
		capacity := int64(50+10*i) << 10
		obs.Command(id, federation.TypeAssign,
			federation.Assign{ServiceType: typ, Capacity: capacity}.Encode())
		fmt.Printf("  %s hosts service %d (%d KBps)\n", id, typ, capacity>>10)
	}
	time.Sleep(500 * time.Millisecond) // sAware dissemination

	// Federate a diamond requirement: 1 -> {2,3} -> 4.
	req := federation.Requirement{
		Types:     []uint32{1, 2, 3, 4},
		Edges:     [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Bandwidth: 64 << 10,
	}
	const session = 42
	f := federation.Federate{SessionID: session, Req: req}
	obs.Command(ids[0], federation.TypeFederate, f.Encode())

	var assigned []ioverlay.NodeID
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a, ok := algs[0].Completed(session); ok {
			assigned = a
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if assigned == nil {
		return fmt.Errorf("federation did not complete")
	}
	fmt.Println("federated complex service:")
	for i, node := range assigned {
		fmt.Printf("  requirement vertex %d (service %d) -> %s\n", i, req.Types[i], node)
	}

	// Deploy live data through the federated service and measure the sink.
	obs.Deploy(assigned[0], session, 100<<10, 1024)
	var sink *federation.Node
	for i, id := range ids {
		if id == assigned[len(assigned)-1] {
			sink = algs[i]
		}
	}
	time.Sleep(500 * time.Millisecond)
	before := sink.ReceivedBytes(session)
	time.Sleep(2 * time.Second)
	rate := float64(sink.ReceivedBytes(session)-before) / 2
	fmt.Printf("sink receiving %.1f KBps through the federated topology\n", rate/1024)

	// Show the paper's overhead observation: sFederate << sAware.
	var aware, fed int64
	for _, alg := range algs {
		sent := alg.OverheadSent()
		aware += sent[federation.TypeAware]
		fed += sent[federation.TypeFederate] + sent[federation.TypeFederateAck] +
			sent[federation.TypeLoadProbe] + sent[federation.TypeLoadReply]
	}
	fmt.Printf("control overhead: sAware %d bytes, sFederate %d bytes\n", aware, fed)
	return nil
}
