// Streaming: a data dissemination session over a node-stress-aware
// multicast tree with asymmetric (DSL-like) last-mile bandwidth, plus
// failure injection — a relay node is killed mid-stream and its children
// transparently rejoin the tree, exactly the fault-tolerance workflow the
// paper describes for iOverlay experiments.
package main

import (
	"fmt"
	"os"
	"time"

	ioverlay "repro"
	"repro/internal/media"
	"repro/internal/tree"
)

const app = 1

// playerTree couples the tree algorithm with a media playout meter: every
// data frame feeds the receiver-side QoE statistics.
type playerTree struct {
	tree.Tree
	player *media.Player
}

func (p *playerTree) Process(m *ioverlay.Msg) ioverlay.Verdict {
	if m.IsData() {
		p.player.Feed(m.Seq(), m.Len(), time.Now())
	}
	return p.Tree.Process(m)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run() error {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:        ioverlay.MustParseID("10.255.0.1:9000"),
		Transport: ioverlay.VirtualTransport(net),
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()

	// Ten viewers with asymmetric DSL-like links: generous downlink,
	// narrow uplink — the "last-mile bottleneck" setting of Section 3.3.
	// The source is node 0 with a 300 KBps uplink.
	type member struct {
		id  ioverlay.NodeID
		alg *playerTree
		eng *ioverlay.Engine
	}
	var members []*member
	for i := 9; i >= 0; i-- { // source boots last, so it knows everyone
		id := ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
		up := int64(80+20*i) << 10 // 80–260 KBps uplinks
		if i == 0 {
			up = 300 << 10
		}
		alg := &playerTree{
			Tree: tree.Tree{
				Variant:    tree.StressAware,
				App:        app,
				LastMile:   up,
				AutoRejoin: true, // rejoin through KnownHosts when a parent dies
			},
			player: &media.Player{FrameInterval: 33 * time.Millisecond},
		}
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        id,
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: alg,
			Observer:  obs.ID(),
			UpBW:      up,
			DownBW:    1 << 20, // 1 MBps downlink: asymmetric like DSL
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		defer eng.Stop()
		members = append([]*member{{id: id, alg: alg, eng: eng}}, members...)
	}
	if !obs.WaitForNodes(10, 5*time.Second) {
		return fmt.Errorf("bootstrap incomplete")
	}

	// Start the stream at the source and join the viewers.
	obs.Deploy(members[0].id, app, 0, 1316) // RTP-ish packet size
	time.Sleep(300 * time.Millisecond)
	for _, m := range members[1:] {
		obs.Join(m.id, app, ioverlay.NodeID{})
		time.Sleep(100 * time.Millisecond)
	}
	time.Sleep(2 * time.Second)

	report := func(tag string) {
		fmt.Printf("--- %s ---\n", tag)
		for _, m := range members[1:] {
			parent := "-"
			if p, ok := m.alg.Parent(); ok {
				parent = p.String()
			}
			st := m.alg.player.Snapshot()
			fmt.Printf("  %s parent=%-16s received=%6d KB stress=%.2f loss=%.1f%% stalls=%d jitter=%s\n",
				m.id, parent, m.alg.ReceivedBytes()/1024, m.alg.Stress(),
				100*st.LossRate(), st.Stalls, st.Jitter.Round(time.Millisecond))
		}
	}
	report("tree built, streaming")

	// Kill the busiest relay (most children) and watch the recovery.
	var victim *member
	for _, m := range members[1:] {
		if victim == nil || len(m.alg.Children()) > len(victim.alg.Children()) {
			victim = m
		}
	}
	fmt.Printf("killing relay %s with %d children...\n",
		victim.id, len(victim.alg.Children()))
	victim.eng.Stop()

	time.Sleep(3 * time.Second)
	report("after failure and rejoin")

	// Verify every surviving viewer is still receiving.
	before := make(map[*member]int64)
	for _, m := range members[1:] {
		if m != victim {
			before[m] = m.alg.ReceivedBytes()
		}
	}
	time.Sleep(2 * time.Second)
	stalled := 0
	for m, b := range before {
		if m.alg.ReceivedBytes() == b {
			stalled++
		}
	}
	fmt.Printf("survivors still streaming: %d/%d\n", len(before)-stalled, len(before))
	return nil
}
