// Network coding: the paper's Fig. 8 case study as a runnable demo. A
// source splits a session into two substreams through helper nodes; node
// D codes a+b in GF(2^8) using the engine's hold mechanism; receivers F
// and G decode both substreams from one plain and one coded stream,
// reaching the full source rate despite D's uplink bottleneck.
package main

import (
	"fmt"
	"os"
	"time"

	ioverlay "repro"
	"repro/internal/coding"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "networkcoding:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, useCoding := range []bool{false, true} {
		rates, err := runSession(useCoding)
		if err != nil {
			return err
		}
		mode := "plain forwarding"
		if useCoding {
			mode = "network coding (a+b at D)"
		}
		fmt.Printf("%s:\n", mode)
		for _, n := range []string{"D", "E", "F", "G"} {
			fmt.Printf("  %s effective throughput: %6.1f KBps\n", n, rates[n]/1024)
		}
	}
	fmt.Println("coding lifts F and G to the full 400 KBps source rate,")
	fmt.Println("at the cost of E becoming a helper node (the paper's trade-off).")
	return nil
}

func runSession(useCoding bool) (map[string]float64, error) {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()

	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	ids := make(map[string]ioverlay.NodeID)
	for i, n := range names {
		ids[n] = ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
	}
	algs := map[string]*coding.Node{
		"A": {SplitDests: [][]ioverlay.NodeID{{ids["B"]}, {ids["C"]}}},
		"B": {Forward: map[int][]ioverlay.NodeID{0: {ids["D"], ids["F"]}}},
		"C": {Forward: map[int][]ioverlay.NodeID{1: {ids["D"], ids["G"]}}},
		"F": {DecodeK: 2},
		"G": {DecodeK: 2},
	}
	if useCoding {
		algs["D"] = &coding.Node{
			Code:    &coding.CodeSpec{K: 2, Inputs: []int{0, 1}, Dests: []ioverlay.NodeID{ids["E"]}},
			DecodeK: 2,
		}
		algs["E"] = &coding.Node{ForwardCoded: []ioverlay.NodeID{ids["F"], ids["G"]}}
	} else {
		algs["D"] = &coding.Node{
			Forward: map[int][]ioverlay.NodeID{0: {ids["E"]}, 1: {ids["E"]}},
			DecodeK: 2,
		}
		algs["E"] = &coding.Node{
			Forward: map[int][]ioverlay.NodeID{0: {ids["G"]}, 1: {ids["F"]}},
			DecodeK: 2,
		}
	}

	var engines []*ioverlay.Engine
	for i := len(names) - 1; i >= 0; i-- {
		name := names[i]
		cfg := ioverlay.Config{
			ID:        ids[name],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: algs[name],
			RecvBuf:   2000, SendBuf: 2000, MaxParked: 8000,
		}
		switch name {
		case "A":
			cfg.TotalBW = 400 << 10
		case "D":
			cfg.UpBW = 200 << 10 // the bottleneck coding routes around
		}
		eng, err := ioverlay.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		if err := eng.Start(); err != nil {
			return nil, err
		}
		defer eng.Stop()
		engines = append(engines, eng)
	}
	engines[len(engines)-1].StartSource(1, 0, 1024) // node A

	time.Sleep(2 * time.Second) // settle
	const window = 2 * time.Second
	before := make(map[string]int64)
	for n, alg := range algs {
		before[n] = alg.EffectiveBytes()
	}
	time.Sleep(window)
	rates := make(map[string]float64)
	for n, alg := range algs {
		rates[n] = float64(alg.EffectiveBytes()-before[n]) / window.Seconds()
	}
	return rates, nil
}
