// DHT: a Chord-style distributed hash table running as an iOverlay
// prefabricated algorithm — the structured-search application family
// (Pastry, Chord) that the paper's introduction motivates. Ten nodes
// bootstrap into a ring through periodic stabilization, then key-value
// pairs are stored and retrieved through greedy identifier-space routing.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	ioverlay "repro"
	"repro/internal/dht"
	"repro/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dht:", err)
		os.Exit(1)
	}
}

func run() error {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()

	const size = 10
	nodes := make([]*dht.Node, size)
	engines := make([]*ioverlay.Engine, size)
	ids := make([]ioverlay.NodeID, size)
	for i := size - 1; i >= 0; i-- {
		ids[i] = ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
		nodes[i] = &dht.Node{}
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        ids[i],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: nodes[i],
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		defer eng.Stop()
		engines[i] = eng
	}

	// Join everyone through node 1 and let stabilization build the ring.
	for i := 1; i < size; i++ {
		i := i
		engines[i].Do(func(engine.API) { nodes[i].Join(ids[0]) })
		time.Sleep(40 * time.Millisecond)
	}
	time.Sleep(2 * time.Second)

	fmt.Println("ring (by identifier-space position):")
	order := make([]int, size)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return nodes[order[a]].SelfKey() < nodes[order[b]].SelfKey()
	})
	for _, i := range order {
		fmt.Printf("  %s key=%016x successor=%s\n",
			ids[i], nodes[i].SelfKey(), nodes[i].Successor())
	}

	// Store a small phone book from node 3.
	entries := map[string]string{
		"alice": "555-0100", "bob": "555-0101", "carol": "555-0102",
		"dave": "555-0103", "erin": "555-0104", "frank": "555-0105",
		"grace": "555-0106", "heidi": "555-0107",
	}
	for name, phone := range entries {
		name, phone := name, phone
		engines[2].Do(func(engine.API) {
			nodes[2].Put(dht.KeyOf([]byte(name)), []byte(phone))
		})
	}
	time.Sleep(time.Second)

	fmt.Println("key placement:")
	for _, i := range order {
		if n := nodes[i].StoredKeys(); n > 0 {
			fmt.Printf("  %s stores %d keys\n", ids[i], n)
		}
	}

	// Look everything up from node 8.
	results := make(chan dht.GetResult, len(entries))
	nodes[7].OnGet = func(r dht.GetResult) { results <- r }
	for name := range entries {
		name := name
		engines[7].Do(func(engine.API) { nodes[7].Get(dht.KeyOf([]byte(name))) })
	}
	found := 0
	timeout := time.After(5 * time.Second)
	for found < len(entries) {
		select {
		case r := <-results:
			if r.Found {
				found++
			}
		case <-timeout:
			return fmt.Errorf("retrieved only %d/%d entries", found, len(entries))
		}
	}
	fmt.Printf("retrieved all %d entries via ring routing from a different node\n", found)
	return nil
}
