// Gossip: epidemic dissemination built on the iAlgorithm base class's
// Disseminate utility — the paper's "gossiping behavior in distributed
// systems". A rumor is injected at one node and spreads with probability
// p per known host per round; the demo sweeps p and reports coverage and
// message cost.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	ioverlay "repro"
	"repro/internal/protocol"
)

// rumor types: the payload is the rumor id; a tick drives rounds.
const (
	typeRumor ioverlay.MsgType = 200
	tickRound                  = 1
)

// gossiper spreads every rumor it knows to its known hosts with
// probability p, once per round, until it has seen no news for a while.
type gossiper struct {
	ioverlay.Base
	p        float64
	infected atomic.Bool
	sent     atomic.Int64
	fresh    bool
}

func (g *gossiper) Attach(api ioverlay.API) {
	g.Base.Attach(api)
	api.After(50*time.Millisecond, tickRound)
}

func (g *gossiper) Process(m *ioverlay.Msg) ioverlay.Verdict {
	switch m.Type() {
	case typeRumor:
		if !g.infected.Load() {
			g.infected.Store(true)
			g.fresh = true
		}
	case protocol.TypeTick:
		if g.infected.Load() && g.fresh {
			rumor := g.API.NewControl(typeRumor, 0, []byte("the rumor"))
			n := g.Disseminate(rumor, g.Known.All(), g.p)
			g.sent.Add(int64(n))
			// Keep gossiping a few rounds after infection, then go quiet.
			if g.Rng.Float64() < 0.2 {
				g.fresh = false
			}
		}
		g.API.After(50*time.Millisecond, tickRound)
	default:
		return g.Base.Process(m)
	}
	return ioverlay.Done
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gossip:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 30
	for _, p := range []float64{0.1, 0.3, 0.7} {
		covered, msgs, err := spread(n, p)
		if err != nil {
			return err
		}
		fmt.Printf("p=%.1f: %2d/%d nodes infected, %4d rumor messages sent\n",
			p, covered, n, msgs)
	}
	fmt.Println("higher p trades message overhead for faster, fuller coverage.")
	return nil
}

func spread(n int, p float64) (covered int, msgs int64, err error) {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:             ioverlay.MustParseID("10.255.0.1:9000"),
		Transport:      ioverlay.VirtualTransport(net),
		BootstrapCount: 6, // each node knows a random handful of peers
	})
	if err != nil {
		return 0, 0, err
	}
	if err := obs.Start(); err != nil {
		return 0, 0, err
	}
	defer obs.Stop()

	algs := make([]*gossiper, n)
	ids := make([]ioverlay.NodeID, n)
	for i := n - 1; i >= 0; i-- {
		ids[i] = ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
		algs[i] = &gossiper{p: p}
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        ids[i],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: algs[i],
			Observer:  obs.ID(),
		})
		if err != nil {
			return 0, 0, err
		}
		if err := eng.Start(); err != nil {
			return 0, 0, err
		}
		defer eng.Stop()
	}
	if !obs.WaitForNodes(n, 5*time.Second) {
		return 0, 0, fmt.Errorf("bootstrap incomplete")
	}
	for _, id := range ids {
		obs.PushMembership(id)
	}
	time.Sleep(100 * time.Millisecond)

	// Infect node 0 by sending it the rumor via the observer channel.
	obs.Command(ids[0], typeRumor, []byte("the rumor"))
	time.Sleep(3 * time.Second)

	for _, g := range algs {
		if g.infected.Load() {
			covered++
		}
		msgs += g.sent.Load()
	}
	return covered, msgs, nil
}
