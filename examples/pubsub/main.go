// Pubsub: content-based networking over iOverlay (the application family
// Section 3.1 of the paper highlights). Stock-quote events are published
// into a 7-node overlay; subscribers advertise predicates ("GOOG above
// 100", "any symbol starting with A") and the routers deliver each event
// to exactly the matching subscribers, forwarding along reverse paths set
// up by the advertisement flood.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	ioverlay "repro"
	"repro/internal/contentnet"
	"repro/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pubsub:", err)
		os.Exit(1)
	}
}

func run() error {
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:        ioverlay.MustParseID("10.255.0.1:9000"),
		Transport: ioverlay.VirtualTransport(net),
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()

	const n = 7
	routers := make([]*contentnet.Router, n)
	engines := make([]*ioverlay.Engine, n)
	ids := make([]ioverlay.NodeID, n)
	var deliveries [2]atomic.Int64
	for i := n - 1; i >= 0; i-- {
		ids[i] = ioverlay.MustParseID(fmt.Sprintf("10.0.0.%d:7000", i+1))
		routers[i] = &contentnet.Router{}
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        ids[i],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: routers[i],
			Observer:  obs.ID(),
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		defer eng.Stop()
		engines[i] = eng
	}
	if !obs.WaitForNodes(n, 5*time.Second) {
		return fmt.Errorf("bootstrap incomplete")
	}
	for _, id := range ids {
		obs.PushMembership(id)
	}
	time.Sleep(100 * time.Millisecond)

	// Subscriber 1 (node 1): GOOG above 100.
	routers[0].OnDeliver = func(e contentnet.Event) {
		deliveries[0].Add(1)
		price, _ := e.Attrs.Get("price")
		fmt.Printf("  [node1] GOOG>100: price=%d (%s)\n", price.Int, e.Body)
	}
	engines[0].Do(func(engine.API) {
		routers[0].Subscribe(1, contentnet.Predicate{Constraints: []contentnet.Constraint{
			{Attr: "symbol", Op: contentnet.OpEq, IsStr: true, Str: "GOOG"},
			{Attr: "price", Op: contentnet.OpGt, Int: 100},
		}})
	})
	// Subscriber 2 (node 7): anything whose symbol starts with "A".
	routers[6].OnDeliver = func(e contentnet.Event) {
		deliveries[1].Add(1)
		sym, _ := e.Attrs.Get("symbol")
		fmt.Printf("  [node7] A*: symbol=%s (%s)\n", sym.Str, e.Body)
	}
	engines[6].Do(func(engine.API) {
		routers[6].Subscribe(1, contentnet.Predicate{Constraints: []contentnet.Constraint{
			{Attr: "symbol", Op: contentnet.OpPrefix, IsStr: true, Str: "A"},
		}})
	})
	time.Sleep(500 * time.Millisecond) // advertisements flood

	// Publisher (node 4) emits a quote stream.
	quotes := []struct {
		symbol string
		price  int64
	}{
		{"GOOG", 95}, {"GOOG", 140}, {"AAPL", 80}, {"MSFT", 60},
		{"AMZN", 120}, {"GOOG", 210}, {"IBM", 55}, {"ADBE", 90},
	}
	fmt.Println("publishing quotes from node 4:")
	for _, q := range quotes {
		q := q
		engines[3].Do(func(engine.API) {
			routers[3].Publish(contentnet.Attrs{
				contentnet.StrAttr("symbol", q.symbol),
				contentnet.IntAttr("price", q.price),
			}, []byte(fmt.Sprintf("%s@%d", q.symbol, q.price)))
		})
	}
	time.Sleep(2 * time.Second)
	fmt.Printf("node1 received %d events (want 2: GOOG@140, GOOG@210)\n", deliveries[0].Load())
	fmt.Printf("node7 received %d events (want 3: AAPL, AMZN, ADBE)\n", deliveries[1].Load())
	return nil
}
