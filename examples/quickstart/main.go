// Quickstart: boot an observer and three virtualized iOverlay nodes in
// one process, deploy an application source, and watch the observer's
// view of the overlay — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	ioverlay "repro"
)

// relay forwards data to a fixed next hop and counts what it sees; a node
// without a next hop is a sink. Everything else falls back to the
// iAlgorithm defaults (bootstrap handling, source deployment).
type relay struct {
	ioverlay.Base
	next     ioverlay.NodeID
	received atomic.Int64
}

func (r *relay) Process(m *ioverlay.Msg) ioverlay.Verdict {
	if !m.IsData() {
		return r.Base.Process(m) // default handlers: boot, deploy, ...
	}
	r.received.Add(int64(m.Len()))
	if !r.next.IsZero() {
		r.API.Send(m, r.next) // zero-copy forward
	}
	return ioverlay.Done
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One in-process virtual network hosts everything.
	net := ioverlay.NewVirtualNetwork()
	defer net.Close()

	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:        ioverlay.MustParseID("10.255.0.1:9000"),
		Transport: ioverlay.VirtualTransport(net),
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()

	// A three-node chain: source -> relay -> sink.
	ids := []ioverlay.NodeID{
		ioverlay.MustParseID("10.0.0.1:7000"),
		ioverlay.MustParseID("10.0.0.2:7000"),
		ioverlay.MustParseID("10.0.0.3:7000"),
	}
	algs := []*relay{
		{next: ids[1]},
		{next: ids[2]},
		{},
	}
	for i, alg := range algs {
		eng, err := ioverlay.NewEngine(ioverlay.Config{
			ID:        ids[i],
			Transport: ioverlay.VirtualTransport(net),
			Algorithm: alg,
			Observer:  obs.ID(),
			UpBW:      400 << 10, // emulate a 400 KBps uplink per node
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		defer eng.Stop()
	}
	if !obs.WaitForNodes(3, 5*time.Second) {
		return fmt.Errorf("bootstrap incomplete: %v", obs.Alive())
	}
	fmt.Println("3 nodes bootstrapped:", obs.Alive())

	// Deploy a data source on the head of the chain, like the paper's
	// observer does with sDeploy: app 1, back-to-back, 2 KB messages.
	obs.Deploy(ids[0], 1, 0, 2048)

	for i := 0; i < 5; i++ {
		time.Sleep(time.Second)
		fmt.Printf("t=%ds sink received %d KB; observer topology:\n%s",
			i+1, algs[2].received.Load()/1024, obs.RenderTopology())
	}

	// Throttle the source's uplink at runtime and watch rates adapt.
	fmt.Println("throttling source uplink to 100 KBps...")
	obs.SetBandwidth(ids[0], ioverlay.SetBandwidth{
		Class: ioverlay.BandwidthUp, Rate: 100 << 10,
	})
	time.Sleep(3 * time.Second)
	fmt.Printf("after throttle:\n%s", obs.RenderTopology())
	return nil
}
