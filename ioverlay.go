// Package ioverlay is a Go reproduction of iOverlay, the lightweight
// middleware infrastructure for overlay application implementations
// (Li, Guo, Wang — Middleware 2004).
//
// iOverlay separates a distributed overlay application into three layers:
// the message switching engine (provided here by this library), the
// application-specific algorithm (implemented by you against the
// Algorithm interface), and the application producing and consuming data.
// The engine handles everything the paper calls mundane or challenging:
// multi-threaded message switching, persistent connections, failure
// detection and domino teardown, QoS measurement, bandwidth emulation,
// bootstrap and monitoring through a central observer, and virtualization
// of many overlay nodes in one process.
//
// # Quick start
//
// Implement an algorithm by embedding Base and handling the data type:
//
//	type Echo struct{ ioverlay.Base }
//
//	func (e *Echo) Process(m *ioverlay.Msg) ioverlay.Verdict {
//		if m.IsData() {
//			// consume, or forward with e.API.Send(m, dest)
//			return ioverlay.Done
//		}
//		return e.Base.Process(m)
//	}
//
// Then boot a node:
//
//	eng, err := ioverlay.NewEngine(ioverlay.Config{
//		ID:        ioverlay.MustParseID("10.0.0.1:7000"),
//		Transport: ioverlay.TCPTransport(),
//		Algorithm: &Echo{},
//	})
//
// For laptop-scale experiments, use a virtual network instead of TCP:
//
//	net := ioverlay.NewVirtualNetwork()
//	cfg.Transport = ioverlay.VirtualTransport(net)
//
// The examples/ directory contains five runnable applications, and
// cmd/ibench regenerates every table and figure of the paper.
package ioverlay

import (
	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/observer"
	"repro/internal/protocol"
	"repro/internal/proxy"
	"repro/internal/vnet"
)

// Core message types.
type (
	// Msg is an application-layer message with the paper's fixed 24-byte
	// header.
	Msg = message.Msg
	// MsgType identifies a message's kind; values at or above
	// FirstDataType are application data.
	MsgType = message.Type
	// NodeID identifies an overlay node by IPv4 address and port.
	NodeID = message.NodeID
)

// Engine types.
type (
	// Engine is one iOverlay node: the application-layer message switch.
	Engine = engine.Engine
	// Config parameterizes an Engine.
	Config = engine.Config
	// Algorithm is the application-specific protocol interface — the one
	// thing an iOverlay developer implements.
	Algorithm = engine.Algorithm
	// API is the engine surface exposed to algorithms; Send is the only
	// call most algorithms need.
	API = engine.API
	// Verdict is an algorithm's answer to Process.
	Verdict = engine.Verdict
	// Transport supplies connectivity (TCP or virtual).
	Transport = engine.Transport
)

// Algorithm-support types.
type (
	// Base is the iAlgorithm analogue: default handlers plus utilities
	// (KnownHosts, probabilistic Disseminate). Embed it in algorithms.
	Base = algorithm.Base
	// KnownHosts is the local membership view.
	KnownHosts = algorithm.KnownHosts
)

// Monitoring types.
type (
	// Observer is the centralized bootstrap/monitoring/control facility.
	Observer = observer.Observer
	// ObserverConfig parameterizes an Observer.
	ObserverConfig = observer.Config
	// Proxy relays many nodes' observer traffic over one connection
	// through a firewall.
	Proxy = proxy.Proxy
	// ProxyConfig parameterizes a Proxy.
	ProxyConfig = proxy.Config
	// Report is a node's status update: buffer lengths, link lists, QoS
	// measurements.
	Report = protocol.Report
	// SetBandwidth is the runtime bandwidth-emulation command.
	SetBandwidth = protocol.SetBandwidth
	// VirtualNetwork is an in-process network for virtualized nodes.
	VirtualNetwork = vnet.Network
)

// Verdicts.
const (
	// Done returns message ownership to the engine.
	Done = engine.Done
	// Hold transfers ownership to the algorithm for n-to-m processing.
	Hold = engine.Hold
)

// FirstDataType is the first message type treated as application data.
const FirstDataType = message.FirstDataType

// Bandwidth emulation categories for SetBandwidth.
const (
	BandwidthTotal = protocol.BandwidthTotal
	BandwidthUp    = protocol.BandwidthUp
	BandwidthDown  = protocol.BandwidthDown
	BandwidthLink  = protocol.BandwidthLink
)

// NewEngine constructs an engine; call Start to run it.
func NewEngine(cfg Config) (*Engine, error) { return engine.New(cfg) }

// NewObserver constructs the monitoring facility.
func NewObserver(cfg ObserverConfig) (*Observer, error) { return observer.New(cfg) }

// NewProxy constructs an observer relay.
func NewProxy(cfg ProxyConfig) (*Proxy, error) { return proxy.New(cfg) }

// NewVirtualNetwork builds an in-process network; pass it to
// VirtualTransport to run virtualized nodes without sockets.
func NewVirtualNetwork() *VirtualNetwork { return vnet.New() }

// TCPTransport returns the real-network transport.
func TCPTransport() Transport { return engine.TCP{} }

// VirtualTransport adapts a virtual network to the engine.
func VirtualTransport(n *VirtualNetwork) Transport { return engine.VNet{Net: n} }

// NewMsg constructs a message; see Config and API for pooled variants.
func NewMsg(typ MsgType, sender NodeID, app, seq uint32, payload []byte) *Msg {
	return message.New(typ, sender, app, seq, payload)
}

// ParseID parses "a.b.c.d:port" into a NodeID.
func ParseID(s string) (NodeID, error) { return message.ParseID(s) }

// MustParseID is ParseID panicking on error; for literals.
func MustParseID(s string) NodeID {
	id, err := message.ParseID(s)
	if err != nil {
		panic(err)
	}
	return id
}
