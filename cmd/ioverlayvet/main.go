// Command ioverlayvet runs the repo-specific invariant linter over the
// module. It checks the middleware contracts the engine's correctness
// depends on — algorithm purity, control-lane discipline, lock
// discipline, and hot-path hygiene — and exits nonzero on any finding.
//
// Usage:
//
//	ioverlayvet [packages]
//
// Package arguments are directories; the Go-style "./..." wildcard
// expands to every package under the current directory, skipping
// testdata (the linter's own fixtures are seeded violations).
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
			if root == "" || root == "." {
				root = "."
			}
			expanded, err := lint.ExpandPackages(root)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ioverlayvet: %v\n", err)
				os.Exit(2)
			}
			dirs = append(dirs, expanded...)
			continue
		}
		dirs = append(dirs, a)
	}
	sort.Strings(dirs)

	if len(dirs) == 0 {
		return
	}
	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioverlayvet: %v\n", err)
		os.Exit(2)
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioverlayvet: %v\n", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, p)
	}
	diags := lint.Run(loader, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
