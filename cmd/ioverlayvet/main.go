// Command ioverlayvet runs the repo-specific invariant linter over the
// module. It checks the middleware contracts the engine's correctness
// depends on — algorithm purity, control-lane discipline, lock and
// lock-order discipline, hot-path hygiene, admission non-blocking rules,
// atomic-field consistency, and goroutine lifecycle accounting — and
// exits nonzero on any non-baselined finding.
//
// Usage:
//
//	ioverlayvet [flags] [packages]
//
//	-json                emit findings as a JSON array on stdout
//	-timing              print a per-check wall-clock breakdown to stderr
//	-baseline FILE       suppress findings listed in FILE; stale entries
//	                     (fixed findings still listed) are an error
//	-write-baseline FILE write current findings to FILE and exit 0
//
// Package arguments are directories; the Go-style "./..." wildcard
// expands to every package under the current directory, skipping
// testdata (the linter's own fixtures are seeded violations).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	timing := flag.Bool("timing", false, "print a per-check wall-clock breakdown to stderr")
	baselinePath := flag.String("baseline", "", "suppress findings listed in this file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this file and exit 0")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
			if root == "" || root == "." {
				root = "."
			}
			expanded, err := lint.ExpandPackages(root)
			if err != nil {
				fatal(err)
			}
			dirs = append(dirs, expanded...)
			continue
		}
		dirs = append(dirs, a)
	}
	sort.Strings(dirs)

	if len(dirs) == 0 {
		return
	}
	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fatal(err)
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	diags, timings := lint.RunTimed(loader, pkgs)

	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "ioverlayvet: %-16s %s\n", t.Check, t.Duration.Round(10*time.Microsecond))
		}
	}

	if *writeBaseline != "" {
		content := "# ioverlayvet baseline — accepted findings, one per line.\n" +
			"# Format: file: check: message. Keep a justification comment above each entry.\n" +
			lint.FormatBaseline(loader.ModuleRoot, diags)
		if err := os.WriteFile(*writeBaseline, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ioverlayvet: wrote %d baseline entries to %s\n", len(diags), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var suppressed []lint.Diagnostic
		var stale []string
		diags, suppressed, stale = b.Filter(loader.ModuleRoot, diags)
		if len(suppressed) > 0 && !*jsonOut {
			fmt.Fprintf(os.Stderr, "ioverlayvet: %d finding(s) suppressed by %s\n", len(suppressed), *baselinePath)
		}
		if len(stale) > 0 {
			for _, s := range stale {
				fmt.Fprintf(os.Stderr, "ioverlayvet: stale baseline entry (finding no longer reported): %s\n", s)
			}
			fmt.Fprintf(os.Stderr, "ioverlayvet: remove stale entries from %s\n", *baselinePath)
			os.Exit(1)
		}
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ioverlayvet: %v\n", err)
	os.Exit(2)
}
