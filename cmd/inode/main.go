// Command inode runs one iOverlay node over real TCP: an engine plus a
// selected algorithm, bootstrapped from an observer (or proxy). Several
// virtualized nodes may be run per machine by launching inode multiple
// times with different ports, exactly as the paper deploys dozens of
// iOverlay nodes per physical PlanetLab host.
//
// Usage:
//
//	inode -id 10.0.0.5:7000 -observer 10.0.0.1:9000,10.0.0.2:9000 -alg forward \
//	      [-routes 10.0.0.6:7000,10.0.0.7:7000] [-up 200KB] [-down 0] [-total 0]
//
// Listing several observers makes the node register with the first and
// fail over down the list when its observer link dies.
//
// Algorithms:
//
//	forward        static forwarder: data is copied to every -routes node
//	tree-unicast   dissemination tree, all-unicast construction
//	tree-random    dissemination tree, randomized construction
//	tree-ns        dissemination tree, node-stress-aware construction
//	fed-sflow      service federation, sFlow instance selection
//	fed-fixed      service federation, fixed (max-capacity) selection
//	fed-random     service federation, random selection
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	ioverlay "repro"
	"repro/internal/debughttp"
	"repro/internal/federation"
	"repro/internal/multicast"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inode:", err)
		os.Exit(1)
	}
}

// parseRate accepts "0", "400KB", "1MB", or raw bytes-per-second.
func parseRate(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "KB")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %w", s, err)
	}
	return v * mult, nil
}

func run() error {
	idStr := flag.String("id", "127.0.0.1:7000", "node identity and listen address (ip:port)")
	obsStr := flag.String("observer", "", "observer or proxy address (ip:port); a comma-separated list enables failover in order; empty runs standalone")
	algName := flag.String("alg", "forward", "algorithm: forward|tree-unicast|tree-random|tree-ns|fed-sflow|fed-fixed|fed-random")
	routesStr := flag.String("routes", "", "comma-separated downstream nodes for -alg forward")
	app := flag.Uint("app", 1, "application/session identifier for tree algorithms")
	upStr := flag.String("up", "0", "emulated uplink bandwidth (e.g. 200KB; 0 = unlimited)")
	downStr := flag.String("down", "0", "emulated downlink bandwidth")
	totalStr := flag.String("total", "0", "emulated total bandwidth")
	lastMileStr := flag.String("lastmile", "100KB", "last-mile bandwidth for node-stress computation")
	bufMsgs := flag.Int("buffers", 64, "receiver/sender buffer capacity in messages")
	maxHandshakes := flag.Int("max-handshakes", 0, "concurrent inbound handshake cap; excess connections get a one-frame busy refusal (0 = default 64, negative disables admission control)")
	acceptRate := flag.Float64("accept-rate", 0, "sustained per-source accept rate in connections/sec (0 = default 16)")
	greylistAfter := flag.Int("greylist-after", 0, "consecutive rate refusals before a source is greylisted (0 = default 8)")
	greylistFor := flag.Duration("greylist-for", 0, "how long a greylisted source's connections are closed silently (0 = default 2s)")
	busyProbe := flag.Duration("busy-probe", 0, "post-hello window a dialer listens for a busy refusal (0 = default 5ms, negative disables)")
	transport := flag.String("transport", "tcp", "data lane transport: tcp (reliable streams) or udp (datagrams for data; control stays on TCP)")
	mtu := flag.Int("mtu", 0, "outgoing datagram size cap in bytes for -transport udp (0 = default 1400)")
	debugAddr := flag.String("debug", "", "serve expvar/pprof debug endpoints on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	id, err := ioverlay.ParseID(*idStr)
	if err != nil {
		return err
	}
	up, err := parseRate(*upStr)
	if err != nil {
		return err
	}
	down, err := parseRate(*downStr)
	if err != nil {
		return err
	}
	total, err := parseRate(*totalStr)
	if err != nil {
		return err
	}
	lastMile, err := parseRate(*lastMileStr)
	if err != nil {
		return err
	}

	var alg ioverlay.Algorithm
	switch *algName {
	case "forward":
		f := &multicast.Forwarder{}
		if *routesStr != "" {
			for _, r := range strings.Split(*routesStr, ",") {
				dest, err := ioverlay.ParseID(strings.TrimSpace(r))
				if err != nil {
					return fmt.Errorf("-routes: %w", err)
				}
				f.DefaultRoutes = append(f.DefaultRoutes, dest)
			}
		}
		alg = f
	case "tree-unicast", "tree-random", "tree-ns":
		variant := map[string]tree.Variant{
			"tree-unicast": tree.Unicast,
			"tree-random":  tree.Random,
			"tree-ns":      tree.StressAware,
		}[*algName]
		alg = &tree.Tree{
			Variant:    variant,
			App:        uint32(*app),
			LastMile:   lastMile,
			AutoRejoin: true,
		}
	case "fed-sflow", "fed-fixed", "fed-random":
		policy := map[string]federation.Selection{
			"fed-sflow":  federation.SFlow,
			"fed-fixed":  federation.Fixed,
			"fed-random": federation.RandomSel,
		}[*algName]
		alg = &federation.Node{Policy: policy}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	cfg := ioverlay.Config{
		ID:        id,
		Transport: ioverlay.TCPTransport(),
		Algorithm: alg,
		TotalBW:   total,
		UpBW:      up,
		DownBW:    down,
		RecvBuf:   *bufMsgs,
		SendBuf:   *bufMsgs,

		MaxHandshakes: *maxHandshakes,
		AcceptRate:    *acceptRate,
		GreylistAfter: *greylistAfter,
		GreylistFor:   *greylistFor,
		BusyProbe:     *busyProbe,
	}
	switch *transport {
	case "tcp":
	case "udp":
		cfg.DatagramData = true
		cfg.DatagramMTU = *mtu
	default:
		return fmt.Errorf("unknown transport %q (want tcp or udp)", *transport)
	}
	if *obsStr != "" {
		for _, part := range strings.Split(*obsStr, ",") {
			obsID, err := ioverlay.ParseID(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("-observer: %w", err)
			}
			cfg.Observers = append(cfg.Observers, obsID)
		}
	}
	eng, err := ioverlay.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()
	fmt.Printf("node %s running %s (observer %q)\n", id, *algName, *obsStr)

	if *debugAddr != "" {
		debughttp.Publish("ioverlay.counters", func() any { return eng.Counters() })
		debughttp.Publish("ioverlay.events", func() any { return eng.Events() })
		l, err := debughttp.Serve(*debugAddr, nil)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer l.Close()
		fmt.Printf("debug endpoints on http://%s/debug/\n", l.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return nil
}
