// Command ibench regenerates the tables and figures of the iOverlay
// paper's evaluation on the in-process virtual testbed and prints them in
// the paper's units. By default it runs scaled-down configurations that
// finish in a couple of minutes; -full runs the paper-scale versions
// (81-node trees, 500-requirement federation sweeps).
//
// Usage:
//
//	ibench                    # everything, scaled
//	ibench -fig 6             # one figure
//	ibench -table 3           # one table
//	ibench -exp timeline      # flight-recorder view of a churn run
//	ibench -full              # paper-scale parameters
//	ibench -debug :6060 ...   # expvar/pprof endpoints while it runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/debughttp"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/tree"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 5,6,7,8,9,11,12,14,15,16,17,18,19 (empty = all)")
	table := flag.String("table", "", "table to regenerate: 3 (empty = all)")
	exp := flag.String("exp", "", "named experiment to regenerate: churn, overload, timeline, dialstorm, udploss (empty = all)")
	full := flag.Bool("full", false, "paper-scale parameters (slower)")
	debugAddr := flag.String("debug", "", "serve expvar/pprof debug endpoints on this address while running (e.g. 127.0.0.1:6060)")
	flag.Parse()

	if *debugAddr != "" {
		l, err := debughttp.Serve(*debugAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibench: debug listener: %v\n", err)
			os.Exit(1)
		}
		defer l.Close()
		fmt.Printf("debug endpoints on http://%s/debug/\n", l.Addr())
	}

	want := func(name string) bool {
		if *fig == "" && *table == "" && *exp == "" {
			return true
		}
		return name == "fig"+*fig || name == "table"+*table || name == *exp
	}
	start := time.Now()
	ok := true
	runStep := func(names []string, run func() error) {
		hit := false
		for _, n := range names {
			if want(n) {
				hit = true
			}
		}
		if !hit {
			return
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "ibench: %v\n", err)
			ok = false
		}
	}

	runStep([]string{"fig5"}, func() error {
		cfg := experiments.Fig5Config{}
		if !*full {
			cfg.Sizes = []int{2, 3, 4, 5, 6, 8, 12, 16, 32}
			cfg.Window = 700 * time.Millisecond
		}
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig5(rows))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig6"}, func() error {
		phases, err := experiments.Fig6(experiments.Fig6Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6("Fig 6: engine correctness, small buffers (back-pressure)", phases))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig7"}, func() error {
		phases, err := experiments.Fig7(experiments.Fig6Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6("Fig 7: large buffers localize bottlenecks", phases))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig8"}, func() error {
		res, err := experiments.Fig8(experiments.Fig8Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig8(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"table3", "fig9"}, func() error {
		rows, figs, err := experiments.TreeSmall(experiments.TreeSmallConfig{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable3(rows))
		fmt.Println()
		fmt.Print(experiments.RenderFig9(figs))
		fmt.Println()
		return nil
	})

	runStep([]string{"churn"}, func() error {
		cfg := experiments.Fig9ChurnConfig{}
		if !*full {
			cfg.N = 20
			cfg.MaxConcurrent = 4
		}
		points, err := experiments.Fig9Churn(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig9Churn(points))
		fmt.Println()
		return nil
	})

	runStep([]string{"timeline"}, func() error {
		cfg := experiments.TimelineConfig{}
		if !*full {
			cfg.N = 16
			cfg.Kills = 2
		}
		res, err := experiments.Timeline(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTimelineResult(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"overload"}, func() error {
		cfg := experiments.OverloadConfig{}
		if !*full {
			cfg.N = 14
			cfg.Kills = 2
		}
		res, err := experiments.Overload(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderOverload(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"dialstorm"}, func() error {
		cfg := experiments.DialStormConfig{}
		if !*full {
			cfg.N = 14
			cfg.StormFor = 1500 * time.Millisecond
		}
		res, err := experiments.DialStorm(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDialStorm(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"udploss"}, func() error {
		cfg := experiments.UDPLossConfig{}
		if *full {
			cfg.Window = 3 * time.Second
		}
		res, err := experiments.UDPLoss(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderUDPLoss(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig11", "fig12", "fig13"}, func() error {
		cfg := experiments.Fig11Config{Seed: 7}
		if !*full {
			cfg.N = 24
			cfg.Window = 2 * time.Second
		}
		results, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig11(results))
		fmt.Println()
		for _, r := range results {
			if r.Variant == tree.StressAware {
				fmt.Println("Fig 12/13: node-stress-aware topology")
				fmt.Print(experiments.RenderTopology(r))
				fmt.Println()
			}
		}
		return nil
	})

	runStep([]string{"fig14", "fig15"}, func() error {
		res, err := experiments.Fed16(experiments.Fed16Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFed16(res))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig16"}, func() error {
		cfg := experiments.Fig16Config{}
		if !*full {
			cfg.N = 18
			cfg.Minutes = 14
			cfg.MinuteDur = 200 * time.Millisecond
		}
		points, err := experiments.Fig16(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig16(points))
		fmt.Println()
		return nil
	})

	runStep([]string{"fig17", "fig18"}, func() error {
		cfg := experiments.FedSweepConfig{Policy: federation.SFlow}
		if !*full {
			cfg.Sizes = []int{5, 10, 15, 20, 25, 30}
			cfg.Requirements = 30
		}
		rows, err := experiments.FedSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig17(rows))
		fmt.Println()
		for _, r := range rows {
			if r.Size == 30 {
				fmt.Print(experiments.RenderFig18(r))
				fmt.Println()
			}
		}
		return nil
	})

	runStep([]string{"fig19"}, func() error {
		byPolicy := make(map[federation.Selection][]experiments.Fig17Row)
		for _, p := range []federation.Selection{federation.SFlow, federation.Fixed, federation.RandomSel} {
			cfg := experiments.FedSweepConfig{Policy: p}
			if !*full {
				cfg.Sizes = []int{5, 10, 15, 20, 25, 30}
				cfg.Requirements = 30
			}
			rows, err := experiments.FedSweep(cfg)
			if err != nil {
				return err
			}
			byPolicy[p] = rows
		}
		fmt.Print(experiments.RenderFig19(byPolicy))
		fmt.Println()
		return nil
	})

	fmt.Printf("ibench finished in %v\n", time.Since(start).Round(time.Second))
	if !ok {
		os.Exit(1)
	}
}
