// Command iobserver runs the iOverlay observer: the centralized
// bootstrap, monitoring and control facility. It is the headless
// replacement for the paper's Windows GUI: the live topology is printed
// periodically and traces are logged to stdout.
//
// Usage:
//
//	iobserver -listen 10.0.0.1:9000 [-bootstrap 8] [-topology 5s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ioverlay "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iobserver:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9000", "observer listen address (ip:port)")
	bootstrap := flag.Int("bootstrap", 8, "nodes returned per bootstrap request")
	topoEvery := flag.Duration("topology", 5*time.Second, "topology print interval (0 disables)")
	flag.Parse()

	id, err := ioverlay.ParseID(*listen)
	if err != nil {
		return err
	}
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:             id,
		Transport:      ioverlay.TCPTransport(),
		BootstrapCount: *bootstrap,
		TraceWriter:    os.Stdout,
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()
	fmt.Printf("observer listening on %s\n", id)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *topoEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*topoEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			alive := obs.Alive()
			fmt.Printf("--- %d alive nodes ---\n%s", len(alive), obs.RenderTopology())
		case <-stop:
			return nil
		}
	}
}
