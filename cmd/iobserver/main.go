// Command iobserver runs the iOverlay observer: the centralized
// bootstrap, monitoring and control facility. It is the headless
// replacement for the paper's Windows GUI: the live topology is printed
// periodically and traces are logged to stdout.
//
// Usage:
//
//	iobserver -listen 10.0.0.1:9000 [-bootstrap 8] [-topology 5s]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ioverlay "repro"
	"repro/internal/debughttp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iobserver:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9000", "observer listen address (ip:port)")
	bootstrap := flag.Int("bootstrap", 8, "nodes returned per bootstrap request")
	topoEvery := flag.Duration("topology", 5*time.Second, "topology print interval (0 disables)")
	debugAddr := flag.String("debug", "", "serve expvar/pprof debug endpoints plus /debug/timeline on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	id, err := ioverlay.ParseID(*listen)
	if err != nil {
		return err
	}
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:             id,
		Transport:      ioverlay.TCPTransport(),
		BootstrapCount: *bootstrap,
		TraceWriter:    os.Stdout,
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()
	fmt.Printf("observer listening on %s\n", id)

	if *debugAddr != "" {
		debughttp.Publish("ioverlay.alive", func() any { return obs.Alive() })
		l, err := debughttp.Serve(*debugAddr, map[string]http.Handler{
			"/debug/timeline": debughttp.Text(obs.RenderTimeline),
			"/debug/timeline.json": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				raw, err := obs.TimelineJSON()
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(raw)
			}),
			"/debug/hists":    debughttp.Text(obs.RenderHists),
			"/debug/topology": debughttp.Text(obs.RenderTopology),
		})
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer l.Close()
		fmt.Printf("debug endpoints on http://%s/debug/\n", l.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *topoEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*topoEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			alive := obs.Alive()
			fmt.Printf("--- %d alive nodes ---\n%s", len(alive), obs.RenderTopology())
		case <-stop:
			return nil
		}
	}
}
