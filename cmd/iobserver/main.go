// Command iobserver runs the iOverlay observer: the centralized
// bootstrap, monitoring and control facility. It is the headless
// replacement for the paper's Windows GUI: the live topology is printed
// periodically and traces are logged to stdout.
//
// Usage:
//
//	iobserver -listen 10.0.0.1:9000 [-peers 10.0.0.2:9000,10.0.0.3:9000] \
//	          [-bootstrap 8] [-topology 5s]
//
// Listing peers federates this observer with the others: registration
// tables anti-entropy-sync across the tier, so nodes may register with
// any member and every member serves bootstrap from the merged view.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ioverlay "repro"
	"repro/internal/debughttp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iobserver:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9000", "observer listen address (ip:port)")
	bootstrap := flag.Int("bootstrap", 8, "nodes returned per bootstrap request")
	peersStr := flag.String("peers", "", "comma-separated peer observer addresses forming a federated tier")
	topoEvery := flag.Duration("topology", 5*time.Second, "topology print interval (0 disables)")
	maxHandshakes := flag.Int("max-handshakes", 0, "concurrent inbound handshake cap; excess connections get a one-frame busy refusal (0 = default 64, negative disables admission control)")
	acceptRate := flag.Float64("accept-rate", 0, "sustained per-source accept rate in connections/sec (0 = default 16)")
	greylistAfter := flag.Int("greylist-after", 0, "consecutive rate refusals before a source is greylisted (0 = default 8)")
	greylistFor := flag.Duration("greylist-for", 0, "how long a greylisted source's connections are closed silently (0 = default 2s)")
	debugAddr := flag.String("debug", "", "serve expvar/pprof debug endpoints plus /debug/timeline on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	id, err := ioverlay.ParseID(*listen)
	if err != nil {
		return err
	}
	var peers []ioverlay.NodeID
	if *peersStr != "" {
		for _, part := range strings.Split(*peersStr, ",") {
			p, err := ioverlay.ParseID(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
			peers = append(peers, p)
		}
	}
	obs, err := ioverlay.NewObserver(ioverlay.ObserverConfig{
		ID:             id,
		Transport:      ioverlay.TCPTransport(),
		BootstrapCount: *bootstrap,
		TraceWriter:    os.Stdout,
		Peers:          peers,

		MaxHandshakes: *maxHandshakes,
		AcceptRate:    *acceptRate,
		GreylistAfter: *greylistAfter,
		GreylistFor:   *greylistFor,
	})
	if err != nil {
		return err
	}
	if err := obs.Start(); err != nil {
		return err
	}
	defer obs.Stop()
	fmt.Printf("observer listening on %s\n", id)

	if *debugAddr != "" {
		debughttp.Publish("ioverlay.alive", func() any { return obs.Alive() })
		l, err := debughttp.Serve(*debugAddr, map[string]http.Handler{
			"/debug/timeline": debughttp.Text(obs.RenderTimeline),
			"/debug/timeline.json": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				raw, err := obs.TimelineJSON()
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(raw)
			}),
			"/debug/hists":    debughttp.Text(obs.RenderHists),
			"/debug/topology": debughttp.Text(obs.RenderTopology),
		})
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer l.Close()
		fmt.Printf("debug endpoints on http://%s/debug/\n", l.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *topoEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*topoEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			alive := obs.Alive()
			fmt.Printf("--- %d alive nodes ---\n%s", len(alive), obs.RenderTopology())
		case <-stop:
			return nil
		}
	}
}
