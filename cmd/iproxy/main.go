// Command iproxy runs the iOverlay observer proxy: an efficient relay for
// environments where the observer sits behind a firewall. Nodes connect
// to the proxy; their status updates reach the observer over a single
// trunk connection and observer commands travel back inside relay
// envelopes.
//
// Usage:
//
//	iproxy -listen 10.0.0.2:9100 -observer 10.0.0.1:9000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	ioverlay "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iproxy:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9100", "proxy listen address (ip:port)")
	observerAddr := flag.String("observer", "127.0.0.1:9000", "upstream observer address")
	flag.Parse()

	id, err := ioverlay.ParseID(*listen)
	if err != nil {
		return err
	}
	obsID, err := ioverlay.ParseID(*observerAddr)
	if err != nil {
		return err
	}
	p, err := ioverlay.NewProxy(ioverlay.ProxyConfig{
		ID:        id,
		Observer:  obsID,
		Transport: ioverlay.TCPTransport(),
	})
	if err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		return err
	}
	defer p.Stop()
	fmt.Printf("proxy on %s relaying to observer %s\n", id, obsID)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return nil
}
