GO ?= go

.PHONY: ci build test vet race bench

# ci is the tier-1 gate: everything here must pass before a change lands.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy data-path packages additionally run under the race
# detector: the batched ring handoffs, engine switch, and virtual-network
# pipes are where a lost wakeup or torn batch would hide.
race:
	$(GO) test -race ./internal/queue ./internal/engine ./internal/vnet

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
