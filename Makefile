GO ?= go

.PHONY: ci fmt build test vet race chaos bench

# ci is the tier-1 gate: everything here must pass before a change lands.
ci: fmt vet build test race chaos

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy data-path packages additionally run under the race
# detector: the batched ring handoffs, engine switch, and virtual-network
# pipes are where a lost wakeup or torn batch would hide.
race:
	$(GO) test -race ./internal/queue ./internal/engine ./internal/vnet

# The fault-injection soak: a seeded chaos schedule (kills, restarts,
# partitions, flaky links) against a live 16-node multicast session,
# ending with a saturated round — interior kills while every receiver
# uplink is throttled below the stream rate.
chaos:
	$(GO) test -race -run Chaos ./internal/chaos/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
