GO ?= go

.PHONY: ci fmt build test vet lint lint-baseline fuzz race chaos bench bench-shards trace-smoke

# ci is the tier-1 gate: everything here must pass before a change lands.
ci: fmt vet lint build test trace-smoke fuzz race chaos

# Linter fixtures under internal/lint/testdata deliberately contain
# rule-violating code; they are exercised by the linter's own tests, not
# by the formatting gate.
fmt:
	@out="$$(find . -name '*.go' -not -path './internal/lint/testdata/*' -print0 | xargs -0 gofmt -l)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs ioverlayvet, the repo's own invariant linter — ten checks on
# the whole-program call graph: algorithm purity, control-lane
# discipline, lock discipline and lock ordering, hot-path hygiene,
# shard-local ownership, observer-sync rules, admission non-blocking
# rules, atomic-field consistency, and goroutine lifecycle accounting.
# Non-baselined findings (and stale baseline entries) are build breaks;
# per-check timings go to stderr.
lint:
	$(GO) run ./cmd/ioverlayvet -timing -baseline lint.baseline ./...

# lint-baseline regenerates lint.baseline from the current findings. Use
# it only to accept a finding deliberately, and add a justification
# comment above each new entry before committing.
lint-baseline:
	$(GO) run ./cmd/ioverlayvet -write-baseline lint.baseline ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fuzz replays the committed seed corpora (already covered by `test`) and
# then gives each wire-format fuzzer a short randomized smoke. Crashers
# land in testdata/fuzz and must be committed as regression inputs.
FUZZTIME ?= 10s
fuzz:
	@for f in FuzzAllPayloadDecoders FuzzReaderPrimitives; do \
		$(GO) test ./internal/protocol -run='^$$' -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) || exit 1; done
	@for f in FuzzDecode FuzzRead FuzzReadContinued FuzzWireRoundTrip FuzzDgramDecode; do \
		$(GO) test ./internal/message -run='^$$' -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) || exit 1; done

# The concurrency-heavy data-path packages additionally run under the race
# detector: the batched ring handoffs, engine switch, and virtual-network
# pipes are where a lost wakeup or torn batch would hide. The
# ioverlay_debug tag arms the internal/invariant runtime assertions
# (engine-goroutine ownership, gauge non-negativity, watermark ordering)
# so a violated invariant fails the run instead of corrupting it.
race:
	$(GO) test -race -tags ioverlay_debug ./internal/queue ./internal/engine ./internal/vnet

# The fault-injection soaks: a seeded chaos schedule (kills, restarts,
# partitions, flaky links) against a live 16-node multicast session,
# ending with a saturated round — interior kills while every receiver
# uplink is throttled below the stream rate — plus the observer-failover
# round, where a 3-observer federated tier is killed member by member
# under node churn, and the dial-storm round, where half-open connection
# floods hammer the stream's listeners while the admission gate sheds
# them. Runs with assertions armed.
chaos:
	$(GO) test -race -tags ioverlay_debug -run Chaos ./internal/chaos/...

# trace-smoke proves the flight-recorder pipeline end to end with fresh
# runs (-count=1 defeats the test cache): events recorded on a live
# engine, shipped inside status reports, and assembled by the observer
# into a merged cross-node timeline with populated lane histograms.
trace-smoke:
	$(GO) test -count=1 -run 'TestTrace' ./internal/engine
	$(GO) test -count=1 -run 'TestTimelineAggregation' ./internal/observer

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-shards sweeps the sharded switch across core counts (each -cpu
# value sets GOMAXPROCS and thus the engine's lane count) and folds the
# per-point results into BENCH_shards.json, the machine-readable perf
# trajectory tracked across PRs.
bench-shards:
	IOVERLAY_BENCH_JSON=$(CURDIR)/BENCH_shards.json \
		$(GO) test -run=^$$ -bench='^BenchmarkFig5Shards$$' -benchtime=2x -cpu 1,2,4,8 .
