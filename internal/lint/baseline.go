package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a committed list of accepted diagnostics, so the
// linter can gate CI on *new* findings while known ones are suppressed
// with a written record. Entries deliberately omit line numbers — a
// baselined finding should survive unrelated edits above it — and match
// on (module-relative file, check, message). Witness-path messages are
// rendered without positions for the same reason.
//
// File format, one entry per line:
//
//	relative/file.go: checkname: message text
//
// Blank lines and lines starting with '#' are comments; the justification
// for each suppression lives right next to it.

// Baseline is a set of accepted diagnostics.
type Baseline struct {
	entries map[string]bool
}

func baselineKey(file, check, message string) string {
	return file + ": " + check + ": " + message
}

// relPath renders a diagnostic filename relative to root (the module
// root), falling back to the name unchanged.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// ParseBaseline parses baseline text. Malformed lines are errors: a typo
// in a suppression must not silently re-enable (or worse, widen) it.
func ParseBaseline(data []byte) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]bool)}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want \"file: check: message\", got %q", i+1, line)
		}
		b.entries[baselineKey(parts[0], parts[1], parts[2])] = true
	}
	return b, nil
}

// LoadBaseline reads and parses a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Len reports the number of baseline entries.
func (b *Baseline) Len() int { return len(b.entries) }

// Filter splits diagnostics into kept (not baselined) and suppressed,
// and returns the stale entries — baseline lines no diagnostic matched,
// which means the underlying issue was fixed and the suppression should
// be deleted. root is the module root for relativizing filenames.
func (b *Baseline) Filter(root string, diags []Diagnostic) (kept, suppressed []Diagnostic, stale []string) {
	matched := make(map[string]bool, len(b.entries))
	for _, d := range diags {
		key := baselineKey(relPath(root, d.Pos.Filename), d.Check, d.Message)
		if b.entries[key] {
			matched[key] = true
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	for key := range b.entries {
		if !matched[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return kept, suppressed, stale
}

// FormatBaseline renders diagnostics as baseline lines (sorted, deduped),
// ready to append under a justification comment.
func FormatBaseline(root string, diags []Diagnostic) string {
	seen := make(map[string]bool, len(diags))
	var lines []string
	for _, d := range diags {
		key := baselineKey(relPath(root, d.Pos.Filename), d.Check, d.Message)
		if !seen[key] {
			seen[key] = true
			lines = append(lines, key)
		}
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}
