package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkAtomicField enforces all-or-nothing atomicity: once any code in
// the module touches a struct field through sync/atomic, every access to
// that field must be atomic. A plain read racing an atomic.AddInt64 is
// still a data race — the atomic call only serializes against other
// atomics — and on 32-bit targets a torn plain read of a 64-bit counter
// can observe half an update.
//
// Exempt are accesses inside the single-threaded phases of an object's
// life: constructors (New*), package init, and teardown (Stop/Close),
// where the object is not yet — or no longer — shared. The exemption
// propagates to helpers reachable only from exempt functions.
//
// The preferred fix in this repo is the typed atomics (atomic.Int64 and
// friends), which make plain access a compile error; this check exists
// for the raw &field call sites that predate them.
const checkNameAtomicField = "atomicfield"

// atomicSite records one sync/atomic call against a field.
type atomicSite struct {
	fn *Fn    // function containing the atomic access
	op string // the sync/atomic function name
}

func checkAtomicField(g *Graph, pkgs []*Package, report reportFunc) {
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}

	// Pass 1: every field accessed through sync/atomic anywhere in the
	// loaded module, keyed by the field's types.Var identity.
	atomicFields := make(map[types.Object]atomicSite)
	for _, fn := range g.l.Fns {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := atomicCallOp(info, call); ok {
				if obj := atomicTargetField(info, call); obj != nil {
					if _, seen := atomicFields[obj]; !seen {
						atomicFields[obj] = atomicSite{fn: fn, op: op}
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	exempt := exemptFromAtomic(g)

	// Pass 2: plain accesses to those fields in the analyzed packages.
	for _, fn := range g.l.Fns {
		if !requested[fn.Pkg] || exempt[fn] {
			continue
		}
		info := fn.Pkg.Info
		var inspect func(n ast.Node) bool
		inspect = func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, isAtomic := atomicCallOp(info, call); isAtomic {
					// The &field argument of the atomic call itself is the
					// sanctioned access; anything else in the argument list
					// (an index expression, say) is still scanned.
					for _, arg := range call.Args[1:] {
						ast.Inspect(arg, inspect)
					}
					ast.Inspect(call.Fun, inspect)
					return false
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			site, isAtomic := atomicFields[s.Obj()]
			if !isAtomic {
				return true
			}
			report(sel.Pos(), checkNameAtomicField,
				"field %s is accessed atomically via atomic.%s in %s but plainly in %s: every access must go through sync/atomic (or use the typed atomics)",
				fieldDisplay(s), site.op, site.fn.Name(), fn.Name())
			return true
		}
		ast.Inspect(fn.Decl.Body, inspect)
	}
}

// atomicCallOp reports whether call is a sync/atomic package-level call,
// returning the operation name.
func atomicCallOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkgPath, name, ok := pkgQualifiedCallee(info, call)
	if !ok || pkgPath != "sync/atomic" {
		return "", false
	}
	return name, true
}

// atomicTargetField resolves the first argument of an atomic call — the
// conventional &x.field — to the field's object, or nil for non-field
// targets (locals, globals, pointer-typed expressions).
func atomicTargetField(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	arg := call.Args[0]
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
		arg = un.X
	}
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// exemptFromAtomic computes the functions whose plain accesses are
// sanctioned: the named single-threaded phases (init, New*, Stop, Close)
// and, to a fixpoint, any function every caller of which is exempt — a
// helper used only during construction or teardown inherits the
// exemption.
func exemptFromAtomic(g *Graph) map[*Fn]bool {
	exempt := make(map[*Fn]bool)
	for _, fn := range g.l.Fns {
		name := fn.Decl.Name.Name
		if name == "init" || name == "Stop" || name == "Close" || strings.HasPrefix(name, "New") {
			exempt[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.l.Fns {
			if exempt[fn] || len(g.In[fn]) == 0 {
				continue
			}
			all := true
			for _, e := range g.In[fn] {
				if !exempt[e.From] {
					all = false
					break
				}
			}
			if all {
				exempt[fn] = true
				changed = true
			}
		}
	}
	return exempt
}

// fieldDisplay renders "pkg.Type.field" for a resolved field selection,
// matching the identity style the lock checks use.
func fieldDisplay(s *types.Selection) string {
	recv := s.Recv()
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	qual := func(p *types.Package) string { return p.Name() }
	return types.TypeString(recv, qual) + "." + s.Obj().Name()
}
