// Package lint implements ioverlayvet, the repo-specific static analyzer
// that machine-checks the middleware invariants the engine's correctness
// rests on: the single-threaded algorithm guarantee (Algorithm.Process
// never blocks and never spawns concurrency), control-lane discipline
// (control-class messages are enqueued without blocking and never shed),
// ring/engine lock discipline, and hot-path allocation hygiene.
//
// The analyzer is pure standard library — go/ast, go/parser and go/types
// only, no golang.org/x/tools — so the module stays dependency-free.
// Cross-package resolution works by type-checking module-local packages
// from source, in dependency order, while imports from outside the module
// are replaced with empty placeholder packages; go/types is run in its
// error-tolerant mode, so identifiers rooted in the standard library
// simply stay unresolved and the checks fall back to syntax for them.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and (partially) type-checked package.
type Package struct {
	Dir   string
	Path  string // module-rooted import path
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Fn identifies one function or method declaration in a loaded package.
type Fn struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Name renders the function for diagnostics, receiver included.
func (f *Fn) Name() string {
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) > 0 {
		return fmt.Sprintf("(%s).%s", typeText(f.Decl.Recv.List[0].Type), f.Decl.Name.Name)
	}
	return f.Decl.Name.Name
}

// Loader parses and type-checks module packages on demand, memoized by
// directory, sharing one FileSet and one function index across the module.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	pkgs          map[string]*Package       // by absolute directory
	loading       map[string]bool           // import-cycle guard
	fakes         map[string]*types.Package // placeholder packages for external imports
	FuncOf        map[types.Object]*Fn      // func/method object -> declaration
	MethodsByName map[string][]*Fn          // method name -> all decls (conservative fallback)
	Fns           []*Fn                     // every indexed declaration, in load order
}

// NewLoader locates the module root (the nearest go.mod above dir) and
// reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return &Loader{
		ModuleRoot:    root,
		ModulePath:    modPath,
		Fset:          token.NewFileSet(),
		pkgs:          make(map[string]*Package),
		loading:       make(map[string]bool),
		fakes:         make(map[string]*types.Package),
		FuncOf:        make(map[types.Object]*Fn),
		MethodsByName: make(map[string][]*Fn),
	}, nil
}

// buildTagOK evaluates a //go:build expression for the default (untagged)
// build: every tag is assumed satisfied except the repo's debug tag, so
// the release variant of tag-gated files is the one analyzed and its
// debug twin is skipped (loading both would double-declare symbols).
func buildTagOK(file []byte) bool {
	for _, line := range strings.Split(string(file), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(func(tag string) bool {
					return tag != "ioverlay_debug"
				})
			}
			continue
		}
		break // past the header comment block
	}
	return true
}

// Load parses and type-checks the package in dir (non-test files only),
// loading module-local imports first. It is memoized and cycle-safe.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		full := filepath.Join(abs, n)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildTagOK(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}

	// Load module-local imports first so their real types are available.
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if l.isLocal(path) {
				if _, err := l.Load(l.dirFor(path)); err != nil {
					return nil, fmt.Errorf("lint: load %s (imported by %s): %w", path, abs, err)
				}
			}
		}
	}

	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		rel = filepath.Base(abs)
	}
	pkgPath := l.ModulePath
	if rel != "." {
		pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	p := &Package{
		Dir:   abs,
		Path:  pkgPath,
		Name:  files[0].Name.Name,
		Files: files,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Error:    func(error) {}, // tolerate unresolved external identifiers
		Importer: &moduleImporter{l: l},
	}
	tpkg, _ := conf.Check(pkgPath, l.Fset, files, info) // partial info on error is expected
	p.Types = tpkg
	p.Info = info
	l.pkgs[abs] = p
	l.indexFuncs(p)
	return p, nil
}

// isLocal reports whether path names a package inside this module.
func (l *Loader) isLocal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// indexFuncs records every function and method declaration for call-graph
// resolution.
func (l *Loader) indexFuncs(p *Package) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &Fn{Pkg: p, Decl: fd}
			l.Fns = append(l.Fns, fn)
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				l.FuncOf[obj] = fn
			}
			if fd.Recv != nil {
				l.MethodsByName[fd.Name.Name] = append(l.MethodsByName[fd.Name.Name], fn)
			}
		}
	}
}

// moduleImporter resolves module-local imports from source and replaces
// everything else (standard library included) with an empty placeholder
// package, keeping the analyzer self-contained and fast.
type moduleImporter struct{ l *Loader }

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mi.l.isLocal(path) {
		p, err := mi.l.Load(mi.l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if fake, ok := mi.l.fakes[path]; ok {
		return fake, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	fake := types.NewPackage(path, name)
	fake.MarkComplete()
	mi.l.fakes[path] = fake
	return fake, nil
}

// typeText renders a type expression compactly for diagnostics.
func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.SelectorExpr:
		return typeText(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return typeText(t.X)
	default:
		return "?"
	}
}
