package lint

import (
	"go/ast"
	"strings"
)

// checkAdmission enforces the connection-storm contract of the admission
// layer: accept-path code — listener loops, pre-handshake shedding, and
// the handshake itself — runs while the node may be under a dial flood,
// so every admission decision must stay O(1) and non-blocking. Two
// rules, applied to the engine and observer packages (and fixtures):
//
//   - no accept-path function may block on a ring: a Busy refusal or a
//     hello read must never wait behind a data-full lane;
//   - no accept-path function may perform connection I/O while holding
//     a mutex: a stalled remote extends the critical section
//     indefinitely, letting one mute dialer freeze admission (and, for
//     the engine lock, the whole switch). The rule is interprocedural:
//     a helper called under the lock is flagged if anything it reaches
//     in the module performs connection I/O, with the witness path.
//
// Accept-path functions are recognized by the documented naming
// convention: any function whose name mentions accept or handshake, plus
// the shedding helpers (serveConn, shedConn, sendBusy, probeBusy).
// Datagram receive paths (names mentioning dgramread) are held to the
// same contract: the shared packet endpoint is the accept loop of the
// datagram plane, and one full ring must never stop it draining.
const checkNameAdmission = "admission"

var admissionHelperNames = map[string]bool{
	"serveConn": true,
	"shedConn":  true,
	"sendBusy":  true,
	"probeBusy": true,
}

func isAdmissionPath(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "accept") ||
		strings.Contains(lower, "handshake") ||
		strings.Contains(lower, "dgramread") ||
		admissionHelperNames[name]
}

var admissionBlockingRing = map[string]bool{
	"Push":      true,
	"Pop":       true,
	"PushBatch": true,
	"PopBatch":  true,
}

func checkAdmission(g *Graph, p *Package, report reportFunc) {
	if p.Name != "engine" && p.Name != "observer" {
		return
	}
	connIO := g.Transitive(EffConnIO)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isAdmissionPath(fd.Name.Name) {
				continue
			}
			fn := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if admissionBlockingRing[sel.Sel.Name] && isRingRecv(p, call, sel) {
					report(call.Pos(), checkNameAdmission,
						"accept path %s blocks on Ring.%s: admission must shed, never wait on a data lane",
						fn, sel.Sel.Name)
				}
				return true
			})
			scanLockRegions(p, fd.Body,
				func(call *ast.CallExpr) bool {
					if isConnIO(p, call) {
						return true
					}
					callee := methodCallee(g.l, p.Info, call)
					return callee != nil && connIO[callee]&EffConnIO != 0
				},
				func(call *ast.CallExpr, held []string) {
					if !heldAny(held) {
						return
					}
					if isConnIO(p, call) {
						report(call.Pos(), checkNameAdmission,
							"accept path %s performs connection I/O with a lock held: one stalled dialer would freeze admission",
							fn)
						return
					}
					callee := methodCallee(g.l, p.Info, call)
					path := g.WitnessPath(callee, func(f *Fn) bool {
						return g.Effects(f)&EffConnIO != 0
					}, nil)
					report(call.Pos(), checkNameAdmission,
						"accept path %s calls %s with a lock held, and it reaches connection I/O (via %s): one stalled dialer would freeze admission",
						fn, exprText(call.Fun), pathString(path))
				})
		}
	}
}

// isConnIO recognizes frame or byte I/O against a network connection:
// the message package's Read/Write (whose first argument is always a
// conn), io.ReadFull, and Read/Write method calls on a receiver whose
// name mentions conn.
func isConnIO(p *Package, call *ast.CallExpr) bool {
	if pkg, fn, ok := pkgQualifiedCallee(p.Info, call); ok {
		if pkg == "io" && fn == "ReadFull" {
			return true
		}
		return (fn == "Read" || fn == "Write") && strings.HasSuffix(pkg, "/message")
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Read" && sel.Sel.Name != "Write" {
		return false
	}
	return strings.Contains(strings.ToLower(lastComponent(sel.X)), "conn")
}
