package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation substrings from "// want \"...\""
// markers; several markers may share a line.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// TestFixturesFlagSeededViolations runs the analyzer over every fixture
// package under testdata/src and checks the findings against the // want
// markers exactly: each marker must be matched by a diagnostic on its
// line, and each diagnostic must be covered by a marker on its line.
func TestFixturesFlagSeededViolations(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	fixtureRoot := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	wants := make(map[string]map[int][]string) // file -> line -> substrings
	total := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(fixtureRoot, e.Name())
		p, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			abs, _ := filepath.Abs(f)
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					if wants[abs] == nil {
						wants[abs] = make(map[int][]string)
					}
					wants[abs][i+1] = append(wants[abs][i+1], m[1])
					total++
				}
			}
		}
	}
	if len(pkgs) < 24 {
		t.Fatalf("expected at least 24 fixture packages (every check covered), found %d", len(pkgs))
	}
	if total == 0 {
		t.Fatal("no want markers found in fixtures")
	}

	diags := Run(loader, pkgs)
	got := make(map[string]map[int][]string)
	for _, d := range diags {
		if got[d.Pos.Filename] == nil {
			got[d.Pos.Filename] = make(map[int][]string)
		}
		got[d.Pos.Filename][d.Pos.Line] = append(got[d.Pos.Filename][d.Pos.Line], d.Message)
	}

	for file, lines := range wants {
		for line, subs := range lines {
			for _, sub := range subs {
				matched := false
				for _, msg := range got[file][line] {
					if strings.Contains(msg, sub) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s:%d: seeded violation not flagged: want diagnostic containing %q, got %v",
						file, line, sub, got[file][line])
				}
			}
		}
	}
	for file, lines := range got {
		for line, msgs := range lines {
			for _, msg := range msgs {
				covered := false
				for _, sub := range wants[file][line] {
					if strings.Contains(msg, sub) {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("%s:%d: unexpected diagnostic (no want marker): %s", file, line, msg)
				}
			}
		}
	}
}

// loadWholeModule loads every package under the module root (cmd/
// included) with one shared loader.
func loadWholeModule(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPackages(loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	return loader, pkgs
}

// TestShippedTreeClean is the acceptance gate for false positives: every
// finding on the real module must either be fixed or carried in the
// committed baseline with a justification — and every baseline entry
// must still correspond to a live finding. This is the in-test form of
// `make lint`.
func TestShippedTreeClean(t *testing.T) {
	loader, pkgs := loadWholeModule(t)
	diags := Run(loader, pkgs)
	baseline, err := LoadBaseline(filepath.Join(loader.ModuleRoot, "lint.baseline"))
	if err != nil {
		t.Fatalf("load committed baseline: %v", err)
	}
	kept, _, stale := baseline.Filter(loader.ModuleRoot, diags)
	for _, d := range kept {
		t.Errorf("non-baselined finding on shipped tree: %s", d)
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (finding fixed, entry not removed): %s", s)
	}
}

// TestCmdPackagesAnalyzed pins the analyzer's coverage of the command
// tree: expanding the module root must pick up every main package under
// cmd/, and the checks must run over them in the same pass as the
// library packages.
func TestCmdPackagesAnalyzed(t *testing.T) {
	loader, pkgs := loadWholeModule(t)
	cmds := make(map[string]bool)
	for _, p := range pkgs {
		if strings.Contains(p.Path, "/cmd/") {
			cmds[p.Path] = true
			if p.Name != "main" {
				t.Errorf("package %s under cmd/ is %q, want main", p.Path, p.Name)
			}
		}
	}
	for _, want := range []string{"ioverlayvet", "inode", "iobserver"} {
		if !cmds[loader.ModulePath+"/cmd/"+want] {
			t.Errorf("cmd/%s not loaded by ExpandPackages; commands are not being linted", want)
		}
	}
	if len(cmds) < 4 {
		t.Errorf("expected at least 4 cmd packages, got %d (%v)", len(cmds), cmds)
	}
}

// TestRunTimedCoversEveryCheck pins the registry plumbing: one timing
// entry per check, in execution order, ten checks total.
func TestRunTimedCoversEveryCheck(t *testing.T) {
	loader, pkgs := loadWholeModule(t)
	_, timings := RunTimed(loader, pkgs)
	names := CheckNames()
	if len(names) != 10 {
		t.Fatalf("expected 10 registered checks, got %d: %v", len(names), names)
	}
	if len(timings) != len(names) {
		t.Fatalf("got %d timings for %d checks", len(timings), len(names))
	}
	for i, tm := range timings {
		if tm.Check != names[i] {
			t.Errorf("timing %d is for %q, want %q", i, tm.Check, names[i])
		}
	}
}
