package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation substrings from "// want \"...\""
// markers; several markers may share a line.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// TestFixturesFlagSeededViolations runs the analyzer over every fixture
// package under testdata/src and checks the findings against the // want
// markers exactly: each marker must be matched by a diagnostic on its
// line, and each diagnostic must be covered by a marker on its line.
func TestFixturesFlagSeededViolations(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	fixtureRoot := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	wants := make(map[string]map[int][]string) // file -> line -> substrings
	total := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(fixtureRoot, e.Name())
		p, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			abs, _ := filepath.Abs(f)
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					if wants[abs] == nil {
						wants[abs] = make(map[int][]string)
					}
					wants[abs][i+1] = append(wants[abs][i+1], m[1])
					total++
				}
			}
		}
	}
	if len(pkgs) < 8 {
		t.Fatalf("expected at least 8 fixture packages (2 per check), found %d", len(pkgs))
	}
	if total == 0 {
		t.Fatal("no want markers found in fixtures")
	}

	diags := Run(loader, pkgs)
	got := make(map[string]map[int][]string)
	for _, d := range diags {
		if got[d.Pos.Filename] == nil {
			got[d.Pos.Filename] = make(map[int][]string)
		}
		got[d.Pos.Filename][d.Pos.Line] = append(got[d.Pos.Filename][d.Pos.Line], d.Message)
	}

	for file, lines := range wants {
		for line, subs := range lines {
			for _, sub := range subs {
				matched := false
				for _, msg := range got[file][line] {
					if strings.Contains(msg, sub) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s:%d: seeded violation not flagged: want diagnostic containing %q, got %v",
						file, line, sub, got[file][line])
				}
			}
		}
	}
	for file, lines := range got {
		for line, msgs := range lines {
			for _, msg := range msgs {
				covered := false
				for _, sub := range wants[file][line] {
					if strings.Contains(msg, sub) {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("%s:%d: unexpected diagnostic (no want marker): %s", file, line, msg)
				}
			}
		}
	}
}

// TestShippedTreeClean is the acceptance gate for false positives: the
// analyzer must report nothing on the real module. This is also the
// in-test form of `make lint`.
func TestShippedTreeClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPackages(loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	for _, d := range Run(loader, pkgs) {
		t.Errorf("false positive on shipped tree: %s", d)
	}
}
