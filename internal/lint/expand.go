package lint

import (
	"io/fs"
	"path/filepath"
	"strings"
)

// ExpandPackages walks root for directories containing non-test Go
// files, skipping testdata trees (the linter's own fixtures are seeded
// violations), hidden directories, and _-prefixed directories, mirroring
// the go tool's "./..." package matching.
func ExpandPackages(root string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}
