// Package observer (fixture admission_a) seeds accept-path violations:
// a handshake that reads frames with a lock held, a shed helper that
// writes its refusal inside a critical section, and a Busy sender that
// blocks on a data ring — exactly the patterns that let one mute dialer
// or one full lane freeze admission during a connection storm.
package observer

import (
	"net"
	"sync"

	"repro/internal/message"
	"repro/internal/queue"
)

type server struct {
	mu    sync.Mutex
	out   *queue.Ring
	peers int
}

func (s *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handshake(conn) // want "is not tied to the lifecycle"
	}
}

// handshake pins the lock across the hello read: every other admission
// (and anything else the lock guards) waits on the slowest dialer.
func (s *server) handshake(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := message.Read(conn, nil, 1<<16) // want "connection I/O with a lock held"
	if err != nil {
		conn.Close()
		return
	}
	s.peers++
	m.Release()
}

// shedConn writes the refusal frame inside the critical section.
func (s *server) shedConn(conn net.Conn, frame []byte) {
	s.mu.Lock()
	_, _ = conn.Write(frame) // want "connection I/O with a lock held"
	s.mu.Unlock()
	conn.Close()
}

// sendBusy queues the refusal through a blocking ring push: under the
// very overload that triggers refusals, the ring is full and the accept
// path wedges behind it.
func (s *server) sendBusy(m *message.Msg) {
	_ = s.out.Push(m) // want "blocks on Ring.Push"
}
