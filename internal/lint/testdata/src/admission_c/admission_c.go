// Package observer (fixture admission_c) seeds a laundered admission
// violation: the accept path holds the table lock while calling a helper
// that, one hop down, reads from the connection. The interprocedural
// walk must flag the helper call under the lock with the witness path to
// the I/O. The same helper called after the unlock is clean.
package observer

import (
	"net"
	"sync"
)

type gate struct {
	mu    sync.Mutex
	seen  int
	admit bool
}

func (g *gate) acceptOne(conn net.Conn) {
	g.mu.Lock()
	g.seen++
	g.greet(conn) // want "reaches connection I/O"
	g.mu.Unlock()
	g.greet(conn) // ok: lock released
}

func (g *gate) greet(conn net.Conn) {
	g.hello(conn)
}

func (g *gate) hello(conn net.Conn) {
	var b [4]byte
	conn.Read(b[:])
}
