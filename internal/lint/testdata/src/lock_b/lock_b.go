// Package engine (fixture lock_b) seeds engine upcall violations: the
// algorithm callback invoked while an engine lock is held, both through
// the direct interface call and through the notifyAlg wrapper.
package engine

import "sync"

type algIface interface {
	Process(v int) int
}

type Core struct {
	mu  sync.Mutex
	alg algIface
}

func (c *Core) notifyAlg(v int) {
	c.alg.Process(v)
}

func (c *Core) dispatch(v int) {
	c.mu.Lock()
	c.alg.Process(v) // want "engine lock held"
	c.mu.Unlock()
}

func (c *Core) flush(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notifyAlg(v) // want "engine lock held"
}
