// Package engine (fixture golifecycle_a) seeds goroutine-lifecycle
// violations: spawns with no WaitGroup Add before them whose targets
// neither signal the group nor watch a stop channel, an untied goroutine
// literal, and a spawn through an interface the loader cannot resolve.
// The certified shapes — Add-before-go, a stop-channel select in the
// target, a Done in the literal — must stay clean.
package engine

import "sync"

type emitter interface {
	Emit()
}

type Core struct {
	wg   sync.WaitGroup
	stop chan struct{}
	out  chan int
	em   emitter
}

func (c *Core) Start() {
	c.wg.Add(1)
	go c.run() // ok: the Add above covers the spawn
}

func (c *Core) run() {
	defer c.wg.Done()
	for v := range c.out {
		_ = v
	}
}

func (c *Core) Kick() {
	go c.pump() // want "is not tied to the lifecycle"
}

func (c *Core) pump() {
	for v := range c.out {
		_ = v
	}
}

func (c *Core) Watch() {
	go c.loop() // ok: loop watches the stop channel
}

func (c *Core) loop() {
	for {
		select {
		case <-c.stop:
			return
		case v := <-c.out:
			_ = v
		}
	}
}

// Deep spawns through a wrapper: the lifecycle evidence is one call
// away, which the transitive closure must find.
func (c *Core) Deep() {
	go c.relay() // ok: relay reaches the stop watch through loop
}

func (c *Core) relay() {
	c.loop()
}

func (c *Core) Fire() {
	go func() { // want "goroutine literal"
		c.out <- 1
	}()
}

func (c *Core) Flush() {
	go func() { // ok: the Done ties the literal to the group
		defer c.wg.Done()
		c.out <- 2
	}()
}

func (c *Core) Alert() {
	go c.em.Emit() // want "unresolved target"
}
