// Package engine (fixture hotpath_c) is the negative-space proof for the
// flight-recorder pattern: appending a trace event or bumping a log-bucket
// histogram inside the switch loop and the per-message send path is the
// sanctioned way to instrument them, and must produce no hot-path
// diagnostics. The recorder's Emit is a few atomics into a preallocated
// ring and Observe is one atomic add; neither formats, boxes, nor calls
// time.Now in this package. There are deliberately no want markers here —
// any diagnostic in this file is a linter regression.
package engine

import (
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

type Recorded struct {
	rec       *trace.Recorder
	batchHist metrics.Histogram
}

func (r *Recorded) switchOnce() int {
	n := 0
	for i := 0; i < 8; i++ {
		r.rec.Emit(trace.KindSwitch, message.NodeID{}, 0, int64(i))
		r.batchHist.Observe(int64(i))
		n += i
	}
	return n
}

func (r *Recorded) Send(m *message.Msg) bool {
	r.rec.Emit(trace.KindShed, m.Sender(), m.App(), int64(m.WireLen()))
	r.batchHist.Observe(int64(m.WireLen()))
	return true
}

func (r *Recorded) runSender(ms []*message.Msg) {
	for _, m := range ms {
		r.rec.Emit(trace.KindCtrlBypass, m.Sender(), m.App(), int64(m.WireLen()))
	}
}
