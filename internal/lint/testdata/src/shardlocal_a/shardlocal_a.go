// Package engine (fixture shardlocal_a) seeds cross-shard ownership
// violations: the engine loop and a drain helper reach straight into a
// shard's marked scheduler state instead of going through the handoff
// inbox. Accesses from shard-receiver methods are the sanctioned path
// and must stay clean.
package engine

type message struct{ dest uint32 }

type shard struct {
	idx       uint32
	parked    []*message   // shard-local
	switchBuf []*message   // shard-local
	lastDest  uint32       // shard-local
	inboxLen  int          // not marked: fair game from anywhere
}

type Engine struct {
	shards []*shard
}

// retryParked is a proper shard method: touching its own parked list and
// switch buffer is exactly what the owner goroutine is for.
func (sh *shard) retryParked() int {
	n := len(sh.parked)
	sh.parked = sh.parked[:0]
	sh.switchBuf = sh.switchBuf[:0]
	return n
}

// drainAll is the violation the check exists for: the engine goroutine
// walking every shard's parked list races the owners' retry passes.
func (e *Engine) drainAll() int {
	total := 0
	for _, sh := range e.shards {
		total += len(sh.parked) // want "shard-local field parked"
		sh.switchBuf = nil      // want "shard-local field switchBuf"
		total += sh.inboxLen
	}
	return total
}

// steer reads another lane's routing hint from outside its goroutine.
func steer(e *Engine, i int) uint32 {
	return e.shards[i].lastDest // want "shard-local field lastDest"
}
