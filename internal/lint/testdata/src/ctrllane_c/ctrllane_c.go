// Package queue (fixture ctrllane_c) seeds a shed path that drops
// control messages through a helper: the shed function itself never
// touches the control lane, but a helper it calls pops from it. The
// interprocedural walk must flag the pop in the helper with the witness
// path from the shed root. The data-lane eviction chain is clean.
package queue

type lane struct {
	items []int
}

type R2 struct {
	ctrl lane
	data lane
}

func (r *R2) ShedOldest() {
	r.evict()
	r.evictData()
}

func (r *R2) evict() {
	r.popLocked(&r.ctrl) // want "reaches a control-lane pop"
}

func (r *R2) evictData() {
	r.popLocked(&r.data)
}

func (r *R2) popLocked(l *lane) {
	if len(l.items) > 0 {
		l.items = l.items[1:]
	}
}
