// Package engine (fixture admission_d) seeds datagram receive-path
// violations: the shared packet endpoint is the datagram plane's accept
// loop, so its reader is held to the admission contract — never block on
// a ring (one full lane must not stop the endpoint draining) and never
// hold a lock across connection I/O. The clean reader below shows the
// intended shape: lock-free TryPush, lookups under a short pure
// critical section.
package engine

import (
	"net"
	"sync"

	"repro/internal/message"
	"repro/internal/queue"
)

func msgFor(b []byte) *message.Msg {
	return message.New(message.FirstDataType, message.NodeID{}, 0, 0, b)
}

type node struct {
	mu    sync.Mutex
	rings map[string]*queue.Ring
	conn  net.Conn
}

// runDgramReader blocks the shared endpoint behind one full ring: every
// other source's packets rot in the kernel buffer meanwhile.
func (n *node) runDgramReader(pc net.PacketConn) {
	buf := make([]byte, 2048)
	for {
		sz, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		n.mu.Lock()
		r := n.rings[from.String()]
		n.mu.Unlock()
		if r == nil {
			continue
		}
		_ = r.Push(msgFor(buf[:sz])) // want "blocks on Ring.Push" // want "blocking Ring.Push in engine code"
	}
}

// dgramReadLocked pins the lock across the endpoint read itself.
func (n *node) dgramReadLocked(pc net.PacketConn, buf []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	sz, _, err := n.conn.Read(buf) // want "connection I/O with a lock held"
	if err != nil {
		return 0
	}
	_ = pc
	return sz
}

// runDgramReaderClean is the contract-conforming shape: TryPush only,
// and the lock guards nothing but the map lookup.
func (n *node) runDgramReaderClean(pc net.PacketConn) {
	buf := make([]byte, 2048)
	for {
		sz, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		n.mu.Lock()
		r := n.rings[from.String()]
		n.mu.Unlock()
		if r == nil {
			continue
		}
		if !r.TryPush(msgFor(buf[:sz])) {
			continue // loss, never back-pressure
		}
	}
}
