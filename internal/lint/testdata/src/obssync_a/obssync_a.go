// Package observer (fixture obssync_a) seeds federation-sync
// violations: anti-entropy functions that block on rings instead of
// using the non-blocking Try APIs, risking a sync path wedged behind
// one slow connection.
package observer

import (
	"repro/internal/message"
	"repro/internal/queue"
)

type peerTrunk struct {
	ring *queue.Ring
}

func (p *peerTrunk) syncPush(m *message.Msg) error {
	return p.ring.Push(m) // want "blocks on Ring.Push"
}

func (p *peerTrunk) absorbSyncBacklog() {
	for {
		m, err := p.ring.Pop() // want "blocks on Ring.Pop"
		if err != nil {
			return
		}
		m.Release()
	}
}

func (p *peerTrunk) syncBatch(ms []*message.Msg) {
	_, _ = p.ring.PushBatch(ms) // want "blocks on Ring.PushBatch"
}
