// Package engine (fixture ctrllane_a) seeds control-lane violations on
// the engine side: a blocking Ring.Push where only the non-blocking
// push APIs are allowed, and a shed path that drains the control lane.
package engine

import (
	"repro/internal/message"
	"repro/internal/queue"
)

type relaySender struct {
	ring *queue.Ring
}

func (s *relaySender) enqueue(m *message.Msg) error {
	return s.ring.Push(m) // want "blocking Ring.Push"
}

func (s *relaySender) shedBacklog() {
	if m, ok := s.ring.TryPopCtrl(); ok { // want "control lane"
		m.Release()
	}
}
