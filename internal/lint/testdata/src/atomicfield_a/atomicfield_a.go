// Package atomicfield_a (fixture) seeds the classic mixed-access race:
// a counter field bumped through sync/atomic on the hot path but read
// plainly elsewhere. The plain accesses inside the constructor and Stop
// are sanctioned — the object is not shared during those phases.
package atomicfield_a

import "sync/atomic"

type counter struct {
	hits int64
	last int64
}

func New() *counter {
	c := &counter{}
	c.hits = 0 // ok: construction is single-threaded
	return c
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) peek() int64 {
	return c.hits // want "every access must go through sync/atomic"
}

func (c *counter) note(v int64) {
	c.last = v // ok: last is never accessed atomically
}

func (c *counter) Stop() {
	c.hits = 0 // ok: teardown is single-threaded
	c.last = 0
}
