// Package queue (fixture lock_c) exercises the per-identity held-set
// semantics of the lock scanner. An auxiliary statsMu must not implicate
// the ring mutex: exported calls under statsMu alone are fine, a
// deferred statsMu unlock must not pin the ring mutex held, and
// releasing statsMu must not release the ring mutex. The statsMu/mu
// nesting in Snapshot and Flush also runs in opposite orders, seeding a
// lock-order cycle.
package queue

import "sync"

type Ring struct {
	mu      sync.Mutex
	statsMu sync.Mutex
	n       int
	peak    int
}

func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Stats calls an exported method while holding only the auxiliary lock:
// legal, and the old shared-depth scanner's false positive.
func (r *Ring) Stats() int {
	r.statsMu.Lock()
	n := r.Len()
	r.statsMu.Unlock()
	return n
}

// Snapshot releases statsMu but still holds the ring mutex at the Len
// call: the per-identity scanner must keep mu held across the statsMu
// unlock. The statsMu acquire under mu is also half of the lock-order
// cycle with Flush.
func (r *Ring) Snapshot() int {
	r.mu.Lock()
	r.statsMu.Lock() // want "lock-order cycle"
	if r.n > r.peak {
		r.peak = r.n
	}
	r.statsMu.Unlock()
	n := r.Len() // want "while holding the ring mutex"
	r.mu.Unlock()
	return n
}

// Flush defers the statsMu unlock; the ring mutex is released before the
// Len call, so nothing ring-related may be flagged — the old scanner's
// sticky defer kept every mutex held to the end of the body.
func (r *Ring) Flush() int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.mu.Lock()
	r.peak = r.n
	r.mu.Unlock()
	return r.Len()
}
