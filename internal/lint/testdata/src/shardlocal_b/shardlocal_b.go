// Package engine (fixture shardlocal_b) probes the edges of the
// shard-local ownership check: the constructor's composite literal and
// handoff-ring push are sanctioned, while a helper goroutine spawned off
// the engine loop and a stop-path sweep are not — they touch owner-only
// state from the wrong goroutine even though the code looks innocent.
package engine

type item struct{ size int }

type inbox struct{ slots []*item }

func (q *inbox) push(x *item) bool {
	q.slots = append(q.slots, x)
	return true
}

type shard struct {
	idx     uint32
	handoff *inbox
	pending []*item // shard-local
	local   []*item // shard-local
}

// newShard builds the struct wholesale before its goroutine exists; the
// composite literal keys are not field reads and must not be flagged.
func newShard(idx uint32) *shard {
	return &shard{
		idx:     idx,
		handoff: &inbox{},
		pending: nil,
		local:   make([]*item, 0, 8),
	}
}

func (sh *shard) enqueue(x *item) {
	sh.pending = append(sh.pending, x)
}

// crossHandoff is the sanctioned cross-shard path: any goroutine may push
// into the handoff inbox, never into the owner's buffers directly.
func crossHandoff(dst *shard, x *item) bool {
	return dst.handoff.push(x)
}

// crossDirect bypasses the inbox and appends into owner-only state.
func crossDirect(dst *shard, x *item) {
	dst.pending = append(dst.pending, x) // want "shard-local field pending"
}

// sweepStop scans lanes from a stop goroutine before the owners exit.
func sweepStop(lanes []*shard) int {
	n := 0
	for _, sh := range lanes {
		n += len(sh.local) // want "shard-local field local"
	}
	return n
}
