// Package engine (fixture hotpath_b) seeds hot-path hygiene violations
// in the per-message send path: logging per message and boxing a
// *message.Msg into a variadic ...any argument list.
package engine

import "repro/internal/message"

type Shipper struct{}

func (s *Shipper) logf(format string, args ...any) {}

func (s *Shipper) Send(m *message.Msg) bool {
	s.logf("sending %v", m) // want "logf on the hot path" // want "boxed into"
	return true
}

func (s *Shipper) runSender(ms []*message.Msg) {
	for _, m := range ms {
		s.logf("wrote %d", len(m.Payload())) // want "logf on the hot path"
	}
}
