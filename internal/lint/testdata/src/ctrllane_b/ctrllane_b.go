// Package queue (fixture ctrllane_b) seeds control-lane violations on
// the queue side: a consumer that serves the data lane before the
// control lane, and a shed path that touches the control lane.
package queue

type miniLane struct{ n int }

type Spool struct {
	data miniLane
	ctrl miniLane
}

func (s *Spool) popLocked(l *miniLane) int {
	l.n--
	return l.n
}

func (s *Spool) PopWrong() int {
	if n := s.popLocked(&s.data); n >= 0 { // want "data lane before the control lane"
		return n
	}
	return s.popLocked(&s.ctrl)
}

func (s *Spool) ShedAll() {
	s.ctrl.n = 0 // want "never shed"
}
