// Package purity_c (fixture) seeds a purity violation hidden behind an
// interface: Process delivers through a module-local interface, and one
// implementer sleeps. The conservative fan-out must assume any
// implementer can be behind the value and follow the call into it.
package purity_c

import "time"

type Msg struct {
	N int
}

type Verdict int

type sink interface {
	Deliver(*Msg)
}

type alg struct {
	s sink
}

func (a *alg) Process(m *Msg) Verdict {
	a.s.Deliver(m)
	return 0
}

// fastSink is the clean implementer: nothing to flag.
type fastSink struct {
	seen int
}

func (f *fastSink) Deliver(m *Msg) {
	f.seen++
}

// slowSink blocks — reachable from Process through the interface.
type slowSink struct{}

func (s *slowSink) Deliver(m *Msg) {
	time.Sleep(time.Millisecond) // want "Process must never block or touch the network"
}
