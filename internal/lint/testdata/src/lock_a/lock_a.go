// Package queue (fixture lock_a) seeds ring lock-discipline violations:
// Ring methods that call exported Ring methods while holding the ring
// mutex, both with an inline unlock and a deferred one.
package queue

import "sync"

type Ring struct {
	mu sync.Mutex
	n  int
}

func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *Ring) Grow() {
	r.mu.Lock()
	if r.Len() > 0 { // want "while holding the ring mutex"
		r.n *= 2
	}
	r.mu.Unlock()
}

func (r *Ring) Shrink() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = r.Len() / 2 // want "while holding the ring mutex"
}
