// Package engine (fixture hotpath_d) seeds a laundered hot-path
// violation: the switch loop itself is clean, but a helper it calls
// reads the clock two hops down. The interprocedural walk must flag the
// helper call in the loop with the witness path to the clock read.
package engine

import "time"

type E struct {
	n     int64
	stamp int64
}

func (e *E) switchOnce() bool {
	for i := 0; i < 4; i++ {
		e.audit() // want "keep formatting and clock reads out of the per-message loop"
		e.n++
	}
	return e.n > 0
}

func (e *E) audit() {
	e.mark()
}

func (e *E) mark() {
	e.stamp = time.Now().UnixNano()
}

// prepare runs outside the hot loop: the same chain is fine here.
func (e *E) prepare() {
	e.audit()
}
