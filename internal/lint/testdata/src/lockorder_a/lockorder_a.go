// Package lockorder_a (fixture) seeds a direct AB/BA lock-order cycle:
// one method acquires muA then muB, another acquires muB then muA. Two
// goroutines running the two methods concurrently can each take their
// first lock and wait forever on the second. The cycle is reported once,
// at the acquire completing the edge out of the smallest identity.
package lockorder_a

import "sync"

type node struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

func (s *node) left() {
	s.muA.Lock()
	s.muB.Lock() // want "lock-order cycle"
	s.n++
	s.muB.Unlock()
	s.muA.Unlock()
}

func (s *node) right() {
	s.muB.Lock()
	s.muA.Lock()
	s.n--
	s.muA.Unlock()
	s.muB.Unlock()
}

// straight holds both locks in the same order as left: consistent
// ordering on its own is fine and must not be flagged.
func (s *node) straight() {
	s.muA.Lock()
	s.muB.Lock()
	s.n = 0
	s.muB.Unlock()
	s.muA.Unlock()
}
