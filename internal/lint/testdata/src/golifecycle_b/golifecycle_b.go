// Package observer (fixture golifecycle_b) seeds lifecycle violations
// in the observer tier: a relay goroutine spawned with no Add and no
// stop watch leaks past Stop and keeps reporting into the next test's
// observer. The reconciliation shapes — a target that waits on the
// group, a collector selecting on done — must stay clean.
package observer

import "sync"

type Obs struct {
	wg   sync.WaitGroup
	done chan struct{}
	feed chan int
}

func (o *Obs) Run() {
	go o.collect() // ok: collect watches the done channel
}

func (o *Obs) collect() {
	for {
		select {
		case <-o.done:
			return
		case v := <-o.feed:
			_ = v
		}
	}
}

func (o *Obs) Leak() {
	go o.relay() // want "is not tied to the lifecycle"
}

func (o *Obs) relay() {
	for v := range o.feed {
		_ = v
	}
}

// Depart hands teardown to a goroutine; the target waits on the group,
// so it *is* the reconciliation — the e.Stop/e.Depart idiom.
func (o *Obs) Depart() {
	go o.settle() // ok: settle waits on the group
}

func (o *Obs) settle() {
	o.wg.Wait()
	close(o.done)
}
