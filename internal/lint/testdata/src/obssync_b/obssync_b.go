// Package observer (fixture obssync_b) is the clean counterpart:
// sync-named functions use only the non-blocking Try APIs, and blocking
// ring use outside sync paths is out of the obssync check's scope.
package observer

import (
	"repro/internal/message"
	"repro/internal/queue"
)

type peerTrunk struct {
	ring *queue.Ring
}

func (p *peerTrunk) syncTo(m *message.Msg) {
	if !p.ring.TryPush(m) {
		m.Release()
	}
}

func (p *peerTrunk) syncDrain() {
	for {
		m, ok := p.ring.TryPop()
		if !ok {
			return
		}
		m.Release()
	}
}

// writeLoop is a plain consumer, not a sync path: blocking here is the
// normal ring contract.
func (p *peerTrunk) writeLoop() {
	for {
		m, err := p.ring.Pop()
		if err != nil {
			return
		}
		m.Release()
	}
}
