// Package atomicfield_b (fixture) exercises the exemption fixpoint: a
// helper reachable only from constructors and teardown inherits their
// single-threaded sanction, while a helper with any live caller does
// not — its plain accesses to an atomically-used field are races.
package atomicfield_b

import "sync/atomic"

type gauge struct {
	v int64
}

func NewGauge() *gauge {
	g := &gauge{}
	g.reset()
	return g
}

// reset is called only from NewGauge and Stop, so the exemption
// propagates to it: no diagnostics here.
func (g *gauge) reset() {
	g.v = 0
}

func (g *gauge) Read() int64 {
	return atomic.LoadInt64(&g.v)
}

// drain is called from Sample, a live method, so its plain accesses are
// flagged even though drain itself looks like a teardown helper.
func (g *gauge) drain() int64 {
	v := g.v // want "every access must go through sync/atomic"
	g.v = 0  // want "every access must go through sync/atomic"
	return v
}

func (g *gauge) Sample() int64 {
	return g.drain()
}

func (g *gauge) Stop() {
	g.reset()
}
