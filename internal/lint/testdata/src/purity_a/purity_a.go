// Package purity_a seeds algorithm-purity violations: goroutine spawns
// and channel operations directly inside Process, plus a blocking sleep
// reached transitively through a helper.
package purity_a

import (
	"time"

	"repro/internal/engine"
	"repro/internal/message"
)

type Alg struct {
	ch chan int
}

func (a *Alg) Attach(api engine.API) {}

func (a *Alg) Process(m *message.Msg) engine.Verdict {
	go a.pump() // want "goroutine spawn"
	a.ch <- 1   // want "channel send"
	<-a.ch      // want "channel receive"
	a.nap()
	return engine.Done
}

func (a *Alg) pump() {}

func (a *Alg) nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep"
}
