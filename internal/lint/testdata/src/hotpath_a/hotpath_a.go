// Package engine (fixture hotpath_a) seeds hot-path hygiene violations
// inside the switch loop: per-pass formatting and per-pass time.Now.
// The same constructs outside the loop are cold and must not be flagged.
package engine

import (
	"fmt"
	"time"
)

type Switcher struct{ passes int }

func (s *Switcher) switchOnce() int {
	n := 0
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("pass-%d", i) // want "fmt.Sprintf"
		n += len(tag)
		start := time.Now() // want "time.Now"
		_ = start
	}
	return n
}

func (s *Switcher) setup() string {
	return fmt.Sprintf("cold-%d", s.passes)
}
