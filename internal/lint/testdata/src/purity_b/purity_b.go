// Package purity_b seeds algorithm-purity violations reached through
// deeper call chains: network dialing, select, a blocking WaitGroup
// wait, and an engine.API call made while holding the algorithm mutex.
package purity_b

import (
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/message"
)

type Relay struct {
	mu  sync.Mutex
	API engine.API
	wg  sync.WaitGroup
}

func (r *Relay) Attach(api engine.API) { r.API = api }

func (r *Relay) Process(m *message.Msg) engine.Verdict {
	r.dialOut()
	r.settle()
	r.mu.Lock()
	r.API.Finish(m) // want "while holding a lock"
	r.mu.Unlock()
	return engine.Done
}

func (r *Relay) dialOut() {
	c, _ := net.Dial("tcp", "localhost:0") // want "net.Dial"
	_ = c
	select {} // want "select"
}

func (r *Relay) settle() {
	r.wg.Wait() // want "blocking Wait"
}
