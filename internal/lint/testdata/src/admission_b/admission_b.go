// Package observer (fixture admission_b) is the clean counterpart: the
// hello is read before any lock is taken, refusals go straight to the
// conn from lock-free helpers, rings are only ever TryPushed on the
// accept path, and blocking ring use outside accept-path functions is
// out of the admission check's scope.
package observer

import (
	"net"
	"sync"

	"repro/internal/message"
	"repro/internal/queue"
)

type server struct {
	mu    sync.Mutex
	out   *queue.Ring
	peers int
}

func (s *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handshake(conn) // want "is not tied to the lifecycle"
	}
}

// handshake does all connection I/O before touching the lock; the
// critical section is pure bookkeeping.
func (s *server) handshake(conn net.Conn) {
	m, err := message.Read(conn, nil, 1<<16)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	s.peers++
	s.mu.Unlock()
	m.Release()
}

// shedConn refuses without holding anything.
func (s *server) shedConn(conn net.Conn, frame []byte) {
	_, _ = conn.Write(frame)
	conn.Close()
}

// sendBusy drops the refusal when the ring is full rather than waiting:
// a lost Busy frame just means the dialer times out and backs off.
func (s *server) sendBusy(m *message.Msg) {
	if !s.out.TryPush(m) {
		m.Release()
	}
}

// writeLoop is a plain consumer, not an accept path: blocking on the
// ring here is the normal contract.
func (s *server) writeLoop() {
	for {
		m, err := s.out.Pop()
		if err != nil {
			return
		}
		m.Release()
	}
}
