// Package lockorder_b (fixture) seeds a transitive lock-order cycle:
// neither function takes both locks itself — each holds one lock and
// calls a helper that acquires the other, so the inversion is only
// visible on the call graph. The diagnostic carries the witness call
// path to each acquire.
package lockorder_b

import "sync"

type pair struct {
	muX sync.Mutex
	muY sync.Mutex
	x   int
	y   int
}

func (p *pair) bumpX() {
	p.muX.Lock()
	p.x++
	p.muX.Unlock()
}

func (p *pair) bumpY() {
	p.muY.Lock()
	p.y++
	p.muY.Unlock()
}

func (p *pair) lockstepX() {
	p.muX.Lock()
	p.bumpY() // want "potential deadlock"
	p.muX.Unlock()
}

func (p *pair) lockstepY() {
	p.muY.Lock()
	p.bumpX()
	p.muY.Unlock()
}
