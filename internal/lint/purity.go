package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkPurity enforces the paper's single-threaded algorithm guarantee:
// Algorithm.Process runs on the engine goroutine and must never block or
// spawn concurrency. Transitively over the module-local call graph from
// every Process implementation, the check forbids goroutine spawns,
// channel operations (send, receive, select, range-over-channel),
// time.Sleep, network dial/listen calls, blocking waits on unresolved
// receivers, and engine.API calls made while a mutex is held (a lock
// held across a reentrant upcall is a deadlock in waiting).
//
// Traversal stops at engine.API interface methods naturally (interfaces
// have no bodies) and is prevented from descending into the runtime-side
// packages, whose internal concurrency is their own business.
const checkNamePurity = "algpurity"

// runtimePkgNames are packages the purity walk must not descend into:
// they ARE the concurrent runtime. An algorithm reaching one directly
// (rather than through the engine.API interface) is itself suspect, but
// flagging every goroutine inside the engine would drown the signal.
var runtimePkgNames = map[string]bool{
	"engine": true, "queue": true, "vnet": true, "bandwidth": true,
	"chaos": true, "simnet": true, "flowsim": true, "observer": true,
	"proxy": true, "metrics": true, "experiments": true,
}

func checkPurity(l *Loader, pkgs []*Package, report reportFunc) {
	type item struct {
		fn   *Fn
		root string
	}
	var work []item
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if ok && isProcessImpl(fd) {
					fn := &Fn{Pkg: p, Decl: fd}
					work = append(work, item{fn: fn, root: fn.Name()})
				}
			}
		}
	}
	visited := make(map[*ast.FuncDecl]bool)
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if visited[it.fn.Decl] {
			continue
		}
		visited[it.fn.Decl] = true
		callees := scanPureBody(l, it.fn, it.root, report)
		for _, c := range callees {
			if runtimePkgNames[c.Pkg.Name] {
				continue
			}
			work = append(work, item{fn: c, root: it.root})
		}
	}
}

// isProcessImpl recognizes an Algorithm.Process implementation by shape:
// a method named Process taking a single *...Msg parameter and returning
// a single Verdict.
func isProcessImpl(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Process" || fd.Recv == nil || fd.Body == nil {
		return false
	}
	ft := fd.Type
	if ft.Params == nil || len(ft.Params.List) != 1 || ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	return strings.HasSuffix(typeText(ft.Params.List[0].Type), "Msg") &&
		strings.HasSuffix(typeText(ft.Results.List[0].Type), "Verdict")
}

// blockingExternals maps package path -> forbidden function prefixes.
var blockingExternals = map[string][]string{
	"time": {"Sleep"},
	"net":  {"Dial", "Listen"},
	"os":   {"Pipe"},
}

// scanPureBody reports purity violations in fn's body and returns the
// module-local callees to continue the walk through.
func scanPureBody(l *Loader, fn *Fn, root string, report reportFunc) []*Fn {
	info := fn.Pkg.Info
	where := ""
	if fn.Name() != root {
		where = " via " + fn.Name()
	}
	var callees []*Fn
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			report(st.Pos(), checkNamePurity,
				"goroutine spawn reachable from %s%s: Process must stay on the engine goroutine", root, where)
		case *ast.SendStmt:
			report(st.Pos(), checkNamePurity,
				"channel send reachable from %s%s: Process must never block", root, where)
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				report(st.Pos(), checkNamePurity,
					"channel receive reachable from %s%s: Process must never block", root, where)
			}
		case *ast.SelectStmt:
			report(st.Pos(), checkNamePurity,
				"select reachable from %s%s: Process must never block", root, where)
		case *ast.RangeStmt:
			if tv, ok := info.Types[st.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(st.Pos(), checkNamePurity,
						"range over channel reachable from %s%s: Process must never block", root, where)
				}
			}
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgQualifiedCallee(info, st); ok {
				for _, prefix := range blockingExternals[pkgPath] {
					if strings.HasPrefix(name, prefix) {
						report(st.Pos(), checkNamePurity,
							"%s.%s reachable from %s%s: Process must never block or touch the network", pkgPath, name, root, where)
					}
				}
				return true
			}
			if callee := methodCallee(l, info, st); callee != nil {
				callees = append(callees, callee)
				return true
			}
			// Unresolved method call (receiver type outside the module):
			// a bare .Wait() is a blocking sync.WaitGroup/sync.Cond wait.
			if sel, isSel := st.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Wait" {
				report(st.Pos(), checkNamePurity,
					"blocking Wait reachable from %s%s: Process must never block", root, where)
			}
		}
		return true
	})
	// Second pass: engine.API upcalls made while a mutex is held. The
	// engine may call back into the algorithm; holding an algorithm lock
	// across the upcall inverts the lock order and can deadlock.
	scanLockRegions(fn.Decl.Body,
		func(call *ast.CallExpr) bool { return isAPICall(info, call) },
		func(call *ast.CallExpr) {
			report(call.Pos(), checkNamePurity,
				"engine.API call %s while holding a lock, reachable from %s%s: release before calling the engine", exprText(call.Fun), root, where)
		})
	return callees
}

// isAPICall reports whether call invokes a method through the engine.API
// interface, by resolved receiver type when available and by the
// conventional field spelling (x.API.Method) otherwise.
func isAPICall(info *types.Info, call *ast.CallExpr) bool {
	if rt := recvTypeString(info, call); strings.HasSuffix(rt, "engine.API") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return strings.HasSuffix(exprText(sel.X), ".API") || exprText(sel.X) == "API"
}
