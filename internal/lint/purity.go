package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkPurity enforces the paper's single-threaded algorithm guarantee:
// Algorithm.Process runs on the engine goroutine and must never block or
// spawn concurrency. Interprocedurally over the call graph from every
// Process implementation — direct calls and conservative interface
// fan-outs alike — the check forbids goroutine spawns, channel
// operations (send, receive, select, range-over-channel), time.Sleep,
// network dial/listen calls, blocking waits on unresolved receivers, and
// engine.API calls made while a mutex is held (a lock held across a
// reentrant upcall is a deadlock in waiting). Every finding is reported
// at the offending site with the witness call path from Process.
//
// Traversal stops at engine.API interface methods naturally (interfaces
// have no bodies) and is prevented from descending into the runtime-side
// packages, whose internal concurrency is their own business.
const checkNamePurity = "algpurity"

// runtimePkgNames are packages the purity walk must not descend into:
// they ARE the concurrent runtime. An algorithm reaching one directly
// (rather than through the engine.API interface) is itself suspect, but
// flagging every goroutine inside the engine would drown the signal.
var runtimePkgNames = map[string]bool{
	"engine": true, "queue": true, "vnet": true, "bandwidth": true,
	"chaos": true, "simnet": true, "flowsim": true, "observer": true,
	"proxy": true, "metrics": true, "experiments": true,
}

func checkPurity(g *Graph, pkgs []*Package, report reportFunc) {
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	follow := func(e Edge) bool { return !runtimePkgNames[e.To.Pkg.Name] }
	visited := make(map[*Fn]bool)
	for _, fn := range g.l.Fns {
		if !requested[fn.Pkg] || !isProcessImpl(fn.Decl) {
			continue
		}
		root := fn.Name()
		for _, r := range g.ReachableFrom(fn, follow) {
			// The same helper can be reached from several Process roots;
			// report its violations once, for the first root that gets there.
			if visited[r.Fn] {
				continue
			}
			visited[r.Fn] = true
			scanPureBody(g, r.Fn, root, r.Path, report)
		}
	}
}

// isProcessImpl recognizes an Algorithm.Process implementation by shape:
// a method named Process taking a single *...Msg parameter and returning
// a single Verdict.
func isProcessImpl(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Process" || fd.Recv == nil || fd.Body == nil {
		return false
	}
	ft := fd.Type
	if ft.Params == nil || len(ft.Params.List) != 1 || ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	return strings.HasSuffix(typeText(ft.Params.List[0].Type), "Msg") &&
		strings.HasSuffix(typeText(ft.Results.List[0].Type), "Verdict")
}

// blockingExternals maps package path -> forbidden function prefixes.
var blockingExternals = map[string][]string{
	"time": {"Sleep"},
	"net":  {"Dial", "Listen"},
	"os":   {"Pipe"},
}

// scanPureBody reports purity violations in fn's body. path is the
// witness call chain from the Process root (root first, fn last).
func scanPureBody(g *Graph, fn *Fn, root string, path []*Fn, report reportFunc) {
	info := fn.Pkg.Info
	where := ""
	if len(path) > 1 {
		where = " via " + pathString(path[1:])
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			report(st.Pos(), checkNamePurity,
				"goroutine spawn reachable from %s%s: Process must stay on the engine goroutine", root, where)
		case *ast.SendStmt:
			report(st.Pos(), checkNamePurity,
				"channel send reachable from %s%s: Process must never block", root, where)
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				report(st.Pos(), checkNamePurity,
					"channel receive reachable from %s%s: Process must never block", root, where)
			}
		case *ast.SelectStmt:
			report(st.Pos(), checkNamePurity,
				"select reachable from %s%s: Process must never block", root, where)
		case *ast.RangeStmt:
			if tv, ok := info.Types[st.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(st.Pos(), checkNamePurity,
						"range over channel reachable from %s%s: Process must never block", root, where)
				}
			}
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgQualifiedCallee(info, st); ok {
				for _, prefix := range blockingExternals[pkgPath] {
					if strings.HasPrefix(name, prefix) {
						report(st.Pos(), checkNamePurity,
							"%s.%s reachable from %s%s: Process must never block or touch the network", pkgPath, name, root, where)
					}
				}
				return true
			}
			if methodCallee(g.l, info, st) != nil || len(g.ifaceImplementers(info, st)) > 0 {
				return true // resolved: the graph walk visits the callee itself
			}
			// Unresolved method call (receiver type outside the module):
			// a bare .Wait() is a blocking sync.WaitGroup/sync.Cond wait.
			if sel, isSel := st.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Wait" {
				report(st.Pos(), checkNamePurity,
					"blocking Wait reachable from %s%s: Process must never block", root, where)
			}
		}
		return true
	})
	// Second pass: engine.API upcalls made while a mutex is held. The
	// engine may call back into the algorithm; holding an algorithm lock
	// across the upcall inverts the lock order and can deadlock.
	scanLockRegions(fn.Pkg, fn.Decl.Body,
		func(call *ast.CallExpr) bool { return isAPICall(info, call) },
		func(call *ast.CallExpr, held []string) {
			if !heldAny(held) {
				return
			}
			report(call.Pos(), checkNamePurity,
				"engine.API call %s while holding a lock, reachable from %s%s: release before calling the engine", exprText(call.Fun), root, where)
		})
}

// isAPICall reports whether call invokes a method through the engine.API
// interface, by resolved receiver type when available and by the
// conventional field spelling (x.API.Method) otherwise.
func isAPICall(info *types.Info, call *ast.CallExpr) bool {
	if rt := recvTypeString(info, call); strings.HasSuffix(rt, "engine.API") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return strings.HasSuffix(exprText(sel.X), ".API") || exprText(sel.X) == "API"
}
