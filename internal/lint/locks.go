package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock-region analysis, keyed by lock identity.
//
// The scanner walks a body in source order and tracks which mutexes are
// held at each point. Unlike the earlier depth-counter version, every
// mutex is tracked separately: a deferred Unlock of mutex A pins A (and
// only A) held to the end of the body, and an Unlock of B never releases
// a held A. The scan stays linear over source positions, so branchy
// early-unlock shapes can still yield false negatives — never false
// positives on straight-line hold regions, the documented bias.
//
// Function-literal bodies are scanned as their own scopes with an empty
// held set: a closure's locks are taken when the closure runs, not where
// it is written, so attributing them to the surrounding stream would
// corrupt both the enclosing and the closure's regions.

// lockID renders a stable identity for the mutex named by expr (the
// receiver of a Lock/Unlock call): "pkg.Type.field" for struct fields,
// "pkg.var" for package-level mutexes, and a local/spelling fallback
// otherwise. Identities are per declaration, not per instance — the
// granularity every static lock-order analysis works at.
func lockID(p *Package, expr ast.Expr) string {
	e := expr
	for {
		if par, ok := e.(*ast.ParenExpr); ok {
			e = par.X
			continue
		}
		break
	}
	shortQual := func(tp *types.Package) string { return tp.Name() }
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if s := p.Info.Selections[t]; s != nil {
			recv := s.Recv()
			for {
				if ptr, ok := recv.(*types.Pointer); ok {
					recv = ptr.Elem()
					continue
				}
				break
			}
			return types.TypeString(recv, shortQual) + "." + t.Sel.Name
		}
	case *ast.Ident:
		if obj := p.Info.Uses[t]; obj != nil {
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return obj.Name()
		}
	}
	return p.Name + ":" + exprText(e)
}

// lockEvent is one entry in the linear scan of a single scope.
type lockEvent struct {
	pos   token.Pos
	kind  int    // +1 acquire, -1 release, 2 deferred release, 0 candidate
	id    string // lock identity for kind != 0
	rlock bool   // RLock/RUnlock
	call  *ast.CallExpr
}

// lockScope is one body (function or function literal) with nested
// literals split out.
type lockScope struct {
	events []lockEvent
	inner  []*lockScope
}

// classifyLockCall recognizes Lock/RLock/Unlock/RUnlock on a mutex-named
// receiver.
func classifyLockCall(call *ast.CallExpr) (recv ast.Expr, kind int, rlock bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !looksLikeMutex(sel.X) {
		return nil, 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return sel.X, +1, false, true
	case "RLock":
		return sel.X, +1, true, true
	case "Unlock":
		return sel.X, -1, false, true
	case "RUnlock":
		return sel.X, -1, true, true
	}
	return nil, 0, false, false
}

// collectLockScope builds the event stream for one scope, descending
// into blocks but splitting function literals into child scopes.
func collectLockScope(p *Package, body ast.Node, candidate func(*ast.CallExpr) bool) *lockScope {
	sc := &lockScope{}
	spawned := spawnedCalls(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if st == body {
				return true
			}
			sc.inner = append(sc.inner, collectLockScope(p, st.Body, candidate))
			return false
		case *ast.DeferStmt:
			if recv, kind, rlock, ok := classifyLockCall(st.Call); ok && kind == -1 {
				sc.events = append(sc.events, lockEvent{
					pos: st.Pos(), kind: 2, id: lockID(p, recv), rlock: rlock,
				})
				return false
			}
		case *ast.CallExpr:
			if spawned[st] {
				// A spawned call runs on its own goroutine, not inside
				// this hold region (the literal case is split out above).
				return true
			}
			if recv, kind, rlock, ok := classifyLockCall(st); ok {
				sc.events = append(sc.events, lockEvent{
					pos: st.Pos(), kind: kind, id: lockID(p, recv), rlock: rlock,
				})
				return true
			}
			if candidate != nil && candidate(st) {
				sc.events = append(sc.events, lockEvent{pos: st.Pos(), kind: 0, call: st})
			}
		}
		return true
	})
	sort.Slice(sc.events, func(i, j int) bool { return sc.events[i].pos < sc.events[j].pos })
	return sc
}

// replayScope runs the linear held-set simulation over one scope and its
// nested literal scopes (each literal starts with nothing held). flag is
// invoked for every candidate call with the sorted set of identities
// held at that point (possibly empty).
func replayScope(sc *lockScope, flag func(call *ast.CallExpr, held []string)) {
	held := make(map[string]int)
	sticky := make(map[string]bool) // deferred unlock: held to end of body
	order := []string{}
	snapshot := func() []string {
		var ids []string
		for _, id := range order {
			if held[id] > 0 {
				ids = append(ids, id)
			}
		}
		return ids
	}
	for _, ev := range sc.events {
		switch ev.kind {
		case +1:
			if held[ev.id] == 0 {
				order = append(order, ev.id)
			}
			held[ev.id]++
		case -1:
			// Release only the named mutex, only if actually held, and
			// never one pinned by a deferred unlock.
			if held[ev.id] > 0 && !sticky[ev.id] {
				held[ev.id]--
			}
		case 2:
			sticky[ev.id] = true
		case 0:
			flag(ev.call, snapshot())
		}
	}
	for _, inner := range sc.inner {
		replayScope(inner, flag)
	}
}

// scanLockRegions walks a function body tracking per-identity mutex hold
// regions and invokes flag for every call for which candidate returns
// true, together with the identities held at that point. Calls made while
// nothing is held are reported with an empty held set, so callers decide
// the policy.
func scanLockRegions(p *Package, body *ast.BlockStmt, candidate func(*ast.CallExpr) bool, flag func(call *ast.CallExpr, held []string)) {
	sc := collectLockScope(p, body, candidate)
	replayScope(sc, flag)
}

// heldAny reports whether any lock is held.
func heldAny(held []string) bool { return len(held) > 0 }

// heldMatching reports whether any held identity satisfies pred.
func heldMatching(held []string, pred func(string) bool) bool {
	for _, id := range held {
		if pred(id) {
			return true
		}
	}
	return false
}

// ----- per-function lock facts for the lockorder check -----

// lockPair is one direct held→acquired observation.
type lockPair struct {
	held, acq string
	pos       token.Pos
}

// lockCall is one resolved call made with locks held.
type lockCall struct {
	held []string
	to   *Fn
	pos  token.Pos
}

// lockFacts summarizes one function's lock behavior.
type lockFacts struct {
	acquires map[string]token.Pos // identity -> first acquire site
	pairs    []lockPair
	calls    []lockCall
}

// lockFactsOf computes the lock facts for fn: which mutexes it acquires,
// which ordered held→acquired pairs its body exhibits, and which resolved
// calls it makes while holding locks.
func lockFactsOf(g *Graph, fn *Fn) *lockFacts {
	p := fn.Pkg
	facts := &lockFacts{acquires: make(map[string]token.Pos)}
	resolved := func(call *ast.CallExpr) *Fn {
		if callee := methodCallee(g.l, p.Info, call); callee != nil {
			return callee
		}
		return nil
	}
	sc := collectLockScope(p, fn.Decl.Body, func(call *ast.CallExpr) bool {
		return resolved(call) != nil || len(g.ifaceImplementers(p.Info, call)) > 0
	})
	var replay func(sc *lockScope)
	replay = func(sc *lockScope) {
		held := make(map[string]int)
		sticky := make(map[string]bool)
		order := []string{}
		snapshot := func() []string {
			var ids []string
			for _, id := range order {
				if held[id] > 0 {
					ids = append(ids, id)
				}
			}
			return ids
		}
		for _, ev := range sc.events {
			switch ev.kind {
			case +1:
				if _, seen := facts.acquires[ev.id]; !seen {
					facts.acquires[ev.id] = ev.pos
				}
				for _, h := range snapshot() {
					if h != ev.id {
						facts.pairs = append(facts.pairs, lockPair{held: h, acq: ev.id, pos: ev.pos})
					}
				}
				if held[ev.id] == 0 {
					order = append(order, ev.id)
				}
				held[ev.id]++
			case -1:
				if held[ev.id] > 0 && !sticky[ev.id] {
					held[ev.id]--
				}
			case 2:
				sticky[ev.id] = true
			case 0:
				ids := snapshot()
				if len(ids) == 0 {
					continue
				}
				if callee := resolved(ev.call); callee != nil {
					facts.calls = append(facts.calls, lockCall{held: ids, to: callee, pos: ev.pos})
					continue
				}
				for _, impl := range g.ifaceImplementers(p.Info, ev.call) {
					facts.calls = append(facts.calls, lockCall{held: ids, to: impl, pos: ev.pos})
				}
			}
		}
		for _, inner := range sc.inner {
			replay(inner)
		}
	}
	replay(sc)
	return facts
}

// ringMutexHeld reports whether the held set contains the Ring's own
// mutex (as opposed to some auxiliary lock a Ring method might take).
func ringMutexHeld(held []string) bool {
	return heldMatching(held, func(id string) bool {
		return strings.HasSuffix(id, "Ring.mu")
	})
}
