package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The whole-program call-graph engine. Every check that reasons about
// what a function *reaches* — rather than what its body spells out —
// runs on top of this graph: per-function effect summaries are unioned
// over the module-local call graph to a fixpoint, and every transitive
// diagnostic carries a witness call path reconstructed by breadth-first
// search so a reader can follow the chain from root to effect.
//
// Resolution is conservative and stdlib-only:
//
//   - a direct call or method call on a concrete module-local type
//     resolves to its declaration (via go/types object identity);
//   - a call through a module-local interface fans out to every
//     module-local type that implements the interface and declares the
//     method — the analysis assumes any implementer may be behind the
//     value;
//   - calls into packages outside the module (the standard library
//     included) produce no edges; the per-check external tables
//     (blockingExternals, fmt/time/atomic recognition) classify those
//     directly at the call site;
//   - a go statement's call produces no edge: the spawned work runs on
//     its own goroutine, outside the caller's locks and hot loops, so
//     "reaches" must not flow through it. Spawn accountability is the
//     golifecycle check's job, which resolves spawn targets itself.

// Effect is a bit set of facts a function body performs directly.
// Transitive closures over the graph union these bits.
type Effect uint32

const (
	// EffGoSpawn: contains a go statement.
	EffGoSpawn Effect = 1 << iota
	// EffChanSend / EffChanRecv / EffSelect / EffChanRange: channel
	// operations, each a potential block.
	EffChanSend
	EffChanRecv
	EffSelect
	EffChanRange
	// EffBlockCall: calls a known-blocking external (time.Sleep,
	// net.Dial*/Listen*, os.Pipe).
	EffBlockCall
	// EffBareWait: calls .Wait() on an unresolved receiver — the shape
	// of a sync.WaitGroup or sync.Cond wait.
	EffBareWait
	// EffConnIO: performs frame or byte I/O against a network conn.
	EffConnIO
	// EffFmt / EffTimeNow / EffLogf: per-message allocation hazards the
	// hot-path check hunts.
	EffFmt
	EffTimeNow
	EffLogf
	// EffAlgUpcall: hands control to the algorithm (Process/notifyAlg/
	// deliverToAlg) — must never run under an engine lock.
	EffAlgUpcall
	// EffWGDone / EffWGWait: touches a WaitGroup by the repo's naming
	// convention (a receiver whose name mentions "wg") — the positive
	// evidence the golifecycle check accepts.
	EffWGDone
	EffWGWait
	// EffStopChan: receives from (or selects on) a stop-class channel —
	// a name mentioning stop/done/quit/halt/close.
	EffStopChan
)

// effPurityBlocking is the union of effects Algorithm.Process may never
// reach: anything that blocks the engine goroutine.
const effPurityBlocking = EffChanSend | EffChanRecv | EffSelect | EffChanRange |
	EffBlockCall | EffBareWait

// effLifecycleTied is the positive evidence that a spawned goroutine is
// reconciled at Stop: it signals a WaitGroup, waits on one (it *is* the
// reconciliation), or watches a stop channel.
const effLifecycleTied = EffWGDone | EffWGWait | EffStopChan

// Edge is one resolved call in the graph.
type Edge struct {
	From  *Fn
	To    *Fn
	Iface bool // resolved conservatively through an interface fan-out
}

// Graph is the module-wide call graph over every function the loader has
// indexed (analyzed packages and their module-local dependencies alike).
type Graph struct {
	l   *Loader
	Out map[*Fn][]Edge
	In  map[*Fn][]Edge

	effects map[*Fn]Effect
	trans   map[Effect]map[*Fn]Effect // memoized transitive closures, keyed by mask
}

// BuildGraph resolves every call site in every loaded function.
func BuildGraph(l *Loader) *Graph {
	g := &Graph{
		l:       l,
		Out:     make(map[*Fn][]Edge),
		In:      make(map[*Fn][]Edge),
		effects: make(map[*Fn]Effect),
		trans:   make(map[Effect]map[*Fn]Effect),
	}
	for _, fn := range l.Fns {
		seen := make(map[*Fn]bool)
		info := fn.Pkg.Info
		spawned := spawnedCalls(fn.Decl.Body)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if spawned[call] {
				return true
			}
			if callee := methodCallee(l, info, call); callee != nil {
				if !seen[callee] {
					seen[callee] = true
					g.addEdge(Edge{From: fn, To: callee})
				}
				return true
			}
			for _, impl := range g.ifaceImplementers(info, call) {
				if !seen[impl] {
					seen[impl] = true
					g.addEdge(Edge{From: fn, To: impl, Iface: true})
				}
			}
			return true
		})
	}
	return g
}

func (g *Graph) addEdge(e Edge) {
	g.Out[e.From] = append(g.Out[e.From], e)
	g.In[e.To] = append(g.In[e.To], e)
}

// spawnedCalls collects the immediate call expressions of go statements
// in body — the calls that run on a new goroutine rather than inline.
func spawnedCalls(body ast.Node) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(*ast.GoStmt); ok {
			out[st.Call] = true
		}
		return true
	})
	return out
}

// ifaceImplementers resolves a call through a module-local interface to
// every module-local method that implements it: the conservative fan-out.
func (g *Graph) ifaceImplementers(info *types.Info, call *ast.CallExpr) []*Fn {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*Fn
	for _, cand := range g.l.MethodsByName[sel.Sel.Name] {
		candObj, ok := cand.Pkg.Info.Defs[cand.Decl.Name].(*types.Func)
		if !ok {
			continue
		}
		candSig, ok := candObj.Type().(*types.Signature)
		if !ok || candSig.Recv() == nil {
			continue
		}
		rt := candSig.Recv().Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			impls = append(impls, cand)
		}
	}
	return impls
}

// stopChanName reports whether a channel expression is a stop-class
// channel by the repo's naming convention.
func stopChanName(e ast.Expr) bool {
	n := strings.ToLower(lastComponent(e))
	for _, s := range []string{"stop", "done", "quit", "halt", "clos"} {
		if strings.Contains(n, s) {
			return true
		}
	}
	return false
}

// wgName reports whether a receiver expression names a WaitGroup by the
// repo's convention (the engine's e.wg, the observer's o.wg, ...).
func wgName(e ast.Expr) bool {
	n := strings.ToLower(lastComponent(e))
	return strings.Contains(n, "wg") || strings.Contains(n, "waitgroup")
}

// Effects computes (and memoizes) the direct effect bits of one function
// body. Function-literal bodies nested inside count toward the enclosing
// declaration, matching how the checks attribute closure behavior.
func (g *Graph) Effects(fn *Fn) Effect {
	if eff, ok := g.effects[fn]; ok {
		return eff
	}
	var eff Effect
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			eff |= EffGoSpawn
		case *ast.SendStmt:
			eff |= EffChanSend
		case *ast.SelectStmt:
			eff |= EffSelect
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				eff |= EffChanRecv
				if stopChanName(st.X) {
					eff |= EffStopChan
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[st.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					eff |= EffChanRange
				}
			}
		case *ast.CallExpr:
			eff |= g.callEffects(fn.Pkg, st)
		}
		return true
	})
	g.effects[fn] = eff
	return eff
}

// callEffects classifies one call expression's direct effect bits.
func (g *Graph) callEffects(p *Package, call *ast.CallExpr) Effect {
	var eff Effect
	if pkgPath, name, ok := pkgQualifiedCallee(p.Info, call); ok {
		for _, prefix := range blockingExternals[pkgPath] {
			if strings.HasPrefix(name, prefix) {
				eff |= EffBlockCall
			}
		}
		switch {
		case pkgPath == "fmt":
			eff |= EffFmt
		case pkgPath == "time" && name == "Now":
			eff |= EffTimeNow
		}
	}
	if isConnIO(p, call) {
		eff |= EffConnIO
	}
	if isAlgUpcall(call) {
		eff |= EffAlgUpcall
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "logf":
			eff |= EffLogf
		case "Wait":
			if wgName(sel.X) {
				eff |= EffWGWait
			}
			if obj := p.Info.Uses[sel.Sel]; obj == nil {
				eff |= EffBareWait
			}
		case "Done":
			if wgName(sel.X) {
				eff |= EffWGDone
			}
		}
	} else if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "logf" {
		eff |= EffLogf
	}
	return eff
}

// Transitive computes, for every function, the union of its own and all
// reachable functions' direct effects restricted to mask, following
// every graph edge. The closure is memoized per mask.
func (g *Graph) Transitive(mask Effect) map[*Fn]Effect {
	if m, ok := g.trans[mask]; ok {
		return m
	}
	m := make(map[*Fn]Effect, len(g.l.Fns))
	for _, fn := range g.l.Fns {
		m[fn] = g.Effects(fn) & mask
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.l.Fns {
			eff := m[fn]
			for _, e := range g.Out[fn] {
				if add := m[e.To] &^ eff; add != 0 {
					eff |= add
					changed = true
				}
			}
			m[fn] = eff
		}
	}
	g.trans[mask] = m
	return m
}

// Reached is one function discovered by a graph walk, with the call path
// (root first, the function itself last) that discovered it.
type Reached struct {
	Fn   *Fn
	Path []*Fn
}

// ReachableFrom walks the graph breadth-first from root, following only
// edges for which follow returns true, and returns every function reached
// (root included) with a shortest witness path. Deterministic: edges are
// traversed in insertion (source) order.
func (g *Graph) ReachableFrom(root *Fn, follow func(Edge) bool) []Reached {
	visited := map[*Fn]bool{root: true}
	queue := []Reached{{Fn: root, Path: []*Fn{root}}}
	var out []Reached
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, e := range g.Out[cur.Fn] {
			if visited[e.To] || (follow != nil && !follow(e)) {
				continue
			}
			visited[e.To] = true
			path := append(append([]*Fn(nil), cur.Path...), e.To)
			queue = append(queue, Reached{Fn: e.To, Path: path})
		}
	}
	return out
}

// WitnessPath returns a shortest call path (start first) from start to a
// function satisfying pred, following only edges allowed by follow, or
// nil when none is reachable. Used to render the witness chain for a
// transitive effect.
func (g *Graph) WitnessPath(start *Fn, pred func(*Fn) bool, follow func(Edge) bool) []*Fn {
	if pred(start) {
		return []*Fn{start}
	}
	visited := map[*Fn]bool{start: true}
	queue := []Reached{{Fn: start, Path: []*Fn{start}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Out[cur.Fn] {
			if visited[e.To] || (follow != nil && !follow(e)) {
				continue
			}
			visited[e.To] = true
			path := append(append([]*Fn(nil), cur.Path...), e.To)
			if pred(e.To) {
				return path
			}
			queue = append(queue, Reached{Fn: e.To, Path: path})
		}
	}
	return nil
}

// pathString renders a witness call path for a diagnostic. Positions are
// deliberately omitted so messages stay stable across unrelated edits
// (the baseline matches on message text).
func pathString(path []*Fn) string {
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = fn.Name()
	}
	return strings.Join(names, " -> ")
}
