package lint

import (
	"go/token"
	"strings"
	"testing"
)

func baselineDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/engine/engine.go", Line: 42}, Check: "hotpath", Message: "fmt.Sprintf on the hot path in Send: formatting allocates per message"},
		{Pos: token.Position{Filename: "/mod/internal/queue/ring.go", Line: 7}, Check: "lockorder", Message: "lock-order cycle a -> b -> a: potential deadlock (x)"},
	}
}

// TestBaselineRoundTrip: findings written with FormatBaseline must be
// fully suppressed when parsed back, with nothing kept and nothing stale.
func TestBaselineRoundTrip(t *testing.T) {
	diags := baselineDiags()
	text := FormatBaseline("/mod", diags)
	b, err := ParseBaseline([]byte("# a justification\n\n" + text))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("parsed %d entries, want 2", b.Len())
	}
	kept, suppressed, stale := b.Filter("/mod", diags)
	if len(kept) != 0 || len(suppressed) != 2 || len(stale) != 0 {
		t.Fatalf("round trip: kept=%d suppressed=%d stale=%d, want 0/2/0", len(kept), len(suppressed), len(stale))
	}
}

// TestBaselineLineNumbersIrrelevant: a baselined finding that moves to a
// different line must stay suppressed — entries match on file, check,
// and message only.
func TestBaselineLineNumbersIrrelevant(t *testing.T) {
	diags := baselineDiags()
	b, err := ParseBaseline([]byte(FormatBaseline("/mod", diags)))
	if err != nil {
		t.Fatal(err)
	}
	diags[0].Pos.Line = 999
	kept, suppressed, stale := b.Filter("/mod", diags)
	if len(kept) != 0 || len(suppressed) != 2 || len(stale) != 0 {
		t.Fatalf("after line move: kept=%d suppressed=%d stale=%d, want 0/2/0", len(kept), len(suppressed), len(stale))
	}
}

// TestBaselineStaleAndKept: an entry whose finding disappeared is
// reported stale, and a finding with no entry is kept.
func TestBaselineStaleAndKept(t *testing.T) {
	diags := baselineDiags()
	b, err := ParseBaseline([]byte(FormatBaseline("/mod", diags)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := Diagnostic{Pos: token.Position{Filename: "/mod/internal/vnet/pipe.go", Line: 3}, Check: "algpurity", Message: "select reachable from Process"}
	kept, suppressed, stale := b.Filter("/mod", []Diagnostic{diags[0], fresh})
	if len(kept) != 1 || kept[0].Check != "algpurity" {
		t.Fatalf("kept = %v, want the fresh algpurity finding", kept)
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed = %v, want the baselined hotpath finding", suppressed)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "lockorder") {
		t.Fatalf("stale = %v, want the fixed lockorder entry", stale)
	}
}

// TestBaselineMalformedLineRejected: a typo in a suppression must be a
// parse error, not a silently ignored (or widened) entry.
func TestBaselineMalformedLineRejected(t *testing.T) {
	if _, err := ParseBaseline([]byte("internal/engine/engine.go hotpath broken\n")); err == nil {
		t.Fatal("malformed baseline line accepted")
	}
}

// TestBaselineRelPathOutsideRoot: diagnostics outside the module root
// keep their absolute path rather than a ../ relative one.
func TestBaselineRelPathOutsideRoot(t *testing.T) {
	if got := relPath("/mod", "/elsewhere/x.go"); got != "/elsewhere/x.go" {
		t.Fatalf("relPath escaped the root: %q", got)
	}
	if got := relPath("/mod", "/mod/internal/a.go"); got != "internal/a.go" {
		t.Fatalf("relPath = %q, want internal/a.go", got)
	}
}
