package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// checkLockOrder builds the module-wide lock-order graph and reports
// every cycle as a potential deadlock. A node is a lock identity
// ("pkg.Type.field"); an edge A -> B means some code path acquires B
// while holding A — either directly in one body, or by calling (with A
// held) a function that transitively acquires B. Two goroutines running
// the two sides of a cycle in opposite order deadlock, so any cycle is a
// bug in waiting even if today's schedules never interleave that way.
//
// Self-edges (re-acquiring the mutex already held) are the reentrancy
// problem owned by the lockdiscipline check and are excluded here; the
// minimum cycle this check reports is A -> B -> A. Each edge in a
// reported cycle carries its witness: the function holding the first
// lock and, for transitive edges, the call path to the acquire site.
const checkNameLockOrder = "lockorder"

// orderEdge is one held->acquired observation with its witness.
type orderEdge struct {
	from, to string
	fn       *Fn // function whose body holds `from`
	pos      token.Pos
	via      []*Fn // call path from fn's callee to the acquirer (nil for direct)
}

func (e orderEdge) witness() string {
	if len(e.via) == 0 {
		return e.fn.Name()
	}
	return pathString(append([]*Fn{e.fn}, e.via...))
}

func checkLockOrder(g *Graph, pkgs []*Package, report reportFunc) {
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}

	// Lock facts for every loaded function: dependency packages
	// contribute acquire sets even when only the analyzed packages
	// contribute edges.
	facts := make(map[*Fn]*lockFacts, len(g.l.Fns))
	for _, fn := range g.l.Fns {
		facts[fn] = lockFactsOf(g, fn)
	}

	// Transitive acquire sets: which identities can each function end up
	// locking, directly or through anything it calls.
	acq := make(map[*Fn]map[string]bool, len(g.l.Fns))
	for _, fn := range g.l.Fns {
		set := make(map[string]bool, len(facts[fn].acquires))
		for id := range facts[fn].acquires {
			set[id] = true
		}
		acq[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.l.Fns {
			for _, e := range g.Out[fn] {
				for id := range acq[e.To] {
					if !acq[fn][id] {
						acq[fn][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges, rooted in the analyzed packages. One edge per (from, to)
	// pair — the first witness found (load order, so deterministic) wins.
	edges := make(map[string]orderEdge)
	addEdge := func(e orderEdge) {
		if e.from == e.to {
			return
		}
		key := e.from + "\x00" + e.to
		if _, ok := edges[key]; !ok {
			edges[key] = e
		}
	}
	for _, fn := range g.l.Fns {
		if !requested[fn.Pkg] {
			continue
		}
		f := facts[fn]
		for _, pair := range f.pairs {
			addEdge(orderEdge{from: pair.held, to: pair.acq, fn: fn, pos: pair.pos})
		}
		for _, call := range f.calls {
			targets := make([]string, 0, len(acq[call.to]))
			for id := range acq[call.to] {
				targets = append(targets, id)
			}
			sort.Strings(targets)
			for _, id := range targets {
				path := g.WitnessPath(call.to, func(t *Fn) bool {
					_, ok := facts[t].acquires[id]
					return ok
				}, nil)
				if path == nil {
					continue
				}
				for _, held := range call.held {
					addEdge(orderEdge{from: held, to: id, fn: fn, pos: call.pos, via: path})
				}
			}
		}
	}

	// Adjacency, deterministically ordered.
	adj := make(map[string][]orderEdge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	var nodes []string
	for from := range adj {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)
	for _, from := range nodes {
		out := adj[from]
		sort.Slice(out, func(i, j int) bool { return out[i].to < out[j].to })
	}

	// Enumerate elementary cycles, each discovered exactly once: a cycle
	// is found from its lexicographically smallest node, and every other
	// node on the path must be strictly larger. Cycle length is bounded —
	// a deadlock witness with more than a handful of locks adds nothing.
	const maxCycleLen = 6
	for _, start := range nodes {
		var path []orderEdge
		on := map[string]bool{start: true}
		var dfs func(cur string)
		dfs = func(cur string) {
			for _, e := range adj[cur] {
				if e.to == start {
					if len(path) >= 1 { // with e, cycle has >= 2 edges
						reportCycle(append(append([]orderEdge(nil), path...), e), report)
					}
					continue
				}
				if e.to < start || on[e.to] || len(path)+1 >= maxCycleLen {
					continue
				}
				on[e.to] = true
				path = append(path, e)
				dfs(e.to)
				path = path[:len(path)-1]
				delete(on, e.to)
			}
		}
		dfs(start)
	}
}

// reportCycle renders one cycle at the acquire site of its first edge
// (the edge leaving the lexicographically smallest identity).
func reportCycle(cycle []orderEdge, report reportFunc) {
	ids := make([]string, 0, len(cycle)+1)
	ids = append(ids, cycle[0].from)
	parts := make([]string, 0, len(cycle))
	for _, e := range cycle {
		ids = append(ids, e.to)
		parts = append(parts, fmt.Sprintf("%s held while acquiring %s in %s", e.from, e.to, e.witness()))
	}
	report(cycle[0].pos, checkNameLockOrder,
		"lock-order cycle %s: potential deadlock (%s)",
		strings.Join(ids, " -> "), strings.Join(parts, "; "))
}
