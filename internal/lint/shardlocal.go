package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkShardLocal enforces the sharded-switch ownership contract from the
// engine's shard design: fields of the shard struct marked with a
// trailing "// shard-local" comment are mutable scheduler state owned by
// the shard's goroutine. They may be touched only from methods with a
// shard receiver — every cross-shard interaction must ride the bounded
// MPSC handoff inbox or an atomic gauge, never a direct field access from
// the engine loop, a link goroutine, or another shard.
//
// The check is keyed by package name (engine) and by the marker comment,
// so it applies to the real tree and to fixtures alike, and new fields
// opt in simply by carrying the marker.
const checkNameShardLocal = "shardlocal"

func checkShardLocal(p *Package, report reportFunc) {
	if p.Name != "engine" {
		return
	}
	local := shardLocalFields(p)
	if len(local) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsShard(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !local[sel.Sel.Name] {
					return true
				}
				if isShardTyped(p.Info, sel.X) {
					report(sel.Pos(), checkNameShardLocal,
						"shard-local field %s accessed outside a shard method: cross-shard state moves only through the handoff inbox",
						sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// shardLocalFields collects the field names of the package's shard struct
// that carry the "// shard-local" marker comment.
func shardLocalFields(p *Package) map[string]bool {
	local := make(map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "shard" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if fld.Comment == nil || !strings.Contains(fld.Comment.Text(), "shard-local") {
					continue
				}
				for _, nm := range fld.Names {
					local[nm.Name] = true
				}
			}
			return false
		})
	}
	return local
}

// recvIsShard reports whether a declaration is a method on the shard
// struct (pointer or value receiver).
func recvIsShard(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "shard"
}

// isShardTyped reports whether an expression's static type is the shard
// struct, by resolved type when available and by spelling otherwise.
func isShardTyped(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		s := types.TypeString(tv.Type, nil)
		s = strings.TrimPrefix(s, "*")
		if strings.HasSuffix(s, ".shard") || s == "shard" {
			return true
		}
		return false
	}
	n := strings.ToLower(lastComponent(e))
	return n == "sh" || strings.Contains(n, "shard")
}
