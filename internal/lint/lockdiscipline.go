package lint

import (
	"go/ast"
	"strings"
)

// checkLockDiscipline enforces two self-deadlock rules:
//
//   - queue: a Ring method that acquires the ring mutex must not call
//     another exported Ring method through the receiver while holding it
//     (every exported method takes the same mutex — the call would
//     deadlock, since sync.Mutex is not reentrant). The held-set is
//     tracked per lock identity, so an auxiliary lock a Ring method
//     takes does not implicate the ring mutex.
//
//   - engine: no algorithm upcall (alg.Process, notifyAlg, deliverToAlg)
//     may run with an engine lock held — directly or through any chain
//     of module-local helpers. Process may reenter the engine through
//     the API, which retakes engine locks. Transitive findings carry the
//     witness call path to the upcall.
const checkNameLockDiscipline = "lockdiscipline"

func checkLockDiscipline(g *Graph, p *Package, report reportFunc) {
	switch p.Name {
	case "queue":
		checkRingLocks(p, report)
	case "engine":
		checkEngineUpcalls(g, p, report)
	}
}

func checkRingLocks(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if base := strings.TrimPrefix(typeText(fd.Recv.List[0].Type), "*"); base != "Ring" {
				continue
			}
			recvName := ""
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" {
				continue
			}
			scanLockRegions(p, fd.Body,
				func(call *ast.CallExpr) bool {
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !ast.IsExported(sel.Sel.Name) {
						return false
					}
					id, ok := sel.X.(*ast.Ident)
					return ok && id.Name == recvName
				},
				func(call *ast.CallExpr, held []string) {
					if !ringMutexHeld(held) {
						return
					}
					report(call.Pos(), checkNameLockDiscipline,
						"%s calls exported Ring method %s while holding the ring mutex: sync.Mutex is not reentrant", fd.Name.Name, exprText(call.Fun))
				})
		}
	}
}

func checkEngineUpcalls(g *Graph, p *Package, report reportFunc) {
	// A call made under the engine lock is as dangerous as a direct
	// upcall if anything it transitively reaches hands control to the
	// algorithm.
	upcalls := g.Transitive(EffAlgUpcall)
	reachesUpcall := func(fn *Fn) bool { return fn != nil && upcalls[fn]&EffAlgUpcall != 0 }
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockRegions(p, fd.Body,
				func(call *ast.CallExpr) bool {
					if isAlgUpcall(call) {
						return true
					}
					return reachesUpcall(methodCallee(g.l, p.Info, call))
				},
				func(call *ast.CallExpr, held []string) {
					if !heldAny(held) {
						return
					}
					if isAlgUpcall(call) {
						report(call.Pos(), checkNameLockDiscipline,
							"%s invokes the algorithm callback %s with an engine lock held: Process may reenter the engine and deadlock", fd.Name.Name, exprText(call.Fun))
						return
					}
					callee := methodCallee(g.l, p.Info, call)
					path := g.WitnessPath(callee, func(fn *Fn) bool {
						return g.Effects(fn)&EffAlgUpcall != 0
					}, nil)
					report(call.Pos(), checkNameLockDiscipline,
						"%s calls %s with an engine lock held, and it reaches the algorithm callback (via %s): Process may reenter the engine and deadlock",
						fd.Name.Name, exprText(call.Fun), pathString(path))
				})
		}
	}
}

// isAlgUpcall recognizes the three ways engine code hands control to the
// algorithm: the direct interface call and the two internal wrappers.
func isAlgUpcall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "notifyAlg", "deliverToAlg":
		return true
	case "Process", "Attach":
		return strings.HasSuffix(exprText(sel.X), "alg")
	}
	return false
}
