package lint

import (
	"go/ast"
	"strings"
)

// checkCtrlLane enforces the control-plane isolation contract from PR 3:
// control-class messages must reach a ring through the non-blocking push
// API (the engine must never call the blocking Ring.Push, which can wait
// on a data-full lane), consumers must serve the control lane before the
// data lane, and no shed path may touch the control lane — control is
// never dropped for memory pressure. Shed paths are traced
// interprocedurally: a shed-named function must not reach a control-lane
// pop through any chain of module-local helpers, and the diagnostic
// carries the witness call path.
//
// The check is keyed by package name (engine, queue) so it applies to
// the real tree and to fixtures alike.
const checkNameCtrlLane = "ctrllane"

func checkCtrlLane(g *Graph, p *Package, report reportFunc) {
	switch p.Name {
	case "engine":
		checkCtrlLaneEngine(g, p, report)
	case "queue":
		checkCtrlLaneQueue(g, p, report)
	}
}

func checkCtrlLaneEngine(g *Graph, p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isShed := strings.Contains(strings.ToLower(fd.Name.Name), "shed")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Push" && isRingRecv(p, call, sel) {
					report(call.Pos(), checkNameCtrlLane,
						"blocking Ring.Push in engine code: use TryPush (control parks on overflow) or PushBatch (data back-pressure)")
				}
				if isShed {
					if sel.Sel.Name == "TryPopCtrl" || sel.Sel.Name == "CtrlLen" {
						report(call.Pos(), checkNameCtrlLane,
							"shed path %s touches the control lane: control-class messages are never shed", fd.Name.Name)
					}
				}
				return true
			})
			if isShed {
				flagCtrlLaneRefs(fd, report)
				flagTransitiveCtrlPops(g, p, fd, report)
			}
		}
	}
}

func checkCtrlLaneQueue(g *Graph, p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.Contains(strings.ToLower(fd.Name.Name), "shed") {
				flagCtrlLaneRefs(fd, report)
				flagTransitiveCtrlPops(g, p, fd, report)
			}
			checkPopOrder(fd, report)
		}
	}
}

// flagCtrlLaneRefs reports any selector reference to a field named ctrl
// inside a shed-path function body.
func flagCtrlLaneRefs(fd *ast.FuncDecl, report reportFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "ctrl" {
			report(sel.Pos(), checkNameCtrlLane,
				"shed path %s references the control lane: control-class messages are never shed", fd.Name.Name)
		}
		return true
	})
}

// flagTransitiveCtrlPops follows the call graph out of a shed-path
// function and flags any reachable same-package helper that pops the
// control lane. Reached helpers are judged by the narrower pop rule, not
// the any-ctrl-reference rule used on the shed body itself: a generic
// lane helper may legitimately compare against the ctrl lane, but a shed
// chain that *pops* from it is dropping control messages. The walk stays
// inside the shed function's package — a cross-package entry point
// (TryPopCtrl, CtrlLen) is already flagged at its call site by name.
func flagTransitiveCtrlPops(g *Graph, p *Package, fd *ast.FuncDecl, report reportFunc) {
	root := g.l.FuncOf[p.Info.Defs[fd.Name]]
	if root == nil {
		return
	}
	samePkg := func(e Edge) bool { return e.To.Pkg == p }
	for _, r := range g.ReachableFrom(root, samePkg) {
		if r.Fn == root {
			continue
		}
		via := pathString(r.Path)
		ast.Inspect(r.Fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if popsCtrlLane(call) {
				report(call.Pos(), checkNameCtrlLane,
					"shed path %s reaches a control-lane pop (via %s): control-class messages are never shed", fd.Name.Name, via)
			}
			return true
		})
	}
}

// popsCtrlLane recognizes a control-lane pop: the dedicated TryPopCtrl /
// CtrlLen entry points, or a pop/popLocked invocation whose lane argument
// or receiver spells ctrl.
func popsCtrlLane(call *ast.CallExpr) bool {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	switch name {
	case "TryPopCtrl", "CtrlLen":
		return true
	case "pop", "popLocked", "popBatchLocked":
		for _, a := range call.Args {
			if strings.HasSuffix(exprText(a), "ctrl") {
				return true
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasSuffix(exprText(sel.X), "ctrl") {
			return true
		}
	}
	return false
}

// checkPopOrder enforces control-before-data service order: in any queue
// function that pops from both lanes, the first control-lane pop must
// precede the first data-lane pop in source order.
func checkPopOrder(fd *ast.FuncDecl, report reportFunc) {
	firstCtrl, firstData := ast.Node(nil), ast.Node(nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name != "popLocked" && name != "pop" {
			return true
		}
		lane := ""
		for _, a := range call.Args {
			t := exprText(a)
			if strings.HasSuffix(t, "ctrl") {
				lane = "ctrl"
			} else if strings.HasSuffix(t, "data") {
				lane = "data"
			}
		}
		if lane == "" && len(call.Args) == 0 {
			// method form: l.pop(now) — classify by receiver spelling
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				t := exprText(sel.X)
				if strings.HasSuffix(t, "ctrl") {
					lane = "ctrl"
				} else if strings.HasSuffix(t, "data") {
					lane = "data"
				}
			}
		}
		switch lane {
		case "ctrl":
			if firstCtrl == nil {
				firstCtrl = call
			}
		case "data":
			if firstData == nil {
				firstData = call
			}
		}
		return true
	})
	if firstCtrl != nil && firstData != nil && firstData.Pos() < firstCtrl.Pos() {
		report(firstData.Pos(), checkNameCtrlLane,
			"%s serves the data lane before the control lane: control must bypass queued data", fd.Name.Name)
	}
}

// isRingRecv reports whether a method call's receiver is a queue.Ring,
// by resolved type when available and by field spelling otherwise.
func isRingRecv(p *Package, call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	if rt := recvTypeString(p.Info, call); rt != "" {
		return strings.HasSuffix(rt, "queue.Ring") || strings.HasSuffix(rt, "*Ring")
	}
	return strings.Contains(strings.ToLower(lastComponent(sel.X)), "ring")
}
