package lint

import (
	"go/ast"
	"strings"
)

// checkCtrlLane enforces the control-plane isolation contract from PR 3:
// control-class messages must reach a ring through the non-blocking push
// API (the engine must never call the blocking Ring.Push, which can wait
// on a data-full lane), consumers must serve the control lane before the
// data lane, and no shed path may touch the control lane — control is
// never dropped for memory pressure.
//
// The check is keyed by package name (engine, queue) so it applies to
// the real tree and to fixtures alike.
const checkNameCtrlLane = "ctrllane"

func checkCtrlLane(l *Loader, p *Package, report reportFunc) {
	switch p.Name {
	case "engine":
		checkCtrlLaneEngine(p, report)
	case "queue":
		checkCtrlLaneQueue(p, report)
	}
}

func checkCtrlLaneEngine(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isShed := strings.Contains(strings.ToLower(fd.Name.Name), "shed")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Push" && isRingRecv(p, call, sel) {
					report(call.Pos(), checkNameCtrlLane,
						"blocking Ring.Push in engine code: use TryPush (control parks on overflow) or PushBatch (data back-pressure)")
				}
				if isShed {
					if sel.Sel.Name == "TryPopCtrl" || sel.Sel.Name == "CtrlLen" {
						report(call.Pos(), checkNameCtrlLane,
							"shed path %s touches the control lane: control-class messages are never shed", fd.Name.Name)
					}
				}
				return true
			})
			if isShed {
				flagCtrlLaneRefs(fd, report)
			}
		}
	}
}

func checkCtrlLaneQueue(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.Contains(strings.ToLower(fd.Name.Name), "shed") {
				flagCtrlLaneRefs(fd, report)
			}
			checkPopOrder(fd, report)
		}
	}
}

// flagCtrlLaneRefs reports any selector reference to a field named ctrl
// inside a shed-path function body.
func flagCtrlLaneRefs(fd *ast.FuncDecl, report reportFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "ctrl" {
			report(sel.Pos(), checkNameCtrlLane,
				"shed path %s references the control lane: control-class messages are never shed", fd.Name.Name)
		}
		return true
	})
}

// checkPopOrder enforces control-before-data service order: in any queue
// function that pops from both lanes, the first control-lane pop must
// precede the first data-lane pop in source order.
func checkPopOrder(fd *ast.FuncDecl, report reportFunc) {
	firstCtrl, firstData := ast.Node(nil), ast.Node(nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name != "popLocked" && name != "pop" {
			return true
		}
		lane := ""
		for _, a := range call.Args {
			t := exprText(a)
			if strings.HasSuffix(t, "ctrl") {
				lane = "ctrl"
			} else if strings.HasSuffix(t, "data") {
				lane = "data"
			}
		}
		if lane == "" && len(call.Args) == 0 {
			// method form: l.pop(now) — classify by receiver spelling
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				t := exprText(sel.X)
				if strings.HasSuffix(t, "ctrl") {
					lane = "ctrl"
				} else if strings.HasSuffix(t, "data") {
					lane = "data"
				}
			}
		}
		switch lane {
		case "ctrl":
			if firstCtrl == nil {
				firstCtrl = call
			}
		case "data":
			if firstData == nil {
				firstData = call
			}
		}
		return true
	})
	if firstCtrl != nil && firstData != nil && firstData.Pos() < firstCtrl.Pos() {
		report(firstData.Pos(), checkNameCtrlLane,
			"%s serves the data lane before the control lane: control must bypass queued data", fd.Name.Name)
	}
}

// isRingRecv reports whether a method call's receiver is a queue.Ring,
// by resolved type when available and by field spelling otherwise.
func isRingRecv(p *Package, call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	if rt := recvTypeString(p.Info, call); rt != "" {
		return strings.HasSuffix(rt, "queue.Ring") || strings.HasSuffix(rt, "*Ring")
	}
	return strings.Contains(strings.ToLower(lastComponent(sel.X)), "ring")
}
