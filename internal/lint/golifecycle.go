package lint

import (
	"go/ast"
	"go/token"
)

// checkGoLifecycle enforces goroutine accountability in the three
// packages that own long-lived concurrency — engine, observer, and
// admission: every go statement must be tied to the owner's lifecycle,
// so Stop can prove the goroutine is gone rather than hope. A spawn is
// accepted if either
//
//   - a WaitGroup Add precedes it in the spawning function (the spawned
//     body is then expected to Done — the repo's e.wg.Add(1); go e.run()
//     idiom), or
//   - the spawned target itself is provably lifecycle-tied: it (or
//     anything it transitively calls) signals a WaitGroup, waits on one
//     (it *is* the reconciliation, like go e.Stop()), or watches a
//     stop-class channel (stop/done/quit names).
//
// Anything else — including a spawn whose target the loader cannot
// resolve — is flagged: an unaccounted goroutine outlives Stop, keeps
// its captures alive, and races the next test's engine instance.
const checkNameGoLifecycle = "golifecycle"

// lifecyclePkgs are the packages that may own long-lived goroutines and
// therefore must account for every one of them.
var lifecyclePkgs = map[string]bool{"engine": true, "observer": true, "admission": true}

func checkGoLifecycle(g *Graph, pkgs []*Package, report reportFunc) {
	tied := g.Transitive(effLifecycleTied)
	for _, p := range pkgs {
		if !lifecyclePkgs[p.Name] {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkSpawns(g, p, fd, tied, report)
			}
		}
	}
}

func checkSpawns(g *Graph, p *Package, fd *ast.FuncDecl, tied map[*Fn]Effect, report reportFunc) {
	addPositions := wgAddPositions(fd.Body)
	fn := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Evidence 1: a wg.Add earlier in this function covers the spawn.
		for _, pos := range addPositions {
			if pos < st.Pos() {
				return true
			}
		}
		// Evidence 2: the spawned target is itself lifecycle-tied.
		if lit, isLit := st.Call.Fun.(*ast.FuncLit); isLit {
			if litLifecycleTied(g, p, lit, tied) {
				return true
			}
			report(st.Pos(), checkNameGoLifecycle,
				"goroutine literal in %s is not tied to the lifecycle: no wg.Add before the spawn and the body neither signals a WaitGroup nor watches a stop channel", fn)
			return true
		}
		if callee := methodCallee(g.l, p.Info, st.Call); callee != nil {
			if tied[callee]&effLifecycleTied != 0 {
				return true
			}
			report(st.Pos(), checkNameGoLifecycle,
				"go %s in %s is not tied to the lifecycle (spawn path %s): no wg.Add before the spawn, and the target neither signals a WaitGroup nor watches a stop channel", exprText(st.Call.Fun), fn, callee.Name())
			return true
		}
		if impls := g.ifaceImplementers(p.Info, st.Call); len(impls) > 0 {
			for _, impl := range impls {
				if tied[impl]&effLifecycleTied == 0 {
					report(st.Pos(), checkNameGoLifecycle,
						"go %s in %s is not tied to the lifecycle (spawn path %s): no wg.Add before the spawn, and the implementer neither signals a WaitGroup nor watches a stop channel", exprText(st.Call.Fun), fn, impl.Name())
				}
			}
			return true
		}
		report(st.Pos(), checkNameGoLifecycle,
			"go %s in %s spawns an unresolved target with no wg.Add before it: tie the goroutine to a WaitGroup or stop channel", exprText(st.Call.Fun), fn)
		return true
	})
}

// wgAddPositions collects the positions of WaitGroup Add calls in a body.
func wgAddPositions(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && wgName(sel.X) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// litLifecycleTied reports whether a goroutine literal's body carries the
// lifecycle evidence directly (a stop-channel receive, a wg.Done or
// wg.Wait) or reaches it through a resolved call.
func litLifecycleTied(g *Graph, p *Package, lit *ast.FuncLit, tied map[*Fn]Effect) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" && stopChanName(st.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && wgName(sel.X) &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				found = true
				return false
			}
			if callee := methodCallee(g.l, p.Info, st); callee != nil && tied[callee]&effLifecycleTied != 0 {
				found = true
			}
		}
		return true
	})
	return found
}
