package lint

import (
	"go/ast"
	"strings"
)

// checkObsSync enforces the federation contract from the observer tier:
// anti-entropy code — any function in package observer whose name
// mentions "sync", the documented naming convention of
// internal/observer/sync.go — must never block on a ring. A sync path
// that calls blocking Push/Pop can stall behind a node-facing ring that
// a slow or dead peer keeps full, wedging the whole federation behind
// one connection; drops are fine, because the next full-table round
// repairs them. Only the non-blocking Try APIs are allowed.
const checkNameObsSync = "obssync"

var obsSyncBlocking = map[string]bool{
	"Push":      true,
	"Pop":       true,
	"PushBatch": true,
	"PopBatch":  true,
}

func checkObsSync(p *Package, report reportFunc) {
	if p.Name != "observer" {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fd.Name.Name), "sync") {
				continue
			}
			fn := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if obsSyncBlocking[sel.Sel.Name] && isRingRecv(p, call, sel) {
					report(call.Pos(), checkNameObsSync,
						"sync path %s blocks on Ring.%s: federation sync must use the non-blocking Try APIs (a dropped round is repaired by the next one)",
						fn, sel.Sel.Name)
				}
				return true
			})
		}
	}
}
