package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Run executes every check against the given packages (which must have
// been produced by the same Loader, so the call-graph index is shared)
// and returns findings sorted by position.
func Run(l *Loader, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, check, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     l.Fset.Position(pos),
			Check:   check,
			Message: fmt.Sprintf(format, args...),
		})
	}
	checkPurity(l, pkgs, report)
	for _, p := range pkgs {
		checkCtrlLane(l, p, report)
		checkLockDiscipline(l, p, report)
		checkHotPath(l, p, report)
		checkShardLocal(p, report)
		checkObsSync(p, report)
		checkAdmission(p, report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	// The same node can be reached from several roots; report it once.
	out := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

type reportFunc func(pos token.Pos, check, format string, args ...any)

// pkgQualifiedCallee resolves a call of the form pkg.Func where pkg is an
// imported package (standard library or otherwise). It returns the
// package path and function name, or ok=false for anything else.
func pkgQualifiedCallee(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallee resolves a method call to its declaration, if the method
// belongs to a module-local type the loader has seen.
func methodCallee(l *Loader, info *types.Info, call *ast.CallExpr) *Fn {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			return l.FuncOf[obj]
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil {
			return l.FuncOf[obj]
		}
	}
	return nil
}

// recvTypeString renders the receiver type of a method call, e.g.
// "*repro/internal/queue.Ring", or "" when types are unresolved.
func recvTypeString(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s := info.Selections[sel]; s != nil {
		return types.TypeString(s.Recv(), nil)
	}
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, nil)
	}
	return ""
}

// exprText renders a (small) expression for matching; only the selector
// spine is preserved.
func exprText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprText(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return exprText(t.X)
	case *ast.UnaryExpr:
		return exprText(t.X)
	case *ast.ParenExpr:
		return exprText(t.X)
	case *ast.CallExpr:
		return exprText(t.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(t.X) + "[]"
	default:
		return "?"
	}
}

// lastComponent returns the final selector component of an expression
// ("e.mu" -> "mu").
func lastComponent(e ast.Expr) string {
	t := exprText(e)
	if i := strings.LastIndex(t, "."); i >= 0 {
		return t[i+1:]
	}
	return t
}

// looksLikeMutex reports whether an expression plausibly names a mutex
// (a field or variable whose name mentions "mu" or "lock").
func looksLikeMutex(e ast.Expr) bool {
	n := strings.ToLower(lastComponent(e))
	return strings.Contains(n, "mu") || strings.Contains(n, "lock")
}

// lockEvent is one entry in the linear lock-region scan of a body.
type lockEvent struct {
	pos  token.Pos
	kind int // +1 lock, -1 unlock, 0 candidate call
	call *ast.CallExpr
}

// scanLockRegions walks a function body in source order, tracking mutex
// acquire/release pairs, and invokes flag for every call for which
// candidate returns true while at least one mutex is held. A deferred
// unlock keeps the mutex held for the remainder of the body (which is
// exactly the property the checks care about). The scan is linear over
// source positions — branchy early-unlock patterns can yield false
// negatives, never false positives on straight-line hold regions.
func scanLockRegions(body *ast.BlockStmt, candidate func(*ast.CallExpr) bool, flag func(*ast.CallExpr)) {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := st.Call.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if (name == "Unlock" || name == "RUnlock") && looksLikeMutex(sel.X) {
					// Deferred unlock: the mutex stays held to the end of
					// the body, so no release event is recorded.
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && looksLikeMutex(sel.X) {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: st.Pos(), kind: +1})
					return true
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{pos: st.Pos(), kind: -1})
					return true
				}
			}
			if candidate(st) {
				events = append(events, lockEvent{pos: st.Pos(), kind: 0, call: st})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := 0
	for _, ev := range events {
		switch ev.kind {
		case +1:
			depth++
		case -1:
			if depth > 0 {
				depth--
			}
		default:
			if depth > 0 {
				flag(ev.call)
			}
		}
	}
}

// forLoopBodies returns the bodies of all for/range loops inside body.
func forLoopBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			out = append(out, st.Body)
		case *ast.RangeStmt:
			out = append(out, st.Body)
		}
		return true
	})
	return out
}
