package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned so editors can jump to it.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Timing records how long one check took over the analyzed package set.
type Timing struct {
	Check    string
	Duration time.Duration
}

// CheckNames lists every check the analyzer runs, in execution order.
func CheckNames() []string {
	names := make([]string, len(allChecks))
	for i, c := range allChecks {
		names[i] = c.name
	}
	return names
}

// allChecks is the registry: the ten invariants, each a closure over the
// shared call graph.
var allChecks = []struct {
	name string
	run  func(g *Graph, pkgs []*Package, report reportFunc)
}{
	{checkNamePurity, checkPurity},
	{checkNameCtrlLane, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkCtrlLane(g, p, report)
		}
	}},
	{checkNameLockDiscipline, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkLockDiscipline(g, p, report)
		}
	}},
	{checkNameHotPath, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkHotPath(g, p, report)
		}
	}},
	{checkNameShardLocal, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkShardLocal(p, report)
		}
	}},
	{checkNameObsSync, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkObsSync(p, report)
		}
	}},
	{checkNameAdmission, func(g *Graph, pkgs []*Package, report reportFunc) {
		for _, p := range pkgs {
			checkAdmission(g, p, report)
		}
	}},
	{checkNameLockOrder, checkLockOrder},
	{checkNameAtomicField, checkAtomicField},
	{checkNameGoLifecycle, checkGoLifecycle},
}

// Run executes every check against the given packages (which must have
// been produced by the same Loader, so the call-graph index is shared)
// and returns findings sorted by position.
func Run(l *Loader, pkgs []*Package) []Diagnostic {
	diags, _ := RunTimed(l, pkgs)
	return diags
}

// RunTimed is Run plus a per-check wall-clock breakdown (the graph build
// is attributed to the first check that runs).
func RunTimed(l *Loader, pkgs []*Package) ([]Diagnostic, []Timing) {
	g := BuildGraph(l)
	var diags []Diagnostic
	report := func(pos token.Pos, check, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     l.Fset.Position(pos),
			Check:   check,
			Message: fmt.Sprintf(format, args...),
		})
	}
	timings := make([]Timing, 0, len(allChecks))
	for _, c := range allChecks {
		start := time.Now()
		c.run(g, pkgs, report)
		timings = append(timings, Timing{Check: c.name, Duration: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	// The same node can be reached from several roots; report it once.
	out := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out, timings
}

type reportFunc func(pos token.Pos, check, format string, args ...any)

// pkgQualifiedCallee resolves a call of the form pkg.Func where pkg is an
// imported package (standard library or otherwise). It returns the
// package path and function name, or ok=false for anything else.
func pkgQualifiedCallee(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallee resolves a method call to its declaration, if the method
// belongs to a module-local type the loader has seen.
func methodCallee(l *Loader, info *types.Info, call *ast.CallExpr) *Fn {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			return l.FuncOf[obj]
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil {
			return l.FuncOf[obj]
		}
	}
	return nil
}

// recvTypeString renders the receiver type of a method call, e.g.
// "*repro/internal/queue.Ring", or "" when types are unresolved.
func recvTypeString(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s := info.Selections[sel]; s != nil {
		return types.TypeString(s.Recv(), nil)
	}
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, nil)
	}
	return ""
}

// exprText renders a (small) expression for matching; only the selector
// spine is preserved.
func exprText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprText(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return exprText(t.X)
	case *ast.UnaryExpr:
		return exprText(t.X)
	case *ast.ParenExpr:
		return exprText(t.X)
	case *ast.CallExpr:
		return exprText(t.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(t.X) + "[]"
	default:
		return "?"
	}
}

// lastComponent returns the final selector component of an expression
// ("e.mu" -> "mu").
func lastComponent(e ast.Expr) string {
	t := exprText(e)
	if i := strings.LastIndex(t, "."); i >= 0 {
		return t[i+1:]
	}
	return t
}

// looksLikeMutex reports whether an expression plausibly names a mutex
// (a field or variable whose name mentions "mu" or "lock").
func looksLikeMutex(e ast.Expr) bool {
	n := strings.ToLower(lastComponent(e))
	return strings.Contains(n, "mu") || strings.Contains(n, "lock")
}

// forLoopBodies returns the bodies of all for/range loops inside body.
func forLoopBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			out = append(out, st.Body)
		case *ast.RangeStmt:
			out = append(out, st.Body)
		}
		return true
	})
	return out
}
