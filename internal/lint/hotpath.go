package lint

import (
	"go/ast"
	"strings"
)

// checkHotPath keeps allocation- and syscall-heavy constructs out of the
// per-message paths. The hot set is the engine's switch loop, the sender
// and receiver loops (their for-loop bodies — setup and teardown outside
// the loop are cold), and the whole of Send/retryParked, which run once
// per switched message:
//
//   - fmt.* formats allocate and reflect per call;
//   - time.Now is a syscall-class call — the loops batch timestamps and
//     use the monotonic deadline helpers instead;
//   - passing *message.Msg to a variadic ...any (fmt or logf) boxes the
//     pointer into an interface, allocating per message.
const checkNameHotPath = "hotpath"

// hotWholeBody functions are hot from the first statement.
var hotWholeBody = map[string]bool{"Send": true, "retryParked": true}

// hotLoopsOnly functions are hot inside their for loops only.
var hotLoopsOnly = map[string]bool{"switchOnce": true, "runSender": true, "runReceiver": true}

func checkHotPath(l *Loader, p *Package, report reportFunc) {
	if p.Name != "engine" {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			var regions []*ast.BlockStmt
			switch {
			case hotWholeBody[name]:
				regions = []*ast.BlockStmt{fd.Body}
			case hotLoopsOnly[name]:
				regions = forLoopBodies(fd.Body)
			default:
				continue
			}
			for _, region := range regions {
				scanHotRegion(p, name, region, report)
			}
		}
	}
}

func scanHotRegion(p *Package, fn string, region *ast.BlockStmt, report reportFunc) {
	ast.Inspect(region, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name, ok := pkgQualifiedCallee(p.Info, call); ok {
			switch {
			case pkgPath == "fmt":
				report(call.Pos(), checkNameHotPath,
					"fmt.%s on the hot path in %s: formatting allocates per message", name, fn)
			case pkgPath == "time" && name == "Now":
				report(call.Pos(), checkNameHotPath,
					"time.Now on the hot path in %s: batch timestamps or use the monotonic deadline helpers", fn)
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "logf" {
			report(call.Pos(), checkNameHotPath,
				"logf on the hot path in %s: log outside the per-message loop", fn)
		}
		for _, arg := range call.Args {
			if tv, ok := p.Info.Types[arg]; ok && tv.Type != nil {
				if strings.HasSuffix(tv.Type.String(), "message.Msg") && isFormatCall(p, call) {
					report(arg.Pos(), checkNameHotPath,
						"*message.Msg boxed into ...any in %s: interface conversion allocates per message", fn)
				}
			}
		}
		return true
	})
}

// isFormatCall reports whether call is a variadic ...any sink (fmt.* or
// a logf method) where a pointer argument would be boxed.
func isFormatCall(p *Package, call *ast.CallExpr) bool {
	if pkgPath, _, ok := pkgQualifiedCallee(p.Info, call); ok {
		return pkgPath == "fmt"
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == "logf"
	}
	return false
}
