package lint

import (
	"go/ast"
	"strings"
)

// checkHotPath keeps allocation- and syscall-heavy constructs out of the
// per-message paths. The hot set is the engine's switch loop, the sender
// and receiver loops (their for-loop bodies — setup and teardown outside
// the loop are cold), and the whole of Send/retryParked, which run once
// per switched message:
//
//   - fmt.* formats allocate and reflect per call;
//   - time.Now is a syscall-class call — the loops batch timestamps and
//     use the monotonic deadline helpers instead;
//   - passing *message.Msg to a variadic ...any (fmt or logf) boxes the
//     pointer into an interface, allocating per message.
//
// The rules apply interprocedurally within the engine package: a hot
// region may not launder a fmt call through a helper. The walk stays
// inside the package — the ring and transport layers the loops call into
// are measured by their own benchmarks, and descending into them would
// indict every error path they keep off the fast path.
const checkNameHotPath = "hotpath"

// hotWholeBody functions are hot from the first statement.
var hotWholeBody = map[string]bool{"Send": true, "retryParked": true}

// hotLoopsOnly functions are hot inside their for loops only.
var hotLoopsOnly = map[string]bool{"switchOnce": true, "runSender": true, "runReceiver": true}

const effHotAlloc = EffFmt | EffTimeNow | EffLogf

func checkHotPath(g *Graph, p *Package, report reportFunc) {
	if p.Name != "engine" {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			var regions []*ast.BlockStmt
			switch {
			case hotWholeBody[name]:
				regions = []*ast.BlockStmt{fd.Body}
			case hotLoopsOnly[name]:
				regions = forLoopBodies(fd.Body)
			default:
				continue
			}
			for _, region := range regions {
				scanHotRegion(g, p, name, region, report)
			}
		}
	}
}

func scanHotRegion(g *Graph, p *Package, fn string, region *ast.BlockStmt, report reportFunc) {
	samePkg := func(e Edge) bool { return e.To.Pkg == p }
	isHot := func(f *Fn) bool { return g.Effects(f)&effHotAlloc != 0 }
	ast.Inspect(region, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isLogf := false
		if pkgPath, name, ok := pkgQualifiedCallee(p.Info, call); ok {
			switch {
			case pkgPath == "fmt":
				report(call.Pos(), checkNameHotPath,
					"fmt.%s on the hot path in %s: formatting allocates per message", name, fn)
			case pkgPath == "time" && name == "Now":
				report(call.Pos(), checkNameHotPath,
					"time.Now on the hot path in %s: batch timestamps or use the monotonic deadline helpers", fn)
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "logf" {
			isLogf = true
			report(call.Pos(), checkNameHotPath,
				"logf on the hot path in %s: log outside the per-message loop", fn)
		}
		// A helper called from the hot region is as hot as the region:
		// flag it if anything it reaches inside the package formats,
		// reads the clock, or logs. Detection and witness use the same
		// same-package walk, so every finding has a concrete path.
		if callee := methodCallee(g.l, p.Info, call); callee != nil && callee.Pkg == p && !isLogf {
			if path := g.WitnessPath(callee, isHot, samePkg); path != nil {
				eff := g.Effects(path[len(path)-1]) & effHotAlloc
				report(call.Pos(), checkNameHotPath,
					"%s on the hot path in %s reaches %s (via %s): keep formatting and clock reads out of the per-message loop",
					exprText(call.Fun), fn, describeHotEffect(eff), pathString(path))
			}
		}
		for _, arg := range call.Args {
			if tv, ok := p.Info.Types[arg]; ok && tv.Type != nil {
				if strings.HasSuffix(tv.Type.String(), "message.Msg") && isFormatCall(p, call) {
					report(arg.Pos(), checkNameHotPath,
						"*message.Msg boxed into ...any in %s: interface conversion allocates per message", fn)
				}
			}
		}
		return true
	})
}

// describeHotEffect renders the dominant hot-path hazard bit.
func describeHotEffect(eff Effect) string {
	switch {
	case eff&EffFmt != 0:
		return "a fmt call"
	case eff&EffTimeNow != 0:
		return "time.Now"
	default:
		return "logf"
	}
}

// isFormatCall reports whether call is a variadic ...any sink (fmt.* or
// a logf method) where a pointer argument would be boxed.
func isFormatCall(p *Package, call *ast.CallExpr) bool {
	if pkgPath, _, ok := pkgQualifiedCallee(p.Info, call); ok {
		return pkgPath == "fmt"
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == "logf"
	}
	return false
}
