package observer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/message"
	"repro/internal/protocol"
)

// Command sends an arbitrary control message to a node; the building
// block of the observer's control panel. It reports whether a route to
// the node existed. A node homed at a federation peer is reached by
// relaying the command over that peer's trunk; the home observer unwraps
// it and delivers over the node's direct route.
func (o *Observer) Command(dest message.NodeID, typ message.Type, payload []byte) bool {
	o.mu.Lock()
	var out *route
	if n, ok := o.nodes[dest]; ok {
		out = n.out
		if out == nil && !n.departed && !n.home.IsZero() && n.home != o.cfg.ID {
			out = o.peers[n.home]
		}
	}
	o.mu.Unlock()
	if out == nil {
		return false
	}
	o.sendRoute(out, dest, message.New(typ, o.cfg.ID, 0, 0, payload))
	return true
}

// Deploy starts an application data source on a node (the sDeploy
// command).
func (o *Observer) Deploy(node message.NodeID, app uint32, rate int64, msgSize uint32) bool {
	return o.Command(node, protocol.TypeDeploy,
		protocol.Deploy{App: app, Rate: rate, MsgSize: msgSize}.Encode())
}

// TerminateApp stops an application source (the sTerminate command).
func (o *Observer) TerminateApp(node message.NodeID, app uint32) bool {
	return o.Command(node, protocol.TypeTerminateApp,
		protocol.Deploy{App: app}.Encode())
}

// TerminateNode asks a node to terminate gracefully.
func (o *Observer) TerminateNode(node message.NodeID) bool {
	return o.Command(node, protocol.TypeTerminateNode, nil)
}

// Depart asks a node to leave the overlay gracefully: the node
// deregisters with the observer, drains its queued outgoing messages,
// and only then shuts down — the paper's departure, distinct from both
// a crash and an immediate termination.
func (o *Observer) Depart(node message.NodeID) bool {
	return o.Command(node, protocol.TypeDepart, nil)
}

// SetBandwidth adjusts a node's emulated bandwidth at runtime, producing
// or relieving artificial bottlenecks on the fly.
func (o *Observer) SetBandwidth(node message.NodeID, cmd protocol.SetBandwidth) bool {
	return o.Command(node, protocol.TypeSetBandwidth, cmd.Encode())
}

// Join asks a node to join an application session, optionally via a
// contact node already in the session.
func (o *Observer) Join(node message.NodeID, app uint32, contact message.NodeID) bool {
	return o.Command(node, protocol.TypeJoin,
		protocol.Join{App: app, Contact: contact}.Encode())
}

// Leave asks a node to leave an application session.
func (o *Observer) Leave(node message.NodeID, app uint32) bool {
	return o.Command(node, protocol.TypeLeave, protocol.Join{App: app}.Encode())
}

// Custom sends an algorithm-specific control message with two integer
// parameters, as the paper's observer supports.
func (o *Observer) Custom(node message.NodeID, kind uint32, p1, p2 int64) bool {
	return o.Command(node, protocol.TypeCustom,
		protocol.Custom{Kind: kind, P1: p1, P2: p2}.Encode())
}

// PushMembership sends a node an unsolicited bootstrap reply carrying the
// currently alive membership, refreshing views that went stale because
// the node bootstrapped before its peers arrived.
func (o *Observer) PushMembership(node message.NodeID) bool {
	hosts := o.Alive()
	filtered := hosts[:0]
	for _, h := range hosts {
		if h != node {
			filtered = append(filtered, h)
		}
	}
	return o.Command(node, protocol.TypeBootReply,
		protocol.BootReply{Hosts: filtered}.Encode())
}

// RequestStatus asks one node for an immediate status update.
func (o *Observer) RequestStatus(node message.NodeID) bool {
	return o.Command(node, protocol.TypeRequest, nil)
}

// ----- queries -----

// Nodes lists every node ever seen, sorted.
func (o *Observer) Nodes() []message.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]message.NodeID, 0, len(o.nodes))
	for id := range o.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Alive lists nodes alive in the merged federation view, sorted: nodes
// with a live local route and recent traffic, plus nodes whose home
// observer's synced liveness claim is still fresh.
func (o *Observer) Alive() []message.NodeID {
	cutoff := time.Now().Add(-o.cfg.StaleAfter)
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]message.NodeID, 0, len(o.nodes))
	for id, n := range o.nodes {
		if (n.out != nil && n.lastSeen.After(cutoff)) || o.remoteAliveLocked(n, cutoff) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Departed lists nodes that deregistered gracefully (and have not come
// back), sorted — the monitoring distinction between departure and
// failure.
func (o *Observer) Departed() []message.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]message.NodeID, 0, len(o.nodes))
	for id, n := range o.nodes {
		if n.departed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Status returns the latest report from a node.
func (o *Observer) Status(node message.NodeID) (protocol.Report, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[node]
	if !ok || !n.hasReport {
		return protocol.Report{}, false
	}
	return n.lastReport, true
}

// Traces returns a copy of the central trace log.
func (o *Observer) Traces() []TraceRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]TraceRecord, len(o.traces))
	copy(out, o.traces)
	return out
}

// Edge is one directed overlay link with its measured throughput.
type Edge struct {
	From, To message.NodeID
	Rate     float64 // bytes per second
}

// Topology assembles the current overlay topology from the latest status
// reports — what the GUI would draw on the map.
func (o *Observer) Topology() []Edge {
	o.mu.Lock()
	defer o.mu.Unlock()
	var edges []Edge
	for id, n := range o.nodes {
		if !n.hasReport {
			continue
		}
		for _, l := range n.lastReport.Downstream {
			if l.Peer == o.cfg.ID {
				continue // the observer link is not overlay topology
			}
			edges = append(edges, Edge{From: id, To: l.Peer, Rate: l.Rate})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From.Less(edges[j].From)
		}
		return edges[i].To.Less(edges[j].To)
	})
	return edges
}

// RenderTopology formats the topology as indented text, the headless
// replacement for the map view.
func (o *Observer) RenderTopology() string {
	var b strings.Builder
	for _, e := range o.Topology() {
		fmt.Fprintf(&b, "%s -> %s  %.1f KBps\n", e.From, e.To, e.Rate/1024)
	}
	return b.String()
}

// WaitForNodes blocks until at least n nodes are alive or the timeout
// expires, reporting success; experiment harnesses use it to gate on
// bootstrap completion.
func (o *Observer) WaitForNodes(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(o.Alive()) >= n {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return len(o.Alive()) >= n
}
