package observer

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/multicast"
	"repro/internal/protocol"
	"repro/internal/queue"
	"repro/internal/vnet"
)

// newBareFedObserver builds an unstarted observer with an explicit
// identity and peer list, for white-box federation tests.
func newBareFedObserver(t *testing.T, id message.NodeID, peers ...message.NodeID) *Observer {
	t.Helper()
	n := vnet.New()
	t.Cleanup(n.Close)
	o, err := New(Config{
		ID:        id,
		Transport: engine.VNet{Net: n},
		Peers:     peers,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o
}

// pipeRoute builds a direct route backed by one end of a net.Pipe and
// returns the far end, so tests can observe the conn being closed.
func pipeRoute() (*route, net.Conn) {
	near, far := net.Pipe()
	return &route{ring: queue.New(8), conn: near}, far
}

func assertConnClosed(t *testing.T, far net.Conn, what string) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := far.Read(buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("%s: read succeeded on a conn that should be closed", what)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: conn left open", what)
	}
}

// TestRegisterClosesSupersededRoute is the regression test for the
// leaked-route bug: a node re-registering over a fresh direct connection
// (an engine failing back, say) used to overwrite its route entry while
// the old conn and ring lived on until process exit. The superseded
// direct route must be closed — conn and ring both.
func TestRegisterClosesSupersededRoute(t *testing.T) {
	o := newBareObserver(t)
	id := inid(1)
	r1, far1 := pipeRoute()
	o.register(id, r1)
	if got := o.nodes[id].seq; got != 1 {
		t.Fatalf("seq after first register = %d, want 1", got)
	}

	// Refreshing over the same route must not close it or bump the seq.
	o.register(id, r1)
	if r1.ring.Closed() {
		t.Fatal("re-register over the same route closed its ring")
	}
	if got := o.nodes[id].seq; got != 1 {
		t.Fatalf("seq after same-route refresh = %d, want 1", got)
	}

	r2, _ := pipeRoute()
	o.register(id, r2)
	if !r1.ring.Closed() {
		t.Fatal("superseded route's ring left open")
	}
	assertConnClosed(t, far1, "superseded route")
	if o.nodes[id].out != r2 {
		t.Fatal("node not routed at the new connection")
	}
	if got := o.nodes[id].seq; got != 2 {
		t.Fatalf("seq after supersede = %d, want 2", got)
	}
}

// TestRegisterKeepsSupersededProxyTrunk: a proxy trunk is shared by all
// its relayed nodes, so one node re-registering directly must not tear
// the trunk down under the others.
func TestRegisterKeepsSupersededProxyTrunk(t *testing.T) {
	o := newBareObserver(t)
	relayed, other := inid(1), inid(2)
	trunk := &route{ring: queue.New(8), proxy: true}
	o.register(relayed, trunk)
	o.register(other, trunk)

	direct, _ := pipeRoute()
	o.register(relayed, direct)
	if trunk.ring.Closed() {
		t.Fatal("shared proxy trunk closed when one relayed node re-registered directly")
	}
	if o.nodes[other].out != trunk {
		t.Fatal("unrelated relayed node lost its trunk route")
	}
}

// TestAbsorbSyncMergeRules exercises the anti-entropy merge: higher seq
// wins, live direct routes out-version remote claims, and staleness
// refreshes only on the home observer's own liveness claims.
func TestAbsorbSyncMergeRules(t *testing.T) {
	us := message.MakeID("10.255.0.1", 9000)
	peer := message.MakeID("10.255.0.2", 9000)
	third := message.MakeID("10.255.0.3", 9000)
	o := newBareFedObserver(t, us, peer, third)
	nodeX := inid(1)

	// A fresh claim from the node's home observer is adopted wholesale.
	if changed := o.absorbSync(protocol.ObsSync{Origin: peer, Entries: []protocol.MemberEntry{
		{Node: nodeX, Home: peer, Seq: 3, Alive: true},
	}}); changed != 1 {
		t.Fatalf("absorb of fresh entry changed %d entries, want 1", changed)
	}
	n := o.nodes[nodeX]
	if n.seq != 3 || n.home != peer || !n.remoteAlive {
		t.Fatalf("adopted entry = {seq %d home %s alive %v}, want {3 %s true}", n.seq, n.home, n.remoteAlive, peer)
	}
	if alive := o.Alive(); len(alive) != 1 || alive[0] != nodeX {
		t.Fatalf("merged Alive() = %v, want [%s]", alive, nodeX)
	}
	if set := o.bootstrapSet(message.NodeID{}); len(set) != 1 || set[0] != nodeX {
		t.Fatalf("merged bootstrapSet = %v, want [%s]", set, nodeX)
	}

	// An older or equal-version claim from a NON-home observer changes
	// nothing and must not refresh liveness (third-party echo).
	seen := n.lastSeen
	time.Sleep(2 * time.Millisecond)
	if changed := o.absorbSync(protocol.ObsSync{Origin: third, Entries: []protocol.MemberEntry{
		{Node: nodeX, Home: peer, Seq: 3, Alive: true},
	}}); changed != 0 {
		t.Fatalf("third-party echo changed %d entries, want 0", changed)
	}
	if n.lastSeen.After(seen) {
		t.Fatal("third-party echo refreshed lastSeen")
	}

	// The same claim from the asserting home IS a heartbeat.
	if o.absorbSync(protocol.ObsSync{Origin: peer, Entries: []protocol.MemberEntry{
		{Node: nodeX, Home: peer, Seq: 3, Alive: true},
	}}); !n.lastSeen.After(seen) {
		t.Fatal("home heartbeat did not refresh lastSeen")
	}

	// A higher-version departure removes the node from the merged view.
	o.absorbSync(protocol.ObsSync{Origin: peer, Entries: []protocol.MemberEntry{
		{Node: nodeX, Home: peer, Seq: 4, Departed: true},
	}})
	if alive := o.Alive(); len(alive) != 0 {
		t.Fatalf("Alive() after synced departure = %v, want empty", alive)
	}

	// A node we hold a live direct route to out-versions any remote
	// claim: the conn is ground truth until it actually dies.
	nodeY := inid(2)
	rt, _ := pipeRoute()
	o.register(nodeY, rt)
	o.absorbSync(protocol.ObsSync{Origin: peer, Entries: []protocol.MemberEntry{
		{Node: nodeY, Home: peer, Seq: 50, Alive: true},
	}})
	ny := o.nodes[nodeY]
	if ny.home != us || ny.seq != 51 || ny.out != rt {
		t.Fatalf("live direct route did not out-version remote claim: {seq %d home %s}", ny.seq, ny.home)
	}

	// Entries about federation members themselves are never absorbed.
	o.absorbSync(protocol.ObsSync{Origin: peer, Entries: []protocol.MemberEntry{
		{Node: third, Home: peer, Seq: 9, Alive: true},
	}})
	if _, ok := o.nodes[third]; ok {
		t.Fatal("a peer observer leaked into the node table")
	}
}

// TestBuildSyncRoundTrip: a snapshot built by one observer and absorbed
// by a peer reproduces the membership, including liveness derived from
// route state.
func TestBuildSyncRoundTrip(t *testing.T) {
	a := message.MakeID("10.255.0.1", 9000)
	b := message.MakeID("10.255.0.2", 9000)
	oa := newBareFedObserver(t, a, b)
	ob := newBareFedObserver(t, b, a)

	up, _ := pipeRoute()
	oa.register(inid(1), up)
	oa.register(inid(2), up)
	oa.mu.Lock()
	oa.nodes[inid(2)].out = nil // crashed: route lost, seq already bumped at register
	oa.nodes[inid(2)].seq++
	oa.mu.Unlock()

	s := oa.buildSync()
	if s.Origin != a || len(s.Entries) != 2 {
		t.Fatalf("buildSync = origin %s, %d entries; want %s, 2", s.Origin, len(s.Entries), a)
	}
	dec, err := protocol.DecodeObsSync(s.Encode())
	if err != nil {
		t.Fatalf("DecodeObsSync: %v", err)
	}
	ob.absorbSync(dec)
	if alive := ob.Alive(); len(alive) != 1 || alive[0] != inid(1) {
		t.Fatalf("peer's merged Alive() = %v, want [%s]", alive, inid(1))
	}
}

// bootCatcher records the bootstrap hosts its node received.
type bootCatcher struct {
	multicast.Forwarder
	mu    sync.Mutex
	hosts []message.NodeID
}

func (b *bootCatcher) Process(m *message.Msg) engine.Verdict {
	if m.Type() == protocol.TypeBootReply {
		if br, err := protocol.DecodeBootReply(m.Payload()); err == nil {
			b.mu.Lock()
			b.hosts = append(b.hosts[:0], br.Hosts...)
			b.mu.Unlock()
		}
	}
	return b.Forwarder.Process(m)
}

func (b *bootCatcher) bootHosts() []message.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]message.NodeID, len(b.hosts))
	copy(out, b.hosts)
	return out
}

func fedWait(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFederatedObserverTier runs the whole story end to end on a virtual
// network: a node registers with observer A, peer observer B learns it
// through anti-entropy sync and serves it from its merged bootstrap
// view, commands from B relay through A, reports fan out to B — and
// when A dies, the node fails over and re-registers directly with B.
func TestFederatedObserverTier(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	idA := message.MakeID("10.255.0.1", 9000)
	idB := message.MakeID("10.255.0.2", 9000)
	mk := func(id message.NodeID, peers ...message.NodeID) *Observer {
		o, err := New(Config{
			ID:              id,
			Transport:       engine.VNet{Net: n},
			Peers:           peers,
			SyncInterval:    20 * time.Millisecond,
			RequestInterval: -1, // only explicit commands, so relay is provable
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		if err := o.Start(); err != nil {
			t.Fatalf("Start(%s): %v", id, err)
		}
		t.Cleanup(o.Stop)
		return o
	}
	oa := mk(idA, idB)
	ob := mk(idB, idA)

	fedWait(t, 5*time.Second, "peer trunks up", func() bool {
		return len(oa.PeerTrunks()) == 1 && len(ob.PeerTrunks()) == 1
	})

	node1 := inid(1)
	e1, err := engine.New(engine.Config{
		ID:             node1,
		Transport:      engine.VNet{Net: n},
		Algorithm:      &multicast.Forwarder{},
		Observers:      []message.NodeID{idA, idB},
		StatusInterval: 50 * time.Millisecond,
		RetryBase:      20 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if err := e1.Start(); err != nil {
		t.Fatalf("engine.Start: %v", err)
	}
	t.Cleanup(e1.Stop)

	fedWait(t, 5*time.Second, "node alive at home observer A", func() bool {
		a := oa.Alive()
		return len(a) == 1 && a[0] == node1
	})
	fedWait(t, 5*time.Second, "node synced into B's merged view", func() bool {
		a := ob.Alive()
		return len(a) == 1 && a[0] == node1
	})
	ob.mu.Lock()
	remote := ob.nodes[node1]
	isRemote := remote != nil && remote.out == nil && remote.home == idA
	ob.mu.Unlock()
	if !isRemote {
		t.Fatal("B should know the node as remote (homed at A) before failover")
	}
	if set := ob.bootstrapSet(message.NodeID{}); len(set) != 1 || set[0] != node1 {
		t.Fatalf("B's merged bootstrapSet = %v, want [%s]", set, node1)
	}

	// Command from the NON-home observer relays over the federation
	// trunk; the resulting report reaches A directly and B by fanout.
	if !ob.RequestStatus(node1) {
		t.Fatal("B found no route for a command to a remote node")
	}
	fedWait(t, 5*time.Second, "federated report at both observers", func() bool {
		_, atA := oa.Status(node1)
		_, atB := ob.Status(node1)
		return atA && atB
	})
	fedWait(t, 5*time.Second, "sync traffic visible in federation stats", func() bool {
		fs := ob.Federation()
		return fs.SyncsSent > 0 && fs.SyncsAbsorbed > 0
	})

	// Kill A: the node must fail over and re-register directly with B.
	oa.Stop()
	fedWait(t, 10*time.Second, "node re-registered directly at B", func() bool {
		ob.mu.Lock()
		ns := ob.nodes[node1]
		direct := ns != nil && ns.out != nil
		ob.mu.Unlock()
		return direct
	})
	if got := e1.Observer(); got != idB {
		t.Fatalf("engine targets %s after failover, want %s", got, idB)
	}

	// A joiner bootstrapping from the survivor sees the failed-over node.
	catcher := &bootCatcher{}
	e2, err := engine.New(engine.Config{
		ID:        inid(2),
		Transport: engine.VNet{Net: n},
		Algorithm: catcher,
		Observers: []message.NodeID{idB},
	})
	if err != nil {
		t.Fatalf("engine.New(joiner): %v", err)
	}
	if err := e2.Start(); err != nil {
		t.Fatalf("engine.Start(joiner): %v", err)
	}
	t.Cleanup(e2.Stop)
	fedWait(t, 5*time.Second, "joiner bootstrapped from survivor's merged view", func() bool {
		for _, h := range catcher.bootHosts() {
			if h == node1 {
				return true
			}
		}
		return false
	})
}
