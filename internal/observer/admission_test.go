package observer_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/message"
	"repro/internal/multicast"
	"repro/internal/observer"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/vnet"
)

// obsAcceptEvents filters the observer's flight recorder down to the
// admission decisions of the given code.
func obsAcceptEvents(o *observer.Observer, dec admission.Decision) int {
	count := 0
	for _, ev := range o.Events() {
		if ev.Kind == trace.KindAccept && ev.Value == int64(dec) {
			count++
		}
	}
	return count
}

// TestObserverAcceptLoopRetriesTransientErrors mirrors the engine-side
// satellite-1 regression on the observer: injected transient Accept
// failures must be survived with backoff, and a node registering
// afterwards must still get through. Before the fix the observer's accept
// loop returned on any error, permanently deafening the whole tier.
func TestObserverAcceptLoopRetriesTransientErrors(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)

	const injected = 3
	if !n.InjectAcceptErrors(obsID.Addr(), injected) {
		t.Fatal("InjectAcceptErrors: no such listener")
	}
	// The accept loop is already parked inside Accept; a throwaway
	// connection unparks it so the injected errors surface.
	kick, err := n.DialFrom("10.0.9.99:1", obsID.Addr())
	if err != nil {
		t.Fatalf("kick dial: %v", err)
	}
	kick.Close()

	waitFor(t, 5*time.Second, "injected accept errors retried", func() bool {
		return n.AcceptErrorsDelivered(obsID.Addr()) == injected &&
			o.Counters().AcceptRetries >= injected
	})

	startNode(t, n, nid(1), obsID, &multicast.Forwarder{})
	waitFor(t, 5*time.Second, "node registered after the error burst", func() bool {
		return len(o.Alive()) == 1
	})
}

// TestObserverShedsStormButServesRegisteredNodes saturates the observer's
// handshake tokens with half-open connections and checks the refusal is a
// Busy frame, registered nodes keep being served, and tokens free up once
// the stalled handshakes die.
func TestObserverShedsStormButServesRegisteredNodes(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n, func(c *observer.Config) {
		c.MaxHandshakes = 2
		c.AcceptRate = 1000
		c.AcceptBurst = 1000
	})
	alg := &tracker{}
	startNode(t, n, nid(1), obsID, alg)
	waitFor(t, 5*time.Second, "node registered", func() bool {
		return len(o.Alive()) == 1
	})

	var halves []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := n.DialFrom("10.0.9.1:1", obsID.Addr())
		if err != nil {
			t.Fatalf("half-open dial %d: %v", i, err)
		}
		defer conn.Close()
		halves = append(halves, conn)
	}
	waitFor(t, 5*time.Second, "handshake tokens saturated", func() bool {
		return o.Admission().InFlight == 2
	})

	refused, err := n.DialFrom("10.0.9.2:1", obsID.Addr())
	if err != nil {
		t.Fatalf("storm dial: %v", err)
	}
	defer refused.Close()
	_ = refused.SetReadDeadline(time.Now().Add(2 * time.Second))
	m, err := message.Read(refused, nil, 256)
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if m.Type() != protocol.TypeBusy {
		t.Fatalf("refusal frame = %s, want busy", protocol.TypeName(m.Type()))
	}
	bz, err := protocol.DecodeBusy(m.Payload())
	m.Release()
	if err != nil {
		t.Fatalf("decode Busy: %v", err)
	}
	if bz.Reason != protocol.BusyHandshakes || bz.RetryAfterNanos <= 0 {
		t.Fatalf("busy = %+v, want BusyHandshakes with positive hint", bz)
	}

	// The registered node's status flow is untouched by the storm.
	waitFor(t, 5*time.Second, "status requests keep flowing", func() bool {
		_, ok := o.Status(nid(1))
		return ok
	})

	// The dead half-opens release their tokens and are instrumented.
	for _, c := range halves {
		c.Close()
	}
	waitFor(t, 5*time.Second, "tokens released", func() bool {
		return o.Admission().InFlight == 0
	})
	if o.Counters().HandshakesFailed < 2 {
		t.Errorf("HandshakesFailed = %d, want >= 2", o.Counters().HandshakesFailed)
	}
	if obsAcceptEvents(o, admission.BadHello) == 0 {
		t.Error("no bad-hello events on the observer recorder")
	}
	if o.Admission().ShedBusy == 0 {
		t.Error("no busy shed recorded")
	}
}

// TestObserverFederationPeersBypassTheGate cuts the gate to zero
// practical capacity and checks a federation peer's trunk still comes up:
// a node storm must never partition the observer tier.
func TestObserverFederationPeersBypassTheGate(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	obsA := message.MakeID("10.255.0.1", 9000)
	obsB := message.MakeID("10.255.0.2", 9000)

	cfgFor := func(id, peer message.NodeID) func(*observer.Config) {
		return func(c *observer.Config) {
			c.ID = id
			c.Peers = []message.NodeID{peer}
			c.MaxHandshakes = 1
			c.AcceptRate = 0.001 // strangers get one connection, ever
			c.AcceptBurst = 1
			c.SyncInterval = 20 * time.Millisecond
		}
	}
	a := startObserver(t, n, cfgFor(obsA, obsB))
	// Exhaust A's stranger capacity before B even exists.
	for i := 0; i < 3; i++ {
		if conn, err := n.DialFrom("10.0.9.1:1", obsA.Addr()); err == nil {
			defer conn.Close()
		}
	}
	b := startObserver(t, n, cfgFor(obsB, obsA))

	waitFor(t, 10*time.Second, "federation trunks up despite the saturated gate", func() bool {
		return len(a.PeerTrunks()) == 1 && len(b.PeerTrunks()) == 1
	})
}
