package observer_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/vnet"
)

// TestShardLoadAggregation runs a four-shard node under real traffic and
// checks the observer folds the per-shard occupancy sections of its
// status reports into the cluster view: one ShardLoad per lane, work
// recorded, and the rendered histogram block carrying the shard lines.
func TestShardLoadAggregation(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)

	sink := &tracker{}
	startNode(t, n, nid(2), obsID, sink)

	src := &tracker{}
	src.DefaultRoutes = []message.NodeID{nid(2)}
	e, err := engine.New(engine.Config{
		ID:             nid(1),
		Transport:      engine.VNet{Net: n},
		Algorithm:      src,
		Observer:       obsID,
		StatusInterval: 100 * time.Millisecond,
		Shards:         4,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatalf("engine.Start: %v", err)
	}
	t.Cleanup(e.Stop)
	e.StartSource(5, 0, 2048)

	waitFor(t, 5*time.Second, "per-shard loads in the cluster view", func() bool {
		loads := o.ShardLoads()
		if len(loads) != 4 {
			return false
		}
		var switched uint64
		for _, l := range loads {
			if l.Shard >= 4 || l.Nodes < 1 {
				return false
			}
			switched += l.Switched
		}
		return switched > 0
	})

	rendered := o.RenderHists()
	for _, want := range []string{"shard 0:", "shard 3:", "switched="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("RenderHists missing %q:\n%s", want, rendered)
		}
	}
}
