package observer_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/observer"
	"repro/internal/protocol"
	"repro/internal/proxy"
	"repro/internal/trace"
	"repro/internal/vnet"
)

func startProxy(t *testing.T, n *vnet.Network, id message.NodeID) *proxy.Proxy {
	t.Helper()
	p, err := proxy.New(proxy.Config{
		ID:        id,
		Observer:  obsID,
		Transport: engine.VNet{Net: n},
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("proxy.Start: %v", err)
	}
	return p
}

// TestProxyTrunkFailureOrphansRelayedNodes is the end-to-end regression
// test for the dead-trunk bug: when a proxy trunk drops, every node that
// was reachable only through it must leave the alive/bootstrap set at
// once, and must re-register cleanly when the proxy comes back. StaleAfter
// is set far above the test duration so the only way the nodes can leave
// the alive set is by losing their route — exactly what the old code
// failed to do for relayed nodes.
func TestProxyTrunkFailureOrphansRelayedNodes(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n, func(c *observer.Config) { c.StaleAfter = time.Hour })
	proxyID := message.MakeID("10.254.0.1", 9100)
	p := startProxy(t, n, proxyID)
	defer p.Stop()

	a := &tracker{}
	startNode(t, n, nid(1), proxyID, a)
	b := &tracker{}
	startNode(t, n, nid(2), proxyID, b)
	if !o.WaitForNodes(2, 5*time.Second) {
		t.Fatalf("observer sees %d nodes via proxy", len(o.Alive()))
	}

	// Kill the trunk. Both relayed nodes must drop out of the alive set
	// immediately — their only route died with the proxy.
	p.Stop()
	waitFor(t, 5*time.Second, "relayed nodes to leave the alive set", func() bool {
		return len(o.Alive()) == 0
	})

	// A node joining now must not be handed the orphaned nodes.
	late := &tracker{}
	startNode(t, n, nid(3), obsID, late)
	waitFor(t, 3*time.Second, "late joiner boot reply", func() bool {
		return late.count(protocol.TypeBootReply) > 0
	})
	late.mu.Lock()
	lateView := late.bootHosts
	late.mu.Unlock()
	if lateView != 0 {
		t.Errorf("boot reply after trunk death lists %d hosts, want 0", lateView)
	}

	// Restart the proxy: the nodes' observer links reconnect with backoff
	// and both must re-register and become bootstrappable again.
	p2 := startProxy(t, n, proxyID)
	defer p2.Stop()
	waitFor(t, 10*time.Second, "relayed nodes to re-register", func() bool {
		alive := o.Alive()
		found := 0
		for _, id := range alive {
			if id == nid(1) || id == nid(2) {
				found++
			}
		}
		return found == 2
	})
	// Commands route through the new trunk.
	waitFor(t, 5*time.Second, "command through the new trunk", func() bool {
		return o.Custom(nid(1), 1, 0, 0)
	})
}

// TestTimelineAggregation drives real traffic and checks the observer
// assembles the nodes' flight-recorder tails into a merged, ordered,
// renderable timeline with populated cluster histograms.
func TestTimelineAggregation(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	sink := &tracker{}
	startNode(t, n, nid(2), obsID, sink)
	src := &tracker{}
	src.DefaultRoutes = []message.NodeID{nid(2)}
	startNode(t, n, nid(1), obsID, src)
	o.WaitForNodes(2, 5*time.Second)
	o.Deploy(nid(1), 7, 200<<10, 2048)

	waitFor(t, 5*time.Second, "sink data", func() bool {
		return sink.ReceivedBytes(7) > 20<<10
	})
	waitFor(t, 5*time.Second, "switch events from the source", func() bool {
		for _, ev := range o.NodeEvents(nid(1)) {
			if ev.Kind == trace.KindSwitch {
				return true
			}
		}
		return false
	})

	tl := o.Timeline()
	if len(tl) == 0 {
		t.Fatal("merged timeline is empty")
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Event.Nanos < tl[i-1].Event.Nanos {
			t.Fatalf("timeline out of order at %d: %d after %d",
				i, tl[i].Event.Nanos, tl[i-1].Event.Nanos)
		}
	}
	txt := o.RenderTimeline()
	if !strings.Contains(txt, "switch") || !strings.Contains(txt, nid(1).String()) {
		t.Errorf("rendered timeline missing expected content:\n%s", txt)
	}
	raw, err := o.TimelineJSON()
	if err != nil {
		t.Fatalf("TimelineJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	if len(decoded) != len(tl) {
		t.Errorf("JSON has %d events, timeline has %d", len(decoded), len(tl))
	}

	waitFor(t, 5*time.Second, "cluster data-lane histogram", func() bool {
		_, data := o.ClusterHists()
		return data.Count() > 0
	})
	if s := o.RenderHists(); !strings.Contains(s, "data lane:") {
		t.Errorf("RenderHists output malformed: %q", s)
	}
}
