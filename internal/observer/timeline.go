package observer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file is the observer side of the flight-recorder pipeline: each
// status report carries the node's recent structured events and lane
// histograms; the observer accumulates the per-node series and merges them
// into one cross-node timeline — the headless replacement for watching a
// churn or overload experiment unfold on the GUI map.

// absorbEvents appends the report's event tail to the node's series,
// dropping anything already retained (reports can overlap when a node is
// re-asked before new events accrue). Caller holds o.mu.
func (n *nodeState) absorbEvents(evs []trace.Event) {
	for _, ev := range evs {
		if ev.Seq <= n.lastEventSeq {
			continue
		}
		n.events = append(n.events, ev)
		n.lastEventSeq = ev.Seq
	}
	if len(n.events) > maxNodeEvents {
		keep := len(n.events) - maxNodeEvents/2
		n.events = append(n.events[:0], n.events[keep:]...)
	}
}

// TimelineEvent is one flight-recorder event attributed to its node.
type TimelineEvent struct {
	Node  message.NodeID
	Event trace.Event
}

// NodeEvents returns the retained event series of one node in sequence
// order.
func (o *Observer) NodeEvents(id message.NodeID) []trace.Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[id]
	if !ok || len(n.events) == 0 {
		return nil
	}
	out := make([]trace.Event, len(n.events))
	copy(out, n.events)
	return out
}

// Timeline merges every node's retained events into one series ordered by
// timestamp (ties broken by node, then sequence) — the cross-node view
// that lines a reparent on one node up with the link failure on another
// that caused it.
func (o *Observer) Timeline() []TimelineEvent {
	o.mu.Lock()
	var merged []TimelineEvent
	for id, n := range o.nodes {
		for _, ev := range n.events {
			merged = append(merged, TimelineEvent{Node: id, Event: ev})
		}
	}
	o.mu.Unlock()
	// The observer's own recorder (peer trunk transitions, sync rounds)
	// joins the merged series under the observer's ID, so a node-side
	// failover lines up with the observer death that caused it.
	for _, ev := range o.rec.Snapshot() {
		merged = append(merged, TimelineEvent{Node: o.cfg.ID, Event: ev})
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Event.Nanos != b.Event.Nanos {
			return a.Event.Nanos < b.Event.Nanos
		}
		if a.Node != b.Node {
			return a.Node.Less(b.Node)
		}
		return a.Event.Seq < b.Event.Seq
	})
	return merged
}

// RenderTimeline formats the merged timeline as one text line per event.
func (o *Observer) RenderTimeline() string {
	var b strings.Builder
	for _, te := range o.Timeline() {
		ev := te.Event
		when := time.Unix(0, ev.Nanos).UTC().Format("15:04:05.000000")
		fmt.Fprintf(&b, "%s %-15s %-11s", when, te.Node, trace.KindName(ev.Kind))
		if !ev.Peer.IsZero() {
			fmt.Fprintf(&b, " peer=%s", ev.Peer)
		}
		if ev.App != 0 {
			fmt.Fprintf(&b, " app=%d", ev.App)
		}
		fmt.Fprintf(&b, " value=%d\n", ev.Value)
	}
	return b.String()
}

// timelineJSONEvent is the JSON shape of one timeline entry; the kind is
// rendered by name so dumps are self-describing.
type timelineJSONEvent struct {
	Node  string `json:"node"`
	Nanos int64  `json:"nanos"`
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Peer  string `json:"peer,omitempty"`
	App   uint32 `json:"app,omitempty"`
	Value int64  `json:"value"`
}

// TimelineJSON renders the merged timeline as a JSON array.
func (o *Observer) TimelineJSON() ([]byte, error) {
	tl := o.Timeline()
	out := make([]timelineJSONEvent, 0, len(tl))
	for _, te := range tl {
		je := timelineJSONEvent{
			Node:  te.Node.String(),
			Nanos: te.Event.Nanos,
			Seq:   te.Event.Seq,
			Kind:  trace.KindName(te.Event.Kind),
			App:   te.Event.App,
			Value: te.Event.Value,
		}
		if !te.Event.Peer.IsZero() {
			je.Peer = te.Event.Peer.String()
		}
		out = append(out, je)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ClusterHists merges the latest per-lane queue-delay histograms across
// every reporting node — the cluster-wide delay distribution the QoS
// section of EXPERIMENTS.md plots.
func (o *Observer) ClusterHists() (ctrl, data metrics.HistogramSnapshot) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, n := range o.nodes {
		if !n.hasReport {
			continue
		}
		ctrl.Merge(n.lastReport.QueueCtrlHist)
		data.Merge(n.lastReport.QueueDataHist)
	}
	return ctrl, data
}

// ShardLoad aggregates one switch-lane index's occupancy counters across
// every reporting node: how much each lane of the sharded switch is
// working (switched), how much it is holding (queued inbox items, parked
// messages), and how deep its cross-shard handoff ring runs.
type ShardLoad struct {
	Shard        uint32
	Switched     uint64
	Queued       uint64
	Parked       uint64
	HandoffDepth uint64
	HandoffPeak  uint32 // deepest single-node handoff backlog observed
	Nodes        int    // nodes reporting this shard index
}

// ShardLoads merges the latest per-shard occupancy sections across every
// reporting node, keyed by shard index — the cluster view of how evenly
// the switch lanes share the load. Nodes running unsharded (or predating
// the shard section) simply contribute nothing.
func (o *Observer) ShardLoads() []ShardLoad {
	o.mu.Lock()
	defer o.mu.Unlock()
	byIdx := make(map[uint32]*ShardLoad)
	for _, n := range o.nodes {
		if !n.hasReport {
			continue
		}
		for _, s := range n.lastReport.Shards {
			l := byIdx[s.Shard]
			if l == nil {
				l = &ShardLoad{Shard: s.Shard}
				byIdx[s.Shard] = l
			}
			l.Switched += s.Switched
			l.Queued += uint64(s.Queued)
			l.Parked += uint64(s.Parked)
			l.HandoffDepth += uint64(s.HandoffDepth)
			if s.HandoffPeak > l.HandoffPeak {
				l.HandoffPeak = s.HandoffPeak
			}
			l.Nodes++
		}
	}
	out := make([]ShardLoad, 0, len(byIdx))
	for _, l := range byIdx {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// RenderHists formats the cluster-wide queue-delay distributions with
// their 50th/99th percentile upper bounds in nanoseconds, followed by
// the per-shard switch-lane occupancy when any node reports one.
func (o *Observer) RenderHists() string {
	ctrl, data := o.ClusterHists()
	var b strings.Builder
	fmt.Fprintf(&b, "ctrl lane: n=%d p50<%dns p99<%dns %s\n",
		ctrl.Count(), ctrl.Quantile(0.5), ctrl.Quantile(0.99), ctrl.String())
	fmt.Fprintf(&b, "data lane: n=%d p50<%dns p99<%dns %s\n",
		data.Count(), data.Quantile(0.5), data.Quantile(0.99), data.String())
	for _, l := range o.ShardLoads() {
		fmt.Fprintf(&b, "shard %d: nodes=%d switched=%d queued=%d parked=%d handoff=%d peak=%d\n",
			l.Shard, l.Nodes, l.Switched, l.Queued, l.Parked, l.HandoffDepth, l.HandoffPeak)
	}
	return b.String()
}
