// Package observer implements iOverlay's centralized monitoring facility:
// bootstrap support (answering boot requests with a random subset of
// alive nodes), periodic status requests, a control panel (deploying
// applications, join/leave, node termination, runtime bandwidth
// emulation, algorithm-specific commands), and a central trace log.
//
// The original observer is a Windows GUI; this one is headless and exposes
// the same information programmatically (and as text topology dumps),
// which is what every experiment in the paper actually consumes.
package observer

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/queue"
	"repro/internal/trace"
)

// Defaults.
const (
	DefaultBootstrapCount  = 8
	DefaultRequestInterval = 500 * time.Millisecond
	DefaultStaleAfter      = 5 * time.Second
	DefaultSyncInterval    = 200 * time.Millisecond
)

// TraceRecord is one centrally logged trace message.
type TraceRecord struct {
	When time.Time
	Node message.NodeID
	Body string
}

// Config parameterizes an Observer.
type Config struct {
	// ID is the observer's identity/listen address.
	ID message.NodeID
	// Transport supplies connectivity.
	Transport engine.Transport
	// BootstrapCount is how many alive nodes a boot reply includes.
	BootstrapCount int
	// RequestInterval paces automatic status requests to all alive nodes;
	// zero uses the default, negative disables automatic requests.
	RequestInterval time.Duration
	// StaleAfter marks nodes dead after silence for this long.
	StaleAfter time.Duration
	// TraceWriter, when set, receives trace records as text lines.
	TraceWriter io.Writer
	// Seed fixes the bootstrap sampling for reproducible experiments.
	Seed int64
	// Logf, when set, receives debug logging.
	Logf func(format string, args ...any)
	// Peers lists the other observers of a federated deployment. The
	// observer dials a trunk to each peer (and accepts theirs) over the
	// same hello machinery proxies use, and runs anti-entropy sync of its
	// registration table across the trunks, so a node may register with
	// any federation member and bootstrap sets are served from the merged
	// view. The federation assumes a full mesh: every observer lists
	// every other.
	Peers []message.NodeID
	// SyncInterval paces anti-entropy rounds to federation peers; zero
	// uses the default, negative disables proactive sync (inbound syncs
	// are still absorbed).
	SyncInterval time.Duration
	// MaxHandshakes bounds concurrent in-flight inbound handshakes
	// (accepted but not yet identified by a hello): the observer's
	// admission gate, sized like the engine's. Zero uses the admission
	// package default; negative disables the gate entirely. The observer
	// is every node's registration point, so a connection storm lands
	// here first — the gate keeps the hello readers bounded while
	// registered links and federation trunks stay untouched.
	MaxHandshakes int
	// AcceptRate and AcceptBurst configure the per-source admission rate
	// limit (connections/second and bucket depth); zero uses the
	// admission package defaults.
	AcceptRate  float64
	AcceptBurst int
	// GreylistAfter and GreylistFor configure the flapping-source
	// greylist: after GreylistAfter consecutive rate refusals a source is
	// silently dropped for GreylistFor. Zero uses the admission package
	// defaults.
	GreylistAfter int
	GreylistFor   time.Duration
}

// route is an outbound path for commands to one node, or — for a
// federation trunk — to a peer observer.
type route struct {
	ring      *queue.Ring
	conn      net.Conn
	proxy     bool // wrap commands in a Relay envelope
	peerTrunk bool // a federation trunk to another observer
}

// maxNodeEvents bounds the flight-recorder events retained per node; the
// oldest half is discarded when the series overflows.
const maxNodeEvents = 8192

// nodeState tracks one overlay node.
type nodeState struct {
	id         message.NodeID
	out        *route
	lastSeen   time.Time
	lastReport protocol.Report
	hasReport  bool
	departed   bool // deregistered gracefully, as opposed to failed
	// Federation state. seq versions the membership entry: the home
	// observer bumps it on material changes (register, route loss,
	// departure) and peers adopt whichever version is highest, so the
	// merged view converges without per-message traffic. home names the
	// observer holding the node's direct route; remoteAlive mirrors that
	// observer's liveness claim for nodes homed elsewhere.
	seq         uint64
	home        message.NodeID
	remoteAlive bool
	// events accumulates the flight-recorder tails shipped with each
	// report, deduplicated by sequence number (a re-requested report can
	// carry overlap); lastEventSeq is the newest sequence retained.
	events       []trace.Event
	lastEventSeq uint64
}

// Observer is the centralized monitoring and control server — or, with
// Config.Peers set, one member of a federated observer tier.
type Observer struct {
	cfg      Config
	listener net.Listener
	rng      *rand.Rand
	rec      *trace.Recorder // the observer's own flight recorder
	gate     *admission.Gate // inbound admission control; nil when disabled
	counters metrics.Counters
	// busyWriters bounds the concurrent Busy-refusal writer goroutines,
	// as in the engine: past the bound refusals are closed silently.
	busyWriters atomic.Int32

	mu      sync.Mutex
	nodes   map[message.NodeID]*nodeState
	peers   map[message.NodeID]*route // live federation trunks, by peer
	conns   map[net.Conn]struct{}     // every live conn, so Stop can unblock readers
	closing bool
	traces  []TraceRecord
	fed     FederationStats

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New constructs an observer.
func New(cfg Config) (*Observer, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("observer: Config.Transport is required")
	}
	if cfg.ID.IsZero() {
		return nil, fmt.Errorf("observer: Config.ID is required")
	}
	if cfg.BootstrapCount <= 0 {
		cfg.BootstrapCount = DefaultBootstrapCount
	}
	if cfg.RequestInterval == 0 {
		cfg.RequestInterval = DefaultRequestInterval
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}
	peers := cfg.Peers[:0:0]
	for _, p := range cfg.Peers {
		if !p.IsZero() && p != cfg.ID {
			peers = append(peers, p)
		}
	}
	cfg.Peers = peers
	o := &Observer{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		rec:   trace.New(1024),
		nodes: make(map[message.NodeID]*nodeState),
		peers: make(map[message.NodeID]*route),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if cfg.MaxHandshakes >= 0 {
		o.gate = admission.New(admission.Config{
			MaxHandshakes: cfg.MaxHandshakes,
			SourceRate:    cfg.AcceptRate,
			SourceBurst:   cfg.AcceptBurst,
			GreylistAfter: cfg.GreylistAfter,
			GreylistFor:   cfg.GreylistFor,
		})
	}
	return o, nil
}

// Admission reports the admission gate's counters.
func (o *Observer) Admission() admission.Stats { return o.gate.Stats() }

// Counters reports the observer's connection-handling counters.
func (o *Observer) Counters() metrics.CountersSnapshot { return o.counters.Snapshot() }

// ID reports the observer identity.
func (o *Observer) ID() message.NodeID { return o.cfg.ID }

// Start binds the observer port and begins serving.
func (o *Observer) Start() error {
	l, err := o.cfg.Transport.Listen(o.cfg.ID.Addr())
	if err != nil {
		return fmt.Errorf("observer: listen: %w", err)
	}
	o.listener = l
	o.wg.Add(1)
	go o.acceptLoop()
	if o.cfg.RequestInterval > 0 {
		o.wg.Add(1)
		go o.requestLoop()
	}
	for _, p := range o.cfg.Peers {
		o.wg.Add(1)
		go o.peerDialLoop(p)
	}
	if o.cfg.SyncInterval > 0 && len(o.cfg.Peers) > 0 {
		o.wg.Add(1)
		go o.syncLoop()
	}
	return nil
}

// Stop shuts the observer down.
func (o *Observer) Stop() {
	o.once.Do(func() {
		close(o.done)
		if o.listener != nil {
			_ = o.listener.Close()
		}
		o.mu.Lock()
		o.closing = true
		for _, n := range o.nodes {
			if n.out != nil {
				n.out.ring.Close()
			}
		}
		for _, p := range o.peers {
			p.ring.Close()
		}
		// Closing the conns (not just the rings) unblocks every reader
		// goroutine whose far side is still alive — with federation the
		// remote observer outlives us, so waiting for it to hang up would
		// deadlock Stop.
		for c := range o.conns {
			_ = c.Close()
		}
		o.mu.Unlock()
		o.wg.Wait()
	})
}

// trackConn registers a live connection for Stop-time teardown; it
// reports false (and closes the conn) when the observer is already
// stopping.
func (o *Observer) trackConn(conn net.Conn) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closing {
		conn.Close()
		return false
	}
	o.conns[conn] = struct{}{}
	return true
}

func (o *Observer) untrackConn(conn net.Conn) {
	o.mu.Lock()
	delete(o.conns, conn)
	o.mu.Unlock()
}

func (o *Observer) logf(format string, args ...any) {
	if o.cfg.Logf != nil {
		o.cfg.Logf(format, args...)
	}
}

// Accept-retry backoff for transient listener errors (EMFILE,
// ECONNABORTED): capped doubling, like the peer-trunk redial pacer.
const (
	acceptRetryBase = 5 * time.Millisecond
	acceptRetryMax  = 500 * time.Millisecond
)

// maxBusyWriters and busyWriteTimeout bound the Busy-refusal writers,
// mirroring the engine's accept path.
const (
	maxBusyWriters   = 64
	busyWriteTimeout = 100 * time.Millisecond
)

// acceptLoop admits inbound connections: node registrations, proxy
// trunks, and federation trunks. Every connection passes the admission
// gate before a hello reader is spawned — except those arriving from a
// configured federation peer, which are always admitted: a connection
// storm of joining nodes must not cut the observer tier apart. Transient
// Accept errors back off and retry; only a closed listener ends the loop.
func (o *Observer) acceptLoop() {
	defer o.wg.Done()
	delay := acceptRetryBase
	for {
		conn, err := o.listener.Accept()
		if err != nil {
			if engine.AcceptClosed(err) {
				return
			}
			o.counters.AddAcceptRetry()
			o.rec.Emit(trace.KindAccept, message.NodeID{}, 0, int64(admission.AcceptRetry))
			select {
			case <-o.done:
				return
			case <-time.After(delay):
			}
			if delay *= 2; delay > acceptRetryMax {
				delay = acceptRetryMax
			}
			continue
		}
		delay = acceptRetryBase
		host := sourceHost(conn.RemoteAddr())
		if !o.isPeerHost(host) {
			if dec, hint := o.gate.Admit(host); dec != admission.Admitted {
				o.shedConn(conn, dec, hint)
				continue
			}
		} else {
			o.gate.Bypass()
		}
		o.counters.AddConnIn()
		o.wg.Add(1)
		go o.serveConn(conn)
	}
}

// sourceHost extracts the admission-gate source key from a remote
// address: the host alone, so every connection from one node shares a
// rate bucket whatever ephemeral port it dialed from.
func sourceHost(a net.Addr) string {
	s := a.String()
	if host, _, err := net.SplitHostPort(s); err == nil {
		return host
	}
	return s
}

// isPeerHost reports whether host names a configured federation peer.
func (o *Observer) isPeerHost(host string) bool {
	for _, p := range o.cfg.Peers {
		if h, _, err := net.SplitHostPort(p.Addr()); err == nil && h == host {
			return true
		}
	}
	return false
}

// shedConn disposes of a refused connection: greylisted sources are
// closed outright, everything else gets a one-frame Busy reply with the
// retry-after hint, written asynchronously so a refusal storm never
// blocks the accept loop.
func (o *Observer) shedConn(conn net.Conn, dec admission.Decision, hint time.Duration) {
	o.counters.AddConnShed()
	o.rec.Emit(trace.KindAccept, message.NodeID{}, 0, int64(dec))
	if dec == admission.ShedGreylist || o.busyWriters.Load() >= maxBusyWriters {
		_ = conn.Close()
		return
	}
	reason := protocol.BusyHandshakes
	if dec == admission.ShedRate {
		reason = protocol.BusyRate
	}
	o.busyWriters.Add(1)
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		defer o.busyWriters.Add(-1)
		defer conn.Close()
		_ = conn.SetWriteDeadline(time.Now().Add(busyWriteTimeout))
		busy := message.New(protocol.TypeBusy, o.cfg.ID, 0, 0,
			protocol.Busy{Reason: reason, RetryAfterNanos: int64(hint)}.Encode())
		_, _ = busy.WriteTo(conn)
		busy.Release()
	}()
}

// helloDeadline bounds how long an accepted connection may take to
// identify itself; its admission token is held for exactly that window.
const helloDeadline = 10 * time.Second

// serveConn handles one inbound connection: a node's observer link, a
// proxy's trunk, or a peer observer's federation trunk. The first message
// must be a hello; its App field discriminates the connection kind. The
// caller's admission token is held from Accept until the hello resolves
// (the link is registered or the handshake dies), so MaxHandshakes bounds
// these readers exactly; a handshake that dies is counted and lands on
// the flight recorder instead of vanishing in a silent close.
func (o *Observer) serveConn(conn net.Conn) {
	defer o.wg.Done()
	defer conn.Close()
	released := false
	release := func() {
		if !released {
			released = true
			o.gate.Release()
		}
	}
	defer release()
	if !o.trackConn(conn) {
		return
	}
	defer o.untrackConn(conn)
	_ = conn.SetReadDeadline(time.Now().Add(helloDeadline))
	hello, err := message.Read(conn, nil, 256)
	if err != nil {
		dec := admission.BadHello
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			dec = admission.Timeout
		}
		o.counters.AddHandshakeFailed()
		o.rec.Emit(trace.KindAccept, message.NodeID{}, 0, int64(dec))
		return
	}
	if hello.Type() != protocol.TypeHello {
		hello.Release()
		o.counters.AddHandshakeFailed()
		o.rec.Emit(trace.KindAccept, message.NodeID{}, 0, int64(admission.BadHello))
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	app := hello.App()
	peer := hello.Sender()
	hello.Release()
	o.rec.Emit(trace.KindAccept, peer, app, int64(admission.Admitted))

	if app == protocol.HelloObserver {
		release() // trunk registered; the token covered only the hello
		o.runPeerTrunk(conn, peer)
		return
	}
	isProxy := app == protocol.HelloProxy
	out := &route{ring: queue.New(256), conn: conn, proxy: isProxy}
	o.wg.Add(1)
	go o.writeLoop(conn, out.ring)
	defer out.ring.Close()

	if !isProxy {
		o.register(peer, out)
	}
	release() // registered (or a proxy trunk, registered per relayed node)
	for {
		m, err := message.Read(conn, nil, message.DefaultMaxPayload)
		if err != nil {
			// Everything reached over this connection is now unreachable:
			// the direct peer, and — on a proxy trunk — every node whose
			// reports were relayed across it. Leaving relayed nodes routed
			// at the dead trunk would keep them in the bootstrap set (and
			// command-reachable) forever.
			o.markRouteGone(out)
			return
		}
		o.handle(m, out)
	}
}

func (o *Observer) writeLoop(conn net.Conn, ring *queue.Ring) {
	defer o.wg.Done()
	for {
		m, err := ring.Pop()
		if err != nil {
			return
		}
		_, werr := m.WriteTo(conn)
		m.Release()
		if werr != nil {
			ring.Close()
			return
		}
	}
}

// handle processes one message from a node (possibly relayed by a proxy).
func (o *Observer) handle(m *message.Msg, out *route) {
	defer m.Release()
	from := m.Sender()
	o.register(from, out)
	switch m.Type() {
	case protocol.TypeBoot:
		reply := protocol.BootReply{Hosts: o.bootstrapSet(from)}
		o.sendRoute(out, from,
			message.New(protocol.TypeBootReply, o.cfg.ID, 0, 0, reply.Encode()))
	case protocol.TypeReport:
		rp, err := protocol.DecodeReport(m.Payload())
		if err != nil {
			o.logf("bad report from %s: %v", from, err)
			return
		}
		o.mu.Lock()
		if n, ok := o.nodes[from]; ok {
			n.lastReport = rp
			n.hasReport = true
			n.absorbEvents(rp.Events)
		}
		o.mu.Unlock()
		// Federate the raw report so peers' timeline/histogram/topology
		// aggregation sees every node, not just the ones homed with them.
		o.fanoutReport(m)
	case protocol.TypeDepart:
		// Graceful deregistration — the paper's departure, distinct from
		// a crash: the node is removed from the bootstrap set immediately
		// instead of lingering until its silence goes stale, and the
		// departed mark tells monitoring this was intentional.
		o.mu.Lock()
		if n, ok := o.nodes[from]; ok {
			n.out = nil
			n.departed = true
			n.home = o.cfg.ID
			n.seq++ // version the departure for the federation
		}
		o.mu.Unlock()
		o.logf("node %s departed", from)
	case protocol.TypeTrace:
		rec := TraceRecord{When: time.Now(), Node: from, Body: string(m.Payload())}
		o.mu.Lock()
		o.traces = append(o.traces, rec)
		o.mu.Unlock()
		if o.cfg.TraceWriter != nil {
			fmt.Fprintf(o.cfg.TraceWriter, "%s %s %s\n",
				rec.When.Format(time.RFC3339Nano), rec.Node, rec.Body)
		}
	default:
		o.logf("unexpected %s from %s", protocol.TypeName(m.Type()), from)
	}
}

// register records (or refreshes) a node and its outbound route. A
// material change — new route, rejoin after departure, or a node adopted
// from a peer observer — bumps the entry's federation version; refreshes
// over the unchanged route do not, so steady-state traffic produces no
// sync churn.
func (o *Observer) register(id message.NodeID, out *route) {
	if id.IsZero() || id == o.cfg.ID || o.isPeerID(id) {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[id]
	if !ok {
		n = &nodeState{id: id}
		o.nodes[id] = n
	}
	if n.out != out || n.home != o.cfg.ID || n.departed {
		n.seq++
		if old := n.out; old != nil && old != out && !old.proxy && !old.peerTrunk {
			// The node re-registered over a fresh direct connection (an
			// engine failover retries idempotently); the superseded
			// conn/ring pair would otherwise leak until process exit.
			// Proxy trunks are shared by their relayed nodes and must
			// survive one node's re-register.
			old.ring.Close()
			if old.conn != nil {
				old.conn.Close()
			}
		}
	}
	n.out = out
	n.home = o.cfg.ID
	n.remoteAlive = false
	n.lastSeen = time.Now()
	n.departed = false // a node heard from again has (re)joined
}

// markRouteGone clears the outbound route of every node last reached over
// the dropped connection — identified by route pointer, so a trunk failure
// orphans its relayed nodes exactly like the direct peer.
func (o *Observer) markRouteGone(out *route) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, n := range o.nodes {
		if n.out == out {
			n.out = nil
			if n.home == o.cfg.ID {
				n.seq++ // version the loss so peers drop the node too
			}
		}
	}
}

// bootstrapSet samples up to BootstrapCount alive nodes, excluding the
// requester — the paper's "random subset of existing nodes that are
// alive". The candidates are sorted before shuffling so a fixed Seed
// reproduces the same samples regardless of map iteration order, and the
// shuffle is unconditional: even when the whole overlay fits in one reply,
// the order must vary, or every joiner in a small overlay contacts the
// same first host and early experiments always build the same topology.
func (o *Observer) bootstrapSet(exclude message.NodeID) []message.NodeID {
	cutoff := time.Now().Add(-o.cfg.StaleAfter)
	o.mu.Lock()
	defer o.mu.Unlock()
	alive := make([]message.NodeID, 0, len(o.nodes))
	for id, n := range o.nodes {
		if id == exclude {
			continue
		}
		// Merged federation view: a live direct route, or a fresh
		// liveness claim synced from the node's home observer.
		if n.out != nil || o.remoteAliveLocked(n, cutoff) {
			alive = append(alive, id)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].Less(alive[j]) })
	o.rng.Shuffle(len(alive), func(i, j int) {
		alive[i], alive[j] = alive[j], alive[i]
	})
	if len(alive) > o.cfg.BootstrapCount {
		alive = alive[:o.cfg.BootstrapCount]
	}
	return alive
}

// sendRoute pushes a command toward a node over its route, wrapping in a
// relay envelope when the route is a proxy trunk. It consumes m.
func (o *Observer) sendRoute(out *route, dest message.NodeID, m *message.Msg) {
	if out == nil {
		m.Release()
		return
	}
	if out.proxy || out.peerTrunk {
		var buf []byte
		buf = m.AppendHeader(buf)
		buf = append(buf, m.Payload()...)
		m.Release()
		m = message.New(protocol.TypeRelay, o.cfg.ID, 0, 0,
			protocol.Relay{Dest: dest, Inner: buf}.Encode())
	}
	if !out.ring.TryPush(m) {
		m.Release()
	}
}

// requestLoop periodically asks every alive node homed at this observer
// for a status update. Federated deployments leave remote nodes to their
// home observer's requester — the reports spread through report fanout —
// so a node is never double-polled by every federation member.
func (o *Observer) requestLoop() {
	defer o.wg.Done()
	ticker := time.NewTicker(o.cfg.RequestInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, id := range o.aliveLocal() {
				o.Command(id, protocol.TypeRequest, nil)
			}
		case <-o.done:
			return
		}
	}
}
