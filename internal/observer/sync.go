package observer

import (
	"bytes"
	"net"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
	"repro/internal/queue"
	"repro/internal/trace"
)

// This file is the federation side of the observer: peer trunks between
// observers (riding the same hello/relay machinery proxies use), an
// anti-entropy sync of the seq-versioned registration table, and the
// merged-view plumbing that lets a node register with any federation
// member while bootstrap sets, commands, and monitoring keep working
// from every observer.
//
// Convention: functions named *sync* run on (or are called from) paths a
// node-facing connection may be waiting behind, so they must never block
// on a ring — TryPush only, drops are repaired by the next round. The
// ioverlayvet obssync check enforces this.

// Peer trunk dial backoff bounds.
const (
	peerDialBase = 50 * time.Millisecond
	peerDialMax  = 2 * time.Second
	peerRingCap  = 256
)

// FederationStats counts federation activity, for tests and experiment
// logs.
type FederationStats struct {
	SyncsSent        int64 // anti-entropy payloads pushed onto peer trunks
	SyncsAbsorbed    int64 // sync payloads merged from peers
	EntriesChanged   int64 // membership entries changed by merges
	ReportsForwarded int64 // node reports fanned out to peers
	RelaysDelivered  int64 // federated commands delivered to local nodes
}

// Federation returns a snapshot of the federation activity counters.
func (o *Observer) Federation() FederationStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fed
}

// Events returns the observer's own flight-recorder series (peer trunk
// transitions, absorbed sync rounds).
func (o *Observer) Events() []trace.Event {
	return o.rec.Snapshot()
}

// PeerTrunks lists the federation peers with a live trunk, sorted.
func (o *Observer) PeerTrunks() []message.NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]message.NodeID, 0, len(o.peers))
	for id := range o.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// isPeerID reports whether id names a configured federation peer —
// observers must never enter the node table.
func (o *Observer) isPeerID(id message.NodeID) bool {
	for _, p := range o.cfg.Peers {
		if p == id {
			return true
		}
	}
	return false
}

// remoteAliveLocked reports whether a node without a direct route counts
// as alive in the merged view: not departed, homed at another observer,
// and that observer's liveness claim is fresh. Caller holds o.mu.
func (o *Observer) remoteAliveLocked(n *nodeState, cutoff time.Time) bool {
	return !n.departed && n.remoteAlive &&
		!n.home.IsZero() && n.home != o.cfg.ID &&
		n.lastSeen.After(cutoff)
}

// aliveLocal lists alive nodes homed at this observer, sorted.
func (o *Observer) aliveLocal() []message.NodeID {
	cutoff := time.Now().Add(-o.cfg.StaleAfter)
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]message.NodeID, 0, len(o.nodes))
	for id, n := range o.nodes {
		if n.out != nil && n.lastSeen.After(cutoff) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// ----- peer trunks -----

// peerDialLoop maintains an outbound trunk to one federation peer,
// redialing with capped-doubling backoff for as long as the observer
// runs. Both sides of a peering dial; duplicate trunks are benign (each
// side pushes on whichever trunk registered last and reads both).
func (o *Observer) peerDialLoop(peer message.NodeID) {
	defer o.wg.Done()
	delay := peerDialBase
	for {
		select {
		case <-o.done:
			return
		default:
		}
		conn, err := o.cfg.Transport.DialFrom(o.cfg.ID.Addr(), peer.Addr(), engine.DefaultDialTimeout)
		if err != nil {
			select {
			case <-o.done:
				return
			case <-time.After(delay):
			}
			if delay *= 2; delay > peerDialMax {
				delay = peerDialMax
			}
			continue
		}
		delay = peerDialBase
		if !o.trackConn(conn) {
			return
		}
		hello := message.New(protocol.TypeHello, o.cfg.ID, protocol.HelloObserver, 0, nil)
		_, werr := hello.WriteTo(conn)
		hello.Release()
		if werr == nil {
			o.runPeerTrunk(conn, peer)
		}
		conn.Close()
		o.untrackConn(conn)
	}
}

// runPeerTrunk services one established federation trunk (either the
// dialed or the accepted side): registers it for outbound pushes, seeds
// the peer with an immediate full sync, and absorbs inbound federation
// traffic until the conn dies.
func (o *Observer) runPeerTrunk(conn net.Conn, peer message.NodeID) {
	out := &route{ring: queue.New(peerRingCap), conn: conn, peerTrunk: true}
	o.wg.Add(1)
	go o.writeLoop(conn, out.ring)
	defer out.ring.Close()
	o.registerPeer(peer, out)
	o.syncTo(out) // converge a (re)connecting peer immediately
	for {
		m, err := message.Read(conn, nil, message.DefaultMaxPayload)
		if err != nil {
			o.markPeerGone(peer, out)
			return
		}
		o.handlePeerMsg(m, peer)
	}
}

// registerPeer installs out as the trunk for pushes toward peer. A
// superseded trunk is left open — it may be the other side's dialed
// trunk, and closing it would make the two observers churn each other's
// connections forever; dead trunks clean themselves up via markPeerGone.
func (o *Observer) registerPeer(peer message.NodeID, out *route) {
	o.mu.Lock()
	o.peers[peer] = out
	o.mu.Unlock()
	o.rec.Emit(trace.KindLinkUp, peer, protocol.HelloObserver, 1)
	o.logf("federation trunk to %s up", peer)
}

// markPeerGone retires a dead trunk, by pointer so a superseded trunk's
// death cannot unregister its replacement.
func (o *Observer) markPeerGone(peer message.NodeID, out *route) {
	o.mu.Lock()
	if o.peers[peer] == out {
		delete(o.peers, peer)
	}
	o.mu.Unlock()
	o.rec.Emit(trace.KindLinkDown, peer, protocol.HelloObserver, 1)
	o.logf("federation trunk to %s down", peer)
}

// handlePeerMsg processes one message from a peer observer's trunk.
func (o *Observer) handlePeerMsg(m *message.Msg, peer message.NodeID) {
	defer m.Release()
	switch m.Type() {
	case protocol.TypeObsSync:
		s, err := protocol.DecodeObsSync(m.Payload())
		if err != nil {
			o.logf("bad sync from %s: %v", peer, err)
			return
		}
		changed := o.absorbSync(s)
		o.rec.Emit(trace.KindObsSync, s.Origin, 0, int64(changed))
	case protocol.TypeReport:
		// A report federated from the node's home observer: absorb the
		// monitoring data without touching routing state — the node is
		// not reachable over this trunk.
		rp, err := protocol.DecodeReport(m.Payload())
		if err != nil {
			o.logf("bad federated report from %s: %v", peer, err)
			return
		}
		from := m.Sender()
		if from.IsZero() || from == o.cfg.ID || o.isPeerID(from) {
			return
		}
		o.mu.Lock()
		n, ok := o.nodes[from]
		if !ok {
			n = &nodeState{id: from}
			o.nodes[from] = n
		}
		n.lastReport = rp
		n.hasReport = true
		n.absorbEvents(rp.Events)
		o.mu.Unlock()
	case protocol.TypeRelay:
		// A command federated from a peer for a node homed here. Deliver
		// over the local route only — never re-relay to another observer,
		// so a stale home pointer cannot form a forwarding loop.
		rl, err := protocol.DecodeRelay(m.Payload())
		if err != nil {
			o.logf("bad federated relay from %s: %v", peer, err)
			return
		}
		fwd, err := message.Read(bytes.NewReader(rl.Inner), nil, message.DefaultMaxPayload)
		if err != nil {
			o.logf("bad federated relay payload from %s: %v", peer, err)
			return
		}
		o.mu.Lock()
		var dst *route
		if n, ok := o.nodes[rl.Dest]; ok {
			dst = n.out
		}
		if dst != nil {
			o.fed.RelaysDelivered++
		}
		o.mu.Unlock()
		o.sendRoute(dst, rl.Dest, fwd)
	default:
		o.logf("unexpected %s on federation trunk from %s", protocol.TypeName(m.Type()), peer)
	}
}

// fanoutReport forwards a node's raw report message to every live peer
// trunk. It borrows m (retaining per trunk) and never blocks: a full
// trunk drops the report, and the next one repairs the peer's view.
func (o *Observer) fanoutReport(m *message.Msg) {
	o.mu.Lock()
	if len(o.peers) == 0 {
		o.mu.Unlock()
		return
	}
	trunks := make([]*route, 0, len(o.peers))
	for _, p := range o.peers {
		trunks = append(trunks, p)
	}
	o.fed.ReportsForwarded += int64(len(trunks))
	o.mu.Unlock()
	for _, tr := range trunks {
		m.Retain()
		if !tr.ring.TryPush(m) {
			m.Release()
		}
	}
}

// ----- anti-entropy -----

// buildSync snapshots the full membership table as versioned entries.
func (o *Observer) buildSync() protocol.ObsSync {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := protocol.ObsSync{Origin: o.cfg.ID}
	if len(o.nodes) == 0 {
		return s
	}
	s.Entries = make([]protocol.MemberEntry, 0, len(o.nodes))
	for id, n := range o.nodes {
		e := protocol.MemberEntry{Node: id, Home: n.home, Seq: n.seq, Departed: n.departed}
		if n.home == o.cfg.ID {
			e.Alive = n.out != nil
		} else {
			e.Alive = n.remoteAlive
		}
		s.Entries = append(s.Entries, e)
	}
	return s
}

// syncTo pushes one full-table sync onto one federation trunk.
func (o *Observer) syncTo(out *route) {
	s := o.buildSync()
	if len(s.Entries) == 0 {
		return
	}
	m := message.New(protocol.TypeObsSync, o.cfg.ID, 0, 0, s.Encode())
	if out.ring.TryPush(m) {
		o.mu.Lock()
		o.fed.SyncsSent++
		o.mu.Unlock()
	} else {
		m.Release()
	}
}

// syncLoop pushes anti-entropy rounds to every live peer trunk at the
// configured interval. Full-table rounds keep the protocol stateless: a
// dropped or reordered payload is repaired by the next tick.
func (o *Observer) syncLoop() {
	defer o.wg.Done()
	ticker := time.NewTicker(o.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			o.mu.Lock()
			trunks := make([]*route, 0, len(o.peers))
			for _, p := range o.peers {
				trunks = append(trunks, p)
			}
			o.mu.Unlock()
			for _, tr := range trunks {
				o.syncTo(tr)
			}
		case <-o.done:
			return
		}
	}
}

// absorbSync merges one peer's table into ours and returns how many
// entries changed. Merge rules:
//
//   - Higher seq wins. Only home observers bump seqs (at register, route
//     loss, and departure), so adopting a higher version is adopting the
//     newest home's claim.
//   - If a peer claims a node we still hold a live direct route to, our
//     conn is ground truth: we out-version the claim instead of adopting
//     it. The node flapped back to us (or the peer's entry is stale); if
//     our conn is in fact dead, its reader will notice, markRouteGone
//     will bump the seq again, and the federation converges on the peer.
//   - lastSeen refreshes only on claims asserted by the entry's own home
//     observer (sync.Origin == entry.Home). Third-party echoes never
//     refresh liveness, so a dead observer's nodes go stale everywhere
//     at the same rate they would have gone stale at their home. This
//     leans on the full-mesh assumption documented on Config.Peers.
func (o *Observer) absorbSync(s protocol.ObsSync) int {
	now := time.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fed.SyncsAbsorbed++
	changed := 0
	for _, e := range s.Entries {
		if e.Node.IsZero() || e.Node == o.cfg.ID || o.isPeerID(e.Node) {
			continue
		}
		n, ok := o.nodes[e.Node]
		if !ok {
			n = &nodeState{id: e.Node}
			o.nodes[e.Node] = n
		}
		fromHome := e.Home == s.Origin
		switch {
		case e.Seq <= n.seq:
			if e.Seq == n.seq && fromHome && e.Alive && n.home == e.Home && n.out == nil {
				// Same-version heartbeat from the asserting home:
				// refresh staleness without counting it as a change.
				n.lastSeen = now
			}
		case n.out != nil && e.Home != o.cfg.ID:
			n.seq = e.Seq + 1
			n.home = o.cfg.ID
			n.departed = false
			changed++
		default:
			n.seq = e.Seq
			if n.out == nil {
				n.home = e.Home
				n.remoteAlive = e.Alive
				n.departed = e.Departed
				if fromHome && e.Alive {
					n.lastSeen = now
				}
			}
			changed++
		}
	}
	o.fed.EntriesChanged += int64(changed)
	return changed
}
