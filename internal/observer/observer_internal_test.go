package observer

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/queue"
	"repro/internal/trace"
	"repro/internal/vnet"
)

// newBareObserver builds an observer without starting it, for white-box
// tests that populate the node table directly.
func newBareObserver(t *testing.T) *Observer {
	t.Helper()
	n := vnet.New()
	t.Cleanup(n.Close)
	o, err := New(Config{
		ID:        message.MakeID("10.255.0.1", 9000),
		Transport: engine.VNet{Net: n},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o
}

func inid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.0.%d", i), 7000)
}

// TestBootstrapSetShufflesSmallOverlays is the regression test for the
// fixed sampling bug: with fewer alive nodes than BootstrapCount the old
// code skipped the shuffle entirely, so every joiner in a small overlay
// received the identical sorted host list and always contacted the same
// first node. The reply order must vary across draws.
func TestBootstrapSetShufflesSmallOverlays(t *testing.T) {
	o := newBareObserver(t)
	rt := &route{ring: queue.New(1)}
	const nodes = 4 // well under DefaultBootstrapCount (8): no truncation
	for i := 1; i <= nodes; i++ {
		id := inid(i)
		o.nodes[id] = &nodeState{id: id, out: rt}
	}
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		set := o.bootstrapSet(message.NodeID{})
		if len(set) != nodes {
			t.Fatalf("bootstrapSet returned %d hosts, want %d", len(set), nodes)
		}
		seen[fmt.Sprint(set)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 bootstrap draws over %d nodes produced a single ordering: %v",
			nodes, seen)
	}
}

// TestMarkRouteGoneClearsRelayedNodes is the regression test for the
// dead-trunk bug: nodes registered over a proxy trunk share the trunk's
// route, and when the trunk drops every one of them must lose its route —
// not just the direct peer the connection belonged to. Nodes on other
// routes are untouched.
func TestMarkRouteGoneClearsRelayedNodes(t *testing.T) {
	o := newBareObserver(t)
	trunk := &route{ring: queue.New(1), proxy: true}
	direct := &route{ring: queue.New(1)}
	relayed1, relayed2, other := inid(1), inid(2), inid(3)
	o.nodes[relayed1] = &nodeState{id: relayed1, out: trunk}
	o.nodes[relayed2] = &nodeState{id: relayed2, out: trunk}
	o.nodes[other] = &nodeState{id: other, out: direct}

	o.markRouteGone(trunk)

	if o.nodes[relayed1].out != nil || o.nodes[relayed2].out != nil {
		t.Error("relayed nodes kept a route after their trunk dropped")
	}
	if o.nodes[other].out != direct {
		t.Error("node on an unrelated route lost it")
	}
	if set := o.bootstrapSet(message.NodeID{}); len(set) != 1 || set[0] != other {
		t.Errorf("bootstrapSet after trunk loss = %v, want just %v", set, other)
	}
}

// TestAbsorbEventsDedupesAndBounds covers the report-overlap dedupe and
// the per-node retention cap.
func TestAbsorbEventsDedupesAndBounds(t *testing.T) {
	n := &nodeState{}
	mk := func(lo, hi uint64) []trace.Event {
		evs := make([]trace.Event, 0, hi-lo+1)
		for s := lo; s <= hi; s++ {
			evs = append(evs, trace.Event{Seq: s, Nanos: int64(s), Kind: trace.KindSwitch})
		}
		return evs
	}
	n.absorbEvents(mk(1, 10))
	n.absorbEvents(mk(5, 15)) // overlap: 5..10 must not duplicate
	if len(n.events) != 15 {
		t.Fatalf("retained %d events, want 15", len(n.events))
	}
	for i, ev := range n.events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	n.absorbEvents(mk(16, maxNodeEvents+100))
	if len(n.events) > maxNodeEvents {
		t.Errorf("retained %d events, cap is %d", len(n.events), maxNodeEvents)
	}
	if last := n.events[len(n.events)-1].Seq; last != maxNodeEvents+100 {
		t.Errorf("newest retained seq = %d, want %d", last, maxNodeEvents+100)
	}
}
