package observer_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/multicast"
	"repro/internal/observer"
	"repro/internal/protocol"
	"repro/internal/proxy"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.0.%d", i), 7000)
}

var obsID = message.MakeID("10.255.0.1", 9000)

func startObserver(t *testing.T, n *vnet.Network, mut ...func(*observer.Config)) *observer.Observer {
	t.Helper()
	cfg := observer.Config{
		ID:              obsID,
		Transport:       engine.VNet{Net: n},
		RequestInterval: 100 * time.Millisecond,
	}
	for _, m := range mut {
		m(&cfg)
	}
	o, err := observer.New(cfg)
	if err != nil {
		t.Fatalf("observer.New: %v", err)
	}
	if err := o.Start(); err != nil {
		t.Fatalf("observer.Start: %v", err)
	}
	t.Cleanup(o.Stop)
	return o
}

// tracker is a forwarder that also remembers which control types arrived.
type tracker struct {
	multicast.Forwarder
	mu        sync.Mutex
	types     map[message.Type]int
	joins     []protocol.Join
	bootHosts int
}

func (r *tracker) Process(m *message.Msg) engine.Verdict {
	r.mu.Lock()
	if r.types == nil {
		r.types = make(map[message.Type]int)
	}
	r.types[m.Type()]++
	if m.Type() == protocol.TypeJoin {
		if j, err := protocol.DecodeJoin(m.Payload()); err == nil {
			r.joins = append(r.joins, j)
		}
	}
	if m.Type() == protocol.TypeBootReply {
		if br, err := protocol.DecodeBootReply(m.Payload()); err == nil {
			r.bootHosts = len(br.Hosts)
		}
	}
	r.mu.Unlock()
	return r.Forwarder.Process(m)
}

func (r *tracker) count(t message.Type) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.types[t]
}

func startNode(t *testing.T, n *vnet.Network, id, obs message.NodeID, alg engine.Algorithm) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{
		ID:             id,
		Transport:      engine.VNet{Net: n},
		Algorithm:      alg,
		Observer:       obs,
		StatusInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("engine.New(%s): %v", id, err)
	}
	if err := e.Start(); err != nil {
		t.Fatalf("engine.Start(%s): %v", id, err)
	}
	t.Cleanup(e.Stop)
	return e
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBootstrapAndAliveness(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	const count = 5
	algs := make([]*tracker, count)
	for i := 0; i < count; i++ {
		algs[i] = &tracker{}
		startNode(t, n, nid(i+1), obsID, algs[i])
	}
	if !o.WaitForNodes(count, 5*time.Second) {
		t.Fatalf("only %d nodes alive", len(o.Alive()))
	}
	// Every node got a boot reply.
	for i, a := range algs {
		waitFor(t, 3*time.Second, fmt.Sprintf("boot reply at node %d", i), func() bool {
			return a.count(protocol.TypeBootReply) > 0
		})
	}
	// Later joiners learn existing nodes.
	late := &tracker{}
	startNode(t, n, nid(100), obsID, late)
	waitFor(t, 3*time.Second, "late joiner known hosts", func() bool {
		late.mu.Lock()
		defer late.mu.Unlock()
		return late.bootHosts >= 1
	})
}

func TestStatusReportsFlow(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	sink := &tracker{}
	startNode(t, n, nid(2), obsID, sink)
	src := &tracker{}
	src.DefaultRoutes = []message.NodeID{nid(2)}
	startNode(t, n, nid(1), obsID, src)
	o.WaitForNodes(2, 5*time.Second)

	if !o.Deploy(nid(1), 7, 200<<10, 2048) {
		t.Fatal("Deploy found no route")
	}
	waitFor(t, 5*time.Second, "sink data", func() bool {
		return sink.ReceivedBytes(7) > 20<<10
	})
	waitFor(t, 5*time.Second, "status report with links", func() bool {
		rp, ok := o.Status(nid(1))
		return ok && len(rp.Downstream) >= 1
	})
	rp, _ := o.Status(nid(1))
	found := false
	for _, l := range rp.Downstream {
		if l.Peer == nid(2) && l.Rate > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("report lacks active downstream to %v: %+v", nid(2), rp.Downstream)
	}
	// Topology view includes the edge.
	waitFor(t, 3*time.Second, "topology edge", func() bool {
		for _, e := range o.Topology() {
			if e.From == nid(1) && e.To == nid(2) {
				return true
			}
		}
		return false
	})
	if s := o.RenderTopology(); !strings.Contains(s, nid(2).String()) {
		t.Errorf("RenderTopology missing edge: %q", s)
	}
}

func TestObserverControlPanel(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	a := &tracker{}
	startNode(t, n, nid(1), obsID, a)
	o.WaitForNodes(1, 5*time.Second)

	if !o.Join(nid(1), 3, nid(9)) {
		t.Fatal("Join found no route")
	}
	waitFor(t, 3*time.Second, "join command", func() bool {
		return a.count(protocol.TypeJoin) > 0
	})
	a.mu.Lock()
	j := a.joins[0]
	a.mu.Unlock()
	if j.App != 3 || j.Contact != nid(9) {
		t.Errorf("join payload = %+v", j)
	}

	if !o.Custom(nid(1), 42, -1, 2) {
		t.Fatal("Custom found no route")
	}
	waitFor(t, 3*time.Second, "custom command", func() bool {
		return a.count(protocol.TypeCustom) > 0
	})
	if !o.Leave(nid(1), 3) {
		t.Fatal("Leave found no route")
	}
	waitFor(t, 3*time.Second, "leave command", func() bool {
		return a.count(protocol.TypeLeave) > 0
	})
}

func TestObserverSetBandwidthThrottlesNode(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	sink := &tracker{}
	startNode(t, n, nid(2), obsID, sink)
	src := &tracker{}
	src.DefaultRoutes = []message.NodeID{nid(2)}
	startNode(t, n, nid(1), obsID, src)
	o.WaitForNodes(2, 5*time.Second)
	o.Deploy(nid(1), 7, 0, 4096)
	waitFor(t, 5*time.Second, "initial traffic", func() bool {
		return sink.ReceivedBytes(7) > 100<<10
	})
	const cap = 80 << 10
	if !o.SetBandwidth(nid(1), protocol.SetBandwidth{Class: protocol.BandwidthUp, Rate: cap}) {
		t.Fatal("SetBandwidth found no route")
	}
	time.Sleep(400 * time.Millisecond)
	before := sink.ReceivedBytes(7)
	const window = 700 * time.Millisecond
	time.Sleep(window)
	rate := float64(sink.ReceivedBytes(7)-before) / window.Seconds()
	if rate > cap*1.6 {
		t.Errorf("rate after observer throttle = %.0f B/s, want <= ~%d", rate, cap)
	}
}

func TestObserverTerminateNode(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	a := &tracker{}
	e := startNode(t, n, nid(1), obsID, a)
	o.WaitForNodes(1, 5*time.Second)
	if !o.TerminateNode(nid(1)) {
		t.Fatal("TerminateNode found no route")
	}
	waitFor(t, 5*time.Second, "node to leave alive set", func() bool {
		return len(o.Alive()) == 0
	})
	// The engine must be fully stopped; Stop again is a no-op.
	e.Stop()
}

// lockedBuf is a goroutine-safe TraceWriter for tests.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestTraceCollection(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	var log lockedBuf
	o := startObserver(t, n, func(c *observer.Config) { c.TraceWriter = &log })
	a := &tracker{}
	e := startNode(t, n, nid(1), obsID, a)
	o.WaitForNodes(1, 5*time.Second)
	e.Trace("checkpoint %d reached", 5)
	waitFor(t, 3*time.Second, "trace record", func() bool {
		return len(o.Traces()) > 0
	})
	rec := o.Traces()[0]
	if rec.Node != nid(1) || rec.Body != "checkpoint 5 reached" {
		t.Errorf("trace = %+v", rec)
	}
	if !strings.Contains(log.String(), "checkpoint 5 reached") {
		t.Errorf("trace writer missing record: %q", log.String())
	}
}

func TestProxyRelaysUpdatesAndCommands(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	proxyID := message.MakeID("10.254.0.1", 9100)
	p, err := proxy.New(proxy.Config{
		ID:        proxyID,
		Observer:  obsID,
		Transport: engine.VNet{Net: n},
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("proxy.Start: %v", err)
	}
	t.Cleanup(p.Stop)

	// Nodes point at the proxy as their "observer".
	a := &tracker{}
	startNode(t, n, nid(1), proxyID, a)
	b := &tracker{}
	startNode(t, n, nid(2), proxyID, b)

	if !o.WaitForNodes(2, 5*time.Second) {
		t.Fatalf("observer sees %d nodes via proxy", len(o.Alive()))
	}
	if got := p.NodeCount(); got != 2 {
		t.Errorf("proxy NodeCount = %d, want 2", got)
	}
	// Boot replies traverse the relay envelope path.
	waitFor(t, 5*time.Second, "boot replies through proxy", func() bool {
		return a.count(protocol.TypeBootReply) > 0 && b.count(protocol.TypeBootReply) > 0
	})
	// Commands reach the right node through the envelope.
	if !o.Custom(nid(2), 9, 1, 2) {
		t.Fatal("Custom via proxy found no route")
	}
	waitFor(t, 5*time.Second, "custom at node 2", func() bool {
		return b.count(protocol.TypeCustom) > 0
	})
	if got := a.count(protocol.TypeCustom); got != 0 {
		t.Errorf("custom command leaked to node 1 (%d copies)", got)
	}
	// Status reports flow through the proxy as well.
	waitFor(t, 5*time.Second, "reports via proxy", func() bool {
		_, ok := o.Status(nid(1))
		return ok
	})
}

func TestObserverConfigValidation(t *testing.T) {
	if _, err := observer.New(observer.Config{ID: obsID}); err == nil {
		t.Error("New without transport succeeded")
	}
	n := vnet.New()
	defer n.Close()
	if _, err := observer.New(observer.Config{Transport: engine.VNet{Net: n}}); err == nil {
		t.Error("New without ID succeeded")
	}
	if _, err := proxy.New(proxy.Config{Transport: engine.VNet{Net: n}}); err == nil {
		t.Error("proxy.New without IDs succeeded")
	}
}

func TestPushMembershipRefreshesStaleViews(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	o := startObserver(t, n)
	// First node boots alone: empty membership.
	early := &tracker{}
	startNode(t, n, nid(1), obsID, early)
	o.WaitForNodes(1, 5*time.Second)
	waitFor(t, 3*time.Second, "early boot reply", func() bool {
		return early.count(protocol.TypeBootReply) > 0
	})
	early.mu.Lock()
	firstView := early.bootHosts
	early.mu.Unlock()
	if firstView != 0 {
		t.Fatalf("first node's bootstrap view = %d hosts, want 0", firstView)
	}
	// Two more nodes arrive; a membership push must refresh the view.
	startNode(t, n, nid(2), obsID, &tracker{})
	startNode(t, n, nid(3), obsID, &tracker{})
	o.WaitForNodes(3, 5*time.Second)
	if !o.PushMembership(nid(1)) {
		t.Fatal("PushMembership found no route")
	}
	waitFor(t, 3*time.Second, "refreshed membership", func() bool {
		early.mu.Lock()
		defer early.mu.Unlock()
		return early.bootHosts == 2
	})
}
