// Package proxy implements iOverlay's observer proxy: an efficient relay
// executed outside the firewall that accepts status updates from many
// overlay nodes and forwards them to the observer over a single
// connection, solving both the Windows backlog limit and the firewall
// problem the paper describes. Commands travel the reverse path inside
// relay envelopes, unwrapped here and delivered on each node's inbound
// connection.
package proxy

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
	"repro/internal/queue"
)

// Config parameterizes a Proxy.
type Config struct {
	// ID is the proxy's identity/listen address.
	ID message.NodeID
	// Observer is the upstream observer to trunk into.
	Observer message.NodeID
	// Transport supplies connectivity.
	Transport engine.Transport
	// Logf, when set, receives debug logging.
	Logf func(format string, args ...any)
}

// Proxy is the N-to-1 relay.
type Proxy struct {
	cfg      Config
	listener net.Listener
	trunk    net.Conn
	trunkOut *queue.Ring

	mu       sync.Mutex
	nodes    map[message.NodeID]*queue.Ring // per-node outbound rings
	conns    map[net.Conn]struct{}          // every accepted node connection
	stopping bool

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New constructs a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("proxy: Config.Transport is required")
	}
	if cfg.ID.IsZero() || cfg.Observer.IsZero() {
		return nil, fmt.Errorf("proxy: Config.ID and Config.Observer are required")
	}
	return &Proxy{
		cfg:      cfg,
		trunkOut: queue.New(1024),
		nodes:    make(map[message.NodeID]*queue.Ring),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start connects the trunk to the observer and begins accepting node
// connections.
func (p *Proxy) Start() error {
	trunk, err := p.cfg.Transport.DialFrom(p.cfg.ID.Addr(), p.cfg.Observer.Addr(), engine.DefaultDialTimeout)
	if err != nil {
		return fmt.Errorf("proxy: dial observer: %w", err)
	}
	hello := message.New(protocol.TypeHello, p.cfg.ID, protocol.HelloProxy, 0, nil)
	if _, err := hello.WriteTo(trunk); err != nil {
		_ = trunk.Close()
		return fmt.Errorf("proxy: trunk hello: %w", err)
	}
	p.trunk = trunk

	l, err := p.cfg.Transport.Listen(p.cfg.ID.Addr())
	if err != nil {
		_ = trunk.Close()
		return fmt.Errorf("proxy: listen: %w", err)
	}
	p.listener = l

	p.wg.Add(3)
	go p.acceptLoop()
	go p.trunkWriter()
	go p.trunkReader()
	return nil
}

// Stop shuts the proxy down, closing the node connections as well as the
// trunk so every relayed node observes the failure immediately and starts
// reconnecting instead of feeding reports into a dead relay.
func (p *Proxy) Stop() {
	p.once.Do(func() {
		close(p.done)
		if p.listener != nil {
			_ = p.listener.Close()
		}
		if p.trunk != nil {
			_ = p.trunk.Close()
		}
		p.trunkOut.Close()
		p.trunkOut.Drain()
		p.mu.Lock()
		p.stopping = true
		for _, ring := range p.nodes {
			ring.Close()
		}
		for conn := range p.conns {
			_ = conn.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		// Track the connection so Stop can close it; a connection that
		// races a concurrent Stop is closed on the spot.
		p.mu.Lock()
		if p.stopping {
			p.mu.Unlock()
			_ = conn.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveNode(conn)
	}
}

// serveNode relays one node's updates onto the trunk and registers a ring
// for commands flowing back.
func (p *Proxy) serveNode(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hello, err := message.Read(conn, nil, 256)
	if err != nil || hello.Type() != protocol.TypeHello {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	node := hello.Sender()
	hello.Release()

	ring := queue.New(256)
	p.mu.Lock()
	if old, ok := p.nodes[node]; ok {
		old.Close()
	}
	p.nodes[node] = ring
	p.mu.Unlock()
	p.wg.Add(1)
	go p.nodeWriter(conn, ring)

	for {
		m, err := message.Read(conn, nil, message.DefaultMaxPayload)
		if err != nil {
			p.mu.Lock()
			if p.nodes[node] == ring {
				delete(p.nodes, node)
			}
			p.mu.Unlock()
			ring.Close()
			return
		}
		if !p.trunkOut.TryPush(m) {
			m.Release() // trunk congested: shed updates, never block nodes
		}
	}
}

func (p *Proxy) nodeWriter(conn net.Conn, ring *queue.Ring) {
	defer p.wg.Done()
	// Closing the connection on exit kicks the paired reader out of its
	// blocking Read, so a ring closed by replacement (or Stop) tears the
	// whole link down rather than leaving a half-dead connection.
	defer conn.Close()
	for {
		m, err := ring.Pop()
		if err != nil {
			return
		}
		_, werr := m.WriteTo(conn)
		m.Release()
		if werr != nil {
			ring.Close()
			return
		}
	}
}

// trunkWriter drains relayed updates to the observer.
func (p *Proxy) trunkWriter() {
	defer p.wg.Done()
	for {
		m, err := p.trunkOut.Pop()
		if err != nil {
			return
		}
		_, werr := m.WriteTo(p.trunk)
		m.Release()
		if werr != nil {
			return
		}
	}
}

// trunkReader unwraps relay envelopes from the observer and delivers the
// inner command to the destination node.
func (p *Proxy) trunkReader() {
	defer p.wg.Done()
	for {
		m, err := message.Read(p.trunk, nil, message.DefaultMaxPayload)
		if err != nil {
			return
		}
		if m.Type() != protocol.TypeRelay {
			p.logf("unexpected trunk message %s", protocol.TypeName(m.Type()))
			m.Release()
			continue
		}
		rl, err := protocol.DecodeRelay(m.Payload())
		if err != nil {
			m.Release()
			continue
		}
		inner, _, derr := message.Decode(rl.Inner)
		if derr != nil {
			m.Release()
			continue
		}
		// The inner payload aliases the envelope; clone for independent
		// lifetime, then drop the envelope.
		cmd := inner.Clone()
		m.Release()

		p.mu.Lock()
		ring := p.nodes[rl.Dest]
		p.mu.Unlock()
		if ring == nil || !ring.TryPush(cmd) {
			cmd.Release()
		}
	}
}

// NodeCount reports how many node connections are currently relayed.
func (p *Proxy) NodeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nodes)
}
