package proxy_test

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
	"repro/internal/proxy"
	"repro/internal/vnet"
)

var (
	obsID   = message.MakeID("10.255.0.1", 9000)
	proxyID = message.MakeID("10.254.0.1", 9100)
)

// fakeObserver accepts the proxy trunk and records received messages; it
// can also push relay envelopes back down the trunk.
type fakeObserver struct {
	net      *vnet.Network
	received chan *message.Msg
	trunk    chan interface {
		WriteMsg(*message.Msg) error
	}
}

type trunkConn struct {
	c interface {
		Write([]byte) (int, error)
	}
}

func (t trunkConn) WriteMsg(m *message.Msg) error {
	_, err := m.WriteTo(t.c)
	return err
}

func startFakeObserver(t *testing.T, n *vnet.Network) *fakeObserver {
	t.Helper()
	l, err := n.Listen(obsID.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fo := &fakeObserver{
		net:      n,
		received: make(chan *message.Msg, 256),
		trunk: make(chan interface {
			WriteMsg(*message.Msg) error
		}, 1),
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		hello, err := message.Read(conn, nil, 256)
		if err != nil || hello.Type() != protocol.TypeHello ||
			hello.App() != protocol.HelloProxy {
			t.Errorf("bad trunk hello: %v %v", hello, err)
			return
		}
		fo.trunk <- trunkConn{c: conn}
		for {
			m, err := message.Read(conn, nil, message.DefaultMaxPayload)
			if err != nil {
				return
			}
			fo.received <- m
		}
	}()
	return fo
}

// fakeNode dials the proxy like an engine's observer link would.
type fakeNode struct {
	id       message.NodeID
	conn     interface{ Close() error }
	w        interface{ Write([]byte) (int, error) }
	received chan *message.Msg
}

func startFakeNode(t *testing.T, n *vnet.Network, id message.NodeID) *fakeNode {
	t.Helper()
	conn, err := n.DialFrom(id.Addr(), proxyID.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello := message.New(protocol.TypeHello, id, 0, 0, nil)
	if _, err := hello.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	fn := &fakeNode{id: id, conn: conn, w: conn, received: make(chan *message.Msg, 64)}
	go func() {
		for {
			m, err := message.Read(conn, nil, message.DefaultMaxPayload)
			if err != nil {
				return
			}
			fn.received <- m
		}
	}()
	return fn
}

func (fn *fakeNode) send(t *testing.T, m *message.Msg) {
	t.Helper()
	if _, err := m.WriteTo(fn.w); err != nil {
		t.Fatalf("node write: %v", err)
	}
}

func startProxy(t *testing.T, n *vnet.Network) *proxy.Proxy {
	t.Helper()
	p, err := proxy.New(proxy.Config{
		ID:        proxyID,
		Observer:  obsID,
		Transport: engine.VNet{Net: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func TestUpdatesRelayedUpstream(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	fo := startFakeObserver(t, n)
	startProxy(t, n)
	node := startFakeNode(t, n, message.MakeID("10.0.0.1", 7000))

	node.send(t, message.New(protocol.TypeBoot, node.id, 0, 0, nil))
	select {
	case m := <-fo.received:
		if m.Type() != protocol.TypeBoot || m.Sender() != node.id {
			t.Errorf("relayed = %v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("boot not relayed to observer")
	}
}

func TestRelayEnvelopeRoutedToRightNode(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	fo := startFakeObserver(t, n)
	p := startProxy(t, n)
	a := startFakeNode(t, n, message.MakeID("10.0.0.1", 7000))
	b := startFakeNode(t, n, message.MakeID("10.0.0.2", 7000))

	deadline := time.Now().Add(3 * time.Second)
	for p.NodeCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if p.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", p.NodeCount())
	}

	trunk := <-fo.trunk
	inner := message.New(protocol.TypeCustom, obsID, 0, 0,
		protocol.Custom{Kind: 5}.Encode())
	var raw []byte
	raw = inner.AppendHeader(raw)
	raw = append(raw, inner.Payload()...)
	env := message.New(protocol.TypeRelay, obsID, 0, 0,
		protocol.Relay{Dest: b.id, Inner: raw}.Encode())
	if err := trunk.WriteMsg(env); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.received:
		if m.Type() != protocol.TypeCustom {
			t.Errorf("node B got %v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("command not routed to node B")
	}
	select {
	case m := <-a.received:
		t.Errorf("command leaked to node A: %v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestRelayToUnknownNodeDropped(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	fo := startFakeObserver(t, n)
	startProxy(t, n)
	trunk := <-func() chan interface {
		WriteMsg(*message.Msg) error
	} {
		// Trunk is established during Start; wait for the hello to land.
		return fo.trunk
	}()
	inner := message.New(protocol.TypeCustom, obsID, 0, 0, nil)
	var raw []byte
	raw = inner.AppendHeader(raw)
	env := message.New(protocol.TypeRelay, obsID, 0, 0,
		protocol.Relay{Dest: message.MakeID("10.9.9.9", 1), Inner: raw}.Encode())
	if err := trunk.WriteMsg(env); err != nil {
		t.Fatal(err) // must not kill the proxy
	}
	// The proxy stays functional afterwards.
	node := startFakeNode(t, n, message.MakeID("10.0.0.1", 7000))
	node.send(t, message.New(protocol.TypeBoot, node.id, 0, 0, nil))
	select {
	case <-fo.received:
	case <-time.After(3 * time.Second):
		t.Fatal("proxy died after bad relay")
	}
}

func TestNodeReconnectReplacesRing(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	startFakeObserver(t, n)
	p := startProxy(t, n)
	id := message.MakeID("10.0.0.1", 7000)
	first := startFakeNode(t, n, id)
	deadline := time.Now().Add(3 * time.Second)
	for p.NodeCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	_ = first.conn.Close()
	second := startFakeNode(t, n, id)
	_ = second
	time.Sleep(100 * time.Millisecond)
	if got := p.NodeCount(); got != 1 {
		t.Errorf("NodeCount after reconnect = %d, want 1", got)
	}
}

func TestProxyStartFailsWithoutObserver(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	p, err := proxy.New(proxy.Config{
		ID:        proxyID,
		Observer:  obsID, // nothing listening
		Transport: engine.VNet{Net: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("Start succeeded with no observer")
	}
}
