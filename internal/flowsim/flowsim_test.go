package flowsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const kb = 1024.0

// fig6Net builds the seven-node topology of Fig. 6: A->{B,C}, B->{D,F},
// C->{D,G}, D->E, E->{F,G}, with A's per-node total bandwidth at 400 KBps.
func fig6Net(removeB, removeG bool) (*Net, int) {
	n := New()
	n.AddNode("A", NodeCaps{Total: 400 * kb})
	for _, v := range []string{"B", "C", "D", "E", "F", "G"} {
		n.AddNode(v, NodeCaps{})
	}
	edges := [][2]string{
		{"A", "B"}, {"A", "C"}, {"B", "D"}, {"B", "F"},
		{"C", "D"}, {"C", "G"}, {"D", "E"}, {"E", "F"}, {"E", "G"},
	}
	var kept [][2]string
	for _, e := range edges {
		if removeB && (e[0] == "B" || e[1] == "B") {
			continue
		}
		if removeG && (e[0] == "G" || e[1] == "G") {
			continue
		}
		kept = append(kept, e)
	}
	sess := n.AddSession(Session{Source: "A", Edges: kept})
	return n, sess
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 0.01*math.Max(want, 1) {
		t.Errorf("%s = %.1f, want %.1f", name, got/kb, want/kb)
	}
}

func TestFig6aConvergence(t *testing.T) {
	n, sess := fig6Net(false, false)
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	// Per-copy rate 200 KBps: A's total 400 split across two copies.
	approx(t, "session rate", res.SessionRates[sess], 200*kb)
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"B", "F"}, {"C", "D"}, {"C", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 200*kb)
	}
	// DE, EF, EG carry two copies each.
	for _, e := range [][2]string{{"D", "E"}, {"E", "F"}, {"E", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 400*kb)
	}
}

func TestFig6bBackPressureFromUplink(t *testing.T) {
	n, sess := fig6Net(false, false)
	n.AddNode("D", NodeCaps{Up: 30 * kb})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	// D's 30 KBps uplink carries two copies: 15 each; back pressure
	// throttles the entire tree to 15 per copy.
	approx(t, "session rate", res.SessionRates[sess], 15*kb)
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"B", "F"}, {"C", "D"}, {"C", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 15*kb)
	}
	for _, e := range [][2]string{{"D", "E"}, {"E", "F"}, {"E", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 30*kb)
	}
}

func TestFig6cTerminateB(t *testing.T) {
	n, sess := fig6Net(true, false)
	n.AddNode("D", NodeCaps{Up: 30 * kb})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "session rate", res.SessionRates[sess], 30*kb)
	for _, e := range [][2]string{{"A", "C"}, {"C", "D"}, {"C", "G"}, {"D", "E"}, {"E", "F"}, {"E", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 30*kb)
	}
}

func TestFig6dTerminateG(t *testing.T) {
	n, _ := fig6Net(true, true)
	n.AddNode("D", NodeCaps{Up: 30 * kb})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	// F is still served via C, D, E at 30 KBps.
	approx(t, "F inflow", res.NodeInRates["F"], 30*kb)
}

func TestFig7aLargeBuffersLocalizeBottleneck(t *testing.T) {
	n, _ := fig6Net(false, false)
	n.AddNode("D", NodeCaps{Up: 30 * kb})
	res, err := n.Solve(Buffered)
	if err != nil {
		t.Fatal(err)
	}
	// Upstream of D is unaffected; only DE, EF, EG see the bottleneck.
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"B", "F"}, {"C", "D"}, {"C", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 200*kb)
	}
	for _, e := range [][2]string{{"D", "E"}, {"E", "F"}, {"E", "G"}} {
		approx(t, e[0]+e[1], res.EdgeRate(e[0], e[1]), 30*kb)
	}
}

func TestFig7bPerLinkCapIsolated(t *testing.T) {
	n, _ := fig6Net(false, false)
	n.AddNode("D", NodeCaps{Up: 30 * kb})
	n.SetLinkCap("E", "F", 15*kb)
	res, err := n.Solve(Buffered)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "EF", res.EdgeRate("E", "F"), 15*kb)
	approx(t, "EG", res.EdgeRate("E", "G"), 30*kb) // unaffected
	approx(t, "AB", res.EdgeRate("A", "B"), 200*kb)
}

func TestFig8aSplitStreamsBuffered(t *testing.T) {
	// Fig. 8(a): A splits streams a and b; D's 200 KBps uplink halves
	// both; F and G end up with 300 KBps effective.
	n := New()
	n.AddNode("A", NodeCaps{Total: 400 * kb})
	n.AddNode("D", NodeCaps{Up: 200 * kb})
	for _, v := range []string{"B", "C", "E", "F", "G"} {
		n.AddNode(v, NodeCaps{})
	}
	n.AddSession(Session{Source: "A", Edges: [][2]string{
		{"A", "B"}, {"B", "D"}, {"B", "F"}, {"D", "E"}, {"E", "G"},
	}})
	n.AddSession(Session{Source: "A", Edges: [][2]string{
		{"A", "C"}, {"C", "D"}, {"C", "G"}, {"D", "E"}, {"E", "F"},
	}})
	res, err := n.Solve(Buffered)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "AB", res.EdgeRate("A", "B"), 200*kb)
	approx(t, "AC", res.EdgeRate("A", "C"), 200*kb)
	approx(t, "DE", res.EdgeRate("D", "E"), 200*kb) // both streams, halved
	approx(t, "EF", res.EdgeRate("E", "F"), 100*kb)
	approx(t, "EG", res.EdgeRate("E", "G"), 100*kb)
	approx(t, "F effective", res.NodeInRates["F"], 300*kb)
	approx(t, "G effective", res.NodeInRates["G"], 300*kb)
}

func TestTwoSessionsShareLinkMaxMin(t *testing.T) {
	n := New()
	for _, v := range []string{"S1", "S2", "M", "R"} {
		n.AddNode(v, NodeCaps{})
	}
	n.SetLinkCap("M", "R", 100*kb)
	a := n.AddSession(Session{Source: "S1", Edges: [][2]string{{"S1", "M"}, {"M", "R"}}})
	b := n.AddSession(Session{Source: "S2", Edges: [][2]string{{"S2", "M"}, {"M", "R"}}})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "session a", res.SessionRates[a], 50*kb)
	approx(t, "session b", res.SessionRates[b], 50*kb)
	approx(t, "MR", res.EdgeRate("M", "R"), 100*kb)
}

func TestSourceRateCap(t *testing.T) {
	n := New()
	n.AddNode("S", NodeCaps{})
	n.AddNode("R", NodeCaps{})
	sess := n.AddSession(Session{Source: "S", Edges: [][2]string{{"S", "R"}}, Rate: 42 * kb})
	for _, mode := range []Mode{BackPressure, Buffered} {
		res, err := n.Solve(mode)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "capped rate", res.SessionRates[sess], 42*kb)
		approx(t, "SR", res.EdgeRate("S", "R"), 42*kb)
	}
}

func TestUnlimitedSessionReportsInf(t *testing.T) {
	n := New()
	n.AddNode("S", NodeCaps{})
	n.AddNode("R", NodeCaps{})
	sess := n.AddSession(Session{Source: "S", Edges: [][2]string{{"S", "R"}}})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.SessionRates[sess], 1) {
		t.Errorf("unconstrained session rate = %v, want +Inf", res.SessionRates[sess])
	}
}

func TestCycleDetection(t *testing.T) {
	n := New()
	for _, v := range []string{"A", "B"} {
		n.AddNode(v, NodeCaps{})
	}
	n.AddSession(Session{Source: "A", Edges: [][2]string{{"A", "B"}, {"B", "A"}}})
	if _, err := n.Solve(BackPressure); err == nil {
		t.Error("cyclic session solved in BackPressure mode")
	}
	if _, err := n.Solve(Buffered); err == nil {
		t.Error("cyclic session solved in Buffered mode")
	}
}

func TestDownCapThrottlesReceiver(t *testing.T) {
	n := New()
	n.AddNode("S", NodeCaps{})
	n.AddNode("R", NodeCaps{Down: 64 * kb})
	sess := n.AddSession(Session{Source: "S", Edges: [][2]string{{"S", "R"}}})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "down-capped", res.SessionRates[sess], 64*kb)

	res, err = n.Solve(Buffered)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "down-capped buffered", res.EdgeRate("S", "R"), 64*kb)
}

func TestUnknownModeRejected(t *testing.T) {
	n := New()
	if _, err := n.Solve(Mode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDiamondUnitCounting(t *testing.T) {
	// S -> {X, Y} -> Z -> R: Z receives two copies and forwards both.
	n := New()
	for _, v := range []string{"S", "X", "Y", "Z", "R"} {
		n.AddNode(v, NodeCaps{})
	}
	n.AddNode("S", NodeCaps{Up: 100 * kb})
	sess := n.AddSession(Session{Source: "S", Edges: [][2]string{
		{"S", "X"}, {"S", "Y"}, {"X", "Z"}, {"Y", "Z"}, {"Z", "R"},
	}})
	res, err := n.Solve(BackPressure)
	if err != nil {
		t.Fatal(err)
	}
	// S's 100 across two copies: 50 each; ZR carries both copies at 100.
	approx(t, "session rate", res.SessionRates[sess], 50*kb)
	approx(t, "ZR", res.EdgeRate("Z", "R"), 100*kb)
	approx(t, "R inflow", res.NodeInRates["R"], 100*kb)
}

// TestConservationProperty checks, for random fan-out trees under a
// random source-side cap, that (a) no constraint is exceeded and (b) in
// BackPressure mode every copy of a session carries the same rate.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, capHint uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		// A random tree of 6 nodes rooted at S.
		names := []string{"S", "A", "B", "C", "D", "E"}
		for _, v := range names {
			n.AddNode(v, NodeCaps{})
		}
		srcCap := float64(capHint%1000+1) * kb
		n.AddNode("S", NodeCaps{Up: srcCap})
		var edges [][2]string
		for i := 1; i < len(names); i++ {
			parent := names[rng.Intn(i)]
			edges = append(edges, [2]string{parent, names[i]})
		}
		sess := n.AddSession(Session{Source: "S", Edges: edges})
		res, err := n.Solve(BackPressure)
		if err != nil {
			return false
		}
		// Source up constraint holds (with float slack).
		var sUp float64
		for _, e := range edges {
			if e[0] == "S" {
				sUp += res.EdgeRate(e[0], e[1])
			}
		}
		if sUp > srcCap*1.0001 {
			return false
		}
		// Per-copy uniformity: every edge rate is an integer multiple of
		// the session rate (units × rate).
		r := res.SessionRates[sess]
		if r <= 0 {
			return false
		}
		for _, e := range edges {
			got := res.EdgeRate(e[0], e[1])
			units := got / r
			rounded := float64(int(units + 0.5))
			if units < 0.999 || abs(units-rounded) > 0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
