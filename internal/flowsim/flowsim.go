// Package flowsim is a flow-level steady-state throughput solver for
// overlay dissemination topologies under iOverlay-style bandwidth
// emulation. It models the two buffer regimes the paper evaluates:
//
//   - BackPressure (small per-node buffers): a multicast session's entire
//     replication tree converges to a single per-copy rate — the paper's
//     "back pressure" effect where a bottleneck throttles the whole
//     session (Fig. 6). Multiple sessions share constraints max-min
//     fairly via progressive filling.
//
//   - Buffered (very large buffers): upstream links are not throttled by
//     downstream bottlenecks within the measurement horizon; each node
//     forwards at the minimum of its inflow and its local fair share
//     (Fig. 7).
//
// The solver is used to cross-validate the live engine measurements of
// Figs. 6–8 and to predict the shapes of the large-scale experiments.
package flowsim

import (
	"fmt"
	"math"
	"sort"
)

// Unlimited disables a cap.
const Unlimited float64 = 0

// NodeCaps is a node's emulated bandwidth availability, in bytes/sec.
type NodeCaps struct {
	Total float64
	Up    float64
	Down  float64
}

// Session is one dissemination session: a source plus the directed edges
// its data flows along (a connected DAG rooted at Source). Copies are
// made at every node with multiple out-edges; parallel in-edges carry
// independent copies (no merging), as in the paper's test engine
// configuration. Rate caps the per-copy source rate (Unlimited =
// back-to-back).
type Session struct {
	Source string
	Edges  [][2]string
	Rate   float64
}

// Mode selects the buffer regime.
type Mode int

// The two buffer regimes.
const (
	BackPressure Mode = iota + 1
	Buffered
)

// Net is a topology under construction.
type Net struct {
	caps     map[string]NodeCaps
	linkCaps map[[2]string]float64
	sessions []Session
}

// New returns an empty network.
func New() *Net {
	return &Net{
		caps:     make(map[string]NodeCaps),
		linkCaps: make(map[[2]string]float64),
	}
}

// AddNode declares a node with its emulated caps (zero fields mean
// unlimited).
func (n *Net) AddNode(name string, caps NodeCaps) {
	n.caps[name] = caps
}

// SetLinkCap declares an emulated per-link bandwidth cap.
func (n *Net) SetLinkCap(from, to string, cap float64) {
	n.linkCaps[[2]string{from, to}] = cap
}

// AddSession registers a dissemination session and returns its index.
func (n *Net) AddSession(s Session) int {
	n.sessions = append(n.sessions, s)
	return len(n.sessions) - 1
}

// Result reports solved steady-state rates.
type Result struct {
	// EdgeRates maps (from, to) to total bytes/sec on that overlay link,
	// summed over sessions and copies.
	EdgeRates map[[2]string]float64
	// SessionRates maps session index to the per-copy rate (BackPressure
	// mode) or the source's per-copy emission rate (Buffered mode).
	SessionRates []float64
	// NodeInRates maps node to total incoming bytes/sec.
	NodeInRates map[string]float64
}

// EdgeRate is a convenience accessor.
func (r *Result) EdgeRate(from, to string) float64 {
	return r.EdgeRates[[2]string{from, to}]
}

// units computes, for one session, how many independent copies traverse
// each edge: copies into a node fan out to every out-edge.
func unitsOn(s Session) (map[[2]string]float64, error) {
	out := make(map[string][][2]string)
	indeg := make(map[string]int)
	nodes := map[string]bool{s.Source: true}
	for _, e := range s.Edges {
		out[e[0]] = append(out[e[0]], e)
		indeg[e[1]]++
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	// Kahn topological order.
	var queue []string
	for v := range nodes {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	sort.Strings(queue)
	unitsIn := map[string]float64{s.Source: 1}
	units := make(map[[2]string]float64)
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, e := range out[v] {
			units[e] += unitsIn[v]
			unitsIn[e[1]] += unitsIn[v]
			indeg[e[1]]--
			if indeg[e[1]] == 0 {
				queue = append(queue, e[1])
			}
		}
	}
	if seen != len(nodes) {
		return nil, fmt.Errorf("flowsim: session rooted at %s has a cycle", s.Source)
	}
	return units, nil
}

// constraint is one shared capacity: cap and per-session unit loads.
type constraint struct {
	cap   float64
	loads []float64 // per session
}

// Solve computes the steady state in the given mode.
func (n *Net) Solve(mode Mode) (*Result, error) {
	switch mode {
	case BackPressure:
		return n.solveBackPressure()
	case Buffered:
		return n.solveBuffered()
	default:
		return nil, fmt.Errorf("flowsim: unknown mode %d", mode)
	}
}

// solveBackPressure runs progressive filling: every session's per-copy
// rate grows in lockstep; a session freezes when any constraint it loads
// saturates.
func (n *Net) solveBackPressure() (*Result, error) {
	S := len(n.sessions)
	unitMaps := make([]map[[2]string]float64, S)
	for i, s := range n.sessions {
		u, err := unitsOn(s)
		if err != nil {
			return nil, err
		}
		unitMaps[i] = u
	}
	var cons []*constraint
	addCon := func(cap float64, load func(i int) float64) {
		if cap <= 0 {
			return
		}
		c := &constraint{cap: cap, loads: make([]float64, S)}
		any := false
		for i := 0; i < S; i++ {
			c.loads[i] = load(i)
			if c.loads[i] > 0 {
				any = true
			}
		}
		if any {
			cons = append(cons, c)
		}
	}
	// Per-link caps.
	for link, cap := range n.linkCaps {
		addCon(cap, func(i int) float64 { return unitMaps[i][link] })
	}
	// Per-node caps.
	for node, caps := range n.caps {
		upLoad := func(i int) float64 {
			var sum float64
			for e, u := range unitMaps[i] {
				if e[0] == node {
					sum += u
				}
			}
			return sum
		}
		downLoad := func(i int) float64 {
			var sum float64
			for e, u := range unitMaps[i] {
				if e[1] == node {
					sum += u
				}
			}
			return sum
		}
		addCon(caps.Up, upLoad)
		addCon(caps.Down, downLoad)
		addCon(caps.Total, func(i int) float64 { return upLoad(i) + downLoad(i) })
	}
	// Source rate caps become single-session constraints.
	for i, s := range n.sessions {
		if s.Rate > 0 {
			idx := i
			addCon(s.Rate, func(j int) float64 {
				if j == idx {
					return 1
				}
				return 0
			})
		}
	}

	rates := make([]float64, S)
	active := make([]bool, S)
	for i := range active {
		active[i] = true
	}
	for anyActive(active) {
		// How much can every active session still grow, uniformly?
		step := math.Inf(1)
		for _, c := range cons {
			used, growth := 0.0, 0.0
			for i := 0; i < S; i++ {
				used += c.loads[i] * rates[i]
				if active[i] {
					growth += c.loads[i]
				}
			}
			if growth == 0 {
				continue
			}
			if s := (c.cap - used) / growth; s < step {
				step = s
			}
		}
		if math.IsInf(step, 1) {
			// No constraint limits the remaining sessions; they are
			// genuinely unlimited. Cap for a finite answer.
			step = math.MaxFloat64 / 4
			for i := range rates {
				if active[i] {
					rates[i] = math.Inf(1)
					active[i] = false
				}
			}
			break
		}
		if step > 0 {
			for i := range rates {
				if active[i] {
					rates[i] += step
				}
			}
		}
		// Freeze sessions loading any saturated constraint.
		const eps = 1e-9
		for _, c := range cons {
			used := 0.0
			for i := 0; i < S; i++ {
				used += c.loads[i] * rates[i]
			}
			if used+eps >= c.cap {
				for i := 0; i < S; i++ {
					if c.loads[i] > 0 {
						active[i] = false
					}
				}
			}
		}
		if step <= 0 {
			break
		}
	}

	res := &Result{
		EdgeRates:    make(map[[2]string]float64),
		SessionRates: rates,
		NodeInRates:  make(map[string]float64),
	}
	for i := range n.sessions {
		for e, u := range unitMaps[i] {
			r := u * rates[i]
			res.EdgeRates[e] += r
			res.NodeInRates[e[1]] += r
		}
	}
	return res, nil
}

func anyActive(active []bool) bool {
	for _, a := range active {
		if a {
			return true
		}
	}
	return false
}

// flow is one (session, edge) stream bundle in buffered mode.
type flow struct {
	session int
	edge    [2]string
	units   float64
	demand  float64 // per-unit inflow rate at the sender
	rate    float64 // solved per-unit rate
}

// solveBuffered processes nodes in topological order of the union DAG,
// waterfilling each node's out-flows within its local sender-side caps,
// then clamping by receiver-side caps.
func (n *Net) solveBuffered() (*Result, error) {
	type edgeKey = [2]string
	unitMaps := make([]map[edgeKey]float64, len(n.sessions))
	outEdges := make(map[string]map[int][]edgeKey) // node -> session -> edges
	indeg := make(map[string]int)
	nodes := make(map[string]bool)
	for i, s := range n.sessions {
		u, err := unitsOn(s)
		if err != nil {
			return nil, err
		}
		unitMaps[i] = u
		nodes[s.Source] = true
		for _, e := range s.Edges {
			nodes[e[0]], nodes[e[1]] = true, true
			if outEdges[e[0]] == nil {
				outEdges[e[0]] = make(map[int][]edgeKey)
			}
			outEdges[e[0]][i] = append(outEdges[e[0]][i], e)
			indeg[e[1]]++
		}
	}
	var order []string
	var queue []string
	for v := range nodes {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	sort.Strings(queue)
	deg := make(map[string]int, len(indeg))
	for k, v := range indeg {
		deg[k] = v
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for sess := range outEdges[v] {
			for _, e := range outEdges[v][sess] {
				deg[e[1]]--
				if deg[e[1]] == 0 {
					queue = append(queue, e[1])
				}
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("flowsim: union topology has a cycle")
	}

	// Per-session per-node inflow per unit (the replication source rate).
	inRate := make([]map[string]float64, len(n.sessions))
	for i, s := range n.sessions {
		inRate[i] = make(map[string]float64)
		src := s.Rate
		if src <= 0 {
			src = math.MaxFloat64 / 8
		}
		inRate[i][s.Source] = src
	}

	res := &Result{
		EdgeRates:    make(map[edgeKey]float64),
		SessionRates: make([]float64, len(n.sessions)),
		NodeInRates:  make(map[string]float64),
	}

	for _, v := range order {
		// Collect this node's out-flows with demands.
		var flows []*flow
		for sess, edges := range outEdges[v] {
			for _, e := range edges {
				d := inRate[sess][v]
				flows = append(flows, &flow{
					session: sess, edge: e,
					units:  unitMaps[sess][e],
					demand: d,
				})
			}
		}
		if len(flows) == 0 {
			continue
		}
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].edge != flows[j].edge {
				return flows[i].edge[0] < flows[j].edge[0] ||
					(flows[i].edge[0] == flows[j].edge[0] && flows[i].edge[1] < flows[j].edge[1])
			}
			return flows[i].session < flows[j].session
		})
		for _, f := range flows {
			f.rate = f.demand
		}
		// Per-link caps first.
		byEdge := make(map[edgeKey][]*flow)
		for _, f := range flows {
			byEdge[f.edge] = append(byEdge[f.edge], f)
		}
		for e, fs := range byEdge {
			if cap, ok := n.linkCaps[e]; ok && cap > 0 {
				waterfill(fs, cap)
			}
		}
		// Sender-side node caps: up, and total minus inflow usage.
		caps := n.caps[v]
		if caps.Up > 0 {
			waterfill(flows, caps.Up)
		}
		if caps.Total > 0 {
			inUsed := res.NodeInRates[v]
			budget := caps.Total - inUsed
			if budget < 0 {
				budget = 0
			}
			waterfill(flows, budget)
		}
		// Receiver-side down/total clamp, proportional per receiver.
		byRecv := make(map[string][]*flow)
		for _, f := range flows {
			byRecv[f.edge[1]] = append(byRecv[f.edge[1]], f)
		}
		for recv, fs := range byRecv {
			rc := n.caps[recv]
			limit := math.Inf(1)
			if rc.Down > 0 {
				limit = rc.Down - res.NodeInRates[recv]
			}
			if rc.Total > 0 {
				if t := rc.Total - res.NodeInRates[recv]; t < limit {
					limit = t
				}
			}
			if !math.IsInf(limit, 1) {
				if limit < 0 {
					limit = 0
				}
				waterfill(fs, limit)
			}
		}
		// Commit: record edge rates and propagate inflow downstream.
		for _, f := range flows {
			total := f.rate * f.units
			res.EdgeRates[f.edge] += total
			res.NodeInRates[f.edge[1]] += total
			if cur, ok := inRate[f.session][f.edge[1]]; !ok || f.rate < cur {
				// A downstream node replicates at the per-copy rate it
				// receives; with multiple in-edges the copies are
				// independent, so track the per-unit rate of this edge
				// (approximate multiple in-edges by their mean).
				inRate[f.session][f.edge[1]] = f.rate
			}
		}
	}
	for i, s := range n.sessions {
		res.SessionRates[i] = inRate[i][s.Source]
		if res.SessionRates[i] >= math.MaxFloat64/16 {
			res.SessionRates[i] = math.Inf(1)
		}
	}
	return res, nil
}

// waterfill allocates cap across flows max-min fairly, each flow bounded
// by its current rate (demand); flow rates are reduced in place. Loads
// are weighted by units (a flow carrying u copies consumes u × rate).
func waterfill(flows []*flow, cap float64) {
	if cap <= 0 {
		for _, f := range flows {
			f.rate = 0
		}
		return
	}
	// Progressive filling on per-unit rates.
	remaining := cap
	unfrozen := append([]*flow(nil), flows...)
	level := 0.0
	for len(unfrozen) > 0 {
		weight := 0.0
		for _, f := range unfrozen {
			weight += f.units
		}
		if weight == 0 {
			break
		}
		// Next event: either a flow hits its demand, or cap exhausts.
		minDemand := math.Inf(1)
		for _, f := range unfrozen {
			if f.rate < minDemand {
				minDemand = f.rate
			}
		}
		capLevel := level + remaining/weight
		if capLevel <= minDemand {
			for _, f := range unfrozen {
				f.rate = capLevel
			}
			return
		}
		// Freeze all flows at the minimum demand.
		delta := minDemand - level
		remaining -= delta * weight
		level = minDemand
		next := unfrozen[:0]
		for _, f := range unfrozen {
			if f.rate > level {
				next = append(next, f)
			}
		}
		unfrozen = next
	}
}
