package dht

import (
	"sync"
	"time"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

// Protocol message types of the DHT.
const (
	// TypeLookup routes a request toward the owner of a key.
	TypeLookup message.Type = 130
	// TypeLookupDone carries the owner's answer back to the origin.
	TypeLookupDone message.Type = 131
	// TypeGetPred asks a node for its predecessor (stabilization).
	TypeGetPred message.Type = 132
	// TypePredInfo answers TypeGetPred.
	TypePredInfo message.Type = 133
	// TypeNotify proposes the sender as a predecessor.
	TypeNotify message.Type = 134
)

// Lookup purposes.
const (
	purposeJoin uint32 = iota + 1
	purposeFinger
	purposePut
	purposeGet
)

// lookupTTL bounds routing hops; at 64 ring bits greedy routing needs at
// most ~64 hops, so expiry indicates an inconsistent ring and the
// current node answers as a best effort.
const lookupTTL = 80

// Tick kinds.
const (
	tickStabilize = 1
	tickFixFinger = 2
)

// Default maintenance cadence.
const (
	DefaultStabilizeInterval = 60 * time.Millisecond
	DefaultFingerInterval    = 40 * time.Millisecond
)

// Lookup is the TypeLookup payload.
type Lookup struct {
	Key     uint64
	Origin  message.NodeID
	ReqID   uint32
	Purpose uint32
	Aux     uint32 // finger index for purposeFinger
	Hops    uint32
	Value   []byte // payload for purposePut
}

// Encode serializes the lookup.
func (l Lookup) Encode() []byte {
	w := protocol.NewWriter(40 + len(l.Value))
	w.U64(l.Key).ID(l.Origin).U32(l.ReqID).U32(l.Purpose).U32(l.Aux).U32(l.Hops)
	w.U32(uint32(len(l.Value)))
	out := w.Bytes()
	return append(out, l.Value...)
}

// DecodeLookup parses a lookup payload.
func DecodeLookup(b []byte) (Lookup, error) {
	r := protocol.NewReader(b)
	l := Lookup{
		Key: r.U64(), Origin: r.ID(), ReqID: r.U32(),
		Purpose: r.U32(), Aux: r.U32(), Hops: r.U32(),
	}
	n := r.U32()
	if err := r.Err(); err != nil {
		return l, err
	}
	if int(n) > r.Remaining() {
		return l, protocol.ErrTruncated
	}
	l.Value = b[len(b)-r.Remaining():][:n]
	return l, nil
}

// LookupDone is the TypeLookupDone payload: the owner answers the origin.
type LookupDone struct {
	ReqID   uint32
	Purpose uint32
	Aux     uint32
	Key     uint64
	Owner   message.NodeID
	Found   bool
	Value   []byte
}

// Encode serializes the answer.
func (d LookupDone) Encode() []byte {
	w := protocol.NewWriter(40 + len(d.Value))
	found := uint32(0)
	if d.Found {
		found = 1
	}
	w.U32(d.ReqID).U32(d.Purpose).U32(d.Aux).U64(d.Key).ID(d.Owner).U32(found)
	w.U32(uint32(len(d.Value)))
	out := w.Bytes()
	return append(out, d.Value...)
}

// DecodeLookupDone parses an answer payload.
func DecodeLookupDone(b []byte) (LookupDone, error) {
	r := protocol.NewReader(b)
	d := LookupDone{
		ReqID: r.U32(), Purpose: r.U32(), Aux: r.U32(), Key: r.U64(),
		Owner: r.ID(), Found: r.U32() == 1,
	}
	n := r.U32()
	if err := r.Err(); err != nil {
		return d, err
	}
	if int(n) > r.Remaining() {
		return d, protocol.ErrTruncated
	}
	d.Value = b[len(b)-r.Remaining():][:n]
	return d, nil
}

// PredInfo is the TypePredInfo payload.
type PredInfo struct {
	Pred message.NodeID // zero when unknown
}

// Encode serializes the reply.
func (p PredInfo) Encode() []byte {
	return protocol.NewWriter(8).ID(p.Pred).Bytes()
}

// DecodePredInfo parses the reply.
func DecodePredInfo(b []byte) (PredInfo, error) {
	r := protocol.NewReader(b)
	p := PredInfo{Pred: r.ID()}
	return p, r.Err()
}

// GetResult is delivered to the Get caller.
type GetResult struct {
	Key   uint64
	Found bool
	Value []byte
	Owner message.NodeID
}

// Node is the Chord-style DHT algorithm.
type Node struct {
	algorithm.Base

	// StabilizeInterval and FingerInterval override the maintenance
	// cadence.
	StabilizeInterval time.Duration
	FingerInterval    time.Duration
	// OnGet, when set, receives Get results on the engine goroutine.
	OnGet func(GetResult)

	selfKey uint64

	mu        sync.Mutex
	succ      message.NodeID
	succKey   uint64
	pred      message.NodeID
	predKey   uint64
	hasPred   bool
	joined    bool
	fingers   []message.NodeID
	fingerKey []uint64
	nextFix   int
	store     map[uint64][]byte
	nextReq   uint32
	puts      int64
	gets      int64
}

var _ engine.Algorithm = (*Node)(nil)

// Attach initializes ring state: a lone node is its own successor.
func (n *Node) Attach(api engine.API) {
	n.Base.Attach(api)
	if n.StabilizeInterval <= 0 {
		n.StabilizeInterval = DefaultStabilizeInterval
	}
	if n.FingerInterval <= 0 {
		n.FingerInterval = DefaultFingerInterval
	}
	n.selfKey = NodeKey(api.ID())
	n.mu.Lock()
	n.succ = api.ID()
	n.succKey = n.selfKey
	n.fingers = make([]message.NodeID, ringBits)
	n.fingerKey = make([]uint64, ringBits)
	n.store = make(map[uint64][]byte)
	n.mu.Unlock()
	api.After(n.StabilizeInterval, tickStabilize)
	api.After(n.FingerInterval, tickFixFinger)
}

// ----- observability (safe from any goroutine) -----

// SelfKey reports this node's ring position.
func (n *Node) SelfKey() uint64 { return n.selfKey }

// Successor reports the current successor.
func (n *Node) Successor() message.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// Predecessor reports the current predecessor, if known.
func (n *Node) Predecessor() (message.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred, n.hasPred
}

// StoredKeys reports how many keys this node holds.
func (n *Node) StoredKeys() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// Joined reports whether the node has entered a ring.
func (n *Node) Joined() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joined
}

// ----- client operations (engine goroutine only) -----

// Join enters the ring known to contact.
func (n *Node) Join(contact message.NodeID) {
	l := Lookup{Key: n.selfKey, Origin: n.API.ID(), Purpose: purposeJoin, ReqID: n.reqID()}
	n.API.SendNew(n.API.NewControl(TypeLookup, 0, l.Encode()), contact)
}

// Put stores value under key, routed to the key's owner.
func (n *Node) Put(key uint64, value []byte) {
	l := Lookup{Key: key, Origin: n.API.ID(), Purpose: purposePut,
		ReqID: n.reqID(), Value: value}
	n.route(l, message.NodeID{})
}

// Get retrieves the value for key; the result arrives at OnGet.
func (n *Node) Get(key uint64) {
	l := Lookup{Key: key, Origin: n.API.ID(), Purpose: purposeGet, ReqID: n.reqID()}
	n.route(l, message.NodeID{})
}

func (n *Node) reqID() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextReq++
	return n.nextReq
}

// ----- message handling -----

// Process implements the algorithm.
func (n *Node) Process(m *message.Msg) engine.Verdict {
	switch m.Type() {
	case protocol.TypeJoin:
		if j, err := protocol.DecodeJoin(m.Payload()); err == nil && !j.Contact.IsZero() {
			n.Join(j.Contact)
		}
	case TypeLookup:
		if l, err := DecodeLookup(m.Payload()); err == nil {
			l.Value = append([]byte(nil), l.Value...) // outlive the message
			n.route(l, m.Sender())
		}
	case TypeLookupDone:
		if d, err := DecodeLookupDone(m.Payload()); err == nil {
			n.onDone(d)
		}
	case TypeGetPred:
		n.mu.Lock()
		p := PredInfo{}
		if n.hasPred {
			p.Pred = n.pred
		}
		n.mu.Unlock()
		n.API.SendNew(n.API.NewControl(TypePredInfo, 0, p.Encode()), m.Sender())
	case TypePredInfo:
		if p, err := DecodePredInfo(m.Payload()); err == nil {
			n.onPredInfo(p)
		}
	case TypeNotify:
		n.onNotify(m.Sender())
	case protocol.TypeTick:
		n.onTick(m)
	case protocol.TypeLinkDown:
		n.onLinkDown(m)
	default:
		return n.Base.Process(m)
	}
	return engine.Done
}

// route forwards a lookup toward the key's owner, executing it when this
// node owns the key.
func (n *Node) route(l Lookup, from message.NodeID) {
	self := n.API.ID()
	n.mu.Lock()
	succ, succKey := n.succ, n.succKey
	owner := succ == self || // lone node owns everything
		(n.hasPred && betweenIncl(n.predKey, l.Key, n.selfKey))
	n.mu.Unlock()

	if owner || l.Hops >= lookupTTL {
		n.execute(l)
		return
	}
	if betweenIncl(n.selfKey, l.Key, succKey) {
		// The successor owns it.
		if succ == self {
			n.execute(l)
			return
		}
		l.Hops++
		n.API.SendNew(n.API.NewControl(TypeLookup, 0, l.Encode()), succ)
		return
	}
	next := n.closestPreceding(l.Key, from)
	if next.IsZero() || next == self {
		next = succ
	}
	if next == self || next.IsZero() {
		n.execute(l)
		return
	}
	l.Hops++
	n.API.SendNew(n.API.NewControl(TypeLookup, 0, l.Encode()), next)
}

// closestPreceding scans the finger table for the closest node preceding
// key, skipping the link the lookup arrived on.
func (n *Node) closestPreceding(key uint64, exclude message.NodeID) message.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := ringBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f.IsZero() || f == exclude {
			continue
		}
		if between(n.selfKey, n.fingerKey[i], key) {
			return f
		}
	}
	if !n.succ.IsZero() && between(n.selfKey, n.succKey, key) {
		return n.succ
	}
	return message.NodeID{}
}

// execute performs a lookup's purpose at the owning node.
func (n *Node) execute(l Lookup) {
	self := n.API.ID()
	done := LookupDone{
		ReqID: l.ReqID, Purpose: l.Purpose, Aux: l.Aux,
		Key: l.Key, Owner: self,
	}
	switch l.Purpose {
	case purposePut:
		n.mu.Lock()
		n.store[l.Key] = append([]byte(nil), l.Value...)
		n.puts++
		n.mu.Unlock()
	case purposeGet:
		n.mu.Lock()
		v, ok := n.store[l.Key]
		n.gets++
		n.mu.Unlock()
		done.Found = ok
		done.Value = v
	case purposeJoin, purposeFinger:
		// The answer is simply the owner identity.
	}
	if l.Origin == self {
		n.onDone(done)
		return
	}
	n.API.SendNew(n.API.NewControl(TypeLookupDone, 0, done.Encode()), l.Origin)
}

// onDone consumes a lookup answer at the origin.
func (n *Node) onDone(d LookupDone) {
	switch d.Purpose {
	case purposeJoin:
		n.mu.Lock()
		n.succ = d.Owner
		n.succKey = NodeKey(d.Owner)
		n.joined = true
		n.mu.Unlock()
	case purposeFinger:
		idx := int(d.Aux)
		if idx >= 0 && idx < ringBits {
			n.mu.Lock()
			n.fingers[idx] = d.Owner
			n.fingerKey[idx] = NodeKey(d.Owner)
			n.mu.Unlock()
		}
	case purposeGet:
		if n.OnGet != nil {
			n.OnGet(GetResult{Key: d.Key, Found: d.Found, Value: d.Value, Owner: d.Owner})
		}
	case purposePut:
		// Fire-and-forget.
	}
}

// ----- ring maintenance -----

func (n *Node) onTick(m *message.Msg) {
	tk, err := protocol.DecodeTick(m.Payload())
	if err != nil {
		return
	}
	switch tk.Kind {
	case tickStabilize:
		n.stabilize()
		n.API.After(n.StabilizeInterval, tickStabilize)
	case tickFixFinger:
		n.fixNextFinger()
		n.API.After(n.FingerInterval, tickFixFinger)
	}
}

// stabilize runs Chord's periodic successor verification: ask the
// successor for its predecessor and adopt it when closer, then notify.
func (n *Node) stabilize() {
	self := n.API.ID()
	n.mu.Lock()
	succ := n.succ
	n.mu.Unlock()
	if succ == self {
		// Self-successor: the bootstrap node of a ring. Once a joiner has
		// notified us, it is our predecessor — and on a degenerate
		// one-known-node ring, also our successor (the classic Chord
		// bootstrap step). Without a predecessor, try joining any known
		// host to merge rings.
		n.mu.Lock()
		if n.hasPred {
			n.succ = n.pred
			n.succKey = n.predKey
		}
		lone := n.succ == self
		n.mu.Unlock()
		if lone && n.Known.Len() > 0 {
			n.Join(n.Known.Random(1, n.Rng)[0])
		}
		return
	}
	n.API.SendNew(n.API.NewControl(TypeGetPred, 0, nil), succ)
	n.API.SendNew(n.API.NewControl(TypeNotify, 0, nil), succ)
}

func (n *Node) onPredInfo(p PredInfo) {
	if p.Pred.IsZero() || p.Pred == n.API.ID() {
		return
	}
	k := NodeKey(p.Pred)
	n.mu.Lock()
	if between(n.selfKey, k, n.succKey) {
		n.succ = p.Pred
		n.succKey = k
	}
	n.mu.Unlock()
}

func (n *Node) onNotify(candidate message.NodeID) {
	if candidate == n.API.ID() {
		return
	}
	k := NodeKey(candidate)
	n.mu.Lock()
	if !n.hasPred || between(n.predKey, k, n.selfKey) {
		n.pred = candidate
		n.predKey = k
		n.hasPred = true
	}
	n.mu.Unlock()
}

// fixNextFinger refreshes one finger per tick via a routed lookup.
func (n *Node) fixNextFinger() {
	self := n.API.ID()
	n.mu.Lock()
	if n.succ == self {
		n.mu.Unlock()
		return
	}
	i := n.nextFix
	n.nextFix = (n.nextFix + 1) % ringBits
	n.mu.Unlock()
	l := Lookup{
		Key: fingerStart(n.selfKey, i), Origin: n.API.ID(),
		Purpose: purposeFinger, Aux: uint32(i), ReqID: n.reqID(),
	}
	n.route(l, message.NodeID{})
}

// onLinkDown clears failed neighbors so stabilization can repair the
// ring around them.
func (n *Node) onLinkDown(m *message.Msg) {
	le, err := protocol.DecodeLinkEvent(m.Payload())
	if err != nil {
		return
	}
	self := n.API.ID()
	n.Known.Remove(le.Peer)
	n.mu.Lock()
	if n.succ == le.Peer {
		// Fall back to the first live finger, or ourselves.
		n.succ = self
		n.succKey = n.selfKey
		for i := 0; i < ringBits; i++ {
			if !n.fingers[i].IsZero() && n.fingers[i] != le.Peer {
				n.succ = n.fingers[i]
				n.succKey = n.fingerKey[i]
				break
			}
		}
	}
	if n.hasPred && n.pred == le.Peer {
		n.hasPred = false
	}
	for i := 0; i < ringBits; i++ {
		if n.fingers[i] == le.Peer {
			n.fingers[i] = message.NodeID{}
		}
	}
	n.mu.Unlock()
}
