package dht

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.5.%d", i), 7000)
}

func TestBetween(t *testing.T) {
	tests := []struct {
		a, k, b uint64
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false},
		{10, 20, 20, false},
		{10, 5, 20, false},
		// Wrapping interval.
		{20, 25, 10, true},
		{20, 5, 10, true},
		{20, 15, 10, false},
		// Degenerate: whole ring minus a.
		{10, 11, 10, true},
		{10, 10, 10, false},
	}
	for i, tt := range tests {
		if got := between(tt.a, tt.k, tt.b); got != tt.want {
			t.Errorf("case %d: between(%d,%d,%d) = %v", i, tt.a, tt.k, tt.b, got)
		}
	}
	if !betweenIncl(10, 20, 20) {
		t.Error("betweenIncl excludes the upper bound")
	}
}

func TestBetweenProperty(t *testing.T) {
	// For distinct a != b, any k is either in (a,b) or in (b,a) or equal
	// to an endpoint — the ring is partitioned.
	f := func(a, k, b uint64) bool {
		if a == b {
			return true
		}
		inAB := between(a, k, b)
		inBA := between(b, k, a)
		isEnd := k == a || k == b
		count := 0
		if inAB {
			count++
		}
		if inBA {
			count++
		}
		if isEnd {
			count++
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyHashingDeterministicAndSpread(t *testing.T) {
	if KeyOf([]byte("x")) != KeyOf([]byte("x")) {
		t.Error("KeyOf not deterministic")
	}
	if NodeKey(nid(1)) == NodeKey(nid(2)) {
		t.Error("distinct nodes hashed to the same key")
	}
	if KeyOf([]byte("a")) == KeyOf([]byte("b")) {
		t.Error("trivial collision")
	}
}

func TestLookupCodecRoundTrip(t *testing.T) {
	l := Lookup{Key: 99, Origin: nid(1), ReqID: 7, Purpose: purposePut,
		Aux: 3, Hops: 2, Value: []byte("v")}
	got, err := DecodeLookup(l.Encode())
	if err != nil || got.Key != 99 || got.Origin != nid(1) ||
		got.Purpose != purposePut || string(got.Value) != "v" {
		t.Errorf("lookup round trip = %+v, %v", got, err)
	}
	d := LookupDone{ReqID: 7, Purpose: purposeGet, Key: 99, Owner: nid(2),
		Found: true, Value: []byte("w")}
	gotD, err := DecodeLookupDone(d.Encode())
	if err != nil || !gotD.Found || gotD.Owner != nid(2) || string(gotD.Value) != "w" {
		t.Errorf("done round trip = %+v, %v", gotD, err)
	}
	p := PredInfo{Pred: nid(3)}
	gotP, err := DecodePredInfo(p.Encode())
	if err != nil || gotP != p {
		t.Errorf("pred round trip = %+v, %v", gotP, err)
	}
}

func newNode(self message.NodeID) (*Node, *algtest.FakeAPI) {
	api := algtest.New(self)
	n := &Node{}
	n.Attach(api)
	return n, api
}

func TestLoneNodeOwnsEverythingAndStoresLocally(t *testing.T) {
	n, _ := newNode(nid(1))
	if n.Successor() != nid(1) {
		t.Fatal("lone node's successor is not itself")
	}
	n.Put(12345, []byte("hello"))
	if n.StoredKeys() != 1 {
		t.Fatalf("StoredKeys = %d", n.StoredKeys())
	}
	var got *GetResult
	n.OnGet = func(r GetResult) { got = &r }
	n.Get(12345)
	if got == nil || !got.Found || string(got.Value) != "hello" {
		t.Errorf("Get = %+v", got)
	}
	n.Get(999)
	if got.Found {
		t.Error("missing key reported found")
	}
}

func TestJoinSendsLookupAndAdoptsSuccessor(t *testing.T) {
	n, api := newNode(nid(1))
	n.Join(nid(2))
	sent := api.SentOfType(TypeLookup)
	if len(sent) != 1 || sent[0].Dest != nid(2) {
		t.Fatalf("join lookup = %+v", sent)
	}
	l, err := DecodeLookup(sent[0].Msg.Payload())
	if err != nil || l.Key != n.SelfKey() || l.Purpose != purposeJoin {
		t.Errorf("lookup = %+v", l)
	}
	// The owner's answer installs the successor.
	done := LookupDone{ReqID: l.ReqID, Purpose: purposeJoin, Owner: nid(3)}
	m := message.New(TypeLookupDone, nid(3), 0, 0, done.Encode())
	n.Process(m)
	m.Release()
	if n.Successor() != nid(3) || !n.Joined() {
		t.Errorf("successor = %v joined=%v", n.Successor(), n.Joined())
	}
}

func TestNotifyInstallsCloserPredecessor(t *testing.T) {
	n, _ := newNode(nid(1))
	m := message.New(TypeNotify, nid(2), 0, 0, nil)
	n.Process(m)
	m.Release()
	p, ok := n.Predecessor()
	if !ok || p != nid(2) {
		t.Fatalf("predecessor = %v, %v", p, ok)
	}
	// A notify from a node NOT between pred and self is ignored; find one
	// by scanning a few candidates.
	predKey := NodeKey(nid(2))
	for i := 3; i < 40; i++ {
		k := NodeKey(nid(i))
		if !between(predKey, k, n.SelfKey()) {
			m := message.New(TypeNotify, nid(i), 0, 0, nil)
			n.Process(m)
			m.Release()
			if got, _ := n.Predecessor(); got != nid(2) {
				t.Fatalf("worse notify from %v replaced predecessor", nid(i))
			}
			return
		}
	}
	t.Skip("no non-between candidate found")
}

func TestGetPredAnswered(t *testing.T) {
	n, api := newNode(nid(1))
	m := message.New(TypeNotify, nid(2), 0, 0, nil)
	n.Process(m)
	m.Release()
	q := message.New(TypeGetPred, nid(5), 0, 0, nil)
	n.Process(q)
	q.Release()
	replies := api.SentOfType(TypePredInfo)
	if len(replies) != 1 || replies[0].Dest != nid(5) {
		t.Fatalf("replies = %+v", replies)
	}
	p, _ := DecodePredInfo(replies[0].Msg.Payload())
	if p.Pred != nid(2) {
		t.Errorf("pred info = %v", p.Pred)
	}
}

// TestRingConvergesAndServesLookups boots an 8-node ring over real
// engines, waits for stabilization to produce a consistent ring, stores
// 24 keys from one node and retrieves them from another.
func TestRingConvergesAndServesLookups(t *testing.T) {
	net := vnet.New()
	defer net.Close()
	const size = 8
	nodes := make([]*Node, size)
	engines := make([]*engine.Engine, size)
	for i := size - 1; i >= 0; i-- {
		nodes[i] = &Node{}
		e, err := engine.New(engine.Config{
			ID:        nid(i + 1),
			Transport: engine.VNet{Net: net},
			Algorithm: nodes[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		engines[i] = e
	}
	// Sequential joins through node 1.
	for i := 1; i < size; i++ {
		i := i
		engines[i].Do(func(engine.API) { nodes[i].Join(nid(1)) })
		time.Sleep(50 * time.Millisecond)
	}
	// Wait for ring consistency: following successors from node 0 visits
	// every node exactly once and returns home, and every node's
	// predecessor agrees with the cycle (ownership is predecessor-based,
	// so gets would otherwise race stale views).
	byID := make(map[message.NodeID]*Node)
	for j := range nodes {
		byID[nid(j+1)] = nodes[j]
	}
	waitFor(t, 20*time.Second, "ring convergence", func() bool {
		seen := make(map[message.NodeID]bool)
		cur := nid(1)
		for i := 0; i < size; i++ {
			if seen[cur] {
				return false
			}
			seen[cur] = true
			succ := byID[cur].Successor()
			pred, ok := byID[succ].Predecessor()
			if !ok || pred != cur {
				return false
			}
			cur = succ
		}
		return cur == nid(1) && len(seen) == size
	})

	// Store keys from node 3.
	const keys = 24
	for k := 0; k < keys; k++ {
		key := KeyOf([]byte(fmt.Sprintf("key-%d", k)))
		val := []byte(fmt.Sprintf("value-%d", k))
		engines[2].Do(func(engine.API) { nodes[2].Put(key, val) })
	}
	waitFor(t, 10*time.Second, "all keys stored", func() bool {
		total := 0
		for _, n := range nodes {
			total += n.StoredKeys()
		}
		return total == keys
	})
	// Keys spread across more than one node.
	holders := 0
	for _, n := range nodes {
		if n.StoredKeys() > 0 {
			holders++
		}
	}
	if holders < 2 {
		t.Errorf("all keys on %d node(s); ring routing suspect", holders)
	}

	// Retrieve every key from node 6.
	results := make(chan GetResult, keys)
	nodes[5].OnGet = func(r GetResult) { results <- r }
	for k := 0; k < keys; k++ {
		key := KeyOf([]byte(fmt.Sprintf("key-%d", k)))
		engines[5].Do(func(engine.API) { nodes[5].Get(key) })
	}
	got := make(map[uint64][]byte)
	deadline := time.After(10 * time.Second)
	for len(got) < keys {
		select {
		case r := <-results:
			if !r.Found {
				t.Fatalf("key %d not found", r.Key)
			}
			got[r.Key] = r.Value
		case <-deadline:
			t.Fatalf("retrieved %d/%d keys", len(got), keys)
		}
	}
	for k := 0; k < keys; k++ {
		key := KeyOf([]byte(fmt.Sprintf("key-%d", k)))
		if string(got[key]) != fmt.Sprintf("value-%d", k) {
			t.Errorf("key %d: wrong value %q", k, got[key])
		}
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRingRepairsAfterNodeFailure kills a ring member and verifies that
// stabilization routes around it.
func TestRingRepairsAfterNodeFailure(t *testing.T) {
	net := vnet.New()
	defer net.Close()
	const size = 6
	nodes := make([]*Node, size)
	engines := make([]*engine.Engine, size)
	for i := size - 1; i >= 0; i-- {
		nodes[i] = &Node{}
		e, err := engine.New(engine.Config{
			ID:        nid(i + 1),
			Transport: engine.VNet{Net: net},
			Algorithm: nodes[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		engines[i] = e
	}
	for i := 1; i < size; i++ {
		i := i
		engines[i].Do(func(engine.API) { nodes[i].Join(nid(1)) })
		time.Sleep(50 * time.Millisecond)
	}
	ringOK := func(members []int) bool {
		byID := make(map[message.NodeID]*Node)
		for _, j := range members {
			byID[nid(j+1)] = nodes[j]
		}
		seen := make(map[message.NodeID]bool)
		cur := nid(members[0] + 1)
		for range members {
			if seen[cur] {
				return false
			}
			seen[cur] = true
			n, ok := byID[cur]
			if !ok {
				return false
			}
			cur = n.Successor()
		}
		return cur == nid(members[0]+1) && len(seen) == len(members)
	}
	all := []int{0, 1, 2, 3, 4, 5}
	waitFor(t, 20*time.Second, "initial ring", func() bool { return ringOK(all) })

	// Kill node 4 (index 3) abruptly.
	engines[3].Stop()
	net.SeverNode(nid(4).Addr())
	survivors := []int{0, 1, 2, 4, 5}
	waitFor(t, 20*time.Second, "ring repaired around dead node", func() bool {
		return ringOK(survivors)
	})
}
