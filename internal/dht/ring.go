// Package dht implements a Chord-style distributed hash table as an
// iOverlay prefabricated algorithm. Structured search protocols (Pastry,
// Chord) are the first application family the paper's introduction
// motivates; this package shows the engine's reactive, single-threaded
// algorithm model carrying a full structured overlay: ring maintenance
// by periodic stabilization, finger tables fixed by background lookups,
// and key-value puts/gets routed greedily through the identifier space.
package dht

import (
	"hash/fnv"

	"repro/internal/message"
)

// ringBits is the identifier-space width.
const ringBits = 64

// KeyOf hashes arbitrary bytes onto the identifier ring.
func KeyOf(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// NodeKey hashes a node identity onto the ring.
func NodeKey(id message.NodeID) uint64 {
	var b [8]byte
	b[0] = byte(id.IP >> 24)
	b[1] = byte(id.IP >> 16)
	b[2] = byte(id.IP >> 8)
	b[3] = byte(id.IP)
	b[4] = byte(id.Port >> 24)
	b[5] = byte(id.Port >> 16)
	b[6] = byte(id.Port >> 8)
	b[7] = byte(id.Port)
	return KeyOf(b[:])
}

// between reports whether k lies in the open interval (a, b) on the
// ring; when a == b the interval is the whole ring minus a.
func between(a, k, b uint64) bool {
	switch {
	case a < b:
		return k > a && k < b
	case a > b:
		return k > a || k < b
	default:
		return k != a
	}
}

// betweenIncl reports whether k lies in the half-open interval (a, b].
func betweenIncl(a, k, b uint64) bool {
	return k == b || between(a, k, b)
}

// fingerStart computes the i-th finger's target: self + 2^i mod 2^64.
func fingerStart(self uint64, i int) uint64 {
	return self + 1<<uint(i)
}
