package tree

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.2.%d", i), 7000)
}

const app = 1

func newTree(v Variant, self message.NodeID, lastMile int64) (*Tree, *algtest.FakeAPI) {
	api := algtest.New(self)
	tr := &Tree{Variant: v, App: app, LastMile: lastMile}
	tr.Attach(api)
	return tr, api
}

func deliver(t *testing.T, tr *Tree, m *message.Msg) {
	t.Helper()
	if v := tr.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v, want Done", v)
	}
	m.Release()
}

func TestCodecsRoundTrip(t *testing.T) {
	q := Query{App: 3, Joiner: nid(4), Hops: 7}
	gq, err := DecodeQuery(q.Encode())
	if err != nil || gq != q {
		t.Errorf("query round trip = %+v, %v", gq, err)
	}
	a := Announce{App: 3, Source: nid(9)}
	ga, err := DecodeAnnounce(a.Encode())
	if err != nil || ga != a {
		t.Errorf("announce round trip = %+v, %v", ga, err)
	}
	s := StressMsg{App: 3, Value: 1.25}
	gs, err := DecodeStress(s.Encode())
	if err != nil || gs != s {
		t.Errorf("stress round trip = %+v, %v", gs, err)
	}
}

func TestVariantString(t *testing.T) {
	if Unicast.String() != "unicast" || Random.String() != "random" ||
		StressAware.String() != "ns-aware" || Variant(0).String() != "unknown" {
		t.Error("Variant.String mismatch")
	}
}

func TestDeployMakesSourceAndFloodsAnnounce(t *testing.T) {
	tr, api := newTree(StressAware, nid(1), 200<<10)
	tr.Known.Add(nid(2))
	tr.Known.Add(nid(3))
	d := protocol.Deploy{App: app, Rate: 100 << 10, MsgSize: 1024}
	deliver(t, tr, message.New(protocol.TypeDeploy, nid(0), app, 0, d.Encode()))

	if !tr.IsSource() || !tr.InSession() {
		t.Error("deploy did not mark node as source")
	}
	if len(api.Sources) != 1 || api.Sources[0].App != app {
		t.Errorf("StartSource calls = %+v", api.Sources)
	}
	if got := len(api.SentOfType(TypeAnnounce)); got != 2 {
		t.Errorf("announce flood = %d messages, want 2", got)
	}
}

func TestJoinSendsQueryToContact(t *testing.T) {
	tr, api := newTree(Random, nid(2), 100<<10)
	j := protocol.Join{App: app, Contact: nid(1)}
	deliver(t, tr, message.New(protocol.TypeJoin, nid(0), app, 0, j.Encode()))
	sent := api.SentTo(nid(1))
	if len(sent) != 1 || sent[0].Msg.Type() != TypeQuery {
		t.Fatalf("join sent %v", sent)
	}
	q, err := DecodeQuery(sent[0].Msg.Payload())
	if err != nil || q.Joiner != nid(2) || q.App != app {
		t.Errorf("query = %+v, %v", q, err)
	}
}

func TestRandomVariantAcceptsImmediately(t *testing.T) {
	tr, api := newTree(Random, nid(1), 100<<10)
	tr.Process(message.New(protocol.TypeDeploy, nid(0), app, 0, protocol.Deploy{App: app}.Encode()))
	q := Query{App: app, Joiner: nid(5)}
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0, q.Encode()))
	acks := api.SentOfType(TypeQueryAck)
	if len(acks) != 1 || acks[0].Dest != nid(5) {
		t.Fatalf("acks = %+v", acks)
	}
	if ch := tr.Children(); len(ch) != 1 || ch[0] != nid(5) {
		t.Errorf("children = %v", ch)
	}
	// Duplicate query is idempotent.
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0, q.Encode()))
	if len(tr.Children()) != 1 {
		t.Error("duplicate query duplicated child")
	}
}

func TestUnicastForwardsToSource(t *testing.T) {
	tr, api := newTree(Unicast, nid(2), 100<<10)
	// Node 2 is in the session (parent nid(1)) and knows the source.
	deliver(t, tr, message.New(TypeAnnounce, nid(1), app, 0,
		Announce{App: app, Source: nid(1)}.Encode()))
	deliver(t, tr, message.New(TypeQueryAck, nid(1), app, 0,
		Query{App: app, Joiner: nid(2)}.Encode()))

	q := Query{App: app, Joiner: nid(5)}
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0, q.Encode()))
	fwd := api.SentOfType(TypeQuery)
	if len(fwd) != 1 || fwd[0].Dest != nid(1) {
		t.Fatalf("unicast forward = %+v, want toward source nid(1)", fwd)
	}
	if len(api.SentOfType(TypeQueryAck)) != 0 {
		t.Error("unicast non-source accepted a joiner")
	}
}

func TestQueryAckJoins(t *testing.T) {
	tr, _ := newTree(StressAware, nid(5), 100<<10)
	deliver(t, tr, message.New(TypeQueryAck, nid(2), app, 0,
		Query{App: app, Joiner: nid(5)}.Encode()))
	if !tr.InSession() {
		t.Fatal("ack did not join session")
	}
	if p, ok := tr.Parent(); !ok || p != nid(2) {
		t.Errorf("parent = %v, %v", p, ok)
	}
	if tr.JoinedAt() == 0 {
		t.Error("JoinedAt not recorded")
	}
	// A second ack does not re-parent (first wins).
	deliver(t, tr, message.New(TypeQueryAck, nid(3), app, 0,
		Query{App: app, Joiner: nid(5)}.Encode()))
	if p, _ := tr.Parent(); p != nid(2) {
		t.Errorf("second ack re-parented to %v", p)
	}
}

func TestStressComputation(t *testing.T) {
	tr, _ := newTree(StressAware, nid(1), 200<<10) // 2 stress units
	if got := tr.Stress(); got != 0 {
		t.Errorf("stress with degree 0 = %v", got)
	}
	deliver(t, tr, message.New(TypeQueryAck, nid(2), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode())) // gain a parent
	if got := tr.Stress(); got != 0.5 {
		t.Errorf("stress deg1/bw2 = %v, want 0.5", got)
	}
}

func TestStressAwareForwardsToMinStressNeighbor(t *testing.T) {
	// S (bw 200, in session with children D and A) receives a query. A has
	// lower stress than S and D, so the query must be forwarded to A —
	// the Table 3 construction step for node C.
	s, api := newTree(StressAware, nid(0), 200<<10)
	s.Process(message.New(protocol.TypeDeploy, nid(0), app, 0, protocol.Deploy{App: app}.Encode()))
	// Children D (stress 1.0) and A (stress 0.2) with reported stress.
	for _, join := range []struct {
		id message.NodeID
		st float64
	}{{nid(4), 1.0}, {nid(1), 0.2}} {
		q := Query{App: app, Joiner: join.id}
		s.Process(message.New(TypeQuery, join.id, app, 0, q.Encode()))
		s.Process(message.New(TypeStress, join.id, app, 0,
			StressMsg{App: app, Value: join.st}.Encode()))
	}
	api.Reset()
	// S's own stress is now 2/2 = 1.0; A's 0.2 wins.
	q := Query{App: app, Joiner: nid(3)}
	deliver(t, s, message.New(TypeQuery, nid(3), app, 0, q.Encode()))
	fwd := api.SentOfType(TypeQuery)
	if len(fwd) != 1 || fwd[0].Dest != nid(1) {
		t.Fatalf("ns-aware forward = %+v, want to nid(1)", fwd)
	}
	if len(api.SentOfType(TypeQueryAck)) != 0 {
		t.Error("S accepted despite higher stress")
	}
}

func TestStressAwareAcceptsAtLocalMinimum(t *testing.T) {
	a, api := newTree(StressAware, nid(1), 500<<10) // 5 units
	// A is in session with parent S whose stress is high.
	deliver(t, a, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	deliver(t, a, message.New(TypeStress, nid(0), app, 0,
		StressMsg{App: app, Value: 1.0}.Encode()))
	// A's stress 1/5 = 0.2 < parent's 1.0: accept.
	q := Query{App: app, Joiner: nid(3)}
	deliver(t, a, message.New(TypeQuery, nid(3), app, 0, q.Encode()))
	acks := api.SentOfType(TypeQueryAck)
	if len(acks) != 1 || acks[0].Dest != nid(3) {
		t.Fatalf("acks = %+v", acks)
	}
}

func TestQueryTTLForcesAccept(t *testing.T) {
	s, api := newTree(StressAware, nid(0), 100<<10)
	s.Process(message.New(protocol.TypeDeploy, nid(0), app, 0, protocol.Deploy{App: app}.Encode()))
	// Child with lower stress would normally win the forward.
	s.Process(message.New(TypeQuery, nid(4), app, 0, Query{App: app, Joiner: nid(4)}.Encode()))
	s.Process(message.New(TypeStress, nid(4), app, 0, StressMsg{App: app, Value: 0.01}.Encode()))
	api.Reset()
	q := Query{App: app, Joiner: nid(3), Hops: queryTTL}
	deliver(t, s, message.New(TypeQuery, nid(3), app, 0, q.Encode()))
	if len(api.SentOfType(TypeQueryAck)) != 1 {
		t.Error("TTL-expired query was not accepted")
	}
}

func TestNonTreeNodeRelaysQuery(t *testing.T) {
	tr, api := newTree(StressAware, nid(2), 100<<10)
	deliver(t, tr, message.New(TypeAnnounce, nid(9), app, 0,
		Announce{App: app, Source: nid(9)}.Encode()))
	q := Query{App: app, Joiner: nid(5)}
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0, q.Encode()))
	fwd := api.SentOfType(TypeQuery)
	if len(fwd) != 1 || fwd[0].Dest != nid(9) {
		t.Fatalf("relay = %+v, want toward announced source", fwd)
	}
	got, _ := DecodeQuery(fwd[0].Msg.Payload())
	if got.Hops != 1 {
		t.Errorf("relayed hops = %d, want 1", got.Hops)
	}
}

func TestAnnounceRefloodsOnce(t *testing.T) {
	tr, api := newTree(StressAware, nid(2), 100<<10)
	tr.Known.Add(nid(3))
	a := Announce{App: app, Source: nid(9)}
	deliver(t, tr, message.New(TypeAnnounce, nid(9), app, 0, a.Encode()))
	first := len(api.SentOfType(TypeAnnounce))
	if first != 1 {
		t.Fatalf("first announce reflood = %d sends, want 1", first)
	}
	deliver(t, tr, message.New(TypeAnnounce, nid(9), app, 0, a.Encode()))
	if got := len(api.SentOfType(TypeAnnounce)); got != first {
		t.Error("announce re-flooded more than once")
	}
}

func TestDataForwardedToChildrenAndCounted(t *testing.T) {
	tr, api := newTree(Random, nid(1), 100<<10)
	tr.Process(message.New(protocol.TypeDeploy, nid(0), app, 0, protocol.Deploy{App: app}.Encode()))
	tr.Process(message.New(TypeQuery, nid(5), app, 0, Query{App: app, Joiner: nid(5)}.Encode()))
	tr.Process(message.New(TypeQuery, nid(6), app, 0, Query{App: app, Joiner: nid(6)}.Encode()))
	api.Reset()
	m := message.New(message.FirstDataType, nid(1), app, 0, make([]byte, 512))
	deliver(t, tr, m)
	if got := tr.ReceivedBytes(); got != 512 {
		t.Errorf("ReceivedBytes = %d, want 512", got)
	}
	if len(api.SentTo(nid(5))) != 1 || len(api.SentTo(nid(6))) != 1 {
		t.Error("data not copied to both children")
	}
}

func TestStressTickExchangesWithNeighbors(t *testing.T) {
	tr, api := newTree(StressAware, nid(1), 100<<10)
	if len(api.Timers) != 1 {
		t.Fatalf("Attach scheduled %d timers, want 1", len(api.Timers))
	}
	// Acquire a parent and a child.
	deliver(t, tr, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0,
		Query{App: app, Joiner: nid(5)}.Encode()))
	api.Reset()
	deliver(t, tr, message.New(protocol.TypeTick, nid(1), 0, 0,
		protocol.Tick{Kind: tickStress}.Encode()))
	stress := api.SentOfType(TypeStress)
	if len(stress) != 2 {
		t.Fatalf("stress exchange = %d sends, want 2 (parent+child)", len(stress))
	}
	if len(api.Timers) != 1 {
		t.Error("tick did not reschedule itself")
	}
}

func TestLinkDownRemovesChildAndParent(t *testing.T) {
	tr, _ := newTree(StressAware, nid(1), 100<<10)
	deliver(t, tr, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	deliver(t, tr, message.New(TypeQuery, nid(5), app, 0,
		Query{App: app, Joiner: nid(5)}.Encode()))

	// Child's outgoing link fails.
	deliver(t, tr, message.New(protocol.TypeLinkDown, nid(1), 0, 0,
		protocol.LinkEvent{Peer: nid(5), Upstream: false}.Encode()))
	if len(tr.Children()) != 0 {
		t.Error("dead child not removed")
	}
	// Parent's incoming link fails.
	deliver(t, tr, message.New(protocol.TypeLinkDown, nid(1), 0, 0,
		protocol.LinkEvent{Peer: nid(0), Upstream: true}.Encode()))
	if tr.InSession() {
		t.Error("still in session after parent loss")
	}
	if _, ok := tr.Parent(); ok {
		t.Error("parent not cleared")
	}
}

func TestAutoRejoinAfterParentLoss(t *testing.T) {
	tr, api := newTree(StressAware, nid(1), 100<<10)
	tr.AutoRejoin = true
	tr.Known.Add(nid(0))
	tr.Known.Add(nid(7))
	deliver(t, tr, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	api.Reset()
	deliver(t, tr, message.New(protocol.TypeLinkDown, nid(1), 0, 0,
		protocol.LinkEvent{Peer: nid(0), Upstream: true}.Encode()))
	q := api.SentOfType(TypeQuery)
	if len(q) != 1 {
		t.Fatalf("rejoin queries = %d, want 1", len(q))
	}
	if q[0].Dest == nid(0) {
		t.Error("rejoin query sent to the dead parent")
	}
}

func TestBrokenSourceDetachesAndRejoins(t *testing.T) {
	tr, api := newTree(Random, nid(1), 100<<10)
	tr.AutoRejoin = true
	tr.Known.Add(nid(7))
	deliver(t, tr, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	if !tr.InSession() {
		t.Fatal("not in session after ack")
	}
	api.Reset()

	// The supply broke somewhere above the parent: the link to the parent
	// is still up, but the subtree is starved. The node must drop out of
	// the session (so it stops accepting joiners into a dead subtree) and
	// immediately try to rejoin.
	deliver(t, tr, message.New(protocol.TypeBrokenSource, nid(0), 0, 0,
		protocol.BrokenSource{App: app, Upstream: nid(9)}.Encode()))
	if tr.InSession() {
		t.Error("still in session after BrokenSource")
	}
	if _, ok := tr.Parent(); ok {
		t.Error("parent kept after BrokenSource")
	}
	if q := api.SentOfType(TypeQuery); len(q) != 1 {
		t.Errorf("rejoin queries = %d, want 1", len(q))
	}

	// A BrokenSource for some other app must be ignored.
	tr2, _ := newTree(Random, nid(2), 100<<10)
	deliver(t, tr2, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(2)}.Encode()))
	deliver(t, tr2, message.New(protocol.TypeBrokenSource, nid(0), 0, 0,
		protocol.BrokenSource{App: app + 1, Upstream: nid(9)}.Encode()))
	if !tr2.InSession() {
		t.Error("BrokenSource for another app detached the tree")
	}
}

func TestJoinedAtTimestampOrdering(t *testing.T) {
	tr, _ := newTree(Random, nid(1), 100<<10)
	before := time.Now().UnixNano()
	deliver(t, tr, message.New(TypeQueryAck, nid(0), app, 0,
		Query{App: app, Joiner: nid(1)}.Encode()))
	after := time.Now().UnixNano()
	got := tr.JoinedAt()
	if got < before || got > after {
		t.Errorf("JoinedAt = %d outside [%d, %d]", got, before, after)
	}
}

func TestSlowPeerDropsChild(t *testing.T) {
	tr, api := newTree(Random, nid(1), 100<<10)
	tr.Process(message.New(protocol.TypeDeploy, nid(0), app, 0, protocol.Deploy{App: app}.Encode()))
	// Adopt two children.
	for _, j := range []message.NodeID{nid(5), nid(6)} {
		q := Query{App: app, Joiner: j}
		deliver(t, tr, message.New(TypeQuery, j, app, 0, q.Encode()))
	}
	// The engine reports nid(5) as a slow peer: it is dropped from the
	// tree and its link is closed; the other child is untouched.
	sp := protocol.SlowPeer{Peer: nid(5), ShedBytes: 4096}
	deliver(t, tr, message.New(protocol.TypeSlowPeer, nid(1), app, 0, sp.Encode()))
	if ch := tr.Children(); len(ch) != 1 || ch[0] != nid(6) {
		t.Errorf("children after SlowPeer = %v, want [%v]", ch, nid(6))
	}
	if len(api.Closed) != 1 || api.Closed[0] != nid(5) {
		t.Errorf("closed links = %v, want [%v]", api.Closed, nid(5))
	}
	// A SlowPeer report for a non-child (e.g. the parent of some other
	// session) is ignored.
	sp = protocol.SlowPeer{Peer: nid(9), ShedBytes: 1}
	deliver(t, tr, message.New(protocol.TypeSlowPeer, nid(1), app, 0, sp.Encode()))
	if len(api.Closed) != 1 {
		t.Errorf("non-child SlowPeer closed a link: %v", api.Closed)
	}
}
