// Package tree implements the paper's second case study (Section 3.3):
// construction of data dissemination multicast trees when the "last-mile"
// bandwidth of overlay nodes is the bottleneck. Three algorithms are
// provided, exactly as evaluated in the paper:
//
//   - all-unicast: every joiner is forwarded to the session source, which
//     accepts all children (a star).
//   - randomized: the first tree node contacted accepts immediately.
//   - node-stress aware (ns-aware): nodes periodically exchange node
//     stress (degree divided by last-mile bandwidth) with their parent
//     and children; an sQuery is recursively forwarded to the
//     minimum-stress neighbor until it reaches a local minimum, which
//     acknowledges and adopts the joiner.
package tree

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// Variant selects the construction algorithm.
type Variant int

// The three tree-construction algorithms of the paper.
const (
	Unicast Variant = iota + 1
	Random
	StressAware
)

// String renders the variant as the paper names it.
func (v Variant) String() string {
	switch v {
	case Unicast:
		return "unicast"
	case Random:
		return "random"
	case StressAware:
		return "ns-aware"
	default:
		return "unknown"
	}
}

// Algorithm-specific control message types (sQuery, sQueryAck, sAnnounce,
// and the stress exchange).
const (
	TypeQuery    message.Type = 100
	TypeQueryAck message.Type = 101
	TypeAnnounce message.Type = 102
	TypeStress   message.Type = 103
)

// queryTTL bounds sQuery relaying so stale stress information cannot
// cycle a query forever.
const queryTTL = 32

// DefaultStressInterval paces the periodic stress exchange.
const DefaultStressInterval = 50 * time.Millisecond

// tick kinds.
const (
	tickStress    = 1
	tickRetryJoin = 2
)

// DefaultJoinRetry paces re-sent join queries while a node is trying to
// enter the session (queries are best-effort and may be dropped by full
// buffers or relay dead ends).
const DefaultJoinRetry = 500 * time.Millisecond

// StressUnit converts bytes/sec to the paper's stress denominator of
// 100 KBps, so reported stress matches Table 3's "1/100 KBps" units.
const StressUnit = 100 << 10

// Query is the sQuery payload.
type Query struct {
	App    uint32
	Joiner message.NodeID
	Hops   uint32
}

// Encode serializes the query.
func (q Query) Encode() []byte {
	return protocol.NewWriter(16).U32(q.App).ID(q.Joiner).U32(q.Hops).Bytes()
}

// DecodeQuery parses an sQuery payload.
func DecodeQuery(b []byte) (Query, error) {
	r := protocol.NewReader(b)
	q := Query{App: r.U32(), Joiner: r.ID(), Hops: r.U32()}
	return q, r.Err()
}

// Announce is the sAnnounce payload flooding the session source identity.
type Announce struct {
	App    uint32
	Source message.NodeID
}

// Encode serializes the announce.
func (a Announce) Encode() []byte {
	return protocol.NewWriter(12).U32(a.App).ID(a.Source).Bytes()
}

// DecodeAnnounce parses an sAnnounce payload.
func DecodeAnnounce(b []byte) (Announce, error) {
	r := protocol.NewReader(b)
	a := Announce{App: r.U32(), Source: r.ID()}
	return a, r.Err()
}

// StressMsg is the periodic stress exchange payload.
type StressMsg struct {
	App   uint32
	Value float64
}

// Encode serializes the stress report.
func (s StressMsg) Encode() []byte {
	return protocol.NewWriter(12).U32(s.App).F64(s.Value).Bytes()
}

// DecodeStress parses a stress payload.
func DecodeStress(b []byte) (StressMsg, error) {
	r := protocol.NewReader(b)
	s := StressMsg{App: r.U32(), Value: r.F64()}
	return s, r.Err()
}

// Tree is the tree-construction algorithm for one dissemination session.
type Tree struct {
	algorithm.Base

	// Variant selects the construction algorithm; required.
	Variant Variant
	// App is the session's application identifier; required.
	App uint32
	// LastMile is this node's last-mile available bandwidth in bytes per
	// second, the denominator of node stress; required for StressAware.
	LastMile int64
	// StressInterval overrides the stress exchange period.
	StressInterval time.Duration
	// AutoRejoin re-queries through known hosts when the parent fails.
	AutoRejoin bool

	mu             sync.Mutex
	wantJoin       bool
	retryArmed     bool
	isSource       bool
	inSession      bool
	everJoined     bool // a later attach is a reparent, not a first join
	parent         message.NodeID
	hasParent      bool
	children       []message.NodeID
	source         message.NodeID // learned from sAnnounce or sDeploy
	announced      bool
	neighborStress map[message.NodeID]float64
	received       atomic.Int64
	joinTime       atomic.Int64 // unix nanos when the ack arrived
}

var _ engine.Algorithm = (*Tree)(nil)

// Attach initializes state and schedules the stress exchange.
func (t *Tree) Attach(api engine.API) {
	t.Base.Attach(api)
	t.neighborStress = make(map[message.NodeID]float64)
	if t.StressInterval <= 0 {
		t.StressInterval = DefaultStressInterval
	}
	if t.Variant == StressAware {
		api.After(t.StressInterval, tickStress)
	}
}

// ----- observable state (safe from any goroutine) -----

// Parent reports the current parent, if any.
func (t *Tree) Parent() (message.NodeID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent, t.hasParent
}

// Children lists current children.
func (t *Tree) Children() []message.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]message.NodeID, len(t.children))
	copy(out, t.children)
	return out
}

// Degree reports the node's degree in the dissemination topology.
func (t *Tree) Degree() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degreeLocked()
}

func (t *Tree) degreeLocked() int {
	d := len(t.children)
	if t.hasParent {
		d++
	}
	return d
}

// Stress reports the node's current stress in 1/100KBps units: degree
// divided by last-mile bandwidth.
func (t *Tree) Stress() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stressLocked()
}

func (t *Tree) stressLocked() float64 {
	if t.LastMile <= 0 {
		return float64(t.degreeLocked())
	}
	return float64(t.degreeLocked()) / (float64(t.LastMile) / StressUnit)
}

// InSession reports whether the node has joined the dissemination tree.
func (t *Tree) InSession() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inSession
}

// IsSource reports whether the node is the session source.
func (t *Tree) IsSource() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.isSource
}

// ReceivedBytes reports application bytes received on this node.
func (t *Tree) ReceivedBytes() int64 { return t.received.Load() }

// JoinedAt reports when the join acknowledgment arrived (unix nanos), or
// zero.
func (t *Tree) JoinedAt() int64 { return t.joinTime.Load() }

// ----- message handling -----

// Process implements the algorithm.
func (t *Tree) Process(m *message.Msg) engine.Verdict {
	switch m.Type() {
	case protocol.TypeDeploy:
		t.onDeploy(m)
	case protocol.TypeJoin:
		t.onJoinCommand(m)
	case TypeQuery:
		t.onQuery(m)
	case TypeQueryAck:
		t.onQueryAck(m)
	case TypeAnnounce:
		t.onAnnounce(m)
	case TypeStress:
		t.onStress(m)
	case protocol.TypeTick:
		t.onTick(m)
	case protocol.TypeLinkDown:
		t.onLinkDown(m)
	case protocol.TypeBrokenSource:
		t.onBrokenSource(m)
	case protocol.TypeSlowPeer:
		t.onSlowPeer(m)
	default:
		if m.IsData() {
			t.onData(m)
			return engine.Done
		}
		return t.Base.Process(m)
	}
	return engine.Done
}

func (t *Tree) onDeploy(m *message.Msg) {
	d, err := protocol.DecodeDeploy(m.Payload())
	if err != nil || d.App != t.App {
		return
	}
	self := t.API.ID()
	t.mu.Lock()
	t.isSource = true
	t.inSession = true
	t.source = self
	t.mu.Unlock()
	t.API.StartSource(d.App, d.Rate, int(d.MsgSize))
	// Flood the source identity so unicast joins can find it.
	t.floodAnnounce()
}

func (t *Tree) floodAnnounce() {
	t.mu.Lock()
	src := t.source
	t.announced = true
	t.mu.Unlock()
	payload := Announce{App: t.App, Source: src}.Encode()
	msg := t.API.NewControl(TypeAnnounce, t.App, payload)
	t.Disseminate(msg, t.Known.All(), 1.0)
}

func (t *Tree) onAnnounce(m *message.Msg) {
	a, err := DecodeAnnounce(m.Payload())
	if err != nil || a.App != t.App {
		return
	}
	t.mu.Lock()
	first := !t.announced
	t.announced = true
	if t.source.IsZero() {
		t.source = a.Source
	}
	t.mu.Unlock()
	if first {
		// Re-flood once so the announcement reaches the whole membership.
		payload := Announce{App: t.App, Source: a.Source}.Encode()
		t.Disseminate(t.API.NewControl(TypeAnnounce, t.App, payload), t.Known.All(), 1.0)
	}
}

// onJoinCommand handles the observer's join instruction.
func (t *Tree) onJoinCommand(m *message.Msg) {
	j, err := protocol.DecodeJoin(m.Payload())
	if err != nil || j.App != t.App {
		return
	}
	t.mu.Lock()
	already := t.inSession || t.isSource
	t.wantJoin = !already
	arm := !already && !t.retryArmed
	if arm {
		t.retryArmed = true
	}
	t.mu.Unlock()
	if already {
		return
	}
	t.sendQuery(j.Contact)
	if arm {
		t.API.After(DefaultJoinRetry, tickRetryJoin)
	}
}

// sendQuery launches (or relaunches) the join query.
func (t *Tree) sendQuery(contact message.NodeID) {
	if contact.IsZero() {
		t.mu.Lock()
		contact = t.source
		t.mu.Unlock()
	}
	if contact.IsZero() && t.Known.Len() > 0 {
		contact = t.Known.Random(1, t.Rng)[0]
	}
	if contact.IsZero() || contact == t.API.ID() {
		return
	}
	q := Query{App: t.App, Joiner: t.API.ID()}
	t.API.SendNew(t.API.NewControl(TypeQuery, t.App, q.Encode()), contact)
}

func (t *Tree) onQuery(m *message.Msg) {
	q, err := DecodeQuery(m.Payload())
	if err != nil || q.App != t.App || q.Joiner == t.API.ID() {
		return
	}
	t.mu.Lock()
	inTree := t.inSession || t.isSource
	t.mu.Unlock()

	if !inTree {
		// Not in the tree: relay toward one (the paper's utility
		// dissemination), preferring the announced source.
		if q.Hops >= queryTTL {
			return
		}
		q.Hops++
		t.mu.Lock()
		next := t.source
		t.mu.Unlock()
		if next.IsZero() {
			candidates := t.Known.All()
			for _, c := range t.Known.Random(len(candidates), t.Rng) {
				if c != q.Joiner && c != m.Sender() {
					next = c
					break
				}
			}
		}
		if !next.IsZero() {
			t.API.SendNew(t.API.NewControl(TypeQuery, t.App, q.Encode()), next)
		}
		return
	}

	switch t.Variant {
	case Random:
		t.accept(q.Joiner)
	case Unicast:
		t.mu.Lock()
		isSrc := t.isSource
		src := t.source
		parent := t.parent
		hasParent := t.hasParent
		t.mu.Unlock()
		switch {
		case isSrc:
			t.accept(q.Joiner)
		case !src.IsZero():
			t.forwardQuery(q, src)
		case hasParent:
			t.forwardQuery(q, parent)
		default:
			t.accept(q.Joiner) // isolated fallback
		}
	case StressAware:
		t.stressAwareQuery(q)
	default:
		t.accept(q.Joiner)
	}
}

func (t *Tree) forwardQuery(q Query, next message.NodeID) {
	if q.Hops >= queryTTL {
		t.accept(q.Joiner)
		return
	}
	q.Hops++
	t.API.SendNew(t.API.NewControl(TypeQuery, t.App, q.Encode()), next)
}

// stressAwareQuery implements the ns-aware forwarding rule: accept when
// this node has the minimum stress among itself, its parent and children;
// otherwise forward to the minimum-stress neighbor.
func (t *Tree) stressAwareQuery(q Query) {
	t.mu.Lock()
	self := t.stressLocked()
	best := self
	var bestPeer message.NodeID
	consider := func(peer message.NodeID) {
		s, ok := t.neighborStress[peer]
		if !ok {
			return // unknown stress: not a candidate
		}
		if s < best {
			best = s
			bestPeer = peer
		}
	}
	if t.hasParent {
		consider(t.parent)
	}
	for _, c := range t.children {
		if c != q.Joiner {
			consider(c)
		}
	}
	t.mu.Unlock()
	if bestPeer.IsZero() {
		t.accept(q.Joiner)
		return
	}
	t.forwardQuery(q, bestPeer)
}

// accept adopts the joiner as a child and acknowledges.
func (t *Tree) accept(joiner message.NodeID) {
	t.mu.Lock()
	for _, c := range t.children {
		if c == joiner {
			t.mu.Unlock()
			return // duplicate query
		}
	}
	t.children = append(t.children, joiner)
	t.mu.Unlock()
	payload := Query{App: t.App, Joiner: joiner}.Encode()
	t.API.SendNew(t.API.NewControl(TypeQueryAck, t.App, payload), joiner)
}

func (t *Tree) onQueryAck(m *message.Msg) {
	q, err := DecodeQuery(m.Payload())
	if err != nil || q.App != t.App || q.Joiner != t.API.ID() {
		return
	}
	t.mu.Lock()
	if t.inSession {
		t.mu.Unlock()
		return // already joined elsewhere (first ack wins)
	}
	rejoining := t.everJoined
	t.everJoined = true
	t.parent = m.Sender()
	t.hasParent = true
	t.inSession = true
	t.mu.Unlock()
	if rejoining {
		// A repeat attach is a topology repair: record where the subtree
		// reparented so the observer timeline can line it up with the
		// failure that caused it.
		t.API.Note(trace.KindReparent, m.Sender(), t.App, 1)
	}
	t.joinTime.Store(time.Now().UnixNano())
}

func (t *Tree) onStress(m *message.Msg) {
	s, err := DecodeStress(m.Payload())
	if err != nil || s.App != t.App {
		return
	}
	t.mu.Lock()
	t.neighborStress[m.Sender()] = s.Value
	t.mu.Unlock()
}

func (t *Tree) onTick(m *message.Msg) {
	tk, err := protocol.DecodeTick(m.Payload())
	if err != nil {
		return
	}
	if tk.Kind == tickRetryJoin {
		t.mu.Lock()
		retry := t.wantJoin && !t.inSession && !t.isSource
		t.retryArmed = retry
		t.mu.Unlock()
		if retry {
			t.sendQuery(message.NodeID{})
			t.API.After(DefaultJoinRetry, tickRetryJoin)
		}
		return
	}
	if tk.Kind != tickStress {
		return
	}
	t.mu.Lock()
	peers := make([]message.NodeID, 0, len(t.children)+1)
	if t.hasParent {
		peers = append(peers, t.parent)
	}
	peers = append(peers, t.children...)
	value := t.stressLocked()
	t.mu.Unlock()
	if len(peers) > 0 {
		payload := StressMsg{App: t.App, Value: value}.Encode()
		t.API.SendNew(t.API.NewControl(TypeStress, t.App, payload), peers...)
	}
	t.API.After(t.StressInterval, tickStress)
}

func (t *Tree) onData(m *message.Msg) {
	t.received.Add(int64(m.Len()))
	t.mu.Lock()
	children := make([]message.NodeID, len(t.children))
	copy(children, t.children)
	t.mu.Unlock()
	for _, c := range children {
		t.API.Send(m, c)
	}
}

// onBrokenSource reacts to the engine's domino cascade: somewhere above
// this node the supply of the session broke, so the whole subtree is
// starved even though its own links are healthy. Dropping out of the
// session here matters for repair correctness, not just bookkeeping —
// a starved node that still believed it was in session would keep
// accepting joiners, and a rejoining ancestor that attached to its own
// starved descendant would form a cycle no later event untangles.
// Detaching the entire subtree (each member got the cascade) makes every
// member rejoin through nodes that actually reach the source.
func (t *Tree) onBrokenSource(m *message.Msg) {
	bs, err := protocol.DecodeBrokenSource(m.Payload())
	if err != nil || bs.App != t.App {
		return
	}
	t.mu.Lock()
	if t.isSource {
		t.mu.Unlock()
		return
	}
	t.parent = message.NodeID{}
	t.hasParent = false
	t.inSession = false
	rejoin := t.AutoRejoin
	arm := rejoin && !t.retryArmed
	if rejoin {
		t.wantJoin = true
		if arm {
			t.retryArmed = true
		}
	}
	t.mu.Unlock()
	if rejoin {
		t.sendQuery(message.NodeID{})
		if arm {
			t.API.After(DefaultJoinRetry, tickRetryJoin)
		}
	}
}

// onSlowPeer reacts to the engine's slow-peer report: a child that cannot
// keep up with the session rate has been shedding queued data past the
// stall threshold. Keeping it attached only converts more of the stream
// into losses, so the node drops the child from the tree and closes the
// link; the child observes the upstream LinkDown and (with AutoRejoin)
// re-queries through nodes that may have spare capacity toward it.
func (t *Tree) onSlowPeer(m *message.Msg) {
	sp, err := protocol.DecodeSlowPeer(m.Payload())
	if err != nil {
		return
	}
	t.mu.Lock()
	child := false
	for i, c := range t.children {
		if c == sp.Peer {
			t.children = append(t.children[:i], t.children[i+1:]...)
			child = true
			break
		}
	}
	t.mu.Unlock()
	if child {
		t.API.CloseLink(sp.Peer)
	}
}

func (t *Tree) onLinkDown(m *message.Msg) {
	le, err := protocol.DecodeLinkEvent(m.Payload())
	if err != nil {
		return
	}
	t.mu.Lock()
	lostParent := t.hasParent && le.Peer == t.parent && le.Upstream
	if lostParent {
		t.hasParent = false
		t.inSession = t.isSource
		t.parent = message.NodeID{}
	}
	for i, c := range t.children {
		if c == le.Peer && !le.Upstream {
			t.children = append(t.children[:i], t.children[i+1:]...)
			break
		}
	}
	delete(t.neighborStress, le.Peer)
	rejoin := lostParent && t.AutoRejoin
	arm := rejoin && !t.retryArmed
	if rejoin {
		t.wantJoin = true
		if arm {
			t.retryArmed = true
		}
	}
	t.mu.Unlock()
	if rejoin {
		t.Known.Remove(le.Peer)
		t.sendQuery(message.NodeID{})
		if arm {
			t.API.After(DefaultJoinRetry, tickRetryJoin)
		}
	}
}
