package contentnet

import (
	"sync"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

// Protocol message types of the content-based network.
const (
	// TypeAdvertise floods a subscription predicate through the overlay.
	TypeAdvertise message.Type = 120
	// TypeUnadvertise withdraws a subscription.
	TypeUnadvertise message.Type = 121
	// EventType is the data type of published events.
	EventType = message.FirstDataType + 20
)

// adTTL bounds advertisement flooding.
const adTTL = 16

// maxSeenEvents bounds the duplicate-suppression window.
const maxSeenEvents = 8192

// subKey identifies one subscription network-wide.
type subKey struct {
	Subscriber message.NodeID
	SubID      uint32
}

// routeEntry is one known subscription with its reverse-path next hop
// (zero for local subscriptions).
type routeEntry struct {
	pred    Predicate
	nextHop message.NodeID
}

// Advertisement is the TypeAdvertise/TypeUnadvertise payload.
type Advertisement struct {
	Subscriber message.NodeID
	SubID      uint32
	Hops       uint32
	Pred       Predicate
}

// Encode serializes the advertisement.
func (a Advertisement) Encode() []byte {
	w := protocol.NewWriter(32)
	w.ID(a.Subscriber).U32(a.SubID).U32(a.Hops)
	out := w.Bytes()
	return append(out, EncodePredicate(a.Pred)...)
}

// DecodeAdvertisement parses an advertisement payload.
func DecodeAdvertisement(b []byte) (Advertisement, error) {
	r := protocol.NewReader(b)
	a := Advertisement{Subscriber: r.ID(), SubID: r.U32(), Hops: r.U32()}
	if r.Err() != nil {
		return a, r.Err()
	}
	pred, err := DecodePredicate(protocol.NewReader(b[16:]))
	a.Pred = pred
	return a, err
}

// Event is a delivered publication.
type Event struct {
	Publisher message.NodeID
	Seq       uint32
	Attrs     Attrs
	Body      []byte
}

// Router is the content-based networking algorithm: every overlay node
// runs one, acting as both client (Subscribe/Publish) and router
// (advertisement flooding with reverse-path setup, content-matched
// forwarding).
type Router struct {
	algorithm.Base

	// OnDeliver, when set, receives locally matching events on the
	// engine goroutine.
	OnDeliver func(Event)

	mu        sync.Mutex
	routes    map[subKey]routeEntry
	mySubs    map[uint32]Predicate
	delivered int64
	published uint32
	seen      map[eventKey]bool
}

type eventKey struct {
	pub message.NodeID
	seq uint32
}

var _ engine.Algorithm = (*Router)(nil)

// Attach initializes state.
func (r *Router) Attach(api engine.API) {
	r.Base.Attach(api)
	r.mu.Lock()
	r.routes = make(map[subKey]routeEntry)
	r.mySubs = make(map[uint32]Predicate)
	r.seen = make(map[eventKey]bool)
	r.mu.Unlock()
}

// Delivered reports locally delivered events. Safe from any goroutine.
func (r *Router) Delivered() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivered
}

// KnownSubscriptions reports the routing-table size. Safe from any
// goroutine.
func (r *Router) KnownSubscriptions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.routes)
}

// Subscribe advertises a predicate under the given local subscription
// id, flooding it through the overlay. Engine goroutine only.
func (r *Router) Subscribe(subID uint32, pred Predicate) {
	self := r.API.ID()
	r.mu.Lock()
	r.mySubs[subID] = pred
	r.routes[subKey{self, subID}] = routeEntry{pred: pred}
	r.mu.Unlock()
	ad := Advertisement{Subscriber: self, SubID: subID, Pred: pred}
	m := r.API.NewControl(TypeAdvertise, 0, ad.Encode())
	r.Disseminate(m, r.Known.All(), 1.0)
}

// Unsubscribe withdraws a subscription. Engine goroutine only.
func (r *Router) Unsubscribe(subID uint32) {
	self := r.API.ID()
	r.mu.Lock()
	delete(r.mySubs, subID)
	delete(r.routes, subKey{self, subID})
	r.mu.Unlock()
	ad := Advertisement{Subscriber: self, SubID: subID}
	m := r.API.NewControl(TypeUnadvertise, 0, ad.Encode())
	r.Disseminate(m, r.Known.All(), 1.0)
}

// Publish emits an event into the content-based network. Engine
// goroutine only.
func (r *Router) Publish(attrs Attrs, body []byte) {
	r.mu.Lock()
	r.published++
	seq := r.published
	r.mu.Unlock()
	payload := EncodeAttrs(attrs, body)
	m := message.New(EventType, r.API.ID(), 0, seq, payload)
	r.routeEvent(m, message.NodeID{})
	m.Release()
}

// Process implements the algorithm.
func (r *Router) Process(m *message.Msg) engine.Verdict {
	switch m.Type() {
	case TypeAdvertise:
		r.onAdvertise(m)
	case TypeUnadvertise:
		r.onUnadvertise(m)
	case EventType:
		r.routeEvent(m, m.Sender())
	default:
		return r.Base.Process(m)
	}
	return engine.Done
}

// onAdvertise installs a reverse path for the subscription and refloods
// the first copy seen.
func (r *Router) onAdvertise(m *message.Msg) {
	ad, err := DecodeAdvertisement(m.Payload())
	if err != nil || ad.Subscriber == r.API.ID() {
		return
	}
	key := subKey{ad.Subscriber, ad.SubID}
	from := m.Sender()
	r.mu.Lock()
	_, dup := r.routes[key]
	if !dup {
		// First arrival wins: its sender link is the reverse path.
		r.routes[key] = routeEntry{pred: ad.Pred, nextHop: from}
	}
	r.mu.Unlock()
	if dup || ad.Hops >= adTTL {
		return
	}
	ad.Hops++
	var relayTo []message.NodeID
	for _, h := range r.Known.All() {
		if h != from && h != ad.Subscriber {
			relayTo = append(relayTo, h)
		}
	}
	if len(relayTo) > 0 {
		r.API.SendNew(r.API.NewControl(TypeAdvertise, 0, ad.Encode()), relayTo...)
	}
}

// onUnadvertise removes the route and refloods the withdrawal once.
func (r *Router) onUnadvertise(m *message.Msg) {
	ad, err := DecodeAdvertisement(m.Payload())
	if err != nil || ad.Subscriber == r.API.ID() {
		return
	}
	key := subKey{ad.Subscriber, ad.SubID}
	from := m.Sender()
	r.mu.Lock()
	_, had := r.routes[key]
	delete(r.routes, key)
	r.mu.Unlock()
	if !had || ad.Hops >= adTTL {
		return
	}
	ad.Hops++
	var relayTo []message.NodeID
	for _, h := range r.Known.All() {
		if h != from && h != ad.Subscriber {
			relayTo = append(relayTo, h)
		}
	}
	if len(relayTo) > 0 {
		r.API.SendNew(r.API.NewControl(TypeUnadvertise, 0, ad.Encode()), relayTo...)
	}
}

// routeEvent delivers an event locally when a local predicate matches
// and forwards it along the reverse paths of every matching remote
// subscription. arrivedFrom suppresses bouncing the event back.
func (r *Router) routeEvent(m *message.Msg, arrivedFrom message.NodeID) {
	attrs, body, err := DecodeAttrs(m.Payload())
	if err != nil {
		return
	}
	key := eventKey{pub: m.Sender(), seq: m.Seq()}
	r.mu.Lock()
	if r.seen[key] {
		r.mu.Unlock()
		return // duplicate via another subscriber tree
	}
	r.seen[key] = true
	if len(r.seen) > maxSeenEvents {
		r.seen = map[eventKey]bool{key: true}
	}
	localMatch := false
	for _, pred := range r.mySubs {
		if pred.Matches(attrs) {
			localMatch = true
			break
		}
	}
	if localMatch {
		r.delivered++
	}
	self := r.API.ID()
	nextHops := make(map[message.NodeID]bool)
	for k, entry := range r.routes {
		if k.Subscriber == self || entry.nextHop.IsZero() {
			continue
		}
		if entry.nextHop == arrivedFrom {
			continue
		}
		if entry.pred.Matches(attrs) {
			nextHops[entry.nextHop] = true
		}
	}
	onDeliver := r.OnDeliver
	r.mu.Unlock()

	if localMatch && onDeliver != nil {
		onDeliver(Event{Publisher: m.Sender(), Seq: m.Seq(), Attrs: attrs, Body: body})
	}
	for hop := range nextHops {
		r.API.Send(m, hop)
	}
}
