// Package contentnet implements content-based networking on iOverlay,
// the first potential research direction Section 3.1 of the paper calls
// "a natural fit": messages are not addressed to any specific node;
// instead a node advertises predicates defining the messages it intends
// to receive, and the content-based service delivers each published
// message to every node whose predicates match. The Router algorithm is
// a derived class of the iAlgorithm base, exactly as the paper suggests:
// the engine passes messages to the content-based decision-making
// algorithm, which decides the set of downstreams.
package contentnet

import (
	"fmt"
	"strings"

	"repro/internal/protocol"
)

// Op is a predicate comparison operator.
type Op uint8

// Operators over event attributes.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix // string prefix match
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "prefix"
	default:
		return "?"
	}
}

// Attr is one typed attribute of a published event. Exactly one of Int
// or Str is meaningful, selected by IsStr.
type Attr struct {
	Name  string
	IsStr bool
	Int   int64
	Str   string
}

// IntAttr builds an integer attribute.
func IntAttr(name string, v int64) Attr { return Attr{Name: name, Int: v} }

// StrAttr builds a string attribute.
func StrAttr(name, v string) Attr { return Attr{Name: name, IsStr: true, Str: v} }

// Attrs is an event's attribute list.
type Attrs []Attr

// Get finds an attribute by name.
func (a Attrs) Get(name string) (Attr, bool) {
	for _, at := range a {
		if at.Name == name {
			return at, true
		}
	}
	return Attr{}, false
}

// Constraint is one comparison inside a predicate.
type Constraint struct {
	Attr string
	Op   Op
	// Value is the right-hand side; IsStr selects which field applies.
	IsStr bool
	Int   int64
	Str   string
}

// Matches evaluates the constraint against an event.
func (c Constraint) Matches(attrs Attrs) bool {
	at, ok := attrs.Get(c.Attr)
	if !ok || at.IsStr != c.IsStr {
		return false
	}
	if c.IsStr {
		switch c.Op {
		case OpEq:
			return at.Str == c.Str
		case OpNe:
			return at.Str != c.Str
		case OpPrefix:
			return strings.HasPrefix(at.Str, c.Str)
		case OpLt:
			return at.Str < c.Str
		case OpLe:
			return at.Str <= c.Str
		case OpGt:
			return at.Str > c.Str
		case OpGe:
			return at.Str >= c.Str
		default:
			return false
		}
	}
	switch c.Op {
	case OpEq:
		return at.Int == c.Int
	case OpNe:
		return at.Int != c.Int
	case OpLt:
		return at.Int < c.Int
	case OpLe:
		return at.Int <= c.Int
	case OpGt:
		return at.Int > c.Int
	case OpGe:
		return at.Int >= c.Int
	default:
		return false
	}
}

// Predicate is a conjunction of constraints; it matches an event when
// every constraint does. An empty predicate matches everything.
type Predicate struct {
	Constraints []Constraint
}

// Matches evaluates the predicate.
func (p Predicate) Matches(attrs Attrs) bool {
	for _, c := range p.Constraints {
		if !c.Matches(attrs) {
			return false
		}
	}
	return true
}

// String renders the predicate for traces.
func (p Predicate) String() string {
	if len(p.Constraints) == 0 {
		return "true"
	}
	parts := make([]string, 0, len(p.Constraints))
	for _, c := range p.Constraints {
		if c.IsStr {
			parts = append(parts, fmt.Sprintf("%s %s %q", c.Attr, c.Op, c.Str))
		} else {
			parts = append(parts, fmt.Sprintf("%s %s %d", c.Attr, c.Op, c.Int))
		}
	}
	return strings.Join(parts, " && ")
}

// ----- wire encoding -----

func encodeAttr(w *protocol.Writer, name string, isStr bool, i int64, s string) {
	w.String(name)
	if isStr {
		w.U32(1)
		w.String(s)
	} else {
		w.U32(0)
		w.I64(i)
	}
}

func decodeAttrInto(r *protocol.Reader) (name string, isStr bool, i int64, s string) {
	name = r.String()
	if r.U32() == 1 {
		isStr = true
		s = r.String()
	} else {
		i = r.I64()
	}
	return name, isStr, i, s
}

// EncodeAttrs serializes an attribute list followed by an opaque body.
func EncodeAttrs(attrs Attrs, body []byte) []byte {
	w := protocol.NewWriter(32 + len(body))
	w.U32(uint32(len(attrs)))
	for _, a := range attrs {
		encodeAttr(w, a.Name, a.IsStr, a.Int, a.Str)
	}
	w.U32(uint32(len(body)))
	out := w.Bytes()
	return append(out, body...)
}

// DecodeAttrs parses an event payload into attributes and body.
func DecodeAttrs(b []byte) (Attrs, []byte, error) {
	r := protocol.NewReader(b)
	n := r.U32()
	if r.Err() != nil || n > uint32(len(b)) {
		return nil, nil, fmt.Errorf("contentnet: bad attr count: %w", protocol.ErrTruncated)
	}
	attrs := make(Attrs, 0, n)
	for i := uint32(0); i < n; i++ {
		name, isStr, iv, sv := decodeAttrInto(r)
		attrs = append(attrs, Attr{Name: name, IsStr: isStr, Int: iv, Str: sv})
	}
	bodyLen := r.U32()
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	if int(bodyLen) > r.Remaining() {
		return nil, nil, fmt.Errorf("contentnet: body overruns payload: %w", protocol.ErrTruncated)
	}
	body := b[len(b)-r.Remaining():][:bodyLen]
	return attrs, body, nil
}

// EncodePredicate serializes a predicate.
func EncodePredicate(p Predicate) []byte {
	w := protocol.NewWriter(32)
	w.U32(uint32(len(p.Constraints)))
	for _, c := range p.Constraints {
		w.String(c.Attr)
		w.U32(uint32(c.Op))
		if c.IsStr {
			w.U32(1)
			w.String(c.Str)
		} else {
			w.U32(0)
			w.I64(c.Int)
		}
	}
	return w.Bytes()
}

// DecodePredicate parses a predicate; it returns the remaining reader so
// composite payloads can continue decoding.
func DecodePredicate(r *protocol.Reader) (Predicate, error) {
	var p Predicate
	n := r.U32()
	if r.Err() != nil {
		return p, r.Err()
	}
	for i := uint32(0); i < n; i++ {
		c := Constraint{Attr: r.String(), Op: Op(r.U32())}
		if r.U32() == 1 {
			c.IsStr = true
			c.Str = r.String()
		} else {
			c.Int = r.I64()
		}
		if r.Err() != nil {
			return p, r.Err()
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p, nil
}
