package contentnet

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.4.%d", i), 7000)
}

func TestConstraintMatching(t *testing.T) {
	attrs := Attrs{
		IntAttr("price", 42),
		StrAttr("symbol", "GOOG"),
	}
	tests := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{Attr: "price", Op: OpEq, Int: 42}, true},
		{Constraint{Attr: "price", Op: OpEq, Int: 41}, false},
		{Constraint{Attr: "price", Op: OpNe, Int: 41}, true},
		{Constraint{Attr: "price", Op: OpLt, Int: 50}, true},
		{Constraint{Attr: "price", Op: OpLt, Int: 42}, false},
		{Constraint{Attr: "price", Op: OpLe, Int: 42}, true},
		{Constraint{Attr: "price", Op: OpGt, Int: 41}, true},
		{Constraint{Attr: "price", Op: OpGe, Int: 43}, false},
		{Constraint{Attr: "symbol", Op: OpEq, IsStr: true, Str: "GOOG"}, true},
		{Constraint{Attr: "symbol", Op: OpPrefix, IsStr: true, Str: "GO"}, true},
		{Constraint{Attr: "symbol", Op: OpPrefix, IsStr: true, Str: "AA"}, false},
		{Constraint{Attr: "symbol", Op: OpNe, IsStr: true, Str: "MSFT"}, true},
		// Type mismatch and missing attribute never match.
		{Constraint{Attr: "price", Op: OpEq, IsStr: true, Str: "42"}, false},
		{Constraint{Attr: "volume", Op: OpGt, Int: 0}, false},
	}
	for i, tt := range tests {
		if got := tt.c.Matches(attrs); got != tt.want {
			t.Errorf("case %d (%s %s): got %v, want %v", i, tt.c.Attr, tt.c.Op, got, tt.want)
		}
	}
}

func TestPredicateConjunction(t *testing.T) {
	p := Predicate{Constraints: []Constraint{
		{Attr: "price", Op: OpGt, Int: 10},
		{Attr: "symbol", Op: OpEq, IsStr: true, Str: "GOOG"},
	}}
	if !p.Matches(Attrs{IntAttr("price", 20), StrAttr("symbol", "GOOG")}) {
		t.Error("conjunction should match")
	}
	if p.Matches(Attrs{IntAttr("price", 5), StrAttr("symbol", "GOOG")}) {
		t.Error("failed constraint should fail the conjunction")
	}
	if !(Predicate{}).Matches(nil) {
		t.Error("empty predicate must match everything")
	}
	if s := p.String(); s == "" || s == "true" {
		t.Errorf("String() = %q", s)
	}
	if (Predicate{}).String() != "true" {
		t.Error("empty predicate String() != true")
	}
}

func TestAttrsEncodeDecodeRoundTrip(t *testing.T) {
	attrs := Attrs{IntAttr("a", -7), StrAttr("b", "xyz"), IntAttr("c", 1<<40)}
	body := []byte("payload")
	got, gotBody, err := DecodeAttrs(EncodeAttrs(attrs, body))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != attrs[0] || got[1] != attrs[1] || got[2] != attrs[2] {
		t.Errorf("attrs = %+v", got)
	}
	if string(gotBody) != "payload" {
		t.Errorf("body = %q", gotBody)
	}
	// Truncations are rejected.
	full := EncodeAttrs(attrs, body)
	for n := 0; n < len(full)-len(body); n++ {
		if _, _, err := DecodeAttrs(full[:n]); err == nil {
			t.Fatalf("accepted truncation at %d", n)
		}
	}
}

func TestAttrsRoundTripProperty(t *testing.T) {
	f := func(names []string, vals []int64, body []byte) bool {
		var attrs Attrs
		for i, n := range names {
			if i >= len(vals) {
				break
			}
			attrs = append(attrs, IntAttr(n, vals[i]))
		}
		got, gotBody, err := DecodeAttrs(EncodeAttrs(attrs, body))
		if err != nil || len(got) != len(attrs) {
			return false
		}
		for i := range attrs {
			want := attrs[i]
			if len(want.Name) > 65535 {
				want.Name = want.Name[:65535]
			}
			if got[i] != want {
				return false
			}
		}
		return string(gotBody) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdvertisementRoundTrip(t *testing.T) {
	ad := Advertisement{
		Subscriber: nid(3),
		SubID:      7,
		Hops:       2,
		Pred: Predicate{Constraints: []Constraint{
			{Attr: "x", Op: OpGe, Int: 5},
			{Attr: "s", Op: OpPrefix, IsStr: true, Str: "ab"},
		}},
	}
	got, err := DecodeAdvertisement(ad.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Subscriber != ad.Subscriber || got.SubID != 7 || got.Hops != 2 {
		t.Errorf("header = %+v", got)
	}
	if len(got.Pred.Constraints) != 2 || got.Pred.Constraints[1].Str != "ab" {
		t.Errorf("pred = %+v", got.Pred)
	}
}

func newRouter(self message.NodeID) (*Router, *algtest.FakeAPI) {
	api := algtest.New(self)
	r := &Router{}
	r.Attach(api)
	return r, api
}

func TestSubscribeFloodsAdvertisement(t *testing.T) {
	r, api := newRouter(nid(1))
	r.Known.Add(nid(2))
	r.Known.Add(nid(3))
	r.Subscribe(1, Predicate{Constraints: []Constraint{{Attr: "x", Op: OpGt, Int: 0}}})
	if got := len(api.SentOfType(TypeAdvertise)); got != 2 {
		t.Errorf("advertise flood = %d, want 2", got)
	}
	if r.KnownSubscriptions() != 1 {
		t.Errorf("routes = %d", r.KnownSubscriptions())
	}
}

func TestAdvertiseReverseAndReflood(t *testing.T) {
	r, api := newRouter(nid(2))
	r.Known.Add(nid(3))
	r.Known.Add(nid(4))
	ad := Advertisement{Subscriber: nid(9), SubID: 1,
		Pred: Predicate{Constraints: []Constraint{{Attr: "x", Op: OpEq, Int: 1}}}}
	m := message.New(TypeAdvertise, nid(3), 0, 0, ad.Encode())
	if v := r.Process(m); v != engine.Done {
		t.Fatal("verdict")
	}
	m.Release()
	// Reflood excludes the arrival link and subscriber.
	relays := api.SentOfType(TypeAdvertise)
	if len(relays) != 1 || relays[0].Dest != nid(4) {
		t.Fatalf("relays = %+v", relays)
	}
	// A duplicate via another path is not re-flooded and does not change
	// the reverse path.
	dup := message.New(TypeAdvertise, nid(4), 0, 0, ad.Encode())
	r.Process(dup)
	dup.Release()
	if got := len(api.SentOfType(TypeAdvertise)); got != 1 {
		t.Errorf("duplicate ad re-flooded: %d", got)
	}
	// A matching event arriving from elsewhere forwards to nid(3), the
	// first-seen reverse path.
	api.Reset()
	ev := message.New(EventType, nid(5), 0, 1, EncodeAttrs(Attrs{IntAttr("x", 1)}, nil))
	r.Process(ev)
	ev.Release()
	fwd := api.SentOfType(EventType)
	if len(fwd) != 1 || fwd[0].Dest != nid(3) {
		t.Fatalf("event forward = %+v, want via nid(3)", fwd)
	}
}

func TestEventLocalDeliveryAndFiltering(t *testing.T) {
	r, api := newRouter(nid(1))
	var delivered []Event
	r.OnDeliver = func(e Event) { delivered = append(delivered, e) }
	r.Subscribe(1, Predicate{Constraints: []Constraint{{Attr: "x", Op: OpGt, Int: 10}}})
	api.Reset()

	match := message.New(EventType, nid(5), 0, 1, EncodeAttrs(Attrs{IntAttr("x", 11)}, []byte("hi")))
	r.Process(match)
	match.Release()
	miss := message.New(EventType, nid(5), 0, 2, EncodeAttrs(Attrs{IntAttr("x", 3)}, nil))
	r.Process(miss)
	miss.Release()

	if r.Delivered() != 1 || len(delivered) != 1 {
		t.Fatalf("delivered = %d/%d, want 1", r.Delivered(), len(delivered))
	}
	if string(delivered[0].Body) != "hi" || delivered[0].Publisher != nid(5) {
		t.Errorf("event = %+v", delivered[0])
	}
	if len(api.SentOfType(EventType)) != 0 {
		t.Error("events forwarded with no remote subscribers")
	}
}

func TestEventDuplicateSuppression(t *testing.T) {
	r, _ := newRouter(nid(1))
	r.Subscribe(1, Predicate{})
	ev1 := message.New(EventType, nid(5), 0, 7, EncodeAttrs(nil, nil))
	r.Process(ev1)
	ev1.Release()
	ev2 := message.New(EventType, nid(5), 0, 7, EncodeAttrs(nil, nil))
	r.Process(ev2)
	ev2.Release()
	if r.Delivered() != 1 {
		t.Errorf("duplicate event delivered twice: %d", r.Delivered())
	}
}

func TestUnsubscribeRemovesRoute(t *testing.T) {
	r, api := newRouter(nid(2))
	r.Known.Add(nid(4))
	ad := Advertisement{Subscriber: nid(9), SubID: 1, Pred: Predicate{}}
	m := message.New(TypeAdvertise, nid(3), 0, 0, ad.Encode())
	r.Process(m)
	m.Release()
	if r.KnownSubscriptions() != 1 {
		t.Fatal("route missing")
	}
	un := message.New(TypeUnadvertise, nid(3), 0, 0, ad.Encode())
	r.Process(un)
	un.Release()
	if r.KnownSubscriptions() != 0 {
		t.Error("route not removed")
	}
	if got := len(api.SentOfType(TypeUnadvertise)); got != 1 {
		t.Errorf("withdrawal not re-flooded: %d", got)
	}
}

// TestContentNetworkEndToEnd runs a five-node content-based network over
// real engines: two subscribers with disjoint predicates, one publisher;
// each event reaches exactly the matching subscribers.
func TestContentNetworkEndToEnd(t *testing.T) {
	net := vnet.New()
	defer net.Close()
	const n = 5
	routers := make([]*Router, n)
	engines := make([]*engine.Engine, n)
	for i := n - 1; i >= 0; i-- {
		routers[i] = &Router{}
		e, err := engine.New(engine.Config{
			ID:        nid(i + 1),
			Transport: engine.VNet{Net: net},
			Algorithm: routers[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		engines[i] = e
	}
	// Line topology membership: node i knows i-1 and i+1 (ads relay
	// hop by hop; reverse paths span the line). Wait for every engine to
	// apply its membership before any advertisement floods — a relay
	// with an empty view would drop the ad.
	applied := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		engines[i].Do(func(api engine.API) {
			if i > 0 {
				routers[i].Known.Add(nid(i))
			}
			if i < n-1 {
				routers[i].Known.Add(nid(i + 2))
			}
			applied <- struct{}{}
		})
	}
	for i := 0; i < n; i++ {
		select {
		case <-applied:
		case <-time.After(5 * time.Second):
			t.Fatal("membership setup timed out")
		}
	}
	// Node 1 wants cheap events, node 5 wants expensive ones.
	engines[0].Do(func(engine.API) {
		routers[0].Subscribe(1, Predicate{Constraints: []Constraint{{Attr: "price", Op: OpLt, Int: 100}}})
	})
	engines[4].Do(func(engine.API) {
		routers[4].Subscribe(1, Predicate{Constraints: []Constraint{{Attr: "price", Op: OpGe, Int: 100}}})
	})
	// Wait for the advertisements to traverse the line.
	waitFor(t, 5*time.Second, "routing tables", func() bool {
		return routers[2].KnownSubscriptions() == 2
	})
	// Publish from the middle.
	engines[2].Do(func(engine.API) {
		routers[2].Publish(Attrs{IntAttr("price", 10)}, []byte("cheap"))
		routers[2].Publish(Attrs{IntAttr("price", 500)}, []byte("expensive"))
		routers[2].Publish(Attrs{IntAttr("price", 70)}, []byte("cheap2"))
	})
	waitFor(t, 5*time.Second, "deliveries", func() bool {
		return routers[0].Delivered() == 2 && routers[4].Delivered() == 1
	})
	// Intermediate pure routers consumed nothing.
	for _, i := range []int{1, 2, 3} {
		if got := routers[i].Delivered(); got != 0 {
			t.Errorf("router %d delivered %d events without a subscription", i, got)
		}
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
