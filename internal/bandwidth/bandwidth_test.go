package bandwidth

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// rateOf measures the achieved rate of transferring n bytes through f.
func rateOf(t *testing.T, n int, f func([]byte)) float64 {
	t.Helper()
	start := time.Now()
	f(make([]byte, n))
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		t.Fatal("transfer finished instantaneously; cannot measure")
	}
	return float64(n) / elapsed
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	lo, hi := want*(1-frac), want*(1+frac)
	if got < lo || got > hi {
		t.Errorf("%s = %.0f B/s, want within [%.0f, %.0f]", name, got, lo, hi)
	}
}

func TestLimiterEnforcesRate(t *testing.T) {
	const rate = 200 << 10 // 200 KiB/s
	l := NewLimiter(rate)
	defer l.Close()
	got := rateOf(t, 60<<10, func(b []byte) {
		for off := 0; off < len(b); off += 4096 {
			l.Wait(4096)
		}
	})
	within(t, "limited rate", got, rate, 0.25)
}

func TestUnlimitedLimiterDoesNotBlock(t *testing.T) {
	l := NewLimiter(Unlimited)
	defer l.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			l.Wait(1 << 20)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unlimited limiter blocked")
	}
}

func TestWaitLargerThanBucket(t *testing.T) {
	// A single Wait far larger than the bucket must take ~n/rate seconds.
	const rate = 1 << 20 // 1 MiB/s
	l := NewLimiter(rate)
	defer l.Close()
	start := time.Now()
	l.Wait(512 << 10) // should take ~0.5 s
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond || elapsed > 900*time.Millisecond {
		t.Errorf("Wait(512KiB) at 1MiB/s took %v, want ~500ms", elapsed)
	}
}

func TestSetRateTakesEffectWhileBlocked(t *testing.T) {
	l := NewLimiter(1024) // 1 KiB/s: Wait(64KiB) would take ~64 s
	defer l.Close()
	done := make(chan struct{})
	go func() {
		l.Wait(64 << 10)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	l.SetRate(Unlimited)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SetRate(Unlimited) did not release blocked Wait")
	}
}

func TestCloseReleasesWaiters(t *testing.T) {
	l := NewLimiter(1)
	done := make(chan struct{})
	go func() {
		l.Wait(1 << 20)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not release blocked Wait")
	}
}

func TestSharedLimiterSplitsBudget(t *testing.T) {
	// Two writers sharing one limiter should together achieve roughly the
	// configured rate — the per-node budget semantics of the paper.
	const rate = 400 << 10
	l := NewLimiter(rate)
	defer l.Close()
	const each = 60 << 10
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for off := 0; off < each; off += 4096 {
				l.Wait(4096)
			}
		}()
	}
	wg.Wait()
	got := float64(2*each) / time.Since(start).Seconds()
	within(t, "shared aggregate rate", got, rate, 0.3)
}

func TestShaperTakesMinOfLimiters(t *testing.T) {
	fast := NewLimiter(10 << 20)
	slow := NewLimiter(200 << 10)
	defer fast.Close()
	defer slow.Close()
	s := NewShaper(fast, slow)
	got := rateOf(t, 60<<10, func(b []byte) {
		for off := 0; off < len(b); off += 4096 {
			s.Wait(4096)
		}
	})
	within(t, "composed rate", got, 200<<10, 0.3)
}

func TestNewShaperSkipsNil(t *testing.T) {
	s := NewShaper(nil, NewLimiter(Unlimited), nil)
	if len(s.limits) != 1 {
		t.Errorf("NewShaper kept %d limiters, want 1", len(s.limits))
	}
	s.Wait(1024) // must not panic
}

func TestShapedWriterRate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLimiter(300 << 10)
	defer l.Close()
	w := NewWriter(&buf, NewShaper(l))
	payload := make([]byte, 90<<10)
	start := time.Now()
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := float64(n) / time.Since(start).Seconds()
	within(t, "writer rate", got, 300<<10, 0.3)
	if buf.Len() != len(payload) {
		t.Errorf("underlying writer got %d bytes, want %d", buf.Len(), len(payload))
	}
}

func TestShapedWriterNilShaperPassthrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, nil)
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "abc" {
		t.Errorf("passthrough wrote %q", buf.String())
	}
}

func TestShapedReaderRate(t *testing.T) {
	src := bytes.NewReader(make([]byte, 90<<10))
	l := NewLimiter(300 << 10)
	defer l.Close()
	r := NewReader(src, NewShaper(l))
	start := time.Now()
	n, err := io.Copy(io.Discard, r)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(n) / time.Since(start).Seconds()
	within(t, "reader rate", got, 300<<10, 0.3)
}

func TestNodeBudgetAsymmetric(t *testing.T) {
	// DSL-like: generous downlink, narrow uplink.
	b := NewNodeBudget(Unlimited, 100<<10, 10<<20)
	defer b.Close()
	up := b.UpShaper(nil)
	got := rateOf(t, 50<<10, func(bb []byte) {
		for off := 0; off < len(bb); off += 4096 {
			up.Wait(4096)
		}
	})
	// Generous bounds: host scheduling noise on a shared vCPU can stall
	// the waiter between refills.
	within(t, "uplink rate", got, 100<<10, 0.4)

	down := b.DownShaper(nil)
	start := time.Now()
	for off := 0; off < 1<<20; off += 4096 {
		down.Wait(4096)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("downlink at 10 MiB/s too slow for 1 MiB transfer")
	}
}

func TestNodeBudgetTotalCapsBothDirections(t *testing.T) {
	b := NewNodeBudget(200<<10, Unlimited, Unlimited)
	defer b.Close()
	up, down := b.UpShaper(nil), b.DownShaper(nil)
	const each = 30 << 10
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range []*Shaper{up, down} {
		wg.Add(1)
		go func(s *Shaper) {
			defer wg.Done()
			for off := 0; off < each; off += 4096 {
				s.Wait(4096)
			}
		}(s)
	}
	wg.Wait()
	got := float64(2*each) / time.Since(start).Seconds()
	within(t, "total budget across directions", got, 200<<10, 0.35)
}

func TestRateAccessor(t *testing.T) {
	l := NewLimiter(12345)
	defer l.Close()
	if got := l.Rate(); got != 12345 {
		t.Errorf("Rate() = %d, want 12345", got)
	}
	l.SetRate(54321)
	if got := l.Rate(); got != 54321 {
		t.Errorf("Rate() after SetRate = %d, want 54321", got)
	}
}
