// Package bandwidth implements the paper's emulation of bandwidth
// availability: token-bucket limiters that wrap socket send and receive
// paths in order to precisely control the bandwidth used per interval.
// Three categories are supported, exactly as in the paper: per-node total
// bandwidth, per-node incoming/outgoing (asymmetric) bandwidth, and
// per-link bandwidth. Rates are settable at start-up and tunable at
// runtime (from the observer), so artificial bottlenecks may be produced
// or relieved on the fly.
package bandwidth

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Unlimited disables shaping when used as a rate.
const Unlimited int64 = 0

// DefaultBurstWindow sizes each bucket: a limiter may burst at most
// rate × window bytes, keeping emulated throughput smooth at small
// timescales while remaining accurate over measurement intervals.
const DefaultBurstWindow = 50 * time.Millisecond

// Limiter is a token-bucket rate limiter measured in bytes per second. A
// zero or negative rate means unlimited. Limiters are safe for concurrent
// use; several connections may share one limiter to model a shared budget
// (for example a node's uplink shared by all its outgoing links).
type Limiter struct {
	// active mirrors rate > 0 and lets the hot data path skip the mutex
	// entirely for unlimited limiters — every shaped byte would otherwise
	// pay three lock round-trips (link, direction, total) just to learn
	// that no shaping is configured.
	active atomic.Bool

	mu     sync.Mutex
	rate   int64 // bytes/sec; <=0 means unlimited
	burst  time.Duration
	tokens float64
	last   time.Time
	closed bool
	wake   *sync.Cond
}

// NewLimiter returns a limiter at the given rate in bytes per second.
func NewLimiter(rate int64) *Limiter {
	l := &Limiter{rate: rate, burst: DefaultBurstWindow, last: time.Now()}
	l.active.Store(rate > 0)
	l.wake = sync.NewCond(&l.mu)
	return l
}

// Rate reports the configured rate; Unlimited when shaping is off.
func (l *Limiter) Rate() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate retunes the limiter, waking any blocked waiters so the new rate
// takes effect immediately — this is what lets the observer relieve or
// impose bottlenecks at runtime.
func (l *Limiter) SetRate(rate int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(time.Now())
	l.rate = rate
	l.active.Store(rate > 0)
	cap := l.capLocked()
	if cap > 0 && l.tokens > cap {
		l.tokens = cap
	}
	l.wake.Broadcast()
}

// Close releases all waiters; subsequent Waits return immediately. Used
// during engine teardown so shaped senders cannot hang shutdown.
func (l *Limiter) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.wake.Broadcast()
}

func (l *Limiter) capLocked() float64 {
	if l.rate <= 0 {
		return 0
	}
	c := float64(l.rate) * l.burst.Seconds()
	if c < 1 {
		c = 1
	}
	return c
}

func (l *Limiter) refillLocked(now time.Time) {
	if l.rate <= 0 {
		l.last = now
		return
	}
	elapsed := now.Sub(l.last).Seconds()
	if elapsed <= 0 {
		return
	}
	l.tokens += elapsed * float64(l.rate)
	if cap := l.capLocked(); l.tokens > cap {
		l.tokens = cap
	}
	l.last = now
}

// Wait blocks until n bytes of budget are available and consumes them.
// Requests larger than the bucket capacity are admitted in installments,
// so arbitrarily large writes still respect the long-run rate. Wait
// returns immediately when the limiter is unlimited or closed.
func (l *Limiter) Wait(n int) {
	if n <= 0 || !l.active.Load() {
		return
	}
	remaining := float64(n)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed || l.rate <= 0 {
			return
		}
		l.refillLocked(time.Now())
		if l.tokens > 0 {
			take := l.tokens
			if take > remaining {
				take = remaining
			}
			l.tokens -= take
			remaining -= take
			if remaining <= 0 {
				return
			}
		}
		// Sleep until enough tokens should have accumulated, but stay
		// responsive to SetRate/Close broadcasts.
		need := remaining
		if cap := l.capLocked(); need > cap {
			need = cap
		}
		wait := time.Duration(need / float64(l.rate) * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		l.sleepLocked(wait)
	}
}

// sleepLocked releases the lock for at most d, waking early on broadcast.
func (l *Limiter) sleepLocked(d time.Duration) {
	timer := time.AfterFunc(d, func() {
		l.mu.Lock()
		l.wake.Broadcast()
		l.mu.Unlock()
	})
	l.wake.Wait()
	timer.Stop()
}

// Shaper applies an ordered set of limiters to a byte stream. The paper
// stacks per-link, per-node-direction, and per-node-total budgets on each
// socket; a Shaper composes them, consuming from every limiter for each
// chunk transferred.
type Shaper struct {
	limits []*Limiter
}

// NewShaper composes limiters; nil entries are skipped.
func NewShaper(limits ...*Limiter) *Shaper {
	s := &Shaper{}
	for _, l := range limits {
		if l != nil {
			s.limits = append(s.limits, l)
		}
	}
	return s
}

// Wait consumes n bytes of budget from every composed limiter.
func (s *Shaper) Wait(n int) {
	for _, l := range s.limits {
		l.Wait(n)
	}
}

// Active reports whether any composed limiter currently shapes traffic.
// Rates are runtime-tunable, so callers must re-check per transfer rather
// than caching the answer.
func (s *Shaper) Active() bool {
	for _, l := range s.limits {
		if l.active.Load() {
			return true
		}
	}
	return false
}

// maxChunk bounds how many bytes pass a shaped writer per budget request,
// so large messages are paced rather than admitted in one burst.
const maxChunk = 4 << 10

// Writer shapes writes to an underlying writer.
type Writer struct {
	w io.Writer
	s *Shaper
}

// NewWriter wraps w with the shaper. A nil shaper passes through.
func NewWriter(w io.Writer, s *Shaper) *Writer { return &Writer{w: w, s: s} }

// Write pushes b through the shaper in paced chunks. When no composed
// limiter is active the write passes through whole, with no chunking and
// no budget bookkeeping.
func (sw *Writer) Write(b []byte) (int, error) {
	if sw.s == nil || !sw.s.Active() {
		return sw.w.Write(b)
	}
	written := 0
	for len(b) > 0 {
		n := len(b)
		if n > maxChunk {
			n = maxChunk
		}
		sw.s.Wait(n)
		m, err := sw.w.Write(b[:n])
		written += m
		if err != nil {
			return written, err
		}
		b = b[n:]
	}
	return written, nil
}

// Reader shapes reads from an underlying reader, modeling download-side
// (incoming) bandwidth caps.
type Reader struct {
	r io.Reader
	s *Shaper
}

// NewReader wraps r with the shaper. A nil shaper passes through.
func NewReader(r io.Reader, s *Shaper) *Reader { return &Reader{r: r, s: s} }

// Read fills b at the shaped rate. When no composed limiter is active the
// read passes through whole — in particular it is not clamped to maxChunk,
// so unshaped receivers refill their buffers with large reads.
func (sr *Reader) Read(b []byte) (int, error) {
	if sr.s == nil || !sr.s.Active() {
		return sr.r.Read(b)
	}
	if len(b) > maxChunk {
		b = b[:maxChunk]
	}
	n, err := sr.r.Read(b)
	if n > 0 {
		sr.s.Wait(n)
	}
	return n, err
}

// NodeBudget groups one overlay node's emulated bandwidth: total, uplink
// (outgoing) and downlink (incoming). Any may be Unlimited. All outgoing
// sockets of the node share Up and Total; all incoming sockets share Down
// and Total, so competing links divide the node budget as on a real
// last-mile access link.
type NodeBudget struct {
	Total *Limiter
	Up    *Limiter
	Down  *Limiter
}

// NewNodeBudget builds a budget with the given rates in bytes per second.
func NewNodeBudget(total, up, down int64) *NodeBudget {
	return &NodeBudget{
		Total: NewLimiter(total),
		Up:    NewLimiter(up),
		Down:  NewLimiter(down),
	}
}

// UpShaper composes the node's outgoing budget with a per-link limiter.
func (b *NodeBudget) UpShaper(link *Limiter) *Shaper {
	return NewShaper(link, b.Up, b.Total)
}

// DownShaper composes the node's incoming budget with a per-link limiter.
func (b *NodeBudget) DownShaper(link *Limiter) *Shaper {
	return NewShaper(link, b.Down, b.Total)
}

// Close releases all three limiters.
func (b *NodeBudget) Close() {
	b.Total.Close()
	b.Up.Close()
	b.Down.Close()
}
