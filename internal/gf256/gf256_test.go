package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldAxiomsProperty(t *testing.T) {
	// Associativity, commutativity, distributivity for random elements.
	f := func(a, b, c byte) bool {
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity: a*(b+c) = a*b + a*c.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIdentities(t *testing.T) {
	for a := 0; a < 256; a++ {
		x := byte(a)
		if Add(x, 0) != x {
			t.Fatalf("additive identity fails for %d", a)
		}
		if Add(x, x) != 0 {
			t.Fatalf("self-inverse addition fails for %d", a)
		}
		if Mul(x, 1) != x {
			t.Fatalf("multiplicative identity fails for %d", a)
		}
		if Mul(x, 0) != 0 {
			t.Fatalf("zero annihilation fails for %d", a)
		}
	}
}

func TestInverseExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		x := byte(a)
		inv := Inv(x)
		if Mul(x, inv) != 1 {
			t.Fatalf("Inv(%d) = %d is not an inverse", a, inv)
		}
		if Div(1, x) != inv {
			t.Fatalf("Div(1,%d) != Inv(%d)", a, a)
		}
	}
}

func TestDivIsMulByInverse(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div(x,0) did not panic")
		}
	}()
	Div(5, 0)
}

func TestMulMatchesSchoolbook(t *testing.T) {
	// Carry-less multiply with reduction by 0x11B, checked exhaustively
	// against the table implementation.
	slow := func(a, b byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= polynomial
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestExpGenerator(t *testing.T) {
	if Exp(0) != 1 {
		t.Errorf("Exp(0) = %d, want 1", Exp(0))
	}
	if Exp(1) != generator {
		t.Errorf("Exp(1) = %d, want %d", Exp(1), generator)
	}
	if Exp(255) != 1 {
		t.Errorf("Exp(255) = %d, want 1 (order 255)", Exp(255))
	}
	if Exp(-1) != Exp(254) {
		t.Errorf("negative exponent not normalized")
	}
	// The generator's powers must enumerate all 255 nonzero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Errorf("generator order %d, want 255", len(seen))
	}
}

func TestVectorOps(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	sum := append([]byte(nil), a...)
	AddVec(sum, b)
	for i := range a {
		if sum[i] != a[i]^b[i] {
			t.Fatalf("AddVec[%d] = %d", i, sum[i])
		}
	}
	scaled := make([]byte, 4)
	MulVec(scaled, 7, a)
	for i := range a {
		if scaled[i] != Mul(7, a[i]) {
			t.Fatalf("MulVec[%d] = %d", i, scaled[i])
		}
	}
	acc := append([]byte(nil), b...)
	Axpy(acc, 9, a)
	for i := range b {
		if acc[i] != Add(b[i], Mul(9, a[i])) {
			t.Fatalf("Axpy[%d] = %d", i, acc[i])
		}
	}
	// c=0 variants.
	MulVec(scaled, 0, a)
	if !bytes.Equal(scaled, []byte{0, 0, 0, 0}) {
		t.Error("MulVec by zero not zero")
	}
	saved := append([]byte(nil), acc...)
	Axpy(acc, 0, a)
	if !bytes.Equal(acc, saved) {
		t.Error("Axpy with zero coefficient changed dst")
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddVec": func() { AddVec([]byte{1}, []byte{1, 2}) },
		"MulVec": func() { MulVec([]byte{1}, 2, []byte{1, 2}) },
		"Axpy":   func() { Axpy([]byte{1}, 2, []byte{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCombineAndSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4) // 2..5 source messages
		width := 1 + rng.Intn(64)
		src := make([][]byte, n)
		for i := range src {
			src[i] = make([]byte, width)
			rng.Read(src[i])
		}
		// Build n random coded combinations until full rank.
		var coeffs [][]byte
		var coded [][]byte
		for len(coeffs) < n {
			c := make([]byte, n)
			rng.Read(c)
			trialCoeffs := append(append([][]byte(nil), coeffs...), c)
			if Rank(trialCoeffs) != len(trialCoeffs) {
				continue
			}
			coeffs = trialCoeffs
			coded = append(coded, Combine(c, src))
		}
		decoded, ok := Solve(coeffs, coded)
		if !ok {
			t.Fatalf("trial %d: full-rank system reported singular", trial)
		}
		for i := range src {
			if !bytes.Equal(decoded[i], src[i]) {
				t.Fatalf("trial %d: decoded[%d] mismatch", trial, i)
			}
		}
	}
}

func TestSolveSingularMatrix(t *testing.T) {
	// Two identical combinations: rank 1, not solvable.
	a := [][]byte{{1, 2}, {1, 2}}
	b := [][]byte{{9, 9}, {9, 9}}
	if _, ok := Solve(a, b); ok {
		t.Error("Solve accepted a singular system")
	}
}

func TestSolveRejectsMalformedInput(t *testing.T) {
	if _, ok := Solve(nil, nil); ok {
		t.Error("Solve(nil) succeeded")
	}
	if _, ok := Solve([][]byte{{1}}, [][]byte{{1}, {2}}); ok {
		t.Error("Solve with mismatched row counts succeeded")
	}
	if _, ok := Solve([][]byte{{1, 2}}, [][]byte{{1}}); ok {
		t.Error("Solve with non-square matrix succeeded")
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		rows [][]byte
		want int
	}{
		{nil, 0},
		{[][]byte{{0, 0}}, 0},
		{[][]byte{{1, 0}, {0, 1}}, 2},
		{[][]byte{{1, 1}, {2, 2}}, 1}, // second row = 2 * first
		{[][]byte{{1, 2}, {3, 4}, {5, 6}}, 2},
	}
	for i, tt := range tests {
		if got := Rank(tt.rows); got != tt.want {
			t.Errorf("case %d: Rank = %d, want %d", i, got, tt.want)
		}
	}
}

func TestPaperCodingScenario(t *testing.T) {
	// Fig. 8(b): node D codes a+b; F holds a and a+b and must recover b.
	a := []byte("stream-a payload")
	b := []byte("stream-b payload")
	aPlusB := Combine([]byte{1, 1}, [][]byte{a, b})
	decoded, ok := Solve(
		[][]byte{{1, 0}, {1, 1}}, // rows: a, a+b
		[][]byte{a, aPlusB},
	)
	if !ok {
		t.Fatal("a, a+b should be decodable")
	}
	if !bytes.Equal(decoded[0], a) || !bytes.Equal(decoded[1], b) {
		t.Error("decoding a,b from {a, a+b} failed")
	}
}
