// Package gf256 implements arithmetic in the Galois field GF(2^8), the
// field the paper's network-coding case study codes messages in ("linear
// codes in the Galois Field, and more specifically, with GF(2^8)").
// Multiplication uses log/antilog tables over the AES polynomial
// x^8+x^4+x^3+x+1 (0x11B) with generator 3. Vector helpers code whole
// message payloads; a Gaussian-elimination solver recovers the original
// streams from any full-rank set of coded messages.
package gf256

import "fmt"

// polynomial is the reduction polynomial (0x11B, low eight bits kept).
const polynomial = 0x1B

// generator 3 is primitive for this polynomial.
const generator = 3

type tables struct {
	exp [512]byte // doubled to skip the mod 255 in Mul
	log [256]byte
}

// _t holds the precomputed log/antilog tables.
var _t = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.log[x] = byte(i)
		// Multiply x by the generator (3): x*3 = x*2 + x.
		d := x << 1
		if x&0x80 != 0 {
			d ^= polynomial
		}
		x = d ^ x
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// Add returns a+b in GF(2^8) (carry-less: XOR). Subtraction is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _t.exp[int(_t.log[a])+int(_t.log[b])]
}

// Inv returns the multiplicative inverse of a; it panics on zero, which
// has no inverse.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return _t.exp[255-int(_t.log[a])]
}

// Div returns a/b; it panics when b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _t.exp[int(_t.log[a])+255-int(_t.log[b])]
}

// Exp returns the generator raised to the power e (mod 255).
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return _t.exp[e]
}

// AddVec sets dst = dst + src elementwise; the slices must be equal
// length.
func AddVec(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: AddVec length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// MulVec sets dst = c * src; dst and src may alias. The slices must be
// equal length.
func MulVec(dst []byte, c byte, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulVec length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	lc := int(_t.log[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = _t.exp[lc+int(_t.log[s])]
	}
}

// Axpy sets dst = dst + c*src (the coding kernel). The slices must be
// equal length.
func Axpy(dst []byte, c byte, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: Axpy length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	lc := int(_t.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= _t.exp[lc+int(_t.log[s])]
		}
	}
}

// Combine returns the linear combination sum_i coeffs[i]*vecs[i]; all
// vectors must share one length.
func Combine(coeffs []byte, vecs [][]byte) []byte {
	if len(coeffs) != len(vecs) {
		panic("gf256: Combine needs one coefficient per vector")
	}
	if len(vecs) == 0 {
		return nil
	}
	out := make([]byte, len(vecs[0]))
	for i, v := range vecs {
		Axpy(out, coeffs[i], v)
	}
	return out
}

// Solve performs Gaussian elimination over GF(2^8): given an n×n
// coefficient matrix A (rows) and the corresponding coded payloads
// B (rows), it returns X with A·X = B, i.e. the original messages. It
// reports false when the matrix is singular (the coded set is not
// full-rank). A and B are not modified.
func Solve(a [][]byte, b [][]byte) ([][]byte, bool) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, false
	}
	width := len(b[0])
	// Working copies.
	m := make([][]byte, n)
	x := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(a[i]) != n || len(b[i]) != width {
			return nil, false
		}
		m[i] = append([]byte(nil), a[i]...)
		x[i] = append([]byte(nil), b[i]...)
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Normalize the pivot row.
		inv := Inv(m[col][col])
		MulVec(m[col], inv, m[col])
		MulVec(x[col], inv, x[col])
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			c := m[r][col]
			Axpy(m[r], c, m[col])
			Axpy(x[r], c, x[col])
		}
	}
	return x, true
}

// Rank computes the rank of a matrix of coefficient rows.
func Rank(rows [][]byte) int {
	if len(rows) == 0 {
		return 0
	}
	width := len(rows[0])
	m := make([][]byte, len(rows))
	for i, r := range rows {
		m[i] = append([]byte(nil), r...)
	}
	rank := 0
	for col := 0; col < width && rank < len(m); col++ {
		pivot := -1
		for r := rank; r < len(m); r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		inv := Inv(m[rank][col])
		MulVec(m[rank], inv, m[rank])
		for r := 0; r < len(m); r++ {
			if r != rank && m[r][col] != 0 {
				Axpy(m[r], m[r][col], m[rank])
			}
		}
		rank++
	}
	return rank
}
