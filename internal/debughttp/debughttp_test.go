package debughttp

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	Publish("debughttp.test", func() any { return map[string]int{"answer": 42} })
	Publish("debughttp.test", func() any { return nil }) // duplicate: must not panic

	l, err := Serve("127.0.0.1:0", map[string]http.Handler{
		"/debug/timeline": Text(func() string { return "tick tock" }),
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer l.Close()
	base := "http://" + l.Addr().String()

	if code, body := get(t, base+"/debug/vars"); code != 200 ||
		!strings.Contains(body, `"debughttp.test"`) || !strings.Contains(body, `"answer":42`) {
		t.Errorf("/debug/vars: code=%d body=%.200s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d body=%.200s", code, body)
	}
	if code, body := get(t, base+"/debug/timeline"); code != 200 || body != "tick tock" {
		t.Errorf("/debug/timeline: code=%d body=%q", code, body)
	}
}
