// Package debughttp serves the stdlib debug endpoints — expvar counters
// under /debug/vars and pprof profiles under /debug/pprof/ — on an
// auxiliary listener, so a deployed inode/iobserver/ibench process can be
// inspected live without linking any external dependency. The handlers
// are mounted on a private mux rather than http.DefaultServeMux: the
// debug port is opt-in and never shares a mux with anything else.
package debughttp

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve binds addr and serves the debug endpoints on it. Extra handlers
// (for example an observer's timeline dump) are mounted alongside the
// standard ones. The returned listener's Close stops serving; callers may
// bind port 0 and read the real address from Listener.Addr.
func Serve(addr string, extra map[string]http.Handler) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	return l, nil
}

// Publish registers name in the process's expvar set, rendering v() as
// JSON on every /debug/vars scrape. Re-publishing a name is a no-op
// rather than the package-level panic, so restartable components can call
// it unconditionally.
func Publish(name string, v func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(v))
}

// Text adapts a string-producing dump function into an HTTP handler for
// Serve's extra map.
func Text(dump func() string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(dump()))
	})
}
