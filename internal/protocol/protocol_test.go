package protocol

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/message"
)

func TestWriterReaderPrimitives(t *testing.T) {
	id := message.MakeID("10.1.2.3", 8080)
	w := NewWriter(0)
	w.U32(7).U64(1 << 40).I64(-5).F64(3.5).ID(id).String("overlay")
	r := NewReader(w.Bytes())
	if got := r.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -5 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.ID(); got != id {
		t.Errorf("ID = %v", got)
	}
	if got := r.String(); got != "overlay" {
		t.Errorf("String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err() = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining() = %d", r.Remaining())
	}
}

func TestReaderErrorLatches(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32() // fails: only 2 bytes
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err() = %v, want ErrTruncated", r.Err())
	}
	// Subsequent reads return zero values without panicking.
	if got := r.U64(); got != 0 {
		t.Errorf("U64 after error = %d", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
	if got := r.IDs(); got != nil {
		t.Errorf("IDs after error = %v", got)
	}
}

func TestIDsRoundTrip(t *testing.T) {
	ids := []message.NodeID{
		message.MakeID("10.0.0.1", 1),
		message.MakeID("10.0.0.2", 2),
	}
	r := NewReader(NewWriter(0).IDs(ids).Bytes())
	got := r.IDs()
	if r.Err() != nil || len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Errorf("IDs round trip = %v, %v", got, r.Err())
	}
}

func TestIDsRejectsAbsurdCount(t *testing.T) {
	// A corrupted count larger than the remaining bytes must error, not
	// allocate.
	r := NewReader(NewWriter(0).U32(1 << 30).Bytes())
	if got := r.IDs(); got != nil || r.Err() == nil {
		t.Errorf("IDs with absurd count = %v, err %v", got, r.Err())
	}
}

func TestSetBandwidthRoundTrip(t *testing.T) {
	c := SetBandwidth{Class: BandwidthLink, Rate: 30 << 10, Peer: message.MakeID("10.0.0.4", 7000)}
	got, err := DecodeSetBandwidth(c.Encode())
	if err != nil || got != c {
		t.Errorf("round trip = %+v, %v; want %+v", got, err, c)
	}
}

func TestBootReplyRoundTrip(t *testing.T) {
	br := BootReply{Hosts: []message.NodeID{message.MakeID("1.2.3.4", 5)}}
	got, err := DecodeBootReply(br.Encode())
	if err != nil || len(got.Hosts) != 1 || got.Hosts[0] != br.Hosts[0] {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestDeployRoundTrip(t *testing.T) {
	d := Deploy{App: 3, Rate: 400 << 10, MsgSize: 5120}
	got, err := DecodeDeploy(d.Encode())
	if err != nil || got != d {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := Join{App: 9, Contact: message.MakeID("10.0.0.7", 7000)}
	got, err := DecodeJoin(j.Encode())
	if err != nil || got != j {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestCustomRoundTrip(t *testing.T) {
	c := Custom{Kind: 77, P1: -12345, P2: 1 << 50}
	got, err := DecodeCustom(c.Encode())
	if err != nil || got != c {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rp := Report{
		Node: message.MakeID("10.0.0.1", 7000),
		Upstreams: []LinkStatus{
			{Peer: message.MakeID("10.0.0.2", 7000), Rate: 199.5 * 1024, BufLen: 3, BufCap: 5, BytesTotal: 99999},
		},
		Downstream: []LinkStatus{
			{Peer: message.MakeID("10.0.0.3", 7000), Rate: 30 * 1024, BufLen: 5, BufCap: 5, BytesTotal: 1234},
			{Peer: message.MakeID("10.0.0.4", 7000), Rate: 0, BufLen: 0, BufCap: 5, BytesTotal: 0},
		},
		Apps:    []uint32{1, 2},
		MsgsIn:  10,
		MsgsOut: 20,
		Dropped: 1,
		Shards: []ShardStatus{
			{Shard: 0, Switched: 1 << 40, Queued: 7, Parked: 2, HandoffDepth: 0, HandoffPeak: 3},
			{Shard: 3, Switched: 42, Queued: 0, Parked: 0, HandoffDepth: 9, HandoffPeak: 64},
		},
	}
	got, err := DecodeReport(rp.Encode())
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if got.Node != rp.Node || len(got.Upstreams) != 1 || len(got.Downstream) != 2 {
		t.Fatalf("structure mismatch: %+v", got)
	}
	if got.Upstreams[0] != rp.Upstreams[0] || got.Downstream[1] != rp.Downstream[1] {
		t.Errorf("link mismatch: %+v", got)
	}
	if len(got.Apps) != 2 || got.Apps[0] != 1 || got.Apps[1] != 2 {
		t.Errorf("apps mismatch: %v", got.Apps)
	}
	if got.MsgsIn != 10 || got.MsgsOut != 20 || got.Dropped != 1 {
		t.Errorf("counters mismatch: %+v", got)
	}
	if len(got.Shards) != 2 || got.Shards[0] != rp.Shards[0] || got.Shards[1] != rp.Shards[1] {
		t.Errorf("shards mismatch: %+v", got.Shards)
	}
}

// TestReportLegacyDecodeWithoutShards checks the shard section really is
// optional on the wire: a report cut before it (what an older node
// emits) decodes cleanly with a nil Shards slice.
func TestReportLegacyDecodeWithoutShards(t *testing.T) {
	rp := Report{
		Node:   message.MakeID("10.0.0.1", 7000),
		Shards: []ShardStatus{{Shard: 1, Switched: 5}},
	}
	full := rp.Encode()
	legacy := full[:len(full)-(4+28)]
	got, err := DecodeReport(legacy)
	if err != nil {
		t.Fatalf("DecodeReport(legacy): %v", err)
	}
	if got.Node != rp.Node || got.Shards != nil {
		t.Errorf("legacy decode = %+v", got)
	}
}

func TestThroughputRoundTrip(t *testing.T) {
	tp := Throughput{Peer: message.MakeID("10.0.0.9", 1), Rate: 424.5 * 1024}
	got, err := DecodeThroughput(tp.Encode())
	if err != nil || got != tp {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestBrokenSourceRoundTrip(t *testing.T) {
	bs := BrokenSource{App: 4, Upstream: message.MakeID("10.0.0.2", 7000)}
	got, err := DecodeBrokenSource(bs.Encode())
	if err != nil || got != bs {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestPingTickRoundTrip(t *testing.T) {
	p := Ping{UnixNano: 123456789, Token: 42}
	gotP, err := DecodePing(p.Encode())
	if err != nil || gotP != p {
		t.Errorf("ping round trip = %+v, %v", gotP, err)
	}
	tk := Tick{Kind: 3}
	gotT, err := DecodeTick(tk.Encode())
	if err != nil || gotT != tk {
		t.Errorf("tick round trip = %+v, %v", gotT, err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	full := Report{Node: message.MakeID("1.1.1.1", 1)}.Encode()
	// The shard section is a trailing extension: cutting exactly before
	// it yields a well-formed legacy report, so that one length must
	// decode; every other prefix is a genuine truncation.
	legacy := len(full) - 4
	for n := 0; n < len(full); n++ {
		_, err := DecodeReport(full[:n])
		if n == legacy {
			if err != nil {
				t.Errorf("DecodeReport rejected legacy %d-byte report: %v", n, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("DecodeReport accepted %d-byte truncation", n)
		}
	}
	if _, err := DecodeSetBandwidth([]byte{1}); err == nil {
		t.Error("DecodeSetBandwidth accepted garbage")
	}
	if _, err := DecodeDeploy(nil); err == nil {
		t.Error("DecodeDeploy accepted empty payload")
	}
}

func TestTypeNameCoversReservedTypes(t *testing.T) {
	named := []message.Type{
		TypeHello, TypeBoot, TypeBootReply, TypeRequest, TypeReport, TypeTrace,
		TypeDeploy, TypeTerminateApp, TypeTerminateNode, TypeSetBandwidth,
		TypeJoin, TypeLeave, TypeCustom, TypePing, TypePong, TypeProbe,
		TypeProbeAck, TypeBrokenSource, TypeLinkUp, TypeLinkDown,
		TypeUpThroughput, TypeDownThroughput, TypeTick, TypeNodeShutdown,
		TypeLatency, TypeBandwidthEst,
	}
	seen := make(map[string]message.Type)
	for _, typ := range named {
		name := TypeName(typ)
		if name == "unknown" || name == "data" {
			t.Errorf("TypeName(%d) = %q", typ, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("TypeName collision: %d and %d both %q", prev, typ, name)
		}
		seen[name] = typ
	}
	if got := TypeName(message.FirstDataType + 5); got != "data" {
		t.Errorf("TypeName(data) = %q", got)
	}
	if got := TypeName(999); got != "unknown" {
		t.Errorf("TypeName(999) = %q", got)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, c int64, d float64, s string) bool {
		w := NewWriter(0).U32(a).U64(b).I64(c).F64(d).String(s)
		r := NewReader(w.Bytes())
		okF := r.U32() == a && r.U64() == b && r.I64() == c
		gd := r.F64()
		okF = okF && (gd == d || (d != d && gd != gd)) // NaN-safe
		gs := r.String()
		want := s
		if len(want) > 65535 {
			want = want[:65535]
		}
		return okF && gs == want && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{Token: 9, Index: 2, Count: 8, Pad: []byte{1, 2, 3}}
	got, err := DecodeProbe(p.Encode())
	if err != nil || got.Token != 9 || got.Index != 2 || got.Count != 8 ||
		string(got.Pad) != string(p.Pad) {
		t.Errorf("probe round trip = %+v, %v", got, err)
	}
	if _, err := DecodeProbe([]byte{1, 2}); err == nil {
		t.Error("DecodeProbe accepted truncation")
	}
	ack := ProbeAck{Token: 9, Rate: 123456.5}
	gotAck, err := DecodeProbeAck(ack.Encode())
	if err != nil || gotAck != ack {
		t.Errorf("probe ack round trip = %+v, %v", gotAck, err)
	}
}

func TestRelayRoundTrip(t *testing.T) {
	inner := []byte{9, 8, 7, 6, 5}
	rl := Relay{Dest: message.MakeID("10.0.0.3", 7000), Inner: inner}
	got, err := DecodeRelay(rl.Encode())
	if err != nil || got.Dest != rl.Dest || string(got.Inner) != string(inner) {
		t.Errorf("relay round trip = %+v, %v", got, err)
	}
	if _, err := DecodeRelay([]byte{1}); err == nil {
		t.Error("DecodeRelay accepted truncation")
	}
}
