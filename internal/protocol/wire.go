// Package protocol defines the control-plane vocabulary shared by the
// engine, the algorithms, and the observer: the reserved message types
// below message.FirstDataType and compact binary codecs for their
// payloads. Control messages are deliberately small — the paper evaluates
// control overhead in bytes (Figs. 15–18) — so payloads use a hand-rolled
// fixed-width binary encoding rather than a generic serializer.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/message"
)

// ErrTruncated reports a payload shorter than its declared contents.
var ErrTruncated = errors.New("protocol: truncated payload")

// ErrInvalid reports a field whose value is outside its legal range —
// a forged payload rather than a short one.
var ErrInvalid = errors.New("protocol: invalid field")

// Writer appends fixed-width fields to a byte slice.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity hint.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// I64 appends a big-endian int64.
func (w *Writer) I64(v int64) *Writer { return w.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (w *Writer) F64(v float64) *Writer { return w.U64(math.Float64bits(v)) }

// ID appends a NodeID as 8 bytes (IP, port).
func (w *Writer) ID(id message.NodeID) *Writer {
	return w.U32(id.IP).U32(id.Port)
}

// String appends a length-prefixed UTF-8 string (max 64 KiB).
func (w *Writer) String(s string) *Writer {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// IDs appends a count-prefixed NodeID list.
func (w *Writer) IDs(ids []message.NodeID) *Writer {
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.ID(id)
	}
	return w
}

// Reader consumes fixed-width fields from a byte slice. Decoding errors
// are latched: after the first failure every subsequent read returns the
// zero value and Err reports the cause, so codecs can decode a whole
// struct and check once.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err reports the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// fail latches a decoding error if none is latched yet, so codec-level
// validation (count vs. remaining bytes) surfaces exactly like a short
// read instead of silently decoding misaligned fields.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining reports undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("%w: need %d, have %d", ErrTruncated, n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 consumes a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 consumes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// ID consumes a NodeID.
func (r *Reader) ID() message.NodeID {
	return message.NodeID{IP: r.U32(), Port: r.U32()}
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	lb := r.take(2)
	if lb == nil {
		return ""
	}
	n := int(binary.BigEndian.Uint16(lb))
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// IDs consumes a count-prefixed NodeID list.
func (r *Reader) IDs() []message.NodeID {
	n := r.U32()
	if r.err != nil || n > uint32(len(r.buf)/8) {
		if r.err == nil {
			r.err = fmt.Errorf("%w: id list of %d", ErrTruncated, n)
		}
		return nil
	}
	ids := make([]message.NodeID, 0, n)
	for i := uint32(0); i < n; i++ {
		ids = append(ids, r.ID())
	}
	return ids
}
