package protocol

import (
	"fmt"

	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Reserved control message types (all below message.FirstDataType). The
// names mirror the paper where it gives them: boot, request, sDeploy,
// sTerminate, BrokenSource, UpThroughput, trace.
const (
	// Link management between engines.
	TypeHello message.Type = 1 // first message on a new connection: sender identity

	// Observer bootstrap and monitoring.
	TypeBoot      message.Type = 2 // node -> observer: bootstrap request
	TypeBootReply message.Type = 3 // observer -> node: random subset of alive nodes
	TypeRequest   message.Type = 4 // observer -> node: request a status update
	TypeReport    message.Type = 5 // node -> observer: status update
	TypeTrace     message.Type = 6 // node -> observer: debugging/trace record
	TypeRelay     message.Type = 7 // observer -> proxy: enveloped command for a node
	TypeDepart    message.Type = 8 // node -> observer: graceful deregistration; observer -> node: depart now
	TypeBusy      message.Type = 9 // acceptor -> dialer: admission refused, retry after the carried hint

	// Observer control panel actions.
	TypeDeploy        message.Type = 10 // sDeploy: deploy an application source
	TypeTerminateApp  message.Type = 11 // sTerminate: terminate an application source
	TypeTerminateNode message.Type = 12 // terminate a node entirely
	TypeSetBandwidth  message.Type = 13 // adjust emulated bandwidth at runtime
	TypeJoin          message.Type = 14 // ask a node to join an application
	TypeLeave         message.Type = 15 // ask a node to leave an application
	TypeCustom        message.Type = 16 // algorithm-specific command, two int params

	// Observer federation.
	TypeObsSync message.Type = 17 // observer -> observer: anti-entropy membership sync

	// QoS measurement probes.
	TypePing     message.Type = 20 // latency probe
	TypePong     message.Type = 21 // latency probe reply
	TypeProbe    message.Type = 22 // bandwidth probe burst
	TypeProbeAck message.Type = 23 // bandwidth probe result

	// Engine -> algorithm notifications (produced locally, never wired).
	TypeBrokenSource   message.Type = 30 // upstream application source failed
	TypeLinkUp         message.Type = 31 // a link was established
	TypeLinkDown       message.Type = 32 // a link failed or was torn down
	TypeUpThroughput   message.Type = 33 // periodic upstream link throughput
	TypeDownThroughput message.Type = 34 // periodic downstream link throughput
	TypeTick           message.Type = 35 // algorithm-requested timer expiry
	TypeNodeShutdown   message.Type = 36 // engine is terminating gracefully
	TypeLatency        message.Type = 37 // measured RTT result for the algorithm
	TypeBandwidthEst   message.Type = 38 // measured available bandwidth result
	TypeSlowPeer       message.Type = 39 // a downstream peer persistently cannot keep up
)

// TypeName renders a reserved type for traces; unknown and data types are
// rendered numerically.
func TypeName(t message.Type) string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeBoot:
		return "boot"
	case TypeBootReply:
		return "bootReply"
	case TypeRequest:
		return "request"
	case TypeReport:
		return "report"
	case TypeTrace:
		return "trace"
	case TypeRelay:
		return "relay"
	case TypeDepart:
		return "depart"
	case TypeBusy:
		return "busy"
	case TypeDeploy:
		return "sDeploy"
	case TypeTerminateApp:
		return "sTerminate"
	case TypeTerminateNode:
		return "terminateNode"
	case TypeSetBandwidth:
		return "setBandwidth"
	case TypeJoin:
		return "join"
	case TypeLeave:
		return "leave"
	case TypeCustom:
		return "custom"
	case TypeObsSync:
		return "obsSync"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeProbe:
		return "probe"
	case TypeProbeAck:
		return "probeAck"
	case TypeBrokenSource:
		return "BrokenSource"
	case TypeLinkUp:
		return "LinkUp"
	case TypeLinkDown:
		return "LinkDown"
	case TypeUpThroughput:
		return "UpThroughput"
	case TypeDownThroughput:
		return "DownThroughput"
	case TypeTick:
		return "tick"
	case TypeNodeShutdown:
		return "nodeShutdown"
	case TypeLatency:
		return "latency"
	case TypeBandwidthEst:
		return "bandwidthEst"
	case TypeSlowPeer:
		return "slowPeer"
	default:
		if t >= message.FirstDataType {
			return "data"
		}
		return "unknown"
	}
}

// BandwidthClass selects which emulated budget a SetBandwidth command
// adjusts, matching the paper's three emulation categories.
type BandwidthClass uint32

// Bandwidth emulation categories.
const (
	BandwidthTotal BandwidthClass = iota + 1
	BandwidthUp
	BandwidthDown
	BandwidthLink // requires Peer
)

// SetBandwidth is the payload of TypeSetBandwidth.
type SetBandwidth struct {
	Class BandwidthClass
	Rate  int64          // bytes per second; <=0 means unlimited
	Peer  message.NodeID // for BandwidthLink: the downstream end
}

// Encode serializes the command.
func (c SetBandwidth) Encode() []byte {
	return NewWriter(24).U32(uint32(c.Class)).I64(c.Rate).ID(c.Peer).Bytes()
}

// DecodeSetBandwidth parses a SetBandwidth payload.
func DecodeSetBandwidth(b []byte) (SetBandwidth, error) {
	r := NewReader(b)
	c := SetBandwidth{
		Class: BandwidthClass(r.U32()),
		Rate:  r.I64(),
		Peer:  r.ID(),
	}
	return c, r.Err()
}

// BootReply is the observer's answer to a bootstrap request: a random
// subset of existing nodes that are alive.
type BootReply struct {
	Hosts []message.NodeID
}

// Encode serializes the reply.
func (br BootReply) Encode() []byte {
	return NewWriter(4 + 8*len(br.Hosts)).IDs(br.Hosts).Bytes()
}

// DecodeBootReply parses a BootReply payload.
func DecodeBootReply(b []byte) (BootReply, error) {
	r := NewReader(b)
	br := BootReply{Hosts: r.IDs()}
	return br, r.Err()
}

// Deploy is the payload of TypeDeploy: start an application source on the
// receiving node. Rate caps the source's send rate (<=0: back-to-back as
// fast as possible, the paper's raw-performance workload), MsgSize sets
// the payload bytes per message.
type Deploy struct {
	App     uint32
	Rate    int64
	MsgSize uint32
}

// Encode serializes the command.
func (d Deploy) Encode() []byte {
	return NewWriter(16).U32(d.App).I64(d.Rate).U32(d.MsgSize).Bytes()
}

// DecodeDeploy parses a Deploy payload.
func DecodeDeploy(b []byte) (Deploy, error) {
	r := NewReader(b)
	d := Deploy{App: r.U32(), Rate: r.I64(), MsgSize: r.U32()}
	return d, r.Err()
}

// Join is the payload of TypeJoin/TypeLeave: application membership
// changes pushed by the observer; Contact optionally names a node already
// in the session to start the join at.
type Join struct {
	App     uint32
	Contact message.NodeID
}

// Encode serializes the command.
func (j Join) Encode() []byte {
	return NewWriter(12).U32(j.App).ID(j.Contact).Bytes()
}

// DecodeJoin parses a Join payload.
func DecodeJoin(b []byte) (Join, error) {
	r := NewReader(b)
	j := Join{App: r.U32(), Contact: r.ID()}
	return j, r.Err()
}

// Custom is the payload of TypeCustom: an algorithm-specific control
// message with two optional integer parameters embedded, as the observer
// supports in the paper.
type Custom struct {
	Kind uint32
	P1   int64
	P2   int64
}

// Encode serializes the command.
func (c Custom) Encode() []byte {
	return NewWriter(20).U32(c.Kind).I64(c.P1).I64(c.P2).Bytes()
}

// DecodeCustom parses a Custom payload.
func DecodeCustom(b []byte) (Custom, error) {
	r := NewReader(b)
	c := Custom{Kind: r.U32(), P1: r.I64(), P2: r.I64()}
	return c, r.Err()
}

// LinkStatus describes one active link in a status report.
type LinkStatus struct {
	Peer       message.NodeID
	Rate       float64 // bytes/sec over the measurement window
	BufLen     uint32  // queued messages in the engine buffer
	BufCap     uint32
	BytesTotal int64
}

// ShardStatus describes one engine switch shard in a status report:
// how many messages its stride scheduler has switched, how many are
// queued in the receiver rings it owns, how many are parked awaiting a
// sender slot, and the current/peak depth of its cross-shard handoff
// ring.
type ShardStatus struct {
	Shard        uint32
	Switched     uint64
	Queued       uint32
	Parked       uint32
	HandoffDepth uint32
	HandoffPeak  uint32
}

// Report is the payload of TypeReport: the periodic status update each
// node sends to the observer — lengths of all engine buffers, QoS
// measurements, and the lists of upstream and downstream nodes.
type Report struct {
	Node       message.NodeID
	Upstreams  []LinkStatus
	Downstream []LinkStatus
	Apps       []uint32
	MsgsIn     int64
	MsgsOut    int64
	Dropped    int64
	// Shed counts data messages deliberately dropped by overload
	// protection (included in Dropped as well).
	Shed int64
	// BufferedBytes is the engine's current buffered-bytes gauge;
	// MaxBufferedBytes its lifetime high-water mark against the budget.
	BufferedBytes    int64
	MaxBufferedBytes int64
	// CtrlDelayNs and DataDelayNs are the worst smoothed per-class
	// queueing delays across the node's sender buffers — the measured gap
	// between the service classes.
	CtrlDelayNs int64
	DataDelayNs int64
	// QueueCtrlHist and QueueDataHist are the per-lane queueing-delay
	// distributions (log-2 nanosecond buckets) aggregated across the
	// node's sender buffers; SwitchBatchHist and SendBatchHist are the
	// switch-quantum and sender-batch size distributions. Together they
	// replace the lone EWMA as the QoS detail the observer records.
	QueueCtrlHist   metrics.HistogramSnapshot
	QueueDataHist   metrics.HistogramSnapshot
	SwitchBatchHist metrics.HistogramSnapshot
	SendBatchHist   metrics.HistogramSnapshot
	// Events is the slice of the node's flight recorder published since
	// the previous report: the observer appends them to its per-node
	// series to build cross-node timelines.
	Events []trace.Event
	// Shards holds per-shard switch occupancy and handoff-ring depth.
	// The section is a trailing extension: reports from older nodes
	// simply omit it, and the decoder tolerates its absence.
	Shards []ShardStatus
}

// encodeHist writes a histogram snapshot sparsely: a pair count followed
// by (bucket index, count) pairs for the non-empty buckets, in index
// order — 4 bytes for an empty histogram instead of 388 dense.
func encodeHist(w *Writer, s metrics.HistogramSnapshot) {
	n := uint32(0)
	for _, c := range s.Counts {
		if c != 0 {
			n++
		}
	}
	w.U32(n)
	for i, c := range s.Counts {
		if c != 0 {
			w.U32(uint32(i)).U64(c)
		}
	}
}

// decodeHist parses one sparse histogram, guarding the pair count
// against the bytes actually present and the bucket indices against the
// histogram range so forged headers latch as errors.
func decodeHist(r *Reader) metrics.HistogramSnapshot {
	var s metrics.HistogramSnapshot
	n := r.U32()
	if r.Err() != nil {
		return s
	}
	if n > uint32(r.Remaining()/12) {
		r.fail(fmt.Errorf("%w: histogram of %d pairs", ErrTruncated, n))
		return s
	}
	for i := uint32(0); i < n; i++ {
		idx, c := r.U32(), r.U64()
		if r.Err() != nil {
			return s
		}
		if idx >= metrics.HistogramBuckets {
			r.fail(fmt.Errorf("%w: histogram bucket %d out of range", ErrInvalid, idx))
			return s
		}
		s.Counts[idx] += c
	}
	return s
}

// shardStatusSize is the fixed wire size of one shard entry:
// U32 shard + U64 switched + U32 queued + U32 parked + U32 depth +
// U32 peak.
const shardStatusSize = 4 + 8 + 4 + 4 + 4 + 4

// encodeShards writes the per-shard tail as fixed-width entries.
func encodeShards(w *Writer, shards []ShardStatus) {
	w.U32(uint32(len(shards)))
	for _, s := range shards {
		w.U32(s.Shard).U64(s.Switched).U32(s.Queued)
		w.U32(s.Parked).U32(s.HandoffDepth).U32(s.HandoffPeak)
	}
}

// decodeShards parses the per-shard tail. The section trails the event
// list, so a report from an older node ends before it: the caller only
// invokes this when bytes remain.
func decodeShards(r *Reader) []ShardStatus {
	n := r.U32()
	if r.Err() != nil || n == 0 {
		return nil
	}
	if n > uint32(r.Remaining()/shardStatusSize) {
		r.fail(fmt.Errorf("%w: shard list of %d", ErrTruncated, n))
		return nil
	}
	shards := make([]ShardStatus, 0, n)
	for i := uint32(0); i < n; i++ {
		s := ShardStatus{
			Shard: r.U32(), Switched: r.U64(), Queued: r.U32(),
			Parked: r.U32(), HandoffDepth: r.U32(), HandoffPeak: r.U32(),
		}
		if r.Err() != nil {
			return nil
		}
		shards = append(shards, s)
	}
	return shards
}

// traceEventSize is the fixed wire size of one recorder event:
// U64 seq + I64 nanos + U32 kind + ID peer + U32 app + I64 value.
const traceEventSize = 8 + 8 + 4 + 8 + 4 + 8

// encodeEvents writes the recorder tail as fixed-width entries.
func encodeEvents(w *Writer, evs []trace.Event) {
	w.U32(uint32(len(evs)))
	for _, ev := range evs {
		w.U64(ev.Seq).I64(ev.Nanos).U32(uint32(ev.Kind)).ID(ev.Peer).U32(ev.App).I64(ev.Value)
	}
}

// decodeEvents parses the recorder tail, guarding the count and the
// kind range (a Kind is one byte; wider values are forged).
func decodeEvents(r *Reader) []trace.Event {
	n := r.U32()
	if r.Err() != nil || n == 0 {
		return nil
	}
	if n > uint32(r.Remaining()/traceEventSize) {
		r.fail(fmt.Errorf("%w: event list of %d", ErrTruncated, n))
		return nil
	}
	evs := make([]trace.Event, 0, n)
	for i := uint32(0); i < n; i++ {
		seq, nanos := r.U64(), r.I64()
		kind := r.U32()
		peer := r.ID()
		app, value := r.U32(), r.I64()
		if r.Err() != nil {
			return nil
		}
		if kind > 255 {
			r.fail(fmt.Errorf("%w: event kind %d out of range", ErrInvalid, kind))
			return nil
		}
		evs = append(evs, trace.Event{
			Seq: seq, Nanos: nanos, Kind: trace.Kind(kind),
			Peer: peer, App: app, Value: value,
		})
	}
	return evs
}

// Encode serializes the report.
func (rp Report) Encode() []byte {
	// Fixed part: node ID (8) + two link counts (4+4) + app count (4) +
	// eight I64 counters (64) = 84 bytes; each link entry is 32. The
	// four histograms and the event tail follow, sized by content.
	w := NewWriter(84 + 32*(len(rp.Upstreams)+len(rp.Downstream)) + 4*len(rp.Apps) +
		4*(4+12*metrics.HistogramBuckets) + 4 + traceEventSize*len(rp.Events) +
		4 + shardStatusSize*len(rp.Shards))
	w.ID(rp.Node)
	encodeLinks := func(links []LinkStatus) {
		w.U32(uint32(len(links)))
		for _, l := range links {
			w.ID(l.Peer).F64(l.Rate).U32(l.BufLen).U32(l.BufCap).I64(l.BytesTotal)
		}
	}
	encodeLinks(rp.Upstreams)
	encodeLinks(rp.Downstream)
	w.U32(uint32(len(rp.Apps)))
	for _, a := range rp.Apps {
		w.U32(a)
	}
	w.I64(rp.MsgsIn).I64(rp.MsgsOut).I64(rp.Dropped)
	w.I64(rp.Shed).I64(rp.BufferedBytes).I64(rp.MaxBufferedBytes)
	w.I64(rp.CtrlDelayNs).I64(rp.DataDelayNs)
	encodeHist(w, rp.QueueCtrlHist)
	encodeHist(w, rp.QueueDataHist)
	encodeHist(w, rp.SwitchBatchHist)
	encodeHist(w, rp.SendBatchHist)
	encodeEvents(w, rp.Events)
	encodeShards(w, rp.Shards)
	return w.Bytes()
}

// DecodeReport parses a Report payload.
func DecodeReport(b []byte) (Report, error) {
	r := NewReader(b)
	rp := Report{Node: r.ID()}
	decodeLinks := func() []LinkStatus {
		n := r.U32()
		if r.Err() != nil {
			return nil
		}
		// Each encoded link entry is 32 bytes (ID 8 + F64 8 + two U32 8
		// + I64 8); a count that cannot fit in the remaining bytes is a
		// forged or truncated header, not a huge allocation — and it must
		// latch as an error, not silently decode misaligned fields.
		if n > uint32(r.Remaining()/32) {
			r.fail(fmt.Errorf("%w: link list of %d", ErrTruncated, n))
			return nil
		}
		links := make([]LinkStatus, 0, n)
		for i := uint32(0); i < n; i++ {
			links = append(links, LinkStatus{
				Peer: r.ID(), Rate: r.F64(),
				BufLen: r.U32(), BufCap: r.U32(), BytesTotal: r.I64(),
			})
		}
		return links
	}
	rp.Upstreams = decodeLinks()
	rp.Downstream = decodeLinks()
	nApps := r.U32()
	if r.Err() == nil {
		if nApps > uint32(r.Remaining()/4) {
			r.fail(fmt.Errorf("%w: app list of %d", ErrTruncated, nApps))
		} else {
			rp.Apps = make([]uint32, 0, nApps)
			for i := uint32(0); i < nApps; i++ {
				rp.Apps = append(rp.Apps, r.U32())
			}
		}
	}
	rp.MsgsIn = r.I64()
	rp.MsgsOut = r.I64()
	rp.Dropped = r.I64()
	rp.Shed = r.I64()
	rp.BufferedBytes = r.I64()
	rp.MaxBufferedBytes = r.I64()
	rp.CtrlDelayNs = r.I64()
	rp.DataDelayNs = r.I64()
	rp.QueueCtrlHist = decodeHist(r)
	rp.QueueDataHist = decodeHist(r)
	rp.SwitchBatchHist = decodeHist(r)
	rp.SendBatchHist = decodeHist(r)
	rp.Events = decodeEvents(r)
	if r.Err() == nil && r.Remaining() > 0 {
		rp.Shards = decodeShards(r)
	}
	return rp, r.Err()
}

// Throughput is the payload of TypeUpThroughput/TypeDownThroughput
// delivered to the algorithm, and of TypeBandwidthEst.
type Throughput struct {
	Peer message.NodeID
	Rate float64 // bytes per second
}

// Encode serializes the measurement.
func (tp Throughput) Encode() []byte {
	return NewWriter(16).ID(tp.Peer).F64(tp.Rate).Bytes()
}

// DecodeThroughput parses a Throughput payload.
func DecodeThroughput(b []byte) (Throughput, error) {
	r := NewReader(b)
	tp := Throughput{Peer: r.ID(), Rate: r.F64()}
	return tp, r.Err()
}

// BrokenSource is the payload of TypeBrokenSource: the upstream toward App
// has failed; downstream state for it must be cleared (the domino effect).
type BrokenSource struct {
	App      uint32
	Upstream message.NodeID
}

// Encode serializes the notification.
func (bs BrokenSource) Encode() []byte {
	return NewWriter(12).U32(bs.App).ID(bs.Upstream).Bytes()
}

// DecodeBrokenSource parses a BrokenSource payload.
func DecodeBrokenSource(b []byte) (BrokenSource, error) {
	r := NewReader(b)
	bs := BrokenSource{App: r.U32(), Upstream: r.ID()}
	return bs, r.Err()
}

// BusyReason says why an acceptor refused admission; carried in a Busy
// frame so the dialer (and its flight recorder) can tell transient token
// exhaustion from deliberate overload shedding.
type BusyReason uint32

// Admission-refusal reasons.
const (
	BusyHandshakes BusyReason = iota + 1 // in-flight handshake tokens exhausted
	BusyRate                             // per-source rate limit exceeded
	BusyWatermark                        // memory budget past watermark; data-plane shed
)

// Busy is the payload of TypeBusy: the one frame an acceptor writes before
// closing a connection it refuses to admit. RetryAfterNanos is a hint —
// the dialer folds it into its capped backoff as a floor for the next
// attempt; zero means "use your own schedule".
type Busy struct {
	Reason          BusyReason
	RetryAfterNanos int64
}

// Encode serializes the refusal.
func (bz Busy) Encode() []byte {
	return NewWriter(12).U32(uint32(bz.Reason)).I64(bz.RetryAfterNanos).Bytes()
}

// DecodeBusy parses a Busy payload, rejecting unknown reason codes so a
// forged frame latches as an error instead of decoding as garbage policy.
func DecodeBusy(b []byte) (Busy, error) {
	r := NewReader(b)
	bz := Busy{Reason: BusyReason(r.U32()), RetryAfterNanos: r.I64()}
	if r.Err() != nil {
		return bz, r.Err()
	}
	if bz.Reason < BusyHandshakes || bz.Reason > BusyWatermark {
		r.fail(fmt.Errorf("%w: busy reason %d out of range", ErrInvalid, bz.Reason))
	}
	return bz, r.Err()
}

// HelloProxy is the app-field value marking a hello as coming from a
// relay proxy rather than an overlay node.
const HelloProxy uint32 = 1

// HelloObserver is the app-field value marking a hello as coming from a
// peer observer opening a federation trunk, which carries anti-entropy
// membership syncs and relayed commands instead of node traffic.
const HelloObserver uint32 = 2

// Membership-entry flag bits carried in an ObsSync entry.
const (
	memberAlive    uint32 = 1 << 0
	memberDeparted uint32 = 1 << 1
)

// MemberEntry is one seq-versioned registration-table entry exchanged
// between federated observers. Home names the observer holding the
// node's direct route (zero when the node has none anywhere); Seq is the
// entry's version, bumped by the home observer on every material change,
// so concurrent views merge by highest version.
type MemberEntry struct {
	Node     message.NodeID
	Home     message.NodeID
	Seq      uint64
	Alive    bool
	Departed bool
}

// memberEntrySize is the fixed wire size of one entry:
// ID node + ID home + U64 seq + U32 flags.
const memberEntrySize = 8 + 8 + 8 + 4

// ObsSync is the payload of TypeObsSync: one anti-entropy round's view of
// an observer's registration table, pushed to each federation peer.
// Origin identifies the sending observer (the trunk's hello already
// carries it, but syncs may be re-propagated in larger federations, and
// liveness refreshes must be credited to the asserting home only).
type ObsSync struct {
	Origin  message.NodeID
	Entries []MemberEntry
}

// Encode serializes the sync round.
func (s ObsSync) Encode() []byte {
	w := NewWriter(12 + memberEntrySize*len(s.Entries))
	w.ID(s.Origin)
	w.U32(uint32(len(s.Entries)))
	for _, e := range s.Entries {
		var flags uint32
		if e.Alive {
			flags |= memberAlive
		}
		if e.Departed {
			flags |= memberDeparted
		}
		w.ID(e.Node).ID(e.Home).U64(e.Seq).U32(flags)
	}
	return w.Bytes()
}

// DecodeObsSync parses an ObsSync payload, guarding the entry count
// against the bytes actually present so forged headers latch as errors.
func DecodeObsSync(b []byte) (ObsSync, error) {
	r := NewReader(b)
	s := ObsSync{Origin: r.ID()}
	n := r.U32()
	if r.Err() != nil {
		return s, r.Err()
	}
	if n > uint32(r.Remaining()/memberEntrySize) {
		r.fail(fmt.Errorf("%w: member list of %d", ErrTruncated, n))
		return s, r.Err()
	}
	s.Entries = make([]MemberEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		e := MemberEntry{Node: r.ID(), Home: r.ID(), Seq: r.U64()}
		flags := r.U32()
		if r.Err() != nil {
			return s, r.Err()
		}
		if flags&^(memberAlive|memberDeparted) != 0 {
			r.fail(fmt.Errorf("%w: member flags %#x out of range", ErrInvalid, flags))
			return s, r.Err()
		}
		e.Alive = flags&memberAlive != 0
		e.Departed = flags&memberDeparted != 0
		s.Entries = append(s.Entries, e)
	}
	return s, r.Err()
}

// Relay is the payload of TypeRelay: a command enveloped by the observer
// for the proxy to unwrap and deliver to Dest over the node's inbound
// connection — how commands traverse the firewall the proxy exists for.
type Relay struct {
	Dest  message.NodeID
	Inner []byte // full wire encoding of the enveloped message
}

// Encode serializes the envelope.
func (rl Relay) Encode() []byte {
	w := NewWriter(8 + len(rl.Inner))
	w.ID(rl.Dest)
	w.buf = append(w.buf, rl.Inner...)
	return w.Bytes()
}

// DecodeRelay parses a Relay payload.
func DecodeRelay(b []byte) (Relay, error) {
	r := NewReader(b)
	rl := Relay{Dest: r.ID()}
	if r.Err() != nil {
		return rl, r.Err()
	}
	rl.Inner = b[8:]
	return rl, nil
}

// LinkEvent is the payload of TypeLinkUp/TypeLinkDown notifications the
// engine delivers to the algorithm when a connection is established, fails
// or is torn down.
type LinkEvent struct {
	Peer     message.NodeID
	Upstream bool // true: the peer was an upstream (incoming link)
}

// Encode serializes the event.
func (le LinkEvent) Encode() []byte {
	up := uint32(0)
	if le.Upstream {
		up = 1
	}
	return NewWriter(12).ID(le.Peer).U32(up).Bytes()
}

// DecodeLinkEvent parses a LinkEvent payload.
func DecodeLinkEvent(b []byte) (LinkEvent, error) {
	r := NewReader(b)
	le := LinkEvent{Peer: r.ID(), Upstream: r.U32() == 1}
	return le, r.Err()
}

// SlowPeer is the payload of TypeSlowPeer: the engine's slow-peer detector
// found the outgoing buffer toward Peer persistently full past the stall
// threshold and has been shedding its oldest data. ShedBytes is the data
// volume shed from that buffer so far; algorithms typically respond by
// routing the session away from the peer (CloseLink, reparent).
type SlowPeer struct {
	Peer      message.NodeID
	ShedBytes int64
}

// Encode serializes the notification.
func (sp SlowPeer) Encode() []byte {
	return NewWriter(16).ID(sp.Peer).I64(sp.ShedBytes).Bytes()
}

// DecodeSlowPeer parses a SlowPeer payload.
func DecodeSlowPeer(b []byte) (SlowPeer, error) {
	r := NewReader(b)
	sp := SlowPeer{Peer: r.ID(), ShedBytes: r.I64()}
	return sp, r.Err()
}

// Probe is the payload of TypeProbe: one message of a back-to-back burst
// used to estimate available bandwidth toward a peer. The receiver times
// the burst and answers with a ProbeAck.
type Probe struct {
	Token uint32
	Index uint32
	Count uint32
	Pad   []byte // filler so the burst carries measurable volume
}

// Encode serializes the probe.
func (p Probe) Encode() []byte {
	w := NewWriter(12 + len(p.Pad))
	w.U32(p.Token).U32(p.Index).U32(p.Count)
	w.buf = append(w.buf, p.Pad...)
	return w.Bytes()
}

// DecodeProbe parses a probe payload.
func DecodeProbe(b []byte) (Probe, error) {
	r := NewReader(b)
	p := Probe{Token: r.U32(), Index: r.U32(), Count: r.U32()}
	if r.Err() != nil {
		return p, r.Err()
	}
	p.Pad = b[12:]
	return p, nil
}

// ProbeAck is the payload of TypeProbeAck: the receiver-side estimate of
// the burst's arrival rate in bytes per second.
type ProbeAck struct {
	Token uint32
	Rate  float64
}

// Encode serializes the acknowledgment.
func (p ProbeAck) Encode() []byte {
	return NewWriter(12).U32(p.Token).F64(p.Rate).Bytes()
}

// DecodeProbeAck parses a probe acknowledgment.
func DecodeProbeAck(b []byte) (ProbeAck, error) {
	r := NewReader(b)
	p := ProbeAck{Token: r.U32(), Rate: r.F64()}
	return p, r.Err()
}

// Ping is the payload of TypePing/TypePong: an opaque timestamp echoed by
// the peer; the sender computes the RTT.
type Ping struct {
	UnixNano int64
	Token    uint32
}

// Encode serializes the probe.
func (p Ping) Encode() []byte {
	return NewWriter(12).I64(p.UnixNano).U32(p.Token).Bytes()
}

// DecodePing parses a Ping payload.
func DecodePing(b []byte) (Ping, error) {
	r := NewReader(b)
	p := Ping{UnixNano: r.I64(), Token: r.U32()}
	return p, r.Err()
}

// Tick is the payload of TypeTick: an algorithm-scheduled timer with an
// opaque kind discriminator.
type Tick struct {
	Kind uint32
}

// Encode serializes the tick.
func (tk Tick) Encode() []byte { return NewWriter(4).U32(tk.Kind).Bytes() }

// DecodeTick parses a Tick payload.
func DecodeTick(b []byte) (Tick, error) {
	r := NewReader(b)
	tk := Tick{Kind: r.U32()}
	return tk, r.Err()
}
