package protocol

import (
	"bytes"
	"testing"

	"repro/internal/message"
	"repro/internal/trace"
)

// decoderSpec pairs a decoder with a re-encoder so the fuzzer can check
// the canonicalization property: whatever a decoder accepts must survive
// re-encoding and re-decoding unchanged.
type decoderSpec struct {
	name     string
	decode   func([]byte) (any, error)
	reencode func(any) []byte
}

func allDecoderSpecs() []decoderSpec {
	return []decoderSpec{
		{"SetBandwidth",
			func(b []byte) (any, error) { return DecodeSetBandwidth(b) },
			func(v any) []byte { return v.(SetBandwidth).Encode() }},
		{"BootReply",
			func(b []byte) (any, error) { return DecodeBootReply(b) },
			func(v any) []byte { return v.(BootReply).Encode() }},
		{"Deploy",
			func(b []byte) (any, error) { return DecodeDeploy(b) },
			func(v any) []byte { return v.(Deploy).Encode() }},
		{"Join",
			func(b []byte) (any, error) { return DecodeJoin(b) },
			func(v any) []byte { return v.(Join).Encode() }},
		{"Custom",
			func(b []byte) (any, error) { return DecodeCustom(b) },
			func(v any) []byte { return v.(Custom).Encode() }},
		{"Report",
			func(b []byte) (any, error) { return DecodeReport(b) },
			func(v any) []byte { return v.(Report).Encode() }},
		{"Throughput",
			func(b []byte) (any, error) { return DecodeThroughput(b) },
			func(v any) []byte { return v.(Throughput).Encode() }},
		{"BrokenSource",
			func(b []byte) (any, error) { return DecodeBrokenSource(b) },
			func(v any) []byte { return v.(BrokenSource).Encode() }},
		{"Relay",
			func(b []byte) (any, error) { return DecodeRelay(b) },
			func(v any) []byte { return v.(Relay).Encode() }},
		{"LinkEvent",
			func(b []byte) (any, error) { return DecodeLinkEvent(b) },
			func(v any) []byte { return v.(LinkEvent).Encode() }},
		{"SlowPeer",
			func(b []byte) (any, error) { return DecodeSlowPeer(b) },
			func(v any) []byte { return v.(SlowPeer).Encode() }},
		{"Probe",
			func(b []byte) (any, error) { return DecodeProbe(b) },
			func(v any) []byte { return v.(Probe).Encode() }},
		{"ProbeAck",
			func(b []byte) (any, error) { return DecodeProbeAck(b) },
			func(v any) []byte { return v.(ProbeAck).Encode() }},
		{"Ping",
			func(b []byte) (any, error) { return DecodePing(b) },
			func(v any) []byte { return v.(Ping).Encode() }},
		{"Tick",
			func(b []byte) (any, error) { return DecodeTick(b) },
			func(v any) []byte { return v.(Tick).Encode() }},
		{"ObsSync",
			func(b []byte) (any, error) { return DecodeObsSync(b) },
			func(v any) []byte { return v.(ObsSync).Encode() }},
		{"Busy",
			func(b []byte) (any, error) { return DecodeBusy(b) },
			func(v any) []byte { return v.(Busy).Encode() }},
	}
}

// FuzzAllPayloadDecoders throws arbitrary bytes at every payload decoder
// in the package. Decoders must never panic (truncated or forged inputs
// must surface as errors), and any value a decoder accepts must
// canonicalize: encoding it and encoding its re-decode must produce
// byte-identical output. Byte-level comparison keeps the check sound for
// NaN float fields, where struct equality would be false vacuously.
func FuzzAllPayloadDecoders(f *testing.F) {
	id := message.MakeID("10.0.0.1", 7000)
	f.Add([]byte{})
	f.Add(SetBandwidth{Class: BandwidthUp, Rate: 1 << 20, Peer: id}.Encode())
	f.Add(BootReply{Hosts: []message.NodeID{id}}.Encode())
	f.Add(Deploy{App: 1, Rate: 1024, MsgSize: 512}.Encode())
	f.Add(Join{App: 1, Contact: id}.Encode())
	f.Add(Custom{Kind: 1, P1: 2, P2: 3}.Encode())
	f.Add(Report{
		Node:      id,
		Upstreams: []LinkStatus{{Peer: id, Rate: 1, BufLen: 2, BufCap: 3, BytesTotal: 4}},
		Apps:      []uint32{1, 2},
	}.Encode())
	reportWithTail := Report{Node: id, Events: []trace.Event{
		{Seq: 3, Nanos: 1 << 50, Kind: trace.KindWatermark, Peer: id, App: 1, Value: 1},
	}}
	reportWithTail.QueueDataHist.Counts[7] = 12
	reportWithTail.SendBatchHist.Counts[0] = 1
	f.Add(reportWithTail.Encode())
	f.Add(Throughput{Peer: id, Rate: 2.5}.Encode())
	f.Add(BrokenSource{App: 1, Upstream: id}.Encode())
	f.Add(Relay{Dest: id, Inner: []byte("inner")}.Encode())
	f.Add(LinkEvent{Peer: id, Upstream: true}.Encode())
	f.Add(SlowPeer{Peer: id, ShedBytes: 1 << 30}.Encode())
	f.Add(Probe{Token: 1, Index: 0, Count: 4, Pad: []byte{9, 9}}.Encode())
	f.Add(ProbeAck{Token: 1, Rate: 1e6}.Encode())
	f.Add(Ping{UnixNano: 1 << 60, Token: 5}.Encode())
	f.Add(Tick{Kind: 3}.Encode())
	f.Add(Busy{Reason: BusyHandshakes, RetryAfterNanos: 50_000_000}.Encode())
	f.Add(ObsSync{Origin: id, Entries: []MemberEntry{
		{Node: id, Home: id, Seq: 4, Alive: true},
		{Node: message.MakeID("10.0.0.2", 7000), Seq: 9, Departed: true},
	}}.Encode())

	specs := allDecoderSpecs()
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, s := range specs {
			v, err := s.decode(b)
			if err != nil {
				continue
			}
			enc := s.reencode(v)
			v2, err := s.decode(enc)
			if err != nil {
				t.Fatalf("%s: re-decode of re-encoded value failed: %v", s.name, err)
			}
			if enc2 := s.reencode(v2); !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: re-encode round trip changed canonical bytes:\n first %x\nsecond %x",
					s.name, enc, enc2)
			}
		}
	})
}

// FuzzReaderPrimitives drives the low-level Reader over arbitrary input
// interpreted as a field script: it must never panic, must latch the
// first error, and after an error every read must return the zero value.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{0, 0, 0, 2, 'h', 'i'})
	f.Add([]byte{6, 6, 6}, NewWriter(0).U32(7).IDs([]message.NodeID{{IP: 1, Port: 2}}).String("x").Bytes())
	f.Fuzz(func(t *testing.T, script, data []byte) {
		r := NewReader(data)
		for _, op := range script {
			switch op % 6 {
			case 0:
				r.U32()
			case 1:
				r.U64()
			case 2:
				r.F64()
			case 3:
				r.ID()
			case 4:
				_ = r.String()
			case 5:
				r.IDs()
			}
			if r.Err() != nil {
				// Latched: every subsequent read must be a zero value.
				if r.U32() != 0 || r.U64() != 0 || r.String() != "" || r.IDs() != nil {
					t.Fatal("reads after a latched error returned non-zero values")
				}
				break
			}
		}
		if r.Err() == nil && r.Remaining() > len(data) {
			t.Fatal("Remaining grew beyond the input")
		}
	})
}
