package protocol

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// histWith builds a histogram snapshot with the given bucket counts.
func histWith(counts map[int]uint64) metrics.HistogramSnapshot {
	var s metrics.HistogramSnapshot
	for i, c := range counts {
		s.Counts[i] = c
	}
	return s
}

// payloadCase describes one protocol payload type for the exhaustive
// round-trip table: a representative non-zero value, its encoding, the
// decoder, and the size of the fixed (non-variable-tail) part every valid
// encoding must contain.
type payloadCase struct {
	name   string
	value  any
	encode func() []byte
	decode func([]byte) (any, error)
	fixed  int // minimum bytes a decodable payload must have
}

func allPayloadCases() []payloadCase {
	idA := message.MakeID("10.1.2.3", 8080)
	idB := message.MakeID("192.168.0.9", 443)
	idC := message.MakeID("172.16.5.6", 65535)

	report := Report{
		Node: idA,
		Upstreams: []LinkStatus{
			{Peer: idB, Rate: 1234.5, BufLen: 7, BufCap: 128, BytesTotal: 1 << 40},
		},
		Downstream: []LinkStatus{
			{Peer: idC, Rate: 0.25, BufLen: 0, BufCap: 64, BytesTotal: -1},
			{Peer: idA, Rate: 9e9, BufLen: 128, BufCap: 128, BytesTotal: 42},
		},
		Apps:             []uint32{2, 7, 4000000000},
		MsgsIn:           10,
		MsgsOut:          -3,
		Dropped:          99,
		Shed:             98,
		BufferedBytes:    1 << 30,
		MaxBufferedBytes: 1 << 31,
		CtrlDelayNs:      1500,
		DataDelayNs:      2_000_000_000,
		QueueCtrlHist:    histWith(map[int]uint64{0: 3, 12: 9}),
		QueueDataHist:    histWith(map[int]uint64{20: 1 << 40}),
		SwitchBatchHist:  histWith(map[int]uint64{5: 77}),
		SendBatchHist:    histWith(nil),
		Events: []trace.Event{
			{Seq: 1, Nanos: 1_700_000_000_000_000_001, Kind: trace.KindLinkUp, Peer: idB, App: 0, Value: 1},
			{Seq: 9, Nanos: 1_700_000_000_000_000_900, Kind: trace.KindShed, Peer: idC, App: 7, Value: 4096},
		},
	}

	return []payloadCase{
		{
			name:   "SetBandwidth",
			value:  SetBandwidth{Class: BandwidthLink, Rate: -1, Peer: idB},
			encode: SetBandwidth{Class: BandwidthLink, Rate: -1, Peer: idB}.Encode,
			decode: func(b []byte) (any, error) { return DecodeSetBandwidth(b) },
			fixed:  20,
		},
		{
			name:   "BootReply",
			value:  BootReply{Hosts: []message.NodeID{idA, idB, idC}},
			encode: BootReply{Hosts: []message.NodeID{idA, idB, idC}}.Encode,
			decode: func(b []byte) (any, error) { return DecodeBootReply(b) },
			fixed:  4,
		},
		{
			name:   "Deploy",
			value:  Deploy{App: 5, Rate: 512 << 10, MsgSize: 1024},
			encode: Deploy{App: 5, Rate: 512 << 10, MsgSize: 1024}.Encode,
			decode: func(b []byte) (any, error) { return DecodeDeploy(b) },
			fixed:  16,
		},
		{
			name:   "Join",
			value:  Join{App: 9, Contact: idC},
			encode: Join{App: 9, Contact: idC}.Encode,
			decode: func(b []byte) (any, error) { return DecodeJoin(b) },
			fixed:  12,
		},
		{
			name:   "Custom",
			value:  Custom{Kind: 3, P1: -7, P2: 1 << 62},
			encode: Custom{Kind: 3, P1: -7, P2: 1 << 62}.Encode,
			decode: func(b []byte) (any, error) { return DecodeCustom(b) },
			fixed:  20,
		},
		{
			name:   "Report",
			value:  report,
			encode: report.Encode,
			decode: func(b []byte) (any, error) { return DecodeReport(b) },
			// 84-byte classic fixed part + four histogram pair counts
			// (16) + the event count (4).
			fixed: 104,
		},
		{
			name:   "Throughput",
			value:  Throughput{Peer: idA, Rate: 3.5e6},
			encode: Throughput{Peer: idA, Rate: 3.5e6}.Encode,
			decode: func(b []byte) (any, error) { return DecodeThroughput(b) },
			fixed:  16,
		},
		{
			name:   "BrokenSource",
			value:  BrokenSource{App: 2, Upstream: idB},
			encode: BrokenSource{App: 2, Upstream: idB}.Encode,
			decode: func(b []byte) (any, error) { return DecodeBrokenSource(b) },
			fixed:  12,
		},
		{
			name:   "Relay",
			value:  Relay{Dest: idC, Inner: []byte{0xde, 0xad, 0xbe, 0xef}},
			encode: Relay{Dest: idC, Inner: []byte{0xde, 0xad, 0xbe, 0xef}}.Encode,
			decode: func(b []byte) (any, error) { return DecodeRelay(b) },
			fixed:  8,
		},
		{
			name:   "LinkEvent",
			value:  LinkEvent{Peer: idA, Upstream: true},
			encode: LinkEvent{Peer: idA, Upstream: true}.Encode,
			decode: func(b []byte) (any, error) { return DecodeLinkEvent(b) },
			fixed:  12,
		},
		{
			name:   "SlowPeer",
			value:  SlowPeer{Peer: idB, ShedBytes: 123456789},
			encode: SlowPeer{Peer: idB, ShedBytes: 123456789}.Encode,
			decode: func(b []byte) (any, error) { return DecodeSlowPeer(b) },
			fixed:  16,
		},
		{
			name:   "Probe",
			value:  Probe{Token: 77, Index: 3, Count: 16, Pad: []byte{1, 2, 3}},
			encode: Probe{Token: 77, Index: 3, Count: 16, Pad: []byte{1, 2, 3}}.Encode,
			decode: func(b []byte) (any, error) { return DecodeProbe(b) },
			fixed:  12,
		},
		{
			name:   "ProbeAck",
			value:  ProbeAck{Token: 77, Rate: 8.25e7},
			encode: ProbeAck{Token: 77, Rate: 8.25e7}.Encode,
			decode: func(b []byte) (any, error) { return DecodeProbeAck(b) },
			fixed:  12,
		},
		{
			name:   "Ping",
			value:  Ping{UnixNano: 1_700_000_000_000_000_000, Token: 42},
			encode: Ping{UnixNano: 1_700_000_000_000_000_000, Token: 42}.Encode,
			decode: func(b []byte) (any, error) { return DecodePing(b) },
			fixed:  12,
		},
		{
			name:   "Tick",
			value:  Tick{Kind: 11},
			encode: Tick{Kind: 11}.Encode,
			decode: func(b []byte) (any, error) { return DecodeTick(b) },
			fixed:  4,
		},
		{
			name:   "Busy",
			value:  Busy{Reason: BusyWatermark, RetryAfterNanos: 250_000_000},
			encode: Busy{Reason: BusyWatermark, RetryAfterNanos: 250_000_000}.Encode,
			decode: func(b []byte) (any, error) { return DecodeBusy(b) },
			fixed:  12,
		},
		{
			name: "ObsSync",
			value: ObsSync{Origin: idA, Entries: []MemberEntry{
				{Node: idB, Home: idA, Seq: 7, Alive: true},
				{Node: idC, Home: message.NodeID{}, Seq: 1 << 40, Departed: true},
			}},
			encode: ObsSync{Origin: idA, Entries: []MemberEntry{
				{Node: idB, Home: idA, Seq: 7, Alive: true},
				{Node: idC, Home: message.NodeID{}, Seq: 1 << 40, Departed: true},
			}}.Encode,
			decode: func(b []byte) (any, error) { return DecodeObsSync(b) },
			fixed:  12,
		},
	}
}

// TestAllPayloadsRoundTrip drives every protocol payload type through its
// Encode/Decode pair and requires field-exact equality. This is the
// deterministic companion to the fuzzers: a new payload type added without
// a table entry here fails TestPayloadTableIsExhaustive below.
func TestAllPayloadsRoundTrip(t *testing.T) {
	for _, tc := range allPayloadCases() {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.encode()
			if len(enc) < tc.fixed {
				t.Fatalf("encoding is %d bytes, shorter than its fixed part %d", len(enc), tc.fixed)
			}
			got, err := tc.decode(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.value) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tc.value)
			}
		})
	}
}

// TestAllPayloadsRejectEveryTruncation feeds every strict prefix of the
// fixed part of each encoding to its decoder: each must return
// ErrTruncated — never panic, and never succeed on zero-filled fields.
func TestAllPayloadsRejectEveryTruncation(t *testing.T) {
	for _, tc := range allPayloadCases() {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.encode()
			for i := 0; i < tc.fixed; i++ {
				if _, err := tc.decode(enc[:i]); !errors.Is(err, ErrTruncated) {
					t.Fatalf("decode of %d/%d-byte prefix: err = %v, want ErrTruncated",
						i, tc.fixed, err)
				}
			}
		})
	}
}

// TestPayloadTableIsExhaustive fails when a payload struct with an
// Encode/Decode pair exists in the package but has no round-trip table
// entry, keeping the table honest as the protocol grows.
func TestPayloadTableIsExhaustive(t *testing.T) {
	want := []string{
		"SetBandwidth", "BootReply", "Deploy", "Join", "Custom", "Report",
		"Throughput", "BrokenSource", "Relay", "LinkEvent", "SlowPeer",
		"Probe", "ProbeAck", "Ping", "Tick", "ObsSync", "Busy",
	}
	have := map[string]bool{}
	for _, tc := range allPayloadCases() {
		have[tc.name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("payload %s missing from the round-trip table", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("table has %d entries, want %d", len(have), len(want))
	}
}

// TestReportRejectsForgedCounts is the regression test for two decoder
// bugs: the link-entry guard divided by the wrong entry size (28 instead
// of 32), accepting link counts that overran the buffer, and both the
// link and app count guards bailed out without latching an error — the
// decoder then silently misaligned instead of failing.
func TestReportRejectsForgedCounts(t *testing.T) {
	base := Report{Node: message.MakeID("10.0.0.1", 7000)}.Encode()

	forge := func(off int, count uint32) []byte {
		b := append([]byte(nil), base...)
		b[off] = byte(count >> 24)
		b[off+1] = byte(count >> 16)
		b[off+2] = byte(count >> 8)
		b[off+3] = byte(count)
		return b
	}

	// Upstream link count lives right after the 8-byte node ID; the app
	// count after both (empty) link lists at offset 16.
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"huge link count", forge(8, 1<<30)},
		{"link count exceeding remaining by one entry", forge(8, 3)},
		{"huge app count", forge(16, 1<<30)},
		{"app count exceeding remaining by one", forge(16, 22)},
	} {
		if _, err := DecodeReport(tc.buf); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrTruncated", tc.name, err)
		}
	}
}

// TestReportRejectsForgedHistAndEvents drives the guards on the
// observability tail: histogram pair counts and event counts that cannot
// fit the remaining bytes, bucket indices outside the histogram range,
// and event kinds wider than a byte must all latch errors instead of
// misaligning or over-allocating.
func TestReportRejectsForgedHistAndEvents(t *testing.T) {
	id := message.MakeID("10.0.0.1", 7000)
	rp := Report{
		Node:          id,
		QueueCtrlHist: histWith(map[int]uint64{3: 1}),
		Events:        []trace.Event{{Seq: 1, Nanos: 42, Kind: trace.KindSwitch, Peer: id, Value: 8}},
	}
	base := rp.Encode()

	forgeU32 := func(off int, v uint32) []byte {
		b := append([]byte(nil), base...)
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
		return b
	}

	// Layout of the empty-link report: ID 8 + three zero counts (12) +
	// eight I64s (64) = offset 84 for the first histogram's pair count;
	// its single (idx,count) pair spans 84+4..84+16; the remaining three
	// histogram counts follow, then the event count, then the event with
	// its kind at +12 into the entry.
	const hist1 = 84
	const hist1Idx = hist1 + 4
	const evCount = hist1 + 4 + 12 + 3*4
	const evKind = evCount + 4 + 8 + 8
	const shardCount = evCount + 4 + 40

	for _, tc := range []struct {
		name string
		buf  []byte
		want error
	}{
		{"huge hist pair count", forgeU32(hist1, 1<<30), ErrTruncated},
		{"hist pair count exceeding remaining", forgeU32(hist1, 7), ErrTruncated},
		{"hist bucket index out of range", forgeU32(hist1Idx, metrics.HistogramBuckets), ErrInvalid},
		{"huge event count", forgeU32(evCount, 1<<30), ErrTruncated},
		{"event count exceeding remaining", forgeU32(evCount, 2), ErrTruncated},
		{"event kind out of range", forgeU32(evKind, 300), ErrInvalid},
		{"huge shard count", forgeU32(shardCount, 1<<30), ErrTruncated},
	} {
		if _, err := DecodeReport(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestVariableTailPayloadsPreserveTail checks that the two payloads with
// raw byte tails (Relay.Inner, Probe.Pad) survive empty, small, and large
// tails exactly.
func TestVariableTailPayloadsPreserveTail(t *testing.T) {
	id := message.MakeID("10.0.0.2", 7000)
	tails := [][]byte{nil, {}, {0}, make([]byte, 64<<10)}
	for i := range tails[3] {
		tails[3][i] = byte(i * 31)
	}
	for _, tail := range tails {
		rl, err := DecodeRelay(Relay{Dest: id, Inner: tail}.Encode())
		if err != nil {
			t.Fatalf("DecodeRelay(tail len %d): %v", len(tail), err)
		}
		if rl.Dest != id || !bytesEqual(rl.Inner, tail) {
			t.Errorf("Relay tail len %d not preserved", len(tail))
		}
		p, err := DecodeProbe(Probe{Token: 1, Index: 2, Count: 3, Pad: tail}.Encode())
		if err != nil {
			t.Fatalf("DecodeProbe(tail len %d): %v", len(tail), err)
		}
		if p.Token != 1 || p.Index != 2 || p.Count != 3 || !bytesEqual(p.Pad, tail) {
			t.Errorf("Probe tail len %d not preserved", len(tail))
		}
	}
}

// bytesEqual treats nil and empty as equal — decoders may return either
// for an absent tail.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
