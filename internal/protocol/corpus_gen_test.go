package protocol

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/message"
)

// writeCorpusFile renders one seed in the "go test fuzz v1" file format
// the fuzzing engine reads from testdata/fuzz/<FuzzName>/.
func writeCorpusFile(t *testing.T, fuzzName, seedName string, values ...any) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range values {
		switch x := v.(type) {
		case []byte:
			body += fmt.Sprintf("[]byte(%q)\n", x)
		case uint32:
			body += fmt.Sprintf("uint32(%d)\n", x)
		case bool:
			body += fmt.Sprintf("bool(%v)\n", x)
		default:
			t.Fatalf("unsupported corpus value type %T", v)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenerateSeedCorpus rewrites the committed seed corpora under
// testdata/fuzz from the current encoders. Run with
// IOVERLAY_REGEN_CORPUS=1 after changing a payload encoding; a plain
// `go test` skips it and the fuzzing engine validates the committed
// files by executing them as part of every test run.
func TestRegenerateSeedCorpus(t *testing.T) {
	if os.Getenv("IOVERLAY_REGEN_CORPUS") == "" {
		t.Skip("set IOVERLAY_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	id := message.MakeID("10.0.0.1", 7000)
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-report",
		Report{
			Node:      id,
			Upstreams: []LinkStatus{{Peer: id, Rate: 1.5, BufLen: 1, BufCap: 8, BytesTotal: 100}},
			Apps:      []uint32{1},
			MsgsIn:    7,
		}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-report-shards",
		Report{
			Node: id,
			Shards: []ShardStatus{
				{Shard: 0, Switched: 99, Queued: 3, Parked: 1, HandoffDepth: 2, HandoffPeak: 8},
				{Shard: 1, Switched: 7, HandoffPeak: 1},
			},
		}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-bootreply",
		BootReply{Hosts: []message.NodeID{id, {IP: 1, Port: 2}}}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-relay",
		Relay{Dest: id, Inner: []byte("enveloped")}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-setbandwidth",
		SetBandwidth{Class: BandwidthLink, Rate: -1, Peer: id}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-obssync",
		ObsSync{Origin: id, Entries: []MemberEntry{
			{Node: message.MakeID("10.0.0.2", 7000), Home: id, Seq: 3, Alive: true},
			{Node: message.MakeID("10.0.0.3", 7000), Seq: 8, Departed: true},
		}}.Encode())
	writeCorpusFile(t, "FuzzAllPayloadDecoders", "seed-busy",
		Busy{Reason: BusyRate, RetryAfterNanos: 125_000_000}.Encode())
	writeCorpusFile(t, "FuzzReaderPrimitives", "seed-mixed",
		[]byte{0, 3, 4, 5, 1, 2},
		NewWriter(0).U32(9).ID(id).IDs([]message.NodeID{id}).String("s").U64(1).F64(2.5).Bytes())
}
