package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-5, 0, 1} {
		h.Observe(v) // all land in bucket 0
	}
	h.Observe(2)
	h.Observe(3)
	h.Observe(1024)
	h.ObserveDuration(1024 * time.Nanosecond)
	h.Observe(1 << 62) // clamps to the last bucket

	s := h.Snapshot()
	if s.Counts[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Counts[0])
	}
	if s.Counts[1] != 2 {
		t.Fatalf("bucket 1 = %d, want 2", s.Counts[1])
	}
	if s.Counts[10] != 2 {
		t.Fatalf("bucket 10 = %d, want 2", s.Counts[10])
	}
	if s.Counts[HistogramBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1", s.Counts[HistogramBuckets-1])
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
}

func TestHistogramNilIsNoop(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 90 fast observations (bucket 3: [8,16)) and 10 slow (bucket 20).
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 16 {
		t.Fatalf("p50 = %d, want 16", got)
	}
	if got := s.Quantile(0.99); got != 2<<20 {
		t.Fatalf("p99 = %d, want %d", got, 2<<20)
	}
}

func TestHistogramMergeSub(t *testing.T) {
	var a, b Histogram
	a.Observe(4)
	a.Observe(4)
	b.Observe(4)
	b.Observe(100)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counts[2] != 3 || s.Count() != 4 {
		t.Fatalf("after merge: %v", s)
	}
	s.Sub(b.Snapshot())
	if s.Counts[2] != 2 || s.Count() != 2 {
		t.Fatalf("after sub: %v", s)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().String(); got != "[]" {
		t.Fatalf("empty = %q", got)
	}
	h.Observe(0)
	h.Observe(9)
	h.Observe(9)
	if got := h.Snapshot().String(); got != "[0:1 8:2]" {
		t.Fatalf("got %q, want %q", got, "[0:1 8:2]")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != 40000 {
		t.Fatalf("count = %d, want 40000", got)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(1234) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per run, want 0", allocs)
	}
}
