// Package metrics implements the QoS measurement facilities the paper
// attaches at the socket level: per-connection throughput, round-trip
// latency samples, and counters of bytes or messages lost due to
// failures. Results are sampled periodically by the engine and reported
// to the algorithm and the observer.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter measures throughput in bytes per second over a sliding window of
// fixed-width buckets. It is safe for concurrent use: the transport
// goroutine Adds while the engine goroutine samples Rate.
type Meter struct {
	mu         sync.Mutex
	bucketSize time.Duration
	buckets    []int64
	times      []time.Time
	head       int
	total      int64 // lifetime bytes
	start      time.Time
}

// DefaultWindow is the sliding measurement window.
const DefaultWindow = 2 * time.Second

// defaultBuckets subdivides the window; more buckets smooth the estimate.
const defaultBuckets = 20

// NewMeter returns a meter with the given sliding window; zero uses
// DefaultWindow.
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Meter{
		bucketSize: window / defaultBuckets,
		buckets:    make([]int64, defaultBuckets),
		times:      make([]time.Time, defaultBuckets),
		start:      time.Now(),
	}
}

// Add records n bytes transferred now.
func (m *Meter) Add(n int64) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
	cur := m.times[m.head]
	if cur.IsZero() || now.Sub(cur) >= m.bucketSize {
		m.head = (m.head + 1) % len(m.buckets)
		m.buckets[m.head] = 0
		m.times[m.head] = now
	}
	m.buckets[m.head] += n
}

// Rate reports the current throughput estimate in bytes per second over
// the populated portion of the window.
func (m *Meter) Rate() float64 {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.bucketSize * time.Duration(len(m.buckets))
	cutoff := now.Add(-window)
	var sum int64
	oldest := now
	for i, ts := range m.times {
		if ts.IsZero() || ts.Before(cutoff) {
			continue
		}
		sum += m.buckets[i]
		if ts.Before(oldest) {
			oldest = ts
		}
	}
	span := now.Sub(oldest)
	if span < m.bucketSize {
		span = m.bucketSize
	}
	return float64(sum) / span.Seconds()
}

// Total reports lifetime bytes recorded.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// LifetimeRate reports total bytes divided by the meter's lifetime; the
// stable long-run throughput used by experiment harnesses.
func (m *Meter) LifetimeRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / elapsed
}

// Idle reports how long the meter has gone without traffic; the engine's
// inactivity-based failure detector consults this (the paper detects
// failures partly by "long consecutive periods of traffic inactivity").
func (m *Meter) Idle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var latest time.Time
	for _, ts := range m.times {
		if ts.After(latest) {
			latest = ts
		}
	}
	if latest.IsZero() {
		return time.Since(m.start)
	}
	return time.Since(latest)
}

// Reset zeroes the meter, restarting its lifetime clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.buckets {
		m.buckets[i] = 0
		m.times[i] = time.Time{}
	}
	m.total = 0
	m.start = time.Now()
}

// Gauge is an atomic byte-count gauge with a high-water mark; the engine
// uses one to track its total buffered bytes against the memory budget.
// All methods are safe for concurrent use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by n (negative to release) and returns the new
// value, folding positive movements into the high-water mark.
func (g *Gauge) Add(n int64) int64 {
	v := g.v.Add(n)
	if n > 0 {
		for {
			m := g.max.Load()
			if v <= m || g.max.CompareAndSwap(m, v) {
				break
			}
		}
	}
	return v
}

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max reports the highest value the gauge ever reached.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Counters aggregates the loss and volume statistics the engine reports
// per link. All methods are safe for concurrent use.
type Counters struct {
	mu           sync.Mutex
	msgsIn       int64
	msgsOut      int64
	bytesIn      int64
	bytesOut     int64
	msgsDropped  int64
	bytesDropped int64
	msgsShed     int64
	bytesShed    int64
}

// CountersSnapshot is an immutable copy of Counters.
type CountersSnapshot struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
	MsgsDropped       int64
	BytesDropped      int64
	MsgsShed          int64
	BytesShed         int64
}

// AddIn records a received message of n bytes.
func (c *Counters) AddIn(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsIn++
	c.bytesIn += n
}

// AddOut records a sent message of n bytes.
func (c *Counters) AddOut(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsOut++
	c.bytesOut += n
}

// AddDropped records a message of n bytes lost to a failure, the paper's
// "number of bytes (or messages) lost due to failures".
func (c *Counters) AddDropped(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsDropped++
	c.bytesDropped += n
}

// AddShed records a data message of n bytes deliberately shed by overload
// protection (memory-budget or slow-peer drop-head). Shed traffic is loss
// the node chose, so it is charged to the loss counters as well as its own.
func (c *Counters) AddShed(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsShed++
	c.bytesShed += n
	c.msgsDropped++
	c.bytesDropped += n
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CountersSnapshot{
		MsgsIn: c.msgsIn, MsgsOut: c.msgsOut,
		BytesIn: c.bytesIn, BytesOut: c.bytesOut,
		MsgsDropped: c.msgsDropped, BytesDropped: c.bytesDropped,
		MsgsShed: c.msgsShed, BytesShed: c.bytesShed,
	}
}

// LatencyTracker keeps an exponentially weighted round-trip estimate fed
// by ping/pong probes.
type LatencyTracker struct {
	mu      sync.Mutex
	rtt     time.Duration
	samples int
}

// ewmaAlpha weights new samples, mirroring TCP's SRTT smoothing.
const ewmaAlpha = 0.125

// Observe folds one RTT sample into the estimate.
func (lt *LatencyTracker) Observe(rtt time.Duration) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.samples++
	if lt.samples == 1 {
		lt.rtt = rtt
		return
	}
	lt.rtt = time.Duration((1-ewmaAlpha)*float64(lt.rtt) + ewmaAlpha*float64(rtt))
}

// RTT reports the smoothed estimate and whether any sample exists.
func (lt *LatencyTracker) RTT() (time.Duration, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.rtt, lt.samples > 0
}
