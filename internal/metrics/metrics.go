// Package metrics implements the QoS measurement facilities the paper
// attaches at the socket level: per-connection throughput, round-trip
// latency samples, and counters of bytes or messages lost due to
// failures. Results are sampled periodically by the engine and reported
// to the algorithm and the observer.
package metrics

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Meter measures throughput in bytes per second over a sliding window of
// fixed-width buckets. It is safe for concurrent use: the transport
// goroutine Adds while the engine goroutine samples Rate.
type Meter struct {
	mu         sync.Mutex
	bucketSize time.Duration
	buckets    []int64
	times      []time.Time
	head       int
	total      int64 // lifetime bytes
	start      time.Time
}

// DefaultWindow is the sliding measurement window.
const DefaultWindow = 2 * time.Second

// defaultBuckets subdivides the window; more buckets smooth the estimate.
const defaultBuckets = 20

// NewMeter returns a meter with the given sliding window; zero uses
// DefaultWindow.
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Meter{
		bucketSize: window / defaultBuckets,
		buckets:    make([]int64, defaultBuckets),
		times:      make([]time.Time, defaultBuckets),
		start:      time.Now(),
	}
}

// Add records n bytes transferred now.
func (m *Meter) Add(n int64) { m.addAt(time.Now(), n) }

// addAt is Add with an explicit clock so the bucket-advance logic is
// testable without real sleeps.
func (m *Meter) addAt(now time.Time, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
	cur := m.times[m.head]
	switch {
	case cur.IsZero():
		m.times[m.head] = now
	case now.Sub(cur) >= m.bucketSize:
		// Advance one slot per elapsed bucket interval, clearing each:
		// idle intervals become explicit zero-byte buckets so Rate's
		// span reflects the gap instead of stale counts lingering under
		// old timestamps. A gap spanning the whole window re-anchors
		// the grid at now and clears every bucket.
		steps := int(now.Sub(cur) / m.bucketSize)
		if steps > len(m.buckets) {
			steps = len(m.buckets)
			cur = now.Add(-time.Duration(steps) * m.bucketSize)
		}
		for i := 1; i <= steps; i++ {
			m.head = (m.head + 1) % len(m.buckets)
			m.buckets[m.head] = 0
			m.times[m.head] = cur.Add(time.Duration(i) * m.bucketSize)
		}
	}
	m.buckets[m.head] += n
}

// Rate reports the current throughput estimate in bytes per second over
// the populated portion of the window.
func (m *Meter) Rate() float64 { return m.rateAt(time.Now()) }

// rateAt is Rate with an explicit clock, for deterministic tests.
func (m *Meter) rateAt(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.bucketSize * time.Duration(len(m.buckets))
	cutoff := now.Add(-window)
	var sum int64
	oldest := now
	for i, ts := range m.times {
		if ts.IsZero() || ts.Before(cutoff) {
			continue
		}
		sum += m.buckets[i]
		if ts.Before(oldest) {
			oldest = ts
		}
	}
	span := now.Sub(oldest)
	if span < m.bucketSize {
		span = m.bucketSize
	}
	return float64(sum) / span.Seconds()
}

// Total reports lifetime bytes recorded.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// LifetimeRate reports total bytes divided by the meter's lifetime; the
// stable long-run throughput used by experiment harnesses.
func (m *Meter) LifetimeRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / elapsed
}

// Idle reports how long the meter has gone without traffic; the engine's
// inactivity-based failure detector consults this (the paper detects
// failures partly by "long consecutive periods of traffic inactivity").
func (m *Meter) Idle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var latest time.Time
	for _, ts := range m.times {
		if ts.After(latest) {
			latest = ts
		}
	}
	if latest.IsZero() {
		return time.Since(m.start)
	}
	return time.Since(latest)
}

// Reset zeroes the meter, restarting its lifetime clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.buckets {
		m.buckets[i] = 0
		m.times[i] = time.Time{}
	}
	m.total = 0
	m.start = time.Now()
}

// Gauge is an atomic byte-count gauge with a high-water mark; the engine
// uses one to track its total buffered bytes against the memory budget.
// All methods are safe for concurrent use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by n (negative to release) and returns the new
// value, folding positive movements into the high-water mark.
func (g *Gauge) Add(n int64) int64 {
	v := g.v.Add(n)
	if n > 0 {
		for {
			m := g.max.Load()
			if v <= m || g.max.CompareAndSwap(m, v) {
				break
			}
		}
	}
	return v
}

// CompareAndSwap installs new only if the gauge still holds old,
// reporting whether the swap happened. It does not move the high-water
// mark: use it for reservation counters whose peak is not meaningful.
func (g *Gauge) CompareAndSwap(old, new int64) bool {
	return g.v.CompareAndSwap(old, new)
}

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max reports the highest value the gauge ever reached.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Counters aggregates the loss and volume statistics the engine reports
// per link. All methods are safe for concurrent use.
type Counters struct {
	mu           sync.Mutex
	msgsIn       int64
	msgsOut      int64
	bytesIn      int64
	bytesOut     int64
	msgsDropped  int64
	bytesDropped int64
	msgsShed     int64
	bytesShed    int64
	failovers    int64
	connsIn      int64
	connsShed    int64
	hsFailed     int64
	acceptRetry  int64
	dgramBad     int64
	dgramNoLink  int64
	dgramRefused int64
}

// CountersSnapshot is an immutable copy of Counters.
type CountersSnapshot struct {
	MsgsIn, MsgsOut   int64
	BytesIn, BytesOut int64
	MsgsDropped       int64
	BytesDropped      int64
	MsgsShed          int64
	BytesShed         int64
	// Failovers counts successful observer failovers: re-registrations
	// with a different observer after the previous link was lost.
	Failovers int64
	// ConnsIn counts inbound connections admitted past the admission
	// gate; ConnsShed those refused before a handshake was attempted
	// (token exhaustion, rate limit, greylist, or watermark shedding).
	ConnsIn   int64
	ConnsShed int64
	// HandshakesFailed counts admitted connections whose handshake then
	// died: bad hello, handshake timeout, or a peer that hung up.
	HandshakesFailed int64
	// AcceptRetries counts transient listener Accept errors survived by
	// backing off and retrying instead of abandoning the listener.
	AcceptRetries int64
	// DgramBad counts received datagrams refused before reassembly — a
	// malformed frame, an oversize declared payload, or a completed image
	// that was not exactly one message.
	DgramBad int64
	// DgramNoLink counts datagrams dropped because their link-level
	// source never completed a hello handshake on the control lane.
	DgramNoLink int64
	// DgramRefused counts outgoing messages refused at the sender because
	// their wire image exceeds the fragment budget at the configured MTU.
	DgramRefused int64
}

// AddIn records a received message of n bytes.
func (c *Counters) AddIn(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsIn++
	c.bytesIn += n
}

// AddOut records a sent message of n bytes.
func (c *Counters) AddOut(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsOut++
	c.bytesOut += n
}

// AddInBatch records msgs received messages totalling n bytes in one
// update — the batched receive paths fold a whole burst into a single
// counter acquisition.
func (c *Counters) AddInBatch(msgs, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsIn += msgs
	c.bytesIn += n
}

// AddOutBatch records msgs sent messages totalling n bytes in one update.
func (c *Counters) AddOutBatch(msgs, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsOut += msgs
	c.bytesOut += n
}

// AddDroppedBatch records msgs messages totalling n bytes lost to one
// failure in a single update.
func (c *Counters) AddDroppedBatch(msgs, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsDropped += msgs
	c.bytesDropped += n
}

// AddDropped records a message of n bytes lost to a failure, the paper's
// "number of bytes (or messages) lost due to failures".
func (c *Counters) AddDropped(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsDropped++
	c.bytesDropped += n
}

// AddShed records a data message of n bytes deliberately shed by overload
// protection (memory-budget or slow-peer drop-head). Shed traffic is loss
// the node chose, so it is charged to the loss counters as well as its own.
func (c *Counters) AddShed(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgsShed++
	c.bytesShed += n
	c.msgsDropped++
	c.bytesDropped += n
}

// AddFailover records one successful observer failover.
func (c *Counters) AddFailover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failovers++
}

// AddConnIn records one inbound connection admitted past the gate.
func (c *Counters) AddConnIn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.connsIn++
}

// AddConnShed records one inbound connection refused before a handshake.
func (c *Counters) AddConnShed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.connsShed++
}

// AddHandshakeFailed records an admitted connection whose handshake died.
func (c *Counters) AddHandshakeFailed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hsFailed++
}

// AddAcceptRetry records one transient listener Accept error survived.
func (c *Counters) AddAcceptRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acceptRetry++
}

// AddDgramBad records one received datagram refused before reassembly.
func (c *Counters) AddDgramBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dgramBad++
}

// AddDgramNoLink records one datagram dropped for lacking an
// established link.
func (c *Counters) AddDgramNoLink() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dgramNoLink++
}

// AddDgramRefused records an outgoing message of n bytes refused at the
// sender for exceeding the datagram fragment budget. The message never
// reaches the wire, so it is loss too.
func (c *Counters) AddDgramRefused(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dgramRefused++
	c.msgsDropped++
	c.bytesDropped += n
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CountersSnapshot{
		MsgsIn: c.msgsIn, MsgsOut: c.msgsOut,
		BytesIn: c.bytesIn, BytesOut: c.bytesOut,
		MsgsDropped: c.msgsDropped, BytesDropped: c.bytesDropped,
		MsgsShed: c.msgsShed, BytesShed: c.bytesShed,
		Failovers: c.failovers,
		ConnsIn:   c.connsIn, ConnsShed: c.connsShed,
		HandshakesFailed: c.hsFailed, AcceptRetries: c.acceptRetry,
		DgramBad: c.dgramBad, DgramNoLink: c.dgramNoLink,
		DgramRefused: c.dgramRefused,
	}
}

// LatencyTracker keeps an exponentially weighted round-trip estimate fed
// by ping/pong probes.
type LatencyTracker struct {
	mu      sync.Mutex
	rtt     time.Duration
	samples int
}

// ewmaAlpha weights new samples, mirroring TCP's SRTT smoothing.
const ewmaAlpha = 0.125

// Observe folds one RTT sample into the estimate.
func (lt *LatencyTracker) Observe(rtt time.Duration) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.samples++
	if lt.samples == 1 {
		lt.rtt = rtt
		return
	}
	lt.rtt = time.Duration((1-ewmaAlpha)*float64(lt.rtt) + ewmaAlpha*float64(rtt))
}

// RTT reports the smoothed estimate and whether any sample exists.
func (lt *LatencyTracker) RTT() (time.Duration, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.rtt, lt.samples > 0
}

// HistogramBuckets is the number of power-of-two buckets a Histogram
// tracks. Bucket i counts observations v with floor(log2(v)) == i
// (v < 1 lands in bucket 0, v >= 2^47 in the last bucket), so the range
// covers 1ns..~39h when observing durations in nanoseconds and any
// realistic batch size when observing counts.
const HistogramBuckets = 48

// Histogram is a lock-free log-scale histogram: one atomic counter per
// power-of-two bucket. Observe is a single atomic add, cheap enough for
// the data path; Snapshot copies the counters for reporting. The zero
// value is ready to use, and a nil Histogram ignores observations.
type Histogram struct {
	counts [HistogramBuckets]atomic.Uint64
}

// histBucket maps an observation to its bucket index.
func histBucket(v int64) int {
	if v < 1 {
		return 0
	}
	b := 0
	for u := uint64(v); u > 1; u >>= 1 {
		b++
	}
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	return b
}

// Observe folds one sample in. Safe from any goroutine; no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[histBucket(v)].Add(1)
}

// ObserveDuration folds one duration sample in, in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot copies the bucket counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, and also the
// form histograms travel in over the wire (protocol.Report encodes the
// non-empty buckets sparsely).
type HistogramSnapshot struct {
	Counts [HistogramBuckets]uint64
}

// Count reports the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge adds another snapshot's counts into this one.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// observations made between the two snapshots.
func (s *HistogramSnapshot) Sub(earlier HistogramSnapshot) {
	for i, c := range earlier.Counts {
		s.Counts[i] -= c
	}
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i)
}

// Quantile reports an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the first bucket at which the cumulative count
// reaches q of the total. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= need {
			return 2 << uint(i) // exclusive upper edge: 2^(i+1)
		}
	}
	return 2 << uint(HistogramBuckets-1)
}

// String renders the non-empty buckets compactly, e.g. "[8:3 16:41]"
// where the key is each bucket's lower bound.
func (s HistogramSnapshot) String() string {
	var b []byte
	b = append(b, '[')
	first := true
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if !first {
			b = append(b, ' ')
		}
		first = false
		b = strconv.AppendInt(b, BucketLow(i), 10)
		b = append(b, ':')
		b = strconv.AppendUint(b, c, 10)
	}
	return string(append(b, ']'))
}
