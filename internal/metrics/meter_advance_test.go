package metrics

import (
	"testing"
	"time"
)

// TestMeterBucketAdvance drives the meter with a synthetic clock through
// the traffic shapes that exposed the stale-bucket bug: Add used to
// advance head one slot per call regardless of elapsed time, so after an
// idle gap the skipped intervals were never recorded as zero-byte
// buckets and a post-idle burst was rated over a span clamped to a
// single bucket instead of the window.
func TestMeterBucketAdvance(t *testing.T) {
	// NewMeter(2s) gives 20 buckets of 100ms.
	const bucket = 100 * time.Millisecond
	t0 := time.Unix(1000, 0)

	tests := []struct {
		name     string
		drive    func(m *Meter) time.Time // returns the query time
		min, max float64                  // acceptable Rate() bounds
	}{
		{
			// One add long ago, then a 10s idle gap, then an 8000-byte
			// burst. The burst must be averaged over the (empty) window,
			// not over one clamped bucket: 8000/1.9s ≈ 4210 B/s. The
			// pre-fix code reported 8000/0.1s = 80000 B/s.
			name: "idle then burst",
			drive: func(m *Meter) time.Time {
				m.addAt(t0, 1000)
				now := t0.Add(10 * time.Second)
				m.addAt(now, 8000)
				return now
			},
			min: 3000, max: 6000,
		},
		{
			// 100 bytes every 500ms. Each add skips four empty bucket
			// intervals which must appear as zero buckets: the window
			// holds 4 in-cutoff adds (400 bytes) over a ~1.9s span,
			// ≈ 210 B/s. Pre-fix the idle intervals vanished and the
			// span shrank to 1.5s, inflating the rate to ≈ 267 B/s.
			name: "sparse traffic",
			drive: func(m *Meter) time.Time {
				now := t0
				for i := 0; i < 13; i++ {
					now = t0.Add(time.Duration(i) * 500 * time.Millisecond)
					m.addAt(now, 100)
				}
				return now
			},
			min: 180, max: 240,
		},
		{
			// Steady traffic for 2.5 windows: wrap-around must keep the
			// estimate at the true rate (100 bytes / 100ms = 1000 B/s;
			// the in-window sum is 2000 bytes over a 1.9s span ≈ 1052).
			name: "steady wrap-around",
			drive: func(m *Meter) time.Time {
				now := t0
				for i := 0; i < 50; i++ {
					now = t0.Add(time.Duration(i) * bucket)
					m.addAt(now, 100)
				}
				return now
			},
			min: 900, max: 1200,
		},
		{
			// A gap slightly longer than the window must fully retire
			// the old traffic: only the new add may contribute.
			name: "gap retires old window",
			drive: func(m *Meter) time.Time {
				for i := 0; i < 20; i++ {
					m.addAt(t0.Add(time.Duration(i)*bucket), 1000)
				}
				now := t0.Add(20*bucket + 2100*time.Millisecond)
				m.addAt(now, 100)
				return now
			},
			min: 1, max: 100,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMeter(2 * time.Second)
			now := tc.drive(m)
			got := m.rateAt(now)
			if got < tc.min || got > tc.max {
				t.Fatalf("rate = %.1f B/s, want in [%.0f, %.0f]", got, tc.min, tc.max)
			}
		})
	}
}

// TestMeterAdvanceClearsSkippedBuckets checks the repaired invariant
// directly: after any add, no bucket may carry a timestamp older than
// one window before the newest bucket (stale counts must have been
// cleared, not left behind with their old timestamps).
func TestMeterAdvanceClearsSkippedBuckets(t *testing.T) {
	m := NewMeter(2 * time.Second)
	t0 := time.Unix(2000, 0)
	gaps := []time.Duration{
		0, 50 * time.Millisecond, 150 * time.Millisecond, 700 * time.Millisecond,
		1900 * time.Millisecond, 2 * time.Second, 5 * time.Second, 30 * time.Millisecond,
	}
	now := t0
	for _, g := range gaps {
		now = now.Add(g)
		m.addAt(now, 10)
		m.mu.Lock()
		window := m.bucketSize * time.Duration(len(m.buckets))
		newest := m.times[m.head]
		for i, ts := range m.times {
			if ts.IsZero() {
				continue
			}
			if newest.Sub(ts) > window && m.buckets[i] != 0 {
				m.mu.Unlock()
				t.Fatalf("after gap %v: bucket %d holds %d bytes with stale timestamp %v (newest %v)",
					g, i, m.buckets[i], ts, newest)
			}
		}
		m.mu.Unlock()
	}
	if m.Total() != int64(10*len(gaps)) {
		t.Fatalf("total = %d, want %d", m.Total(), 10*len(gaps))
	}
}
