package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestMeterRateTracksSteadyStream(t *testing.T) {
	m := NewMeter(500 * time.Millisecond)
	const rate = 100 << 10 // 100 KiB/s
	deadline := time.Now().Add(400 * time.Millisecond)
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		m.Add(rate / 100) // rate/100 bytes every 10 ms
		if now.After(deadline) {
			break
		}
	}
	got := m.Rate()
	if got < float64(rate)*0.6 || got > float64(rate)*1.4 {
		t.Errorf("Rate() = %.0f, want ~%d", got, rate)
	}
}

func TestMeterRateDecaysAfterTrafficStops(t *testing.T) {
	m := NewMeter(200 * time.Millisecond)
	m.Add(1 << 20)
	if m.Rate() == 0 {
		t.Fatal("Rate() = 0 right after Add")
	}
	time.Sleep(300 * time.Millisecond)
	if got := m.Rate(); got != 0 {
		t.Errorf("Rate() after window passed = %.0f, want 0", got)
	}
}

func TestMeterTotalAndLifetime(t *testing.T) {
	m := NewMeter(time.Second)
	m.Add(100)
	m.Add(200)
	if got := m.Total(); got != 300 {
		t.Errorf("Total() = %d, want 300", got)
	}
	time.Sleep(50 * time.Millisecond)
	lr := m.LifetimeRate()
	if lr <= 0 || lr > 300/0.05 {
		t.Errorf("LifetimeRate() = %.0f out of plausible range", lr)
	}
}

func TestMeterIdle(t *testing.T) {
	m := NewMeter(time.Second)
	if m.Idle() < 0 {
		t.Error("Idle() negative on fresh meter")
	}
	m.Add(1)
	if got := m.Idle(); got > 100*time.Millisecond {
		t.Errorf("Idle() right after Add = %v", got)
	}
	time.Sleep(120 * time.Millisecond)
	if got := m.Idle(); got < 100*time.Millisecond {
		t.Errorf("Idle() after quiet period = %v, want >= 100ms", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(time.Second)
	m.Add(1000)
	m.Reset()
	if m.Total() != 0 {
		t.Errorf("Total() after Reset = %d", m.Total())
	}
	if m.Rate() != 0 {
		t.Errorf("Rate() after Reset = %.0f", m.Rate())
	}
}

func TestMeterConcurrentAddAndRate(t *testing.T) {
	m := NewMeter(time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(10)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 1000; j++ {
			_ = m.Rate()
		}
	}()
	wg.Wait()
	if got := m.Total(); got != 4*1000*10 {
		t.Errorf("Total() = %d, want %d", got, 4*1000*10)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.AddIn(100)
	c.AddIn(50)
	c.AddOut(70)
	c.AddDropped(30)
	s := c.Snapshot()
	if s.MsgsIn != 2 || s.BytesIn != 150 {
		t.Errorf("in counters = %d msgs / %d bytes, want 2/150", s.MsgsIn, s.BytesIn)
	}
	if s.MsgsOut != 1 || s.BytesOut != 70 {
		t.Errorf("out counters = %d/%d, want 1/70", s.MsgsOut, s.BytesOut)
	}
	if s.MsgsDropped != 1 || s.BytesDropped != 30 {
		t.Errorf("dropped = %d/%d, want 1/30", s.MsgsDropped, s.BytesDropped)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.AddIn(1)
				c.AddOut(1)
				c.AddDropped(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.MsgsIn != 4000 || s.MsgsOut != 4000 || s.MsgsDropped != 4000 {
		t.Errorf("concurrent counters = %+v, want 4000 each", s)
	}
}

func TestLatencyTrackerFirstSample(t *testing.T) {
	var lt LatencyTracker
	if _, ok := lt.RTT(); ok {
		t.Error("RTT() reported a sample on empty tracker")
	}
	lt.Observe(100 * time.Millisecond)
	rtt, ok := lt.RTT()
	if !ok || rtt != 100*time.Millisecond {
		t.Errorf("RTT() = %v, %v; want exactly first sample", rtt, ok)
	}
}

func TestLatencyTrackerSmoothing(t *testing.T) {
	var lt LatencyTracker
	lt.Observe(100 * time.Millisecond)
	lt.Observe(200 * time.Millisecond)
	rtt, _ := lt.RTT()
	// EWMA with alpha=0.125: 0.875*100 + 0.125*200 = 112.5ms
	want := 112500 * time.Microsecond
	if rtt < want-time.Millisecond || rtt > want+time.Millisecond {
		t.Errorf("smoothed RTT = %v, want ~%v", rtt, want)
	}
}

func TestNewMeterZeroWindowUsesDefault(t *testing.T) {
	m := NewMeter(0)
	if m.bucketSize != DefaultWindow/defaultBuckets {
		t.Errorf("bucketSize = %v, want %v", m.bucketSize, DefaultWindow/defaultBuckets)
	}
}
