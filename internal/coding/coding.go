// Package coding implements the paper's first case study (Section 3.2): a
// message-processing algorithm that performs network coding on overlay
// nodes. Messages from multiple incoming streams are coded into one
// stream using linear codes in GF(2^8), exercising the engine's hold
// mechanism for the generic n-to-m mapping. Receivers buffer plain and
// coded messages per sequence number and decode by Gaussian elimination
// once the collected coefficient vectors reach full rank.
//
// Stream identification follows the substream convention: substream i of
// an application uses data type StreamType(i); coded messages use
// CodedType and carry their coefficient vector as a payload prefix.
package coding

import (
	"sort"
	"sync/atomic"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/gf256"
	"repro/internal/message"
)

// StreamType returns the data message type of substream i.
func StreamType(i int) message.Type {
	return message.FirstDataType + 1 + message.Type(i)
}

// CodedType is the data message type of coded messages.
const CodedType = message.FirstDataType + 90

// streamTag recovers a substream index from a message type, or -1.
func streamTag(t message.Type) int {
	if t >= message.FirstDataType+1 && t < CodedType {
		return int(t - message.FirstDataType - 1)
	}
	return -1
}

// maxPending bounds the per-node buffered sequence numbers; older entries
// are abandoned so a stalled input cannot exhaust memory.
const maxPending = 4096

// CodeSpec configures the coder role: combine one message of each input
// substream (per sequence number) into a coded message for the given
// destinations, using the given coefficients. K is the total substream
// count of the session (the coefficient-vector dimension).
type CodeSpec struct {
	K      int
	Inputs []int
	Coeffs []byte // one per input; nil means all ones (the paper's a+b)
	Dests  []message.NodeID
}

// Node is the network-coding algorithm: one type serves every role in the
// session, selected by configuration — source splitting, verbatim
// forwarding, coding, and decoding — mirroring how one iOverlay algorithm
// binary is deployed on every node with per-node configuration from the
// observer.
type Node struct {
	algorithm.Base

	// SplitDests, when set on the source node, splits locally generated
	// raw data round-robin into len(SplitDests) substreams; substream i
	// goes to SplitDests[i].
	SplitDests [][]message.NodeID
	// Forward routes substream tags to downstreams, verbatim.
	Forward map[int][]message.NodeID
	// ForwardCoded routes coded messages, verbatim.
	ForwardCoded []message.NodeID
	// Code, when set, makes this node a coding point.
	Code *CodeSpec
	// DecodeK, when positive, makes this node a receiver that decodes the
	// session's K substreams and counts effective throughput.
	DecodeK int

	splitCount uint64
	pending    map[uint32]*seqState
	doneSeqs   map[uint32]bool
	effective  atomic.Int64
	decodedCnt atomic.Int64
}

type heldMsg struct {
	m   *message.Msg
	vec []byte
}

type seqState struct {
	held      []heldMsg
	codedSent bool
	decoded   bool
}

var _ engine.Algorithm = (*Node)(nil)

// Attach initializes state.
func (n *Node) Attach(api engine.API) {
	n.Base.Attach(api)
	n.pending = make(map[uint32]*seqState)
	n.doneSeqs = make(map[uint32]bool)
}

// EffectiveBytes reports the decoded (effective) bytes received, the
// metric Fig. 8 compares across coding and non-coding configurations.
// Safe to poll from any goroutine.
func (n *Node) EffectiveBytes() int64 { return n.effective.Load() }

// DecodedGenerations reports how many sequence numbers reached full rank.
func (n *Node) DecodedGenerations() int64 { return n.decodedCnt.Load() }

// Process implements the algorithm.
func (n *Node) Process(m *message.Msg) engine.Verdict {
	if !m.IsData() {
		return n.Base.Process(m)
	}
	switch {
	case m.Type() == message.FirstDataType && len(n.SplitDests) > 0:
		return n.split(m)
	case m.Type() == CodedType:
		return n.onData(m, nil)
	default:
		tag := streamTag(m.Type())
		if tag < 0 {
			return engine.Done // unknown data type: consume
		}
		return n.onData(m, &tag)
	}
}

// split relabels raw source data into substreams round-robin with aligned
// sequence numbers, so that coding points can match generations.
func (n *Node) split(m *message.Msg) engine.Verdict {
	k := uint64(len(n.SplitDests))
	i := int(n.splitCount % k)
	seq := uint32(n.splitCount / k)
	n.splitCount++
	d := m.Derive(StreamType(i), n.API.ID(), m.App(), seq)
	n.API.SendNew(d, n.SplitDests[i]...)
	return engine.Done
}

// onData handles one substream or coded message. tag is nil for coded
// messages.
func (n *Node) onData(m *message.Msg, tag *int) engine.Verdict {
	// Verbatim forwarding applies regardless of other roles.
	if tag != nil {
		for _, d := range n.Forward[*tag] {
			n.API.Send(m, d)
		}
	} else {
		for _, d := range n.ForwardCoded {
			n.API.Send(m, d)
		}
	}
	codes := n.Code != nil && tag != nil && n.codeWants(*tag)
	decodes := n.DecodeK > 0
	if !codes && !decodes {
		return engine.Done
	}
	if n.doneSeqs[m.Seq()] {
		return engine.Done // late duplicate of a completed generation
	}
	vec, width, ok := n.vectorOf(m, tag)
	if !ok {
		return engine.Done
	}
	// Plain substream payloads are useful data on their own: count them
	// toward effective throughput immediately (the paper's panel without
	// coding measures exactly this). Decoding later adds only the bytes
	// of streams recovered from coded messages.
	if decodes && tag != nil {
		n.effective.Add(int64(m.Len()))
	}
	st := n.pending[m.Seq()]
	if st == nil {
		st = &seqState{}
		n.pending[m.Seq()] = st
		n.evictIfNeeded()
	}
	st.held = append(st.held, heldMsg{m: m, vec: vec})

	if codes && !st.codedSent {
		n.tryCode(m.App(), m.Seq(), st, width)
	}
	if decodes && !st.decoded {
		n.tryDecode(st, width)
	}
	if (n.Code == nil || st.codedSent) && (n.DecodeK == 0 || st.decoded) {
		n.finishSeq(m.Seq(), st, m)
		// m was finished inside finishSeq via the held list except for
		// the delivery reference, which Done returns to the engine.
		return engine.Done
	}
	return engine.Hold
}

func (n *Node) codeWants(tag int) bool {
	for _, in := range n.Code.Inputs {
		if in == tag {
			return true
		}
	}
	return false
}

// vectorOf computes the coefficient vector a message represents in the
// session's K-dimensional space.
func (n *Node) vectorOf(m *message.Msg, tag *int) (vec []byte, width int, ok bool) {
	k := n.DecodeK
	if n.Code != nil && n.Code.K > k {
		k = n.Code.K
	}
	if k == 0 {
		return nil, 0, false
	}
	if tag != nil {
		if *tag >= k {
			return nil, 0, false
		}
		vec = make([]byte, k)
		vec[*tag] = 1
		return vec, m.Len(), true
	}
	// Coded: payload = [K coefficients][coded data].
	if m.Len() < k {
		return nil, 0, false
	}
	vec = append([]byte(nil), m.Payload()[:k]...)
	return vec, m.Len() - k, true
}

// payloadOf returns the data portion of a held message.
func (n *Node) payloadOf(h heldMsg, k int) []byte {
	if h.m.Type() == CodedType {
		return h.m.Payload()[k:]
	}
	return h.m.Payload()
}

// tryCode emits a coded combination once one message of every input
// substream for this generation is held.
func (n *Node) tryCode(app, seq uint32, st *seqState, width int) {
	spec := n.Code
	inputs := make([]heldMsg, len(spec.Inputs))
	for i, in := range spec.Inputs {
		found := false
		for _, h := range st.held {
			if t := streamTag(h.m.Type()); t == in {
				inputs[i] = h
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
	coeffs := spec.Coeffs
	if coeffs == nil {
		coeffs = make([]byte, len(spec.Inputs))
		for i := range coeffs {
			coeffs[i] = 1
		}
	}
	k := spec.K
	out := n.API.NewMsg(CodedType, app, seq, k+width)
	payload := out.Payload()
	for i := range payload {
		payload[i] = 0
	}
	for i, h := range inputs {
		gf256.Axpy(payload[:k], coeffs[i], h.vec)
		data := n.payloadOf(h, k)
		if len(data) > width {
			data = data[:width]
		}
		gf256.Axpy(payload[k:k+len(data)], coeffs[i], data)
	}
	n.API.SendNew(out, spec.Dests...)
	st.codedSent = true
}

// tryDecode solves the generation once the held coefficient vectors reach
// full rank.
func (n *Node) tryDecode(st *seqState, width int) {
	k := n.DecodeK
	if len(st.held) < k {
		return
	}
	vecs := make([][]byte, 0, len(st.held))
	for _, h := range st.held {
		vecs = append(vecs, h.vec)
	}
	if gf256.Rank(vecs) < k {
		return
	}
	// Pick k independent rows and solve.
	rows, payloads := n.independentRows(st, k)
	if rows == nil {
		return
	}
	if _, ok := gf256.Solve(rows, payloads); !ok {
		return
	}
	st.decoded = true
	n.decodedCnt.Add(1)
	// Credit only the streams recovered by solving: substreams that
	// arrived plain were already counted on receipt.
	plain := make(map[int]bool)
	for _, h := range st.held {
		if t := streamTag(h.m.Type()); t >= 0 {
			plain[t] = true
		}
	}
	if recovered := k - len(plain); recovered > 0 {
		n.effective.Add(int64(recovered * width))
	}
}

// independentRows selects k linearly independent held messages.
func (n *Node) independentRows(st *seqState, k int) (rows, payloads [][]byte) {
	var chosen [][]byte
	for _, h := range st.held {
		trial := append(chosen, h.vec)
		if gf256.Rank(trial) == len(trial) {
			chosen = trial
			payloads = append(payloads, n.payloadOf(h, k))
			if len(chosen) == k {
				return chosen, payloads
			}
		}
	}
	return nil, nil
}

// finishSeq releases every held message of a completed generation except
// the currently-delivered one (whose reference the engine still owns).
func (n *Node) finishSeq(seq uint32, st *seqState, current *message.Msg) {
	for _, h := range st.held {
		if h.m != current {
			n.API.Finish(h.m)
		}
	}
	delete(n.pending, seq)
	n.doneSeqs[seq] = true
	if len(n.doneSeqs) > 4*maxPending {
		n.doneSeqs = make(map[uint32]bool)
	}
}

// evictIfNeeded abandons the oldest pending generations when the buffer
// grows beyond maxPending.
func (n *Node) evictIfNeeded() {
	if len(n.pending) <= maxPending {
		return
	}
	seqs := make([]int, 0, len(n.pending))
	for s := range n.pending {
		seqs = append(seqs, int(s))
	}
	sort.Ints(seqs)
	for _, s := range seqs[:len(seqs)/2] {
		st := n.pending[uint32(s)]
		for _, h := range st.held {
			n.API.Finish(h.m)
		}
		delete(n.pending, uint32(s))
	}
}
