package coding

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/gf256"
	"repro/internal/message"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.1.%d", i), 7000)
}

func TestStreamTypeTagRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		if got := streamTag(StreamType(i)); got != i {
			t.Errorf("streamTag(StreamType(%d)) = %d", i, got)
		}
	}
	if got := streamTag(CodedType); got != -1 {
		t.Errorf("streamTag(CodedType) = %d, want -1", got)
	}
	if got := streamTag(message.FirstDataType); got != -1 {
		t.Errorf("streamTag(raw data) = %d, want -1", got)
	}
}

func TestSplitAlternatesStreamsAndAlignsSeqs(t *testing.T) {
	api := algtest.New(nid(1))
	n := &Node{SplitDests: [][]message.NodeID{{nid(2)}, {nid(3)}}}
	n.Attach(api)
	for seq := uint32(0); seq < 6; seq++ {
		m := message.New(message.FirstDataType, nid(1), 1, seq, []byte{byte(seq)})
		if v := n.Process(m); v != engine.Done {
			t.Fatalf("split verdict = %v", v)
		}
		m.Release()
	}
	toB, toC := api.SentTo(nid(2)), api.SentTo(nid(3))
	if len(toB) != 3 || len(toC) != 3 {
		t.Fatalf("split fan-out = %d/%d, want 3/3", len(toB), len(toC))
	}
	for i := range toB {
		if toB[i].Msg.Type() != StreamType(0) || toB[i].Msg.Seq() != uint32(i) {
			t.Errorf("stream a msg %d: type %d seq %d", i, toB[i].Msg.Type(), toB[i].Msg.Seq())
		}
		if toC[i].Msg.Type() != StreamType(1) || toC[i].Msg.Seq() != uint32(i) {
			t.Errorf("stream b msg %d: type %d seq %d", i, toC[i].Msg.Type(), toC[i].Msg.Seq())
		}
	}
	// Split is zero-copy: payload of the derived message aliases the raw.
	if got := toB[0].Msg.Payload()[0]; got != 0 {
		t.Errorf("derived payload = %d", got)
	}
}

func TestForwarderRole(t *testing.T) {
	api := algtest.New(nid(2))
	n := &Node{Forward: map[int][]message.NodeID{0: {nid(4), nid(5)}}}
	n.Attach(api)
	m := message.New(StreamType(0), nid(1), 1, 0, []byte("x"))
	if v := n.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v", v)
	}
	if len(api.SentTo(nid(4))) != 1 || len(api.SentTo(nid(5))) != 1 {
		t.Error("forwarder did not copy to both downstreams")
	}
	// Unrouted stream is consumed silently.
	m2 := message.New(StreamType(1), nid(1), 1, 0, []byte("y"))
	n.Process(m2)
	if len(api.Sends) != 2 {
		t.Errorf("unrouted stream was sent somewhere: %d sends", len(api.Sends))
	}
}

func TestCoderEmitsAPlusB(t *testing.T) {
	api := algtest.New(nid(4))
	n := &Node{Code: &CodeSpec{K: 2, Inputs: []int{0, 1}, Dests: []message.NodeID{nid(5)}}}
	n.Attach(api)

	a := message.New(StreamType(0), nid(2), 1, 7, []byte{10, 20, 30})
	if v := n.Process(a); v != engine.Hold {
		t.Fatalf("first input verdict = %v, want Hold", v)
	}
	b := message.New(StreamType(1), nid(3), 1, 7, []byte{1, 2, 3})
	if v := n.Process(b); v != engine.Done {
		t.Fatalf("second input verdict = %v, want Done", v)
	}
	sent := api.SentTo(nid(5))
	if len(sent) != 1 {
		t.Fatalf("coded sends = %d, want 1", len(sent))
	}
	coded := sent[0].Msg
	if coded.Type() != CodedType || coded.Seq() != 7 {
		t.Errorf("coded header: type %d seq %d", coded.Type(), coded.Seq())
	}
	payload := coded.Payload()
	if !bytes.Equal(payload[:2], []byte{1, 1}) {
		t.Errorf("coefficient vector = %v, want [1 1]", payload[:2])
	}
	want := gf256.Combine([]byte{1, 1}, [][]byte{{10, 20, 30}, {1, 2, 3}})
	if !bytes.Equal(payload[2:], want) {
		t.Errorf("coded payload = %v, want %v", payload[2:], want)
	}
	// The held message was finished by the coder: with a Hold verdict the
	// engine never releases, so Finish is the last reference.
	if a.Refs() != 0 {
		t.Errorf("held input refs = %d after completion, want 0", a.Refs())
	}
}

func TestCoderMismatchedSeqsDoNotCombine(t *testing.T) {
	api := algtest.New(nid(4))
	n := &Node{Code: &CodeSpec{K: 2, Inputs: []int{0, 1}, Dests: []message.NodeID{nid(5)}}}
	n.Attach(api)
	n.Process(message.New(StreamType(0), nid(2), 1, 1, []byte{1}))
	n.Process(message.New(StreamType(1), nid(3), 1, 2, []byte{2}))
	if len(api.Sends) != 0 {
		t.Errorf("coder combined across generations: %d sends", len(api.Sends))
	}
}

func TestDecoderFromPlainAndCoded(t *testing.T) {
	api := algtest.New(nid(6))
	n := &Node{DecodeK: 2}
	n.Attach(api)

	aPayload := []byte{9, 8, 7, 6}
	bPayload := []byte{1, 2, 3, 4}
	a := message.New(StreamType(0), nid(2), 1, 3, aPayload)
	if v := n.Process(a); v != engine.Hold {
		t.Fatalf("plain a verdict = %v, want Hold", v)
	}
	codedBody := gf256.Combine([]byte{1, 1}, [][]byte{aPayload, bPayload})
	coded := message.New(CodedType, nid(5), 1, 3, append([]byte{1, 1}, codedBody...))
	if v := n.Process(coded); v != engine.Done {
		t.Fatalf("coded verdict = %v, want Done", v)
	}
	if n.DecodedGenerations() != 1 {
		t.Fatalf("DecodedGenerations = %d, want 1", n.DecodedGenerations())
	}
	if got := n.EffectiveBytes(); got != int64(2*len(aPayload)) {
		t.Errorf("EffectiveBytes = %d, want %d", got, 2*len(aPayload))
	}
	// A late duplicate of a finished generation is ignored.
	dup := message.New(StreamType(1), nid(3), 1, 3, bPayload)
	if v := n.Process(dup); v != engine.Done {
		t.Errorf("late duplicate verdict = %v, want Done", v)
	}
	if n.DecodedGenerations() != 1 {
		t.Errorf("duplicate changed generation count")
	}
}

func TestDecoderIgnoresDependentVectors(t *testing.T) {
	api := algtest.New(nid(6))
	n := &Node{DecodeK: 2}
	n.Attach(api)
	a1 := message.New(StreamType(0), nid(2), 1, 0, []byte{5})
	a2 := message.New(StreamType(0), nid(3), 1, 0, []byte{5}) // same stream again
	n.Process(a1)
	n.Process(a2)
	if n.DecodedGenerations() != 0 {
		t.Error("decoder decoded from rank-deficient set")
	}
}

func TestEvictionBoundsMemory(t *testing.T) {
	api := algtest.New(nid(6))
	n := &Node{DecodeK: 2}
	n.Attach(api)
	for seq := uint32(0); seq < maxPending+10; seq++ {
		n.Process(message.New(StreamType(0), nid(2), 1, seq, []byte{1}))
	}
	if len(n.pending) > maxPending {
		t.Errorf("pending grew to %d, want <= %d", len(n.pending), maxPending)
	}
}

// TestFig8Butterfly runs the full Fig. 8(b) coding session over real
// engines: A splits into streams a (via B) and b (via C); D codes a+b and
// sends to E; E forwards the coded stream to F and G; F also gets a from
// B, G also gets b from C. F and G must decode both streams.
func TestFig8Butterfly(t *testing.T) {
	n := vnet.New()
	defer n.Close()
	const app = 1
	ids := map[string]message.NodeID{
		"A": nid(1), "B": nid(2), "C": nid(3), "D": nid(4),
		"E": nid(5), "F": nid(6), "G": nid(7),
	}
	algs := map[string]*Node{
		"A": {SplitDests: [][]message.NodeID{{ids["B"]}, {ids["C"]}}},
		"B": {Forward: map[int][]message.NodeID{0: {ids["D"], ids["F"]}}},
		"C": {Forward: map[int][]message.NodeID{1: {ids["D"], ids["G"]}}},
		"D": {Code: &CodeSpec{K: 2, Inputs: []int{0, 1}, Dests: []message.NodeID{ids["E"]}}, DecodeK: 2},
		"E": {ForwardCoded: []message.NodeID{ids["F"], ids["G"]}},
		"F": {DecodeK: 2},
		"G": {DecodeK: 2},
	}
	engines := make(map[string]*engine.Engine)
	for name, alg := range algs {
		e, err := engine.New(engine.Config{
			ID:        ids[name],
			Transport: engine.VNet{Net: n},
			Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", name, err)
		}
		if err := e.Start(); err != nil {
			t.Fatalf("engine.Start(%s): %v", name, err)
		}
		t.Cleanup(e.Stop)
		engines[name] = e
	}
	engines["A"].StartSource(app, 400<<10, 1000)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if algs["F"].DecodedGenerations() > 50 &&
			algs["G"].DecodedGenerations() > 50 &&
			algs["D"].DecodedGenerations() > 50 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, name := range []string{"D", "F", "G"} {
		if got := algs[name].DecodedGenerations(); got <= 50 {
			t.Errorf("%s decoded %d generations, want > 50", name, got)
		}
		if got := algs[name].EffectiveBytes(); got <= 100*1000 {
			t.Errorf("%s effective bytes = %d, want > 100000", name, got)
		}
	}
}
