// Package simnet generates synthetic wide-area overlay testbeds — the
// PlanetLab substitute for this reproduction. It produces deterministic,
// seeded node populations with geographic coordinates drawn from real
// PlanetLab-era site locations, per-node last-mile bandwidth drawn from
// the paper's distributions (uniform 50–200 KBps for the tree
// experiments), and a latency matrix derived from great-circle distance.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/message"
)

// Site is a physical location hosting overlay nodes.
type Site struct {
	Name     string
	Lat, Lon float64
}

// _sites lists PlanetLab-era host institutions; node placement cycles
// through them, so multiple virtualized nodes may share a location (as
// the paper notes for its topology maps).
var _sites = []Site{
	{"MIT", 42.36, -71.09},
	{"Berkeley", 37.87, -122.26},
	{"CMU", 40.44, -79.94},
	{"Princeton", 40.34, -74.65},
	{"UCSD", 32.88, -117.23},
	{"UWashington", 47.65, -122.30},
	{"Duke", 36.00, -78.94},
	{"UToronto", 43.66, -79.40},
	{"Columbia", 40.81, -73.96},
	{"Caltech", 34.14, -118.13},
	{"UT-Austin", 30.29, -97.74},
	{"GaTech", 33.78, -84.40},
	{"Cornell", 42.45, -76.48},
	{"UIUC", 40.11, -88.23},
	{"Utah", 40.76, -111.85},
	{"Arizona", 32.23, -110.95},
	{"Rice", 29.72, -95.40},
	{"UNC", 35.91, -79.05},
	{"Michigan", 42.28, -83.74},
	{"UCLA", 34.07, -118.44},
	{"INRIA", 43.62, 7.05},
	{"TUBerlin", 52.51, 13.33},
	{"VU-Amsterdam", 52.33, 4.87},
	{"Technion", 32.78, 35.02},
	{"Tsinghua", 40.00, 116.33},
	{"UFMG", -19.87, -43.97},
}

// Node is one synthetic overlay node.
type Node struct {
	ID        message.NodeID
	Site      Site
	Bandwidth int64 // last-mile bandwidth, bytes/sec
}

// Testbed is a generated node population.
type Testbed struct {
	Nodes []Node
	rng   *rand.Rand
}

// Config parameterizes generation.
type Config struct {
	// N is the number of overlay nodes.
	N int
	// Seed fixes the generation.
	Seed int64
	// MinBW and MaxBW bound the uniform last-mile bandwidth distribution
	// in bytes/sec (the paper uses 50–200 KBps).
	MinBW, MaxBW int64
	// BasePort is the first port; node i gets BasePort (ports are unique
	// because IPs differ).
	BasePort uint32
}

// DefaultBW matches the paper's uniform 50–200 KBps distribution.
const (
	DefaultMinBW = 50 << 10
	DefaultMaxBW = 200 << 10
)

// Generate builds a deterministic testbed.
func Generate(cfg Config) *Testbed {
	if cfg.N <= 0 {
		panic("simnet: N must be positive")
	}
	if cfg.MinBW <= 0 {
		cfg.MinBW = DefaultMinBW
	}
	if cfg.MaxBW < cfg.MinBW {
		cfg.MaxBW = DefaultMaxBW
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 7000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := &Testbed{rng: rng}
	for i := 0; i < cfg.N; i++ {
		// Address space 10.x.y.z, distinct per node.
		ip := fmt.Sprintf("10.%d.%d.%d", (i/65025)%256, (i/255)%255+1, i%255+1)
		bw := cfg.MinBW
		if cfg.MaxBW > cfg.MinBW {
			bw += rng.Int63n(cfg.MaxBW - cfg.MinBW + 1)
		}
		tb.Nodes = append(tb.Nodes, Node{
			ID:        message.MakeID(ip, cfg.BasePort),
			Site:      _sites[i%len(_sites)],
			Bandwidth: bw,
		})
	}
	return tb
}

// IDs lists the node identities in order.
func (tb *Testbed) IDs() []message.NodeID {
	ids := make([]message.NodeID, len(tb.Nodes))
	for i, n := range tb.Nodes {
		ids[i] = n.ID
	}
	return ids
}

// BandwidthOf reports the last-mile bandwidth of a node, or zero.
func (tb *Testbed) BandwidthOf(id message.NodeID) int64 {
	for _, n := range tb.Nodes {
		if n.ID == id {
			return n.Bandwidth
		}
	}
	return 0
}

// Latency estimates the one-way latency between two testbed nodes from
// great-circle distance at ~2/3 the speed of light plus a 2 ms floor.
func Latency(a, b Node) time.Duration {
	km := haversineKm(a.Site.Lat, a.Site.Lon, b.Site.Lat, b.Site.Lon)
	prop := km / 200000.0 // seconds, ~200,000 km/s in fiber
	return 2*time.Millisecond + time.Duration(prop*float64(time.Second))
}

func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat, dLon := rad(lat2-lat1), rad(lon2-lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(a)))
}
