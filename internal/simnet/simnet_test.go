package simnet

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 81, Seed: 42})
	b := Generate(Config{N: 81, Seed: 42})
	if len(a.Nodes) != 81 || len(b.Nodes) != 81 {
		t.Fatalf("node counts = %d/%d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs across same-seed generations", i)
		}
	}
	c := Generate(Config{N: 81, Seed: 43})
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].Bandwidth != c.Nodes[i].Bandwidth {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical bandwidths")
	}
}

func TestGenerateUniqueIDs(t *testing.T) {
	tb := Generate(Config{N: 300, Seed: 1})
	seen := make(map[string]bool)
	for _, n := range tb.Nodes {
		addr := n.ID.Addr()
		if seen[addr] {
			t.Fatalf("duplicate node address %s", addr)
		}
		seen[addr] = true
	}
}

func TestBandwidthDistribution(t *testing.T) {
	tb := Generate(Config{N: 500, Seed: 7})
	var sum int64
	for _, n := range tb.Nodes {
		if n.Bandwidth < DefaultMinBW || n.Bandwidth > DefaultMaxBW {
			t.Fatalf("bandwidth %d outside [%d, %d]", n.Bandwidth, DefaultMinBW, DefaultMaxBW)
		}
		sum += n.Bandwidth
	}
	mean := float64(sum) / float64(len(tb.Nodes))
	mid := float64(DefaultMinBW+DefaultMaxBW) / 2
	if mean < mid*0.9 || mean > mid*1.1 {
		t.Errorf("bandwidth mean %.0f far from uniform midpoint %.0f", mean, mid)
	}
}

func TestCustomBandwidthRange(t *testing.T) {
	tb := Generate(Config{N: 50, Seed: 1, MinBW: 100, MaxBW: 100})
	for _, n := range tb.Nodes {
		if n.Bandwidth != 100 {
			t.Fatalf("fixed-range bandwidth = %d", n.Bandwidth)
		}
	}
}

func TestBandwidthOfAndIDs(t *testing.T) {
	tb := Generate(Config{N: 5, Seed: 1})
	ids := tb.IDs()
	if len(ids) != 5 {
		t.Fatalf("IDs() = %d", len(ids))
	}
	if got := tb.BandwidthOf(ids[3]); got != tb.Nodes[3].Bandwidth {
		t.Errorf("BandwidthOf = %d, want %d", got, tb.Nodes[3].Bandwidth)
	}
	if got := tb.BandwidthOf(ids[0]); got == 0 {
		t.Error("BandwidthOf known node = 0")
	}
	unknown := tb.Nodes[0]
	unknown.ID.Port++
	if got := tb.BandwidthOf(unknown.ID); got != 0 {
		t.Errorf("BandwidthOf unknown node = %d, want 0", got)
	}
}

func TestLatencyProperties(t *testing.T) {
	tb := Generate(Config{N: 30, Seed: 1})
	for i := 0; i < 10; i++ {
		a, b := tb.Nodes[i], tb.Nodes[(i+7)%len(tb.Nodes)]
		lab := Latency(a, b)
		lba := Latency(b, a)
		if lab != lba {
			t.Errorf("latency asymmetric: %v vs %v", lab, lba)
		}
		if lab < 2*time.Millisecond {
			t.Errorf("latency %v below floor", lab)
		}
		if lab > 500*time.Millisecond {
			t.Errorf("latency %v implausibly large", lab)
		}
	}
	// Same site: floor only.
	same := Latency(tb.Nodes[0], tb.Nodes[0])
	if same != 2*time.Millisecond {
		t.Errorf("same-site latency = %v, want 2ms", same)
	}
}

func TestGeneratePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate(N=0) did not panic")
		}
	}()
	Generate(Config{N: 0})
}
