package vnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func pair(t *testing.T, n *Network, address string) (client, server net.Conn) {
	t.Helper()
	l, err := n.Listen(address)
	if err != nil {
		t.Fatalf("Listen(%s): %v", address, err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		accepted <- c
	}()
	client, err = n.Dial(address)
	if err != nil {
		t.Fatalf("Dial(%s): %v", address, err)
	}
	select {
	case server = <-accepted:
	case <-time.After(time.Second):
		t.Fatal("Accept timed out")
	}
	return client, server
}

func TestBasicExchange(t *testing.T) {
	n := New()
	defer n.Close()
	client, server := pair(t, n, "10.0.0.1:7000")

	msg := []byte("hello from client")
	go func() {
		if _, err := client.Write(msg); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q, want %q", buf, msg)
	}

	// And the other direction.
	reply := []byte("hello from server")
	go func() {
		if _, err := server.Write(reply); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()
	buf = make([]byte, len(reply))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(buf, reply) {
		t.Errorf("got %q, want %q", buf, reply)
	}
}

func TestDialUnknownAddressRefused(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Dial("10.0.0.9:1"); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("Dial unknown: err = %v, want ErrConnectionRefused", err)
	}
}

func TestListenDuplicateAddress(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Listen("10.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("10.0.0.1:1"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate Listen: err = %v, want ErrAddrInUse", err)
	}
}

func TestListenerCloseFreesAddress(t *testing.T) {
	n := New()
	defer n.Close()
	l, err := n.Listen("10.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("10.0.0.1:1"); err != nil {
		t.Errorf("Listen after Close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrListenerClosed) {
		t.Errorf("Accept after Close: err = %v, want ErrListenerClosed", err)
	}
}

func TestDialFromCarriesLocalAddress(t *testing.T) {
	n := New()
	defer n.Close()
	l, err := n.Listen("10.0.0.2:7000")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := n.DialFrom("10.0.0.1:7000", "10.0.0.2:7000"); err != nil {
			t.Errorf("DialFrom: %v", err)
		}
	}()
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if got := server.RemoteAddr().String(); got != "10.0.0.1:7000" {
		t.Errorf("server RemoteAddr = %s, want 10.0.0.1:7000", got)
	}
	if got := server.LocalAddr().String(); got != "10.0.0.2:7000" {
		t.Errorf("server LocalAddr = %s, want 10.0.0.2:7000", got)
	}
}

func TestBackPressureBlocksWriter(t *testing.T) {
	n := New(WithPipeCapacity(1024))
	defer n.Close()
	client, server := pair(t, n, "10.0.0.1:7000")

	wrote := make(chan struct{})
	go func() {
		// 4 KiB into a 1 KiB pipe must block until the reader drains.
		if _, err := client.Write(make([]byte, 4096)); err != nil {
			t.Errorf("Write: %v", err)
		}
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("oversized Write completed without reader")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := io.ReadFull(server, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wrote:
	case <-time.After(time.Second):
		t.Fatal("Write did not unblock after drain")
	}
}

func TestGracefulCloseDeliversEOFAfterDrain(t *testing.T) {
	n := New()
	defer n.Close()
	client, server := pair(t, n, "10.0.0.1:7000")

	if _, err := client.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("ReadFull after close: %v", err)
	}
	if string(buf) != "tail" {
		t.Errorf("drained %q, want %q", buf, "tail")
	}
	if _, err := server.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("Read after drain: err = %v, want io.EOF", err)
	}
}

func TestSeverBreaksBothEnds(t *testing.T) {
	n := New()
	defer n.Close()
	l, err := n.Listen("10.0.0.2:7000")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err := n.DialFrom("10.0.0.1:7000", "10.0.0.2:7000")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-accepted:
	case <-time.After(time.Second):
		t.Fatal("Accept timed out")
	}
	if _, err := client.Write([]byte("in flight")); err != nil {
		t.Fatal(err)
	}
	if broken := n.Sever("10.0.0.1:7000", "10.0.0.2:7000"); broken != 2 {
		t.Fatalf("Sever broke %d endpoints, want 2", broken)
	}
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("Read after sever: err = %v, want ErrPipeClosed", err)
	}
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("Write after sever: err = %v, want ErrPipeClosed", err)
	}
}

func TestSeverNodeBreaksAllAndRefusesDials(t *testing.T) {
	n := New()
	defer n.Close()
	_, server := pair(t, n, "10.0.0.1:7000")
	n.SeverNode("10.0.0.1:7000")
	if _, err := server.Read(make([]byte, 1)); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("server Read after node sever: err = %v, want ErrPipeClosed", err)
	}
	if _, err := n.Dial("10.0.0.1:7000"); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("Dial severed node: err = %v, want ErrConnectionRefused", err)
	}
}

func TestNetworkCloseRefusesEverything(t *testing.T) {
	n := New()
	client, _ := pair(t, n, "10.0.0.1:7000")
	n.Close()
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("Read after network close: err = %v, want ErrPipeClosed", err)
	}
	if _, err := n.Dial("10.0.0.1:7000"); !errors.Is(err, ErrNetworkDown) {
		t.Errorf("Dial after network close: err = %v, want ErrNetworkDown", err)
	}
	if _, err := n.Listen("10.0.0.3:1"); !errors.Is(err, ErrNetworkDown) {
		t.Errorf("Listen after network close: err = %v, want ErrNetworkDown", err)
	}
	n.Close() // idempotent
}

func TestReadDeadline(t *testing.T) {
	n := New()
	defer n.Close()
	client, _ := pair(t, n, "10.0.0.1:7000")
	if err := client.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := client.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Read past deadline: err = %v, want timeout net.Error", err)
	}
	// Clearing the deadline re-enables reads.
	if err := client.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDeadline(t *testing.T) {
	n := New(WithPipeCapacity(8))
	defer n.Close()
	client, _ := pair(t, n, "10.0.0.1:7000")
	if err := client.SetWriteDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := client.Write(make([]byte, 64))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Write past deadline on full pipe: err = %v, want timeout", err)
	}
}

func TestStreamIntegrityUnderChunking(t *testing.T) {
	// Property: any sequence of writes is received as the identical byte
	// stream regardless of chunk boundaries, through a small pipe.
	f := func(chunks [][]byte) bool {
		n := New(WithPipeCapacity(64))
		defer n.Close()
		var want []byte
		for _, c := range chunks {
			want = append(want, c...)
		}
		l, err := n.Listen("h:1")
		if err != nil {
			return false
		}
		done := make(chan []byte, 1)
		go func() {
			s, err := l.Accept()
			if err != nil {
				done <- nil
				return
			}
			got, _ := io.ReadAll(s)
			done <- got
		}()
		c, err := n.Dial("h:1")
		if err != nil {
			return false
		}
		for _, chunk := range chunks {
			if _, err := c.Write(chunk); err != nil {
				return false
			}
		}
		c.Close()
		got := <-done
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	n := New()
	defer n.Close()
	l, err := n.Listen("hub:1")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < clients; i++ {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				buf := make([]byte, 8)
				if _, err := io.ReadFull(c, buf); err != nil {
					t.Errorf("server read: %v", err)
					return
				}
				if _, err := c.Write(buf); err != nil {
					t.Errorf("server write: %v", err)
				}
			}(c)
		}
	}()
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			c, err := n.Dial("hub:1")
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			out := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
			if _, err := c.Write(out); err != nil {
				t.Errorf("client write: %v", err)
				return
			}
			in := make([]byte, 8)
			if _, err := io.ReadFull(c, in); err != nil {
				t.Errorf("client read: %v", err)
				return
			}
			if !bytes.Equal(in, out) {
				t.Errorf("echo mismatch for client %d", i)
			}
		}(i)
	}
	cwg.Wait()
	wg.Wait()
}

func TestConstantLatencyDelaysDelivery(t *testing.T) {
	const lat = 60 * time.Millisecond
	n := New(WithLatency(lat))
	defer n.Close()
	client, server := pair(t, n, "10.0.0.1:7000")

	start := time.Now()
	if _, err := client.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Errorf("delivery after %v, want >= %v", elapsed, lat)
	}
	if elapsed > lat+200*time.Millisecond {
		t.Errorf("delivery after %v, far beyond latency", elapsed)
	}
	if string(buf) != "delayed" {
		t.Errorf("payload %q", buf)
	}
}

func TestLatencyFuncPerPair(t *testing.T) {
	n := New(WithLatencyFunc(func(a, b string) time.Duration {
		if a == "10.0.0.1:7000" {
			return 80 * time.Millisecond
		}
		return 0
	}))
	defer n.Close()
	l, err := n.Listen("hub:1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1)
				if _, err := io.ReadFull(c, buf); err == nil {
					_, _ = c.Write(buf)
				}
			}()
		}
	}()
	rtt := func(local string) time.Duration {
		c, err := n.DialFrom(local, "hub:1")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if _, err := c.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slow := rtt("10.0.0.1:7000")
	fast := rtt("10.0.0.2:7000")
	if slow < 160*time.Millisecond {
		t.Errorf("slow pair RTT = %v, want >= 160ms (2x80ms)", slow)
	}
	if fast > 50*time.Millisecond {
		t.Errorf("fast pair RTT = %v, want near zero", fast)
	}
}

func TestLatencyEOFAfterDrain(t *testing.T) {
	n := New(WithLatency(30 * time.Millisecond))
	defer n.Close()
	client, server := pair(t, n, "10.0.0.1:7000")
	if _, err := client.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	// The in-flight bytes must still arrive (after their latency), then EOF.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read after close: %v", err)
	}
	if string(buf) != "tail" {
		t.Errorf("drained %q", buf)
	}
	if _, err := server.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}
