package vnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Datagram endpoints: the virtual network's UDP analogue. A PacketConn
// binds an address in a namespace separate from the stream listeners
// (the way UDP and TCP ports coexist on one host), and WriteTo delivers
// whole packets with genuine datagram semantics — a packet to a missing
// or partitioned destination is silently black-holed, a full receive
// queue drops the newest arrival, and per-pair seeded faults can drop,
// duplicate, or reorder packets without the connection noticing.

// DefaultDgramInbox is the per-endpoint receive queue, in packets; an
// arrival at a full queue is dropped, like a full kernel UDP buffer.
// Sized like one: ~2.8 MB at a 1400-byte MTU, enough slack for a reader
// stalled a couple hundred milliseconds behind a fast sender.
const DefaultDgramInbox = 2048

// dgramSpec is the fault profile of one link's datagram traffic: each
// packet is independently dropped, duplicated, or held back one packet
// (delivered after its successor) with the given probabilities.
type dgramSpec struct {
	drop, dup, reorder float64
}

// heldDgram is a packet held back by reorder fault injection; it is
// released when the next packet on the pair overtakes it, or by a short
// timer when no successor shows up.
type heldDgram struct {
	to    *PacketConn
	pkt   dgram
	timer *time.Timer
}

// Addr wraps a virtual address string in the net.Addr the network's
// datagram endpoints accept in WriteTo.
func Addr(s string) net.Addr { return addr(s) }

// dgram is one queued packet. data is a view into its batch's pooled
// buffer; buf carries the reference for release on consumption. from is
// the sender's pre-boxed address — boxed once at bind time, not per
// packet.
type dgram struct {
	from net.Addr
	data []byte
	buf  *dgramBuf
}

// dgramBuf is the pooled backing store of one delivered batch. Every
// queued dgram holds one reference; the buffer returns to the pool when
// the last packet is consumed (read) or dropped, so a steady flood
// recycles a handful of arenas instead of allocating per batch — the
// datagram counterpart of the stream pipe reusing its ring.
type dgramBuf struct {
	arena   []byte
	entries []dgram
	refs    atomic.Int32
}

var dgramBufPool = sync.Pool{New: func() any { return new(dgramBuf) }}

func getDgramBuf(size, count int) *dgramBuf {
	b := dgramBufPool.Get().(*dgramBuf)
	if cap(b.arena) < size {
		b.arena = make([]byte, 0, size)
	}
	if cap(b.entries) < count {
		b.entries = make([]dgram, 0, count)
	}
	b.arena = b.arena[:0]
	b.entries = b.entries[:0]
	return b
}

// release drops n references; the last one returns the buffer to the
// pool. Packets discarded at close time simply never release — the
// buffer falls to the garbage collector instead, which is correct just
// slower, and close is not a hot path.
func (b *dgramBuf) release(n int32) {
	if b != nil && b.refs.Add(-n) == 0 {
		dgramBufPool.Put(b)
	}
}

// Release drops one reference; exported so a borrowed packet's backing
// buffer can travel as a generic refcounted owner (see Dgram.Owner).
func (b *dgramBuf) Release() { b.release(1) }

// PacketConn is a bound datagram endpoint. It satisfies net.PacketConn.
//
// The inbox carries batches: a WriteToBatch sender hands over all its
// packets in one channel operation, the way recvmmsg drains a socket
// buffer in one syscall. queued counts buffered packets (channel plus
// the reader-side remainder) and enforces the DefaultDgramInbox bound;
// a reservation against it is taken before the channel send, so the
// send itself never blocks — at one packet per batch minimum, the
// channel can never hold more batches than the packet bound.
type PacketConn struct {
	net    *Network
	local  string
	localA net.Addr // boxed once; every queued packet shares it as from
	inbox  chan []dgram
	queued atomic.Int64

	done      chan struct{}
	closeOnce sync.Once
	dropsFull atomic.Int64

	mu           sync.Mutex
	readDeadline time.Time
	pending      []dgram // unread tail of the last batch taken from inbox
}

var _ net.PacketConn = (*PacketConn)(nil)

// ListenPacket binds a datagram endpoint to address. The address must be
// free among packet endpoints; a stream listener on the same address is
// unrelated, as with UDP and TCP ports on a real host.
func (n *Network) ListenPacket(address string) (net.PacketConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetworkDown
	}
	if _, ok := n.packets[address]; ok {
		return nil, fmt.Errorf("%w: %s (datagram)", ErrAddrInUse, address)
	}
	// Rebinding after a crash is a restart, as with Listen.
	delete(n.crashed, address)
	p := &PacketConn{
		net:    n,
		local:  address,
		localA: addr(address),
		inbox:  make(chan []dgram, DefaultDgramInbox),
		done:   make(chan struct{}),
	}
	n.packets[address] = p
	return p, nil
}

// DgramFaults attaches a seeded fault profile to the datagram traffic
// between a and b (both directions): each packet is dropped with
// probability drop, duplicated with probability dup, and held back to
// arrive after its successor with probability reorder. The profile
// applies until Heal.
func (n *Network) DgramFaults(a, b string, drop, dup, reorder float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dgram[pairOf(a, b)] = dgramSpec{drop: drop, dup: dup, reorder: reorder}
}

// roll samples the network's seeded fault source once.
func (n *Network) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	n.rngMu.Lock()
	v := n.rng.Float64()
	n.rngMu.Unlock()
	return v < prob
}

// WriteTo sends one packet to a bound datagram endpoint. Datagram
// semantics throughout: an unreachable destination — unbound address,
// crashed node, cut or partitioned link — is a silent black hole (the
// write succeeds, the packet vanishes), and only a closed endpoint or a
// closed network reports an error.
func (p *PacketConn) WriteTo(b []byte, to net.Addr) (int, error) {
	bufs := [1][]byte{b}
	if _, err := p.writeBatch(bufs[:], to); err != nil {
		return 0, err
	}
	return len(b), nil
}

// WriteToBatch sends a batch of packets to one destination — the vnet
// analogue of sendmmsg. The whole batch shares a single routing
// decision, one backing allocation for the queued bytes, and one inbox
// handoff at the receiver; faults still apply packet by packet. Like
// WriteTo, unreachable destinations black-hole silently: the count
// returned is how many packets the caller handed over, not how many
// survived.
func (p *PacketConn) WriteToBatch(bufs [][]byte, to net.Addr) (int, error) {
	return p.writeBatch(bufs, to)
}

func (p *PacketConn) writeBatch(bufs [][]byte, to net.Addr) (int, error) {
	select {
	case <-p.done:
		return 0, net.ErrClosed
	default:
	}
	dest := to.String()
	n := p.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrNetworkDown
	}
	target := n.packets[dest]
	blocked := n.blockedLocked(p.local, dest)
	spec := n.dgram[pairOf(p.local, dest)]
	n.mu.Unlock()
	if target == nil || blocked {
		return len(bufs), nil
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	// The caller reuses its buffers; queued packets own their bytes. One
	// pooled arena backs the whole batch, so a steady flood recycles a
	// handful of buffers instead of allocating per packet or per batch.
	buf := getDgramBuf(total, len(bufs))
	held := 0
	key := pairOf(p.local, dest)
	for _, b := range bufs {
		if n.roll(spec.drop) {
			continue
		}
		off := len(buf.arena)
		buf.arena = append(buf.arena, b...)
		d := dgram{from: p.localA, data: buf.arena[off:len(buf.arena):len(buf.arena)], buf: buf}
		copies := 1
		if n.roll(spec.dup) {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			if n.roll(spec.reorder) && n.holdDgram(key, target, d) {
				held++
				continue
			}
			buf.entries = append(buf.entries, d)
		}
	}
	batch := buf.entries
	// Every queued packet (delivered or held back) carries one reference;
	// the count must be in place before the first consumer can release.
	if refs := len(batch) + held; refs > 0 {
		buf.refs.Store(int32(refs))
	}
	if len(batch) > 0 {
		target.deliverBatch(batch)
		n.releaseHeld(key)
	}
	return len(bufs), nil
}

// holdDgram stashes a packet for reorder injection, reporting false when
// another packet is already held on the pair (at most one outstanding).
// A short timer releases the packet even if no successor ever overtakes
// it, so a reordered packet is late, never lost.
func (n *Network) holdDgram(key pairKey, to *PacketConn, pkt dgram) bool {
	n.mu.Lock()
	if _, busy := n.dgramHeld[key]; busy {
		n.mu.Unlock()
		return false
	}
	h := &heldDgram{to: to, pkt: pkt}
	h.timer = time.AfterFunc(5*time.Millisecond, func() { n.releaseHeld(key) })
	n.dgramHeld[key] = h
	n.mu.Unlock()
	return true
}

// releaseHeld delivers the packet held on key, if any.
func (n *Network) releaseHeld(key pairKey) {
	n.mu.Lock()
	h := n.dgramHeld[key]
	delete(n.dgramHeld, key)
	n.mu.Unlock()
	if h == nil {
		return
	}
	h.timer.Stop()
	h.to.deliverBatch([]dgram{h.pkt})
}

// deliverBatch queues a batch, dropping whatever exceeds the endpoint's
// packet bound or arrives after close — exactly what a kernel does to a
// UDP datagram nobody is reading fast enough. The packet reservation is
// taken against queued before the channel send, which therefore never
// blocks (see the PacketConn doc).
func (p *PacketConn) deliverBatch(batch []dgram) {
	select {
	case <-p.done:
		releaseAll(batch)
		return
	default:
	}
	for {
		q := p.queued.Load()
		room := int64(DefaultDgramInbox) - q
		if room <= 0 {
			p.dropsFull.Add(int64(len(batch)))
			releaseAll(batch)
			return
		}
		take := int64(len(batch))
		if take > room {
			take = room
		}
		if p.queued.CompareAndSwap(q, q+take) {
			if int(take) < len(batch) {
				p.dropsFull.Add(int64(len(batch)) - take)
				releaseAll(batch[take:])
				batch = batch[:take]
			}
			break
		}
	}
	select {
	case p.inbox <- batch:
	default:
		// Unreachable while the reservation invariant holds; shedding
		// beats blocking the writer if it is ever violated.
		p.queued.Add(-int64(len(batch)))
		p.dropsFull.Add(int64(len(batch)))
		releaseAll(batch)
	}
}

// releaseAll drops the buffer references of every packet in batch.
func releaseAll(batch []dgram) {
	for i := range batch {
		batch[i].buf.release(1)
	}
}

// Dgram is a borrowed view of one queued packet: Data aliases the
// endpoint's pooled buffer and stays valid only until Release. Readers
// that copy or fully decode the packet before their next read can take
// this zero-copy path instead of ReadFrom's copy-out.
type Dgram struct {
	Data []byte
	From net.Addr
	buf  *dgramBuf
}

// Release retires the packet: its buffer reference is dropped and Data
// must not be touched again.
func (d Dgram) Release() { d.buf.release(1) }

// Owner exposes the packet's refcounted backing buffer; calling its
// Release once is equivalent to releasing the Dgram. A zero-copy reader
// hands it to a consumer that outlives the read loop (message.FromOwned)
// instead of copying Data out.
func (d Dgram) Owner() interface{ Release() } { return d.buf }

// TryReadDgrams pops up to len(dst) queued packets without blocking or
// copying, returning how many it filled — the recvmmsg-shaped
// counterpart to WriteToBatch: a reader woken by one packet drains
// whatever else has already arrived with one lock round and one
// reservation update for the burst, not one per packet.
func (p *PacketConn) TryReadDgrams(dst []Dgram) int {
	n := 0
	p.mu.Lock()
	for n < len(dst) && len(p.pending) > 0 {
		pkt := p.pending[0]
		p.pending = p.pending[1:]
		dst[n] = Dgram{Data: pkt.data, From: pkt.from, buf: pkt.buf}
		n++
	}
	for n < len(dst) {
		var batch []dgram
		select {
		case batch = <-p.inbox:
		default:
		}
		if batch == nil {
			break
		}
		for i, pkt := range batch {
			if n == len(dst) {
				p.pending = append(p.pending, batch[i:]...)
				break
			}
			dst[n] = Dgram{Data: pkt.data, From: pkt.from, buf: pkt.buf}
			n++
		}
	}
	p.mu.Unlock()
	if n > 0 {
		p.queued.Add(-int64(n))
	}
	return n
}

// TryReadFrom pops one queued packet with a copy out to the caller's
// buffer, for readers that keep the packet past their next read.
func (p *PacketConn) TryReadFrom(b []byte) (int, net.Addr, bool) {
	var one [1]Dgram
	if p.TryReadDgrams(one[:]) == 0 {
		return 0, nil, false
	}
	d := one[0]
	n := copy(b, d.Data)
	d.Release()
	return n, d.From, true
}

// consume copies one packet out to the caller and retires it: the
// inbox reservation is returned and the packet's buffer reference
// dropped (the copy makes the caller's view independent of the pool).
func (p *PacketConn) consume(pkt dgram, b []byte) (int, net.Addr) {
	n := copy(b, pkt.data)
	p.queued.Add(-1)
	pkt.buf.release(1)
	return n, pkt.from
}

// stashRest queues the unread tail of a batch for the next read and
// returns the head packet.
func (p *PacketConn) stashRest(batch []dgram) dgram {
	pkt := batch[0]
	if rest := batch[1:]; len(rest) > 0 {
		p.mu.Lock()
		p.pending = append(p.pending, rest...)
		p.mu.Unlock()
	}
	return pkt
}

// ReadFrom waits for the next packet, honoring the read deadline. A
// packet larger than b is truncated, per datagram socket semantics.
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	p.mu.Lock()
	if len(p.pending) > 0 {
		pkt := p.pending[0]
		p.pending = p.pending[1:]
		p.mu.Unlock()
		n, from := p.consume(pkt, b)
		return n, from, nil
	}
	dl := p.readDeadline
	p.mu.Unlock()
	var timeout <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, nil, errTimeout{}
		}
		tm := time.NewTimer(d)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case batch := <-p.inbox:
		pkt := p.stashRest(batch)
		n, from := p.consume(pkt, b)
		return n, from, nil
	case <-p.done:
		return 0, nil, net.ErrClosed
	case <-timeout:
		return 0, nil, errTimeout{}
	}
}

// Close unbinds the endpoint; queued packets are discarded.
func (p *PacketConn) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.net.removePacket(p.local, p)
	})
	return nil
}

// DropsFull reports packets discarded at this endpoint's full inbox.
func (p *PacketConn) DropsFull() int64 {
	return p.dropsFull.Load()
}

// LocalAddr reports the bound virtual address.
func (p *PacketConn) LocalAddr() net.Addr { return p.localA }

// SetDeadline sets the read deadline; datagram writes never block, so
// the write half is a no-op.
func (p *PacketConn) SetDeadline(t time.Time) error { return p.SetReadDeadline(t) }

// SetReadDeadline sets the read deadline.
func (p *PacketConn) SetReadDeadline(t time.Time) error {
	p.mu.Lock()
	p.readDeadline = t
	p.mu.Unlock()
	return nil
}

// SetWriteDeadline is a no-op: datagram writes never block.
func (p *PacketConn) SetWriteDeadline(time.Time) error { return nil }

func (n *Network) removePacket(address string, p *PacketConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.packets[address] == p {
		delete(n.packets, address)
	}
}
