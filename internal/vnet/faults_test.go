package vnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pairFrom establishes a connection with fixed addresses on both ends, the
// way engines dial (DialFrom with their node identity).
func pairFrom(t *testing.T, n *Network, local, remote string) (client, server net.Conn) {
	t.Helper()
	accepted := make(chan net.Conn, 1)
	if _, ok := n.listeners[remote]; !ok {
		l, err := n.Listen(remote)
		if err != nil {
			t.Fatalf("Listen(%s): %v", remote, err)
		}
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				accepted <- c
			}
		}()
	} else {
		t.Fatalf("pairFrom: %s already has a listener owned by another pair", remote)
	}
	client, err := n.DialFrom(local, remote)
	if err != nil {
		t.Fatalf("DialFrom(%s, %s): %v", local, remote, err)
	}
	select {
	case server = <-accepted:
	case <-time.After(time.Second):
		t.Fatal("Accept timed out")
	}
	return client, server
}

func TestCutBreaksConnsAndBlocksDials(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b = "10.0.0.1:7000", "10.0.0.2:7000"
	client, server := pairFrom(t, n, a, b)

	if got := n.Cut(a, b); got != 1 {
		t.Fatalf("Cut broke %d conns, want 1", got)
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write on cut link succeeded")
	}
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Error("read on cut link succeeded")
	}
	// Dials are refused in both directions while the cut holds.
	if _, err := n.DialFrom(a, b); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("DialFrom(a,b) after cut: %v, want refused", err)
	}
	// b dialing a fails too (a has no listener, but the cut check fires
	// first and reports the fault).
	if _, err := n.DialFrom(b, a); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("DialFrom(b,a) after cut: %v, want refused", err)
	}

	n.Heal()
	if _, err := n.DialFrom(a, b); err != nil {
		t.Errorf("DialFrom after Heal: %v", err)
	}
}

func TestPartitionBlocksOnlyCrossGroupTraffic(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b, c, obs = "10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.255.0.1:9000"
	ab1, ab2 := pairFrom(t, n, a, b) // same side of the partition
	ac1, _ := pairFrom(t, n, a, c)   // will cross the partition
	if _, err := n.Listen(obs); err != nil {
		t.Fatal(err)
	}

	broken := n.Partition([]string{a, b}, []string{c})
	if broken != 1 {
		t.Fatalf("Partition broke %d conns, want 1 (only a<->c)", broken)
	}
	if _, err := ac1.Write([]byte("x")); err == nil {
		t.Error("cross-partition conn still writable")
	}
	// Same-group traffic is untouched.
	go ab1.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(ab2, buf); err != nil {
		t.Errorf("same-group read: %v", err)
	}
	if _, err := n.DialFrom(a, c); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("cross-partition dial: %v, want refused", err)
	}
	// Unlisted addresses (the observer) remain reachable from every group.
	if _, err := n.DialFrom(a, obs); err != nil {
		t.Errorf("listed->unlisted dial: %v", err)
	}
	if _, err := n.DialFrom(c, obs); err != nil {
		t.Errorf("listed->unlisted dial from other group: %v", err)
	}

	n.Heal()
	if _, err := n.DialFrom(a, c); err != nil {
		t.Errorf("cross-partition dial after Heal: %v", err)
	}
}

func TestFlakyStallHidesBytesWithoutClosing(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b = "10.0.0.1:7000", "10.0.0.2:7000"
	client, server := pairFrom(t, n, a, b)

	const stall = 300 * time.Millisecond
	start := time.Now()
	n.Flaky(a, b, 0, stall)
	if _, err := client.Write([]byte("delayed")); err != nil {
		t.Fatalf("write during stall: %v", err)
	}
	// Nothing is readable while the stall holds.
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Read(make([]byte, 8)); err == nil {
		t.Fatal("read returned data during stall window")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read during stall: %v, want timeout (link must stay open)", err)
	}
	// After the window the bytes land intact.
	server.SetReadDeadline(time.Time{})
	buf := make([]byte, 7)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read after stall: %v", err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("bytes arrived %v after stall start, want >= %v", elapsed, stall)
	}
	if string(buf) != "delayed" {
		t.Errorf("got %q, want %q", buf, "delayed")
	}
}

func TestFlakyDropBlackHolesWholeFrames(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b = "10.0.0.1:7000", "10.0.0.2:7000"
	client, server := pairFrom(t, n, a, b)

	n.Flaky(a, b, 1.0, 0) // every frame lost
	if k, err := client.Write([]byte("gone")); err != nil || k != 4 {
		t.Fatalf("write on lossy link: n=%d err=%v, want silent success", k, err)
	}
	n.Heal()
	go client.Write([]byte("kept"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	// The dropped frame must not resurface ahead of the healthy one.
	if string(buf) != "kept" {
		t.Errorf("got %q, want %q (dropped frame leaked)", buf, "kept")
	}
}

func TestFlakyAppliesToNewConnections(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b = "10.0.0.1:7000", "10.0.0.2:7000"
	n.Flaky(a, b, 1.0, 0)
	client, server := pairFrom(t, n, a, b)
	if _, err := client.Write([]byte("gone")); err != nil {
		t.Fatalf("write: %v", err)
	}
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Read(make([]byte, 4)); err == nil {
		t.Error("frame on pre-declared flaky link was delivered")
	}
}

func TestSeededDropsReplayDeterministically(t *testing.T) {
	pattern := func(seed int64) []bool {
		n := New(WithSeed(seed))
		defer n.Close()
		const a, b = "10.0.0.1:7000", "10.0.0.2:7000"
		client, server := pairFrom(t, n, a, b)
		n.Flaky(a, b, 0.5, 0)
		var got []bool
		for i := 0; i < 32; i++ {
			client.Write([]byte{byte(i)})
			server.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			buf := make([]byte, 1)
			_, err := io.ReadFull(server, buf)
			got = append(got, err == nil)
		}
		return got
	}
	first, second := pattern(42), pattern(42)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("frame %d: delivery differs between identically seeded runs", i)
		}
	}
}

func TestCrashNodeRefusesDialsUntilRestart(t *testing.T) {
	n := New()
	defer n.Close()
	const a, b, c = "10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"
	clientAB, _ := pairFrom(t, n, a, b)
	if _, err := n.Listen(c); err != nil {
		t.Fatal(err)
	}

	if got := n.CrashNode(b); got != 1 {
		t.Fatalf("CrashNode broke %d conns, want 1", got)
	}
	if _, err := clientAB.Write([]byte("x")); err == nil {
		t.Error("write to crashed node succeeded")
	}
	if _, err := n.DialFrom(a, b); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("dial to crashed node: %v, want refused", err)
	}
	if _, err := n.DialFrom(b, c); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("dial from crashed node: %v, want refused", err)
	}

	// Listening again is the restart: the crash marker clears.
	if _, err := n.Listen(b); err != nil {
		t.Fatalf("re-Listen after crash: %v", err)
	}
	if _, err := n.DialFrom(a, b); err != nil {
		t.Errorf("dial after restart: %v", err)
	}
}
