package vnet

import "time"

// Fault injection: the chaos layer of the virtual network. All faults
// surface to the applications above exactly the way real network trouble
// does — cut and crashed links fail with the same abrupt error path a TCP
// RST takes, while flaky links stay open but stall or silently lose
// frames, which is precisely the failure mode the engine's traffic
// inactivity detector exists to catch.

// pairKey identifies an unordered address pair.
type pairKey struct{ a, b string }

func pairOf(a, b string) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

// flakySpec is the fault profile of one link: each whole frame written is
// black-holed with probability dropProb, and no bytes are readable before
// stallUntil.
type flakySpec struct {
	dropProb   float64
	stallUntil time.Time
}

// Cut severs every established connection between the two addresses and
// blocks future dials in either direction until the cut is healed.
// Existing connections fail abruptly (reads and writes error, in-flight
// bytes lost), the same path a real socket death takes. It reports how
// many connections were broken.
func (n *Network) Cut(a, b string) int {
	n.mu.Lock()
	n.cuts[pairOf(a, b)] = struct{}{}
	n.mu.Unlock()
	// Sever counts endpoints; report logical connections.
	return n.Sever(a, b) / 2
}

// Partition splits the network: an address listed in a group may only
// talk to members of the same group until Heal. Connections crossing
// group boundaries are broken abruptly and cross-group dials are refused.
// Addresses not listed in any group are unaffected and remain reachable
// from every group (an observer can ride out a data-plane partition this
// way). It reports how many connections were broken.
func (n *Network) Partition(groups ...[]string) int {
	n.mu.Lock()
	n.groups = make(map[string]int)
	for gi, g := range groups {
		for _, a := range g {
			n.groups[a] = gi
		}
	}
	seen := make(map[*Conn]struct{})
	var victims []*Conn
	for c := range n.conns {
		if _, dup := seen[c.peer]; dup {
			continue // one endpoint per logical connection suffices
		}
		if n.crossGroupLocked(c.local.String(), c.remote.String()) {
			victims = append(victims, c)
			seen[c] = struct{}{}
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.breakConn()
	}
	return len(victims)
}

// Flaky makes the link between a and b lossy without closing it: each
// whole frame written is black-holed with probability dropProb, and for
// stall > 0 the link additionally delivers nothing until the stall window
// (measured from now) passes — writers fill the pipe buffer and then
// block under ordinary back-pressure, readers see a silent link. The spec
// applies to existing connections between the pair and to ones dialed
// later, until Heal. It reports how many existing connections were
// affected.
func (n *Network) Flaky(a, b string, dropProb float64, stall time.Duration) int {
	var stallUntil time.Time
	if stall > 0 {
		stallUntil = time.Now().Add(stall)
	}
	key := pairOf(a, b)
	n.mu.Lock()
	n.flaky[key] = flakySpec{dropProb: dropProb, stallUntil: stallUntil}
	seen := make(map[*Conn]struct{})
	var victims []*Conn
	for c := range n.conns {
		if _, dup := seen[c.peer]; dup {
			continue // rd+wr of one endpoint cover both directions
		}
		if pairOf(c.local.String(), c.remote.String()) == key {
			victims = append(victims, c)
			seen[c] = struct{}{}
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.rd.setFault(n.dropFnFor(dropProb), stallUntil)
		c.wr.setFault(n.dropFnFor(dropProb), stallUntil)
	}
	return len(victims)
}

// CrashNode kills the node at address: every pipe touching it breaks at
// once, its listener is removed, and dials to or from the address are
// refused until the node listens again (restart) or Heal is called. It
// reports how many connections were broken.
func (n *Network) CrashNode(address string) int {
	n.mu.Lock()
	n.crashed[address] = struct{}{}
	n.mu.Unlock()
	// SeverNode counts endpoints; report logical connections.
	return n.SeverNode(address) / 2
}

// Heal lifts every injected fault: cuts, partitions, flaky specs, and
// crash markers. Connections already broken stay dead — recovery is the
// overlay's job, the network only stops misbehaving.
func (n *Network) Heal() {
	n.mu.Lock()
	n.cuts = make(map[pairKey]struct{})
	n.flaky = make(map[pairKey]flakySpec)
	n.groups = nil
	n.crashed = make(map[string]struct{})
	n.dgram = make(map[pairKey]dgramSpec)
	held := n.dgramHeld
	n.dgramHeld = make(map[pairKey]*heldDgram)
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, h := range held {
		// Release, don't drop: a healed link stops misbehaving, and the
		// held packet was delayed, not lost.
		h.timer.Stop()
		h.to.deliverBatch([]dgram{h.pkt})
	}
	for _, c := range conns {
		c.rd.setFault(nil, time.Time{})
		c.wr.setFault(nil, time.Time{})
	}
}

// blockedLocked reports whether a dial between the two addresses is
// refused by an active fault. Callers hold n.mu.
func (n *Network) blockedLocked(a, b string) bool {
	if _, ok := n.crashed[a]; ok {
		return true
	}
	if _, ok := n.crashed[b]; ok {
		return true
	}
	if _, ok := n.cuts[pairOf(a, b)]; ok {
		return true
	}
	return n.crossGroupLocked(a, b)
}

func (n *Network) crossGroupLocked(a, b string) bool {
	if n.groups == nil {
		return false
	}
	ga, oka := n.groups[a]
	gb, okb := n.groups[b]
	return oka && okb && ga != gb
}

// dropFnFor builds a per-frame drop decider backed by the network's
// seeded random source, or nil when the probability is zero.
func (n *Network) dropFnFor(prob float64) func(int) bool {
	if prob <= 0 {
		return nil
	}
	return func(int) bool {
		n.rngMu.Lock()
		v := n.rng.Float64()
		n.rngMu.Unlock()
		return v < prob
	}
}
