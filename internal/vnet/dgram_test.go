package vnet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func mustListenPacket(t *testing.T, n *Network, address string) net.PacketConn {
	t.Helper()
	p, err := n.ListenPacket(address)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// drainPackets reads until the endpoint stays silent for the grace
// window, returning every payload in arrival order.
func drainPackets(t *testing.T, p net.PacketConn, grace time.Duration) []string {
	t.Helper()
	var got []string
	buf := make([]byte, 2048)
	for {
		p.SetReadDeadline(time.Now().Add(grace))
		n, _, err := p.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return got
			}
			t.Fatal(err)
		}
		got = append(got, string(buf[:n]))
	}
}

// TestDgramRoundTrip sends packets both ways and checks payloads and
// source attribution.
func TestDgramRoundTrip(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")

	if _, err := a.WriteTo([]byte("ping"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "ping" || from.String() != "10.0.0.1:7000" {
		t.Fatalf("got %q from %v", buf[:nr], from)
	}
	if _, err := b.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	nr, from, err = a.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "pong" || from.String() != "10.0.0.2:7000" {
		t.Fatalf("reply: %q from %v err %v", buf[:nr], from, err)
	}
}

// TestDgramReadDeadline: an expired deadline fails immediately with a
// net.Error whose Timeout() is true; a future deadline bounds the wait.
func TestDgramReadDeadline(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	buf := make([]byte, 16)

	a.SetReadDeadline(time.Now().Add(-time.Second))
	if _, _, err := a.ReadFrom(buf); err == nil {
		t.Fatal("read past deadline succeeded")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("deadline error %v is not a net timeout", err)
		}
	}

	a.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	if _, _, err := a.ReadFrom(buf); err == nil {
		t.Fatal("read on silent endpoint succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline read blocked %v", elapsed)
	}
}

// TestDgramBlackHole: writes to unbound, cut, partitioned, and crashed
// destinations all succeed and deliver nothing — datagram sockets do
// not learn about unreachable peers.
func TestDgramBlackHole(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")

	if _, err := a.WriteTo([]byte("x"), addr("10.9.9.9:1")); err != nil {
		t.Fatalf("write to unbound address: %v", err)
	}

	n.Cut("10.0.0.1:7000", "10.0.0.2:7000")
	if _, err := a.WriteTo([]byte("cut"), addr("10.0.0.2:7000")); err != nil {
		t.Fatalf("write across cut: %v", err)
	}
	n.Heal()

	n.Partition([]string{"10.0.0.1:7000"}, []string{"10.0.0.2:7000"})
	if _, err := a.WriteTo([]byte("part"), addr("10.0.0.2:7000")); err != nil {
		t.Fatalf("write across partition: %v", err)
	}
	n.Heal()

	// After healing, delivery resumes on the same endpoints.
	if _, err := a.WriteTo([]byte("healed"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	if got := drainPackets(t, b, 50*time.Millisecond); len(got) != 1 || got[0] != "healed" {
		t.Fatalf("after heal got %q, want only the healed packet", got)
	}
}

// TestDgramCrashAndRebind: CrashNode closes the endpoint; writes toward
// a crashed address vanish; rebinding restarts it.
func TestDgramCrashAndRebind(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")

	n.CrashNode("10.0.0.2:7000")
	buf := make([]byte, 16)
	if _, _, err := b.ReadFrom(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read on crashed endpoint: %v, want net.ErrClosed", err)
	}
	if _, err := a.WriteTo([]byte("gone"), addr("10.0.0.2:7000")); err != nil {
		t.Fatalf("write toward crashed node: %v", err)
	}

	b2 := mustListenPacket(t, n, "10.0.0.2:7000") // restart
	if _, err := a.WriteTo([]byte("back"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	if got := drainPackets(t, b2, 50*time.Millisecond); len(got) != 1 || got[0] != "back" {
		t.Fatalf("after rebind got %q", got)
	}
	_ = a
}

// TestDgramFaultMatrix sweeps the seeded drop and duplicate faults and
// checks delivery counts land near the configured probabilities.
func TestDgramFaultMatrix(t *testing.T) {
	cases := []struct {
		name      string
		drop, dup float64
		sent      int
		lo, hi    int // acceptable delivered range
	}{
		{"clean", 0, 0, 400, 400, 400},
		{"drop-half", 0.5, 0, 400, 140, 260},
		{"drop-light", 0.01, 0, 400, 380, 400},
		{"dup-all", 0, 1.0, 200, 400, 400},
		{"drop-and-dup", 0.25, 0.25, 400, 280, 480},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New(WithSeed(7))
			defer n.Close()
			a := mustListenPacket(t, n, "10.0.0.1:7000")
			b := mustListenPacket(t, n, "10.0.0.2:7000")
			n.DgramFaults("10.0.0.1:7000", "10.0.0.2:7000", tc.drop, tc.dup, 0)

			recvd := make(chan int, 1)
			go func() {
				recvd <- len(drainPackets(t, b, 100*time.Millisecond))
			}()
			for i := 0; i < tc.sent; i++ {
				if _, err := a.WriteTo([]byte(fmt.Sprintf("p%04d", i)), addr("10.0.0.2:7000")); err != nil {
					t.Error(err)
					return
				}
			}
			got := <-recvd
			if got < tc.lo || got > tc.hi {
				t.Fatalf("delivered %d of %d sent (drop=%.2f dup=%.2f), want [%d, %d]",
					got, tc.sent, tc.drop, tc.dup, tc.lo, tc.hi)
			}
		})
	}
}

// TestDgramReorder: with reorder probability 1 consecutive packets swap
// pairwise — the held packet is released right after its successor.
func TestDgramReorder(t *testing.T) {
	n := New(WithSeed(3))
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")
	n.DgramFaults("10.0.0.1:7000", "10.0.0.2:7000", 0, 0, 1.0)

	for _, payload := range []string{"first", "second"} {
		if _, err := a.WriteTo([]byte(payload), addr("10.0.0.2:7000")); err != nil {
			t.Fatal(err)
		}
	}
	got := drainPackets(t, b, 100*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2 (reorder must delay, never lose)", len(got))
	}
	if got[0] != "second" || got[1] != "first" {
		t.Fatalf("arrival order %v, want [second first]", got)
	}
}

// TestDgramReorderTimerFlush: a held packet with no successor is
// released by the flush timer, so reorder alone never strands traffic.
func TestDgramReorderTimerFlush(t *testing.T) {
	n := New(WithSeed(3))
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")
	n.DgramFaults("10.0.0.1:7000", "10.0.0.2:7000", 0, 0, 1.0)

	if _, err := a.WriteTo([]byte("lone"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	nr, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "lone" {
		t.Fatalf("held packet never flushed: %q err %v", buf[:nr], err)
	}
}

// TestDgramHealReleasesHeld: Heal delivers (not drops) a packet the
// reorder fault was holding.
func TestDgramHealReleasesHeld(t *testing.T) {
	n := New(WithSeed(3))
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")
	n.DgramFaults("10.0.0.1:7000", "10.0.0.2:7000", 0, 0, 1.0)

	if _, err := a.WriteTo([]byte("held"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	if got := drainPackets(t, b, 100*time.Millisecond); len(got) != 1 || got[0] != "held" {
		t.Fatalf("after heal got %q, want the held packet", got)
	}
}

// TestDgramInboxOverflow: arrivals past the inbox bound are dropped and
// counted; earlier packets are unaffected.
func TestDgramInboxOverflow(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")

	total := DefaultDgramInbox + 50
	for i := 0; i < total; i++ {
		if _, err := a.WriteTo([]byte("x"), addr("10.0.0.2:7000")); err != nil {
			t.Fatal(err)
		}
	}
	got := drainPackets(t, b, 50*time.Millisecond)
	if len(got) != DefaultDgramInbox {
		t.Fatalf("delivered %d, want exactly the inbox bound %d", len(got), DefaultDgramInbox)
	}
	if d := b.(*PacketConn).DropsFull(); d != 50 {
		t.Fatalf("counted %d overflow drops, want 50", d)
	}
}

// TestDgramTruncation: a packet larger than the read buffer is cut to
// fit, not errored.
func TestDgramTruncation(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")
	if _, err := a.WriteTo([]byte("0123456789"), addr("10.0.0.2:7000")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	b.SetReadDeadline(time.Now().Add(time.Second))
	nr, _, err := b.ReadFrom(buf)
	if err != nil || nr != 4 || string(buf[:nr]) != "0123" {
		t.Fatalf("truncated read: n=%d %q err=%v", nr, buf[:nr], err)
	}
}

// TestDgramBindConflicts: double-binding an address fails; a stream
// listener and a datagram endpoint share an address fine (separate
// namespaces, like TCP and UDP ports).
func TestDgramBindConflicts(t *testing.T) {
	n := New()
	defer n.Close()
	mustListenPacket(t, n, "10.0.0.1:7000")
	if _, err := n.ListenPacket("10.0.0.1:7000"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double bind: %v, want ErrAddrInUse", err)
	}
	if _, err := n.Listen("10.0.0.1:7000"); err != nil {
		t.Fatalf("stream listener on the datagram address: %v", err)
	}
}

// TestDgramClosedEndpoint: writes and reads on a closed endpoint fail
// with net.ErrClosed; writing to a closed destination is a black hole.
func TestDgramClosedEndpoint(t *testing.T) {
	n := New()
	defer n.Close()
	a := mustListenPacket(t, n, "10.0.0.1:7000")
	b := mustListenPacket(t, n, "10.0.0.2:7000")
	b.Close()
	if _, err := a.WriteTo([]byte("x"), addr("10.0.0.2:7000")); err != nil {
		t.Fatalf("write to closed destination: %v", err)
	}
	a.Close()
	if _, err := a.WriteTo([]byte("x"), addr("10.0.0.2:7000")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write on closed endpoint: %v", err)
	}
	buf := make([]byte, 8)
	if _, _, err := a.ReadFrom(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read on closed endpoint: %v", err)
	}
	// The address is free again.
	mustListenPacket(t, n, "10.0.0.1:7000")
}
