package vnet

import (
	"errors"
	"io"
	"sync"
	"time"
)

// errTimeout satisfies net.Error for deadline expiry.
type errTimeout struct{}

func (errTimeout) Error() string   { return "vnet: i/o timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// ErrPipeClosed is returned by operations on a closed pipe endpoint.
var ErrPipeClosed = errors.New("vnet: pipe closed")

// pipe is a bounded, single-direction byte stream between two endpoints of
// a virtual connection. Its bounded buffer is what yields TCP-like
// back-pressure: writers block when the reader side falls behind, exactly
// the property the paper's engine relies on for the back-pressure effect
// of small buffers.
// watermark records that all bytes up to total become readable at `at`,
// implementing one-way propagation latency.
type watermark struct {
	total int64
	at    time.Time
}

type pipe struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	// Waiter counts gate every condvar broadcast: the data path signals a
	// pipe far more often than anyone sleeps on it, and an ungated
	// Broadcast per transfer thrashes futexes. A waiter increments its
	// count under mu before sleeping, so gated wakeups can never be lost.
	readWaiters  int
	writeWaiters int

	buf    []byte
	head   int
	length int

	// latency, when positive, delays the visibility of written bytes.
	latency      time.Duration
	totalWritten int64
	totalRead    int64
	marks        []watermark

	readDeadline  time.Time
	writeDeadline time.Time

	// Fault injection (Network.Flaky). dropFn, when set, decides per
	// Write call (and per buffer in writeBuffers) whether that frame is
	// silently black-holed; callers must therefore write whole frames per
	// call, which the engine's data path does. stallUntil, when in the
	// future, hides buffered bytes from the reader without closing the
	// pipe — the link looks alive but idle, exactly the case the engine's
	// inactivity detector exists for.
	dropFn     func(n int) bool
	stallUntil time.Time

	writeClosed bool // no more writes; reads drain then EOF
	broken      bool // hard failure: reads and writes error immediately
}

func newPipe(capacity int, latency time.Duration) *pipe {
	p := &pipe{buf: make([]byte, capacity), latency: latency}
	p.notFull = sync.NewCond(&p.mu)
	p.notEmpty = sync.NewCond(&p.mu)
	return p
}

// arrivedLocked reports how many buffered bytes have propagated (their
// latency elapsed) and, when some have not, when the next batch lands.
func (p *pipe) arrivedLocked(now time.Time) (avail int, next time.Time) {
	if p.latency <= 0 {
		return p.length, time.Time{}
	}
	arrived := p.totalRead // at least everything already consumed
	for _, m := range p.marks {
		if m.at.After(now) {
			next = m.at
			break
		}
		arrived = m.total
	}
	// Drop fully-consumed watermarks.
	for len(p.marks) > 0 && p.marks[0].total <= p.totalRead {
		p.marks = p.marks[1:]
	}
	a := arrived - p.totalRead
	if a < 0 {
		a = 0
	}
	if int(a) > p.length {
		return p.length, next
	}
	return int(a), next
}

// wakeReadersLocked wakes blocked readers, if any.
func (p *pipe) wakeReadersLocked() {
	if p.readWaiters > 0 {
		p.notEmpty.Broadcast()
	}
}

// wakeWritersLocked wakes blocked writers, if any.
func (p *pipe) wakeWritersLocked() {
	if p.writeWaiters > 0 {
		p.notFull.Broadcast()
	}
}

// waitNotEmptyLocked sleeps on notEmpty with the waiter count maintained.
func (p *pipe) waitNotEmptyLocked() {
	p.readWaiters++
	p.notEmpty.Wait()
	p.readWaiters--
}

// waitNotFullLocked sleeps on notFull with the waiter count maintained.
func (p *pipe) waitNotFullLocked() {
	p.writeWaiters++
	p.notFull.Wait()
	p.writeWaiters--
}

// deadlineTimer arranges a broadcast wake-up at deadline so blocked
// readers/writers can observe expiry. Returns a stop function.
func (p *pipe) deadlineTimer(deadline time.Time) func() {
	if deadline.IsZero() {
		return func() {}
	}
	d := time.Until(deadline)
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.wakeWritersLocked()
		p.wakeReadersLocked()
	})
	return func() { t.Stop() }
}

func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	stop := p.deadlineTimer(p.writeDeadline)
	defer stop()
	defer p.mu.Unlock()

	if p.dropFn != nil && !p.broken && !p.writeClosed && p.dropFn(len(b)) {
		// Black-holed: report success without buffering, like a lossy
		// link that ate the frame. Never blocks, so a dropping link
		// exerts no back-pressure for the frames it loses.
		return len(b), nil
	}
	written := 0
	for len(b) > 0 {
		for p.length == len(p.buf) && !p.writeClosed && !p.broken && !expired(p.writeDeadline) {
			p.waitNotFullLocked()
		}
		if p.broken || p.writeClosed {
			return written, ErrPipeClosed
		}
		if expired(p.writeDeadline) {
			return written, errTimeout{}
		}
		n := p.copyIn(b)
		b = b[n:]
		written += n
		p.totalWritten += int64(n)
		if p.latency > 0 {
			p.marks = append(p.marks, watermark{
				total: p.totalWritten,
				at:    time.Now().Add(p.latency),
			})
		}
		p.wakeReadersLocked()
	}
	return written, nil
}

// writeBuffers appends the concatenation of bufs, blocking while full
// exactly like sequential Writes but under a single lock acquisition —
// the vectored fast path that lets a sender flush a whole message batch
// in one pipe operation.
func (p *pipe) writeBuffers(bufs [][]byte) (int64, error) {
	p.mu.Lock()
	stop := p.deadlineTimer(p.writeDeadline)
	defer stop()
	defer p.mu.Unlock()

	var written int64
	for _, b := range bufs {
		if p.dropFn != nil && !p.broken && !p.writeClosed && p.dropFn(len(b)) {
			// Each buffer is one complete wire image on the engine's
			// batch path, so per-buffer drops preserve framing.
			written += int64(len(b))
			continue
		}
		for len(b) > 0 {
			for p.length == len(p.buf) && !p.writeClosed && !p.broken && !expired(p.writeDeadline) {
				p.waitNotFullLocked()
			}
			if p.broken || p.writeClosed {
				return written, ErrPipeClosed
			}
			if expired(p.writeDeadline) {
				return written, errTimeout{}
			}
			n := p.copyIn(b)
			b = b[n:]
			written += int64(n)
			p.totalWritten += int64(n)
			if p.latency > 0 {
				p.marks = append(p.marks, watermark{
					total: p.totalWritten,
					at:    time.Now().Add(p.latency),
				})
			}
			p.wakeReadersLocked()
		}
	}
	return written, nil
}

func (p *pipe) copyIn(b []byte) int {
	free := len(p.buf) - p.length
	n := len(b)
	if n > free {
		n = free
	}
	tail := (p.head + p.length) % len(p.buf)
	first := copy(p.buf[tail:], b[:n])
	if first < n {
		copy(p.buf, b[first:n])
	}
	p.length += n
	return n
}

func (p *pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	stop := p.deadlineTimer(p.readDeadline)
	defer stop()
	defer p.mu.Unlock()

	for {
		if p.broken {
			return 0, ErrPipeClosed
		}
		avail, next := p.length, time.Time{}
		if p.latency > 0 { // zero-latency pipes skip the clock entirely
			avail, next = p.arrivedLocked(time.Now())
		}
		if !p.stallUntil.IsZero() {
			if now := time.Now(); now.Before(p.stallUntil) {
				// Stalled link: bytes are buffered but none are
				// readable until the stall window passes.
				avail = 0
				if next.IsZero() || p.stallUntil.Before(next) {
					next = p.stallUntil
				}
			} else {
				p.stallUntil = time.Time{}
			}
		}
		if avail > 0 {
			n := len(b)
			if n > avail {
				n = avail
			}
			first := copy(b[:n], p.buf[p.head:min(p.head+n, len(p.buf))])
			if first < n {
				copy(b[first:n], p.buf)
			}
			p.head = (p.head + n) % len(p.buf)
			p.length -= n
			p.totalRead += int64(n)
			p.wakeWritersLocked()
			return n, nil
		}
		if p.length == 0 && p.writeClosed {
			return 0, io.EOF
		}
		if expired(p.readDeadline) {
			return 0, errTimeout{}
		}
		if !next.IsZero() {
			// Bytes are in flight: wake when they land.
			t := time.AfterFunc(time.Until(next), func() {
				p.mu.Lock()
				p.wakeReadersLocked()
				p.mu.Unlock()
			})
			p.waitNotEmptyLocked()
			t.Stop()
		} else {
			p.waitNotEmptyLocked()
		}
	}
}

// closeWrite marks the writer side done: pending bytes remain readable and
// the reader then sees io.EOF. Used for graceful connection close.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeClosed = true
	p.wakeWritersLocked()
	p.wakeReadersLocked()
}

// breakPipe simulates an abrupt failure (node crash, severed link):
// buffered data is discarded and both ends error immediately.
func (p *pipe) breakPipe() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.broken = true
	p.length = 0
	p.wakeWritersLocked()
	p.wakeReadersLocked()
}

// setFault installs or clears (nil, zero) fault-injection state. Waking
// both sides lets a blocked reader re-evaluate a newly installed or
// lifted stall window immediately.
func (p *pipe) setFault(dropFn func(n int) bool, stallUntil time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropFn = dropFn
	p.stallUntil = stallUntil
	p.wakeReadersLocked()
	p.wakeWritersLocked()
}

func (p *pipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readDeadline = t
	p.wakeReadersLocked()
}

func (p *pipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeDeadline = t
	p.wakeWritersLocked()
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}
