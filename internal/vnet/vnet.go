// Package vnet implements an in-process virtual network whose connections
// satisfy net.Conn and net.Listener. It is the testbed substrate this
// reproduction substitutes for PlanetLab: each virtualized iOverlay node
// listens on a virtual address, dials peers, and experiences TCP-like
// back-pressure through bounded pipes. Links can be severed and latency
// can be attached per network for failure and QoS experiments.
package vnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// DefaultPipeCapacity is the per-direction socket buffer, mirroring a
// typical kernel TCP buffer. Small relative to experiment traffic so that
// back-pressure propagates promptly.
const DefaultPipeCapacity = 64 << 10

// Errors reported by the network.
var (
	ErrAddrInUse         = errors.New("vnet: address already in use")
	ErrConnectionRefused = errors.New("vnet: connection refused")
	ErrListenerClosed    = errors.New("vnet: listener closed")
	ErrNetworkDown       = errors.New("vnet: network closed")
	// ErrAcceptTransient is the injected transient Accept failure
	// (standing in for EMFILE/ECONNABORTED on a real socket): the accept
	// attempt failed but the listener itself is still healthy, so a
	// correct accept loop backs off and retries instead of exiting.
	ErrAcceptTransient = errors.New("vnet: transient accept error")
)

// Network is one virtual internet. Addresses are arbitrary "host:port"
// strings; the network hands out ephemeral local addresses to dialers.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	packets   map[string]*PacketConn
	conns     map[*Conn]struct{}
	latency   time.Duration
	latencyFn func(a, b string) time.Duration
	pipeCap   int
	nextEphem int
	closed    bool

	// Fault-injection state (faults.go). cuts and flaky are keyed by the
	// normalized address pair; groups maps an address to its partition
	// group; crashed marks addresses whose node is down.
	cuts      map[pairKey]struct{}
	flaky     map[pairKey]flakySpec
	groups    map[string]int
	crashed   map[string]struct{}
	dgram     map[pairKey]dgramSpec
	dgramHeld map[pairKey]*heldDgram

	// rng drives probabilistic faults (Flaky drops); seeded so chaos
	// schedules replay deterministically.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// Option configures a Network.
type Option func(*Network)

// WithLatency attaches a fixed one-way propagation latency to every
// connection: written bytes become readable at the far end only after d.
func WithLatency(d time.Duration) Option {
	return func(n *Network) { n.latency = d }
}

// WithLatencyFunc attaches per-pair one-way propagation latency, keyed by
// the two endpoint addresses (symmetric: the function is called with the
// dialer's address first). It overrides WithLatency.
func WithLatencyFunc(fn func(a, b string) time.Duration) Option {
	return func(n *Network) { n.latencyFn = fn }
}

// WithPipeCapacity overrides the per-direction buffer size.
func WithPipeCapacity(c int) Option {
	return func(n *Network) { n.pipeCap = c }
}

// WithSeed seeds the network's fault-injection random source so that
// probabilistic faults (Flaky drops) replay deterministically.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// New constructs an empty virtual network.
func New(opts ...Option) *Network {
	n := &Network{
		listeners: make(map[string]*Listener),
		packets:   make(map[string]*PacketConn),
		conns:     make(map[*Conn]struct{}),
		pipeCap:   DefaultPipeCapacity,
		nextEphem: 40000,
		cuts:      make(map[pairKey]struct{}),
		flaky:     make(map[pairKey]flakySpec),
		crashed:   make(map[string]struct{}),
		dgram:     make(map[pairKey]dgramSpec),
		dgramHeld: make(map[pairKey]*heldDgram),
		rng:       rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// addr is a net.Addr over the virtual address space.
type addr string

func (a addr) Network() string { return "vnet" }
func (a addr) String() string  { return string(a) }

// Listen binds a listener to address. The address must be free.
func (n *Network) Listen(address string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetworkDown
	}
	if _, ok := n.listeners[address]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, address)
	}
	// A crashed node that listens again has restarted.
	delete(n.crashed, address)
	l := &Listener{
		net:     n,
		address: address,
		backlog: make(chan *Conn, 512),
	}
	n.listeners[address] = l
	return l, nil
}

// Dial connects to a listening address, assigning an ephemeral local
// address.
func (n *Network) Dial(address string) (net.Conn, error) {
	n.mu.Lock()
	local := fmt.Sprintf("ephemeral:%d", n.nextEphem)
	n.nextEphem++
	n.mu.Unlock()
	return n.DialFrom(local, address)
}

// DialFrom connects to a listening address using the given local address;
// engines use their node identity so that peers can attribute traffic.
func (n *Network) DialFrom(local, address string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNetworkDown
	}
	if n.blockedLocked(local, address) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (link fault)", ErrConnectionRefused, address)
	}
	l, ok := n.listeners[address]
	latency := n.latency
	if n.latencyFn != nil {
		latency = n.latencyFn(local, address)
	}
	pipeCap := n.pipeCap
	spec, hasFlaky := n.flaky[pairOf(local, address)]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, address)
	}

	a2b := newPipe(pipeCap, latency)
	b2a := newPipe(pipeCap, latency)
	if hasFlaky {
		// New connections over a flaky link inherit its fault spec; the
		// pipes are still private here, so plain assignment is safe.
		drop := n.dropFnFor(spec.dropProb)
		a2b.dropFn, a2b.stallUntil = drop, spec.stallUntil
		b2a.dropFn, b2a.stallUntil = drop, spec.stallUntil
	}
	client := &Conn{net: n, local: addr(local), remote: addr(address), rd: b2a, wr: a2b}
	server := &Conn{net: n, local: addr(address), remote: addr(local), rd: a2b, wr: b2a}
	client.peer, server.peer = server, client

	l.mu.Lock()
	closed := l.closed
	if !closed {
		select {
		case l.backlog <- server:
		default:
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: %s backlog full", ErrConnectionRefused, address)
		}
	}
	l.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, address)
	}

	n.mu.Lock()
	n.conns[client] = struct{}{}
	n.conns[server] = struct{}{}
	n.mu.Unlock()
	return client, nil
}

// Sever abruptly breaks every established connection between the two
// addresses (matching by listener-side address), simulating a failed
// virtual link. It reports how many connections were broken.
func (n *Network) Sever(addrA, addrB string) int {
	n.mu.Lock()
	var victims []*Conn
	for c := range n.conns {
		la, ra := c.local.String(), c.remote.String()
		if (la == addrA && ra == addrB) || (la == addrB && ra == addrA) {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.breakConn()
	}
	return len(victims)
}

// SeverNode abruptly breaks every connection touching the address and
// removes its listener, simulating a node crash.
func (n *Network) SeverNode(address string) int {
	n.mu.Lock()
	var victims []*Conn
	for c := range n.conns {
		if c.local.String() == address || c.remote.String() == address {
			victims = append(victims, c)
		}
	}
	l := n.listeners[address]
	delete(n.listeners, address)
	p := n.packets[address]
	n.mu.Unlock()
	if l != nil {
		l.close(false)
	}
	if p != nil {
		p.Close()
	}
	for _, c := range victims {
		c.breakConn()
	}
	return len(victims)
}

// Close shuts the whole network down, breaking every connection.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	listeners := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	packets := make([]*PacketConn, 0, len(n.packets))
	for _, p := range n.packets {
		packets = append(packets, p)
	}
	n.listeners = map[string]*Listener{}
	n.mu.Unlock()

	for _, l := range listeners {
		l.close(false)
	}
	for _, p := range packets {
		p.Close()
	}
	for _, c := range conns {
		c.breakConn()
	}
}

func (n *Network) removeListener(address string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, address)
}

func (n *Network) removeConn(c *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, c)
}

// Listener accepts virtual connections.
type Listener struct {
	net     *Network
	address string
	backlog chan *Conn

	mu        sync.Mutex
	closed    bool
	failNext  int // pending injected transient Accept failures
	failTotal int // lifetime injected failures delivered
}

var _ net.Listener = (*Listener)(nil)

// Accept waits for the next inbound connection. Injected transient
// failures (InjectAcceptErrors) are delivered first, before blocking on
// the backlog, the way a real accept(2) surfaces EMFILE ahead of the
// queued connections it cannot yet take.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failNext > 0 {
		l.failNext--
		l.failTotal++
		l.mu.Unlock()
		return nil, ErrAcceptTransient
	}
	l.mu.Unlock()
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrListenerClosed
	}
	return c, nil
}

// InjectAcceptErrors arms the listener at address to fail its next count
// Accept calls with ErrAcceptTransient, reporting whether a listener was
// found. Connections queued meanwhile stay in the backlog and are
// delivered once the injected failures are consumed.
func (n *Network) InjectAcceptErrors(address string, count int) bool {
	n.mu.Lock()
	l, ok := n.listeners[address]
	n.mu.Unlock()
	if !ok {
		return false
	}
	l.mu.Lock()
	l.failNext += count
	l.mu.Unlock()
	return true
}

// AcceptErrorsDelivered reports how many injected transient failures the
// listener at address has surfaced so far.
func (n *Network) AcceptErrorsDelivered(address string) int {
	n.mu.Lock()
	l, ok := n.listeners[address]
	n.mu.Unlock()
	if !ok {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failTotal
}

// Close stops accepting; established connections are unaffected.
func (l *Listener) Close() error {
	l.close(true)
	return nil
}

func (l *Listener) close(unregister bool) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.backlog)
	l.mu.Unlock()
	if unregister {
		l.net.removeListener(l.address)
	}
	for c := range l.backlog {
		c.breakConn()
	}
}

// Addr reports the bound virtual address.
func (l *Listener) Addr() net.Addr { return addr(l.address) }

// Conn is one endpoint of a virtual connection.
type Conn struct {
	net    *Network
	local  addr
	remote addr
	rd     *pipe
	wr     *pipe
	peer   *Conn

	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Read reads from the inbound pipe.
func (c *Conn) Read(b []byte) (int, error) { return c.rd.Read(b) }

// Write writes to the outbound pipe, blocking under back-pressure.
func (c *Conn) Write(b []byte) (int, error) { return c.wr.Write(b) }

// WriteBuffers writes every buffer in order under a single pipe lock
// acquisition — the vectored-write (writev-like) fast path used by engine
// senders to flush a whole batch of wire images in one operation. It
// blocks under back-pressure exactly like sequential Writes.
func (c *Conn) WriteBuffers(bufs [][]byte) (int64, error) { return c.wr.writeBuffers(bufs) }

// Close gracefully closes the connection: the peer drains buffered bytes
// and then observes EOF, like a TCP FIN.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWrite()
		// The outgoing direction is a graceful FIN: bytes already
		// written stay deliverable to the peer. The incoming direction
		// is torn down hard: as with a real socket, a local Read after
		// Close fails immediately — even when a fault-injection stall
		// or undelivered buffered bytes would otherwise hold the reader
		// until the stall window passed (TCP resets on close with
		// unread data; it does not keep delivering).
		c.rd.breakPipe()
		c.net.removeConn(c)
		c.net.removeConn(c.peer)
	})
	return nil
}

// breakConn simulates an abrupt failure: both directions error at once and
// in-flight bytes are lost, like a TCP RST after a crash.
func (c *Conn) breakConn() {
	c.rd.breakPipe()
	c.wr.breakPipe()
	c.net.removeConn(c)
	c.net.removeConn(c.peer)
}

// LocalAddr reports the local virtual address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr reports the peer's virtual address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

// SetWriteDeadline sets the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}
