package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket math.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	for i := 0; i < 100; i++ {
		if d, _ := g.Admit("10.0.0.1"); d != Admitted {
			t.Fatalf("nil gate refused: %v", d)
		}
	}
	g.Release() // must not panic
	if st := g.Stats(); st != (Stats{}) {
		t.Fatalf("nil gate stats = %+v, want zero", st)
	}
}

// TestHandshakeTokensCapInFlight is the core tentpole property: no matter
// how many sources dial, at most MaxHandshakes admissions are in flight
// until tokens are released.
func TestHandshakeTokensCapInFlight(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{MaxHandshakes: 4, Now: clk.Now})
	for i := 0; i < 4; i++ {
		if d, _ := g.Admit(fmt.Sprintf("10.0.0.%d", i)); d != Admitted {
			t.Fatalf("admission %d refused: %v", i, d)
		}
	}
	d, hint := g.Admit("10.0.9.9")
	if d != ShedBusy {
		t.Fatalf("5th admission = %v, want ShedBusy", d)
	}
	if hint <= 0 {
		t.Fatalf("busy hint = %v, want > 0", hint)
	}
	if got := g.InFlight(); got != 4 {
		t.Fatalf("InFlight = %d, want 4", got)
	}
	g.Release()
	if d, _ := g.Admit("10.0.9.9"); d != Admitted {
		t.Fatalf("post-release admission = %v, want Admitted", d)
	}
	st := g.Stats()
	if st.Admitted != 5 || st.ShedBusy != 1 || st.InFlightPeak != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReleaseNeverUnderflows(t *testing.T) {
	g := New(Config{MaxHandshakes: 2})
	g.Release()
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after spurious releases = %d", got)
	}
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatalf("admission refused after spurious releases: %v", d)
	}
}

// TestSourceRateLimitAndRefill drains one source's burst and checks both
// the refusal and the token-accrual hint, then refills by advancing time.
func TestSourceRateLimitAndRefill(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		MaxHandshakes: 1000, SourceRate: 10, SourceBurst: 3,
		GreylistAfter: 100, Now: clk.Now,
	})
	for i := 0; i < 3; i++ {
		d, _ := g.Admit("10.0.0.1")
		if d != Admitted {
			t.Fatalf("burst admission %d = %v", i, d)
		}
		g.Release()
	}
	d, hint := g.Admit("10.0.0.1")
	if d != ShedRate {
		t.Fatalf("past-burst admission = %v, want ShedRate", d)
	}
	if hint <= 0 || hint > 100*time.Millisecond {
		t.Fatalf("rate hint = %v, want (0, 100ms] at 10/s", hint)
	}
	// Another source is unaffected.
	if d, _ := g.Admit("10.0.0.2"); d != Admitted {
		t.Fatalf("independent source refused: %v", d)
	}
	// A token accrues after 100ms at 10/s.
	clk.Advance(110 * time.Millisecond)
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatalf("post-refill admission = %v, want Admitted", d)
	}
}

// TestGreylistFlappingSource hammers one source until it greylists, then
// checks the greylist re-arms under continued hammering and expires only
// after the source goes quiet.
func TestGreylistFlappingSource(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		MaxHandshakes: 1000, SourceRate: 1, SourceBurst: 1,
		GreylistAfter: 3, GreylistFor: time.Second, Now: clk.Now,
	})
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatal("first admission refused")
	}
	g.Release()
	// Strikes 1, 2, then the 3rd refusal greylists.
	for i := 0; i < 2; i++ {
		if d, _ := g.Admit("10.0.0.1"); d != ShedRate {
			t.Fatalf("strike %d = %v, want ShedRate", i+1, d)
		}
	}
	if d, _ := g.Admit("10.0.0.1"); d != ShedGreylist {
		t.Fatalf("3rd strike = %v, want ShedGreylist", d)
	}
	// Continued hammering re-arms the entry: 900ms in, still greylisted,
	// and the window restarts from that touch.
	clk.Advance(900 * time.Millisecond)
	if d, _ := g.Admit("10.0.0.1"); d != ShedGreylist {
		t.Fatal("greylist expired early")
	}
	clk.Advance(900 * time.Millisecond)
	if d, _ := g.Admit("10.0.0.1"); d != ShedGreylist {
		t.Fatal("greylist did not re-arm under hammering")
	}
	// Quiet for the full window: admitted again (bucket refilled too).
	clk.Advance(1100 * time.Millisecond)
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatal("greylist did not expire after quiet period")
	}
	if st := g.Stats(); st.ShedGreylist != 3 {
		t.Fatalf("ShedGreylist = %d, want 3", st.ShedGreylist)
	}
}

// TestBusyRefusalCostsNoStrike: token exhaustion is the acceptor's
// condition, not the source's misbehavior, so it must not march a polite
// source toward the greylist.
func TestBusyRefusalCostsNoStrike(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		MaxHandshakes: 1, SourceRate: 1000, SourceBurst: 1000,
		GreylistAfter: 2, Now: clk.Now,
	})
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatal("first admission refused")
	}
	for i := 0; i < 10; i++ {
		if d, _ := g.Admit("10.0.0.2"); d != ShedBusy {
			t.Fatalf("refusal %d = %v, want ShedBusy", i, d)
		}
	}
	g.Release()
	if d, _ := g.Admit("10.0.0.2"); d != Admitted {
		t.Fatal("busy-refused source was struck out")
	}
}

func TestSourceTableEviction(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{MaxHandshakes: 1000, MaxSources: 4, Now: clk.Now})
	for i := 0; i < 8; i++ {
		clk.Advance(time.Millisecond)
		if d, _ := g.Admit(fmt.Sprintf("10.0.0.%d", i)); d != Admitted {
			t.Fatalf("admission %d refused", i)
		}
		g.Release()
	}
	st := g.Stats()
	if st.Sources != 4 {
		t.Fatalf("Sources = %d, want 4", st.Sources)
	}
	if st.Evicted != 4 {
		t.Fatalf("Evicted = %d, want 4", st.Evicted)
	}
}

// TestConcurrentAdmitRelease races admissions against releases and
// checks the token invariant holds throughout (run under -race).
func TestConcurrentAdmitRelease(t *testing.T) {
	g := New(Config{MaxHandshakes: 8, SourceRate: 1e9, SourceBurst: 1 << 20})
	var wg sync.WaitGroup
	var admitted, refused int64
	var mu sync.Mutex
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("10.0.1.%d", w)
			for i := 0; i < 500; i++ {
				d, _ := g.Admit(src)
				if d == Admitted {
					if n := g.InFlight(); n > 8 {
						t.Errorf("InFlight = %d > MaxHandshakes", n)
					}
					g.Release()
					mu.Lock()
					admitted++
					mu.Unlock()
				} else {
					mu.Lock()
					refused++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if admitted == 0 {
		t.Fatal("no admissions at all")
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d", got)
	}
	st := g.Stats()
	if st.Admitted != admitted || st.ShedBusy != refused {
		t.Fatalf("stats %+v disagree with observed admitted=%d refused=%d",
			st, admitted, refused)
	}
}

func TestDecisionStrings(t *testing.T) {
	for d, want := range map[Decision]string{
		Admitted: "admitted", ShedBusy: "shed-busy", ShedRate: "shed-rate",
		ShedGreylist: "shed-greylist", ShedWatermark: "shed-watermark",
		BadHello: "bad-hello", Timeout: "handshake-timeout",
		AcceptRetry: "accept-retry", Decision(99): "unknown",
	} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
}

// TestEvictionPrefersStalest pins the LRU direction of the source-table
// eviction: when the table is full, the entry with the oldest lastSeen
// goes — not an arbitrary one — and recently touched entries survive
// with their state intact. The evicted source's history (here, a live
// greylist) is forgotten with it, which is the documented cost of the
// bound.
func TestEvictionPrefersStalest(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		MaxHandshakes: 1000, SourceRate: 0.001, SourceBurst: 1,
		GreylistAfter: 1, GreylistFor: time.Hour, MaxSources: 3, Now: clk.Now,
	})
	// Burn B's only token, then strike it out: B is greylisted for an hour.
	if d, _ := g.Admit("B"); d != Admitted {
		t.Fatal("B's first admission refused")
	}
	g.Release()
	if d, _ := g.Admit("B"); d != ShedGreylist {
		t.Fatal("B's second admission should have greylisted it")
	}
	// A and C arrive later; the table is now at its bound of 3 and B holds
	// the oldest lastSeen.
	clk.Advance(time.Millisecond)
	g.Admit("A")
	g.Release()
	clk.Advance(time.Millisecond)
	g.Admit("C")
	g.Release()
	// D forces an eviction: B (stalest) must be the victim.
	clk.Advance(time.Millisecond)
	if d, _ := g.Admit("D"); d != Admitted {
		t.Fatal("D refused")
	}
	g.Release()
	st := g.Stats()
	if st.Sources != 3 {
		t.Fatalf("Sources = %d, want 3 (bound exceeded)", st.Sources)
	}
	if st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
	// A's entry survived: its burst token is spent, so unlike a fresh
	// source it is refused (and, at GreylistAfter 1, immediately
	// greylisted) rather than admitted.
	if d, _ := g.Admit("A"); d == Admitted {
		t.Fatal("A admitted: its entry was evicted despite being fresher than B")
	}
	// B is admitted immediately despite its hour-long greylist: eviction
	// erased the entry, proving B was the one dropped. (This re-inserts B,
	// evicting the then-stalest entry — checked after the assertions above.)
	if d, _ := g.Admit("B"); d != Admitted {
		t.Fatal("B still greylisted: the eviction hit a fresher entry instead")
	}
	g.Release()
}

// TestSourceBoundNeverExceeded hammers the gate with far more distinct
// sources than the table admits and checks the bound holds after every
// single arrival, with the overflow accounted in Evicted.
func TestSourceBoundNeverExceeded(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{MaxHandshakes: 1000, MaxSources: 4, Now: clk.Now})
	for i := 0; i < 100; i++ {
		clk.Advance(time.Millisecond)
		if d, _ := g.Admit(fmt.Sprintf("10.1.%d.%d", i/256, i%256)); d != Admitted {
			t.Fatalf("admission %d refused", i)
		}
		g.Release()
		if st := g.Stats(); st.Sources > 4 {
			t.Fatalf("after arrival %d: Sources = %d, bound of 4 exceeded", i, st.Sources)
		}
	}
	st := g.Stats()
	if st.Sources != 4 {
		t.Fatalf("Sources = %d, want 4", st.Sources)
	}
	if st.Evicted != 96 {
		t.Fatalf("Evicted = %d, want 96", st.Evicted)
	}
}

// TestGreylistExpiresExactlyAfterGreylistFor pins the window boundary: a
// greylisted source left quiet is shed strictly inside the window and
// admitted at exactly GreylistFor — the greylist is a timed penalty, not
// a permanent ban.
func TestGreylistExpiresExactlyAfterGreylistFor(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		MaxHandshakes: 1000, SourceRate: 1, SourceBurst: 1,
		GreylistAfter: 1, GreylistFor: time.Second, Now: clk.Now,
	})
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatal("first admission refused")
	}
	g.Release()
	if d, _ := g.Admit("10.0.0.1"); d != ShedGreylist {
		t.Fatal("second admission should have greylisted the source")
	}
	clk.Advance(time.Second - time.Nanosecond)
	if d, _ := g.Admit("10.0.0.1"); d != ShedGreylist {
		t.Fatal("shed expected strictly inside the greylist window")
	}
	// The touch above re-armed the window; wait it out fully this time.
	clk.Advance(time.Second)
	if d, _ := g.Admit("10.0.0.1"); d != Admitted {
		t.Fatal("greylist did not expire at GreylistFor")
	}
}
