// Package admission implements connection-storm admission control for
// the engine and observer accept paths: a token gate bounding concurrent
// in-flight handshakes, per-source rate limiting with a greylist for
// flapping peers, and the decision taxonomy shared by the metrics
// counters and the flight recorder.
//
// The gate sits between Accept and the handshake: every inbound
// connection asks for admission with the remote host as its source key,
// and a refused connection is shed before any handshake work — at most
// one Busy frame is spent on it. An admitted connection holds its
// handshake token from Accept until the link is registered (or the
// handshake dies), so a dial storm can pin at most MaxHandshakes
// handshakes' worth of goroutines and read buffers no matter how fast
// connections arrive.
//
// A nil *Gate admits everything; call sites need no guards.
package admission

import (
	"sync"
	"time"
)

// Decision classifies one admission-control outcome. The codes travel as
// the Value of trace.KindAccept events, so they are stable small ints.
type Decision int32

// Admission outcomes.
const (
	// Admitted: the connection passed the gate and proceeds to handshake.
	Admitted Decision = iota + 1
	// ShedBusy: all MaxHandshakes in-flight tokens were taken.
	ShedBusy
	// ShedRate: the source exceeded its per-source admission rate.
	ShedRate
	// ShedGreylist: the source struck out repeatedly and is greylisted;
	// it is closed without even a Busy frame.
	ShedGreylist
	// ShedWatermark: the memory budget is past its watermark and the
	// connection identified as data-plane (decided post-hello by the
	// engine, not by the gate).
	ShedWatermark
	// BadHello: the first frame of an admitted connection was not a
	// well-formed hello.
	BadHello
	// Timeout: an admitted connection sent no hello within the
	// handshake deadline.
	Timeout
	// AcceptRetry: the listener survived a transient Accept error by
	// backing off and retrying.
	AcceptRetry
)

// String renders a decision for logs and timelines.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case ShedBusy:
		return "shed-busy"
	case ShedRate:
		return "shed-rate"
	case ShedGreylist:
		return "shed-greylist"
	case ShedWatermark:
		return "shed-watermark"
	case BadHello:
		return "bad-hello"
	case Timeout:
		return "handshake-timeout"
	case AcceptRetry:
		return "accept-retry"
	default:
		return "unknown"
	}
}

// Config tunes a Gate. Zero values select the defaults below.
type Config struct {
	// MaxHandshakes bounds concurrent in-flight handshakes: tokens held
	// from Accept until the link is registered. <=0 selects
	// DefaultMaxHandshakes.
	MaxHandshakes int
	// SourceRate is the sustained admissions per second allowed per
	// source host; SourceBurst the bucket depth. <=0 select defaults.
	SourceRate  float64
	SourceBurst int
	// GreylistAfter is the strike count (consecutive rate-limit
	// refusals) that greylists a source; GreylistFor how long the
	// greylist entry lasts. <=0 select defaults.
	GreylistAfter int
	GreylistFor   time.Duration
	// MaxSources bounds the per-source table; past it the entry with
	// the oldest activity is evicted. <=0 selects DefaultMaxSources.
	MaxSources int
	// RetryAfter is the hint carried in Busy frames for token
	// exhaustion; rate refusals hint the time until a token accrues.
	// <=0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// Now is the clock, injectable for tests; nil selects time.Now.
	Now func() time.Time
}

// Defaults; chosen so a polite overlay (redials spaced by the engine's
// capped backoff) never notices the gate.
const (
	DefaultMaxHandshakes = 64
	DefaultSourceRate    = 16.0
	DefaultSourceBurst   = 32
	DefaultGreylistAfter = 8
	DefaultGreylistFor   = 2 * time.Second
	DefaultMaxSources    = 1024
	DefaultRetryAfter    = 100 * time.Millisecond
)

// source is one per-host rate/greylist record.
type source struct {
	tokens    float64   // remaining burst allowance
	refilled  time.Time // last token refill
	strikes   int       // consecutive rate refusals
	greyUntil time.Time // zero when not greylisted
	lastSeen  time.Time // eviction key
}

// Stats is a snapshot of a gate's counters.
type Stats struct {
	Admitted     int64
	ShedBusy     int64
	ShedRate     int64
	ShedGreylist int64
	InFlight     int64
	InFlightPeak int64
	Sources      int
	Evicted      int64
}

// Gate is the admission controller. All methods are safe for concurrent
// use and are no-ops (admit-everything) on a nil receiver.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	inFlight int64
	peak     int64
	sources  map[string]*source
	stats    Stats
}

// New builds a gate, normalizing zero config fields to the defaults.
func New(cfg Config) *Gate {
	if cfg.MaxHandshakes <= 0 {
		cfg.MaxHandshakes = DefaultMaxHandshakes
	}
	if cfg.SourceRate <= 0 {
		cfg.SourceRate = DefaultSourceRate
	}
	if cfg.SourceBurst <= 0 {
		cfg.SourceBurst = DefaultSourceBurst
	}
	if cfg.GreylistAfter <= 0 {
		cfg.GreylistAfter = DefaultGreylistAfter
	}
	if cfg.GreylistFor <= 0 {
		cfg.GreylistFor = DefaultGreylistFor
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = DefaultMaxSources
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Gate{cfg: cfg, sources: make(map[string]*source)}
}

// Admit decides whether a connection from the given source host may
// proceed to handshake. On Admitted the caller holds one in-flight token
// and must call Release exactly once when the handshake path ends. On
// refusal the returned hint is the retry-after duration to carry in a
// Busy frame (zero for greylisted sources, which get no frame at all).
func (g *Gate) Admit(sourceHost string) (Decision, time.Duration) {
	if g == nil {
		return Admitted, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.cfg.Now()
	s := g.source(sourceHost, now)
	s.lastSeen = now

	// Greylisted sources are shed outright; continued hammering re-arms
	// the entry, so a flapping peer stays out until it actually stops.
	if now.Before(s.greyUntil) {
		s.greyUntil = now.Add(g.cfg.GreylistFor)
		g.stats.ShedGreylist++
		return ShedGreylist, 0
	}

	// Per-source token bucket: refill by elapsed time, capped at the
	// burst depth.
	s.tokens += now.Sub(s.refilled).Seconds() * g.cfg.SourceRate
	if s.tokens > float64(g.cfg.SourceBurst) {
		s.tokens = float64(g.cfg.SourceBurst)
	}
	s.refilled = now
	if s.tokens < 1 {
		s.strikes++
		if s.strikes >= g.cfg.GreylistAfter {
			s.greyUntil = now.Add(g.cfg.GreylistFor)
			s.strikes = 0
			g.stats.ShedGreylist++
			return ShedGreylist, 0
		}
		g.stats.ShedRate++
		need := (1 - s.tokens) / g.cfg.SourceRate
		return ShedRate, time.Duration(need * float64(time.Second))
	}

	// Global in-flight handshake tokens. Exhaustion is not the source's
	// fault, so it costs no source token and no strike.
	if g.inFlight >= int64(g.cfg.MaxHandshakes) {
		g.stats.ShedBusy++
		return ShedBusy, g.cfg.RetryAfter
	}

	s.tokens--
	if s.strikes > 0 {
		s.strikes--
	}
	g.inFlight++
	if g.inFlight > g.peak {
		g.peak = g.inFlight
	}
	g.stats.Admitted++
	return Admitted, 0
}

// AdmitDatagram decides whether an unsolicited datagram from the given
// source host deserves further processing. It consults the greylist and
// the per-source token bucket exactly like Admit, but takes no in-flight
// handshake token — a datagram has no handshake to bound — so the caller
// must not Release. Refusals strike toward the greylist the same way, so
// a host spraying packets at an open port goes dark just like one
// hammering the accept loop.
func (g *Gate) AdmitDatagram(sourceHost string) Decision {
	if g == nil {
		return Admitted
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.cfg.Now()
	s := g.source(sourceHost, now)
	s.lastSeen = now
	if now.Before(s.greyUntil) {
		s.greyUntil = now.Add(g.cfg.GreylistFor)
		g.stats.ShedGreylist++
		return ShedGreylist
	}
	s.tokens += now.Sub(s.refilled).Seconds() * g.cfg.SourceRate
	if s.tokens > float64(g.cfg.SourceBurst) {
		s.tokens = float64(g.cfg.SourceBurst)
	}
	s.refilled = now
	if s.tokens < 1 {
		s.strikes++
		if s.strikes >= g.cfg.GreylistAfter {
			s.greyUntil = now.Add(g.cfg.GreylistFor)
			s.strikes = 0
			g.stats.ShedGreylist++
			return ShedGreylist
		}
		g.stats.ShedRate++
		return ShedRate
	}
	s.tokens--
	if s.strikes > 0 {
		s.strikes--
	}
	return Admitted
}

// Bypass takes an in-flight token without consulting the cap or the
// source table — for connections a standing policy always admits, like
// an observer's federation peers. The count stays honest (the hello
// reader exists either way) but a trusted peer can never be refused.
// The caller must Release exactly like an Admitted connection.
func (g *Gate) Bypass() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inFlight++
	if g.inFlight > g.peak {
		g.peak = g.inFlight
	}
	g.stats.Admitted++
}

// Release returns one in-flight handshake token. Call exactly once per
// Admitted verdict, when the handshake either registered its link or
// died.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inFlight > 0 {
		g.inFlight--
	}
}

// InFlight reports the tokens currently held.
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// RetryAfter reports the configured busy-hint duration.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return 0
	}
	return g.cfg.RetryAfter
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stats
	st.InFlight = g.inFlight
	st.InFlightPeak = g.peak
	st.Sources = len(g.sources)
	return st
}

// source returns the record for a host, creating it (and evicting the
// stalest record when the table is full) as needed. Caller holds g.mu.
func (g *Gate) source(host string, now time.Time) *source {
	if s, ok := g.sources[host]; ok {
		return s
	}
	if len(g.sources) >= g.cfg.MaxSources {
		var oldestKey string
		var oldest time.Time
		for k, s := range g.sources {
			if oldestKey == "" || s.lastSeen.Before(oldest) {
				oldestKey, oldest = k, s.lastSeen
			}
		}
		delete(g.sources, oldestKey)
		g.stats.Evicted++
	}
	s := &source{tokens: float64(g.cfg.SourceBurst), refilled: now}
	g.sources[host] = s
	return s
}
