// Package algtest provides a fake engine.API for unit-testing algorithms
// in isolation: sends are recorded instead of wired, timers are captured
// for manual firing, and link rates are scripted. Because algorithms are
// single-threaded by contract, the fake is driven synchronously.
package algtest

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/trace"
)

// Sent records one Send issued by the algorithm under test.
type Sent struct {
	Msg  *message.Msg
	Dest message.NodeID
}

// Timer records one After call.
type Timer struct {
	D    time.Duration
	Kind uint32
}

// Note records one flight-recorder event emitted via API.Note.
type Note struct {
	Kind  trace.Kind
	Peer  message.NodeID
	App   uint32
	Value int64
}

// SourceCall records StartSource/StopSource invocations.
type SourceCall struct {
	App     uint32
	Rate    int64
	MsgSize int
	Stopped bool
}

// FakeAPI implements engine.API for tests.
type FakeAPI struct {
	Self       message.NodeID
	ObserverID message.NodeID
	Sends      []Sent
	Timers     []Timer
	Sources    []SourceCall
	Pings      []message.NodeID
	Probes     []message.NodeID
	Closed     []message.NodeID
	Traces     []string
	Notes      []Note
	Weights    map[message.NodeID]int
	Rates      map[message.NodeID]float64 // keyed by peer; same up/down
	Ups        []message.NodeID
	Downs      []message.NodeID
	pool       *message.Pool
}

var _ engine.API = (*FakeAPI)(nil)

// New returns a fake bound to the given identity.
func New(self message.NodeID) *FakeAPI {
	return &FakeAPI{
		Self:    self,
		Weights: make(map[message.NodeID]int),
		Rates:   make(map[message.NodeID]float64),
		pool:    message.NewPool(),
	}
}

// ID implements engine.API.
func (f *FakeAPI) ID() message.NodeID { return f.Self }

// Send implements engine.API, retaining the message like the engine does.
func (f *FakeAPI) Send(m *message.Msg, dest message.NodeID) {
	m.Retain()
	f.Sends = append(f.Sends, Sent{Msg: m, Dest: dest})
}

// SendNew implements engine.API.
func (f *FakeAPI) SendNew(m *message.Msg, dests ...message.NodeID) {
	for _, d := range dests {
		f.Send(m, d)
	}
	m.Release()
}

// Finish implements engine.API.
func (f *FakeAPI) Finish(m *message.Msg) { m.Release() }

// NewMsg implements engine.API.
func (f *FakeAPI) NewMsg(typ message.Type, app, seq uint32, payloadLen int) *message.Msg {
	return f.pool.Get(typ, f.Self, app, seq, payloadLen)
}

// NewControl implements engine.API.
func (f *FakeAPI) NewControl(typ message.Type, app uint32, payload []byte) *message.Msg {
	return message.New(typ, f.Self, app, 0, payload)
}

// After implements engine.API.
func (f *FakeAPI) After(d time.Duration, kind uint32) {
	f.Timers = append(f.Timers, Timer{D: d, Kind: kind})
}

// StartSource implements engine.API.
func (f *FakeAPI) StartSource(app uint32, rate int64, msgSize int) {
	f.Sources = append(f.Sources, SourceCall{App: app, Rate: rate, MsgSize: msgSize})
}

// StopSource implements engine.API.
func (f *FakeAPI) StopSource(app uint32) {
	f.Sources = append(f.Sources, SourceCall{App: app, Stopped: true})
}

// Upstreams implements engine.API.
func (f *FakeAPI) Upstreams() []message.NodeID { return f.Ups }

// Downstreams implements engine.API.
func (f *FakeAPI) Downstreams() []message.NodeID { return f.Downs }

// LinkRate implements engine.API.
func (f *FakeAPI) LinkRate(peer message.NodeID, _ bool) float64 { return f.Rates[peer] }

// Ping implements engine.API.
func (f *FakeAPI) Ping(dest message.NodeID) { f.Pings = append(f.Pings, dest) }

// MeasureBandwidth implements engine.API.
func (f *FakeAPI) MeasureBandwidth(dest message.NodeID) {
	f.Probes = append(f.Probes, dest)
}

// CloseLink implements engine.API.
func (f *FakeAPI) CloseLink(peer message.NodeID) { f.Closed = append(f.Closed, peer) }

// SetReceiverWeight implements engine.API.
func (f *FakeAPI) SetReceiverWeight(peer message.NodeID, w int) { f.Weights[peer] = w }

// Observer implements engine.API.
func (f *FakeAPI) Observer() message.NodeID { return f.ObserverID }

// Trace implements engine.API.
func (f *FakeAPI) Trace(format string, args ...any) {
	f.Traces = append(f.Traces, fmt.Sprintf(format, args...))
}

// Note implements engine.API.
func (f *FakeAPI) Note(kind trace.Kind, peer message.NodeID, app uint32, value int64) {
	f.Notes = append(f.Notes, Note{Kind: kind, Peer: peer, App: app, Value: value})
}

// SentTo filters recorded sends by destination.
func (f *FakeAPI) SentTo(dest message.NodeID) []Sent {
	var out []Sent
	for _, s := range f.Sends {
		if s.Dest == dest {
			out = append(out, s)
		}
	}
	return out
}

// SentOfType filters recorded sends by message type.
func (f *FakeAPI) SentOfType(typ message.Type) []Sent {
	var out []Sent
	for _, s := range f.Sends {
		if s.Msg.Type() == typ {
			out = append(out, s)
		}
	}
	return out
}

// Reset clears the recorded interactions.
func (f *FakeAPI) Reset() {
	for _, s := range f.Sends {
		s.Msg.Release()
	}
	f.Sends = nil
	f.Timers = nil
	f.Sources = nil
	f.Pings = nil
	f.Closed = nil
	f.Traces = nil
	f.Notes = nil
}
