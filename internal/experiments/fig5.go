package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/multicast"
)

// Fig5Config parameterizes the raw engine performance experiment: a chain
// of virtualized nodes on one machine with a back-to-back source at one
// end, as in Section 2.4 / Fig. 5 of the paper.
type Fig5Config struct {
	// Sizes are the chain lengths; defaults to the paper's 2–32 sweep.
	Sizes []int
	// MsgSize is the data payload per message (the paper uses 5 KB).
	MsgSize int
	// Warmup and Window bound the measurement.
	Warmup, Window time.Duration
	// BatchSize overrides engine.Config.BatchSize (0 = engine default;
	// 1 disables batching — benches use that for before/after curves).
	BatchSize int
	// SwitchBudget overrides engine.Config.SwitchBudget (0 = default),
	// letting benches sweep the control-responsiveness bound.
	SwitchBudget int
	// Shards overrides engine.Config.Shards (0 = GOMAXPROCS), letting
	// benches sweep switch-lane counts against core counts.
	Shards int
}

func (c *Fig5Config) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 4, 5, 6, 8, 12, 16, 32}
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 5 << 10
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
}

// Fig5Row is one point of Fig. 5.
type Fig5Row struct {
	Nodes    int
	EndToEnd float64 // bytes/sec at the chain tail
	Total    float64 // end-to-end × links: bytes switched or in transit
}

// Fig5 measures raw message-switching performance over chains of
// virtualized nodes.
func Fig5(cfg Fig5Config) ([]Fig5Row, error) {
	cfg.applyDefaults()
	rows := make([]Fig5Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		r, err := fig5One(n, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func fig5One(n int, cfg Fig5Config) (Fig5Row, error) {
	const app = 1
	c, err := NewCluster(false)
	if err != nil {
		return Fig5Row{}, err
	}
	defer c.Stop()

	algs := make([]*multicast.Forwarder, n)
	for i := n - 1; i >= 0; i-- {
		algs[i] = &multicast.Forwarder{}
		if i < n-1 {
			algs[i].DefaultRoutes = []message.NodeID{nodeID(i + 1)}
		}
		if _, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.RecvBuf, conf.SendBuf = 64, 64
			conf.StatusInterval = time.Second
			conf.BatchSize = cfg.BatchSize
			conf.SwitchBudget = cfg.SwitchBudget
			conf.Shards = cfg.Shards
		}); err != nil {
			return Fig5Row{}, err
		}
	}
	c.Engines[nodeID(0)].StartSource(app, 0, cfg.MsgSize)
	time.Sleep(cfg.Warmup)
	tail := algs[n-1]
	endToEnd := rateOver(cfg.Window, func() int64 { return tail.ReceivedBytes(app) })
	return Fig5Row{
		Nodes:    n,
		EndToEnd: endToEnd,
		Total:    endToEnd * float64(n-1),
	}, nil
}

// RenderFig5 formats the rows like the paper's figure annotations.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig 5: raw engine performance (chain of virtualized nodes)\n")
	b.WriteString("nodes  end-to-end (MBps)  total bandwidth (MBps)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d  %17.2f  %22.2f\n",
			r.Nodes, r.EndToEnd/(1024*1024), r.Total/(1024*1024))
	}
	return b.String()
}
