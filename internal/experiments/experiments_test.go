package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/tree"
)

// within checks got is in [want*(1-tol), want*(1+tol)].
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.1f, want %.1f (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestFig5ShapesHold(t *testing.T) {
	rows, err := Fig5(Fig5Config{
		Sizes:  []int{2, 4, 32},
		Warmup: 300 * time.Millisecond,
		Window: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EndToEnd <= 0 {
			t.Errorf("chain %d: zero throughput", r.Nodes)
		}
		wantTotal := r.EndToEnd * float64(r.Nodes-1)
		if r.Total != wantTotal {
			t.Errorf("chain %d: total %f != e2e*links %f", r.Nodes, r.Total, wantTotal)
		}
	}
	// End-to-end throughput declines as goroutine scheduling overhead
	// accumulates over long chains (the paper's Fig. 5 shape). Short
	// chains pipeline, so compare against a clearly long one.
	if rows[2].EndToEnd > rows[0].EndToEnd*0.95 {
		t.Errorf("e2e did not decline for long chains: %v", rows)
	}
	if !strings.Contains(RenderFig5(rows), "nodes") {
		t.Error("RenderFig5 empty")
	}
}

func TestFig6BackPressureCorrectness(t *testing.T) {
	phases, err := Fig6(Fig6Config{
		Settle: 2 * time.Second,
		Window: 1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("phases = %d", len(phases))
	}
	a, b, c, d := phases[0], phases[1], phases[2], phases[3]

	// (a) A's 400 KBps splits: single-copy edges at ~200, double at ~400.
	within(t, "(a) AB", a.Measured["AB"]/KB, 200, 0.4)
	within(t, "(a) CD", a.Measured["CD"]/KB, 200, 0.4)
	within(t, "(a) DE", a.Measured["DE"]/KB, 400, 0.4)
	within(t, "(a) predicted AB", a.Predicted["AB"]/KB, 200, 0.01)
	within(t, "(a) predicted DE", a.Predicted["DE"]/KB, 400, 0.01)

	// (b) D's 30 KBps uplink back-pressures the whole tree.
	within(t, "(b) AB", b.Measured["AB"]/KB, 15, 0.6)
	within(t, "(b) DE", b.Measured["DE"]/KB, 30, 0.5)
	within(t, "(b) EF", b.Measured["EF"]/KB, 30, 0.5)
	within(t, "(b) predicted AB", b.Predicted["AB"]/KB, 15, 0.01)

	// (c) B terminated: AB/BD/BF closed, CD converges to 30.
	for _, e := range []string{"AB", "BD", "BF"} {
		found := false
		for _, cl := range c.Closed {
			if cl == e {
				found = true
			}
		}
		if !found {
			t.Errorf("(c) edge %s not closed: %v", e, c.Closed)
		}
	}
	within(t, "(c) CD", c.Measured["CD"]/KB, 30, 0.5)

	// (d) G terminated: F still served at ~30 via C, D, E.
	within(t, "(d) EF", d.Measured["EF"]/KB, 30, 0.5)
	if s := RenderFig6("Fig 6", phases); !strings.Contains(s, "closed") {
		t.Error("RenderFig6 lacks closed markers")
	}
}

func TestFig7LargeBuffersLocalize(t *testing.T) {
	phases, err := Fig7(Fig6Config{
		Settle: 2 * time.Second,
		Window: 1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	a, b := phases[0], phases[1]
	// (a) the bottleneck stays local: upstream at 200, downstream at 30.
	within(t, "(a) AB", a.Measured["AB"]/KB, 200, 0.4)
	within(t, "(a) BD", a.Measured["BD"]/KB, 200, 0.4)
	within(t, "(a) DE", a.Measured["DE"]/KB, 30, 0.5)
	within(t, "(a) EF", a.Measured["EF"]/KB, 30, 0.5)
	// (b) EF capped to 15 without affecting EG.
	within(t, "(b) EF", b.Measured["EF"]/KB, 15, 0.5)
	within(t, "(b) EG", b.Measured["EG"]/KB, 30, 0.5)
	within(t, "(b) AB", b.Measured["AB"]/KB, 200, 0.4)
}

func TestFig8CodingLiftsReceivers(t *testing.T) {
	res, err := Fig8(Fig8Config{
		Settle: 1500 * time.Millisecond,
		Window: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []Fig8Row, node string) float64 {
		for _, r := range rows {
			if r.Node == node {
				return r.Effective / KB
			}
		}
		t.Fatalf("node %s missing", node)
		return 0
	}
	// Panel (a): D at 400, F and G at 300, E at 200.
	within(t, "(a) D", get(res.WithoutCoding, "D"), 400, 0.4)
	within(t, "(a) F", get(res.WithoutCoding, "F"), 300, 0.4)
	within(t, "(a) G", get(res.WithoutCoding, "G"), 300, 0.4)
	// Panel (b): coding lifts F and G to ~400.
	within(t, "(b) D", get(res.WithCoding, "D"), 400, 0.4)
	within(t, "(b) F", get(res.WithCoding, "F"), 400, 0.4)
	within(t, "(b) G", get(res.WithCoding, "G"), 400, 0.4)
	// The qualitative claim: coding strictly improves F and G.
	if get(res.WithCoding, "F") <= get(res.WithoutCoding, "F") {
		t.Error("coding did not improve F")
	}
	if !strings.Contains(RenderFig8(res), "with coding") {
		t.Error("RenderFig8 empty")
	}
}

func TestTreeSmallTable3(t *testing.T) {
	rows, figs, err := TreeSmall(TreeSmallConfig{
		JoinWait: 400 * time.Millisecond,
		Window:   1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Table3Row)
	for _, r := range rows {
		byName[r.Node] = r
	}
	// Unicast: a star around S.
	if d := byName["S"].Degree[tree.Unicast]; d != 4 {
		t.Errorf("unicast S degree = %d, want 4", d)
	}
	for _, n := range []string{"A", "B", "C", "D"} {
		if d := byName[n].Degree[tree.Unicast]; d != 1 {
			t.Errorf("unicast %s degree = %d, want 1", n, d)
		}
	}
	within(t, "unicast S stress", byName["S"].Stress[tree.Unicast], 2.0, 0.01)
	// ns-aware: the Table 3 outcome S=2, A=3, B=C=D=1.
	if d := byName["S"].Degree[tree.StressAware]; d != 2 {
		t.Errorf("ns-aware S degree = %d, want 2", d)
	}
	if d := byName["A"].Degree[tree.StressAware]; d != 3 {
		t.Errorf("ns-aware A degree = %d, want 3", d)
	}
	within(t, "ns-aware A stress", byName["A"].Stress[tree.StressAware], 0.6, 0.01)
	// Degrees always sum to 2 × edges = 8 in any spanning tree of 5 nodes.
	for _, v := range []tree.Variant{tree.Unicast, tree.Random, tree.StressAware} {
		sum := 0
		for _, n := range treeSmallNames {
			sum += byName[n].Degree[v]
		}
		if sum != 8 {
			t.Errorf("%s degree sum = %d, want 8", v, sum)
		}
	}
	// Fig 9: ns-aware receivers all near 100 KBps; unicast near 50.
	for _, f := range figs {
		if len(f.Edges) != 4 {
			t.Errorf("%s tree has %d edges, want 4", f.Variant, len(f.Edges))
		}
		switch f.Variant {
		case tree.Unicast:
			within(t, "unicast D throughput", f.Throughput["D"]/KB, 50, 0.5)
		case tree.StressAware:
			within(t, "ns-aware D throughput", f.Throughput["D"]/KB, 100, 0.5)
			within(t, "ns-aware B throughput", f.Throughput["B"]/KB, 100, 0.5)
		}
	}
	if !strings.Contains(RenderTable3(rows), "ns-aware") {
		t.Error("RenderTable3 empty")
	}
	if !strings.Contains(RenderFig9(figs), "throughput") {
		t.Error("RenderFig9 empty")
	}
}

func TestFig11SmallScale(t *testing.T) {
	results, err := Fig11(Fig11Config{
		N:       10,
		Seed:    3,
		JoinGap: 30 * time.Millisecond,
		Window:  1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("variants = %d", len(results))
	}
	byVariant := make(map[tree.Variant]Fig11Variant)
	for _, r := range results {
		byVariant[r.Variant] = r
		if r.Joined != 9 {
			t.Errorf("%s: joined %d, want 9", r.Variant, r.Joined)
		}
		if len(r.Edges) != 9 {
			t.Errorf("%s: %d edges, want 9", r.Variant, len(r.Edges))
		}
		if r.Mean <= 0 {
			t.Errorf("%s: zero mean throughput", r.Variant)
		}
	}
	// The unicast star concentrates stress on the source far beyond the
	// ns-aware tree's maximum.
	uniMax := maxOf(byVariant[tree.Unicast].Stresses)
	nsMax := maxOf(byVariant[tree.StressAware].Stresses)
	if nsMax >= uniMax {
		t.Errorf("ns-aware max stress %.2f not below unicast %.2f", nsMax, uniMax)
	}
	// ns-aware should beat unicast on delivered throughput.
	if byVariant[tree.StressAware].Mean <= byVariant[tree.Unicast].Mean {
		t.Errorf("ns-aware mean %.0f not above unicast %.0f",
			byVariant[tree.StressAware].Mean, byVariant[tree.Unicast].Mean)
	}
	cdf := StressCDF(byVariant[tree.StressAware].Stresses)
	if len(cdf) == 0 || cdf[len(cdf)-1][1] != 1.0 {
		t.Error("StressCDF malformed")
	}
	if !strings.Contains(RenderFig11(results), "ns-aware") {
		t.Error("RenderFig11 empty")
	}
	if !strings.Contains(RenderTopology(byVariant[tree.StressAware]), "->") {
		t.Error("RenderTopology empty")
	}
}

func TestFed16SessionAndOverhead(t *testing.T) {
	res, err := Fed16(Fed16Config{N: 12, Window: 1200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 5 {
		t.Fatalf("assignment = %v", res.Assignment)
	}
	for i, n := range res.Assignment {
		if n.IsZero() {
			t.Errorf("vertex %d unassigned", i)
		}
	}
	if res.LastHop <= 0 {
		t.Error("no data reached the sink")
	}
	var totalAware, totalFederate int64
	for _, r := range res.Rows {
		totalAware += r.AwareBytes
		totalFederate += r.FederateBytes
	}
	if totalAware == 0 || totalFederate == 0 {
		t.Errorf("overhead totals aware=%d federate=%d", totalAware, totalFederate)
	}
	// The paper's observation: sFederate overhead is small relative to
	// sAware.
	if totalFederate >= totalAware {
		t.Errorf("sFederate (%d) not below sAware (%d)", totalFederate, totalAware)
	}
	if !strings.Contains(RenderFed16(res), "Fig 14") {
		t.Error("RenderFed16 empty")
	}
}

func TestFig16OverheadDecaysAfterArrivalsStop(t *testing.T) {
	points, err := Fig16(Fig16Config{
		N:              9,
		Minutes:        6,
		ServicesPerMin: 3,
		MinuteDur:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	var during, after int64
	for _, p := range points {
		if p.Minute <= 3 {
			during += p.Bytes
		} else {
			after += p.Bytes
		}
	}
	if during == 0 {
		t.Error("no sAware traffic while services joined")
	}
	if after >= during {
		t.Errorf("overhead did not decay: during=%d after=%d", during, after)
	}
	if !strings.Contains(RenderFig16(points), "minute") {
		t.Error("RenderFig16 empty")
	}
}

func TestFedSweepGrowsWithSize(t *testing.T) {
	rows, err := FedSweep(FedSweepConfig{
		Sizes:        []int{5, 10},
		Requirements: 8,
		Policy:       federation.SFlow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Completed == 0 {
			t.Errorf("size %d: no sessions completed", r.Size)
		}
		if r.AwareBytes == 0 || r.FederateBytes == 0 {
			t.Errorf("size %d: overhead zero", r.Size)
		}
		if r.MeanBandwidth <= 0 {
			t.Errorf("size %d: zero bandwidth estimate", r.Size)
		}
		if len(r.PerNode) != r.Size {
			t.Errorf("size %d: per-node rows = %d", r.Size, len(r.PerNode))
		}
	}
	if rows[1].AwareBytes <= rows[0].AwareBytes {
		t.Errorf("sAware overhead did not grow with size: %d -> %d",
			rows[0].AwareBytes, rows[1].AwareBytes)
	}
	if !strings.Contains(RenderFig17(rows), "size") {
		t.Error("RenderFig17 empty")
	}
	if !strings.Contains(RenderFig18(rows[1]), "sFederate") {
		t.Error("RenderFig18 empty")
	}
	byPolicy := map[federation.Selection][]Fig17Row{
		federation.SFlow:     rows,
		federation.Fixed:     rows,
		federation.RandomSel: rows,
	}
	if !strings.Contains(RenderFig19(byPolicy), "sFlow") {
		t.Error("RenderFig19 empty")
	}
}
