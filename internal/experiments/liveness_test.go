package experiments

import (
	"testing"
	"time"

	"repro/internal/tree"
)

// TestFig11NsAwareLiveness is a regression net for a teardown hang seen
// under heavy load: a deep ns-aware tree over latency-modeled links must
// build, measure and stop within a bounded time.
func TestFig11NsAwareLiveness(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Fig11(Fig11Config{
			N: 20, Seed: 7, Window: 2 * time.Second,
			Variants: []tree.Variant{tree.StressAware},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("fig11 ns-aware N=20 hung (liveness regression)")
	}
}
