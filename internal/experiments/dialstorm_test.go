package experiments

import (
	"testing"
	"time"
)

// TestDialStormDoesNotStarveTheStream is the acceptance check for
// connection-storm admission control: with the source and the hottest
// interior listeners under a half-open dial flood, established links must
// keep delivering at close to the pre-storm rate, in-flight handshakes
// must stay under the cap, the control lane must stay near-empty, and the
// session must be fully steady once the storm passes.
func TestDialStormDoesNotStarveTheStream(t *testing.T) {
	if testing.Short() {
		t.Skip("dial-storm soak")
	}
	cfg := DialStormConfig{N: 14, StormFor: 1500 * time.Millisecond}
	res, err := DialStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderDialStorm(res))

	if !res.Recovered {
		t.Fatal("session never returned to steady state after the storm")
	}
	// The storm was real: a multiple of the handshake cap in dials, and
	// the gate both saturated and refused.
	if res.Dials < 3*res.Cap {
		t.Errorf("only %d dials attempted against cap %d; storm too weak to prove anything",
			res.Dials, res.Cap)
	}
	if res.InFlightPeak > res.Cap {
		t.Errorf("in-flight handshakes peaked at %d, above the %d cap",
			res.InFlightPeak, res.Cap)
	}
	if res.ShedBusy+res.ShedRate+res.ShedGreylist == 0 {
		t.Error("gate never shed a storm connection")
	}
	// Established links keep flowing: during-storm delivery holds at least
	// half the pre-storm rate (in practice it is ~100%; the slack absorbs
	// scheduler noise on loaded CI machines).
	if res.StormTput < res.PreRate/2 {
		t.Errorf("delivery fell from %.0f to %.0f bytes/sec under the storm",
			res.PreRate, res.StormTput)
	}
	// Admission work rides the accept path and the control lane, never the
	// data rings: control delay stays far below the storm duration.
	if res.CtrlDelay > 100*time.Millisecond {
		t.Errorf("control-lane delay reached %v during the storm", res.CtrlDelay)
	}
}
