package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/coding"
	"repro/internal/engine"
	"repro/internal/message"
)

// Fig8Config parameterizes the network-coding case study (Fig. 8): the
// seven-node topology with A splitting the session into streams a and b,
// A capped at 400 KBps total, D's uplink capped at 200 KBps.
type Fig8Config struct {
	MsgSize int
	Settle  time.Duration
	Window  time.Duration
}

func (c *Fig8Config) applyDefaults() {
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.Settle <= 0 {
		c.Settle = 2 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
}

// Fig8Row is the effective (decoded) throughput at one receiver.
type Fig8Row struct {
	Node      string
	Effective float64 // bytes/sec of decoded application data
}

// Fig8Result holds both panels.
type Fig8Result struct {
	WithoutCoding []Fig8Row // panel (a)
	WithCoding    []Fig8Row // panel (b)
}

// Fig8 runs both panels of the network-coding case study and reports the
// effective throughput at D, E, F and G.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg.applyDefaults()
	without, err := fig8Run(cfg, false)
	if err != nil {
		return nil, err
	}
	with, err := fig8Run(cfg, true)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{WithoutCoding: without, WithCoding: with}, nil
}

func fig8Run(cfg Fig8Config, useCoding bool) ([]Fig8Row, error) {
	const app = 1
	c, err := NewCluster(false)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	ids := make(map[string]message.NodeID)
	for i, name := range fig6Names {
		ids[name] = nodeID(i)
	}
	algs := map[string]*coding.Node{
		"A": {SplitDests: [][]message.NodeID{{ids["B"]}, {ids["C"]}}},
		"B": {Forward: map[int][]message.NodeID{0: {ids["D"], ids["F"]}}},
		"C": {Forward: map[int][]message.NodeID{1: {ids["D"], ids["G"]}}},
	}
	if useCoding {
		// Panel (b): D codes a+b toward E; E relays the coded stream; F
		// and G decode from one plain and one coded stream.
		algs["D"] = &coding.Node{
			Code:    &coding.CodeSpec{K: 2, Inputs: []int{0, 1}, Dests: []message.NodeID{ids["E"]}},
			DecodeK: 2,
		}
		algs["E"] = &coding.Node{ForwardCoded: []message.NodeID{ids["F"], ids["G"]}, DecodeK: 0}
	} else {
		// Panel (a): plain forwarding; D relays both streams to E, which
		// crosses them over to the receivers missing them.
		algs["D"] = &coding.Node{
			Forward: map[int][]message.NodeID{0: {ids["E"]}, 1: {ids["E"]}},
			DecodeK: 2,
		}
		algs["E"] = &coding.Node{
			Forward: map[int][]message.NodeID{0: {ids["G"]}, 1: {ids["F"]}},
			DecodeK: 2,
		}
	}
	algs["F"] = &coding.Node{DecodeK: 2}
	algs["G"] = &coding.Node{DecodeK: 2}

	for i := len(fig6Names) - 1; i >= 0; i-- {
		name := fig6Names[i]
		_, err := c.AddNode(ids[name], algs[name], func(conf *engine.Config) {
			conf.RecvBuf, conf.SendBuf = 2000, 2000
			conf.MaxParked = 8000
			switch name {
			case "A":
				conf.TotalBW = 400 << 10
			case "D":
				conf.UpBW = 200 << 10
			}
		})
		if err != nil {
			return nil, err
		}
	}
	c.Engines[ids["A"]].StartSource(app, 0, cfg.MsgSize)
	time.Sleep(cfg.Settle)

	rows := make([]Fig8Row, 0, 4)
	names := []string{"D", "E", "F", "G"}
	befores := make([]int64, len(names))
	for i, n := range names {
		befores[i] = algs[n].EffectiveBytes()
	}
	time.Sleep(cfg.Window)
	for i, n := range names {
		rate := float64(algs[n].EffectiveBytes()-befores[i]) / cfg.Window.Seconds()
		rows = append(rows, Fig8Row{Node: n, Effective: rate})
	}
	return rows, nil
}

// RenderFig8 formats both panels side by side.
func RenderFig8(r *Fig8Result) string {
	var b strings.Builder
	b.WriteString("Fig 8: network coding case study — effective throughput (KBps)\n")
	b.WriteString("node   without coding   with coding (a+b at D)\n")
	for i := range r.WithoutCoding {
		fmt.Fprintf(&b, "  %s    %14.1f   %22.1f\n",
			r.WithoutCoding[i].Node,
			r.WithoutCoding[i].Effective/KB,
			r.WithCoding[i].Effective/KB)
	}
	return b.String()
}
