package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/observer"
	"repro/internal/trace"
	"repro/internal/tree"
)

// This harness is the end-to-end demonstration of the flight-recorder
// pipeline: a multicast session is built, interior nodes are crashed
// mid-stream, and instead of per-node counters the experiment reports the
// observer's merged cross-node event timeline — link failures on the
// survivors lining up with their reconnect backoffs and tree reparents,
// reconstructed entirely from the recorder tails shipped inside ordinary
// status reports.

// TimelineConfig parameterizes the flight-recorder churn demo.
type TimelineConfig struct {
	// N is the session size including the source (default 16).
	N int
	// Kills is how many interior nodes are crashed at once (default 2).
	Kills int
	// Rate is the source send rate in bytes/sec (default 256 KBps).
	Rate int64
	// MsgSize is the data payload size (default 1 KB).
	MsgSize int
	// Tail caps how many trailing timeline events the render includes
	// (default 48).
	Tail int
	// RecoveryTimeout bounds the wait for the session to heal (default 30s).
	RecoveryTimeout time.Duration
}

func (c *TimelineConfig) applyDefaults() {
	if c.N <= 0 {
		c.N = 16
	}
	if c.Kills <= 0 {
		c.Kills = 2
	}
	if c.Rate <= 0 {
		c.Rate = 256 << 10
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.Tail <= 0 {
		c.Tail = 48
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 30 * time.Second
	}
}

// TimelineResult is the outcome of the churn run plus the observer's view
// of it.
type TimelineResult struct {
	// Nodes is how many nodes contributed events to the merged timeline.
	Nodes int
	// Events is the total merged event count.
	Events int
	// ByKind counts events per kind name.
	ByKind map[string]int
	// Recovered reports whether the session healed within the timeout.
	Recovered bool
	// Recovery is how long healing took.
	Recovery time.Duration
	// Tail is the rendered trailing slice of the merged timeline.
	Tail string
	// Hists is the rendered cluster-wide queue-delay distribution.
	Hists string
}

// Timeline builds an N-node tree session, crashes Kills interior nodes
// mid-stream, waits for the repair, and returns the observer's merged
// flight-recorder timeline of the whole episode.
func Timeline(cfg TimelineConfig) (*TimelineResult, error) {
	cfg.applyDefaults()
	c, err := NewCluster(true)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	algs := make([]*tree.Tree, cfg.N)
	alive := make([]bool, cfg.N)
	for i := cfg.N - 1; i >= 0; i-- {
		algs[i] = &tree.Tree{
			Variant:    tree.Random,
			App:        treeApp,
			LastMile:   1 << 20,
			AutoRejoin: true,
		}
		_, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.StatusInterval = 50 * time.Millisecond
			conf.InactivityTimeout = 600 * time.Millisecond
			conf.RetryBase = 50 * time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		alive[i] = true
	}
	if !c.Obs.WaitForNodes(cfg.N, 10*time.Second) {
		return nil, fmt.Errorf("bootstrap incomplete (%d alive)", len(c.Obs.Alive()))
	}
	time.Sleep(200 * time.Millisecond)
	c.Obs.Deploy(nodeID(0), treeApp, cfg.Rate, uint32(cfg.MsgSize))
	time.Sleep(300 * time.Millisecond)
	// Shape a deep tree via explicit contacts (see fig9.go): interior
	// nodes are what make the churn interesting.
	for i := 1; i < cfg.N; i++ {
		c.Obs.Join(nodeID(i), treeApp, nodeID((i-1)/2))
		if err := waitJoin(algs[i], 10*time.Second); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	baseline := make([]int64, cfg.N)
	steady := func() bool {
		for i := 1; i < cfg.N; i++ {
			if !alive[i] {
				continue
			}
			if !algs[i].InSession() || algs[i].ReceivedBytes() <= baseline[i] {
				return false
			}
		}
		return true
	}
	mark := func() {
		for i := 1; i < cfg.N; i++ {
			baseline[i] = algs[i].ReceivedBytes()
		}
	}
	mark()
	deadline := time.Now().Add(15 * time.Second)
	for !steady() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session never reached steady state")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Crash the fan-out-heaviest interior nodes.
	type interior struct{ idx, children int }
	var ints []interior
	for i := 1; i < cfg.N; i++ {
		if n := len(algs[i].Children()); n > 0 {
			ints = append(ints, interior{i, n})
		}
	}
	sort.Slice(ints, func(a, b int) bool {
		if ints[a].children != ints[b].children {
			return ints[a].children > ints[b].children
		}
		return ints[a].idx < ints[b].idx
	})
	kills := cfg.Kills
	if kills > len(ints) {
		kills = len(ints)
	}
	for i := 0; i < kills; i++ {
		v := ints[i].idx
		alive[v] = false
		c.Net.CrashNode(nodeID(v).Addr())
		c.Engines[nodeID(v)].Stop()
	}

	mark()
	start := time.Now()
	res := &TimelineResult{Recovered: true}
	for !steady() {
		if time.Since(start) > cfg.RecoveryTimeout {
			res.Recovered = false
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	res.Recovery = time.Since(start)
	// Let the next status round ship the repair's event tails.
	time.Sleep(300 * time.Millisecond)

	tl := c.Obs.Timeline()
	res.Events = len(tl)
	res.ByKind = make(map[string]int)
	seen := make(map[string]bool)
	for _, te := range tl {
		res.ByKind[trace.KindName(te.Event.Kind)]++
		seen[te.Node.String()] = true
	}
	res.Nodes = len(seen)
	res.Tail = renderTimelineTail(tl, cfg.Tail)
	res.Hists = c.Obs.RenderHists()
	return res, nil
}

// renderTimelineTail renders the last n non-switch events (switching is
// constant-rate noise at this zoom level; the churn story is in the link,
// backoff, and reparent events) falling back to the raw tail when the
// filter leaves nothing.
func renderTimelineTail(tl []observer.TimelineEvent, n int) string {
	var interesting []observer.TimelineEvent
	for _, te := range tl {
		if te.Event.Kind != trace.KindSwitch {
			interesting = append(interesting, te)
		}
	}
	if len(interesting) == 0 {
		interesting = tl
	}
	if len(interesting) > n {
		interesting = interesting[len(interesting)-n:]
	}
	var b strings.Builder
	for _, te := range interesting {
		ev := te.Event
		when := time.Unix(0, ev.Nanos).UTC().Format("15:04:05.000000")
		fmt.Fprintf(&b, "  %s %-15s %-11s", when, te.Node, trace.KindName(ev.Kind))
		if !ev.Peer.IsZero() {
			fmt.Fprintf(&b, " peer=%s", ev.Peer)
		}
		fmt.Fprintf(&b, " value=%d\n", ev.Value)
	}
	return b.String()
}

// RenderTimelineResult formats the churn timeline in ibench's house style.
func RenderTimelineResult(r *TimelineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timeline: flight-recorder view of a %d-event churn run\n", r.Events)
	fmt.Fprintf(&b, "nodes reporting: %d   recovered: %v in %s\n",
		r.Nodes, r.Recovered, r.Recovery.Round(time.Millisecond))
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-11s %d\n", k, r.ByKind[k])
	}
	b.WriteString("event tail (switch events elided):\n")
	b.WriteString(r.Tail)
	b.WriteString(r.Hists)
	return b.String()
}
