package experiments

import (
	"testing"
	"time"
)

// TestOverloadRecoveryWithinFactor is the acceptance check for control-
// plane isolation: with every receiver uplink saturated, killing interior
// nodes must still repair within a small factor of the unloaded baseline,
// because failure detection and rejoin ride the priority lane instead of
// waiting behind the queued data. The round also checks the overload
// protections held: buffered bytes stayed within the budget and the
// overflow was shed (charged to loss), not buffered without bound.
func TestOverloadRecoveryWithinFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak")
	}
	cfg := OverloadConfig{N: 14, Kills: 2}
	res, err := Overload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderOverload(res))

	if !res.Unloaded.Recovered {
		t.Fatal("unloaded round never recovered")
	}
	if !res.Loaded.Recovered {
		t.Fatal("saturated round never recovered")
	}
	// Saturation must have been real: a deep data backlog with control
	// overtaking it, and slow-peer/budget shedding engaged.
	if res.Loaded.DataDelay < 100*time.Millisecond {
		t.Errorf("saturated data-lane delay = %v; overload never built a backlog",
			res.Loaded.DataDelay)
	}
	if res.Loaded.CtrlDelay > res.Loaded.DataDelay/4 {
		t.Errorf("control-lane delay %v not well below data-lane delay %v under saturation",
			res.Loaded.CtrlDelay, res.Loaded.DataDelay)
	}
	if res.Loaded.BytesShed == 0 {
		t.Error("saturated round shed no data")
	}
	for _, p := range []OverloadPoint{res.Unloaded, res.Loaded} {
		if p.MaxBuffered > res.Budget {
			t.Errorf("saturated=%v: buffered bytes peaked at %d, above the %d budget",
				p.Saturated, p.MaxBuffered, res.Budget)
		}
	}
	// Recovery under overload stays within 3x the unloaded baseline.
	// Sub-timeout recoveries are dominated by the passive failure
	// detection window, so the baseline is floored there: a 10ms RST-path
	// repair does not make 30ms the budget for the loaded round.
	base := res.Unloaded.Recovery
	if floor := 600 * time.Millisecond; base < floor {
		base = floor
	}
	if res.Loaded.Recovery > 3*base {
		t.Errorf("saturated recovery %v exceeds 3x the unloaded baseline (%v)",
			res.Loaded.Recovery, base)
	}
}
