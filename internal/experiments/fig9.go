package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/tree"
)

// Fig9ChurnConfig parameterizes the mid-stream failure experiment: a
// multicast session is built, the stream reaches steady state, and then k
// interior (non-leaf) tree nodes are crashed simultaneously. The paper
// argues the middleware's passive failure detection plus the BrokenSource
// domino lets the dissemination structure repair itself; this measures how
// fast, and at what cost in lost bytes, as the failure burst grows.
type Fig9ChurnConfig struct {
	// N is the session size including the source (default 24).
	N int
	// MaxConcurrent is the largest simultaneous-failure burst (default 8).
	MaxConcurrent int
	// Rate is the source's send rate in bytes/sec (default 256 KBps).
	Rate int64
	// MsgSize is the data payload size (default 1 KB).
	MsgSize int
	// RecoveryTimeout bounds the wait for the session to heal (default 30s).
	RecoveryTimeout time.Duration
	// InactivityTimeout is the engines' passive failure detection window
	// (default 600ms); recovery latency is dominated by it.
	InactivityTimeout time.Duration
}

func (c *Fig9ChurnConfig) applyDefaults() {
	if c.N <= 0 {
		c.N = 24
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.Rate <= 0 {
		c.Rate = 256 << 10
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 30 * time.Second
	}
	if c.InactivityTimeout <= 0 {
		c.InactivityTimeout = 600 * time.Millisecond
	}
}

// Fig9ChurnPoint is one burst size's outcome.
type Fig9ChurnPoint struct {
	// Failures is how many interior nodes were crashed at once.
	Failures int
	// Interior is how many interior nodes the tree had before the crash.
	Interior int
	// Orphaned is how many surviving receivers lost their path to the
	// source (their parent chain passed through a victim).
	Orphaned int
	// Recovery is how long until every surviving receiver was back in the
	// tree and receiving again.
	Recovery time.Duration
	// Recovered is false when the recovery timeout expired first.
	Recovered bool
	// BytesLost counts bytes dropped across the cluster by the burst.
	BytesLost int64
}

// Fig9Churn runs the failure-burst sweep: for each k in 1..MaxConcurrent a
// fresh session is built and k interior nodes are killed mid-stream.
func Fig9Churn(cfg Fig9ChurnConfig) ([]Fig9ChurnPoint, error) {
	cfg.applyDefaults()
	var points []Fig9ChurnPoint
	for k := 1; k <= cfg.MaxConcurrent; k++ {
		p, err := fig9ChurnOne(k, cfg)
		if err != nil {
			return nil, fmt.Errorf("churn burst %d: %w", k, err)
		}
		points = append(points, *p)
	}
	return points, nil
}

func fig9ChurnOne(k int, cfg Fig9ChurnConfig) (*Fig9ChurnPoint, error) {
	c, err := NewCluster(true)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	algs := make([]*tree.Tree, cfg.N)
	alive := make([]bool, cfg.N)
	baseline := make([]int64, cfg.N)
	// Receivers first, source last, so the deploy announce spans the
	// membership.
	for i := cfg.N - 1; i >= 0; i-- {
		algs[i] = &tree.Tree{
			Variant:    tree.Random,
			App:        treeApp,
			LastMile:   1 << 20,
			AutoRejoin: true,
		}
		_, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.StatusInterval = 50 * time.Millisecond
			conf.InactivityTimeout = cfg.InactivityTimeout
			conf.RetryBase = 50 * time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		alive[i] = true
	}
	if !c.Obs.WaitForNodes(cfg.N, 10*time.Second) {
		return nil, fmt.Errorf("bootstrap incomplete (%d alive)", len(c.Obs.Alive()))
	}
	time.Sleep(200 * time.Millisecond)
	c.Obs.Deploy(nodeID(0), treeApp, cfg.Rate, uint32(cfg.MsgSize))
	time.Sleep(300 * time.Millisecond) // announce flood
	// Join each node through contact (i-1)/2 rather than letting every
	// query land on the source: the Random variant accepts wherever the
	// query arrives, so explicit contacts shape a deep tree with real
	// interior nodes — without them the session degenerates into a star
	// and a "failure burst" only ever kills leaves.
	for i := 1; i < cfg.N; i++ {
		c.Obs.Join(nodeID(i), treeApp, nodeID((i-1)/2))
		if err := waitJoin(algs[i], 10*time.Second); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	steady := func() bool {
		for i := 1; i < cfg.N; i++ {
			if !alive[i] {
				continue
			}
			if !algs[i].InSession() || algs[i].ReceivedBytes() <= baseline[i] {
				return false
			}
		}
		return true
	}
	mark := func() {
		for i := 1; i < cfg.N; i++ {
			baseline[i] = algs[i].ReceivedBytes()
		}
	}
	mark()
	deadline := time.Now().Add(15 * time.Second)
	for !steady() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session never reached steady state")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Interior nodes, most children first, are the victims: killing a
	// leaf exercises nothing, killing a fan-out node orphans a subtree.
	type interior struct{ idx, children int }
	var ints []interior
	for i := 1; i < cfg.N; i++ {
		if n := len(algs[i].Children()); n > 0 {
			ints = append(ints, interior{i, n})
		}
	}
	sort.Slice(ints, func(a, b int) bool {
		if ints[a].children != ints[b].children {
			return ints[a].children > ints[b].children
		}
		return ints[a].idx < ints[b].idx
	})
	if k > len(ints) {
		k = len(ints)
	}
	victims := make([]int, k)
	for i := 0; i < k; i++ {
		victims[i] = ints[i].idx
	}
	point := &Fig9ChurnPoint{Failures: k, Interior: len(ints)}
	point.Orphaned = countOrphaned(algs, victims, cfg.N)

	ops := chaos.Ops{
		Kill: func(n int) {
			alive[n] = false
			c.Net.CrashNode(nodeID(n).Addr())
			c.Engines[nodeID(n)].Stop()
		},
		Mark:      func(chaos.Event) { mark() },
		Recovered: steady,
		Dropped: func() int64 {
			var total int64
			for _, e := range c.Engines {
				total += e.Counters().BytesDropped
			}
			return total
		},
	}
	r := &chaos.Runner{Ops: ops, RecoveryTimeout: cfg.RecoveryTimeout}
	rep := r.Run([]chaos.Event{{Kind: chaos.Kill, Nodes: victims}})
	res := rep.Results[0]
	point.Recovery = res.Recovery
	point.Recovered = res.Recovered
	point.BytesLost = res.DroppedDelta
	return point, nil
}

// countOrphaned walks each survivor's parent chain and reports how many
// pass through a victim (and so must re-attach for delivery to resume).
func countOrphaned(algs []*tree.Tree, victims []int, n int) int {
	dead := make(map[message.NodeID]bool, len(victims))
	for _, v := range victims {
		dead[nodeID(v)] = true
	}
	parentOf := make(map[message.NodeID]message.NodeID, n)
	for i := 1; i < n; i++ {
		if p, ok := algs[i].Parent(); ok {
			parentOf[nodeID(i)] = p
		}
	}
	orphaned := 0
	for i := 1; i < n; i++ {
		if dead[nodeID(i)] {
			continue
		}
		for id, hops := nodeID(i), 0; hops < n; hops++ {
			p, ok := parentOf[id]
			if !ok {
				break
			}
			if dead[p] {
				orphaned++
				break
			}
			id = p
		}
	}
	return orphaned
}

// RenderFig9Churn formats the sweep.
func RenderFig9Churn(points []Fig9ChurnPoint) string {
	var b strings.Builder
	b.WriteString("Churn: mid-stream interior-node failure bursts — recovery latency and loss\n")
	b.WriteString("  kills  interior  orphaned   recovery   lost(bytes)  state\n")
	for _, p := range points {
		state := "recovered"
		if !p.Recovered {
			state = "TIMEOUT"
		}
		fmt.Fprintf(&b, "  %5d  %8d  %8d  %9s  %11d  %s\n",
			p.Failures, p.Interior, p.Orphaned,
			p.Recovery.Round(time.Millisecond), p.BytesLost, state)
	}
	return b.String()
}
