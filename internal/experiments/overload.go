package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/tree"
)

// OverloadConfig parameterizes the control-plane-isolation experiment: the
// churn scenario (kill interior nodes mid-stream, measure repair latency)
// is run twice on identical sessions — once unloaded and once with every
// receiver's uplink throttled to a fraction of the stream rate so the
// forwarding queues stay saturated. With control and data sharing FIFO
// rings, the loaded round's failure notifications would wait behind the
// queued payload; with the priority lane plus slow-peer shedding and the
// memory budget, recovery must stay within a small factor of the unloaded
// baseline.
type OverloadConfig struct {
	// N is the session size including the source (default 20).
	N int
	// Kills is how many interior nodes are crashed at once (default 3).
	Kills int
	// Rate is the source's send rate in bytes/sec (default 256 KBps).
	Rate int64
	// MsgSize is the data payload size (default 1 KB).
	MsgSize int
	// SaturateBW is the per-receiver uplink throttle during the loaded
	// round (default Rate/2, so interior fan-out is ~4x oversubscribed).
	SaturateBW int64
	// MemoryBudget bounds each engine's buffered wire bytes (default 1 MiB).
	MemoryBudget int64
	// StallThreshold enables slow-peer shedding (default 500ms).
	StallThreshold time.Duration
	// RecoveryTimeout bounds the wait for the session to heal (default 30s).
	RecoveryTimeout time.Duration
	// InactivityTimeout is the engines' passive failure detection window
	// (default 600ms); sub-timeout recoveries are dominated by it.
	InactivityTimeout time.Duration
}

func (c *OverloadConfig) applyDefaults() {
	if c.N <= 0 {
		c.N = 20
	}
	if c.Kills <= 0 {
		c.Kills = 3
	}
	if c.Rate <= 0 {
		c.Rate = 256 << 10
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.SaturateBW <= 0 {
		c.SaturateBW = c.Rate / 2
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 20
	}
	if c.StallThreshold <= 0 {
		c.StallThreshold = 500 * time.Millisecond
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 30 * time.Second
	}
	if c.InactivityTimeout <= 0 {
		c.InactivityTimeout = 600 * time.Millisecond
	}
}

// OverloadPoint is one round's outcome.
type OverloadPoint struct {
	// Saturated reports whether the data plane was overloaded when the
	// failure burst fired.
	Saturated bool
	// Failures/Interior/Orphaned mirror Fig9ChurnPoint.
	Failures, Interior, Orphaned int
	// Recovery is the time until every surviving receiver was back in
	// the tree and receiving; Recovered is false on timeout.
	Recovery  time.Duration
	Recovered bool
	// BytesLost counts bytes dropped across the cluster by the burst.
	BytesLost int64
	// CtrlDelay/DataDelay are the worst smoothed per-class queueing
	// delays across all sender rings, sampled just before the kill.
	CtrlDelay, DataDelay time.Duration
	// MaxBuffered is the cluster-wide peak of any engine's buffered
	// bytes over the whole round; it must stay within the budget.
	MaxBuffered int64
	// BytesShed is the total data shed by budget/slow-peer protection.
	BytesShed int64
}

// OverloadResult pairs the two rounds.
type OverloadResult struct {
	Unloaded, Loaded OverloadPoint
	// Budget echoes the per-engine memory budget the rounds ran under.
	Budget int64
}

// Overload runs the unloaded baseline and the saturated round.
func Overload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg.applyDefaults()
	res := &OverloadResult{Budget: cfg.MemoryBudget}
	unloaded, err := overloadOne(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("unloaded round: %w", err)
	}
	res.Unloaded = *unloaded
	loaded, err := overloadOne(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("saturated round: %w", err)
	}
	res.Loaded = *loaded
	return res, nil
}

func overloadOne(cfg OverloadConfig, saturate bool) (*OverloadPoint, error) {
	c, err := NewCluster(true)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	algs := make([]*tree.Tree, cfg.N)
	alive := make([]bool, cfg.N)
	baseline := make([]int64, cfg.N)
	for i := cfg.N - 1; i >= 0; i-- {
		algs[i] = &tree.Tree{
			Variant:    tree.Random,
			App:        treeApp,
			LastMile:   1 << 20,
			AutoRejoin: true,
		}
		_, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.StatusInterval = 50 * time.Millisecond
			conf.InactivityTimeout = cfg.InactivityTimeout
			conf.RetryBase = 50 * time.Millisecond
			conf.MemoryBudget = cfg.MemoryBudget
			conf.StallThreshold = cfg.StallThreshold
		})
		if err != nil {
			return nil, err
		}
		alive[i] = true
	}
	if !c.Obs.WaitForNodes(cfg.N, 10*time.Second) {
		return nil, fmt.Errorf("bootstrap incomplete (%d alive)", len(c.Obs.Alive()))
	}
	time.Sleep(200 * time.Millisecond)
	c.Obs.Deploy(nodeID(0), treeApp, cfg.Rate, uint32(cfg.MsgSize))
	time.Sleep(300 * time.Millisecond) // announce flood
	// Contact-shaped joins build a deep tree with real interior nodes
	// (see fig9.go): those are both the saturation bottlenecks and the
	// kill victims.
	for i := 1; i < cfg.N; i++ {
		c.Obs.Join(nodeID(i), treeApp, nodeID((i-1)/2))
		if err := waitJoin(algs[i], 10*time.Second); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	steady := func() bool {
		for i := 1; i < cfg.N; i++ {
			if !alive[i] {
				continue
			}
			if !algs[i].InSession() || algs[i].ReceivedBytes() <= baseline[i] {
				return false
			}
		}
		return true
	}
	mark := func() {
		for i := 1; i < cfg.N; i++ {
			baseline[i] = algs[i].ReceivedBytes()
		}
	}
	mark()
	deadline := time.Now().Add(15 * time.Second)
	for !steady() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session never reached steady state")
		}
		time.Sleep(20 * time.Millisecond)
	}

	shedBytes := func() int64 {
		var total int64
		for _, e := range c.Engines {
			total += e.Counters().BytesShed
		}
		return total
	}
	if saturate {
		// Throttle every receiver's uplink below the stream rate; the
		// source keeps pumping at full rate, so interior forwarding
		// queues fill and stay full.
		for i := 1; i < cfg.N; i++ {
			c.Engines[nodeID(i)].SetBandwidthLocal(protocol.SetBandwidth{
				Class: protocol.BandwidthUp, Rate: cfg.SaturateBW,
			})
		}
		// Let the overload bite before measuring: the first slow-peer
		// shed proves the queues have been full past StallThreshold.
		overloadBy := time.Now().Add(10 * time.Second)
		for shedBytes() == 0 {
			if time.Now().After(overloadBy) {
				return nil, fmt.Errorf("saturation never engaged shedding")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	point := &OverloadPoint{Saturated: saturate, Failures: cfg.Kills}
	for _, e := range c.Engines {
		ctrl, data := e.QueueDelays()
		if ctrl > point.CtrlDelay {
			point.CtrlDelay = ctrl
		}
		if data > point.DataDelay {
			point.DataDelay = data
		}
	}

	// Interior nodes, most children first, are the victims (as in fig9).
	type interior struct{ idx, children int }
	var ints []interior
	for i := 1; i < cfg.N; i++ {
		if n := len(algs[i].Children()); n > 0 {
			ints = append(ints, interior{i, n})
		}
	}
	sort.Slice(ints, func(a, b int) bool {
		if ints[a].children != ints[b].children {
			return ints[a].children > ints[b].children
		}
		return ints[a].idx < ints[b].idx
	})
	k := cfg.Kills
	if k > len(ints) {
		k = len(ints)
	}
	victims := make([]int, k)
	for i := 0; i < k; i++ {
		victims[i] = ints[i].idx
	}
	point.Failures = k
	point.Interior = len(ints)
	point.Orphaned = countOrphaned(algs, victims, cfg.N)

	ops := chaos.Ops{
		Kill: func(n int) {
			alive[n] = false
			c.Net.CrashNode(nodeID(n).Addr())
			c.Engines[nodeID(n)].Stop()
		},
		Mark:      func(chaos.Event) { mark() },
		Recovered: steady,
		Dropped: func() int64 {
			var total int64
			for _, e := range c.Engines {
				total += e.Counters().BytesDropped
			}
			return total
		},
	}
	r := &chaos.Runner{Ops: ops, RecoveryTimeout: cfg.RecoveryTimeout}
	rep := r.Run([]chaos.Event{{Kind: chaos.Kill, Nodes: victims}})
	res := rep.Results[0]
	point.Recovery = res.Recovery
	point.Recovered = res.Recovered
	point.BytesLost = res.DroppedDelta
	point.BytesShed = shedBytes()
	for _, e := range c.Engines {
		if m := e.MaxBufferedBytes(); m > point.MaxBuffered {
			point.MaxBuffered = m
		}
	}
	return point, nil
}

// RenderOverload formats the paired rounds.
func RenderOverload(res *OverloadResult) string {
	var b strings.Builder
	b.WriteString("Overload: interior-kill recovery, unloaded vs saturated data plane\n")
	b.WriteString("  round      kills  orphaned   recovery  ctrl-delay  data-delay   maxbuf  shed(bytes)  lost(bytes)  state\n")
	row := func(name string, p OverloadPoint) {
		state := "recovered"
		if !p.Recovered {
			state = "TIMEOUT"
		}
		fmt.Fprintf(&b, "  %-9s  %5d  %8d  %9s  %10s  %10s  %7d  %11d  %11d  %s\n",
			name, p.Failures, p.Orphaned, p.Recovery.Round(time.Millisecond),
			p.CtrlDelay.Round(time.Millisecond), p.DataDelay.Round(time.Millisecond),
			p.MaxBuffered, p.BytesShed, p.BytesLost, state)
	}
	row("unloaded", res.Unloaded)
	row("saturated", res.Loaded)
	base := res.Unloaded.Recovery
	if base <= 0 {
		base = time.Millisecond
	}
	fmt.Fprintf(&b, "  loaded/unloaded recovery ratio: %.2f  (per-engine budget %d bytes)\n",
		float64(res.Loaded.Recovery)/float64(base), res.Budget)
	return b.String()
}
