// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness boots virtualized iOverlay nodes over
// the in-process virtual network, drives the same workload the paper
// describes (with compressed schedules where the original ran for tens of
// minutes on PlanetLab), and returns the rows/series the paper reports.
// The cmd/ibench binary prints them; bench_test.go regenerates them under
// `go test -bench`.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/observer"
	"repro/internal/simnet"
	"repro/internal/vnet"
)

// KB is the paper's throughput unit (KBytes per second).
const KB = 1024.0

// ObserverID is the conventional observer address in harness clusters.
var ObserverID = message.MakeID("10.255.0.1", 9000)

// Cluster is a virtual deployment: one vnet, an optional observer, and a
// set of engines.
type Cluster struct {
	Net     *vnet.Network
	Obs     *observer.Observer
	Engines map[message.NodeID]*engine.Engine
	order   []message.NodeID
}

// LatencyFromTestbed builds a vnet latency function from a synthetic
// testbed's site coordinates, so virtual links experience wide-area
// propagation delay.
func LatencyFromTestbed(tb *simnet.Testbed) vnet.Option {
	byAddr := make(map[string]simnet.Node, len(tb.Nodes))
	for _, n := range tb.Nodes {
		byAddr[n.ID.Addr()] = n
	}
	return vnet.WithLatencyFunc(func(a, b string) time.Duration {
		na, okA := byAddr[a]
		nb, okB := byAddr[b]
		if !okA || !okB {
			return 0 // observer and other off-testbed endpoints
		}
		return simnet.Latency(na, nb)
	})
}

// NewCluster builds an empty cluster; withObserver adds a started
// observer at ObserverID. Options tune the virtual network (for example
// shallow pipes when fast back-pressure convergence matters).
func NewCluster(withObserver bool, opts ...vnet.Option) (*Cluster, error) {
	c := &Cluster{
		Net:     vnet.New(opts...),
		Engines: make(map[message.NodeID]*engine.Engine),
	}
	if withObserver {
		obs, err := observer.New(observer.Config{
			ID:              ObserverID,
			Transport:       engine.VNet{Net: c.Net},
			RequestInterval: 200 * time.Millisecond,
			BootstrapCount:  16,
			Seed:            1,
		})
		if err != nil {
			c.Net.Close()
			return nil, err
		}
		if err := obs.Start(); err != nil {
			c.Net.Close()
			return nil, err
		}
		c.Obs = obs
	}
	return c, nil
}

// AddNode boots an engine in the cluster.
func (c *Cluster) AddNode(id message.NodeID, alg engine.Algorithm, mut ...func(*engine.Config)) (*engine.Engine, error) {
	cfg := engine.Config{
		ID:             id,
		Transport:      engine.VNet{Net: c.Net},
		Algorithm:      alg,
		StatusInterval: 100 * time.Millisecond,
	}
	if c.Obs != nil {
		cfg.Observer = ObserverID
	}
	for _, m := range mut {
		m(&cfg)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: new %s: %w", id, err)
	}
	if err := e.Start(); err != nil {
		return nil, fmt.Errorf("cluster: start %s: %w", id, err)
	}
	c.Engines[id] = e
	c.order = append(c.order, id)
	return e, nil
}

// Stop tears the whole cluster down.
func (c *Cluster) Stop() {
	for i := len(c.order) - 1; i >= 0; i-- {
		if e, ok := c.Engines[c.order[i]]; ok {
			e.Stop()
		}
	}
	if c.Obs != nil {
		c.Obs.Stop()
	}
	c.Net.Close()
}

// nodeID builds the conventional harness address for node index i.
func nodeID(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.%d.%d", i/250, i%250+1), 7000)
}

// rateOver measures a counter's rate over a window.
func rateOver(window time.Duration, read func() int64) float64 {
	before := read()
	time.Sleep(window)
	return float64(read()-before) / window.Seconds()
}
