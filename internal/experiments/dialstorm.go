package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/tree"
)

// DialStormConfig parameterizes the connection-storm experiment: a live
// multicast session whose source and hottest interior forwarders are
// flooded with half-open connections from thousands of spoofed sources.
// The admission gate must shed the storm at the listener — bounded
// in-flight handshakes, Busy refusals, greylisting — while the
// established tree keeps streaming and the control lane stays empty.
type DialStormConfig struct {
	// N is the session size including the source (default 16).
	N int
	// Rate is the source's send rate in bytes/sec (default 256 KBps).
	Rate int64
	// MsgSize is the data payload size (default 1 KB).
	MsgSize int
	// MaxHandshakes is the per-engine in-flight handshake cap (default
	// admission.DefaultMaxHandshakes).
	MaxHandshakes int
	// StormRate is the dial rate per stormed listener in dials/sec
	// (default 400).
	StormRate int64
	// StormFor is how long the storm runs (default 2s).
	StormFor time.Duration
	// Targets is how many listeners are stormed: the source plus the
	// interior nodes with the most children (default 3).
	Targets int
	// Linger is how long each half-open connection pins its handshake
	// token before hanging up (default 300ms).
	Linger time.Duration
	// MeasureWindow is the pre-storm throughput sampling window
	// (default 1s).
	MeasureWindow time.Duration
	// RecoveryTimeout bounds the post-storm steady-state wait (default 30s).
	RecoveryTimeout time.Duration
}

func (c *DialStormConfig) applyDefaults() {
	if c.N <= 0 {
		c.N = 16
	}
	if c.Rate <= 0 {
		c.Rate = 256 << 10
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.MaxHandshakes <= 0 {
		c.MaxHandshakes = admission.DefaultMaxHandshakes
	}
	if c.StormRate <= 0 {
		c.StormRate = 400
	}
	if c.StormFor <= 0 {
		c.StormFor = 2 * time.Second
	}
	if c.Targets <= 0 {
		c.Targets = 3
	}
	if c.Linger <= 0 {
		c.Linger = 300 * time.Millisecond
	}
	if c.MeasureWindow <= 0 {
		c.MeasureWindow = time.Second
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 30 * time.Second
	}
}

// DialStormResult is the experiment's outcome.
type DialStormResult struct {
	// Targets lists the stormed node indices (0 is the source).
	Targets []int
	// Dials is how many storm connections were attempted.
	Dials int64
	// PreRate and StormTput are aggregate receiver delivery in bytes/sec
	// before and during the storm: established links must not starve.
	PreRate, StormTput float64
	// CtrlDelay is the worst control-lane queueing delay sampled on any
	// stormed engine while the storm ran; admission work never queues
	// behind the data plane, so it stays near zero.
	CtrlDelay time.Duration
	// InFlightPeak is the highest concurrent handshake count any stormed
	// engine saw; it must stay at or under Cap.
	InFlightPeak int64
	Cap          int64
	// Admission outcomes summed over the stormed engines.
	Admitted, ShedBusy, ShedRate, ShedGreylist int64
	// HandshakesFailed counts admitted storm connections that then died
	// pre-registration (bad hello or timeout); AcceptRetries counts
	// transient listener errors survived.
	HandshakesFailed, AcceptRetries int64
	// Recovered/Recovery report the post-storm steady-state probe.
	Recovered bool
	Recovery  time.Duration
}

// DialStorm runs the connection-storm experiment.
func DialStorm(cfg DialStormConfig) (*DialStormResult, error) {
	cfg.applyDefaults()
	c, err := NewCluster(true)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	algs := make([]*tree.Tree, cfg.N)
	baseline := make([]int64, cfg.N)
	for i := cfg.N - 1; i >= 0; i-- {
		algs[i] = &tree.Tree{
			Variant:    tree.Random,
			App:        treeApp,
			LastMile:   1 << 20,
			AutoRejoin: true,
		}
		_, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.StatusInterval = 50 * time.Millisecond
			conf.InactivityTimeout = 600 * time.Millisecond
			conf.RetryBase = 50 * time.Millisecond
			conf.MemoryBudget = 1 << 20
			conf.MaxHandshakes = cfg.MaxHandshakes
		})
		if err != nil {
			return nil, err
		}
	}
	if !c.Obs.WaitForNodes(cfg.N, 10*time.Second) {
		return nil, fmt.Errorf("bootstrap incomplete (%d alive)", len(c.Obs.Alive()))
	}
	time.Sleep(200 * time.Millisecond)
	c.Obs.Deploy(nodeID(0), treeApp, cfg.Rate, uint32(cfg.MsgSize))
	time.Sleep(300 * time.Millisecond) // announce flood
	for i := 1; i < cfg.N; i++ {
		c.Obs.Join(nodeID(i), treeApp, nodeID((i-1)/2))
		if err := waitJoin(algs[i], 10*time.Second); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	recvTotal := func() int64 {
		var total int64
		for i := 1; i < cfg.N; i++ {
			total += algs[i].ReceivedBytes()
		}
		return total
	}
	steady := func() bool {
		for i := 1; i < cfg.N; i++ {
			if !algs[i].InSession() || algs[i].ReceivedBytes() <= baseline[i] {
				return false
			}
		}
		return true
	}
	mark := func() {
		for i := 1; i < cfg.N; i++ {
			baseline[i] = algs[i].ReceivedBytes()
		}
	}
	mark()
	deadline := time.Now().Add(15 * time.Second)
	for !steady() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session never reached steady state")
		}
		time.Sleep(20 * time.Millisecond)
	}

	res := &DialStormResult{Cap: int64(cfg.MaxHandshakes)}
	res.PreRate = rateOver(cfg.MeasureWindow, recvTotal)

	// Storm the source plus the interior nodes with the widest fan-out:
	// those listeners carry the most established links, so starving them
	// would hurt the stream the most.
	type interior struct{ idx, children int }
	var ints []interior
	for i := 1; i < cfg.N; i++ {
		if n := len(algs[i].Children()); n > 0 {
			ints = append(ints, interior{i, n})
		}
	}
	sort.Slice(ints, func(a, b int) bool {
		if ints[a].children != ints[b].children {
			return ints[a].children > ints[b].children
		}
		return ints[a].idx < ints[b].idx
	})
	res.Targets = []int{0}
	for i := 0; i < len(ints) && len(res.Targets) < cfg.Targets; i++ {
		res.Targets = append(res.Targets, ints[i].idx)
	}

	// Sample the stormed engines' control-lane delay while the storm runs:
	// the acceptance criterion is that admission work never queues repair
	// traffic behind the flood.
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(10 * time.Millisecond):
			}
			for _, idx := range res.Targets {
				if ctrl, _ := c.Engines[nodeID(idx)].QueueDelays(); ctrl > res.CtrlDelay {
					res.CtrlDelay = ctrl
				}
			}
		}
	}()

	var dials atomic.Int64
	storm := func(nodes []int, rate int64, d time.Duration) {
		interval := time.Second / time.Duration(rate)
		if interval <= 0 {
			interval = time.Millisecond
		}
		var wg sync.WaitGroup
		t0 := time.Now()
		r0 := recvTotal()
		seq := 0
		for time.Since(t0) < d {
			for _, idx := range nodes {
				seq++
				src := fmt.Sprintf("10.99.%d.%d:%d", seq/250%250, seq%250+1, 40000+seq%20000)
				if seq%4 == 0 { // repeat offender for the rate limiter
					src = fmt.Sprintf("10.99.250.250:%d", 40000+seq)
				}
				dials.Add(1)
				wg.Add(1)
				go func(src, dst string) {
					defer wg.Done()
					conn, err := c.Net.DialFrom(src, dst)
					if err != nil {
						return
					}
					time.Sleep(cfg.Linger)
					conn.Close()
				}(src, nodeID(idx).Addr())
			}
			time.Sleep(interval)
		}
		// The during-storm delivery rate is measured over the storm's own
		// wall time, before the stragglers' lingers drain.
		res.StormTput = float64(recvTotal()-r0) / time.Since(t0).Seconds()
		wg.Wait()
	}

	ops := chaos.Ops{
		DialStorm: storm,
		Mark:      func(chaos.Event) { mark() },
		Recovered: steady,
	}
	r := &chaos.Runner{Ops: ops, RecoveryTimeout: cfg.RecoveryTimeout}
	rep := r.Run([]chaos.Event{{
		Kind:     chaos.DialStorm,
		Nodes:    res.Targets,
		Rate:     cfg.StormRate,
		Duration: cfg.StormFor,
	}})
	close(stopSampling)
	samplerDone.Wait()

	res.Dials = dials.Load()
	res.Recovered = rep.Results[0].Recovered
	res.Recovery = rep.Results[0].Recovery
	for _, idx := range res.Targets {
		e := c.Engines[nodeID(idx)]
		st := e.Admission()
		if st.InFlightPeak > res.InFlightPeak {
			res.InFlightPeak = st.InFlightPeak
		}
		res.Admitted += st.Admitted
		res.ShedBusy += st.ShedBusy
		res.ShedRate += st.ShedRate
		res.ShedGreylist += st.ShedGreylist
		cnt := e.Counters()
		res.HandshakesFailed += cnt.HandshakesFailed
		res.AcceptRetries += cnt.AcceptRetries
	}
	return res, nil
}

// RenderDialStorm formats the experiment's outcome.
func RenderDialStorm(res *DialStormResult) string {
	var b strings.Builder
	b.WriteString("DialStorm: half-open connection flood vs a live stream\n")
	fmt.Fprintf(&b, "  stormed listeners %v, %d dials attempted\n", res.Targets, res.Dials)
	fmt.Fprintf(&b, "  delivered  pre-storm %8.1f KB/s   during storm %8.1f KB/s  (%.0f%% retained)\n",
		res.PreRate/KB, res.StormTput/KB, 100*res.StormTput/max1(res.PreRate))
	fmt.Fprintf(&b, "  handshakes in-flight peak %d / cap %d   ctrl-delay max %s\n",
		res.InFlightPeak, res.Cap, res.CtrlDelay.Round(time.Millisecond))
	fmt.Fprintf(&b, "  admission  admitted %d  shed busy %d / rate %d / greylist %d\n",
		res.Admitted, res.ShedBusy, res.ShedRate, res.ShedGreylist)
	fmt.Fprintf(&b, "  aftermath  failed handshakes %d  accept retries %d\n",
		res.HandshakesFailed, res.AcceptRetries)
	state := "recovered"
	if !res.Recovered {
		state = "TIMEOUT"
	}
	fmt.Fprintf(&b, "  post-storm steady state: %s in %s\n",
		state, res.Recovery.Round(time.Millisecond))
	return b.String()
}

func max1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}
