package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/flowsim"
	"repro/internal/message"
	"repro/internal/multicast"
	"repro/internal/protocol"
	"repro/internal/vnet"
)

// The seven-node correctness topology of Figs. 6 and 7: A->{B,C},
// B->{D,F}, C->{D,G}, D->E, E->{F,G}.
var (
	fig6Names = []string{"A", "B", "C", "D", "E", "F", "G"}
	fig6Edges = map[string][]string{
		"A": {"B", "C"},
		"B": {"D", "F"},
		"C": {"D", "G"},
		"D": {"E"},
		"E": {"F", "G"},
	}
)

// EdgeRates maps "AB"-style edges to throughput in bytes/sec.
type EdgeRates map[string]float64

// Fig6Phase is one panel of Fig. 6 or Fig. 7.
type Fig6Phase struct {
	Name      string
	Measured  EdgeRates
	Predicted EdgeRates // flowsim steady-state for the same scenario
	Closed    []string  // edges torn down by node terminations
}

// Fig6Config parameterizes the correctness experiments.
type Fig6Config struct {
	// BufferMsgs is the engine buffer capacity (5 in Fig. 6, 10000 in
	// Fig. 7).
	BufferMsgs int
	// MsgSize is the data payload (5 KB in the paper).
	MsgSize int
	// Settle is the wait before measuring each phase.
	Settle time.Duration
	// Window is the measurement window.
	Window time.Duration
}

func (c *Fig6Config) applyDefaults(buffered bool) {
	if c.BufferMsgs <= 0 {
		if buffered {
			c.BufferMsgs = 10000
		} else {
			c.BufferMsgs = 5
		}
	}
	if c.MsgSize <= 0 {
		// 1 KB rather than the paper's 5 KB so per-hop buffering (rings
		// plus virtual-network pipes) drains within seconds at the
		// 15–30 KBps back-pressured rates; the steady-state rates are
		// independent of message size.
		c.MsgSize = 1 << 10
	}
	if c.Settle <= 0 {
		c.Settle = 3 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 1500 * time.Millisecond
	}
}

// fig6Cluster boots the seven-node topology with A capped at 400 KBps
// total and a back-to-back source at A. Shallow vnet pipes keep per-hop
// byte backlog small so convergence after runtime bandwidth changes is
// fast, like small kernel socket buffers would.
func fig6Cluster(cfg Fig6Config, maxParked int) (*Cluster, map[string]message.NodeID, error) {
	c, err := NewCluster(false, vnet.WithPipeCapacity(4<<10))
	if err != nil {
		return nil, nil, err
	}
	ids := make(map[string]message.NodeID, len(fig6Names))
	for i, name := range fig6Names {
		ids[name] = nodeID(i)
	}
	for i := len(fig6Names) - 1; i >= 0; i-- {
		name := fig6Names[i]
		alg := &multicast.Forwarder{}
		for _, dst := range fig6Edges[name] {
			alg.DefaultRoutes = append(alg.DefaultRoutes, ids[dst])
		}
		_, err := c.AddNode(ids[name], alg, func(conf *engine.Config) {
			conf.RecvBuf, conf.SendBuf = cfg.BufferMsgs, cfg.BufferMsgs
			conf.MaxParked = maxParked
			if name == "A" {
				conf.TotalBW = 400 << 10
			}
		})
		if err != nil {
			c.Stop()
			return nil, nil, err
		}
	}
	c.Engines[ids["A"]].StartSource(1, 0, cfg.MsgSize)
	return c, ids, nil
}

// measureEdges samples per-link throughput from each sender's meters.
func measureEdges(c *Cluster, ids map[string]message.NodeID, window time.Duration) (EdgeRates, []string) {
	type key struct{ from, to string }
	before := make(map[key]int64)
	read := func() map[key]int64 {
		out := make(map[key]int64)
		for from, dsts := range fig6Edges {
			e, ok := c.Engines[ids[from]]
			if !ok {
				continue
			}
			snap := e.Snapshot()
			for _, dst := range dsts {
				for _, l := range snap.Downstream {
					if l.Peer == ids[dst] {
						out[key{from, dst}] = l.BytesTotal
					}
				}
			}
		}
		return out
	}
	before = read()
	time.Sleep(window)
	after := read()

	rates := make(EdgeRates)
	var closed []string
	for from, dsts := range fig6Edges {
		for _, dst := range dsts {
			k := key{from, dst}
			a, okA := after[k]
			b, okB := before[k]
			if !okA || !okB {
				closed = append(closed, from+dst)
				continue
			}
			rates[from+dst] = float64(a-b) / window.Seconds()
		}
	}
	sort.Strings(closed)
	return rates, closed
}

// measureStable repeats measureEdges until two consecutive samples agree
// within tolerance (or attempts run out), making the harness robust to
// transient host load during convergence.
func measureStable(c *Cluster, ids map[string]message.NodeID, window time.Duration) (EdgeRates, []string) {
	const (
		attempts = 8
		tol      = 0.2
	)
	prev, closed := measureEdges(c, ids, window)
	for i := 0; i < attempts; i++ {
		cur, curClosed := measureEdges(c, ids, window)
		if ratesStable(prev, cur, tol) {
			return cur, curClosed
		}
		prev, closed = cur, curClosed
	}
	return prev, closed
}

// ratesStable reports whether two samples agree edge-by-edge within the
// relative tolerance (with a small absolute floor for near-idle links).
func ratesStable(a, b EdgeRates, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	const floor = 4 * KB
	for e, ra := range a {
		rb, ok := b[e]
		if !ok {
			return false
		}
		hi := ra
		if rb > hi {
			hi = rb
		}
		if hi < floor {
			continue
		}
		diff := ra - rb
		if diff < 0 {
			diff = -diff
		}
		if diff > tol*hi {
			return false
		}
	}
	return true
}

// fig6Predict runs flowsim on the same scenario.
func fig6Predict(mode flowsim.Mode, dUplink, efLink float64, dead map[string]bool) EdgeRates {
	n := flowsim.New()
	n.AddNode("A", flowsim.NodeCaps{Total: 400 * KB})
	if dUplink > 0 {
		n.AddNode("D", flowsim.NodeCaps{Up: dUplink})
	}
	if efLink > 0 {
		n.SetLinkCap("E", "F", efLink)
	}
	var edges [][2]string
	for from, dsts := range fig6Edges {
		if dead[from] {
			continue
		}
		for _, dst := range dsts {
			if !dead[dst] {
				edges = append(edges, [2]string{from, dst})
			}
		}
	}
	n.AddSession(flowsim.Session{Source: "A", Edges: edges})
	res, err := n.Solve(mode)
	if err != nil {
		return nil
	}
	out := make(EdgeRates)
	for e, r := range res.EdgeRates {
		out[e[0]+e[1]] = r
	}
	return out
}

// Fig6 runs the four panels of Fig. 6: convergence under A's per-node
// cap, back-pressure from D's uplink cap, termination of B, termination
// of G — with small buffers throughout.
func Fig6(cfg Fig6Config) ([]Fig6Phase, error) {
	cfg.applyDefaults(false)
	c, ids, err := fig6Cluster(cfg, 4)
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	var phases []Fig6Phase
	record := func(name string, dUp, ef float64, dead map[string]bool) {
		time.Sleep(cfg.Settle)
		measured, closed := measureStable(c, ids, cfg.Window)
		phases = append(phases, Fig6Phase{
			Name:      name,
			Measured:  measured,
			Predicted: fig6Predict(flowsim.BackPressure, dUp, ef, dead),
			Closed:    closed,
		})
	}

	record("(a) A per-node 400 KBps", 0, 0, nil)

	c.Engines[ids["D"]].SetBandwidthLocal(protocol.SetBandwidth{
		Class: protocol.BandwidthUp, Rate: 30 << 10,
	})
	record("(b) D uplink 30 KBps", 30*KB, 0, nil)

	c.Engines[ids["B"]].Stop()
	delete(c.Engines, ids["B"]) // its frozen meters are not live edges
	record("(c) terminate B", 30*KB, 0, map[string]bool{"B": true})

	c.Engines[ids["G"]].Stop()
	delete(c.Engines, ids["G"])
	record("(d) terminate G", 30*KB, 0, map[string]bool{"B": true, "G": true})
	return phases, nil
}

// Fig7 runs the two panels of Fig. 7: the same topology with very large
// buffers, where bottlenecks stay local within the measurement horizon.
func Fig7(cfg Fig6Config) ([]Fig6Phase, error) {
	cfg.applyDefaults(true)
	c, ids, err := fig6Cluster(cfg, 4*cfg.BufferMsgs)
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	c.Engines[ids["D"]].SetBandwidthLocal(protocol.SetBandwidth{
		Class: protocol.BandwidthUp, Rate: 30 << 10,
	})
	var phases []Fig6Phase
	record := func(name string, ef float64) {
		time.Sleep(cfg.Settle)
		measured, closed := measureStable(c, ids, cfg.Window)
		phases = append(phases, Fig6Phase{
			Name:      name,
			Measured:  measured,
			Predicted: fig6Predict(flowsim.Buffered, 30*KB, ef, nil),
			Closed:    closed,
		})
	}
	record("(a) large buffers, D uplink 30 KBps", 0)

	c.Engines[ids["E"]].SetBandwidthLocal(protocol.SetBandwidth{
		Class: protocol.BandwidthLink, Rate: 15 << 10, Peer: ids["F"],
	})
	record("(b) link EF 15 KBps", 15*KB)
	return phases, nil
}

// RenderFig6 formats phases with measured vs predicted columns.
func RenderFig6(title string, phases []Fig6Phase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var edges []string
	for from, dsts := range fig6Edges {
		for _, dst := range dsts {
			edges = append(edges, from+dst)
		}
	}
	sort.Strings(edges)
	for _, p := range phases {
		fmt.Fprintf(&b, "  %s\n", p.Name)
		for _, e := range edges {
			m, okM := p.Measured[e]
			pr, okP := p.Predicted[e]
			switch {
			case !okM && !okP:
				fmt.Fprintf(&b, "    %s  [closed]\n", e)
			case !okM:
				fmt.Fprintf(&b, "    %s  [closed]      (predicted %.1f KBps)\n", e, pr/KB)
			default:
				fmt.Fprintf(&b, "    %s  %7.1f KBps  (predicted %.1f KBps)\n", e, m/KB, pr/KB)
			}
		}
	}
	return b.String()
}
