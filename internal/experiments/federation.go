package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/message"
	"repro/internal/simnet"
)

// serviceTypes is the pool of primitive service types in the federation
// experiments.
var serviceTypes = []uint32{1, 2, 3, 4, 5}

// fedCluster boots N federation nodes on a synthetic testbed and assigns
// one service per node (types cycling through the pool), waiting for the
// sAware dissemination to populate every registry.
type fedCluster struct {
	*Cluster
	tb   *simnet.Testbed
	algs map[message.NodeID]*federation.Node
}

func newFedCluster(n int, seed int64, policy federation.Selection) (*fedCluster, error) {
	tb := simnet.Generate(simnet.Config{N: n, Seed: seed})
	c, err := NewCluster(true, LatencyFromTestbed(tb))
	if err != nil {
		return nil, err
	}
	fc := &fedCluster{Cluster: c, tb: tb, algs: make(map[message.NodeID]*federation.Node)}
	for i := n - 1; i >= 0; i-- {
		node := tb.Nodes[i]
		alg := &federation.Node{Policy: policy}
		fc.algs[node.ID] = alg
		if _, err := c.AddNode(node.ID, alg, func(conf *engine.Config) {
			conf.StatusInterval = 300 * time.Millisecond
		}); err != nil {
			c.Stop()
			return nil, err
		}
	}
	if !c.Obs.WaitForNodes(n, 15*time.Second) {
		c.Stop()
		return nil, fmt.Errorf("federation: bootstrap incomplete")
	}
	// Nodes that bootstrapped early have stale membership; refresh every
	// view before services start announcing themselves.
	for _, node := range tb.Nodes {
		c.Obs.PushMembership(node.ID)
	}
	time.Sleep(150 * time.Millisecond)
	return fc, nil
}

// assignAll assigns node i the service type serviceTypes[i % len] with
// capacity from the testbed, then waits for dissemination.
func (fc *fedCluster) assignAll(timeout time.Duration) error {
	for i, node := range fc.tb.Nodes {
		typ := serviceTypes[i%len(serviceTypes)]
		fc.Obs.Command(node.ID, federation.TypeAssign,
			federation.Assign{ServiceType: typ, Capacity: node.Bandwidth}.Encode())
	}
	return fc.waitRegistries(timeout)
}

// waitRegistries waits until every node knows at least one instance of
// every type present in the overlay.
func (fc *fedCluster) waitRegistries(timeout time.Duration) error {
	present := make(map[uint32]bool)
	for i := range fc.tb.Nodes {
		present[serviceTypes[i%len(serviceTypes)]] = true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, alg := range fc.algs {
			for typ := range present {
				if alg.KnownInstances(typ) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("federation: registries incomplete after %v", timeout)
}

// sourceFor finds a node hosting the given type.
func (fc *fedCluster) sourceFor(typ uint32) (message.NodeID, *federation.Node) {
	for i, node := range fc.tb.Nodes {
		if serviceTypes[i%len(serviceTypes)] == typ {
			return node.ID, fc.algs[node.ID]
		}
	}
	return message.NodeID{}, nil
}

// federate launches one requirement at the source instance and waits for
// completion there.
func (fc *fedCluster) federate(session uint32, req federation.Requirement, wait time.Duration) ([]message.NodeID, error) {
	src, alg := fc.sourceFor(req.Types[0])
	if alg == nil {
		return nil, fmt.Errorf("federation: no instance of type %d", req.Types[0])
	}
	f := federation.Federate{SessionID: session, Req: req}
	fc.Obs.Command(src, federation.TypeFederate, f.Encode())
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) {
		if assigned, ok := alg.Completed(session); ok {
			return assigned, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("federation: session %d did not complete", session)
}

// overheadTotals sums control bytes (sent) per family across all nodes.
func (fc *fedCluster) overheadTotals() (aware, federate int64) {
	for _, alg := range fc.algs {
		sent := alg.OverheadSent()
		aware += sent[federation.TypeAware]
		federate += sent[federation.TypeFederate] + sent[federation.TypeFederateAck] +
			sent[federation.TypeLoadProbe] + sent[federation.TypeLoadReply]
	}
	return aware, federate
}

// ----- Fig. 14 / 15: one federated complex service on 16 nodes -----

// Fed16Config parameterizes the 16-node service federation experiment.
type Fed16Config struct {
	N      int
	Seed   int64
	Window time.Duration
}

func (c *Fed16Config) applyDefaults() {
	if c.N <= 0 {
		c.N = 16
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
}

// Fed16NodeRow is one node's line in Fig. 15.
type Fed16NodeRow struct {
	Node          message.NodeID
	ServiceType   uint32
	AwareBytes    int64 // Fig. 15(a)
	FederateBytes int64 // Fig. 15(a)
	UpRate        float64
	DownRate      float64 // Fig. 15(b)
}

// Fed16Result is the outcome of the 16-node session (Figs. 14, 15).
type Fed16Result struct {
	Assignment []message.NodeID // Fig. 14: the constructed complex service
	Rows       []Fed16NodeRow
	LastHop    float64 // measured sink throughput, bytes/sec
	// EndToEndDelay is the critical-path propagation delay of the
	// federated service over the testbed's latency model (the paper
	// reports 934.5 ms for its 16-node PlanetLab session).
	EndToEndDelay time.Duration
}

// Fed16 constructs one federated complex service with a DAG requirement
// on a 16-node service overlay (sFlow policy), deploys live data through
// it, and reports per-node overhead and bandwidth.
func Fed16(cfg Fed16Config) (*Fed16Result, error) {
	cfg.applyDefaults()
	fc, err := newFedCluster(cfg.N, cfg.Seed+16, federation.SFlow)
	if err != nil {
		return nil, err
	}
	defer fc.Stop()
	if err := fc.assignAll(10 * time.Second); err != nil {
		return nil, err
	}
	// A diamond-with-tail DAG: 1 -> {2, 3} -> 4 -> 5.
	req := federation.Requirement{
		Types:     []uint32{1, 2, 3, 4, 5},
		Edges:     [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}},
		Bandwidth: 64 << 10,
	}
	const session = 900
	assigned, err := fc.federate(session, req, 10*time.Second)
	if err != nil {
		return nil, err
	}
	// Deploy live data through the federated service.
	fc.Obs.Deploy(assigned[0], session, 200<<10, 1024)
	sink := fc.algs[assigned[len(assigned)-1]]
	time.Sleep(500 * time.Millisecond)
	lastHop := rateOver(cfg.Window, func() int64 { return sink.ReceivedBytes(session) })

	res := &Fed16Result{
		Assignment:    assigned,
		LastHop:       lastHop,
		EndToEndDelay: criticalPathDelay(fc.tb, req, assigned),
	}
	for i, node := range fc.tb.Nodes {
		alg := fc.algs[node.ID]
		sent, recv := alg.OverheadSent(), alg.OverheadRecv()
		snap := fc.Engines[node.ID].Snapshot()
		var up, down float64
		for _, l := range snap.Downstream {
			if l.Peer != ObserverID {
				up += l.Rate
			}
		}
		for _, l := range snap.Upstreams {
			down += l.Rate
		}
		res.Rows = append(res.Rows, Fed16NodeRow{
			Node:        node.ID,
			ServiceType: serviceTypes[i%len(serviceTypes)],
			AwareBytes:  sent[federation.TypeAware] + recv[federation.TypeAware],
			FederateBytes: sent[federation.TypeFederate] + recv[federation.TypeFederate] +
				sent[federation.TypeFederateAck] + recv[federation.TypeFederateAck],
			UpRate:   up,
			DownRate: down,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].UpRate+res.Rows[i].DownRate > res.Rows[j].UpRate+res.Rows[j].DownRate
	})
	return res, nil
}

// criticalPathDelay computes the longest propagation path through the
// requirement DAG under the testbed latency model.
func criticalPathDelay(tb *simnet.Testbed, req federation.Requirement, assigned []message.NodeID) time.Duration {
	byID := make(map[message.NodeID]simnet.Node)
	for _, n := range tb.Nodes {
		byID[n.ID] = n
	}
	longest := make([]time.Duration, len(req.Types))
	for _, e := range req.Edges { // edges are in topological order
		u, v := e[0], e[1]
		na, okA := byID[assigned[u]]
		nb, okB := byID[assigned[v]]
		if !okA || !okB {
			continue
		}
		d := longest[u] + simnet.Latency(na, nb)
		if d > longest[v] {
			longest[v] = d
		}
	}
	var max time.Duration
	for _, d := range longest {
		if d > max {
			max = d
		}
	}
	return max
}

// RenderFed16 formats Figs. 14 and 15.
func RenderFed16(r *Fed16Result) string {
	var b strings.Builder
	b.WriteString("Fig 14: constructed complex service (requirement vertices -> instances)\n")
	for i, n := range r.Assignment {
		fmt.Fprintf(&b, "  vertex %d -> %s\n", i, n)
	}
	fmt.Fprintf(&b, "  last-hop throughput: %.0f Bps\n", r.LastHop)
	fmt.Fprintf(&b, "  end-to-end delay (modeled critical path): %s\n", r.EndToEndDelay.Round(time.Millisecond))
	b.WriteString("Fig 15: per-node control overhead and bandwidth\n")
	b.WriteString("  node                 svc  sAware(B)  sFederate(B)  up(KBps)  down(KBps)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s %3d  %9d  %12d  %8.1f  %10.1f\n",
			row.Node, row.ServiceType, row.AwareBytes, row.FederateBytes,
			row.UpRate/KB, row.DownRate/KB)
	}
	return b.String()
}

// ----- Fig. 16: sAware overhead over time (30-node overlay) -----

// Fig16Config parameterizes the time-series overhead experiment: the
// paper establishes a 30-node service overlay with an average of three
// new services per minute, observing sAware overhead over 22 minutes.
// MinuteDur compresses each paper-minute.
type Fig16Config struct {
	N              int
	Seed           int64
	Minutes        int
	ServicesPerMin int
	MinuteDur      time.Duration
}

func (c *Fig16Config) applyDefaults() {
	if c.N <= 0 {
		c.N = 30
	}
	if c.Minutes <= 0 {
		c.Minutes = 22
	}
	if c.ServicesPerMin <= 0 {
		c.ServicesPerMin = 3
	}
	if c.MinuteDur <= 0 {
		c.MinuteDur = 250 * time.Millisecond
	}
}

// Fig16Point is the sAware bytes generated in one paper-minute.
type Fig16Point struct {
	Minute int
	Bytes  int64
}

// Fig16 measures sAware control overhead over time while services join
// the overlay at the configured rate (joining stops when every node
// hosts a service, which reproduces the paper's decay after ~10
// minutes).
func Fig16(cfg Fig16Config) ([]Fig16Point, error) {
	cfg.applyDefaults()
	fc, err := newFedCluster(cfg.N, cfg.Seed+77, federation.SFlow)
	if err != nil {
		return nil, err
	}
	defer fc.Stop()

	var points []Fig16Point
	next := 0
	prev := int64(0)
	for minute := 1; minute <= cfg.Minutes; minute++ {
		for k := 0; k < cfg.ServicesPerMin && next < cfg.N; k++ {
			node := fc.tb.Nodes[next]
			typ := serviceTypes[next%len(serviceTypes)]
			fc.Obs.Command(node.ID, federation.TypeAssign,
				federation.Assign{ServiceType: typ, Capacity: node.Bandwidth}.Encode())
			next++
		}
		time.Sleep(cfg.MinuteDur)
		aware, _ := fc.overheadTotals()
		points = append(points, Fig16Point{Minute: minute, Bytes: aware - prev})
		prev = aware
	}
	return points, nil
}

// RenderFig16 formats the time series.
func RenderFig16(points []Fig16Point) string {
	var b strings.Builder
	b.WriteString("Fig 16: sAware overhead over time, 30-node overlay (bytes per paper-minute)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  minute %2d: %8d\n", p.Minute, p.Bytes)
	}
	return b.String()
}

// ----- Fig. 17 / 18 / 19: overhead and bandwidth vs network size -----

// FedSweepConfig parameterizes the network-size sweeps.
type FedSweepConfig struct {
	Sizes        []int
	Seed         int64
	Requirements int // federated sessions per size (paper: 500)
	SessionBW    int64
	Policy       federation.Selection
}

func (c *FedSweepConfig) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{5, 10, 15, 20, 25, 30, 35, 40}
	}
	if c.Requirements <= 0 {
		c.Requirements = 500
	}
	if c.SessionBW <= 0 {
		c.SessionBW = 100 << 10
	}
	if c.Policy == 0 {
		c.Policy = federation.SFlow
	}
}

// Fig17Row is one sweep point: total control overhead by family.
type Fig17Row struct {
	Size          int
	AwareBytes    int64
	FederateBytes int64
	Completed     int
	Failed        int
	// PerNode carries Fig. 18's per-node breakdown for this size.
	PerNode []Fig18Row
	// MeanBandwidth is Fig. 19's end-to-end bandwidth estimate.
	MeanBandwidth float64
}

// Fig18Row is one node's control overhead.
type Fig18Row struct {
	Node          message.NodeID
	AwareBytes    int64
	FederateBytes int64
}

// FedSweep runs the network-size sweep: for each size, build the service
// overlay, issue the requirement stream, and account control overhead
// (Fig. 17), per-node overhead (Fig. 18) and end-to-end bandwidth of the
// federated services (Fig. 19).
func FedSweep(cfg FedSweepConfig) ([]Fig17Row, error) {
	cfg.applyDefaults()
	var rows []Fig17Row
	for _, size := range cfg.Sizes {
		row, err := fedSweepOne(size, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func fedSweepOne(size int, cfg FedSweepConfig) (*Fig17Row, error) {
	fc, err := newFedCluster(size, cfg.Seed+int64(size), cfg.Policy)
	if err != nil {
		return nil, err
	}
	defer fc.Stop()
	if err := fc.assignAll(15 * time.Second); err != nil {
		return nil, err
	}

	row := &Fig17Row{Size: size}
	var sessions []uint32
	srcByType := make(map[uint32]*federation.Node)
	for _, typ := range serviceTypes {
		_, alg := fc.sourceFor(typ)
		srcByType[typ] = alg
	}
	for s := 0; s < cfg.Requirements; s++ {
		// Random chain requirement over 3–4 service types.
		length := 3 + s%2
		types := make([]uint32, 0, length)
		for k := 0; k < length; k++ {
			types = append(types, serviceTypes[(s+k)%len(serviceTypes)])
		}
		req := federation.Chain(cfg.SessionBW, types...)
		session := uint32(1000 + s)
		if _, err := fc.federate(session, req, 5*time.Second); err != nil {
			row.Failed++
			continue
		}
		sessions = append(sessions, session)
		row.Completed++
	}
	row.AwareBytes, row.FederateBytes = fc.overheadTotals()
	for _, node := range fc.tb.Nodes {
		sent := fc.algs[node.ID].OverheadSent()
		recv := fc.algs[node.ID].OverheadRecv()
		row.PerNode = append(row.PerNode, Fig18Row{
			Node:       node.ID,
			AwareBytes: sent[federation.TypeAware] + recv[federation.TypeAware],
			FederateBytes: sent[federation.TypeFederate] + recv[federation.TypeFederate] +
				sent[federation.TypeFederateAck] + recv[federation.TypeFederateAck] +
				sent[federation.TypeLoadProbe] + recv[federation.TypeLoadProbe] +
				sent[federation.TypeLoadReply] + recv[federation.TypeLoadReply],
		})
	}
	sort.Slice(row.PerNode, func(i, j int) bool {
		return row.PerNode[i].FederateBytes > row.PerNode[j].FederateBytes
	})
	row.MeanBandwidth = fc.meanSessionBandwidth(sessions)
	return row, nil
}

// meanSessionBandwidth estimates Fig. 19's end-to-end bandwidth: for each
// completed session, the bottleneck instance's capacity divided by the
// sessions sharing it.
func (fc *fedCluster) meanSessionBandwidth(sessions []uint32) float64 {
	if len(sessions) == 0 {
		return 0
	}
	var sum float64
	counted := 0
	for _, s := range sessions {
		var assigned []message.NodeID
		for _, alg := range fc.algs {
			if a, ok := alg.Completed(s); ok {
				assigned = a
				break
			}
		}
		if assigned == nil {
			continue
		}
		bottleneck := -1.0
		seen := make(map[message.NodeID]bool)
		for _, node := range assigned {
			if node.IsZero() || seen[node] {
				continue
			}
			seen[node] = true
			capacity := float64(fc.tb.BandwidthOf(node))
			load := fc.algs[node].SessionCount()
			if load < 1 {
				load = 1
			}
			share := capacity / float64(load)
			if bottleneck < 0 || share < bottleneck {
				bottleneck = share
			}
		}
		if bottleneck >= 0 {
			sum += bottleneck
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// RenderFig17 formats the overhead sweep.
func RenderFig17(rows []Fig17Row) string {
	var b strings.Builder
	b.WriteString("Fig 17: control overhead vs network size\n")
	b.WriteString("  size  sAware(B)  sFederate(B)  completed  failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4d  %9d  %12d  %9d  %6d\n",
			r.Size, r.AwareBytes, r.FederateBytes, r.Completed, r.Failed)
	}
	return b.String()
}

// RenderFig18 formats the per-node breakdown of one sweep point.
func RenderFig18(row Fig17Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 18: per-node control overhead (network size %d)\n", row.Size)
	for _, n := range row.PerNode {
		fmt.Fprintf(&b, "  %-20s  sAware %8d B   sFederate %8d B\n",
			n.Node, n.AwareBytes, n.FederateBytes)
	}
	return b.String()
}

// RenderFig19 compares policies.
func RenderFig19(byPolicy map[federation.Selection][]Fig17Row) string {
	var b strings.Builder
	b.WriteString("Fig 19: end-to-end bandwidth of federated services (Bps)\n")
	b.WriteString("  size     sFlow     fixed    random\n")
	var sizes []int
	for _, rows := range byPolicy {
		for _, r := range rows {
			sizes = append(sizes, r.Size)
		}
		break
	}
	for i, size := range sizes {
		get := func(p federation.Selection) float64 {
			rows := byPolicy[p]
			if i < len(rows) {
				return rows[i].MeanBandwidth
			}
			return 0
		}
		fmt.Fprintf(&b, "  %4d  %8.0f  %8.0f  %8.0f\n",
			size, get(federation.SFlow), get(federation.Fixed), get(federation.RandomSel))
	}
	return b.String()
}
