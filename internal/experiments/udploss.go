package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/multicast"
	"repro/internal/vnet"
)

// UDPLossConfig parameterizes the datagram loss sweep: a short chain of
// virtualized nodes with the data lane on the vnet datagram transport,
// seeded loss injected on the last hop, and a paced source so measured
// loss comes from the faults rather than ring overflow. The sweep
// answers the two questions the loss-tolerant workload class cares
// about: how much payload survives each loss rate, and what the
// datagram plane costs against TCP when the network is clean.
type UDPLossConfig struct {
	// Nodes is the chain length (default 3: source, relay, tail; the
	// relay→tail hop carries the injected loss).
	Nodes int
	// MsgSize is the payload per message (default 1 KB — a single
	// datagram fragment, so packet loss maps 1:1 to message loss).
	MsgSize int
	// Rate paces the source during lossy runs, in bytes/sec (default
	// 2 MB/s).
	Rate int64
	// LossRates are the per-packet drop probabilities to sweep
	// (default 0, 0.1%, 1%, 5%).
	LossRates []float64
	// Warmup and Window bound each measurement.
	Warmup, Window time.Duration
	// Seed feeds the vnet fault source.
	Seed int64
}

func (c *UDPLossConfig) applyDefaults() {
	if c.Nodes < 2 {
		c.Nodes = 3
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.Rate <= 0 {
		c.Rate = 2 << 20
	}
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.001, 0.01, 0.05}
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
}

// UDPLossRow is one point of the sweep.
type UDPLossRow struct {
	Loss       float64 // injected per-packet drop probability
	Delivered  float64 // payload fraction surviving the lossy hop
	Throughput float64 // bytes/sec at the chain tail
}

// UDPLossResult is the sweep plus the clean-network baselines: the same
// chain, unpaced, over TCP-style stream links and over the datagram
// plane.
type UDPLossResult struct {
	TCPBaseline float64 // bytes/sec at the tail, stream transport
	UDPBaseline float64 // bytes/sec at the tail, datagram transport
	Rows        []UDPLossRow
}

// UDPLoss runs the datagram loss sweep.
func UDPLoss(cfg UDPLossConfig) (UDPLossResult, error) {
	cfg.applyDefaults()
	var res UDPLossResult
	var err error
	if res.TCPBaseline, err = udpLossBaseline(cfg, false); err != nil {
		return res, err
	}
	if res.UDPBaseline, err = udpLossBaseline(cfg, true); err != nil {
		return res, err
	}
	for _, loss := range cfg.LossRates {
		row, rerr := udpLossOne(cfg, loss)
		if rerr != nil {
			return res, rerr
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// udpLossChain boots the chain and returns the per-node forwarders.
func udpLossChain(c *Cluster, cfg UDPLossConfig, datagram bool) ([]*multicast.Forwarder, error) {
	algs := make([]*multicast.Forwarder, cfg.Nodes)
	for i := cfg.Nodes - 1; i >= 0; i-- {
		algs[i] = &multicast.Forwarder{}
		if i < cfg.Nodes-1 {
			algs[i].DefaultRoutes = []message.NodeID{nodeID(i + 1)}
		}
		if _, err := c.AddNode(nodeID(i), algs[i], func(conf *engine.Config) {
			conf.RecvBuf, conf.SendBuf = 512, 512
			conf.StatusInterval = time.Second
			conf.DatagramData = datagram
		}); err != nil {
			return nil, err
		}
	}
	return algs, nil
}

// udpLossBaseline measures unpaced chain throughput on a clean network.
func udpLossBaseline(cfg UDPLossConfig, datagram bool) (float64, error) {
	const app = 1
	c, err := NewCluster(false, vnet.WithSeed(cfg.Seed))
	if err != nil {
		return 0, err
	}
	defer c.Stop()
	algs, err := udpLossChain(c, cfg, datagram)
	if err != nil {
		return 0, err
	}
	c.Engines[nodeID(0)].StartSource(app, 0, cfg.MsgSize)
	time.Sleep(cfg.Warmup)
	tail := algs[cfg.Nodes-1]
	return rateOver(cfg.Window, func() int64 { return tail.ReceivedBytes(app) }), nil
}

// udpLossOne measures one loss rate: seeded drops on the last hop only,
// so the delivered fraction is the relay-in vs tail-in message ratio
// over the same window (messages are fixed-size single fragments, so
// the message ratio IS the payload ratio) — uncontaminated by the
// clean hops.
func udpLossOne(cfg UDPLossConfig, loss float64) (UDPLossRow, error) {
	const app = 1
	c, err := NewCluster(false, vnet.WithSeed(cfg.Seed))
	if err != nil {
		return UDPLossRow{}, err
	}
	defer c.Stop()
	algs, err := udpLossChain(c, cfg, true)
	if err != nil {
		return UDPLossRow{}, err
	}
	relayAddr := nodeID(cfg.Nodes - 2).Addr()
	tailAddr := nodeID(cfg.Nodes - 1).Addr()
	c.Net.DgramFaults(relayAddr, tailAddr, loss, 0, 0)

	c.Engines[nodeID(0)].StartSource(app, cfg.Rate, cfg.MsgSize)
	time.Sleep(cfg.Warmup)
	relay := algs[cfg.Nodes-2]
	tail := algs[cfg.Nodes-1]
	r0, t0 := relay.SeenMessages(app), tail.SeenMessages(app)
	b0 := tail.ReceivedBytes(app)
	time.Sleep(cfg.Window)
	rd := relay.SeenMessages(app) - r0
	td := tail.SeenMessages(app) - t0
	bd := tail.ReceivedBytes(app) - b0
	row := UDPLossRow{Loss: loss, Throughput: float64(bd) / cfg.Window.Seconds()}
	if rd > 0 {
		row.Delivered = float64(td) / float64(rd)
	}
	return row, nil
}

// RenderUDPLoss formats the sweep for the report.
func RenderUDPLoss(res UDPLossResult) string {
	var b strings.Builder
	b.WriteString("UDP loss sweep: chain delivery over the datagram data plane\n")
	fmt.Fprintf(&b, "baseline (0%% loss, unpaced): tcp %.2f MBps, udp %.2f MBps (udp/tcp %.2f)\n",
		res.TCPBaseline/(1024*1024), res.UDPBaseline/(1024*1024),
		res.UDPBaseline/res.TCPBaseline)
	b.WriteString(" loss%  delivered%  tail throughput (KBps)\n")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%6.2f  %10.2f  %22.1f\n",
			r.Loss*100, r.Delivered*100, r.Throughput/KB)
	}
	return b.String()
}
