package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/tree"
)

// treeApp is the dissemination session id used by the tree experiments.
const treeApp = 1

// TreeEdge is one parent->child link of a constructed tree.
type TreeEdge struct {
	Parent, Child message.NodeID
	Rate          float64 // measured bytes/sec, when sampled
}

// Table3Row is one row of Table 3: per-node degree and stress under each
// construction algorithm.
type Table3Row struct {
	Node   string
	Degree map[tree.Variant]int
	Stress map[tree.Variant]float64
}

// Fig9Result is one panel of Fig. 9: the tree one variant builds on the
// five-node session, with measured per-receiver throughput.
type Fig9Result struct {
	Variant    tree.Variant
	Edges      []TreeEdge
	Throughput map[string]float64 // receiver name -> bytes/sec
}

// TreeSmallConfig parameterizes the five-node experiment.
type TreeSmallConfig struct {
	MsgSize  int
	JoinWait time.Duration // settle after each join (stress exchange)
	Window   time.Duration
	Variants []tree.Variant
}

func (c *TreeSmallConfig) applyDefaults() {
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.JoinWait <= 0 {
		c.JoinWait = 300 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if len(c.Variants) == 0 {
		c.Variants = []tree.Variant{tree.Unicast, tree.Random, tree.StressAware}
	}
}

// The five-node session of Fig. 9 / Table 3: S is the source; the
// annotated per-node available bandwidths are in KBps; nodes join in the
// order D, A, C, B.
var (
	treeSmallNames = []string{"S", "A", "B", "C", "D"}
	treeSmallBW    = map[string]int64{
		"S": 200 << 10, "A": 500 << 10, "B": 100 << 10, "C": 200 << 10, "D": 100 << 10,
	}
	treeSmallJoinOrder = []string{"D", "A", "C", "B"}
)

// TreeSmall runs the five-node session under every variant, returning
// Table 3 and the Fig. 9 panels.
func TreeSmall(cfg TreeSmallConfig) ([]Table3Row, []Fig9Result, error) {
	cfg.applyDefaults()
	rows := make(map[string]*Table3Row, len(treeSmallNames))
	for _, n := range treeSmallNames {
		rows[n] = &Table3Row{
			Node:   n,
			Degree: make(map[tree.Variant]int),
			Stress: make(map[tree.Variant]float64),
		}
	}
	var figs []Fig9Result
	for _, v := range cfg.Variants {
		fig, degrees, stresses, err := treeSmallOne(v, cfg)
		if err != nil {
			return nil, nil, err
		}
		figs = append(figs, *fig)
		for n, d := range degrees {
			rows[n].Degree[v] = d
			rows[n].Stress[v] = stresses[n]
		}
	}
	ordered := make([]Table3Row, 0, len(treeSmallNames))
	for _, n := range treeSmallNames {
		ordered = append(ordered, *rows[n])
	}
	return ordered, figs, nil
}

func treeSmallOne(v tree.Variant, cfg TreeSmallConfig) (*Fig9Result, map[string]int, map[string]float64, error) {
	c, err := NewCluster(true)
	if err != nil {
		return nil, nil, nil, err
	}
	defer c.Stop()

	ids := make(map[string]message.NodeID)
	names := make(map[message.NodeID]string)
	algs := make(map[string]*tree.Tree)
	for i, n := range treeSmallNames {
		ids[n] = nodeID(i)
		names[ids[n]] = n
	}
	// Boot receivers first, the source last, so the source's bootstrap
	// reply covers the whole membership for the sAnnounce flood.
	bootOrder := []string{"A", "B", "C", "D", "S"}
	for _, n := range bootOrder {
		name := n
		algs[name] = &tree.Tree{Variant: v, App: treeApp, LastMile: treeSmallBW[name]}
		_, err := c.AddNode(ids[name], algs[name], func(conf *engine.Config) {
			conf.UpBW = treeSmallBW[name]
			conf.DownBW = treeSmallBW[name]
			conf.RecvBuf, conf.SendBuf = 16, 16
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if !c.Obs.WaitForNodes(len(treeSmallNames), 5*time.Second) {
		return nil, nil, nil, fmt.Errorf("tree: bootstrap incomplete")
	}
	time.Sleep(100 * time.Millisecond) // boot replies propagate
	c.Obs.Deploy(ids["S"], treeApp, 0, uint32(cfg.MsgSize))
	time.Sleep(200 * time.Millisecond) // announce flood

	for _, n := range treeSmallJoinOrder {
		c.Obs.Join(ids[n], treeApp, message.NodeID{})
		if err := waitJoin(algs[n], 5*time.Second); err != nil {
			return nil, nil, nil, fmt.Errorf("tree %s: %s: %w", v, n, err)
		}
		time.Sleep(cfg.JoinWait)
	}

	// Measure per-receiver throughput.
	before := make(map[string]int64)
	for _, n := range treeSmallJoinOrder {
		before[n] = algs[n].ReceivedBytes()
	}
	time.Sleep(cfg.Window)
	throughput := make(map[string]float64)
	for _, n := range treeSmallJoinOrder {
		throughput[n] = float64(algs[n].ReceivedBytes()-before[n]) / cfg.Window.Seconds()
	}

	fig := &Fig9Result{Variant: v, Throughput: throughput}
	degrees := make(map[string]int)
	stresses := make(map[string]float64)
	for _, n := range treeSmallNames {
		degrees[n] = algs[n].Degree()
		stresses[n] = algs[n].Stress()
		if p, ok := algs[n].Parent(); ok {
			fig.Edges = append(fig.Edges, TreeEdge{Parent: p, Child: ids[n]})
		}
	}
	sort.Slice(fig.Edges, func(i, j int) bool {
		if fig.Edges[i].Parent != fig.Edges[j].Parent {
			return fig.Edges[i].Parent.Less(fig.Edges[j].Parent)
		}
		return fig.Edges[i].Child.Less(fig.Edges[j].Child)
	})
	return fig, degrees, stresses, nil
}

func waitJoin(t *tree.Tree, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if t.InSession() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("join timed out")
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: tree construction algorithms — node degree and stress (1/100 KBps)\n")
	b.WriteString("node   degree(unicast/random/ns-aware)   stress(unicast/random/ns-aware)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s        %d / %d / %d                     %.2f / %.2f / %.2f\n",
			r.Node,
			r.Degree[tree.Unicast], r.Degree[tree.Random], r.Degree[tree.StressAware],
			r.Stress[tree.Unicast], r.Stress[tree.Random], r.Stress[tree.StressAware])
	}
	return b.String()
}

// RenderFig9 formats the per-variant trees and throughput.
func RenderFig9(figs []Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig 9: tree construction — topology and receiver throughput (KBps)\n")
	for _, f := range figs {
		fmt.Fprintf(&b, "  %s tree:\n", f.Variant)
		for _, e := range f.Edges {
			fmt.Fprintf(&b, "    %s -> %s\n", e.Parent, e.Child)
		}
		var names []string
		for n := range f.Throughput {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "    throughput %s: %.1f\n", n, f.Throughput[n]/KB)
		}
	}
	return b.String()
}

// ----- Fig. 11 / 12 / 13: the wide-area (simulated PlanetLab) runs -----

// Fig11Config parameterizes the large-scale tree experiment.
type Fig11Config struct {
	// N is the overlay size (81 in the paper).
	N int
	// Seed fixes the synthetic testbed.
	Seed int64
	// SourceBW is the source's last-mile bandwidth (100 KBps).
	SourceBW int64
	// MsgSize is the data payload size.
	MsgSize int
	// JoinGap spaces the joins.
	JoinGap time.Duration
	// Window is the throughput measurement window.
	Window time.Duration
	// Variants selects the algorithms to compare.
	Variants []tree.Variant
}

func (c *Fig11Config) applyDefaults() {
	if c.N <= 0 {
		c.N = 81
	}
	if c.SourceBW <= 0 {
		c.SourceBW = 100 << 10
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1 << 10
	}
	if c.JoinGap <= 0 {
		c.JoinGap = 40 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 3 * time.Second
	}
	if len(c.Variants) == 0 {
		c.Variants = []tree.Variant{tree.Unicast, tree.Random, tree.StressAware}
	}
}

// Fig11Variant is one algorithm's large-scale outcome.
type Fig11Variant struct {
	Variant     tree.Variant
	Throughputs []float64 // per receiver, bytes/sec, sorted descending
	Stresses    []float64 // per member, 1/100KBps units, sorted ascending
	Edges       []TreeEdge
	Joined      int
	Mean        float64
}

// Fig11 runs the wide-area tree comparison on a synthetic testbed with
// per-node bandwidth uniform in 50–200 KBps (the paper's PlanetLab
// setup), returning per-receiver throughput (Fig. 11a), the node-stress
// distribution (Fig. 11b), and the constructed topology (Figs. 12/13).
func Fig11(cfg Fig11Config) ([]Fig11Variant, error) {
	cfg.applyDefaults()
	var out []Fig11Variant
	for _, v := range cfg.Variants {
		r, err := fig11One(v, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

func fig11One(v tree.Variant, cfg Fig11Config) (*Fig11Variant, error) {
	tb := simnet.Generate(simnet.Config{N: cfg.N, Seed: cfg.Seed})
	c, err := NewCluster(true, LatencyFromTestbed(tb))
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	algs := make(map[message.NodeID]*tree.Tree, cfg.N)
	// Node 0 is the source at SourceBW; boot it last.
	for i := cfg.N - 1; i >= 0; i-- {
		n := tb.Nodes[i]
		bw := n.Bandwidth
		if i == 0 {
			bw = cfg.SourceBW
		}
		alg := &tree.Tree{Variant: v, App: treeApp, LastMile: bw}
		algs[n.ID] = alg
		if _, err := c.AddNode(n.ID, alg, func(conf *engine.Config) {
			conf.UpBW = bw
			conf.DownBW = bw
			conf.RecvBuf, conf.SendBuf = 16, 16
			conf.StatusInterval = 250 * time.Millisecond
		}); err != nil {
			return nil, err
		}
	}
	if !c.Obs.WaitForNodes(cfg.N, 15*time.Second) {
		return nil, fmt.Errorf("fig11: bootstrap incomplete (%d alive)", len(c.Obs.Alive()))
	}
	time.Sleep(150 * time.Millisecond)
	src := tb.Nodes[0].ID
	c.Obs.Deploy(src, treeApp, 0, uint32(cfg.MsgSize))
	time.Sleep(300 * time.Millisecond) // announce flood

	for i := 1; i < cfg.N; i++ {
		c.Obs.Join(tb.Nodes[i].ID, treeApp, message.NodeID{})
		time.Sleep(cfg.JoinGap)
	}
	// Let stragglers finish joining.
	deadline := time.Now().Add(10 * time.Second)
	joined := 0
	for time.Now().Before(deadline) {
		joined = 0
		for i := 1; i < cfg.N; i++ {
			if algs[tb.Nodes[i].ID].InSession() {
				joined++
			}
		}
		if joined == cfg.N-1 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	before := make(map[message.NodeID]int64, cfg.N)
	for i := 1; i < cfg.N; i++ {
		before[tb.Nodes[i].ID] = algs[tb.Nodes[i].ID].ReceivedBytes()
	}
	time.Sleep(cfg.Window)

	res := &Fig11Variant{Variant: v, Joined: joined}
	var sum float64
	for i := 1; i < cfg.N; i++ {
		id := tb.Nodes[i].ID
		rate := float64(algs[id].ReceivedBytes()-before[id]) / cfg.Window.Seconds()
		res.Throughputs = append(res.Throughputs, rate)
		sum += rate
	}
	for i := 0; i < cfg.N; i++ {
		id := tb.Nodes[i].ID
		res.Stresses = append(res.Stresses, algs[id].Stress())
		if p, ok := algs[id].Parent(); ok {
			res.Edges = append(res.Edges, TreeEdge{Parent: p, Child: id})
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.Throughputs)))
	sort.Float64s(res.Stresses)
	if len(res.Throughputs) > 0 {
		res.Mean = sum / float64(len(res.Throughputs))
	}
	return res, nil
}

// StressCDF returns (x, fraction<=x) pairs for a sorted stress slice.
func StressCDF(sorted []float64) [][2]float64 {
	out := make([][2]float64, len(sorted))
	for i, s := range sorted {
		out[i] = [2]float64{s, float64(i+1) / float64(len(sorted))}
	}
	return out
}

// RenderFig11 formats the comparison.
func RenderFig11(results []Fig11Variant) string {
	var b strings.Builder
	b.WriteString("Fig 11: wide-area tree construction comparison\n")
	for _, r := range results {
		median := 0.0
		if len(r.Throughputs) > 0 {
			median = r.Throughputs[len(r.Throughputs)/2]
		}
		p90 := percentileOf(r.Stresses, 0.9)
		fmt.Fprintf(&b,
			"  %-8s joined %d  mean throughput %.1f KBps  median %.1f KBps  p90 stress %.2f  max stress %.2f\n",
			r.Variant, r.Joined, r.Mean/KB, median/KB, p90, maxOf(r.Stresses))
	}
	return b.String()
}

// RenderTopology formats the Fig. 12/13 edge dumps.
func RenderTopology(r Fig11Variant) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s tree (%d edges):\n", r.Variant, len(r.Edges))
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  %s -> %s\n", e.Parent, e.Child)
	}
	return b.String()
}

func percentileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
