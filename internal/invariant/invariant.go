//go:build ioverlay_debug

// Package invariant provides runtime assertions for the middleware's
// core invariants, compiled in only under the ioverlay_debug build tag.
// Release builds see the no-op twin of this file: Enabled is a false
// constant there, so call sites guarded by `if invariant.Enabled` are
// eliminated at compile time and cost nothing on the hot path.
//
// The asserted invariants mirror the linted ones: only the engine
// goroutine may run Algorithm.Process, ring lane and byte accounting
// stays non-negative with ordered watermarks, and the engine's memory
// budget reconciles against what is actually buffered at shutdown.
package invariant

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// Enabled reports whether assertions are compiled in.
const Enabled = true

// Assert panics with a formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// GoroutineID returns the runtime's ID for the calling goroutine, parsed
// from the stack header ("goroutine N [running]:"). It is debug-only
// machinery — the ID is never used for control flow, only to check
// engine-goroutine ownership of algorithm upcalls.
func GoroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	s, _, _ = strings.Cut(s, " ")
	id, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return -1
	}
	return id
}
