//go:build !ioverlay_debug

// Release twin of the debug assertion layer: Enabled is a false
// constant, so guarded call sites compile away entirely.
package invariant

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Assert is a no-op in release builds. Call sites on hot paths should
// still guard with `if invariant.Enabled` so argument evaluation is
// eliminated too.
func Assert(bool, string, ...any) {}

// GoroutineID returns 0 in release builds.
func GoroutineID() int64 { return 0 }
