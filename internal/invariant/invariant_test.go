package invariant

import (
	"sync"
	"testing"
)

// TestAssert exercises whichever twin of the package is compiled in:
// under ioverlay_debug a false condition must panic and a true one must
// not; in release builds Assert must always be a no-op.
func TestAssert(t *testing.T) {
	Assert(true, "true must never fire")
	fired := func() (p bool) {
		defer func() { p = recover() != nil }()
		Assert(false, "seeded failure %d", 42)
		return
	}()
	if fired != Enabled {
		t.Fatalf("Assert(false) panicked=%v, want %v (Enabled=%v)", fired, Enabled, Enabled)
	}
}

func TestGoroutineID(t *testing.T) {
	if !Enabled {
		if got := GoroutineID(); got != 0 {
			t.Fatalf("release GoroutineID = %d, want 0", got)
		}
		return
	}
	self := GoroutineID()
	if self <= 0 {
		t.Fatalf("GoroutineID = %d, want positive", self)
	}
	if again := GoroutineID(); again != self {
		t.Fatalf("GoroutineID not stable: %d then %d", self, again)
	}
	var other int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		other = GoroutineID()
	}()
	wg.Wait()
	if other == self {
		t.Fatalf("distinct goroutines share ID %d", self)
	}
}
