// Package media implements the application tier of the paper's
// three-layer model for streaming workloads: the layer that "produces and
// interprets the data portion of application-layer messages". The paper's
// closing validation is a Windows MPEG-4 real-time streaming multicast
// application on iOverlay; this package provides the receiver-side
// machinery such an application needs — a playout meter that interprets
// the dissemination stream (sequence numbers against a frame clock) and
// reports the quality metrics streaming experiments care about: loss,
// reordering, jitter, and playout stalls.
package media

import (
	"math"
	"sync"
	"time"
)

// Player is a receiver-side playout meter for a fixed-rate frame stream.
// Feed it every arriving data message (sequence number and size); it
// tracks gaps (losses), late arrivals relative to the frame clock
// (stalls), inter-arrival jitter, and goodput. Safe for concurrent use.
type Player struct {
	// FrameInterval is the nominal spacing of frames (e.g. 33 ms for
	// 30 fps). Required.
	FrameInterval time.Duration
	// StallFactor: an inter-arrival gap beyond StallFactor×FrameInterval
	// counts as a playout stall. Defaults to 3.
	StallFactor float64

	mu         sync.Mutex
	started    bool
	nextSeq    uint32
	lastArrive time.Time
	stats      Stats
	jitterEWMA float64 // seconds
}

// Stats summarizes playout quality.
type Stats struct {
	Received  int64
	Bytes     int64
	Lost      int64 // sequence gaps never filled
	Reordered int64 // arrivals with seq below the expected frontier
	Stalls    int64 // inter-arrival gaps beyond the stall threshold
	// Jitter is the smoothed deviation of inter-arrival times from the
	// frame interval (RFC 3550-style EWMA).
	Jitter time.Duration
}

// LossRate reports lost/(received+lost).
func (s Stats) LossRate() float64 {
	total := s.Received + s.Lost
	if total == 0 {
		return 0
	}
	return float64(s.Lost) / float64(total)
}

// Feed records the arrival of frame seq with the given payload size.
func (p *Player) Feed(seq uint32, size int, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sf := p.StallFactor
	if sf <= 0 {
		sf = 3
	}
	if p.started {
		gap := now.Sub(p.lastArrive)
		if gap > time.Duration(sf*float64(p.FrameInterval)) {
			p.stats.Stalls++
		}
		// RFC 3550 jitter: j += (|D| - j) / 16.
		d := math.Abs(gap.Seconds() - p.FrameInterval.Seconds())
		p.jitterEWMA += (d - p.jitterEWMA) / 16
	}
	p.lastArrive = now

	switch {
	case !p.started:
		p.started = true
		p.nextSeq = seq + 1
	case seq == p.nextSeq:
		p.nextSeq++
	case seqAfter(seq, p.nextSeq):
		// Jumped ahead: everything in between is lost.
		p.stats.Lost += int64(seq - p.nextSeq)
		p.nextSeq = seq + 1
	default:
		// Arrived behind the frontier: a reordered (or duplicated)
		// frame; it fills no tracked gap but is still payload.
		p.stats.Reordered++
	}
	p.stats.Received++
	p.stats.Bytes += int64(size)
	p.stats.Jitter = time.Duration(p.jitterEWMA * float64(time.Second))
}

// seqAfter reports a > b with uint32 wraparound.
func seqAfter(a, b uint32) bool {
	return int32(a-b) > 0
}

// Snapshot returns the current statistics.
func (p *Player) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Continuity reports the fraction of the stream played without a stall
// event: 1 - stalls/received. A rough playback-quality index.
func (p *Player) Continuity() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stats.Received == 0 {
		return 1
	}
	c := 1 - float64(p.stats.Stalls)/float64(p.stats.Received)
	if c < 0 {
		return 0
	}
	return c
}
