package media

import (
	"testing"
	"time"
)

const frame = 33 * time.Millisecond

func feedRun(p *Player, start time.Time, seqs []uint32, gap time.Duration) {
	now := start
	for _, s := range seqs {
		p.Feed(s, 1000, now)
		now = now.Add(gap)
	}
}

func TestPerfectStream(t *testing.T) {
	p := &Player{FrameInterval: frame}
	start := time.Unix(0, 0)
	feedRun(p, start, []uint32{0, 1, 2, 3, 4, 5}, frame)
	s := p.Snapshot()
	if s.Received != 6 || s.Lost != 0 || s.Reordered != 0 || s.Stalls != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != 6000 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	if s.LossRate() != 0 {
		t.Errorf("loss rate = %f", s.LossRate())
	}
	if p.Continuity() != 1 {
		t.Errorf("continuity = %f", p.Continuity())
	}
	if s.Jitter > time.Millisecond {
		t.Errorf("jitter on a perfect clock = %v", s.Jitter)
	}
}

func TestGapsCountAsLoss(t *testing.T) {
	p := &Player{FrameInterval: frame}
	feedRun(p, time.Unix(0, 0), []uint32{0, 1, 5, 6}, frame)
	s := p.Snapshot()
	if s.Lost != 3 {
		t.Errorf("Lost = %d, want 3 (frames 2,3,4)", s.Lost)
	}
	if got := s.LossRate(); got < 0.42 || got > 0.43 {
		t.Errorf("LossRate = %f, want 3/7", got)
	}
}

func TestReorderedArrivals(t *testing.T) {
	p := &Player{FrameInterval: frame}
	feedRun(p, time.Unix(0, 0), []uint32{0, 2, 1, 3}, frame)
	s := p.Snapshot()
	if s.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", s.Reordered)
	}
	// Frame 1's late arrival does not retroactively reduce the loss
	// count (the gap 1 was charged when 2 arrived).
	if s.Lost != 1 {
		t.Errorf("Lost = %d, want 1", s.Lost)
	}
}

func TestStallDetection(t *testing.T) {
	p := &Player{FrameInterval: frame}
	now := time.Unix(0, 0)
	p.Feed(0, 100, now)
	p.Feed(1, 100, now.Add(frame))
	// A long freeze, then recovery.
	p.Feed(2, 100, now.Add(frame+10*frame))
	p.Feed(3, 100, now.Add(frame+11*frame))
	s := p.Snapshot()
	if s.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", s.Stalls)
	}
	if c := p.Continuity(); c <= 0.7 || c >= 1 {
		t.Errorf("Continuity = %f", c)
	}
}

func TestStallFactorConfigurable(t *testing.T) {
	p := &Player{FrameInterval: frame, StallFactor: 20}
	now := time.Unix(0, 0)
	p.Feed(0, 100, now)
	p.Feed(1, 100, now.Add(10*frame)) // below the 20x threshold
	if s := p.Snapshot(); s.Stalls != 0 {
		t.Errorf("Stalls = %d with relaxed factor", s.Stalls)
	}
}

func TestJitterTracksIrregularArrivals(t *testing.T) {
	smooth := &Player{FrameInterval: frame}
	feedRun(smooth, time.Unix(0, 0), seqRange(64), frame)
	bursty := &Player{FrameInterval: frame}
	now := time.Unix(0, 0)
	for i, s := range seqRange(64) {
		bursty.Feed(s, 100, now)
		if i%2 == 0 {
			now = now.Add(frame / 4)
		} else {
			now = now.Add(frame * 7 / 4)
		}
	}
	if smooth.Snapshot().Jitter >= bursty.Snapshot().Jitter {
		t.Errorf("smooth jitter %v not below bursty %v",
			smooth.Snapshot().Jitter, bursty.Snapshot().Jitter)
	}
}

func TestSequenceWraparound(t *testing.T) {
	p := &Player{FrameInterval: frame}
	feedRun(p, time.Unix(0, 0), []uint32{0xFFFFFFFE, 0xFFFFFFFF, 0, 1}, frame)
	s := p.Snapshot()
	if s.Lost != 0 || s.Reordered != 0 {
		t.Errorf("wraparound misclassified: %+v", s)
	}
}

func TestEmptyPlayer(t *testing.T) {
	p := &Player{FrameInterval: frame}
	if p.Continuity() != 1 || p.Snapshot().LossRate() != 0 {
		t.Error("empty player not neutral")
	}
}

func seqRange(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}
