package message

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

var dgramSrc = NodeID{IP: 0x0a000002, Port: 7001}

// splitDgrams renders every datagram frame for one wire image the way
// the engine's sender does.
func splitDgrams(t *testing.T, wire []byte, src NodeID, id uint32, mtu int) [][]byte {
	t.Helper()
	cnt, err := DgramFragments(len(wire), mtu)
	if err != nil {
		t.Fatal(err)
	}
	chunk := mtu - DgramHeaderSize
	out := make([][]byte, 0, cnt)
	for i := 0; i < cnt; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(wire) {
			hi = len(wire)
		}
		h := DgramHeader{Src: src, MsgID: id, FragIdx: uint16(i), FragCnt: uint16(cnt)}
		out = append(out, AppendDgram(nil, h, wire[lo:hi]))
	}
	return out
}

// TestDgramRoundTripSingle covers the single-fragment fast path: encode,
// decode, reassemble, and get the identical wire image back.
func TestDgramRoundTripSingle(t *testing.T) {
	wire := fuzzWire(FirstDataType, []byte("single fragment payload"))
	frames := splitDgrams(t, wire, dgramSrc, 7, DefaultDgramMTU)
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	h, chunk, err := DecodeDgram(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != dgramSrc || h.MsgID != 7 || h.FragIdx != 0 || h.FragCnt != 1 {
		t.Fatalf("header %+v", h)
	}
	ra := NewReassembler(0)
	got, ok := ra.Accept(h, chunk)
	if !ok || !bytes.Equal(got, wire) {
		t.Fatalf("reassembled %d bytes ok=%v, want the original %d", len(got), ok, len(wire))
	}
	if ra.Pending() != 0 {
		t.Fatalf("pending %d after single-fragment completion", ra.Pending())
	}
}

// TestDgramRoundTripFragmented splits a large message and reassembles it
// from every fragment-arrival order, with duplicates sprinkled in.
func TestDgramRoundTripFragmented(t *testing.T) {
	wire := fuzzWire(FirstDataType, bytes.Repeat([]byte("0123456789"), 1000))
	const mtu = 1400
	frames := splitDgrams(t, wire, dgramSrc, 42, mtu)
	if len(frames) < 3 {
		t.Fatalf("want a multi-fragment split, got %d frames", len(frames))
	}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},          // in order
		{7, 6, 5, 4, 3, 2, 1, 0},          // reversed
		{3, 0, 7, 1, 5, 2, 6, 4},          // shuffled
		{0, 0, 1, 1, 2, 3, 4, 5, 6, 6, 7}, // duplicates
	}
	for _, order := range orders {
		ra := NewReassembler(0)
		var got []byte
		done := 0
		for _, idx := range order {
			if idx >= len(frames) {
				continue
			}
			h, chunk, err := DecodeDgram(frames[idx])
			if err != nil {
				t.Fatal(err)
			}
			if w, ok := ra.Accept(h, chunk); ok {
				got = w
				done++
			}
		}
		if done != 1 {
			t.Fatalf("order %v completed %d times, want exactly once", order, done)
		}
		if !bytes.Equal(got, wire) {
			t.Fatalf("order %v reassembled image differs", order)
		}
		if ra.Pending() != 0 {
			t.Fatalf("order %v left %d pending", order, ra.Pending())
		}
	}
}

// TestDgramDecodeRejects tables the malformed-frame shapes DecodeDgram
// must refuse.
func TestDgramDecodeRejects(t *testing.T) {
	good := splitDgrams(t, fuzzWire(FirstDataType, []byte("x")), dgramSrc, 1, DefaultDgramMTU)[0]
	mangle := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short", good[:DgramHeaderSize-1]},
		{"header-only", good[:DgramHeaderSize]},
		{"bad-magic", mangle(func(b []byte) { b[0] = 0x00 })},
		{"reserved-set", mangle(func(b []byte) { b[6] = 1 })},
		{"zero-frag-count", mangle(func(b []byte) { binary.BigEndian.PutUint16(b[4:6], 0) })},
		{"index-past-count", mangle(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], 1) })},
		{"count-past-max", mangle(func(b []byte) {
			binary.BigEndian.PutUint16(b[2:4], 0)
			binary.BigEndian.PutUint16(b[4:6], MaxFragments+1)
		})},
	}
	for _, tc := range cases {
		if _, _, err := DecodeDgram(tc.in); !errors.Is(err, ErrDgramBad) {
			t.Errorf("%s: err = %v, want ErrDgramBad", tc.name, err)
		}
	}
	for i := 1; i < len(good); i++ {
		// Every truncation either fails to decode or (when only payload
		// bytes are missing) fails wire validation at reassembly.
		h, chunk, err := DecodeDgram(good[:i])
		if err != nil {
			continue
		}
		ra := NewReassembler(0)
		if _, ok := ra.Accept(h, chunk); ok {
			t.Fatalf("truncation to %d bytes yielded a complete message", i)
		}
		if ra.Invalid() == 0 {
			t.Fatalf("truncation to %d bytes not counted invalid", i)
		}
	}
}

// TestDgramFragmentBudget checks the refusal path for oversize messages
// and undersized MTUs.
func TestDgramFragmentBudget(t *testing.T) {
	if _, err := DgramFragments(10, MinDgramMTU-1); err == nil {
		t.Fatal("MTU below minimum accepted")
	}
	chunk := DefaultDgramMTU - DgramHeaderSize
	if n, err := DgramFragments(MaxFragments*chunk, DefaultDgramMTU); err != nil || n != MaxFragments {
		t.Fatalf("exact budget: n=%d err=%v", n, err)
	}
	if _, err := DgramFragments(MaxFragments*chunk+1, DefaultDgramMTU); !errors.Is(err, ErrDgramTooLarge) {
		t.Fatalf("over budget: err = %v, want ErrDgramTooLarge", err)
	}
	if n, err := DgramFragments(0, DefaultDgramMTU); err != nil || n != 1 {
		t.Fatalf("empty wire: n=%d err=%v, want 1 fragment", n, err)
	}
}

// TestDgramReassemblerEviction fills the pending table past its bound
// with incomplete messages and checks FIFO eviction: the oldest partial
// goes first, and an evicted message can no longer complete.
func TestDgramReassemblerEviction(t *testing.T) {
	ra := NewReassembler(2)
	frame := func(id uint32, idx uint16) (DgramHeader, []byte) {
		return DgramHeader{Src: dgramSrc, MsgID: id, FragIdx: idx, FragCnt: 2}, []byte("chunk")
	}
	ra.Accept(frame(1, 0))
	ra.Accept(frame(2, 0))
	if ra.Pending() != 2 {
		t.Fatalf("pending %d, want 2", ra.Pending())
	}
	ra.Accept(frame(3, 0)) // evicts id 1
	if ra.Pending() != 2 || ra.Evicted() != 1 {
		t.Fatalf("pending %d evicted %d, want 2/1", ra.Pending(), ra.Evicted())
	}
	if _, ok := ra.Accept(frame(1, 1)); ok {
		t.Fatal("evicted message completed")
	}
	// Completing id 2 still works: eviction took the oldest, not it.
	wire := fuzzWire(FirstDataType, []byte("evict-survivor"))
	frames := splitDgrams(t, wire, dgramSrc, 9, DgramHeaderSize+HeaderSize)
	ra2 := NewReassembler(2)
	var got []byte
	for _, f := range frames {
		h, chunk, err := DecodeDgram(f)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := ra2.Accept(h, chunk); ok {
			got = w
		}
	}
	if !bytes.Equal(got, wire) {
		t.Fatal("tiny-MTU reassembly failed")
	}
}

// TestDgramReassemblerByteBudget floods the reassembler with large
// never-completing partials and checks the byte ceiling holds by
// evicting older partials.
func TestDgramReassemblerByteBudget(t *testing.T) {
	ra := NewReassembler(1 << 20) // entry bound out of the way
	big := make([]byte, 64<<10)
	for id := uint32(0); id < 200; id++ {
		h := DgramHeader{Src: dgramSrc, MsgID: id, FragIdx: 0, FragCnt: 2}
		ra.Accept(h, big)
	}
	if ra.held > DefaultReassemblyBytes {
		t.Fatalf("held %d bytes, budget %d", ra.held, DefaultReassemblyBytes)
	}
	if ra.Evicted() == 0 {
		t.Fatal("byte budget never evicted")
	}
}

// TestDgramFragCntConflict: a fragment claiming a different count for an
// in-flight (src, id) restarts the entry instead of corrupting it.
func TestDgramFragCntConflict(t *testing.T) {
	ra := NewReassembler(0)
	ra.Accept(DgramHeader{Src: dgramSrc, MsgID: 5, FragIdx: 0, FragCnt: 3}, []byte("a"))
	ra.Accept(DgramHeader{Src: dgramSrc, MsgID: 5, FragIdx: 0, FragCnt: 2}, []byte("b"))
	if ra.Pending() != 1 {
		t.Fatalf("pending %d, want 1", ra.Pending())
	}
	// The entry now reassembles under the new count; completing it with
	// garbage still fails wire validation rather than panicking.
	if _, ok := ra.Accept(DgramHeader{Src: dgramSrc, MsgID: 5, FragIdx: 1, FragCnt: 2}, []byte("c")); ok {
		t.Fatal("garbage image passed wire validation")
	}
	if ra.Invalid() != 1 {
		t.Fatalf("invalid %d, want 1", ra.Invalid())
	}
}

// TestDgramPerSourceIsolation: identical msg ids from different sources
// never mix.
func TestDgramPerSourceIsolation(t *testing.T) {
	wireA := fuzzWire(FirstDataType, bytes.Repeat([]byte("A"), 3000))
	wireB := fuzzWire(FirstDataType, bytes.Repeat([]byte("B"), 3000))
	srcB := NodeID{IP: 0x0a000003, Port: 7002}
	framesA := splitDgrams(t, wireA, dgramSrc, 11, 1400)
	framesB := splitDgrams(t, wireB, srcB, 11, 1400)
	ra := NewReassembler(0)
	results := make(map[string][]byte)
	for i := range framesA {
		for _, f := range [][]byte{framesA[i], framesB[i]} {
			h, chunk, err := DecodeDgram(f)
			if err != nil {
				t.Fatal(err)
			}
			if w, ok := ra.Accept(h, chunk); ok {
				results[fmt.Sprintf("%s", h.Src)] = w
			}
		}
	}
	if !bytes.Equal(results[dgramSrc.String()], wireA) || !bytes.Equal(results[srcB.String()], wireB) {
		t.Fatal("interleaved sources cross-contaminated reassembly")
	}
}
