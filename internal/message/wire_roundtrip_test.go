package message

import (
	"bytes"
	"fmt"
	"testing"
)

// boundaryPayloadSizes enumerates payload lengths around every pool
// size-class edge that matters on the wire: the raw class sizes (64, 96,
// 128, 192, ... — powers of two interleaved with 1.5x midpoints) and the
// same edges shifted by HeaderSize, since pooled wire buffers hold
// header+payload contiguously and the class is chosen for the whole
// image. Each edge contributes the size itself and its two neighbors.
func boundaryPayloadSizes() []int {
	seen := map[int]bool{0: true, 1: true}
	sizes := []int{0, 1}
	add := func(n int) {
		for _, d := range []int{-1, 0, 1} {
			if v := n + d; v >= 0 && !seen[v] {
				seen[v] = true
				sizes = append(sizes, v)
			}
		}
	}
	for bits := minClassBits; bits <= 13; bits++ {
		class := 1 << bits
		add(class)
		add(class + class/2) // the 1.5x midpoint class
		add(class - HeaderSize)
		add(class + class/2 - HeaderSize)
	}
	add(SegmentSize - HeaderSize) // largest message that fits one segment
	add(SegmentSize)
	return sizes
}

// TestWireImageRoundTripAtSizeClassBoundaries encodes and re-decodes
// messages whose payload sizes straddle every pool size-class edge, for
// both pool-backed messages (contiguous wire image, the Wire fast path)
// and plain ones (WriteTo slow path). The decoded message must match the
// original in every header field and payload byte. Deliberately
// independent of the fuzzers: this deterministic sweep runs on every
// `go test ./...`.
func TestWireImageRoundTripAtSizeClassBoundaries(t *testing.T) {
	sender := MakeID("10.9.8.7", 6543)
	pool := NewPool()
	for _, size := range boundaryPayloadSizes() {
		for _, pooled := range []bool{false, true} {
			t.Run(fmt.Sprintf("size=%d/pooled=%v", size, pooled), func(t *testing.T) {
				var m *Msg
				if pooled {
					m = pool.Get(FirstDataType+7, sender, 3, 99, size)
					for i := range m.Payload() {
						m.Payload()[i] = byte(i * 13)
					}
					m.SetSeq(99) // re-render after payload fill to mimic real use
				} else {
					p := make([]byte, size)
					for i := range p {
						p[i] = byte(i * 13)
					}
					m = New(FirstDataType+7, sender, 3, 99, p)
				}
				defer m.Release()

				var buf bytes.Buffer
				n, err := m.WriteTo(&buf)
				if err != nil {
					t.Fatalf("WriteTo: %v", err)
				}
				if n != int64(m.WireLen()) || buf.Len() != HeaderSize+size {
					t.Fatalf("WriteTo wrote %d bytes, want %d", n, HeaderSize+size)
				}
				if pooled {
					if w := m.Wire(); !bytes.Equal(w, buf.Bytes()) {
						t.Fatal("Wire() image differs from WriteTo output")
					}
				} else if m.Wire() != nil {
					t.Fatal("non-pooled message unexpectedly has a wire image")
				}

				got, consumed, err := Decode(buf.Bytes())
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				if consumed != HeaderSize+size {
					t.Fatalf("Decode consumed %d, want %d", consumed, HeaderSize+size)
				}
				if got.Type() != m.Type() || got.Sender() != sender ||
					got.App() != 3 || got.Seq() != 99 {
					t.Fatalf("header mismatch: got %v, want %v", got, m)
				}
				if !bytes.Equal(got.Payload(), m.Payload()) {
					t.Fatal("payload mismatch after round trip")
				}
			})
		}
	}
}

// TestClassBitSurvivesWireRoundTrip lifts a data-range type into the
// control class with AsControl and checks the class tag survives every
// encode path (Wire image, WriteTo, AppendHeader) and re-decode: the
// wire type keeps the bit, Type() strips it, and the decoded message
// still classifies as control. The bit must survive even at size-class
// boundary payloads where the pooled image is recycled storage.
func TestClassBitSurvivesWireRoundTrip(t *testing.T) {
	sender := MakeID("10.1.1.1", 7000)
	pool := NewPool()
	for _, size := range []int{0, 1, 63, 64, 65, SegmentSize - HeaderSize} {
		tagged := (FirstDataType + 42).AsControl()
		m := pool.Get(tagged, sender, 1, 5, size)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if h := m.AppendHeader(nil); !bytes.Equal(h, buf.Bytes()[:HeaderSize]) {
			t.Fatal("AppendHeader differs from the rendered wire header")
		}
		got, _, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.WireType() != tagged {
			t.Fatalf("size %d: wire type = %#x, want %#x (class bit lost)",
				size, got.WireType(), tagged)
		}
		if got.Type() != FirstDataType+42 {
			t.Fatalf("size %d: Type() = %d, want the untagged %d", size, got.Type(), FirstDataType+42)
		}
		if !got.IsControl() || got.Class() != ClassControl || got.IsData() {
			t.Fatalf("size %d: decoded message lost its control class", size)
		}
		m.Release()
	}
}

// TestReadContinuedShortPrefix is the regression test for the assembly
// path's missing header guard: a prefix shorter than one header must
// return ErrShortHeader — previously it sliced out of bounds and
// panicked.
func TestReadContinuedShortPrefix(t *testing.T) {
	full := New(FirstDataType, MakeID("10.0.0.1", 7000), 1, 2, []byte("payload"))
	var buf bytes.Buffer
	if _, err := full.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for _, pool := range []*Pool{nil, NewPool()} {
		for i := 0; i < HeaderSize; i++ {
			m, err := ReadContinued(wire[:i], bytes.NewReader(wire[i:]), pool)
			if err != ErrShortHeader {
				t.Fatalf("prefix %d: err = %v, want ErrShortHeader", i, err)
			}
			if m != nil {
				t.Fatalf("prefix %d: got a message alongside the error", i)
			}
		}
		// A complete header alone is the smallest valid prefix.
		m, err := ReadContinued(wire[:HeaderSize], bytes.NewReader(wire[HeaderSize:]), pool)
		if err != nil {
			t.Fatalf("header-only prefix: %v", err)
		}
		if !bytes.Equal(m.Payload(), full.Payload()) {
			t.Fatal("header-only prefix: payload mismatch")
		}
		m.Release()
	}
}

// TestReadContinuedPrefixSplits assembles one message from every possible
// split of its wire image into (already-received prefix, remaining
// stream) and requires an identical result each time, pooled and not.
func TestReadContinuedPrefixSplits(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	full := New(FirstDataType+1, MakeID("10.0.0.2", 7001), 4, 9, payload)
	var buf bytes.Buffer
	if _, err := full.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	pool := NewPool()
	for split := HeaderSize; split <= len(wire); split++ {
		m, err := ReadContinued(wire[:split], bytes.NewReader(wire[split:]), pool)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if m.Type() != full.Type() || m.Sender() != full.Sender() ||
			m.App() != full.App() || m.Seq() != full.Seq() {
			t.Fatalf("split %d: header mismatch", split)
		}
		if !bytes.Equal(m.Payload(), payload) {
			t.Fatalf("split %d: payload mismatch", split)
		}
		if !bytes.Equal(m.Wire(), wire) {
			t.Fatalf("split %d: reassembled wire image mismatch", split)
		}
		m.Release()
	}
}
