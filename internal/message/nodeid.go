package message

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// NodeID uniquely identifies an iOverlay node by its IPv4 address and port
// number, exactly as the paper defines node identity. The IP is stored in
// host-independent big-endian integer form so it encodes directly into the
// 4-byte header field.
type NodeID struct {
	IP   uint32
	Port uint32
}

// ZeroID is the absent node identity.
var ZeroID NodeID

// ErrBadNodeID reports an unparseable node address.
var ErrBadNodeID = errors.New("message: bad node id")

// MakeID builds a NodeID from dotted-quad text and a port, panicking on a
// malformed literal; it is intended for constants in tests and examples.
func MakeID(ip string, port uint32) NodeID {
	id, err := ParseID(fmt.Sprintf("%s:%d", ip, port))
	if err != nil {
		panic(err)
	}
	return id
}

// ParseID parses "a.b.c.d:port" into a NodeID.
func ParseID(s string) (NodeID, error) {
	host, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return ZeroID, fmt.Errorf("%w: %q missing port", ErrBadNodeID, s)
	}
	port, err := strconv.ParseUint(portStr, 10, 32)
	if err != nil {
		return ZeroID, fmt.Errorf("%w: %q: %v", ErrBadNodeID, s, err)
	}
	ip, err := parseIPv4(host)
	if err != nil {
		return ZeroID, fmt.Errorf("%w: %q: %v", ErrBadNodeID, s, err)
	}
	return NodeID{IP: ip, Port: uint32(port)}, nil
}

func parseIPv4(s string) (uint32, error) {
	var ip uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("not dotted quad: %q", s)
	}
	for _, p := range parts {
		octet, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		ip = ip<<8 | uint32(octet)
	}
	return ip, nil
}

// IsZero reports whether the identity is unset.
func (id NodeID) IsZero() bool { return id == ZeroID }

// Addr renders the dial/listen address "a.b.c.d:port".
func (id NodeID) Addr() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d",
		byte(id.IP>>24), byte(id.IP>>16), byte(id.IP>>8), byte(id.IP), id.Port)
}

// String implements fmt.Stringer; identical to Addr.
func (id NodeID) String() string { return id.Addr() }

// Less orders identities for deterministic iteration in tests and reports.
func (id NodeID) Less(other NodeID) bool {
	if id.IP != other.IP {
		return id.IP < other.IP
	}
	return id.Port < other.Port
}

// Compare returns -1, 0, or +1 ordering identities lexicographically by
// (IP, Port); it is the comparator form of Less for use with slices.Sort*.
func (id NodeID) Compare(other NodeID) int {
	switch {
	case id.Less(other):
		return -1
	case other.Less(id):
		return 1
	default:
		return 0
	}
}
