// Datagram framing: the self-contained frame format messages ride in
// when an engine's data plane runs over a packet transport (UDP or the
// vnet datagram endpoints) instead of a stream.
//
// A stream carries bare wire images back to back and lets TCP handle
// loss and ordering; a datagram network delivers whole packets, loses
// whole packets, duplicates them and reorders them. Each datagram
// therefore carries a 20-byte frame header in front of a chunk of the
// ordinary message wire image:
//
//	magic (2) | frag index (2) | frag count (2) | reserved (2) |
//	src IP (4) | src port (4) | msg id (4)
//
// src is the LINK-level sender — the engine that wrote the datagram —
// which on a stream transport would have been learned from the hello
// handshake; the wire header inside the payload still names the
// original end-to-end sender. (src, msg id) identifies one message for
// reassembly; messages whose wire image fits the MTU budget travel as a
// single fragment and skip reassembly entirely.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DgramHeaderSize is the fixed size of the datagram frame header.
const DgramHeaderSize = 20

// dgramMagic marks a frame as an iOverlay datagram; anything else is
// refused before any field is trusted.
const dgramMagic uint16 = 0xD6A7

// DefaultDgramMTU is the default per-datagram byte budget (frame header
// included): conservative for 1500-byte Ethernet paths after IP and UDP
// overhead.
const DefaultDgramMTU = 1400

// MinDgramMTU bounds how small a configured MTU may be: the frame
// header plus at least one wire-header's worth of progress per
// fragment, so fragmentation always terminates.
const MinDgramMTU = DgramHeaderSize + HeaderSize

// MaxFragments bounds how many fragments one message may be split into;
// larger messages are refused to the sender with a counted error rather
// than sprayed across the network with (1-loss)^n delivery odds.
const MaxFragments = 64

// Errors reported by the datagram codec.
var (
	ErrDgramBad      = errors.New("message: malformed datagram frame")
	ErrDgramTooLarge = errors.New("message: message exceeds datagram fragment budget")
)

// DgramHeader is the decoded frame header.
type DgramHeader struct {
	// Src is the link-level sender: the engine whose packet endpoint
	// wrote this datagram.
	Src NodeID
	// MsgID identifies the message among those sent by Src; fragments
	// sharing (Src, MsgID) reassemble into one wire image.
	MsgID uint32
	// FragIdx and FragCnt place this fragment: index in [0, FragCnt),
	// count in [1, MaxFragments].
	FragIdx, FragCnt uint16
}

// AppendDgram appends a datagram frame — header plus payload chunk — to
// dst and returns the extended slice; senders reuse one scratch buffer
// across packets.
func AppendDgram(dst []byte, h DgramHeader, payload []byte) []byte {
	var b [DgramHeaderSize]byte
	binary.BigEndian.PutUint16(b[0:2], dgramMagic)
	binary.BigEndian.PutUint16(b[2:4], h.FragIdx)
	binary.BigEndian.PutUint16(b[4:6], h.FragCnt)
	// b[6:8] reserved, zero
	binary.BigEndian.PutUint32(b[8:12], h.Src.IP)
	binary.BigEndian.PutUint32(b[12:16], h.Src.Port)
	binary.BigEndian.PutUint32(b[16:20], h.MsgID)
	return append(append(dst, b[:]...), payload...)
}

// DecodeDgram validates one received datagram and returns its header
// and payload chunk. The payload aliases b. Every malformed shape — a
// short frame, a foreign magic, a nonzero reserved field, an empty
// chunk, fragment fields out of range — is ErrDgramBad: a datagram
// socket is an open port, so nothing in the frame is trusted before it
// is checked.
func DecodeDgram(b []byte) (DgramHeader, []byte, error) {
	if len(b) <= DgramHeaderSize {
		return DgramHeader{}, nil, fmt.Errorf("%w: %d bytes", ErrDgramBad, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != dgramMagic {
		return DgramHeader{}, nil, fmt.Errorf("%w: bad magic", ErrDgramBad)
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 {
		return DgramHeader{}, nil, fmt.Errorf("%w: reserved bits set", ErrDgramBad)
	}
	h := DgramHeader{
		FragIdx: binary.BigEndian.Uint16(b[2:4]),
		FragCnt: binary.BigEndian.Uint16(b[4:6]),
		Src: NodeID{
			IP:   binary.BigEndian.Uint32(b[8:12]),
			Port: binary.BigEndian.Uint32(b[12:16]),
		},
		MsgID: binary.BigEndian.Uint32(b[16:20]),
	}
	if h.FragCnt < 1 || h.FragCnt > MaxFragments || h.FragIdx >= h.FragCnt {
		return DgramHeader{}, nil, fmt.Errorf("%w: fragment %d/%d", ErrDgramBad, h.FragIdx, h.FragCnt)
	}
	return h, b[DgramHeaderSize:], nil
}

// DgramFragments reports how many datagrams a wire image of wireLen
// bytes needs under the given MTU (frame header included), or
// ErrDgramTooLarge past the MaxFragments budget.
func DgramFragments(wireLen, mtu int) (int, error) {
	chunk := mtu - DgramHeaderSize
	if chunk < HeaderSize {
		return 0, fmt.Errorf("message: datagram MTU %d below minimum %d", mtu, MinDgramMTU)
	}
	n := (wireLen + chunk - 1) / chunk
	if n < 1 {
		n = 1
	}
	if n > MaxFragments {
		return 0, fmt.Errorf("%w: %d bytes need %d fragments (max %d at MTU %d)",
			ErrDgramTooLarge, wireLen, n, MaxFragments, mtu)
	}
	return n, nil
}

// reasmKey identifies one in-flight message at the reassembler.
type reasmKey struct {
	src NodeID
	id  uint32
}

// reasmEntry is one partially arrived message.
type reasmEntry struct {
	cnt   int
	got   int
	bytes int
	frags [][]byte
}

// Reassembler assembles multi-fragment messages from datagrams that may
// arrive lossy, duplicated and out of order. It is intentionally
// single-goroutine (the engine's datagram reader owns one) and strictly
// bounded: at most maxPending partial messages are held, and when a new
// message arrives at a full table the oldest partial is evicted — a
// lost fragment must not leak its siblings forever. There is no
// retransmission: an evicted or never-completed message is simply loss,
// the contract a datagram data plane signs up for.
type Reassembler struct {
	maxPending int
	maxBytes   int
	entries    map[reasmKey]*reasmEntry
	order      []reasmKey // FIFO insertion order, the eviction policy
	held       int        // bytes buffered across all partials

	evicted int64 // partials dropped to admit newer messages
	invalid int64 // completed messages whose wire image failed validation
}

// DefaultReassemblyPending bounds concurrently reassembling messages.
const DefaultReassemblyPending = 128

// DefaultReassemblyBytes bounds the bytes buffered across all partial
// messages — the hard memory ceiling an open datagram port can be
// pushed to, whatever fragment sizes arrive.
const DefaultReassemblyBytes = 4 << 20

// NewReassembler builds a reassembler holding at most maxPending
// partial messages (<=0 selects DefaultReassemblyPending).
func NewReassembler(maxPending int) *Reassembler {
	if maxPending <= 0 {
		maxPending = DefaultReassemblyPending
	}
	return &Reassembler{
		maxPending: maxPending,
		maxBytes:   DefaultReassemblyBytes,
		entries:    make(map[reasmKey]*reasmEntry),
	}
}

// Accept folds one validated datagram in. When the datagram completes a
// message it returns the full wire image and true; otherwise (partial,
// duplicate, or invalid on completion) nil and false. Single-fragment
// messages return their chunk directly — it aliases the caller's read
// buffer and must be consumed before the next read. Multi-fragment
// chunks are copied, so the caller's buffer is immediately reusable.
func (ra *Reassembler) Accept(h DgramHeader, chunk []byte) ([]byte, bool) {
	if h.FragCnt == 1 {
		if !ra.validWire(chunk) {
			return nil, false
		}
		return chunk, true
	}
	key := reasmKey{src: h.Src, id: h.MsgID}
	e := ra.entries[key]
	if e != nil && e.cnt != int(h.FragCnt) {
		// The fragment count contradicts earlier fragments of the same
		// (src, id): a stale wrap or garbage. Start over with the new
		// claim; the old partial was never completable against it.
		ra.dropEntry(key)
		e = nil
	}
	if e == nil {
		if len(ra.order) >= ra.maxPending {
			ra.evictOldest()
		}
		e = &reasmEntry{cnt: int(h.FragCnt), frags: make([][]byte, h.FragCnt)}
		ra.entries[key] = e
		ra.order = append(ra.order, key)
	}
	if e.frags[h.FragIdx] != nil {
		return nil, false // duplicate fragment
	}
	e.frags[h.FragIdx] = append([]byte(nil), chunk...)
	e.got++
	e.bytes += len(chunk)
	ra.held += len(chunk)
	for ra.held > ra.maxBytes && len(ra.order) > 1 {
		// Older partials make way for the newest bytes; the key just
		// written is never evicted from under its own completion check.
		if ra.order[0] == key {
			break
		}
		ra.evictOldest()
	}
	if e.got < e.cnt {
		return nil, false
	}
	ra.dropEntry(key)
	size := 0
	for _, f := range e.frags {
		size += len(f)
	}
	wire := make([]byte, 0, size)
	for _, f := range e.frags {
		wire = append(wire, f...)
	}
	if !ra.validWire(wire) {
		return nil, false
	}
	return wire, true
}

// validWire checks that an assembled image is exactly one complete
// message, counting failures.
func (ra *Reassembler) validWire(wire []byte) bool {
	size, ok := PeekPayloadLen(wire)
	if !ok || HeaderSize+size != len(wire) {
		ra.invalid++
		return false
	}
	return true
}

// Pending reports the number of partial messages currently held.
func (ra *Reassembler) Pending() int { return len(ra.entries) }

// Evicted reports partial messages dropped to bound the table.
func (ra *Reassembler) Evicted() int64 { return ra.evicted }

// Invalid reports completed messages whose wire image was not exactly
// one well-formed message.
func (ra *Reassembler) Invalid() int64 { return ra.invalid }

// dropEntry removes key from the table and the insertion order.
func (ra *Reassembler) dropEntry(key reasmKey) {
	if e, ok := ra.entries[key]; ok {
		ra.held -= e.bytes
	}
	delete(ra.entries, key)
	for i, k := range ra.order {
		if k == key {
			ra.order = append(ra.order[:i], ra.order[i+1:]...)
			break
		}
	}
}

// evictOldest drops the oldest partial message to admit a newer one.
func (ra *Reassembler) evictOldest() {
	if len(ra.order) == 0 {
		return
	}
	key := ra.order[0]
	ra.order = ra.order[1:]
	if e, ok := ra.entries[key]; ok {
		ra.held -= e.bytes
	}
	delete(ra.entries, key)
	ra.evicted++
}
