package message

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// fuzzWire renders a wire image for seeding the corpora.
func fuzzWire(typ Type, payload []byte) []byte {
	m := New(typ, NodeID{IP: 0x0a000001, Port: 7000}, 2, 3, payload)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecode throws arbitrary bytes at the in-place decoder. It must
// never panic; on success the consumed count must match the wire length,
// the consumed prefix must re-encode byte-identically (class bit
// included), and truncating the consumed prefix by one byte must fail.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzWire(FirstDataType, []byte("hello")))
	f.Add(fuzzWire(FirstDataType.AsControl(), nil))
	f.Add(fuzzWire(1, []byte{0}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			if m != nil {
				t.Fatal("Decode returned a message alongside an error")
			}
			return
		}
		if n < HeaderSize || n > len(b) || n != m.WireLen() {
			t.Fatalf("consumed %d bytes, wire length %d, input %d", n, m.WireLen(), len(b))
		}
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), b[:n]) {
			t.Fatal("re-encoded wire image differs from the decoded prefix")
		}
		if _, _, err := Decode(b[:n-1]); err == nil {
			t.Fatal("Decode accepted a truncated wire image")
		}
	})
}

// FuzzRead drives the streaming decoder. The declared payload size is
// bounded by DefaultMaxPayload inside Read, so arbitrary headers cannot
// force large allocations; truncation must surface as ErrUnexpectedEOF
// (or EOF cleanly at a message boundary), never a panic or zero-filled
// payload.
func FuzzRead(f *testing.F) {
	f.Add([]byte{}, true)
	f.Add(fuzzWire(FirstDataType, []byte("stream")), true)
	f.Add(fuzzWire(7, make([]byte, 100))[:40], false)
	f.Fuzz(func(t *testing.T, b []byte, pooled bool) {
		var pool *Pool
		if pooled {
			pool = NewPool()
		}
		r := bytes.NewReader(b)
		m, err := Read(r, pool, 0)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF) && len(b) >= HeaderSize:
				t.Fatal("clean EOF reported after a complete header was available")
			case errors.Is(err, ErrPayloadTooLarge),
				errors.Is(err, io.EOF),
				errors.Is(err, io.ErrUnexpectedEOF):
			default:
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		defer m.Release()
		want := int(binary.BigEndian.Uint32(b[20:24]))
		if m.Len() != want {
			t.Fatalf("payload length %d, header declared %d", m.Len(), want)
		}
		if !bytes.Equal(m.Payload(), b[HeaderSize:HeaderSize+want]) {
			t.Fatal("payload bytes differ from the stream")
		}
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), b[:HeaderSize+want]) {
			t.Fatal("re-encoded wire image differs from the consumed stream prefix")
		}
	})
}

// FuzzReadContinued exercises the large-message assembly path with an
// arbitrary split between the already-buffered prefix and the rest of
// the stream. The declared size is clamped to DefaultMaxPayload before
// the call — the engine's receiver validates sizes before handing bytes
// to ReadContinued, and an unclamped fuzzer would just test the
// allocator. Short prefixes must fail with ErrShortHeader (the
// regression this fuzzer guards).
func FuzzReadContinued(f *testing.F) {
	w := fuzzWire(FirstDataType, []byte("continued payload"))
	f.Add(w[:HeaderSize], w[HeaderSize:], true)
	f.Add(w[:30], w[30:], false)
	f.Add([]byte{}, []byte{}, true)
	f.Add(w[:10], w[10:], true)
	f.Fuzz(func(t *testing.T, pre, rest []byte, pooled bool) {
		if len(pre) >= HeaderSize {
			size := binary.BigEndian.Uint32(pre[20:24])
			if size > DefaultMaxPayload {
				pre = append([]byte(nil), pre...)
				binary.BigEndian.PutUint32(pre[20:24], size%DefaultMaxPayload)
			}
		}
		var pool *Pool
		if pooled {
			pool = NewPool()
		}
		m, err := ReadContinued(pre, bytes.NewReader(rest), pool)
		if len(pre) < HeaderSize {
			if !errors.Is(err, ErrShortHeader) {
				t.Fatalf("short prefix (%d bytes): err = %v, want ErrShortHeader", len(pre), err)
			}
			return
		}
		if err != nil {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		defer m.Release()
		size := int(binary.BigEndian.Uint32(pre[20:24]))
		if m.Len() != size {
			t.Fatalf("payload length %d, header declared %d", m.Len(), size)
		}
		// The assembled payload must equal pre's tail followed by bytes
		// from rest, byte for byte.
		whole := append(append([]byte(nil), pre...), rest...)
		if len(whole) > HeaderSize+size {
			whole = whole[:HeaderSize+size]
		}
		if !bytes.Equal(m.Payload(), whole[HeaderSize:]) {
			t.Fatal("assembled payload differs from prefix+stream bytes")
		}
	})
}

// FuzzDgramDecode throws arbitrary packets at the datagram frame
// decoder and feeds whatever decodes into a reassembler. Neither may
// panic; a decoded header must be internally consistent; a reassembled
// image must be exactly one well-formed message that re-splits into a
// frame identical to some canonical encoding of the same header.
func FuzzDgramDecode(f *testing.F) {
	src := NodeID{IP: 0x0a000001, Port: 7000}
	whole := AppendDgram(nil, DgramHeader{Src: src, MsgID: 1, FragCnt: 1},
		fuzzWire(FirstDataType, []byte("dgram seed")))
	frag := AppendDgram(nil, DgramHeader{Src: src, MsgID: 2, FragIdx: 1, FragCnt: 3}, []byte("mid chunk"))
	f.Add([]byte{})
	f.Add(whole)
	f.Add(frag)
	f.Add(whole[:DgramHeaderSize+5])
	f.Fuzz(func(t *testing.T, b []byte) {
		h, chunk, err := DecodeDgram(b)
		if err != nil {
			return
		}
		if h.FragCnt < 1 || h.FragCnt > MaxFragments || h.FragIdx >= h.FragCnt || len(chunk) == 0 {
			t.Fatalf("decoded header out of range: %+v chunk=%d", h, len(chunk))
		}
		// Re-encoding the decoded frame must reproduce the input packet.
		if re := AppendDgram(nil, h, chunk); !bytes.Equal(re, b) {
			t.Fatal("re-encoded frame differs from the decoded packet")
		}
		ra := NewReassembler(8)
		wire, ok := ra.Accept(h, chunk)
		if !ok {
			return
		}
		m, n, err := Decode(wire)
		if err != nil || n != len(wire) {
			t.Fatalf("reassembled image is not one whole message: n=%d err=%v", n, err)
		}
		_ = m
	})
}

// FuzzWireRoundTrip builds a message from arbitrary header fields and
// payload, encodes it, and decodes it back: every field — including the
// service-class bit in the wire type — must survive exactly.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(FirstDataType), uint32(0x0a000001), uint32(7000), uint32(1), uint32(2), []byte("x"), false)
	f.Add(uint32(5), uint32(0), uint32(0), uint32(0), uint32(0), []byte{}, false)
	f.Add(uint32(FirstDataType+9), uint32(0xffffffff), uint32(65535), uint32(9), uint32(1<<31), make([]byte, 200), true)
	f.Fuzz(func(t *testing.T, typ, ip, port, app, seq uint32, payload []byte, ctrl bool) {
		wt := Type(typ)
		if ctrl {
			wt = wt.AsControl()
		}
		m := New(wt, NodeID{IP: ip, Port: port}, app, seq, payload)
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != int64(HeaderSize+len(payload)) {
			t.Fatalf("WriteTo wrote %d bytes, want %d", n, HeaderSize+len(payload))
		}
		got, consumed, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if consumed != buf.Len() {
			t.Fatalf("Decode consumed %d of %d", consumed, buf.Len())
		}
		if got.WireType() != wt {
			t.Fatalf("wire type %#x, want %#x (class bit must survive)", got.WireType(), wt)
		}
		if got.Class() != wt.Class() || got.IsControl() != (wt.Class() == ClassControl) {
			t.Fatal("service class changed across the wire")
		}
		if got.Sender() != (NodeID{IP: ip, Port: port}) || got.App() != app || got.Seq() != seq {
			t.Fatal("header fields changed across the wire")
		}
		if !bytes.Equal(got.Payload(), payload) {
			t.Fatal("payload changed across the wire")
		}
	})
}
