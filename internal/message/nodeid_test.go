package message

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestParseIDValid(t *testing.T) {
	tests := []struct {
		in   string
		ip   uint32
		port uint32
	}{
		{"0.0.0.0:0", 0, 0},
		{"10.0.0.1:7000", 10<<24 | 1, 7000},
		{"255.255.255.255:65535", 0xFFFFFFFF, 65535},
		{"128.100.241.68:3000", 128<<24 | 100<<16 | 241<<8 | 68, 3000},
	}
	for _, tt := range tests {
		id, err := ParseID(tt.in)
		if err != nil {
			t.Errorf("ParseID(%q): %v", tt.in, err)
			continue
		}
		if id.IP != tt.ip || id.Port != tt.port {
			t.Errorf("ParseID(%q) = %v, want {%d %d}", tt.in, id, tt.ip, tt.port)
		}
	}
}

func TestParseIDInvalid(t *testing.T) {
	for _, in := range []string{
		"", "10.0.0.1", "10.0.0:80", "10.0.0.256:80", "a.b.c.d:80",
		"10.0.0.1:", "10.0.0.1:notaport", "10.0.0.1:-1", "1.2.3.4.5:80",
	} {
		if _, err := ParseID(in); err == nil {
			t.Errorf("ParseID(%q) succeeded, want error", in)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(ip, port uint32) bool {
		id := NodeID{IP: ip, Port: port}
		parsed, err := ParseID(id.Addr())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeIDPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MakeID with bad IP did not panic")
		}
	}()
	MakeID("not-an-ip", 1)
}

func TestIsZero(t *testing.T) {
	if !ZeroID.IsZero() {
		t.Error("ZeroID.IsZero() = false")
	}
	if MakeID("1.0.0.0", 0).IsZero() {
		t.Error("nonzero id reported zero")
	}
}

func TestLessAndCompareOrdering(t *testing.T) {
	ids := []NodeID{
		MakeID("10.0.0.2", 1),
		MakeID("10.0.0.1", 9),
		MakeID("10.0.0.1", 2),
		MakeID("9.9.9.9", 100),
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	want := []string{"9.9.9.9:100", "10.0.0.1:2", "10.0.0.1:9", "10.0.0.2:1"}
	for i, w := range want {
		if ids[i].String() != w {
			t.Errorf("sorted[%d] = %s, want %s", i, ids[i], w)
		}
	}
	if got := ids[0].Compare(ids[1]); got != -1 {
		t.Errorf("Compare(less) = %d, want -1", got)
	}
	if got := ids[1].Compare(ids[0]); got != 1 {
		t.Errorf("Compare(greater) = %d, want 1", got)
	}
	if got := ids[2].Compare(ids[2]); got != 0 {
		t.Errorf("Compare(equal) = %d, want 0", got)
	}
}
