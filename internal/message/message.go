// Package message implements the iOverlay application-layer message: a
// fixed 24-byte header (type, original sender, application identifier,
// sequence number, payload size) followed by a variable-length payload.
//
// Messages travel through the engine by reference ("zero copying of
// messages" in the paper); a thread-safe reference count governs when a
// payload buffer may be returned to its pool. The content of a message is
// mostly immutable and initialized at construction; only the sequence
// number is modifiable, matching the paper's wire format.
package message

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// HeaderSize is the fixed size of the application-layer header in bytes:
// type (4), sender IP (4), sender port (4), application id (4), sequence
// number (4), payload size (4).
const HeaderSize = 24

// DefaultMaxPayload bounds the payload size accepted by Read when the
// caller does not supply its own limit. The paper uses messages of a
// maximum (but not necessarily fixed) length.
const DefaultMaxPayload = 1 << 20

// Type identifies the kind of a message. Values below FirstDataType are
// reserved for engine- and observer-level control messages; algorithm
// developers allocate their own protocol types at or above FirstUserType.
type Type uint32

// FirstDataType is the first type value treated as application data by the
// engine's switch; everything below it is delivered on the control path.
const FirstDataType Type = 1000

// classControl is the explicit service-class tag: a type with this bit set
// travels in the control class regardless of its numeric value. The bit
// lives inside the type field of the wire header, so the class survives
// every path a message can take — including pre-rendered contiguous wire
// images handed to vectored batch writes, where no out-of-band metadata
// accompanies the bytes.
const classControl Type = 1 << 31

// Class is a message's service class: control messages bypass queued data
// end to end (priority ring lane, switch, sender) and are never shed by
// overload protection; data messages ride the bulk path.
type Class uint8

// Service classes.
const (
	ClassControl Class = iota
	ClassData
)

// String names the class for logs and reports.
func (c Class) String() string {
	if c == ClassControl {
		return "control"
	}
	return "data"
}

// AsControl tags t with the control class, letting algorithms lift one of
// their own data-range protocol types into the priority lane.
func (t Type) AsControl() Type { return t | classControl }

// Class reports the service class encoded by t: reserved types below
// FirstDataType are inherently control, and the explicit class bit lifts
// any other type into the control class.
func (t Type) Class() Class {
	if t&classControl != 0 || t&^classControl < FirstDataType {
		return ClassControl
	}
	return ClassData
}

// Errors returned by the decoding functions.
var (
	ErrPayloadTooLarge = errors.New("message: payload exceeds limit")
	ErrShortHeader     = errors.New("message: short header")
)

// Msg is one application-layer message. A Msg is created with a reference
// count of one; every additional consumer Retains it and every consumer
// Releases it when done. The engine owns destruction: algorithm code never
// releases messages it received from the engine.
type Msg struct {
	typ     Type
	sender  NodeID
	app     uint32
	seq     atomic.Uint32
	payload []byte

	// raw, when non-nil, is the pooled contiguous wire image: HeaderSize
	// rendered header bytes followed by the payload (payload aliases
	// raw[HeaderSize:]). It lets WriteTo emit the whole message with one
	// Write and no copy. The header bytes are (re)rendered only while the
	// message is held privately — at construction and by SetSeq/WithSender
	// before the message is handed to sender goroutines, which only read
	// raw. Derived messages never have raw: their headers differ from the
	// buffer owner's.
	raw []byte

	refs   atomic.Int32
	pool   *Pool
	parent *Msg     // set by Derive: the message owning the shared payload
	seg    *Segment // set by FromSegment: the receive buffer aliased
	owner  Owner    // set by FromOwned: the external buffer aliased
}

// Owner is an external reference-counted buffer a message can alias via
// FromOwned; its Release is called when the message's last reference
// drops.
type Owner interface{ Release() }

// Segment is a pooled, reference-counted receive buffer. A receiver fills
// one with a single bulk socket read and decodes the messages inside it in
// place: each message's payload and wire image alias the segment, which
// stays checked out until every message decoded from it has been released.
// This is the zero-copy receive path — bytes are copied once from the
// (emulated) kernel buffer and never again.
type Segment struct {
	buf  []byte
	refs atomic.Int32
	pool *Pool
}

// Bytes returns the segment's backing storage.
func (s *Segment) Bytes() []byte { return s.buf }

// Release drops one reference; the last release recycles the segment.
func (s *Segment) Release() {
	n := s.refs.Add(-1)
	switch {
	case n == 0:
		if s.pool != nil {
			s.pool.putSegment(s)
		}
	case n < 0:
		panic("message: release of already-released segment")
	}
}

// Refs reports the current reference count; used by tests and leak checks.
func (s *Segment) Refs() int32 { return s.refs.Load() }

// New constructs a message with the given header fields and payload. The
// payload is owned by the message from this point on; callers who need to
// keep the slice must copy it first.
func New(typ Type, sender NodeID, app, seq uint32, payload []byte) *Msg {
	m := &Msg{
		typ:     typ,
		sender:  sender,
		app:     app,
		payload: payload,
	}
	m.seq.Store(seq)
	m.refs.Store(1)
	return m
}

// Type reports the message type with the service-class tag stripped, so
// protocol switches compare against their plain type constants. WireType
// exposes the tagged value.
func (m *Msg) Type() Type { return m.typ &^ classControl }

// WireType reports the type exactly as encoded on the wire, including the
// service-class tag.
func (m *Msg) WireType() Type { return m.typ }

// Class reports the message's service class.
func (m *Msg) Class() Class { return m.typ.Class() }

// IsControl reports whether the message travels in the control class.
func (m *Msg) IsControl() bool { return m.typ.Class() == ClassControl }

// Sender reports the original sender recorded in the header.
func (m *Msg) Sender() NodeID { return m.sender }

// App reports the application identifier the message belongs to.
func (m *Msg) App() uint32 { return m.app }

// Seq reports the (modifiable) sequence number.
func (m *Msg) Seq() uint32 { return m.seq.Load() }

// SetSeq updates the sequence number, the only mutable header field. Like
// all header mutations it must happen before the message is enqueued for
// sending.
func (m *Msg) SetSeq(seq uint32) {
	m.seq.Store(seq)
	if m.raw != nil {
		binary.BigEndian.PutUint32(m.raw[16:20], seq)
	}
}

// Payload returns the application data carried by the message. The slice
// is shared, not copied; callers must not mutate it unless they hold the
// only reference.
func (m *Msg) Payload() []byte { return m.payload }

// Len reports the payload length in bytes.
func (m *Msg) Len() int { return len(m.payload) }

// WireLen reports the total encoded size: header plus payload.
func (m *Msg) WireLen() int { return HeaderSize + len(m.payload) }

// IsData reports whether the engine's switch should treat the message as
// application data (as opposed to a control or protocol message).
func (m *Msg) IsData() bool { return m.typ.Class() == ClassData }

// Retain increments the reference count. It is safe for concurrent use.
func (m *Msg) Retain() *Msg {
	if m.refs.Add(1) <= 1 {
		panic("message: retain after release")
	}
	return m
}

// Release decrements the reference count, returning the payload buffer to
// its pool when the count reaches zero. Releasing more times than the
// message was retained is a bug and panics.
func (m *Msg) Release() {
	n := m.refs.Add(-1)
	switch {
	case n == 0:
		switch {
		case m.parent != nil:
			p := m.parent
			m.parent = nil
			m.payload = nil
			p.Release()
		case m.seg != nil:
			s := m.seg
			m.seg = nil
			m.raw = nil
			m.payload = nil
			s.Release()
		case m.owner != nil:
			o := m.owner
			m.owner = nil
			m.raw = nil
			m.payload = nil
			o.Release()
		case m.pool != nil:
			m.pool.putBuf(m.raw)
			m.raw = nil
			m.payload = nil
			m.pool = nil
		}
	case n < 0:
		panic("message: release of already-released message")
	}
}

// Refs reports the current reference count; used by tests and leak checks.
func (m *Msg) Refs() int32 { return m.refs.Load() }

// Clone deep-copies the message, corresponding to the Msg copy constructor
// in the paper. The clone has an independent reference count of one and no
// pool association. Algorithms must clone non-data messages received from
// the engine before re-sending them.
func (m *Msg) Clone() *Msg {
	p := make([]byte, len(m.payload))
	copy(p, m.payload)
	return New(m.typ, m.sender, m.app, m.Seq(), p)
}

// Derive returns a new message sharing m's payload under a rewritten
// header — the zero-copy retype used when a node re-labels a data stream
// (for example the source in the network-coding case study splitting one
// application stream into substreams). The derived message holds a
// reference on m, which is released when the derived message's own count
// reaches zero.
func (m *Msg) Derive(typ Type, sender NodeID, app, seq uint32) *Msg {
	m.Retain()
	d := New(typ, sender, app, seq, m.payload)
	d.parent = m
	return d
}

// WithSender returns a shallow header rewrite used when the engine stamps
// the local node as the original sender of a newly constructed message.
func (m *Msg) WithSender(id NodeID) *Msg {
	m.sender = id
	if m.raw != nil {
		binary.BigEndian.PutUint32(m.raw[4:8], id.IP)
		binary.BigEndian.PutUint32(m.raw[8:12], id.Port)
	}
	return m
}

// String renders a compact human-readable description for logs and traces.
func (m *Msg) String() string {
	return fmt.Sprintf("msg{type=%d sender=%s app=%d seq=%d len=%d}",
		m.typ, m.sender, m.app, m.Seq(), len(m.payload))
}

// AppendHeader appends the 24-byte wire header to dst and returns the
// extended slice.
func (m *Msg) AppendHeader(dst []byte) []byte {
	var h [HeaderSize]byte
	binary.BigEndian.PutUint32(h[0:4], uint32(m.typ))
	binary.BigEndian.PutUint32(h[4:8], m.sender.IP)
	binary.BigEndian.PutUint32(h[8:12], m.sender.Port)
	binary.BigEndian.PutUint32(h[12:16], m.app)
	binary.BigEndian.PutUint32(h[16:20], m.Seq())
	binary.BigEndian.PutUint32(h[20:24], uint32(len(m.payload)))
	return append(dst, h[:]...)
}

// WriteTo encodes the message to w: header followed by payload. It
// implements io.WriterTo. Pool-backed messages hold the whole wire image
// contiguously and emit it with a single Write and no copying.
func (m *Msg) WriteTo(w io.Writer) (int64, error) {
	if m.raw != nil {
		n, err := w.Write(m.raw[:HeaderSize+len(m.payload)])
		return int64(n), err
	}
	var h [HeaderSize]byte
	buf := m.AppendHeader(h[:0])
	n, err := w.Write(buf)
	written := int64(n)
	if err != nil {
		return written, err
	}
	if len(m.payload) > 0 {
		n, err = w.Write(m.payload)
		written += int64(n)
	}
	return written, err
}

// Wire returns the message's contiguous wire image when it has one (all
// pool-backed messages do), or nil. Senders use it to hand whole batches
// to vectored writers without per-message copies.
func (m *Msg) Wire() []byte {
	if m.raw == nil {
		return nil
	}
	return m.raw[:HeaderSize+len(m.payload)]
}

// renderHeader writes the current header fields into the raw wire buffer.
// Only called while the message is held privately (construction, SetSeq,
// WithSender); sender goroutines afterwards only read the buffer.
func (m *Msg) renderHeader() {
	binary.BigEndian.PutUint32(m.raw[0:4], uint32(m.typ))
	binary.BigEndian.PutUint32(m.raw[4:8], m.sender.IP)
	binary.BigEndian.PutUint32(m.raw[8:12], m.sender.Port)
	binary.BigEndian.PutUint32(m.raw[12:16], m.app)
	binary.BigEndian.PutUint32(m.raw[16:20], m.Seq())
	binary.BigEndian.PutUint32(m.raw[20:24], uint32(len(m.payload)))
}

// Read decodes one message from r, allocating the payload from pool when
// pool is non-nil. maxPayload bounds the accepted payload size; a value of
// zero means DefaultMaxPayload. Read returns io.EOF only when no bytes of
// the next message were consumed, io.ErrUnexpectedEOF on truncation.
func Read(r io.Reader, pool *Pool, maxPayload int) (*Msg, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(h[20:24])
	if int(size) > maxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, size, maxPayload)
	}
	var payload, raw []byte
	if pool != nil {
		raw = pool.getRaw(int(size))
		copy(raw, h[:]) // the wire image keeps the header it arrived with
		payload = raw[HeaderSize:]
	} else if size > 0 {
		payload = make([]byte, size)
	}
	if size > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			if pool != nil {
				pool.putBuf(raw)
			}
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	m := New(Type(binary.BigEndian.Uint32(h[0:4])),
		NodeID{
			IP:   binary.BigEndian.Uint32(h[4:8]),
			Port: binary.BigEndian.Uint32(h[8:12]),
		},
		binary.BigEndian.Uint32(h[12:16]),
		binary.BigEndian.Uint32(h[16:20]),
		payload)
	m.pool = pool
	m.raw = raw
	return m, nil
}

// PeekWireLen inspects the next message's header in br without consuming
// any bytes and reports its total wire length (header plus payload). It
// never blocks: ok is false when fewer than HeaderSize bytes are already
// buffered. Receivers use it to decode batches of fully arrived messages
// without risking a blocking read mid-batch.
func PeekWireLen(br *bufio.Reader) (n int, ok bool) {
	if br.Buffered() < HeaderSize {
		return 0, false
	}
	h, err := br.Peek(HeaderSize)
	if err != nil {
		return 0, false
	}
	return HeaderSize + int(binary.BigEndian.Uint32(h[20:24])), true
}

// PeekPayloadLen reports the payload size encoded in the wire header at
// the start of b; ok is false when b holds fewer than HeaderSize bytes.
func PeekPayloadLen(b []byte) (size int, ok bool) {
	if len(b) < HeaderSize {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(b[20:24])), true
}

// headerMsg builds a Msg from the wire header at the start of b and the
// given payload slice.
func headerMsg(b, payload []byte) *Msg {
	return New(Type(binary.BigEndian.Uint32(b[0:4])),
		NodeID{
			IP:   binary.BigEndian.Uint32(b[4:8]),
			Port: binary.BigEndian.Uint32(b[8:12]),
		},
		binary.BigEndian.Uint32(b[12:16]),
		binary.BigEndian.Uint32(b[16:20]),
		payload)
}

// FromSegment decodes the message whose complete wire image begins at
// offset off in seg. Payload and wire image alias the segment — no copy —
// and the message holds a reference on the segment until its own count
// reaches zero. The caller must have verified (via PeekPayloadLen) that
// every byte of the message is present.
func FromSegment(seg *Segment, off int) *Msg {
	b := seg.buf[off:]
	size := int(binary.BigEndian.Uint32(b[20:24]))
	wire := HeaderSize + size
	m := headerMsg(b, b[HeaderSize:wire:wire])
	m.raw = b[:wire:wire]
	m.seg = seg
	seg.refs.Add(1)
	return m
}

// FromOwned decodes the complete message at the start of b without
// copying: payload and wire image alias b, and the message takes over
// the caller's reference on owner, releasing it when the message's own
// count reaches zero. The datagram counterpart of FromSegment — the
// receive buffer is pinned, not copied — except the reference is handed
// over rather than added: the caller must not release owner itself. The
// caller must have validated the wire image.
func FromOwned(b []byte, owner Owner) *Msg {
	size := int(binary.BigEndian.Uint32(b[20:24]))
	wire := HeaderSize + size
	m := headerMsg(b, b[HeaderSize:wire:wire])
	m.raw = b[:wire:wire]
	m.owner = owner
	return m
}

// FromBytes decodes the complete message at the start of b into a fresh
// pool-backed wire buffer, copying the bytes. Receivers use it for bursts
// too small to justify pinning a whole segment.
func FromBytes(b []byte, pool *Pool) *Msg {
	size := int(binary.BigEndian.Uint32(b[20:24]))
	wire := HeaderSize + size
	var payload, raw []byte
	if pool != nil {
		raw = pool.getRaw(size)
		copy(raw, b[:wire])
		payload = raw[HeaderSize:]
	} else if size > 0 {
		payload = make([]byte, size)
		copy(payload, b[HeaderSize:wire])
	}
	m := headerMsg(b, payload)
	m.pool = pool
	m.raw = raw
	return m
}

// ReadContinued assembles a message whose wire prefix pre (beginning at
// the header, which must be complete) has already been received, reading
// the remaining bytes from r. Receivers use it for messages too large to
// fit a receive segment.
func ReadContinued(pre []byte, r io.Reader, pool *Pool) (*Msg, error) {
	if len(pre) < HeaderSize {
		return nil, ErrShortHeader
	}
	size := int(binary.BigEndian.Uint32(pre[20:24]))
	wire := HeaderSize + size
	var payload, raw []byte
	if pool != nil {
		raw = pool.getRaw(size)
		copy(raw, pre)
		payload = raw[HeaderSize:]
	} else {
		payload = make([]byte, size)
		copy(payload, pre[HeaderSize:])
	}
	have := len(pre)
	if have > wire {
		have = wire
	}
	if have < wire {
		var rest []byte
		if raw != nil {
			rest = raw[have:wire]
		} else {
			rest = payload[have-HeaderSize:]
		}
		if _, err := io.ReadFull(r, rest); err != nil {
			if pool != nil {
				pool.putBuf(raw)
			}
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	m := headerMsg(pre, payload)
	m.pool = pool
	m.raw = raw
	return m, nil
}

// Decode parses one message from a byte slice, returning the message and
// the number of bytes consumed. The payload aliases b; callers that retain
// the message beyond the lifetime of b must Clone it.
func Decode(b []byte) (*Msg, int, error) {
	if len(b) < HeaderSize {
		return nil, 0, ErrShortHeader
	}
	size := int(binary.BigEndian.Uint32(b[20:24]))
	if len(b) < HeaderSize+size {
		return nil, 0, io.ErrUnexpectedEOF
	}
	m := New(Type(binary.BigEndian.Uint32(b[0:4])),
		NodeID{
			IP:   binary.BigEndian.Uint32(b[4:8]),
			Port: binary.BigEndian.Uint32(b[8:12]),
		},
		binary.BigEndian.Uint32(b[12:16]),
		binary.BigEndian.Uint32(b[16:20]),
		b[HeaderSize:HeaderSize+size])
	return m, HeaderSize + size, nil
}
