// Package message implements the iOverlay application-layer message: a
// fixed 24-byte header (type, original sender, application identifier,
// sequence number, payload size) followed by a variable-length payload.
//
// Messages travel through the engine by reference ("zero copying of
// messages" in the paper); a thread-safe reference count governs when a
// payload buffer may be returned to its pool. The content of a message is
// mostly immutable and initialized at construction; only the sequence
// number is modifiable, matching the paper's wire format.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// HeaderSize is the fixed size of the application-layer header in bytes:
// type (4), sender IP (4), sender port (4), application id (4), sequence
// number (4), payload size (4).
const HeaderSize = 24

// DefaultMaxPayload bounds the payload size accepted by Read when the
// caller does not supply its own limit. The paper uses messages of a
// maximum (but not necessarily fixed) length.
const DefaultMaxPayload = 1 << 20

// Type identifies the kind of a message. Values below FirstDataType are
// reserved for engine- and observer-level control messages; algorithm
// developers allocate their own protocol types at or above FirstUserType.
type Type uint32

// FirstDataType is the first type value treated as application data by the
// engine's switch; everything below it is delivered on the control path.
const FirstDataType Type = 1000

// Errors returned by the decoding functions.
var (
	ErrPayloadTooLarge = errors.New("message: payload exceeds limit")
	ErrShortHeader     = errors.New("message: short header")
)

// Msg is one application-layer message. A Msg is created with a reference
// count of one; every additional consumer Retains it and every consumer
// Releases it when done. The engine owns destruction: algorithm code never
// releases messages it received from the engine.
type Msg struct {
	typ     Type
	sender  NodeID
	app     uint32
	seq     atomic.Uint32
	payload []byte

	refs   atomic.Int32
	pool   *Pool
	parent *Msg // set by Derive: the message owning the shared payload
}

// New constructs a message with the given header fields and payload. The
// payload is owned by the message from this point on; callers who need to
// keep the slice must copy it first.
func New(typ Type, sender NodeID, app, seq uint32, payload []byte) *Msg {
	m := &Msg{
		typ:     typ,
		sender:  sender,
		app:     app,
		payload: payload,
	}
	m.seq.Store(seq)
	m.refs.Store(1)
	return m
}

// Type reports the message type.
func (m *Msg) Type() Type { return m.typ }

// Sender reports the original sender recorded in the header.
func (m *Msg) Sender() NodeID { return m.sender }

// App reports the application identifier the message belongs to.
func (m *Msg) App() uint32 { return m.app }

// Seq reports the (modifiable) sequence number.
func (m *Msg) Seq() uint32 { return m.seq.Load() }

// SetSeq updates the sequence number, the only mutable header field.
func (m *Msg) SetSeq(seq uint32) { m.seq.Store(seq) }

// Payload returns the application data carried by the message. The slice
// is shared, not copied; callers must not mutate it unless they hold the
// only reference.
func (m *Msg) Payload() []byte { return m.payload }

// Len reports the payload length in bytes.
func (m *Msg) Len() int { return len(m.payload) }

// WireLen reports the total encoded size: header plus payload.
func (m *Msg) WireLen() int { return HeaderSize + len(m.payload) }

// IsData reports whether the engine's switch should treat the message as
// application data (as opposed to a control or protocol message).
func (m *Msg) IsData() bool { return m.typ >= FirstDataType }

// Retain increments the reference count. It is safe for concurrent use.
func (m *Msg) Retain() *Msg {
	if m.refs.Add(1) <= 1 {
		panic("message: retain after release")
	}
	return m
}

// Release decrements the reference count, returning the payload buffer to
// its pool when the count reaches zero. Releasing more times than the
// message was retained is a bug and panics.
func (m *Msg) Release() {
	n := m.refs.Add(-1)
	switch {
	case n == 0:
		switch {
		case m.parent != nil:
			p := m.parent
			m.parent = nil
			m.payload = nil
			p.Release()
		case m.pool != nil:
			m.pool.putBuf(m.payload)
			m.payload = nil
			m.pool = nil
		}
	case n < 0:
		panic("message: release of already-released message")
	}
}

// Refs reports the current reference count; used by tests and leak checks.
func (m *Msg) Refs() int32 { return m.refs.Load() }

// Clone deep-copies the message, corresponding to the Msg copy constructor
// in the paper. The clone has an independent reference count of one and no
// pool association. Algorithms must clone non-data messages received from
// the engine before re-sending them.
func (m *Msg) Clone() *Msg {
	p := make([]byte, len(m.payload))
	copy(p, m.payload)
	return New(m.typ, m.sender, m.app, m.Seq(), p)
}

// Derive returns a new message sharing m's payload under a rewritten
// header — the zero-copy retype used when a node re-labels a data stream
// (for example the source in the network-coding case study splitting one
// application stream into substreams). The derived message holds a
// reference on m, which is released when the derived message's own count
// reaches zero.
func (m *Msg) Derive(typ Type, sender NodeID, app, seq uint32) *Msg {
	m.Retain()
	d := New(typ, sender, app, seq, m.payload)
	d.parent = m
	return d
}

// WithSender returns a shallow header rewrite used when the engine stamps
// the local node as the original sender of a newly constructed message.
func (m *Msg) WithSender(id NodeID) *Msg {
	m.sender = id
	return m
}

// String renders a compact human-readable description for logs and traces.
func (m *Msg) String() string {
	return fmt.Sprintf("msg{type=%d sender=%s app=%d seq=%d len=%d}",
		m.typ, m.sender, m.app, m.Seq(), len(m.payload))
}

// AppendHeader appends the 24-byte wire header to dst and returns the
// extended slice.
func (m *Msg) AppendHeader(dst []byte) []byte {
	var h [HeaderSize]byte
	binary.BigEndian.PutUint32(h[0:4], uint32(m.typ))
	binary.BigEndian.PutUint32(h[4:8], m.sender.IP)
	binary.BigEndian.PutUint32(h[8:12], m.sender.Port)
	binary.BigEndian.PutUint32(h[12:16], m.app)
	binary.BigEndian.PutUint32(h[16:20], m.Seq())
	binary.BigEndian.PutUint32(h[20:24], uint32(len(m.payload)))
	return append(dst, h[:]...)
}

// WriteTo encodes the message to w: header followed by payload. It
// implements io.WriterTo.
func (m *Msg) WriteTo(w io.Writer) (int64, error) {
	var h [HeaderSize]byte
	buf := m.AppendHeader(h[:0])
	n, err := w.Write(buf)
	written := int64(n)
	if err != nil {
		return written, err
	}
	if len(m.payload) > 0 {
		n, err = w.Write(m.payload)
		written += int64(n)
	}
	return written, err
}

// Read decodes one message from r, allocating the payload from pool when
// pool is non-nil. maxPayload bounds the accepted payload size; a value of
// zero means DefaultMaxPayload. Read returns io.EOF only when no bytes of
// the next message were consumed, io.ErrUnexpectedEOF on truncation.
func Read(r io.Reader, pool *Pool, maxPayload int) (*Msg, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(h[20:24])
	if int(size) > maxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, size, maxPayload)
	}
	var payload []byte
	if size > 0 {
		if pool != nil {
			payload = pool.getBuf(int(size))
		} else {
			payload = make([]byte, size)
		}
		if _, err := io.ReadFull(r, payload); err != nil {
			if pool != nil {
				pool.putBuf(payload)
			}
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	m := New(Type(binary.BigEndian.Uint32(h[0:4])),
		NodeID{
			IP:   binary.BigEndian.Uint32(h[4:8]),
			Port: binary.BigEndian.Uint32(h[8:12]),
		},
		binary.BigEndian.Uint32(h[12:16]),
		binary.BigEndian.Uint32(h[16:20]),
		payload)
	m.pool = pool
	return m, nil
}

// Decode parses one message from a byte slice, returning the message and
// the number of bytes consumed. The payload aliases b; callers that retain
// the message beyond the lifetime of b must Clone it.
func Decode(b []byte) (*Msg, int, error) {
	if len(b) < HeaderSize {
		return nil, 0, ErrShortHeader
	}
	size := int(binary.BigEndian.Uint32(b[20:24]))
	if len(b) < HeaderSize+size {
		return nil, 0, io.ErrUnexpectedEOF
	}
	m := New(Type(binary.BigEndian.Uint32(b[0:4])),
		NodeID{
			IP:   binary.BigEndian.Uint32(b[4:8]),
			Port: binary.BigEndian.Uint32(b[8:12]),
		},
		binary.BigEndian.Uint32(b[12:16]),
		binary.BigEndian.Uint32(b[16:20]),
		b[HeaderSize:HeaderSize+size])
	return m, HeaderSize + size, nil
}
