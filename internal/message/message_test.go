package message

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewAccessors(t *testing.T) {
	sender := MakeID("10.0.0.1", 7000)
	payload := []byte("hello overlay")
	m := New(2000, sender, 7, 42, payload)

	if got := m.Type(); got != 2000 {
		t.Errorf("Type() = %d, want 2000", got)
	}
	if got := m.Sender(); got != sender {
		t.Errorf("Sender() = %v, want %v", got, sender)
	}
	if got := m.App(); got != 7 {
		t.Errorf("App() = %d, want 7", got)
	}
	if got := m.Seq(); got != 42 {
		t.Errorf("Seq() = %d, want 42", got)
	}
	if !bytes.Equal(m.Payload(), payload) {
		t.Errorf("Payload() = %q, want %q", m.Payload(), payload)
	}
	if got := m.Len(); got != len(payload) {
		t.Errorf("Len() = %d, want %d", got, len(payload))
	}
	if got := m.WireLen(); got != HeaderSize+len(payload) {
		t.Errorf("WireLen() = %d, want %d", got, HeaderSize+len(payload))
	}
}

func TestSetSeqIsOnlyMutableField(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 1, nil)
	m.SetSeq(99)
	if got := m.Seq(); got != 99 {
		t.Errorf("Seq() after SetSeq = %d, want 99", got)
	}
}

func TestIsData(t *testing.T) {
	tests := []struct {
		typ  Type
		want bool
	}{
		{0, false},
		{FirstDataType - 1, false},
		{FirstDataType, true},
		{FirstDataType + 500, true},
	}
	for _, tt := range tests {
		if got := New(tt.typ, ZeroID, 0, 0, nil).IsData(); got != tt.want {
			t.Errorf("IsData() for type %d = %v, want %v", tt.typ, got, tt.want)
		}
	}
}

func TestWriteToReadRoundTrip(t *testing.T) {
	sender := MakeID("192.168.1.20", 9999)
	payload := bytes.Repeat([]byte{0xAB}, 5000)
	m := New(1234, sender, 3, 77, payload)

	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(m.WireLen()) {
		t.Fatalf("WriteTo wrote %d bytes, want %d", n, m.WireLen())
	}

	got, err := Read(&buf, nil, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Type() != m.Type() || got.Sender() != m.Sender() ||
		got.App() != m.App() || got.Seq() != m.Seq() {
		t.Errorf("round trip header mismatch: got %v, want %v", got, m)
	}
	if !bytes.Equal(got.Payload(), payload) {
		t.Error("round trip payload mismatch")
	}
}

func TestReadRejectsOversizedPayload(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, make([]byte, 128))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	_, err := Read(&buf, nil, 64)
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("Read with small limit: err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestReadEOFAtMessageBoundary(t *testing.T) {
	_, err := Read(strings.NewReader(""), nil, 0)
	if !errors.Is(err, io.EOF) {
		t.Errorf("Read on empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadTruncatedPayload(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, make([]byte, 100))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	truncated := buf.Bytes()[:buf.Len()-10]
	_, err := Read(bytes.NewReader(truncated), nil, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("Read truncated: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadTruncatedHeader(t *testing.T) {
	_, err := Read(bytes.NewReader(make([]byte, HeaderSize-3)), nil, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("Read short header: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestDecode(t *testing.T) {
	m := New(2001, MakeID("1.2.3.4", 55), 9, 10, []byte("xyz"))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	// Append trailing garbage: Decode must report the exact consumed count.
	raw := append(buf.Bytes(), 0xFF, 0xFF)

	got, n, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != m.WireLen() {
		t.Errorf("Decode consumed %d, want %d", n, m.WireLen())
	}
	if got.Type() != m.Type() || !bytes.Equal(got.Payload(), m.Payload()) {
		t.Errorf("Decode mismatch: %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, 5)); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short buffer: err = %v, want ErrShortHeader", err)
	}
	m := New(FirstDataType, ZeroID, 0, 0, make([]byte, 64))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(buf.Bytes()[:HeaderSize+10]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(typ uint32, ip uint32, port uint32, app, seq uint32, payload []byte) bool {
		m := New(Type(typ), NodeID{IP: ip, Port: port}, app, seq, payload)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf, nil, len(payload)+1)
		if err != nil {
			return false
		}
		return got.Type() == m.Type() && got.Sender() == m.Sender() &&
			got.App() == m.App() && got.Seq() == m.Seq() &&
			bytes.Equal(got.Payload(), m.Payload())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRetainRelease(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, []byte("x"))
	if got := m.Refs(); got != 1 {
		t.Fatalf("initial Refs() = %d, want 1", got)
	}
	m.Retain()
	m.Retain()
	if got := m.Refs(); got != 3 {
		t.Fatalf("Refs() after two retains = %d, want 3", got)
	}
	m.Release()
	m.Release()
	m.Release()
	if got := m.Refs(); got != 0 {
		t.Fatalf("Refs() after full release = %d, want 0", got)
	}
}

func TestReleasePanicsOnOverRelease(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, nil)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Error("Release on released message did not panic")
		}
	}()
	m.Release()
}

func TestRetainPanicsAfterRelease(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, nil)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain after release did not panic")
		}
	}()
	m.Retain()
}

func TestCloneIsIndependent(t *testing.T) {
	orig := New(2000, MakeID("10.0.0.1", 1), 1, 5, []byte("abc"))
	cl := orig.Clone()
	cl.Payload()[0] = 'Z'
	cl.SetSeq(100)
	if orig.Payload()[0] != 'a' {
		t.Error("Clone shares payload with original")
	}
	if orig.Seq() != 5 {
		t.Error("Clone shares sequence number with original")
	}
	cl.Release()
	if orig.Refs() != 1 {
		t.Error("Clone release affected original refcount")
	}
}

func TestConcurrentRetainRelease(t *testing.T) {
	m := New(FirstDataType, ZeroID, 0, 0, []byte("shared"))
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		m.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Retain()
				m.Release()
			}
			m.Release()
		}()
	}
	wg.Wait()
	if got := m.Refs(); got != 1 {
		t.Errorf("Refs() after concurrent churn = %d, want 1", got)
	}
}

func TestPoolRecyclesBuffers(t *testing.T) {
	p := NewPool()
	m := p.Get(FirstDataType, ZeroID, 0, 0, 500)
	if m.Len() != 500 {
		t.Fatalf("pool Get length = %d, want 500", m.Len())
	}
	buf := m.Payload()
	m.Release()
	// The same size class should hand the buffer back.
	m2 := p.Get(FirstDataType, ZeroID, 0, 1, 400)
	if &buf[0] != &m2.Payload()[0] {
		t.Log("pool did not recycle buffer (allowed, sync.Pool may drop), checking length only")
	}
	if m2.Len() != 400 {
		t.Fatalf("pool Get length = %d, want 400", m2.Len())
	}
	m2.Release()
}

func TestPoolReadUsesPool(t *testing.T) {
	p := NewPool()
	src := New(FirstDataType, ZeroID, 1, 2, bytes.Repeat([]byte{7}, 1000))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf, p, 0)
	if err != nil {
		t.Fatalf("Read with pool: %v", err)
	}
	if !bytes.Equal(m.Payload(), src.Payload()) {
		t.Error("pooled read payload mismatch")
	}
	m.Release()
}

func TestPoolHugeBufferFallsBack(t *testing.T) {
	p := NewPool()
	m := p.Get(FirstDataType, ZeroID, 0, 0, (1<<22)+1)
	if m.Len() != (1<<22)+1 {
		t.Fatalf("huge Get length = %d", m.Len())
	}
	m.Release() // must not panic even though the buffer is unpooled
}

func TestClassFor(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		// Even classes are powers of two, odd classes the 1.5× midpoints:
		// 64, 96, 128, 192, 256, ... so mixed sizes waste at most 1/3.
		{1, 0}, {64, 0}, {65, 1}, {96, 1}, {97, 2}, {128, 2},
		{129, 3}, {192, 3}, {193, 4}, {256, 4},
		{5 << 10, 13}, // the paper's 5 KB payloads → the 6 KB class
		{1 << 22, numClasses - 1}, {(1 << 22) + 1, -1},
	}
	for _, tt := range tests {
		if got := classFor(tt.n); got != tt.want {
			t.Errorf("classFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	for c := 0; c < numClasses; c++ {
		size := classSize(c)
		if got := classFor(size); got != c {
			t.Errorf("classFor(classSize(%d)=%d) = %d, want %d", c, size, got, c)
		}
		if c > 0 && classFor(classSize(c-1)+1) != c {
			t.Errorf("classFor(%d) != %d: classes not contiguous", classSize(c-1)+1, c)
		}
	}
	if classSize(classFor(5<<10)) != 6<<10 {
		t.Errorf("5 KB payload lands in %d-byte class, want 6144", classSize(classFor(5<<10)))
	}
}

func TestDeriveSharesPayloadZeroCopy(t *testing.T) {
	orig := New(FirstDataType, MakeID("10.0.0.1", 1), 1, 5, []byte("shared payload"))
	d := orig.Derive(FirstDataType+3, MakeID("10.0.0.2", 2), 9, 0)
	if d.Type() != FirstDataType+3 || d.App() != 9 || d.Seq() != 0 {
		t.Errorf("derived header = %v", d)
	}
	if d.Sender() != MakeID("10.0.0.2", 2) {
		t.Errorf("derived sender = %v", d.Sender())
	}
	if &d.Payload()[0] != &orig.Payload()[0] {
		t.Error("Derive copied the payload")
	}
	// Derive retained the parent.
	if orig.Refs() != 2 {
		t.Errorf("parent refs = %d, want 2", orig.Refs())
	}
	d.Release()
	if orig.Refs() != 1 {
		t.Errorf("parent refs after derived release = %d, want 1", orig.Refs())
	}
	orig.Release()
}

func TestDerivedPooledBufferReturnsOnlyAfterBothReleased(t *testing.T) {
	p := NewPool()
	orig := p.Get(FirstDataType, ZeroID, 1, 0, 256)
	buf := orig.Payload()
	d := orig.Derive(FirstDataType+1, ZeroID, 1, 1)
	orig.Release() // parent's own ref gone; derived still holds it
	// Buffer must not be recycled yet: a fresh Get of the same class
	// must not alias it while the derived message is alive.
	probe := p.Get(FirstDataType, ZeroID, 1, 2, 256)
	if len(buf) > 0 && len(probe.Payload()) > 0 && &probe.Payload()[0] == &buf[0] {
		t.Fatal("pooled buffer recycled while derived message alive")
	}
	probe.Release()
	d.Release() // now the parent's pool buffer may be recycled
}

func TestDeriveChain(t *testing.T) {
	orig := New(FirstDataType, ZeroID, 1, 0, []byte("abc"))
	d1 := orig.Derive(FirstDataType+1, ZeroID, 1, 1)
	d2 := d1.Derive(FirstDataType+2, ZeroID, 1, 2)
	if string(d2.Payload()) != "abc" {
		t.Error("chained derive lost payload")
	}
	d2.Release()
	d1.Release()
	if orig.Refs() != 1 {
		t.Errorf("root refs = %d after chain release, want 1", orig.Refs())
	}
	orig.Release()
}
