package message

import "sync"

// Pool recycles payload buffers between the receiving and sending sockets,
// supporting the paper's zero-copy, leak-free message lifecycle: buffers
// are checked out by Read, travel by reference through the engine, and
// return here when the last reference is released.
//
// Buffers are binned by power-of-two size class up to maxClass; larger
// requests fall back to plain allocation.
type Pool struct {
	classes [maxClassBits + 1]sync.Pool
}

const (
	minClassBits = 6  // 64 B
	maxClassBits = 22 // 4 MiB
)

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

func classFor(n int) int {
	bits := minClassBits
	for n > 1<<bits {
		bits++
		if bits > maxClassBits {
			return -1
		}
	}
	return bits
}

// getBuf returns a buffer of length n, recycled when possible.
func (p *Pool) getBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := p.classes[c].Get(); v != nil {
		buf := *(v.(*[]byte))
		return buf[:n]
	}
	return make([]byte, n, 1<<c)
}

// putBuf returns a buffer to the pool. Buffers whose capacity does not
// match a size class exactly are dropped for the garbage collector.
func (p *Pool) putBuf(buf []byte) {
	c := classFor(cap(buf))
	if c < 0 || cap(buf) != 1<<c {
		return
	}
	full := buf[:cap(buf)]
	p.classes[c].Put(&full)
}

// Get allocates an n-byte payload from the pool and wraps it in a message
// whose Release returns the buffer here. The payload contents are
// unspecified; callers overwrite them.
func (p *Pool) Get(typ Type, sender NodeID, app, seq uint32, n int) *Msg {
	m := New(typ, sender, app, seq, p.getBuf(n))
	m.pool = p
	return m
}
