package message

import (
	"math/bits"
	"sync"
)

// Pool recycles payload buffers between the receiving and sending sockets,
// supporting the paper's zero-copy, leak-free message lifecycle: buffers
// are checked out by Read, travel by reference through the engine, and
// return here when the last reference is released.
//
// Buffers are binned by size class — the powers of two plus their 1.5×
// midpoints (64, 96, 128, 192, 256, ...), so mixed payload sizes are not
// round-tripped through buffers up to twice the needed size (the paper's
// 5 KB payloads recycle through 6 KB buffers rather than 8 KB ones).
// Requests above the largest class fall back to plain allocation.
type Pool struct {
	classes  [numClasses]sync.Pool
	segments sync.Pool
}

// SegmentSize is the capacity of one receive segment: sized to swallow a
// full default vnet pipe (64 KB) in a single read.
const SegmentSize = 64 << 10

// GetSegment checks a receive segment out of the pool, holding one owner
// reference for the caller.
func (p *Pool) GetSegment() *Segment {
	if v := p.segments.Get(); v != nil {
		s := v.(*Segment)
		s.refs.Store(1)
		return s
	}
	s := &Segment{buf: make([]byte, SegmentSize), pool: p}
	s.refs.Store(1)
	return s
}

// putSegment returns a fully released segment to the pool.
func (p *Pool) putSegment(s *Segment) { p.segments.Put(s) }

const (
	minClassBits = 6  // smallest class: 64 B
	maxClassBits = 22 // largest class: 4 MiB
	numClasses   = 2*(maxClassBits-minClassBits) + 1
	maxClassSize = 1 << maxClassBits
)

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// classFor returns the index of the smallest size class holding n bytes,
// or -1 when n exceeds the largest class. Even indices are the powers of
// two 1<<(minClassBits+i/2); odd indices are the midpoints 1.5× the
// preceding power.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > maxClassSize {
		return -1
	}
	k := bits.Len(uint(n - 1)) // smallest power of two ≥ n is 1<<k
	if n <= 3<<(k-2) {         // midpoint class between 1<<(k-1) and 1<<k
		return 2*(k-minClassBits) - 1
	}
	return 2 * (k - minClassBits)
}

// classSize reports the buffer capacity of class c.
func classSize(c int) int {
	if c%2 == 0 {
		return 1 << (minClassBits + c/2)
	}
	return 3 << (minClassBits + (c-1)/2 - 1)
}

// getRaw returns a wire-image buffer of length HeaderSize+n — header room
// followed by an n-byte payload region — recycled when possible. Buffers
// are classed by their total (header-inclusive) size.
func (p *Pool) getRaw(n int) []byte {
	total := HeaderSize + n
	c := classFor(total)
	if c < 0 {
		return make([]byte, total)
	}
	if v := p.classes[c].Get(); v != nil {
		buf := *(v.(*[]byte))
		return buf[:total]
	}
	return make([]byte, total, classSize(c))
}

// putBuf returns a buffer to the pool. Buffers whose capacity does not
// match a size class exactly are dropped for the garbage collector.
func (p *Pool) putBuf(buf []byte) {
	c := classFor(cap(buf))
	if c < 0 || cap(buf) != classSize(c) {
		return
	}
	full := buf[:cap(buf)]
	p.classes[c].Put(&full)
}

// Get allocates an n-byte payload from the pool and wraps it in a message
// whose Release returns the buffer here. The payload contents are
// unspecified; callers overwrite them.
func (p *Pool) Get(typ Type, sender NodeID, app, seq uint32, n int) *Msg {
	raw := p.getRaw(n)
	m := New(typ, sender, app, seq, raw[HeaderSize:])
	m.pool = p
	m.raw = raw
	m.renderHeader()
	return m
}
