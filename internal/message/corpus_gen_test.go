package message

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeCorpusFile renders one seed in the "go test fuzz v1" file format
// the fuzzing engine reads from testdata/fuzz/<FuzzName>/.
func writeCorpusFile(t *testing.T, fuzzName, seedName string, values ...any) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range values {
		switch x := v.(type) {
		case []byte:
			body += fmt.Sprintf("[]byte(%q)\n", x)
		case uint32:
			body += fmt.Sprintf("uint32(%d)\n", x)
		case bool:
			body += fmt.Sprintf("bool(%v)\n", x)
		default:
			t.Fatalf("unsupported corpus value type %T", v)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenerateSeedCorpus rewrites the committed seed corpora under
// testdata/fuzz from the current wire encoder. Run with
// IOVERLAY_REGEN_CORPUS=1 after changing the wire format; a plain
// `go test` skips it and the fuzzing engine validates the committed
// files by executing them as part of every test run.
func TestRegenerateSeedCorpus(t *testing.T) {
	if os.Getenv("IOVERLAY_REGEN_CORPUS") == "" {
		t.Skip("set IOVERLAY_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	small := fuzzWire(FirstDataType, []byte("seed payload"))
	ctrl := fuzzWire((FirstDataType + 1).AsControl(), []byte("tagged"))
	boundary := fuzzWire(FirstDataType+2, make([]byte, 64))

	writeCorpusFile(t, "FuzzDecode", "seed-small", small)
	writeCorpusFile(t, "FuzzDecode", "seed-control-bit", ctrl)
	writeCorpusFile(t, "FuzzDecode", "seed-class-boundary", boundary)

	writeCorpusFile(t, "FuzzRead", "seed-stream", small, true)
	writeCorpusFile(t, "FuzzRead", "seed-truncated", small[:len(small)-3], false)

	writeCorpusFile(t, "FuzzReadContinued", "seed-header-split",
		small[:HeaderSize], small[HeaderSize:], true)
	writeCorpusFile(t, "FuzzReadContinued", "seed-mid-split",
		small[:HeaderSize+4], small[HeaderSize+4:], false)

	dgramSrc := NodeID{IP: 0x0a000001, Port: 7000}
	writeCorpusFile(t, "FuzzDgramDecode", "seed-whole",
		AppendDgram(nil, DgramHeader{Src: dgramSrc, MsgID: 1, FragCnt: 1}, small))
	writeCorpusFile(t, "FuzzDgramDecode", "seed-fragment",
		AppendDgram(nil, DgramHeader{Src: dgramSrc, MsgID: 2, FragIdx: 1, FragCnt: 3}, small[:16]))
	writeCorpusFile(t, "FuzzDgramDecode", "seed-control-frame",
		AppendDgram(nil, DgramHeader{Src: dgramSrc, MsgID: 3, FragCnt: 1}, ctrl))
	writeCorpusFile(t, "FuzzDgramDecode", "seed-truncated",
		AppendDgram(nil, DgramHeader{Src: dgramSrc, MsgID: 4, FragCnt: 1}, boundary)[:DgramHeaderSize+7])

	writeCorpusFile(t, "FuzzWireRoundTrip", "seed-data",
		uint32(FirstDataType), uint32(0x0a000001), uint32(7000),
		uint32(1), uint32(2), []byte("payload"), false)
	writeCorpusFile(t, "FuzzWireRoundTrip", "seed-control",
		uint32(FirstDataType+5), uint32(0xc0a80001), uint32(443),
		uint32(3), uint32(4), []byte{}, true)
}
