// Package merge implements stream merging on overlay nodes — the other
// n-to-m application of the engine's hold mechanism besides network
// coding ("we have successfully implemented algorithms that perform
// overlay multicast with merging or network coding"). A Merger holds one
// message per upstream per generation (matched by sequence number) and
// emits a single merged message carrying all parts; receivers split
// merged messages back into their parts.
package merge

import (
	"sort"
	"sync/atomic"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

// MergedType is the data type of merged messages.
const MergedType = message.FirstDataType + 30

// maxPending bounds buffered generations so one stalled upstream cannot
// exhaust memory.
const maxPending = 4096

// EncodeParts packs payload parts into one merged payload: a count
// followed by length-prefixed parts.
func EncodeParts(parts [][]byte) []byte {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	buf := make([]byte, 0, size)
	n := uint32(len(parts))
	buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	for _, p := range parts {
		l := uint32(len(p))
		buf = append(buf, byte(l>>24), byte(l>>16), byte(l>>8), byte(l))
		buf = append(buf, p...)
	}
	return buf
}

// DecodeParts splits a merged payload back into its parts; the parts
// alias b.
func DecodeParts(b []byte) ([][]byte, error) {
	r := protocol.NewReader(b)
	n := r.U32()
	if r.Err() != nil || n > uint32(len(b)/4) {
		return nil, protocol.ErrTruncated
	}
	parts := make([][]byte, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+4 > len(b) {
			return nil, protocol.ErrTruncated
		}
		l := int(uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3]))
		off += 4
		if off+l > len(b) {
			return nil, protocol.ErrTruncated
		}
		parts = append(parts, b[off:off+l])
		off += l
	}
	return parts, nil
}

// Merger merges K upstream streams into one, generation by generation.
type Merger struct {
	algorithm.Base

	// K is how many distinct upstream senders form one generation.
	K int
	// Dests receive the merged stream.
	Dests []message.NodeID

	pending map[uint32]map[message.NodeID]*message.Msg
	merged  atomic.Int64
}

var _ engine.Algorithm = (*Merger)(nil)

// Attach initializes state.
func (mg *Merger) Attach(api engine.API) {
	mg.Base.Attach(api)
	mg.pending = make(map[uint32]map[message.NodeID]*message.Msg)
}

// Merged reports how many merged messages were emitted. Safe from any
// goroutine.
func (mg *Merger) Merged() int64 { return mg.merged.Load() }

// Process implements the algorithm.
func (mg *Merger) Process(m *message.Msg) engine.Verdict {
	if !m.IsData() {
		return mg.Base.Process(m)
	}
	gen := mg.pending[m.Seq()]
	if gen == nil {
		gen = make(map[message.NodeID]*message.Msg, mg.K)
		mg.pending[m.Seq()] = gen
		mg.evictIfNeeded()
	}
	if prev, dup := gen[m.Sender()]; dup {
		_ = prev
		return engine.Done // duplicate from the same upstream
	}
	gen[m.Sender()] = m
	if len(gen) < mg.K {
		return engine.Hold
	}
	// Complete generation: deterministic part order by sender.
	senders := make([]message.NodeID, 0, len(gen))
	for s := range gen {
		senders = append(senders, s)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i].Less(senders[j]) })
	parts := make([][]byte, 0, len(senders))
	for _, s := range senders {
		parts = append(parts, gen[s].Payload())
	}
	payload := EncodeParts(parts)
	out := mg.API.NewMsg(MergedType, m.App(), m.Seq(), len(payload))
	copy(out.Payload(), payload)
	mg.API.SendNew(out, mg.Dests...)
	mg.merged.Add(1)

	for _, s := range senders {
		if held := gen[s]; held != m {
			mg.API.Finish(held)
		}
	}
	delete(mg.pending, m.Seq())
	return engine.Done
}

func (mg *Merger) evictIfNeeded() {
	if len(mg.pending) <= maxPending {
		return
	}
	seqs := make([]int, 0, len(mg.pending))
	for s := range mg.pending {
		seqs = append(seqs, int(s))
	}
	sort.Ints(seqs)
	for _, s := range seqs[:len(seqs)/2] {
		for _, held := range mg.pending[uint32(s)] {
			mg.API.Finish(held)
		}
		delete(mg.pending, uint32(s))
	}
}

// Receiver consumes merged messages, splitting them into parts.
type Receiver struct {
	algorithm.Base

	// OnParts, when set, receives each merged message's parts on the
	// engine goroutine.
	OnParts func(seq uint32, parts [][]byte)

	partsTotal atomic.Int64
	bytesTotal atomic.Int64
}

var _ engine.Algorithm = (*Receiver)(nil)

// Parts reports how many parts were received. Safe from any goroutine.
func (rv *Receiver) Parts() int64 { return rv.partsTotal.Load() }

// Bytes reports the split payload bytes received.
func (rv *Receiver) Bytes() int64 { return rv.bytesTotal.Load() }

// Process implements the algorithm.
func (rv *Receiver) Process(m *message.Msg) engine.Verdict {
	if m.Type() != MergedType {
		return rv.Base.Process(m)
	}
	parts, err := DecodeParts(m.Payload())
	if err != nil {
		return engine.Done
	}
	for _, p := range parts {
		rv.bytesTotal.Add(int64(len(p)))
	}
	rv.partsTotal.Add(int64(len(parts)))
	if rv.OnParts != nil {
		rv.OnParts(m.Seq(), parts)
	}
	return engine.Done
}
