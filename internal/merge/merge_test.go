package merge

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.6.%d", i), 7000)
}

func TestPartsCodecRoundTrip(t *testing.T) {
	parts := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	got, err := DecodeParts(EncodeParts(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], parts[0]) ||
		len(got[1]) != 0 || !bytes.Equal(got[2], parts[2]) {
		t.Errorf("parts = %q", got)
	}
	// Truncations rejected.
	full := EncodeParts(parts)
	for n := 0; n < len(full); n++ {
		if _, err := DecodeParts(full[:n]); err == nil {
			t.Fatalf("accepted truncation at %d", n)
		}
	}
}

func TestPartsCodecProperty(t *testing.T) {
	f := func(parts [][]byte) bool {
		got, err := DecodeParts(EncodeParts(parts))
		if err != nil || len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergerCombinesGenerations(t *testing.T) {
	api := algtest.New(nid(3))
	mg := &Merger{K: 2, Dests: []message.NodeID{nid(9)}}
	mg.Attach(api)

	a := message.New(message.FirstDataType, nid(1), 1, 4, []byte("from-a"))
	if v := mg.Process(a); v != engine.Hold {
		t.Fatalf("first input verdict = %v", v)
	}
	b := message.New(message.FirstDataType, nid(2), 1, 4, []byte("from-b"))
	if v := mg.Process(b); v != engine.Done {
		t.Fatalf("second input verdict = %v", v)
	}
	sent := api.SentTo(nid(9))
	if len(sent) != 1 || sent[0].Msg.Type() != MergedType || sent[0].Msg.Seq() != 4 {
		t.Fatalf("merged sends = %+v", sent)
	}
	parts, err := DecodeParts(sent[0].Msg.Payload())
	if err != nil || len(parts) != 2 {
		t.Fatalf("parts = %q, %v", parts, err)
	}
	// Deterministic order by sender id: nid(1) before nid(2).
	if string(parts[0]) != "from-a" || string(parts[1]) != "from-b" {
		t.Errorf("part order = %q", parts)
	}
	if mg.Merged() != 1 {
		t.Errorf("Merged() = %d", mg.Merged())
	}
	// The held message was finished.
	if a.Refs() != 0 {
		t.Errorf("held refs = %d", a.Refs())
	}
}

func TestMergerIgnoresDuplicatesAndMismatchedSeqs(t *testing.T) {
	api := algtest.New(nid(3))
	mg := &Merger{K: 2, Dests: []message.NodeID{nid(9)}}
	mg.Attach(api)
	mg.Process(message.New(message.FirstDataType, nid(1), 1, 1, []byte("x")))
	// Duplicate from the same sender: dropped, no merge.
	dup := message.New(message.FirstDataType, nid(1), 1, 1, []byte("x2"))
	if v := mg.Process(dup); v != engine.Done {
		t.Fatalf("duplicate verdict = %v", v)
	}
	// Different seq from the other sender: no merge either.
	mg.Process(message.New(message.FirstDataType, nid(2), 1, 2, []byte("y")))
	if len(api.Sends) != 0 {
		t.Errorf("merged across generations/duplicates: %d sends", len(api.Sends))
	}
}

func TestReceiverSplitsParts(t *testing.T) {
	api := algtest.New(nid(9))
	rv := &Receiver{}
	rv.Attach(api)
	var gotSeq uint32
	var gotParts [][]byte
	rv.OnParts = func(seq uint32, parts [][]byte) {
		gotSeq = seq
		gotParts = parts
	}
	payload := EncodeParts([][]byte{[]byte("p1"), []byte("p2")})
	m := message.New(MergedType, nid(3), 1, 8, payload)
	if v := rv.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v", v)
	}
	if gotSeq != 8 || len(gotParts) != 2 {
		t.Fatalf("delivery = seq %d, %d parts", gotSeq, len(gotParts))
	}
	if rv.Parts() != 2 || rv.Bytes() != 4 {
		t.Errorf("counters = %d parts, %d bytes", rv.Parts(), rv.Bytes())
	}
}

// TestMergeEndToEnd merges two live sources at a relay and splits them at
// a sink over real engines.
func TestMergeEndToEnd(t *testing.T) {
	net := vnet.New()
	defer net.Close()
	const app = 1
	sink := &Receiver{}
	boot := func(id message.NodeID, alg engine.Algorithm) *engine.Engine {
		e, err := engine.New(engine.Config{
			ID:        id,
			Transport: engine.VNet{Net: net},
			Algorithm: alg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		return e
	}
	boot(nid(9), sink)
	mg := &Merger{K: 2, Dests: []message.NodeID{nid(9)}}
	boot(nid(3), mg)
	// Two paced sources so generations stay roughly aligned.
	for i := 1; i <= 2; i++ {
		fw := &forwardAll{dest: nid(3)}
		e := boot(nid(i), fw)
		e.StartSource(app, 80<<10, 700)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && sink.Parts() < 100 {
		time.Sleep(20 * time.Millisecond)
	}
	if sink.Parts() < 100 {
		t.Fatalf("sink split only %d parts", sink.Parts())
	}
	if sink.Parts()%2 != 0 {
		t.Errorf("odd part count %d from K=2 merger", sink.Parts())
	}
	if mg.Merged() == 0 {
		t.Error("merger emitted nothing")
	}
}

// forwardAll sends every data message to one destination.
type forwardAll struct {
	Receiver
	dest message.NodeID
}

func (f *forwardAll) Process(m *message.Msg) engine.Verdict {
	if m.IsData() {
		f.API.Send(m, f.dest)
		return engine.Done
	}
	return f.Receiver.Process(m)
}
