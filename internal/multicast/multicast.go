// Package multicast implements the simple forwarding algorithms the paper
// uses to validate the engine (Section 2.4): identical copies of each
// data message are sent to all configured downstream nodes, with no
// merging when multiple upstreams exist. A chain of Forwarders reproduces
// the raw-performance workload of Fig. 5; the seven-node copy topology
// reproduces the correctness experiments of Figs. 6 and 7.
package multicast

import (
	"sync"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
)

// Forwarder is a static-routing algorithm: data messages of a given type
// are forwarded to a fixed set of downstreams (streams are distinguished
// by message type, which lets one node route different substreams
// differently, as node A does when splitting in Fig. 8a). Messages with
// no route are consumed locally and counted.
type Forwarder struct {
	algorithm.Base

	// Routes maps a data message type to its downstream nodes. Types
	// absent from the map fall back to DefaultRoutes.
	Routes map[message.Type][]message.NodeID
	// DefaultRoutes receives any data type without an explicit route.
	DefaultRoutes []message.NodeID

	mu       sync.Mutex
	received map[uint32]int64 // app -> bytes consumed locally
	msgs     map[uint32]int64 // app -> messages seen
}

var _ engine.Algorithm = (*Forwarder)(nil)

// Attach initializes counters and the embedded base.
func (f *Forwarder) Attach(api engine.API) {
	f.Base.Attach(api)
	f.mu.Lock()
	f.received = make(map[uint32]int64)
	f.msgs = make(map[uint32]int64)
	f.mu.Unlock()
}

// Process forwards data along the static routes and defers everything
// else to the iAlgorithm defaults.
func (f *Forwarder) Process(m *message.Msg) engine.Verdict {
	if !m.IsData() {
		return f.Base.Process(m)
	}
	f.mu.Lock()
	f.msgs[m.App()]++
	f.mu.Unlock()

	routes, ok := f.Routes[m.Type()]
	if !ok {
		routes = f.DefaultRoutes
	}
	if len(routes) == 0 {
		f.mu.Lock()
		f.received[m.App()] += int64(m.Len())
		f.mu.Unlock()
		return engine.Done
	}
	for _, dest := range routes {
		f.API.Send(m, dest)
	}
	return engine.Done
}

// ReceivedBytes reports bytes consumed locally for app. Safe from any
// goroutine; experiment harnesses poll it to measure end-to-end
// throughput.
func (f *Forwarder) ReceivedBytes(app uint32) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.received[app]
}

// SeenMessages reports data messages observed (consumed or forwarded) for
// app.
func (f *Forwarder) SeenMessages(app uint32) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.msgs[app]
}
