package multicast

import (
	"testing"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

func nid(i int) message.NodeID {
	return message.NodeID{IP: 10<<24 | uint32(i), Port: 7000}
}

func attached() (*Forwarder, *algtest.FakeAPI) {
	api := algtest.New(nid(1))
	f := &Forwarder{}
	f.Attach(api)
	return f, api
}

func TestDefaultRouteCopiesToAll(t *testing.T) {
	f, api := attached()
	f.DefaultRoutes = []message.NodeID{nid(2), nid(3)}
	m := message.New(message.FirstDataType, nid(9), 1, 0, []byte("x"))
	if v := f.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v", v)
	}
	if len(api.SentTo(nid(2))) != 1 || len(api.SentTo(nid(3))) != 1 {
		t.Error("not copied to both downstreams")
	}
	// Forwarded, not consumed.
	if f.ReceivedBytes(1) != 0 {
		t.Error("forwarder consumed the message")
	}
	if f.SeenMessages(1) != 1 {
		t.Errorf("SeenMessages = %d", f.SeenMessages(1))
	}
	m.Release()
}

func TestTypedRoutesOverrideDefault(t *testing.T) {
	f, api := attached()
	f.DefaultRoutes = []message.NodeID{nid(2)}
	f.Routes = map[message.Type][]message.NodeID{
		message.FirstDataType + 1: {nid(3)},
	}
	typed := message.New(message.FirstDataType+1, nid(9), 1, 0, nil)
	f.Process(typed)
	typed.Release()
	plain := message.New(message.FirstDataType, nid(9), 1, 1, nil)
	f.Process(plain)
	plain.Release()
	if len(api.SentTo(nid(3))) != 1 {
		t.Error("typed route not used")
	}
	if len(api.SentTo(nid(2))) != 1 {
		t.Error("default route not used for untyped data")
	}
}

func TestSinkCountsConsumedBytes(t *testing.T) {
	f, api := attached()
	for i := 0; i < 3; i++ {
		m := message.New(message.FirstDataType, nid(9), 7, uint32(i), make([]byte, 100))
		f.Process(m)
		m.Release()
	}
	if got := f.ReceivedBytes(7); got != 300 {
		t.Errorf("ReceivedBytes = %d, want 300", got)
	}
	if got := f.SeenMessages(7); got != 3 {
		t.Errorf("SeenMessages = %d, want 3", got)
	}
	if len(api.Sends) != 0 {
		t.Error("sink forwarded messages")
	}
	// Per-app separation.
	if f.ReceivedBytes(8) != 0 {
		t.Error("counted bytes for wrong app")
	}
}

func TestEmptyTypedRouteConsumes(t *testing.T) {
	f, api := attached()
	f.DefaultRoutes = []message.NodeID{nid(2)}
	f.Routes = map[message.Type][]message.NodeID{
		message.FirstDataType + 5: {}, // explicit sink for one stream
	}
	m := message.New(message.FirstDataType+5, nid(9), 1, 0, make([]byte, 10))
	f.Process(m)
	m.Release()
	if len(api.Sends) != 0 {
		t.Error("explicitly sunk stream was forwarded")
	}
	if f.ReceivedBytes(1) != 10 {
		t.Error("sunk stream not counted")
	}
}

func TestControlFallsThroughToBase(t *testing.T) {
	f, api := attached()
	d := protocol.Deploy{App: 3, Rate: 1, MsgSize: 64}
	m := message.New(protocol.TypeDeploy, nid(0), 3, 0, d.Encode())
	if v := f.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v", v)
	}
	m.Release()
	if len(api.Sources) != 1 || api.Sources[0].App != 3 {
		t.Errorf("deploy not handled by base: %+v", api.Sources)
	}
}
