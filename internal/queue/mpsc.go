package queue

import "sync/atomic"

// MPSC is a bounded lock-free multi-producer single-consumer ring — the
// cross-shard handoff queue of the sharded engine switch. Any number of
// shard goroutines may TryPush concurrently; exactly one goroutine (the
// owning shard) may TryPop. A message that crosses shards crosses exactly
// one of these rings, with no lock on either side, so the handoff can
// never serialize two shards against each other.
//
// The implementation is the classic bounded-ring design with a per-slot
// sequence number: a producer claims a slot by CAS on the tail cursor,
// writes the value, and publishes it by storing the slot's sequence last
// (release ordering); the consumer observes the sequence (acquire), reads
// the value, and recycles the slot one lap ahead. Per-producer FIFO order
// is preserved — claims are ordered by the tail CAS and the consumer reads
// slots in claim order — which is what keeps per-source and
// per-destination ordering guarantees intact across a shard handoff.
type MPSC[T any] struct {
	mask  uint64
	slots []mpscSlot[T]
	tail  atomic.Uint64 // next slot to claim (producers)
	head  atomic.Uint64 // next slot to consume (consumer-only writer)
}

type mpscSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMPSC returns a ring holding at most capacity items, rounded up to a
// power of two; values < 2 are rounded to 2.
func NewMPSC[T any](capacity int) *MPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &MPSC[T]{mask: uint64(n - 1), slots: make([]mpscSlot[T], n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap reports the fixed capacity.
func (q *MPSC[T]) Cap() int { return len(q.slots) }

// Len reports the approximate number of queued items. Exact when no
// producer is mid-push; safe from any goroutine.
func (q *MPSC[T]) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// TryPush appends v, returning false when the ring is full. Safe from any
// goroutine; never blocks.
func (q *MPSC[T]) TryPush(v T) bool {
	for {
		pos := q.tail.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if q.tail.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1) // publish
				return true
			}
		case seq < pos:
			// The slot still holds an unconsumed item from one lap ago:
			// the ring is full.
			return false
		}
		// seq > pos: another producer advanced tail past our stale read;
		// retry with a fresh cursor.
	}
}

// TryPop removes the oldest item. Single consumer only; never blocks.
func (q *MPSC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.head.Load()
	slot := &q.slots[pos&q.mask]
	if slot.seq.Load() != pos+1 {
		// Empty, or a producer claimed the slot but has not published yet —
		// either way there is nothing consumable right now.
		return zero, false
	}
	v := slot.val
	slot.val = zero
	slot.seq.Store(pos + q.mask + 1) // recycle for the producers' next lap
	q.head.Store(pos + 1)
	return v, true
}
