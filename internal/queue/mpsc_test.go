package queue

import (
	"runtime"
	"sync"
	"testing"
)

func TestMPSCFIFOSingleProducer(t *testing.T) {
	q := NewMPSC[int](8)
	if q.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", q.Cap())
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	if got := q.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestMPSCWrapAround(t *testing.T) {
	q := NewMPSC[int](4)
	next := 0
	for round := 0; round < 1000; round++ {
		for q.TryPush(next) {
			next++
		}
		for i := 0; i < 2; i++ {
			if _, ok := q.TryPop(); !ok {
				t.Fatalf("round %d: unexpected empty", round)
			}
		}
	}
}

// TestMPSCConcurrentProducersPreservePerProducerFIFO drives several
// producers against one consumer and checks every item arrives exactly
// once and in per-producer order — the property the cross-shard handoff
// depends on.
func TestMPSCConcurrentProducersPreservePerProducerFIFO(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	type item struct{ producer, seq int }
	q := NewMPSC[item](64)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !q.TryPush(item{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	seen := make([]int, producers)
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < producers*perProducer {
			v, ok := q.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v.seq != seen[v.producer] {
				t.Errorf("producer %d: got seq %d, want %d", v.producer, v.seq, seen[v.producer])
				return
			}
			seen[v.producer]++
			got++
		}
	}()
	wg.Wait()
	<-done
	if got != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", got, producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func BenchmarkMPSCPushPop(b *testing.B) {
	q := NewMPSC[int](1024)
	for i := 0; i < b.N; i++ {
		if !q.TryPush(i) {
			q.TryPop()
			q.TryPush(i)
		}
		if i&1 == 1 {
			q.TryPop()
		}
	}
}
