// Package queue provides the thread-safe circular queue that implements
// the shared receiver and sender buffers between the engine thread and the
// receiver/sender goroutines, as in the paper's engine design: receivers
// block when their buffer is full, senders sleep when their buffer is
// empty and are signaled by the engine.
package queue

import (
	"errors"
	"sync"

	"repro/internal/message"
)

// ErrClosed is returned by operations on a closed queue once it has
// drained.
var ErrClosed = errors.New("queue: closed")

// Ring is a bounded FIFO of message references with blocking and
// non-blocking endpoints. The zero value is not usable; construct with
// New. All methods are safe for concurrent use by any number of
// goroutines.
type Ring struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []*message.Msg
	head   int // index of the oldest element
	length int
	closed bool
}

// New returns a ring holding at most capacity messages. Capacity must be
// positive.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	r := &Ring{buf: make([]*message.Msg, capacity)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Cap reports the fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len reports the current number of buffered messages.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.length
}

// Free reports the current number of unoccupied slots.
func (r *Ring) Free() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf) - r.length
}

// Push appends m, blocking while the ring is full. It returns ErrClosed if
// the ring is (or becomes) closed before the message is accepted; the
// caller retains ownership of m in that case.
func (r *Ring) Push(m *message.Msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.length == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		return ErrClosed
	}
	r.pushLocked(m)
	return nil
}

// TryPush appends m without blocking. It reports whether the message was
// accepted; a full or closed ring rejects it.
func (r *Ring) TryPush(m *message.Msg) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.length == len(r.buf) {
		return false
	}
	r.pushLocked(m)
	return true
}

func (r *Ring) pushLocked(m *message.Msg) {
	r.buf[(r.head+r.length)%len(r.buf)] = m
	r.length++
	r.notEmpty.Signal()
}

// PushBatch appends every message of ms in order, blocking while the ring
// is full, moving as many messages as fit under each lock acquisition and
// issuing one consumer wakeup per transfer instead of one per message. It
// returns the number of messages accepted; on ErrClosed the caller retains
// ownership of ms[n:]. A nil or empty batch is a no-op.
func (r *Ring) PushBatch(ms []*message.Msg) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pushed := 0
	for pushed < len(ms) {
		for r.length == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			return pushed, ErrClosed
		}
		pushed += r.pushBatchLocked(ms[pushed:])
	}
	return pushed, nil
}

// TryPushBatch appends as many messages of ms as currently fit, in order,
// without blocking, and reports how many were accepted. A full or closed
// ring accepts none; the caller retains ownership of ms[n:].
func (r *Ring) TryPushBatch(ms []*message.Msg) int {
	if len(ms) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	return r.pushBatchLocked(ms)
}

// pushBatchLocked moves up to len(ms) messages into free slots and wakes
// consumers once for the whole transfer.
func (r *Ring) pushBatchLocked(ms []*message.Msg) int {
	n := len(r.buf) - r.length
	if n > len(ms) {
		n = len(ms)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.length+i)%len(r.buf)] = ms[i]
	}
	r.length += n
	switch {
	case n == 1:
		r.notEmpty.Signal()
	case n > 1:
		r.notEmpty.Broadcast()
	}
	return n
}

// Pop removes and returns the oldest message, blocking while the ring is
// empty. Once the ring is closed and drained, Pop returns ErrClosed.
func (r *Ring) Pop() (*message.Msg, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.length == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.length == 0 {
		return nil, ErrClosed
	}
	return r.popLocked(), nil
}

// TryPop removes and returns the oldest message without blocking; ok is
// false when the ring is empty.
func (r *Ring) TryPop() (m *message.Msg, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.length == 0 {
		return nil, false
	}
	return r.popLocked(), true
}

// PopBatch removes up to len(dst) of the oldest messages into dst under a
// single lock acquisition with a single producer wakeup, blocking while
// the ring is empty. It returns the number of messages popped (at least
// one). Once the ring is closed and drained, PopBatch returns ErrClosed.
func (r *Ring) PopBatch(dst []*message.Msg) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.length == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.length == 0 {
		return 0, ErrClosed
	}
	return r.popBatchLocked(dst), nil
}

// TryPopBatch removes up to len(dst) of the oldest messages into dst
// without blocking and reports how many were popped; zero when the ring is
// empty.
func (r *Ring) TryPopBatch(dst []*message.Msg) int {
	if len(dst) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popBatchLocked(dst)
}

// popBatchLocked moves up to len(dst) messages out of the ring and wakes
// producers once for the whole transfer.
func (r *Ring) popBatchLocked(dst []*message.Msg) int {
	n := r.length
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
	}
	r.length -= n
	switch {
	case n == 1:
		r.notFull.Signal()
	case n > 1:
		r.notFull.Broadcast()
	}
	return n
}

func (r *Ring) popLocked() *message.Msg {
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.length--
	r.notFull.Signal()
	return m
}

// Close marks the ring closed, waking all blocked producers and consumers.
// Buffered messages may still be drained with Pop/TryPop. Close is
// idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Drain removes and releases every buffered message; the engine uses it
// when tearing down a link so that no payload buffers leak. It returns the
// number of messages released.
func (r *Ring) Drain() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for r.length > 0 {
		r.popLocked().Release()
		n++
	}
	return n
}
