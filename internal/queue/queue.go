// Package queue provides the thread-safe circular queue that implements
// the shared receiver and sender buffers between the engine thread and the
// receiver/sender goroutines, as in the paper's engine design: receivers
// block when their buffer is full, senders sleep when their buffer is
// empty and are signaled by the engine.
//
// Every ring carries two service-class lanes. Control messages (heartbeats,
// Join/Depart, BrokenSource cascades — anything message.ClassControl) ride
// a priority lane that consumers always drain first, and control pushes
// never block on a data-full ring: under data-plane overload a failure
// notification overtakes megabytes of queued payload instead of waiting
// behind it. Per-lane FIFO order is preserved; only cross-class order is
// relaxed, which is the point.
package queue

import (
	"errors"
	"sync"
	"time"

	"repro/internal/invariant"
	"repro/internal/message"
	"repro/internal/metrics"
)

// ErrClosed is returned by operations on a closed queue once it has
// drained.
var ErrClosed = errors.New("queue: closed")

// delayAlpha weights new queueing-delay samples in the per-lane EWMA,
// mirroring TCP's SRTT smoothing.
const delayAlpha = 0.125

// lane is one service class's bounded FIFO within a Ring. Push timestamps
// ride alongside the message references so consumers can measure per-class
// queueing delay without touching the messages themselves.
type lane struct {
	buf    []*message.Msg
	times  []time.Time
	head   int // index of the oldest element
	length int
	delay  float64            // smoothed queueing delay, nanoseconds
	hist   *metrics.Histogram // optional delay distribution (nil: EWMA only)
}

func (l *lane) full() bool { return l.length == len(l.buf) }

func (l *lane) push(m *message.Msg, now time.Time) {
	i := (l.head + l.length) % len(l.buf)
	l.buf[i] = m
	l.times[i] = now
	l.length++
}

func (l *lane) pop(now time.Time) *message.Msg {
	m := l.buf[l.head]
	l.buf[l.head] = nil
	d := float64(now.Sub(l.times[l.head]))
	if l.delay == 0 {
		l.delay = d
	} else {
		l.delay += delayAlpha * (d - l.delay)
	}
	l.hist.Observe(int64(d))
	l.head = (l.head + 1) % len(l.buf)
	l.length--
	return m
}

// Ring is a bounded two-lane FIFO of message references with blocking and
// non-blocking endpoints. The zero value is not usable; construct with
// New. All methods are safe for concurrent use by any number of
// goroutines.
type Ring struct {
	mu          sync.Mutex
	dataNotFull *sync.Cond
	ctrlNotFull *sync.Cond
	notEmpty    *sync.Cond

	data   lane
	ctrl   lane
	closed bool

	// gauge, when set, tracks the wire bytes buffered across every ring
	// sharing it — the engine's memory-budget accounting. Updated inside
	// push/pop so no admission or drain path can escape it.
	gauge *metrics.Gauge
	// held, when set alongside gauge, receives every popped message's
	// wire bytes BEFORE the buffered gauge gives them up, and the pop's
	// consumer settles it once the message is disposed of. Without the
	// transfer, the instant between a pop's gauge decrement and the
	// consumer's own accounting is a dip in which a concurrent budget
	// admission sees phantom headroom; credit-before-debit means racing
	// reads can transiently overcount buffered bytes but never undercount.
	// Drain and ShedOldestData dispose of what they pop and settle the
	// held gauge themselves.
	held *metrics.Gauge
}

// New returns a ring holding at most capacity messages per lane. Capacity
// must be positive.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	r := &Ring{
		data: lane{buf: make([]*message.Msg, capacity), times: make([]time.Time, capacity)},
		ctrl: lane{buf: make([]*message.Msg, capacity), times: make([]time.Time, capacity)},
	}
	r.dataNotFull = sync.NewCond(&r.mu)
	r.ctrlNotFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// SetGauge attaches the shared buffered-bytes gauge. Must be called before
// the ring is used; all subsequent pushes and pops move the gauge by the
// message wire length.
func (r *Ring) SetGauge(g *metrics.Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauge = g
}

// SetHeldGauge attaches the in-flight transfer gauge: every pop credits
// it with the message's wire bytes before debiting the buffered gauge,
// and the consumer of the popped message must settle it after disposal.
// Must be called before the ring is used; a held gauge without a
// buffered gauge is ignored.
func (r *Ring) SetHeldGauge(g *metrics.Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.held = g
}

// SetDelayHists attaches per-lane queueing-delay histograms, shared
// across every ring of an engine: each pop observes how long the message
// sat buffered, in nanoseconds. The EWMA the overload detector reads is
// unaffected; the histograms feed the QoS reports. Either may be nil.
func (r *Ring) SetDelayHists(ctrl, data *metrics.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctrl.hist = ctrl
	r.data.hist = data
}

// laneOf routes a message to its service-class lane.
func (r *Ring) laneOf(m *message.Msg) *lane {
	if m.IsControl() {
		return &r.ctrl
	}
	return &r.data
}

// Cap reports the fixed per-lane capacity.
func (r *Ring) Cap() int { return len(r.data.buf) }

// Len reports the current number of buffered messages across both lanes.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data.length + r.ctrl.length
}

// DataLen reports the number of buffered data-class messages.
func (r *Ring) DataLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data.length
}

// CtrlLen reports the number of buffered control-class messages.
func (r *Ring) CtrlLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctrl.length
}

// Free reports the current number of unoccupied data-lane slots.
func (r *Ring) Free() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data.buf) - r.data.length
}

// DataFull reports whether the data lane is at capacity — the slow-peer
// detector's stall signal.
func (r *Ring) DataFull() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data.full()
}

// Delays reports the smoothed per-class queueing delays: how long popped
// messages of each class sat buffered. Zero until a class has been popped.
func (r *Ring) Delays() (ctrl, data time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.ctrl.delay), time.Duration(r.data.delay)
}

// Push appends m to its class lane, blocking while that lane is full — a
// control push never waits on queued data. It returns ErrClosed if the
// ring is (or becomes) closed before the message is accepted; the caller
// retains ownership of m in that case.
func (r *Ring) Push(m *message.Msg) error {
	l := r.laneOf(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	for l.full() && !r.closed {
		r.notFullCond(l).Wait()
	}
	if r.closed {
		return ErrClosed
	}
	r.pushLocked(l, m, time.Now())
	r.notEmpty.Signal()
	return nil
}

// TryPush appends m to its class lane without blocking. It reports whether
// the message was accepted; a full lane or closed ring rejects it.
func (r *Ring) TryPush(m *message.Msg) bool {
	l := r.laneOf(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || l.full() {
		return false
	}
	r.pushLocked(l, m, time.Now())
	r.notEmpty.Signal()
	return true
}

func (r *Ring) notFullCond(l *lane) *sync.Cond {
	if l == &r.ctrl {
		return r.ctrlNotFull
	}
	return r.dataNotFull
}

func (r *Ring) pushLocked(l *lane, m *message.Msg, now time.Time) {
	l.push(m, now)
	if r.gauge != nil {
		r.gauge.Add(int64(m.WireLen()))
	}
	if invariant.Enabled {
		invariant.Assert(l.length >= 0 && l.length <= len(l.buf),
			"lane length %d out of bounds [0,%d] after push", l.length, len(l.buf))
	}
}

// popLocked removes the oldest message of l, updating the gauge; the
// caller issues consumer/producer wakeups.
func (r *Ring) popLocked(l *lane, now time.Time) *message.Msg {
	m := l.pop(now)
	if r.gauge != nil {
		if r.held != nil {
			r.held.Add(int64(m.WireLen()))
		}
		r.gauge.Add(-int64(m.WireLen()))
		if invariant.Enabled {
			invariant.Assert(r.gauge.Load() >= 0,
				"buffered-bytes gauge negative (%d) after pop of %d wire bytes",
				r.gauge.Load(), m.WireLen())
		}
	}
	if invariant.Enabled {
		invariant.Assert(l.length >= 0,
			"lane length %d negative after pop", l.length)
	}
	return m
}

// PushBatch appends every message of ms in order, each to its class lane,
// blocking while a message's lane is full, moving as many messages as fit
// under each lock acquisition and issuing one consumer wakeup per transfer
// instead of one per message. It returns the number of messages accepted;
// on ErrClosed the caller retains ownership of ms[n:]. A nil or empty
// batch is a no-op.
func (r *Ring) PushBatch(ms []*message.Msg) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pushed := 0
	for pushed < len(ms) {
		l := r.laneOf(ms[pushed])
		for l.full() && !r.closed {
			r.ctrlFirstWake() // consumers may be asleep on work pushed so far
			r.notFullCond(l).Wait()
		}
		if r.closed {
			return pushed, ErrClosed
		}
		now := time.Now()
		moved := 0
		for pushed < len(ms) {
			l = r.laneOf(ms[pushed])
			if l.full() {
				break
			}
			r.pushLocked(l, ms[pushed], now)
			pushed++
			moved++
		}
		r.wakeConsumers(moved)
	}
	return pushed, nil
}

// ctrlFirstWake signals one consumer if anything is buffered; used before
// a producer goes to sleep mid-batch so prior pushes are not stranded.
func (r *Ring) ctrlFirstWake() {
	if r.data.length+r.ctrl.length > 0 {
		r.notEmpty.Signal()
	}
}

func (r *Ring) wakeConsumers(n int) {
	switch {
	case n == 1:
		r.notEmpty.Signal()
	case n > 1:
		r.notEmpty.Broadcast()
	}
}

// TryPushBatch appends as many leading messages of ms as currently fit
// their lanes, in order, without blocking, and reports how many were
// accepted. The transfer stops at the first message whose lane is full so
// the caller retains a contiguous tail ms[n:]; a closed ring accepts none.
func (r *Ring) TryPushBatch(ms []*message.Msg) int {
	if len(ms) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	now := time.Now()
	pushed := 0
	for pushed < len(ms) {
		l := r.laneOf(ms[pushed])
		if l.full() {
			break
		}
		r.pushLocked(l, ms[pushed], now)
		pushed++
	}
	r.wakeConsumers(pushed)
	return pushed
}

// Pop removes and returns the oldest buffered message, control lane first,
// blocking while the ring is empty. Once the ring is closed and drained,
// Pop returns ErrClosed.
func (r *Ring) Pop() (*message.Msg, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.data.length+r.ctrl.length == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.data.length+r.ctrl.length == 0 {
		return nil, ErrClosed
	}
	now := time.Now()
	if r.ctrl.length > 0 {
		m := r.popLocked(&r.ctrl, now)
		r.ctrlNotFull.Signal()
		return m, nil
	}
	m := r.popLocked(&r.data, now)
	r.dataNotFull.Signal()
	return m, nil
}

// TryPop removes and returns the oldest buffered message, control lane
// first, without blocking; ok is false when the ring is empty.
func (r *Ring) TryPop() (m *message.Msg, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if r.ctrl.length > 0 {
		m := r.popLocked(&r.ctrl, now)
		r.ctrlNotFull.Signal()
		return m, true
	}
	if r.data.length > 0 {
		m := r.popLocked(&r.data, now)
		r.dataNotFull.Signal()
		return m, true
	}
	return nil, false
}

// TryPopCtrl removes and returns the oldest buffered control message
// without blocking and without touching the data lane. The per-sender
// writers use it between individual shaped writes so control that arrives
// while a data batch is draining jumps ahead of the batch's remaining
// messages instead of waiting out the whole transfer.
func (r *Ring) TryPopCtrl() (m *message.Msg, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctrl.length == 0 {
		return nil, false
	}
	m = r.popLocked(&r.ctrl, time.Now())
	r.ctrlNotFull.Signal()
	return m, true
}

// PopBatch removes up to len(dst) of the oldest messages into dst —
// control lane exhausted first — under a single lock acquisition with a
// single producer wakeup per lane, blocking while the ring is empty. It
// returns the number of messages popped (at least one). Once the ring is
// closed and drained, PopBatch returns ErrClosed.
func (r *Ring) PopBatch(dst []*message.Msg) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.data.length+r.ctrl.length == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.data.length+r.ctrl.length == 0 {
		return 0, ErrClosed
	}
	return r.popBatchLocked(dst), nil
}

// TryPopBatch removes up to len(dst) of the oldest messages into dst —
// control lane first — without blocking and reports how many were popped;
// zero when the ring is empty.
func (r *Ring) TryPopBatch(dst []*message.Msg) int {
	if len(dst) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popBatchLocked(dst)
}

// popBatchLocked moves up to len(dst) messages out of the ring, control
// before data, and wakes each lane's producers once for the transfer.
func (r *Ring) popBatchLocked(dst []*message.Msg) int {
	now := time.Now()
	n := 0
	fromCtrl := 0
	for r.ctrl.length > 0 && n < len(dst) {
		dst[n] = r.popLocked(&r.ctrl, now)
		n++
		fromCtrl++
	}
	fromData := 0
	for r.data.length > 0 && n < len(dst) {
		dst[n] = r.popLocked(&r.data, now)
		n++
		fromData++
	}
	r.wakeProducers(r.ctrlNotFull, fromCtrl)
	r.wakeProducers(r.dataNotFull, fromData)
	return n
}

func (r *Ring) wakeProducers(c *sync.Cond, n int) {
	switch {
	case n == 1:
		c.Signal()
	case n > 1:
		c.Broadcast()
	}
}

// ShedOldestData removes and returns up to maxMsgs of the oldest buffered
// data messages, stopping early once at least minBytes of wire volume have
// been shed. Control messages are never touched. The caller owns the
// returned messages (release them and charge loss counters); drop-head
// shedding keeps the freshest data under overload, as the engine's memory
// budget and slow-peer protection require.
func (r *Ring) ShedOldestData(maxMsgs int, minBytes int64) []*message.Msg {
	if maxMsgs <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	var shed []*message.Msg
	var bytes int64
	for r.data.length > 0 && len(shed) < maxMsgs {
		m := r.popLocked(&r.data, now)
		shed = append(shed, m)
		bytes += int64(m.WireLen())
		if minBytes > 0 && bytes >= minBytes {
			break
		}
	}
	if r.held != nil && bytes > 0 {
		r.held.Add(-bytes) // shed bytes leave the node: settle here
	}
	r.wakeProducers(r.dataNotFull, len(shed))
	return shed
}

// Close marks the ring closed, waking all blocked producers and consumers.
// Buffered messages may still be drained with Pop/TryPop. Close is
// idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.dataNotFull.Broadcast()
	r.ctrlNotFull.Broadcast()
	r.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Drain removes and releases every buffered message in both lanes; the
// engine uses it when tearing down a link so that no payload buffers leak.
// It returns the number of messages released.
func (r *Ring) Drain() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	n := 0
	var bytes int64
	for r.ctrl.length > 0 {
		m := r.popLocked(&r.ctrl, now)
		bytes += int64(m.WireLen())
		m.Release()
		n++
	}
	for r.data.length > 0 {
		m := r.popLocked(&r.data, now)
		bytes += int64(m.WireLen())
		m.Release()
		n++
	}
	if r.held != nil && bytes > 0 {
		r.held.Add(-bytes) // drained messages are gone: settle here
	}
	if n > 0 {
		r.ctrlNotFull.Broadcast()
		r.dataNotFull.Broadcast()
	}
	return n
}
