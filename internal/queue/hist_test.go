package queue

import (
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/metrics"
)

// TestDelayHistogramsObservePerLane checks that attached histograms see
// one observation per popped message, in the popped message's lane, and
// that the shared-histogram pattern (one pair across many rings) sums.
func TestDelayHistogramsObservePerLane(t *testing.T) {
	var ctrlHist, dataHist metrics.Histogram
	r1 := New(8)
	r2 := New(8)
	r1.SetDelayHists(&ctrlHist, &dataHist)
	r2.SetDelayHists(&ctrlHist, &dataHist)

	data := func() *message.Msg {
		return message.New(message.FirstDataType, message.NodeID{}, 1, 0, []byte("x"))
	}
	ctrl := func() *message.Msg {
		// Any type below FirstDataType is control-class.
		return message.New(message.Type(5), message.NodeID{}, 0, 0, nil)
	}

	for i := 0; i < 3; i++ {
		if err := r1.Push(data()); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.Push(ctrl()); err != nil {
		t.Fatal(err)
	}
	if err := r2.Push(data()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // give the samples a measurable delay

	for i := 0; i < 4; i++ {
		m, err := r1.Pop()
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	}
	if m, ok := r2.TryPop(); !ok {
		t.Fatal("r2 TryPop failed")
	} else {
		m.Release()
	}

	if got := ctrlHist.Snapshot().Count(); got != 1 {
		t.Fatalf("ctrl histogram count = %d, want 1", got)
	}
	ds := dataHist.Snapshot()
	if got := ds.Count(); got != 4 {
		t.Fatalf("data histogram count = %d, want 4", got)
	}
	// Every sample waited at least the 2ms sleep; the p100 upper bound
	// must therefore be above 2ms worth of nanoseconds.
	if q := ds.Quantile(1.0); q < (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("data p100 = %dns, want >= 2ms", q)
	}
}

// TestDelayHistogramsNilSafe: rings without histograms must behave as
// before — the hook is optional.
func TestDelayHistogramsNilSafe(t *testing.T) {
	r := New(2)
	m := message.New(message.FirstDataType, message.NodeID{}, 1, 0, nil)
	if err := r.Push(m); err != nil {
		t.Fatal(err)
	}
	got, err := r.Pop()
	if err != nil {
		t.Fatal(err)
	}
	got.Release()
}
