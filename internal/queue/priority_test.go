package queue

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/metrics"
)

// mkCtrl builds a control-class message (reserved type range).
func mkCtrl(seq uint32) *message.Msg {
	return message.New(message.Type(5), message.ZeroID, 0, seq, nil)
}

// mkData builds a data message with a payload so gauge tests see real
// wire volume.
func mkData(seq uint32, size int) *message.Msg {
	return message.New(message.FirstDataType, message.ZeroID, 0, seq, make([]byte, size))
}

func TestControlPopsBeforeQueuedData(t *testing.T) {
	r := New(8)
	for i := uint32(0); i < 4; i++ {
		if err := r.Push(mkMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Push(mkCtrl(100)); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(mkCtrl(101)); err != nil {
		t.Fatal(err)
	}
	// Control overtakes the queued data, in control-FIFO order; the data
	// follows in its own FIFO order.
	want := []uint32{100, 101, 0, 1, 2, 3}
	for i, w := range want {
		m, err := r.Pop()
		if err != nil {
			t.Fatalf("Pop %d: %v", i, err)
		}
		if m.Seq() != w {
			t.Fatalf("pop %d: got seq %d, want %d", i, m.Seq(), w)
		}
	}
}

func TestControlPushNeverBlocksOnDataFullRing(t *testing.T) {
	r := New(2)
	if err := r.Push(mkMsg(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(mkMsg(1)); err != nil {
		t.Fatal(err)
	}
	// Data lane is full; a blocking control push must complete instantly.
	done := make(chan error, 1)
	go func() { done <- r.Push(mkCtrl(9)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("control Push on data-full ring: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("control Push blocked behind full data lane")
	}
	if m, err := r.Pop(); err != nil || m.Seq() != 9 {
		t.Fatalf("Pop = %v, %v; want the control message (seq 9)", m, err)
	}
}

func TestExplicitControlTagSurvivesLaneRouting(t *testing.T) {
	r := New(2)
	r.TryPush(mkMsg(0))
	r.TryPush(mkMsg(1))
	// A data-range type tagged AsControl rides the priority lane.
	tagged := message.New(message.FirstDataType.AsControl(), message.ZeroID, 0, 7, nil)
	if !r.TryPush(tagged) {
		t.Fatal("tagged control rejected by data-full ring")
	}
	m, err := r.Pop()
	if err != nil || m.Seq() != 7 {
		t.Fatalf("Pop = %v, %v; want tagged control first", m, err)
	}
}

func TestPopBatchServesControlLaneFirst(t *testing.T) {
	r := New(8)
	for i := uint32(0); i < 3; i++ {
		r.TryPush(mkMsg(i))
	}
	r.TryPush(mkCtrl(50))
	r.TryPush(mkCtrl(51))
	dst := make([]*message.Msg, 8)
	n, err := r.PopBatch(dst)
	if err != nil || n != 5 {
		t.Fatalf("PopBatch = %d, %v; want 5, nil", n, err)
	}
	want := []uint32{50, 51, 0, 1, 2}
	for i, w := range want {
		if dst[i].Seq() != w {
			t.Fatalf("batch[%d] = seq %d, want %d", i, dst[i].Seq(), w)
		}
	}
}

func TestShedOldestDataSparesControl(t *testing.T) {
	r := New(8)
	var total int64
	for i := uint32(0); i < 4; i++ {
		m := mkData(i, 100)
		total += int64(m.WireLen())
		r.TryPush(m)
	}
	r.TryPush(mkCtrl(99))

	// Shed everything data: control must survive.
	shed := r.ShedOldestData(8, 0)
	if len(shed) != 4 {
		t.Fatalf("shed %d messages, want 4", len(shed))
	}
	for i, m := range shed {
		if m.Seq() != uint32(i) {
			t.Fatalf("shed order: got %d at %d (drop-head sheds oldest first)", m.Seq(), i)
		}
		m.Release()
	}
	if got := r.CtrlLen(); got != 1 {
		t.Fatalf("CtrlLen after shed = %d, want 1", got)
	}
	if m, err := r.Pop(); err != nil || m.Seq() != 99 {
		t.Fatalf("control message lost to shedding: %v, %v", m, err)
	}
}

func TestShedOldestDataStopsAtMinBytes(t *testing.T) {
	r := New(8)
	for i := uint32(0); i < 6; i++ {
		r.TryPush(mkData(i, 100))
	}
	one := int64(mkData(0, 100).WireLen())
	shed := r.ShedOldestData(8, one+1) // needs two messages' worth
	if len(shed) != 2 {
		t.Fatalf("shed %d messages for %d bytes, want 2", len(shed), one+1)
	}
	for _, m := range shed {
		m.Release()
	}
	if got := r.DataLen(); got != 4 {
		t.Fatalf("DataLen after bounded shed = %d, want 4", got)
	}
}

func TestShedUnblocksDataProducer(t *testing.T) {
	r := New(1)
	if err := r.Push(mkData(0, 10)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(mkData(1, 10)) }()
	time.Sleep(10 * time.Millisecond)
	for _, m := range r.ShedOldestData(1, 0) {
		m.Release()
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Push after shed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("ShedOldestData did not wake the blocked data producer")
	}
}

func TestGaugeTracksBufferedBytes(t *testing.T) {
	r := New(8)
	var g metrics.Gauge
	r.SetGauge(&g)
	m1, m2, c1 := mkData(0, 64), mkData(1, 256), mkCtrl(2)
	want := int64(m1.WireLen() + m2.WireLen() + c1.WireLen())
	r.TryPush(m1)
	r.TryPush(m2)
	r.TryPush(c1)
	if got := g.Load(); got != want {
		t.Fatalf("gauge after pushes = %d, want %d", got, want)
	}
	if g.Max() != want {
		t.Fatalf("gauge max = %d, want %d", g.Max(), want)
	}
	if _, err := r.Pop(); err != nil { // pops the control message
		t.Fatal(err)
	}
	want -= int64(c1.WireLen())
	if got := g.Load(); got != want {
		t.Fatalf("gauge after control pop = %d, want %d", got, want)
	}
	r.Drain()
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge after Drain = %d, want 0", got)
	}
}

func TestDelaysTrackedPerLane(t *testing.T) {
	r := New(8)
	r.TryPush(mkMsg(0))
	time.Sleep(30 * time.Millisecond)
	r.TryPush(mkCtrl(1))
	// Pop both: data sat ~30ms, control ~0.
	if _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	ctrl, data := r.Delays()
	if data < 10*time.Millisecond {
		t.Fatalf("data delay = %v, want >= 10ms", data)
	}
	if ctrl >= data {
		t.Fatalf("ctrl delay %v not below data delay %v", ctrl, data)
	}
}

// TestCloseWakesAllBlockedWaitersBothLanes blocks producers on both full
// lanes plus batch variants, closes once, and requires every waiter to
// return ErrClosed promptly — no waiter may be woken twice into a spurious
// retry or left asleep.
func TestCloseWakesAllBlockedWaitersBothLanes(t *testing.T) {
	r := New(1)
	if err := r.Push(mkMsg(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(mkCtrl(100)); err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	errs := make(chan error, 4*waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(4)
		go func() { defer wg.Done(); errs <- r.Push(mkMsg(1)) }()
		go func() { defer wg.Done(); errs <- r.Push(mkCtrl(101)) }()
		go func() {
			defer wg.Done()
			_, err := r.PushBatch([]*message.Msg{mkMsg(2), mkMsg(3)})
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := r.PushBatch([]*message.Msg{mkCtrl(102)})
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	r.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close left blocked waiters asleep")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked waiter returned %v, want ErrClosed", err)
		}
	}
	// Residual messages drain in lane order: control first, then data.
	if m, err := r.Pop(); err != nil || m.Seq() != 100 {
		t.Fatalf("residual pop 1 = %v, %v; want ctrl seq 100", m, err)
	}
	if m, err := r.Pop(); err != nil || m.Seq() != 0 {
		t.Fatalf("residual pop 2 = %v, %v; want data seq 0", m, err)
	}
	if _, err := r.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed ring Pop err = %v, want ErrClosed", err)
	}
}

// TestCloseWakesBlockedPopBatch covers the consumer side: batch poppers
// asleep on an empty ring all wake with ErrClosed.
func TestCloseWakesBlockedPopBatch(t *testing.T) {
	r := New(4)
	const waiters = 4
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]*message.Msg, 2)
			_, err := r.PopBatch(dst)
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	r.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close left blocked PopBatch waiters asleep")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked PopBatch returned %v, want ErrClosed", err)
		}
	}
}

// TestLaneFIFOWithinClassUnderConcurrency hammers both lanes and checks
// per-class FIFO order with a single consumer.
func TestLaneFIFOWithinClassUnderConcurrency(t *testing.T) {
	const perClass = 400
	r := New(8)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint32(0); i < perClass; i++ {
			if err := r.Push(mkMsg(i)); err != nil {
				t.Errorf("data Push: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint32(0); i < perClass; i++ {
			if err := r.Push(mkCtrl(i)); err != nil {
				t.Errorf("ctrl Push: %v", err)
				return
			}
		}
	}()
	var ctrlSeen, dataSeen []uint32
	for len(ctrlSeen)+len(dataSeen) < 2*perClass {
		m, err := r.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		if m.IsControl() {
			ctrlSeen = append(ctrlSeen, m.Seq())
		} else {
			dataSeen = append(dataSeen, m.Seq())
		}
	}
	wg.Wait()
	for i, s := range ctrlSeen {
		if s != uint32(i) {
			t.Fatalf("ctrl FIFO violated at %d: got %d", i, s)
		}
	}
	for i, s := range dataSeen {
		if s != uint32(i) {
			t.Fatalf("data FIFO violated at %d: got %d", i, s)
		}
	}
}
