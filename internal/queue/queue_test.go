package queue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/message"
)

func mkMsg(seq uint32) *message.Msg {
	return message.New(message.FirstDataType, message.ZeroID, 0, seq, nil)
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestFIFOOrder(t *testing.T) {
	r := New(8)
	for i := uint32(0); i < 8; i++ {
		if err := r.Push(mkMsg(i)); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	for i := uint32(0); i < 8; i++ {
		m, err := r.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		if m.Seq() != i {
			t.Fatalf("Pop order: got seq %d, want %d", m.Seq(), i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	r := New(3)
	seq := uint32(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(mkMsg(seq)) {
				t.Fatal("TryPush on non-full ring failed")
			}
			seq++
		}
		for i := 0; i < 3; i++ {
			m, ok := r.TryPop()
			if !ok {
				t.Fatal("TryPop on non-empty ring failed")
			}
			want := seq - 3 + uint32(i)
			if m.Seq() != want {
				t.Fatalf("wrap order: got %d, want %d", m.Seq(), want)
			}
		}
	}
}

func TestTryPushFull(t *testing.T) {
	r := New(2)
	r.TryPush(mkMsg(0))
	r.TryPush(mkMsg(1))
	if r.TryPush(mkMsg(2)) {
		t.Error("TryPush on full ring succeeded")
	}
	if got := r.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
}

func TestTryPopEmpty(t *testing.T) {
	r := New(2)
	if _, ok := r.TryPop(); ok {
		t.Error("TryPop on empty ring succeeded")
	}
}

func TestPushBlocksUntilPop(t *testing.T) {
	r := New(1)
	if err := r.Push(mkMsg(0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(mkMsg(1)) }()

	select {
	case <-done:
		t.Fatal("Push on full ring returned before Pop")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Push: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Push did not unblock after Pop")
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	r := New(1)
	got := make(chan *message.Msg, 1)
	go func() {
		m, err := r.Pop()
		if err != nil {
			t.Error(err)
		}
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	if err := r.Push(mkMsg(42)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Seq() != 42 {
			t.Errorf("Pop got seq %d, want 42", m.Seq())
		}
	case <-time.After(time.Second):
		t.Fatal("Pop did not unblock after Push")
	}
}

func TestCloseWakesBlockedPush(t *testing.T) {
	r := New(1)
	if err := r.Push(mkMsg(0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(mkMsg(1)) }()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Push after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake blocked Push")
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	r := New(1)
	done := make(chan error, 1)
	go func() {
		_, err := r.Pop()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Pop after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake blocked Pop")
	}
}

func TestCloseDrainSemantics(t *testing.T) {
	r := New(4)
	r.TryPush(mkMsg(1))
	r.TryPush(mkMsg(2))
	r.Close()
	if !r.Closed() {
		t.Error("Closed() = false after Close")
	}
	if r.TryPush(mkMsg(3)) {
		t.Error("TryPush succeeded on closed ring")
	}
	// Buffered messages remain poppable.
	m, err := r.Pop()
	if err != nil || m.Seq() != 1 {
		t.Fatalf("Pop after close = %v, %v; want seq 1", m, err)
	}
	if m, ok := r.TryPop(); !ok || m.Seq() != 2 {
		t.Fatalf("TryPop after close = %v, %v; want seq 2", m, ok)
	}
	if _, err := r.Pop(); !errors.Is(err, ErrClosed) {
		t.Errorf("Pop on drained closed ring: err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	r := New(1)
	r.Close()
	r.Close() // must not panic or deadlock
}

func TestDrainReleasesMessages(t *testing.T) {
	r := New(4)
	msgs := []*message.Msg{mkMsg(0), mkMsg(1), mkMsg(2)}
	for _, m := range msgs {
		r.TryPush(m)
	}
	if n := r.Drain(); n != 3 {
		t.Fatalf("Drain() = %d, want 3", n)
	}
	for i, m := range msgs {
		if m.Refs() != 0 {
			t.Errorf("msg %d refs = %d after Drain, want 0", i, m.Refs())
		}
	}
	if r.Len() != 0 {
		t.Errorf("Len() after Drain = %d, want 0", r.Len())
	}
}

// TestConcurrentProducersConsumers hammers the ring with several producers
// and consumers and checks that every message is delivered exactly once.
func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 500
	)
	r := New(16)
	var wg sync.WaitGroup
	seen := make(chan uint32, producers*perProd)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := r.Pop()
				if err != nil {
					return
				}
				seen <- m.Seq()
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				if err := r.Push(mkMsg(uint32(p*perProd + i))); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	// Wait for the ring to drain, then close to release consumers.
	for r.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	r.Close()
	wg.Wait()
	close(seen)

	got := make(map[uint32]int)
	for s := range seen {
		got[s]++
	}
	if len(got) != producers*perProd {
		t.Fatalf("delivered %d distinct messages, want %d", len(got), producers*perProd)
	}
	for s, n := range got {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", s, n)
		}
	}
}

// TestBatchMixedFIFO interleaves batch and single-message operations and
// checks that the overall pop order is exactly the push order.
func TestBatchMixedFIFO(t *testing.T) {
	r := New(8)
	next := uint32(0)
	mk := func(n int) []*message.Msg {
		ms := make([]*message.Msg, n)
		for i := range ms {
			ms[i] = mkMsg(next)
			next++
		}
		return ms
	}
	var got []uint32
	popOne := func() {
		m, err := r.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		got = append(got, m.Seq())
	}
	popBatch := func(n int) {
		dst := make([]*message.Msg, n)
		k := r.TryPopBatch(dst)
		for _, m := range dst[:k] {
			got = append(got, m.Seq())
		}
	}

	if n, err := r.PushBatch(mk(3)); n != 3 || err != nil {
		t.Fatalf("PushBatch = %d, %v; want 3, nil", n, err)
	}
	if err := r.Push(mk(1)[0]); err != nil {
		t.Fatal(err)
	}
	popBatch(2)
	if n := r.TryPushBatch(mk(4)); n != 4 {
		t.Fatalf("TryPushBatch = %d, want 4", n)
	}
	popOne()
	popBatch(5)
	if !r.TryPush(mk(1)[0]) {
		t.Fatal("TryPush on non-full ring failed")
	}
	popOne()

	if len(got) != int(next) {
		t.Fatalf("popped %d messages, pushed %d", len(got), next)
	}
	for i, s := range got {
		if s != uint32(i) {
			t.Fatalf("pop order: got[%d] = %d, want %d (full order %v)", i, s, i, got)
		}
	}
}

// TestTryPushBatchPartial checks that a nearly full ring accepts exactly
// the messages that fit and leaves ownership of the rest with the caller.
func TestTryPushBatchPartial(t *testing.T) {
	r := New(4)
	r.TryPush(mkMsg(100))
	r.TryPush(mkMsg(101))
	ms := []*message.Msg{mkMsg(0), mkMsg(1), mkMsg(2), mkMsg(3)}
	if n := r.TryPushBatch(ms); n != 2 {
		t.Fatalf("TryPushBatch on ring with 2 free slots = %d, want 2", n)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	// The unaccepted tail is untouched and still owned by the caller.
	for i, m := range ms[2:] {
		if m.Refs() != 1 {
			t.Errorf("unaccepted ms[%d] refs = %d, want 1", i+2, m.Refs())
		}
	}
	if n := r.TryPushBatch(ms[2:]); n != 0 {
		t.Fatalf("TryPushBatch on full ring = %d, want 0", n)
	}
	want := []uint32{100, 101, 0, 1}
	dst := make([]*message.Msg, 8)
	if n := r.TryPopBatch(dst); n != 4 {
		t.Fatalf("TryPopBatch = %d, want 4", n)
	}
	for i, m := range dst[:4] {
		if m.Seq() != want[i] {
			t.Fatalf("pop order: got %d at %d, want %d", m.Seq(), i, want[i])
		}
	}
}

// TestPopBatchPartial checks that PopBatch returns what is buffered rather
// than waiting to fill dst.
func TestPopBatchPartial(t *testing.T) {
	r := New(8)
	r.TryPush(mkMsg(0))
	r.TryPush(mkMsg(1))
	dst := make([]*message.Msg, 8)
	n, err := r.PopBatch(dst)
	if err != nil || n != 2 {
		t.Fatalf("PopBatch = %d, %v; want 2, nil", n, err)
	}
	if dst[0].Seq() != 0 || dst[1].Seq() != 1 {
		t.Fatalf("PopBatch order: %d, %d", dst[0].Seq(), dst[1].Seq())
	}
}

// TestPushBatchBlocksAndCompletes checks that an oversized PushBatch
// blocks on a full ring and delivers every message as space frees up.
func TestPushBatchBlocksAndCompletes(t *testing.T) {
	r := New(2)
	ms := make([]*message.Msg, 5)
	for i := range ms {
		ms[i] = mkMsg(uint32(i))
	}
	done := make(chan int, 1)
	go func() {
		n, err := r.PushBatch(ms)
		if err != nil {
			t.Errorf("PushBatch: %v", err)
		}
		done <- n
	}()
	var got []uint32
	for len(got) < 5 {
		m, err := r.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		got = append(got, m.Seq())
	}
	select {
	case n := <-done:
		if n != 5 {
			t.Fatalf("PushBatch accepted %d, want 5", n)
		}
	case <-time.After(time.Second):
		t.Fatal("PushBatch did not complete")
	}
	for i, s := range got {
		if s != uint32(i) {
			t.Fatalf("order: got[%d] = %d", i, s)
		}
	}
}

// TestCloseMidPushBatch closes the ring while a blocked PushBatch has
// accepted part of its batch; ownership of the unaccepted tail must stay
// with the caller so it can release those messages.
func TestCloseMidPushBatch(t *testing.T) {
	r := New(2)
	ms := make([]*message.Msg, 5)
	for i := range ms {
		ms[i] = mkMsg(uint32(i))
	}
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		n, err := r.PushBatch(ms)
		done <- result{n, err}
	}()
	// Let the batch fill the ring (2 accepted) and block, then free one
	// slot so a third is accepted, then close mid-flight.
	time.Sleep(10 * time.Millisecond)
	if _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case res := <-done:
		if !errors.Is(res.err, ErrClosed) {
			t.Fatalf("PushBatch after Close: err = %v, want ErrClosed", res.err)
		}
		if res.n != 3 {
			t.Fatalf("PushBatch accepted %d before Close, want 3", res.n)
		}
		// ms[res.n:] still belongs to the caller: release them.
		for i, m := range ms[res.n:] {
			if m.Refs() != 1 {
				t.Errorf("unaccepted ms[%d] refs = %d, want 1", res.n+i, m.Refs())
			}
			m.Release()
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake blocked PushBatch")
	}
	// 3 accepted, 1 popped above: 2 remain buffered.
	if drained := r.Drain(); drained != 2 {
		t.Fatalf("Drain released %d accepted messages, want 2", drained)
	}
}

// TestConcurrentBatchProducersConsumers stresses mixed-size batch pushes
// against batch pops and checks exactly-once delivery; run with -race this
// also exercises the batch paths for data races.
func TestConcurrentBatchProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 500
	)
	r := New(16)
	var wg sync.WaitGroup
	seen := make(chan uint32, producers*perProd)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dst := make([]*message.Msg, 1+c%5)
			for {
				n, err := r.PopBatch(dst)
				if err != nil {
					return
				}
				for _, m := range dst[:n] {
					seen <- m.Seq()
				}
			}
		}(c)
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			seq := uint32(p * perProd)
			sent := 0
			for sent < perProd {
				k := 1 + (sent+p)%7
				if k > perProd-sent {
					k = perProd - sent
				}
				batch := make([]*message.Msg, k)
				for i := range batch {
					batch[i] = mkMsg(seq)
					seq++
				}
				if n, err := r.PushBatch(batch); err != nil {
					t.Errorf("PushBatch: %v (accepted %d)", err, n)
					return
				}
				sent += k
			}
		}(p)
	}
	pwg.Wait()
	for r.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	r.Close()
	wg.Wait()
	close(seen)

	got := make(map[uint32]int)
	for s := range seen {
		got[s]++
	}
	if len(got) != producers*perProd {
		t.Fatalf("delivered %d distinct messages, want %d", len(got), producers*perProd)
	}
	for s, n := range got {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", s, n)
		}
	}
}

// TestFIFOProperty checks, via testing/quick, that for any interleaving of
// a bounded push sequence, single-consumer pop order equals push order.
func TestFIFOProperty(t *testing.T) {
	f := func(seqs []uint32, capHint uint8) bool {
		capacity := int(capHint%16) + 1
		r := New(capacity)
		done := make(chan []uint32, 1)
		go func() {
			var out []uint32
			for {
				m, err := r.Pop()
				if err != nil {
					done <- out
					return
				}
				out = append(out, m.Seq())
			}
		}()
		for _, s := range seqs {
			if err := r.Push(mkMsg(s)); err != nil {
				return false
			}
		}
		for r.Len() > 0 {
			time.Sleep(time.Microsecond)
		}
		r.Close()
		out := <-done
		if len(out) != len(seqs) {
			return false
		}
		for i := range out {
			if out[i] != seqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
