package federation

import (
	"sync"
	"time"

	"repro/internal/algorithm"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
)

// awareTTL bounds sAware relaying.
const awareTTL = 8

// maxProbes bounds how many candidates sFlow probes per selection.
const maxProbes = 4

// probeTimeout bounds how long a selection waits for probe replies.
const probeTimeout = 250 * time.Millisecond

// probeTokenBase offsets probe tick kinds away from other algorithms'.
const probeTokenBase = 1 << 16

type awareKey struct {
	node message.NodeID
	typ  uint32
}

type probeState struct {
	fed      Federate
	waiting  int
	best     int64
	bestNode message.NodeID
	done     bool
}

// Node is the service-federation algorithm deployed on every node of the
// service overlay network.
type Node struct {
	algorithm.Base

	// Policy selects the instance-selection algorithm; required.
	Policy Selection

	mu        sync.Mutex
	services  map[uint32]int64                    // hosted type -> capacity
	registry  map[uint32]map[message.NodeID]int64 // type -> instance -> capacity
	seenAware map[awareKey]bool
	committed int64
	sessions  map[uint32][]message.NodeID // session -> data successors
	loadSeen  map[uint32]bool             // sessions already counted in committed
	completed map[uint32][]message.NodeID // session -> full assignment
	failed    int64

	pending   map[uint32]*probeState
	nextToken uint32

	sentBytes map[message.Type]int64
	recvBytes map[message.Type]int64
	received  map[uint32]int64 // session -> data bytes consumed
}

var _ engine.Algorithm = (*Node)(nil)

// Attach initializes state.
func (n *Node) Attach(api engine.API) {
	n.Base.Attach(api)
	n.mu.Lock()
	n.services = make(map[uint32]int64)
	n.registry = make(map[uint32]map[message.NodeID]int64)
	n.seenAware = make(map[awareKey]bool)
	n.sessions = make(map[uint32][]message.NodeID)
	n.loadSeen = make(map[uint32]bool)
	n.completed = make(map[uint32][]message.NodeID)
	n.pending = make(map[uint32]*probeState)
	n.sentBytes = make(map[message.Type]int64)
	n.recvBytes = make(map[message.Type]int64)
	n.received = make(map[uint32]int64)
	n.mu.Unlock()
}

// ----- observability (safe from any goroutine) -----

// OverheadSent reports control bytes sent per message type.
func (n *Node) OverheadSent() map[message.Type]int64 { return n.copyCounts(true) }

// OverheadRecv reports control bytes received per message type.
func (n *Node) OverheadRecv() map[message.Type]int64 { return n.copyCounts(false) }

func (n *Node) copyCounts(sent bool) map[message.Type]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	src := n.recvBytes
	if sent {
		src = n.sentBytes
	}
	out := make(map[message.Type]int64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Committed reports the bandwidth committed to sessions through this
// node.
func (n *Node) Committed() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.committed
}

// SessionCount reports the number of sessions routed through this node.
func (n *Node) SessionCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.loadSeen)
}

// Hosted reports the capacities of services hosted here.
func (n *Node) Hosted() map[uint32]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[uint32]int64, len(n.services))
	for k, v := range n.services {
		out[k] = v
	}
	return out
}

// KnownInstances reports how many instances of a service type this node
// has learned of.
func (n *Node) KnownInstances(typ uint32) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.registry[typ])
}

// Completed returns the assignment of a completed session, if known here.
func (n *Node) Completed(session uint32) ([]message.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.completed[session]
	if !ok {
		return nil, false
	}
	out := make([]message.NodeID, len(a))
	copy(out, a)
	return out, true
}

// FailedSessions reports federations that could not find an instance.
func (n *Node) FailedSessions() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

// ReceivedBytes reports data bytes consumed here for a session.
func (n *Node) ReceivedBytes(session uint32) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.received[session]
}

// ----- messaging with overhead accounting -----

func (n *Node) send(typ message.Type, payload []byte, dests ...message.NodeID) {
	if len(dests) == 0 {
		return
	}
	n.mu.Lock()
	n.sentBytes[typ] += int64(len(dests)) * int64(message.HeaderSize+len(payload))
	n.mu.Unlock()
	n.API.SendNew(n.API.NewControl(typ, 0, payload), dests...)
}

func (n *Node) countRecv(m *message.Msg) {
	n.mu.Lock()
	n.recvBytes[m.Type()] += int64(m.WireLen())
	n.mu.Unlock()
}

// ----- message handling -----

// Process implements the algorithm.
func (n *Node) Process(m *message.Msg) engine.Verdict {
	switch m.Type() {
	case TypeAssign:
		n.countRecv(m)
		n.onAssign(m)
	case TypeAware:
		n.countRecv(m)
		n.onAware(m)
	case TypeFederate:
		n.countRecv(m)
		n.onFederate(m)
	case TypeFederateAck:
		n.countRecv(m)
		n.onFederateAck(m)
	case TypeLoadProbe:
		n.countRecv(m)
		n.onLoadProbe(m)
	case TypeLoadReply:
		n.countRecv(m)
		n.onLoadReply(m)
	case protocol.TypeTick:
		n.onTick(m)
	default:
		if m.IsData() {
			n.onData(m)
			return engine.Done
		}
		return n.Base.Process(m)
	}
	return engine.Done
}

// onAssign establishes a new service instance and disseminates its
// existence.
func (n *Node) onAssign(m *message.Msg) {
	a, err := DecodeAssign(m.Payload())
	if err != nil {
		return
	}
	self := n.API.ID()
	n.mu.Lock()
	n.services[a.ServiceType] = a.Capacity
	n.recordInstance(a.ServiceType, self, a.Capacity)
	n.seenAware[awareKey{self, a.ServiceType}] = true
	n.mu.Unlock()
	aw := Aware{Node: self, ServiceType: a.ServiceType, Capacity: a.Capacity}
	n.send(TypeAware, aw.Encode(), n.Known.All()...)
}

// recordInstance requires n.mu held.
func (n *Node) recordInstance(typ uint32, node message.NodeID, capacity int64) {
	insts, ok := n.registry[typ]
	if !ok {
		insts = make(map[message.NodeID]int64)
		n.registry[typ] = insts
	}
	insts[node] = capacity
}

// onAware records a new instance in the local service graph and relays
// the announcement once.
func (n *Node) onAware(m *message.Msg) {
	a, err := DecodeAware(m.Payload())
	if err != nil || a.Node.IsZero() {
		return
	}
	key := awareKey{a.Node, a.ServiceType}
	n.mu.Lock()
	dup := n.seenAware[key]
	n.seenAware[key] = true
	n.recordInstance(a.ServiceType, a.Node, a.Capacity)
	n.mu.Unlock()
	if dup || a.Hops >= awareTTL {
		return
	}
	a.Hops++
	var relayTo []message.NodeID
	for _, h := range n.Known.All() {
		if h != a.Node && h != m.Sender() {
			relayTo = append(relayTo, h)
		}
	}
	n.send(TypeAware, a.Encode(), relayTo...)
}

// onFederate advances the federation: assign the next requirement vertex
// and pass the message on.
func (n *Node) onFederate(m *message.Msg) {
	f, err := DecodeFederate(m.Payload())
	if err != nil || f.Req.Validate() != nil {
		return
	}
	if f.Next == 0 {
		// We are the designated source service node.
		self := n.API.ID()
		n.mu.Lock()
		_, hosts := n.services[f.Req.Types[0]]
		n.mu.Unlock()
		if !hosts {
			// Forward to a known instance of the source type instead.
			if inst, ok := n.pickAny(f.Req.Types[0]); ok {
				n.send(TypeFederate, f.Encode(), inst)
			} else {
				n.recordFailure()
			}
			return
		}
		f.Assigned = make([]message.NodeID, len(f.Req.Types))
		f.Assigned[0] = self
		f.Next = 1
	}
	n.advance(f)
}

// advance assigns requirement vertices until the assignment either
// completes, fails, or must wait for probe replies.
func (n *Node) advance(f Federate) {
	for int(f.Next) < len(f.Req.Types) {
		idx := int(f.Next)
		typ := f.Req.Types[idx]
		candidates := n.candidatesFor(typ, f.Assigned)
		if len(candidates) == 0 {
			n.recordFailure()
			return
		}
		var chosen message.NodeID
		switch n.Policy {
		case RandomSel:
			chosen = candidates[n.Rng.Intn(len(candidates))].node
		case Fixed:
			chosen = maxBy(candidates, func(c candidate) int64 { return c.capacity })
		case SFlow:
			if len(candidates) == 1 {
				chosen = candidates[0].node
				break
			}
			n.launchProbes(f, candidates)
			return // resume in onLoadReply / onTick
		default:
			chosen = candidates[0].node
		}
		fw := n.assignAndForward(f, chosen)
		if !fw.local {
			return
		}
		f = fw.Federate
	}
	n.complete(f)
}

type candidate struct {
	node     message.NodeID
	capacity int64
}

func maxBy(cs []candidate, key func(candidate) int64) message.NodeID {
	best := cs[0]
	bestKey := key(best)
	for _, c := range cs[1:] {
		if k := key(c); k > bestKey {
			best, bestKey = c, k
		}
	}
	return best.node
}

// candidatesFor lists known instances of a type, preferring nodes not yet
// assigned in this session.
func (n *Node) candidatesFor(typ uint32, assigned []message.NodeID) []candidate {
	used := make(map[message.NodeID]bool, len(assigned))
	for _, a := range assigned {
		used[a] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var fresh, reused []candidate
	for node, capacity := range n.registry[typ] {
		c := candidate{node: node, capacity: capacity}
		if used[node] {
			reused = append(reused, c)
		} else {
			fresh = append(fresh, c)
		}
	}
	if len(fresh) > 0 {
		return fresh
	}
	return reused
}

func (n *Node) pickAny(typ uint32) (message.NodeID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for node := range n.registry[typ] {
		return node, true
	}
	return message.NodeID{}, false
}

func (n *Node) recordFailure() {
	n.mu.Lock()
	n.failed++
	n.mu.Unlock()
}

// launchProbes starts an sFlow selection round: probe up to maxProbes
// candidates for residual bandwidth.
func (n *Node) launchProbes(f Federate, candidates []candidate) {
	if len(candidates) > maxProbes {
		// Probe the highest-capacity subset.
		for i := 0; i < maxProbes; i++ {
			maxI := i
			for j := i + 1; j < len(candidates); j++ {
				if candidates[j].capacity > candidates[maxI].capacity {
					maxI = j
				}
			}
			candidates[i], candidates[maxI] = candidates[maxI], candidates[i]
		}
		candidates = candidates[:maxProbes]
	}
	n.mu.Lock()
	n.nextToken++
	token := n.nextToken
	n.pending[token] = &probeState{
		fed:      f,
		waiting:  len(candidates),
		best:     -1,
		bestNode: candidates[0].node, // fallback
	}
	n.mu.Unlock()
	payload := LoadProbe{SessionID: f.SessionID, Token: token}.Encode()
	for _, c := range candidates {
		n.send(TypeLoadProbe, payload, c.node)
	}
	n.API.After(probeTimeout, probeTokenBase+token)
}

func (n *Node) onLoadProbe(m *message.Msg) {
	p, err := DecodeLoadProbe(m.Payload())
	if err != nil {
		return
	}
	n.mu.Lock()
	var capacity int64
	for _, c := range n.services {
		if c > capacity {
			capacity = c
		}
	}
	residual := capacity - n.committed
	n.mu.Unlock()
	reply := LoadReply{SessionID: p.SessionID, Token: p.Token, Residual: residual}
	n.send(TypeLoadReply, reply.Encode(), m.Sender())
}

func (n *Node) onLoadReply(m *message.Msg) {
	p, err := DecodeLoadReply(m.Payload())
	if err != nil {
		return
	}
	n.mu.Lock()
	st := n.pending[p.Token]
	if st == nil || st.done {
		n.mu.Unlock()
		return
	}
	if p.Residual > st.best {
		st.best = p.Residual
		st.bestNode = m.Sender()
	}
	st.waiting--
	ready := st.waiting <= 0
	if ready {
		st.done = true
		delete(n.pending, p.Token)
	}
	n.mu.Unlock()
	if ready {
		n.resumeSelection(st)
	}
}

func (n *Node) onTick(m *message.Msg) {
	tk, err := protocol.DecodeTick(m.Payload())
	if err != nil || tk.Kind < probeTokenBase {
		return
	}
	token := tk.Kind - probeTokenBase
	n.mu.Lock()
	st := n.pending[token]
	if st == nil || st.done {
		n.mu.Unlock()
		return
	}
	st.done = true
	delete(n.pending, token)
	n.mu.Unlock()
	n.resumeSelection(st) // timeout: go with the best reply seen (or fallback)
}

func (n *Node) resumeSelection(st *probeState) {
	fw := n.assignAndForward(st.fed, st.bestNode)
	if fw.local {
		n.advance(fw.Federate)
	}
}

// forwarded wraps a Federate with whether processing stays local.
type forwarded struct {
	Federate
	local bool
}

// assignAndForward writes the chosen instance into the assignment and
// either forwards the message to it or, when the chosen instance is this
// node, continues locally.
func (n *Node) assignAndForward(f Federate, chosen message.NodeID) forwarded {
	f.Assigned[f.Next] = chosen
	f.Next++
	if chosen == n.API.ID() {
		if int(f.Next) >= len(f.Req.Types) {
			n.complete(f)
			return forwarded{Federate: f, local: false}
		}
		return forwarded{Federate: f, local: true}
	}
	if int(f.Next) >= len(f.Req.Types) {
		// The chosen node is the sink; it will complete the federation.
		n.send(TypeFederate, f.Encode(), chosen)
		return forwarded{Federate: f, local: false}
	}
	n.send(TypeFederate, f.Encode(), chosen)
	return forwarded{Federate: f, local: false}
}

// complete concludes a federation: distribute the final assignment to
// every participant.
func (n *Node) complete(f Federate) {
	seen := make(map[message.NodeID]bool)
	var participants []message.NodeID
	for _, a := range f.Assigned {
		if !a.IsZero() && !seen[a] {
			seen[a] = true
			participants = append(participants, a)
		}
	}
	payload := f.Encode()
	self := n.API.ID()
	for _, p := range participants {
		if p == self {
			continue
		}
		n.send(TypeFederateAck, payload, p)
	}
	if seen[self] {
		n.applyAssignment(f)
	}
}

// onFederateAck installs the session routing at a participant.
func (n *Node) onFederateAck(m *message.Msg) {
	f, err := DecodeFederate(m.Payload())
	if err != nil || f.Req.Validate() != nil {
		return
	}
	n.applyAssignment(f)
}

// applyAssignment records session routing and load for this node.
func (n *Node) applyAssignment(f Federate) {
	self := n.API.ID()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.loadSeen[f.SessionID] {
		return
	}
	n.loadSeen[f.SessionID] = true
	n.committed += f.Req.Bandwidth
	n.completed[f.SessionID] = append([]message.NodeID(nil), f.Assigned...)
	var succs []message.NodeID
	for _, e := range f.Req.Edges {
		if f.Assigned[e[0]] == self {
			dst := f.Assigned[e[1]]
			dup := false
			for _, s := range succs {
				if s == dst {
					dup = true
					break
				}
			}
			if !dup && dst != self {
				succs = append(succs, dst)
			}
		}
	}
	n.sessions[f.SessionID] = succs
}

// onData forwards session data along the federated topology.
func (n *Node) onData(m *message.Msg) {
	n.mu.Lock()
	succs := n.sessions[m.App()]
	if len(succs) == 0 {
		n.received[m.App()] += int64(m.Len())
	}
	n.mu.Unlock()
	for _, s := range succs {
		n.API.Send(m, s)
	}
}
