package federation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/algtest"
	"repro/internal/engine"
	"repro/internal/message"
	"repro/internal/protocol"
	"repro/internal/vnet"
)

func nid(i int) message.NodeID {
	return message.MakeID(fmt.Sprintf("10.0.3.%d", i), 7000)
}

func newNode(policy Selection, self message.NodeID) (*Node, *algtest.FakeAPI) {
	api := algtest.New(self)
	n := &Node{Policy: policy}
	n.Attach(api)
	return n, api
}

func deliver(t *testing.T, n *Node, m *message.Msg) {
	t.Helper()
	if v := n.Process(m); v != engine.Done {
		t.Fatalf("verdict = %v, want Done", v)
	}
	m.Release()
}

func TestRequirementValidateAndChain(t *testing.T) {
	r := Chain(100<<10, 1, 2, 3)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate(chain): %v", err)
	}
	if len(r.Edges) != 2 || r.Edges[0] != [2]int{0, 1} || r.Edges[1] != [2]int{1, 2} {
		t.Errorf("Chain edges = %v", r.Edges)
	}
	if err := (Requirement{}).Validate(); err == nil {
		t.Error("empty requirement validated")
	}
	bad := Requirement{Types: []uint32{1, 2}, Edges: [][2]int{{1, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("backward edge validated")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	a := Assign{ServiceType: 5, Capacity: 99}
	if got, err := DecodeAssign(a.Encode()); err != nil || got != a {
		t.Errorf("assign = %+v, %v", got, err)
	}
	aw := Aware{Node: nid(1), ServiceType: 5, Capacity: 99, Hops: 2}
	if got, err := DecodeAware(aw.Encode()); err != nil || got != aw {
		t.Errorf("aware = %+v, %v", got, err)
	}
	f := Federate{
		SessionID: 7,
		Req:       Chain(50, 1, 2, 3),
		Assigned:  []message.NodeID{nid(1), {}, {}},
		Next:      1,
	}
	got, err := DecodeFederate(f.Encode())
	if err != nil {
		t.Fatalf("federate decode: %v", err)
	}
	if got.SessionID != 7 || got.Next != 1 || len(got.Assigned) != 3 ||
		got.Assigned[0] != nid(1) || len(got.Req.Types) != 3 ||
		got.Req.Bandwidth != 50 || len(got.Req.Edges) != 2 {
		t.Errorf("federate = %+v", got)
	}
	p := LoadProbe{SessionID: 7, Token: 3}
	if got, err := DecodeLoadProbe(p.Encode()); err != nil || got != p {
		t.Errorf("probe = %+v, %v", got, err)
	}
	lr := LoadReply{SessionID: 7, Token: 3, Residual: -5}
	if got, err := DecodeLoadReply(lr.Encode()); err != nil || got != lr {
		t.Errorf("reply = %+v, %v", got, err)
	}
}

func TestSelectionString(t *testing.T) {
	if SFlow.String() != "sFlow" || Fixed.String() != "fixed" ||
		RandomSel.String() != "random" || Selection(0).String() != "unknown" {
		t.Error("Selection.String mismatch")
	}
}

func TestAssignHostsServiceAndFloodsAware(t *testing.T) {
	n, api := newNode(SFlow, nid(1))
	n.Known.Add(nid(2))
	n.Known.Add(nid(3))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0,
		Assign{ServiceType: 4, Capacity: 100 << 10}.Encode()))
	if got := n.Hosted(); got[4] != 100<<10 {
		t.Errorf("Hosted = %v", got)
	}
	if got := len(api.SentOfType(TypeAware)); got != 2 {
		t.Errorf("aware flood = %d, want 2", got)
	}
	if n.KnownInstances(4) != 1 {
		t.Error("own instance not in registry")
	}
	sent := n.OverheadSent()
	if sent[TypeAware] == 0 {
		t.Error("aware overhead not counted")
	}
}

func TestAwareRecordedAndRelayedOnce(t *testing.T) {
	n, api := newNode(SFlow, nid(1))
	n.Known.Add(nid(3))
	n.Known.Add(nid(4))
	aw := Aware{Node: nid(9), ServiceType: 2, Capacity: 50}
	deliver(t, n, message.New(TypeAware, nid(2), 0, 0, aw.Encode()))
	if n.KnownInstances(2) != 1 {
		t.Error("instance not recorded")
	}
	relays := api.SentOfType(TypeAware)
	if len(relays) != 2 {
		t.Fatalf("relays = %d, want 2", len(relays))
	}
	got, _ := DecodeAware(relays[0].Msg.Payload())
	if got.Hops != 1 {
		t.Errorf("relay hops = %d", got.Hops)
	}
	// Duplicate is suppressed.
	deliver(t, n, message.New(TypeAware, nid(3), 0, 0, aw.Encode()))
	if len(api.SentOfType(TypeAware)) != 2 {
		t.Error("duplicate aware relayed")
	}
	// TTL-expired is suppressed.
	aw2 := Aware{Node: nid(10), ServiceType: 2, Capacity: 50, Hops: awareTTL}
	deliver(t, n, message.New(TypeAware, nid(2), 0, 0, aw2.Encode()))
	if len(api.SentOfType(TypeAware)) != 2 {
		t.Error("TTL-expired aware relayed")
	}
}

// learn injects an instance into the registry via an aware message.
func learn(t *testing.T, n *Node, inst message.NodeID, typ uint32, capacity int64) {
	t.Helper()
	deliver(t, n, message.New(TypeAware, inst, 0, 0,
		Aware{Node: inst, ServiceType: typ, Capacity: capacity, Hops: awareTTL}.Encode()))
}

func TestFixedSelectsHighestCapacity(t *testing.T) {
	n, api := newNode(Fixed, nid(1))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 1, Capacity: 100}.Encode()))
	api.Reset()
	learn(t, n, nid(2), 2, 50)
	learn(t, n, nid(3), 2, 200)
	learn(t, n, nid(4), 2, 120)

	f := Federate{SessionID: 1, Req: Chain(10, 1, 2)}
	deliver(t, n, message.New(TypeFederate, nid(0), 0, 0, f.Encode()))
	fwd := api.SentOfType(TypeFederate)
	if len(fwd) != 1 || fwd[0].Dest != nid(3) {
		t.Fatalf("fixed forward = %+v, want highest-capacity nid(3)", fwd)
	}
	got, _ := DecodeFederate(fwd[0].Msg.Payload())
	if got.Next != 2 || got.Assigned[0] != nid(1) || got.Assigned[1] != nid(3) {
		t.Errorf("federate state = %+v", got)
	}
}

func TestSFlowProbesAndPicksHighestResidual(t *testing.T) {
	n, api := newNode(SFlow, nid(1))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 1, Capacity: 100}.Encode()))
	api.Reset()
	learn(t, n, nid(2), 2, 200) // high capacity...
	learn(t, n, nid(3), 2, 150)

	f := Federate{SessionID: 1, Req: Chain(10, 1, 2)}
	deliver(t, n, message.New(TypeFederate, nid(0), 0, 0, f.Encode()))
	probes := api.SentOfType(TypeLoadProbe)
	if len(probes) != 2 {
		t.Fatalf("probes = %d, want 2", len(probes))
	}
	if len(api.Timers) == 0 {
		t.Error("no probe timeout scheduled")
	}
	p, _ := DecodeLoadProbe(probes[0].Msg.Payload())
	// ...but nid(2) is loaded: its residual is lower than nid(3)'s.
	deliver(t, n, message.New(TypeLoadReply, nid(2), 0, 0,
		LoadReply{SessionID: 1, Token: p.Token, Residual: 20}.Encode()))
	deliver(t, n, message.New(TypeLoadReply, nid(3), 0, 0,
		LoadReply{SessionID: 1, Token: p.Token, Residual: 140}.Encode()))
	fwd := api.SentOfType(TypeFederate)
	if len(fwd) != 1 || fwd[0].Dest != nid(3) {
		t.Fatalf("sFlow forward = %+v, want highest-residual nid(3)", fwd)
	}
}

func TestSFlowTimeoutFallsBackToBestSeen(t *testing.T) {
	n, api := newNode(SFlow, nid(1))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 1, Capacity: 100}.Encode()))
	learn(t, n, nid(2), 2, 200)
	learn(t, n, nid(3), 2, 150)
	f := Federate{SessionID: 1, Req: Chain(10, 1, 2)}
	deliver(t, n, message.New(TypeFederate, nid(0), 0, 0, f.Encode()))
	probes := api.SentOfType(TypeLoadProbe)
	p, _ := DecodeLoadProbe(probes[0].Msg.Payload())
	// Only one reply arrives; then the timeout fires.
	deliver(t, n, message.New(TypeLoadReply, nid(3), 0, 0,
		LoadReply{SessionID: 1, Token: p.Token, Residual: 5}.Encode()))
	deliver(t, n, message.New(protocol.TypeTick, nid(1), 0, 0,
		protocol.Tick{Kind: probeTokenBase + p.Token}.Encode()))
	fwd := api.SentOfType(TypeFederate)
	if len(fwd) != 1 || fwd[0].Dest != nid(3) {
		t.Fatalf("timeout fallback = %+v, want nid(3)", fwd)
	}
	// A late tick for the same token must not double-forward.
	deliver(t, n, message.New(protocol.TypeTick, nid(1), 0, 0,
		protocol.Tick{Kind: probeTokenBase + p.Token}.Encode()))
	if got := len(api.SentOfType(TypeFederate)); got != 1 {
		t.Errorf("late tick re-forwarded: %d sends", got)
	}
}

func TestLoadProbeRepliesResidual(t *testing.T) {
	n, api := newNode(SFlow, nid(2))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 2, Capacity: 100}.Encode()))
	// Commit 30 via a completed session through this node.
	f := Federate{
		SessionID: 9, Req: Chain(30, 1, 2),
		Assigned: []message.NodeID{nid(1), nid(2)}, Next: 2,
	}
	deliver(t, n, message.New(TypeFederateAck, nid(1), 0, 0, f.Encode()))
	if n.Committed() != 30 {
		t.Fatalf("Committed = %d, want 30", n.Committed())
	}
	api.Reset()
	deliver(t, n, message.New(TypeLoadProbe, nid(1), 0, 0,
		LoadProbe{SessionID: 1, Token: 5}.Encode()))
	replies := api.SentOfType(TypeLoadReply)
	if len(replies) != 1 || replies[0].Dest != nid(1) {
		t.Fatalf("replies = %+v", replies)
	}
	lr, _ := DecodeLoadReply(replies[0].Msg.Payload())
	if lr.Residual != 70 || lr.Token != 5 {
		t.Errorf("reply = %+v, want residual 70", lr)
	}
}

func TestCompletionDistributesAckAndInstallsRouting(t *testing.T) {
	// Sink node completes a chain 1 -> 2 and acks the other participant.
	n, api := newNode(Fixed, nid(2))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 2, Capacity: 100}.Encode()))
	f := Federate{
		SessionID: 4, Req: Chain(25, 1, 2),
		Assigned: []message.NodeID{nid(1), nid(2)}, Next: 2,
	}
	deliver(t, n, message.New(TypeFederate, nid(1), 0, 0, f.Encode()))
	acks := api.SentOfType(TypeFederateAck)
	if len(acks) != 1 || acks[0].Dest != nid(1) {
		t.Fatalf("acks = %+v", acks)
	}
	if assigned, ok := n.Completed(4); !ok || assigned[1] != nid(2) {
		t.Errorf("Completed = %v, %v", assigned, ok)
	}
	if n.SessionCount() != 1 || n.Committed() != 25 {
		t.Errorf("load: %d sessions, %d committed", n.SessionCount(), n.Committed())
	}
	// Sink consumes data (no successors).
	m := message.New(message.FirstDataType, nid(1), 4, 0, make([]byte, 100))
	deliver(t, n, m)
	if n.ReceivedBytes(4) != 100 {
		t.Errorf("ReceivedBytes = %d", n.ReceivedBytes(4))
	}
}

func TestDataForwardedAlongDAGEdges(t *testing.T) {
	// Requirement DAG: 0 -> 1, 0 -> 2 (a fan-out). Node nid(1) hosts
	// vertex 0 and must forward session data to both successors.
	n, api := newNode(Fixed, nid(1))
	req := Requirement{
		Types:     []uint32{1, 2, 3},
		Edges:     [][2]int{{0, 1}, {0, 2}},
		Bandwidth: 10,
	}
	f := Federate{
		SessionID: 6, Req: req,
		Assigned: []message.NodeID{nid(1), nid(2), nid(3)}, Next: 3,
	}
	deliver(t, n, message.New(TypeFederateAck, nid(3), 0, 0, f.Encode()))
	api.Reset()
	m := message.New(message.FirstDataType, nid(0), 6, 0, make([]byte, 64))
	deliver(t, n, m)
	if len(api.SentTo(nid(2))) != 1 || len(api.SentTo(nid(3))) != 1 {
		t.Errorf("data fan-out wrong: %d/%d", len(api.SentTo(nid(2))), len(api.SentTo(nid(3))))
	}
	if n.ReceivedBytes(6) != 0 {
		t.Error("forwarding node counted data as consumed")
	}
}

func TestFederateFailsWithoutInstances(t *testing.T) {
	n, _ := newNode(Fixed, nid(1))
	deliver(t, n, message.New(TypeAssign, nid(0), 0, 0, Assign{ServiceType: 1, Capacity: 100}.Encode()))
	f := Federate{SessionID: 1, Req: Chain(10, 1, 99)}
	deliver(t, n, message.New(TypeFederate, nid(0), 0, 0, f.Encode()))
	if n.FailedSessions() != 1 {
		t.Errorf("FailedSessions = %d, want 1", n.FailedSessions())
	}
}

func TestNonHostForwardsToSourceInstance(t *testing.T) {
	n, api := newNode(Fixed, nid(5))
	learn(t, n, nid(1), 1, 100)
	f := Federate{SessionID: 1, Req: Chain(10, 1, 2)}
	deliver(t, n, message.New(TypeFederate, nid(0), 0, 0, f.Encode()))
	fwd := api.SentOfType(TypeFederate)
	if len(fwd) != 1 || fwd[0].Dest != nid(1) {
		t.Fatalf("forward to hosting node = %+v", fwd)
	}
	got, _ := DecodeFederate(fwd[0].Msg.Payload())
	if got.Next != 0 {
		t.Errorf("forwarded Next = %d, want 0 (restart at host)", got.Next)
	}
}

// TestFederationEndToEndOverEngines drives a three-service chain over
// real engines with sFlow, then deploys data through the federated path.
func TestFederationEndToEndOverEngines(t *testing.T) {
	net := vnet.New()
	defer net.Close()
	const session = 77
	// Topology: nid(1) hosts type 1; nid(2) and nid(3) host type 2;
	// nid(4) hosts type 3.
	specs := map[int]uint32{1: 1, 2: 2, 3: 2, 4: 3}
	nodes := make(map[int]*Node)
	engines := make(map[int]*engine.Engine)
	var all []message.NodeID
	for i := range specs {
		all = append(all, nid(i))
	}
	for i, typ := range specs {
		alg := &Node{Policy: SFlow}
		e, err := engine.New(engine.Config{
			ID:        nid(i),
			Transport: engine.VNet{Net: net},
			Algorithm: alg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		nodes[i] = alg
		engines[i] = e
		_ = typ
	}
	// Assign each node its service (normally an observer command; here
	// wired from a peer engine).
	for i := range specs {
		var helper int
		for j := range specs {
			if j != i {
				helper = j
				break
			}
		}
		sendCtl(t, engines[helper], nid(i), TypeAssign,
			Assign{ServiceType: specs[i], Capacity: capOf(i)}.Encode())
	}
	waitFor(t, 5*time.Second, "services hosted", func() bool {
		for i, typ := range specs {
			if nodes[i].Hosted()[typ] == 0 {
				return false
			}
		}
		return true
	})
	// Seed each node's registry directly via sAware wire messages (this
	// test has no observer; TTL-expired announcements avoid re-flooding).
	for i := range specs {
		for j := range specs {
			if i == j {
				continue
			}
			aw := Aware{Node: nid(i), ServiceType: specs[i], Capacity: capOf(i), Hops: awareTTL}
			sendCtl(t, engines[i], nid(j), TypeAware, aw.Encode())
		}
	}
	waitFor(t, 5*time.Second, "registries populated", func() bool {
		for i := range specs {
			if nodes[i].KnownInstances(2) < 2 {
				return false
			}
		}
		return true
	})
	// Launch the federation at the source host.
	req := Chain(10<<10, 1, 2, 3)
	f := Federate{SessionID: session, Req: req}
	sendCtl(t, engines[2], nid(1), TypeFederate, f.Encode())

	waitFor(t, 5*time.Second, "session completed at source", func() bool {
		_, ok := nodes[1].Completed(session)
		return ok
	})
	assigned, _ := nodes[1].Completed(session)
	if assigned[0] != nid(1) || assigned[2] != nid(4) {
		t.Fatalf("assignment = %v", assigned)
	}
	if assigned[1] != nid(2) && assigned[1] != nid(3) {
		t.Fatalf("middle instance = %v", assigned[1])
	}
	// Deploy data through the path.
	engines[1].StartSource(session, 200<<10, 1024)
	waitFor(t, 5*time.Second, "sink receives data", func() bool {
		return nodes[4].ReceivedBytes(session) > 50<<10
	})
}

func capOf(i int) int64 { return int64(50+10*i) << 10 }

// sendCtl injects a control message from one engine to a destination via
// the engine goroutine.
func sendCtl(t *testing.T, e *engine.Engine, dest message.NodeID, typ message.Type, payload []byte) {
	t.Helper()
	e.Do(func(api engine.API) {
		api.SendNew(api.NewControl(typ, 0, payload), dest)
	})
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
